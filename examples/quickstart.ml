(* Quickstart: the whole pipeline on twenty lines of Mini-C.

   Compile a program, analyse it, let the heuristics decide, transform,
   and measure the effect in the cache simulator.

     dune exec examples/quickstart.exe *)

module D = Slo_core.Driver
module H = Slo_core.Heuristics
module L = Slo_core.Legality
module W = Slo_profile.Weights

let source = {|
struct item {
  long key;        /* hot: every lookup reads it */
  long value;      /* hot */
  long created_at; /* cold bookkeeping */
  long touched;    /* cold */
  long padding1;   /* cold */
  long padding2;   /* cold */
};

struct item *table;
long n;

int main() {
  long i; long round; long hits = 0;
  n = 120000;
  table = (struct item*)malloc(n * sizeof(struct item));
  for (i = 0; i < n; i++) {
    table[i].key = i * 2654435761 % 1048576;
    table[i].value = i;
    table[i].created_at = i;
    table[i].touched = 0;
    table[i].padding1 = 0;
    table[i].padding2 = 0;
  }
  for (round = 0; round < 12; round++) {
    for (i = 0; i < n; i++) {
      if (table[i].key < 1000) { hits = hits + table[i].value; }
    }
  }
  /* rare audit keeps the bookkeeping fields alive */
  for (i = 0; i < n; i = i + 512) {
    table[i].touched = table[i].touched + 1;
    hits = hits + table[i].created_at % 3;
  }
  printf("hits %ld\n", hits);
  return 0;
}
|}

let () =
  (* 1. compile (parse, type check, lower to the IR) *)
  let prog = D.compile source in

  (* 2. collect an edge profile by running the instrumented program *)
  let feedback, _ = Slo_profile.Collect.collect prog in

  (* 3. FE + IPA analysis: legality and affinity/hotness *)
  let leg, _aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some feedback) in
  List.iter
    (fun typ ->
      Printf.printf "type %-8s legal=%b reasons=[%s]\n" typ
        (L.is_legal leg typ)
        (String.concat ","
           (List.map L.reason_name (L.reasons leg typ))))
    (L.types leg);

  (* 4. heuristics decide, the BE transforms a copy, we measure both *)
  let ev = D.evaluate ~scheme:W.PBO ~feedback:(Some feedback) prog in
  List.iter
    (fun (d : H.decision) ->
      Printf.printf "decision %-8s %s\n" d.d_typ
        (match d.d_plan with
        | Some p -> H.plan_summary p
        | None -> "no transformation: " ^ String.concat "; " d.d_notes))
    ev.e_decisions;
  Printf.printf "cycles before: %d\ncycles after : %d\nspeedup      : %+.1f%%\n"
    ev.e_before.m_cycles ev.e_after.m_cycles ev.e_speedup_pct;
  assert (ev.e_before.m_result.output = ev.e_after.m_result.output);
  print_string ("program output (unchanged): " ^ ev.e_after.m_result.output)
