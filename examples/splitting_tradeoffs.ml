(* The section-2.4 observation: "the single most important criterion for
   splitting is hotness — hot fields need to remain in the hot section,
   regardless of affinity". Splitting out mcf's time (paper: -9%) and
   time+mark (paper: -35%) degrades performance.

     dune exec examples/splitting_tradeoffs.exe *)

module D = Slo_core.Driver
module H = Slo_core.Heuristics
module T = Slo_core.Transform
module W = Slo_profile.Weights
module Suite = Slo_suite.Suite

let () =
  let e = Suite.find "181.mcf" in
  let prog = D.compile e.source in
  let fb, _ = Slo_profile.Collect.collect ~args:e.train_args prog in
  let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb) in
  let plan =
    match
      List.find_map
        (fun (d : H.decision) ->
          match d.d_plan with
          | Some (H.Split s) when s.s_typ = "node" -> Some s
          | _ -> None)
        (H.decide prog leg aff ~scheme:W.PBO)
    with
    | Some s -> s
    | None -> failwith "expected the framework to split node"
  in
  let fidx name = Option.get (Structs.field_index prog.Ir.structs "node" name) in
  let args = e.train_args in
  let before = D.measure ~args prog in
  let try_plan label p =
    let after = D.measure ~args (D.transform_with_plans prog [ H.Split p ]) in
    assert (before.m_result.output = after.m_result.output);
    Printf.printf "%-36s %+7.1f%%\n%!" label (D.speedup_pct ~before ~after)
  in
  Printf.printf "%-36s %8s\n" "split configuration" "speedup";
  try_plan "framework plan (cold fields only)" plan;
  let also names =
    let extra = List.map fidx names in
    { plan with
      T.s_hot = List.filter (fun f -> not (List.mem f extra)) plan.s_hot;
      s_cold = plan.s_cold @ extra }
  in
  try_plan "also split out time (paper -9%)" (also [ "time" ]);
  try_plan "also time+mark (paper -35%)" (also [ "time"; "mark" ]);
  try_plan "also potential (pathological)" (also [ "potential" ])
