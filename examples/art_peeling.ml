(* The 179.art structure-peeling story (paper sections 2.1 and 2.5).

   Shows the Figure-1 layout evolution on the real art model and measures
   the effect of peeling the f1 neuron layer.

     dune exec examples/art_peeling.exe *)

module D = Slo_core.Driver
module H = Slo_core.Heuristics
module W = Slo_profile.Weights
module Suite = Slo_suite.Suite

let () =
  let e = Suite.find "179.art" in
  let prog = D.compile e.source in
  let layout = Layout.create prog.Ir.structs in
  print_endline "--- f1_neuron before peeling (one 64-byte record) ---";
  print_string (Layout.describe layout "f1_neuron");

  let fb, _ = Slo_profile.Collect.collect ~args:e.train_args prog in
  let ev = D.evaluate ~args:e.train_args ~scheme:W.PBO ~feedback:(Some fb) prog in
  List.iter
    (fun (d : H.decision) ->
      match d.d_plan with
      | Some p -> Printf.printf "plan: %s\n" (H.plan_summary p)
      | None -> ())
    ev.e_decisions;

  print_endline "--- after peeling (one single-field record per field) ---";
  let layout' = Layout.create ev.e_transformed.Ir.structs in
  List.iter
    (fun name ->
      if String.length name > 10 && String.sub name 0 10 = "f1_neuron_" then
        print_string (Layout.describe layout' name))
    (Structs.names ev.e_transformed.Ir.structs);

  Printf.printf
    "\nL2 misses before: %d\nL2 misses after : %d\nspeedup: %+.1f%% (paper: +78.2%%)\n"
    ev.e_before.m_l2_misses ev.e_after.m_l2_misses ev.e_speedup_pct;
  assert (ev.e_before.m_result.output = ev.e_after.m_result.output)
