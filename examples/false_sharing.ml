(* The multithreaded remark of section 2.4: "there is a performance penalty
   if two threads access (write) disjoint hot structure fields on the same
   cache line... These fields should be separated to different cache lines
   instead of being moved together."

   Two simulated cores increment disjoint counters. In layout A the
   counters share a cache line (the single-thread-optimal packing!); in
   layout B they live on separate lines. The coherent cache model shows
   the invalidation storm the paper warns about — the case where the
   single-threaded heuristics and the multithreaded ones disagree.

     dune exec examples/false_sharing.exe *)

module Coherent = Slo_cachesim.Coherent

let simulate ~addr0 ~addr1 ~iters =
  let c = Coherent.create () in
  for i = 0 to iters - 1 do
    (* round-robin interleaving of the two "threads" *)
    let core = i land 1 in
    let addr = if core = 0 then addr0 else addr1 in
    ignore (Coherent.access c ~core ~addr ~write:true)
  done;
  (Coherent.invalidations c, Coherent.total_latency c)

let () =
  (* struct stats { long t0_count; long t1_count; } — the two hot fields
     the affinity analysis would happily pack together *)
  let base = 0x1000 in
  let iters = 100_000 in
  let shared_inv, shared_lat =
    simulate ~addr0:base ~addr1:(base + 8) ~iters
  in
  (* after separating the per-thread fields to different lines *)
  let split_inv, split_lat =
    simulate ~addr0:base ~addr1:(base + 64) ~iters
  in
  Printf.printf "same line   : %7d invalidations, %9d cycles\n" shared_inv
    shared_lat;
  Printf.printf "split lines : %7d invalidations, %9d cycles\n" split_inv
    split_lat;
  Printf.printf "separating the fields is %.1fx cheaper\n"
    (float_of_int shared_lat /. float_of_int split_lat);
  assert (split_inv < shared_inv)
