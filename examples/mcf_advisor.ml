(* The advisory tool on 181.mcf (paper section 3, Figure 2).

   Collects a profile with PMU d-cache sampling, runs the analysis, and
   prints annotated structure definitions plus a VCG affinity graph.

     dune exec examples/mcf_advisor.exe *)

module D = Slo_core.Driver
module H = Slo_core.Heuristics
module Adv = Slo_core.Advisor
module W = Slo_profile.Weights
module Suite = Slo_suite.Suite

let () =
  let e = Suite.find "181.mcf" in
  let prog = D.compile e.source in
  print_endline "(running instrumented mcf to collect edge + d-cache profile...)";
  let fb, stats = Slo_profile.Collect.collect ~args:e.train_args prog in
  Printf.printf "(collected %d PMU d-cache miss events)\n\n" stats.pmu_events;
  let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb) in
  let decisions = H.decide prog leg aff ~scheme:W.PBO in
  let matched = Slo_profile.Matching.apply prog fb in
  let adv =
    Adv.build prog leg aff ~decisions ~dcache:(Some matched.instr_dcache)
  in
  (* the full report covers every type, hottest first; print the two the
     paper talks about *)
  print_string (Adv.report ~only:[ "node"; "arc" ] adv);
  match Adv.vcg adv "node" with
  | Some vcg ->
    print_endline "--- VCG control file for node's affinity graph ---";
    print_string vcg
  | None -> ()
