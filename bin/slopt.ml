(* slopt — the structure layout optimizer command-line tool.

   A file-based front door to the library, in the spirit of the paper's
   "-ipo" flow plus the advisory option:

     slopt parse file.mc           dump the IR
     slopt analyze file.mc         legality + attributes per record type
     slopt profile file.mc -o f.fb collect a feedback file (instrumented run)
     slopt advise file.mc -p f.fb  annotated type layouts (the advisor)
     slopt transform file.mc       plan + apply layout transformations
     slopt run file.mc             execute under the cache simulator
     slopt bench file.mc           original vs transformed comparison *)

open Cmdliner

module D = Slo_core.Driver
module L = Slo_core.Legality
module H = Slo_core.Heuristics
module Adv = Slo_core.Advisor
module W = Slo_profile.Weights

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load ?(verify = false) path =
  try Ok (D.compile ~verify (read_file path)) with
  | Verify.Ill_formed errs ->
    Error (Printf.sprintf "%s: ill-formed IR:\n%s" path (Verify.report errs))
  | Slo_minic.Lexer.Error (msg, loc) ->
    Error (Printf.sprintf "%s:%s: lexical error: %s" path
             (Slo_minic.Loc.to_string loc) msg)
  | Slo_minic.Parser.Error (msg, loc) ->
    Error (Printf.sprintf "%s:%s: syntax error: %s" path
             (Slo_minic.Loc.to_string loc) msg)
  | Slo_minic.Typecheck.Error (msg, loc) ->
    Error (Printf.sprintf "%s:%s: type error: %s" path
             (Slo_minic.Loc.to_string loc) msg)
  | Lower.Unsupported (msg, loc) ->
    Error (Printf.sprintf "%s:%s: unsupported: %s" path
             (Slo_minic.Loc.to_string loc) msg)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 1

(* surface a verifier failure from a transformation as a diagnostic
   instead of an uncaught exception *)
let checked f =
  try f () with
  | Verify.Ill_formed errs ->
    prerr_endline "ERROR: transformation produced ill-formed IR:";
    prerr_endline (Verify.report errs);
    exit 1

let verify_arg =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Run the IR well-formedness verifier on the lowered program \
                 (and, for transform/bench, on the rewritten program); exit \
                 non-zero with a structured report on any violation.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Mini-C source file.")

let args_arg =
  Arg.(value & opt (list int) [] & info [ "args" ] ~docv:"INTS"
         ~doc:"Integer arguments passed to main().")

let scheme_conv =
  Arg.enum (List.map (fun s -> (String.lowercase_ascii (W.name s), s)) W.all)

let scheme_arg =
  Arg.(value & opt scheme_conv W.ISPBO
       & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Weighting scheme (pbo, spbo, ispbo, ...). Profile-based \
                 schemes need --profile.")

let profile_arg =
  Arg.(value & opt (some file) None & info [ "profile"; "p" ] ~docv:"FB"
         ~doc:"Feedback file from 'slopt profile'.")

let feedback_of = function
  | None -> None
  | Some path -> Some (Slo_profile.Feedback.of_string (read_file path))

let backend_conv =
  Arg.enum
    (List.map
       (fun b -> (Slo_vm.Backend.to_string b, b))
       Slo_vm.Backend.all)

let backend_arg =
  Arg.(value & opt backend_conv Slo_vm.Backend.default
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"VM execution engine: $(b,walk) (the tree-walking reference \
                 interpreter) or $(b,closure) (the closure-compiled engine, \
                 default). Both produce identical output and counters; only \
                 wall-clock speed differs.")

let parse_cmd =
  let run file verify =
    let prog = or_die (load ~verify file) in
    print_string (Ir.string_of_program prog)
  in
  Cmd.v (Cmd.info "parse" ~doc:"Compile and dump the IR")
    Term.(const run $ file_arg $ verify_arg)

let analyze_cmd =
  let run file =
    let prog = or_die (load file) in
    let leg = L.analyze prog in
    let pts = Slo_pointsto.Pointsto.analyze prog in
    List.iter
      (fun typ ->
        let info = L.info leg typ in
        Printf.printf "%-20s %-8s reasons=[%s]%s\n" typ
          (if L.is_legal leg typ then "LEGAL"
           else if
             L.is_legal ~relax:true leg typ
             && Slo_pointsto.Pointsto.refutable pts typ
           then "PTS-TO"
           else if L.is_legal ~relax:true leg typ then "RELAX"
           else "INVALID")
          (String.concat "," (List.map L.reason_name info.invalid))
          (if info.attrs.dyn_alloc then " [dyn-alloc]" else ""))
      (L.types leg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Legality analysis per record type (strict / points-to / relaxed)")
    Term.(const run $ file_arg)

let profile_cmd =
  let out_arg =
    Arg.(value & opt string "out.fb" & info [ "o" ] ~docv:"OUT"
           ~doc:"Output feedback file.")
  in
  let run file args out =
    let prog = or_die (load file) in
    let fb, stats = Slo_profile.Collect.collect ~args prog in
    let oc = open_out out in
    output_string oc (Slo_profile.Feedback.to_string fb);
    close_out oc;
    Printf.printf
      "instrumented run: exit=%d, %d steps, %d PMU miss events -> %s\n"
      stats.result.exit_code stats.result.steps stats.pmu_events out
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"PBO collection: run instrumented, write a feedback file")
    Term.(const run $ file_arg $ args_arg $ out_arg)

let advise_cmd =
  let run file profile scheme =
    let prog = or_die (load file) in
    let feedback = feedback_of profile in
    let scheme = if feedback <> None then W.PBO else scheme in
    let leg, aff = D.analyze prog ~scheme ~feedback in
    let decisions = H.decide prog leg aff ~scheme in
    let dcache =
      Option.map
        (fun fb -> (Slo_profile.Matching.apply prog fb).instr_dcache)
        feedback
    in
    let adv = Adv.build prog leg aff ~decisions ~dcache in
    print_string (Adv.report adv)
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Print annotated type layouts (the paper's advisory tool)")
    Term.(const run $ file_arg $ profile_arg $ scheme_arg)

let transform_cmd =
  let dump_arg =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Dump the transformed IR.")
  in
  let run file profile scheme dump verify =
    let prog = or_die (load ~verify file) in
    let feedback = feedback_of profile in
    let scheme = if feedback <> None then W.PBO else scheme in
    let leg, aff = D.analyze prog ~scheme ~feedback in
    let decisions = H.decide prog leg aff ~scheme in
    List.iter
      (fun (d : H.decision) ->
        Printf.printf "%-20s %s\n" d.d_typ
          (match d.d_plan with
          | Some p -> H.plan_summary p
          | None -> "unchanged (" ^ String.concat "; " d.d_notes ^ ")"))
      decisions;
    let transformed =
      checked (fun () ->
          D.transform_with_plans ~verify prog (H.plans decisions))
    in
    if dump then print_string (Ir.string_of_program transformed)
  in
  Cmd.v
    (Cmd.info "transform" ~doc:"Decide and apply layout transformations")
    Term.(const run $ file_arg $ profile_arg $ scheme_arg $ dump_arg
          $ verify_arg)

let run_cmd =
  let run file args backend =
    let prog = or_die (load file) in
    let m = D.measure ~args ~backend prog in
    print_string m.m_result.output;
    Printf.printf
      "exit=%d steps=%d cycles=%d l1miss=%d l2miss=%d accesses=%d\n"
      m.m_result.exit_code m.m_result.steps m.m_cycles m.m_l1_misses
      m.m_l2_misses m.m_accesses
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute under the Itanium-like cache simulator")
    Term.(const run $ file_arg $ args_arg $ backend_arg)

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the evaluation: with $(docv) > 1 the \
                 before/after measurement runs execute in parallel.")

let bench_cmd =
  let run file args profile scheme verify jobs backend =
    if jobs < 1 then begin
      prerr_endline "ERROR: --jobs must be >= 1";
      exit 2
    end;
    let prog = or_die (load ~verify file) in
    let feedback = feedback_of profile in
    let scheme = if feedback <> None then W.PBO else scheme in
    let ev =
      checked (fun () ->
          D.evaluate ~args ~verify ~jobs ~backend ~scheme ~feedback prog)
    in
    List.iter
      (fun (d : H.decision) ->
        match d.d_plan with
        | Some p -> Printf.printf "plan: %s\n" (H.plan_summary p)
        | None -> ())
      ev.e_decisions;
    Printf.printf "before: %d cycles\nafter : %d cycles\nspeedup: %+.1f%%\n"
      ev.e_before.m_cycles ev.e_after.m_cycles ev.e_speedup_pct;
    if ev.e_before.m_result.output <> ev.e_after.m_result.output then begin
      prerr_endline "ERROR: transformed program output differs!";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Measure original vs transformed program")
    Term.(const run $ file_arg $ args_arg $ profile_arg $ scheme_arg
          $ verify_arg $ jobs_arg $ backend_arg)

let () =
  let doc = "structure layout optimization framework (CGO'06 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "slopt" ~doc)
          [ parse_cmd; analyze_cmd; profile_cmd; advise_cmd; transform_cmd;
            run_cmd; bench_cmd ]))
