(* slopt — the structure layout optimizer command-line tool.

   A file-based front door to the library, in the spirit of the paper's
   "-ipo" flow plus the advisory option:

     slopt parse file.mc           dump the IR
     slopt analyze file.mc         legality + attributes per record type
     slopt profile file.mc -o f.fb collect a feedback file (instrumented run)
     slopt advise file.mc -p f.fb  annotated type layouts (the advisor)
     slopt transform file.mc       plan + apply layout transformations
     slopt run file.mc             execute under the cache simulator
     slopt bench file.mc           original vs transformed comparison *)

open Cmdliner

module D = Slo_core.Driver
module L = Slo_core.Legality
module H = Slo_core.Heuristics
module Adv = Slo_core.Advisor
module Codec = Slo_core.Codec
module Tune = Slo_tune.Tune
module W = Slo_profile.Weights
module Advice = Slo_advice.Advice
module Sarif = Slo_advice.Sarif

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_src ?(verify = false) ~display src =
  try Ok (D.compile ~verify src) with
  | Verify.Ill_formed errs ->
    Error (Printf.sprintf "%s: ill-formed IR:\n%s" display (Verify.report errs))
  | Slo_minic.Lexer.Error (msg, loc) ->
    Error (Printf.sprintf "%s:%s: lexical error: %s" display
             (Slo_minic.Loc.to_string loc) msg)
  | Slo_minic.Parser.Error (msg, loc) ->
    Error (Printf.sprintf "%s:%s: syntax error: %s" display
             (Slo_minic.Loc.to_string loc) msg)
  | Slo_minic.Typecheck.Error (msg, loc) ->
    Error (Printf.sprintf "%s:%s: type error: %s" display
             (Slo_minic.Loc.to_string loc) msg)
  | Lower.Unsupported (msg, loc) ->
    Error (Printf.sprintf "%s:%s: unsupported: %s" display
             (Slo_minic.Loc.to_string loc) msg)

let load ?verify path = compile_src ?verify ~display:path (read_file path)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 1

(* surface a verifier failure from a transformation as a diagnostic
   instead of an uncaught exception *)
let checked f =
  try f () with
  | Verify.Ill_formed errs ->
    prerr_endline "ERROR: transformation produced ill-formed IR:";
    prerr_endline (Verify.report errs);
    exit 1

let verify_arg =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Run the IR well-formedness verifier on the lowered program \
                 (and, for transform/bench, on the rewritten program); exit \
                 non-zero with a structured report on any violation.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Mini-C source file.")

let args_arg =
  Arg.(value & opt (list int) [] & info [ "args" ] ~docv:"INTS"
         ~doc:"Integer arguments passed to main().")

let scheme_conv = Arg.enum Codec.scheme_assoc

let scheme_arg =
  Arg.(value & opt scheme_conv W.ISPBO
       & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Weighting scheme (pbo, spbo, ispbo, ...). Profile-based \
                 schemes need --profile.")

let profile_arg =
  Arg.(value & opt (some file) None & info [ "profile"; "p" ] ~docv:"FB"
         ~doc:"Feedback file from 'slopt profile'.")

let feedback_of = function
  | None -> None
  | Some path -> Some (Slo_profile.Feedback.of_string (read_file path))

let backend_conv =
  Arg.enum
    (List.map
       (fun b -> (Slo_vm.Backend.to_string b, b))
       Slo_vm.Backend.all)

let backend_arg =
  Arg.(value & opt backend_conv Slo_vm.Backend.default
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"VM execution engine: $(b,walk) (the tree-walking reference \
                 interpreter), $(b,closure) (the closure-compiled engine, \
                 default) or $(b,superblock) (closure compilation with \
                 unconditional-jump chains fused). All produce identical \
                 output and counters; only wall-clock speed differs.")

let fidelity_conv =
  let parse s =
    match Slo_cachesim.Sampled.fidelity_of_string s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  let print ppf f =
    Format.pp_print_string ppf (Slo_cachesim.Sampled.fidelity_name f)
  in
  Arg.conv (parse, print)

let fidelity_arg =
  Arg.(value & opt fidelity_conv Slo_cachesim.Sampled.Exact
       & info [ "fidelity" ] ~docv:"FIDELITY"
           ~doc:"Cache-simulation fidelity: $(b,exact) (every access \
                 simulated; default), $(b,sampled) (detailed windows, the \
                 rest warms cache state without counter work; bounded \
                 counter error), $(b,sampled:WINDOW,STRIDE) to choose the \
                 window geometry, or $(b,sampled:WINDOW,STRIDE,SKIP) to \
                 also fast-forward past SKIP accesses per period (fastest, \
                 biased — the accuracy gate only licenses the default). \
                 Program output, exit code and step counts are exact in \
                 every fidelity.")

let pool_arg =
  Arg.(value & flag
       & info [ "pool" ]
           ~doc:"Enable pooling plans: shape-proven recursive types \
                 (single allocation site, unaliased link fields) are \
                 rewritten to packed index-linked pools. Off by default; \
                 pool decisions take precedence over split/peel/rebuild \
                 for qualifying types.")

let parse_cmd =
  let run file verify =
    let prog = or_die (load ~verify file) in
    print_string (Ir.string_of_program prog)
  in
  Cmd.v (Cmd.info "parse" ~doc:"Compile and dump the IR")
    Term.(const run $ file_arg $ verify_arg)

let analyze_cmd =
  let run file =
    let prog = or_die (load file) in
    let leg = L.analyze prog in
    let pts = Slo_pointsto.Pointsto.analyze prog in
    List.iter
      (fun typ ->
        let info = L.info leg typ in
        Printf.printf "%-20s %-8s reasons=[%s]%s\n" typ
          (if L.is_legal leg typ then "LEGAL"
           else if
             L.is_legal ~relax:true leg typ
             && Slo_pointsto.Pointsto.refutable pts typ
           then "PTS-TO"
           else if L.is_legal ~relax:true leg typ then "RELAX"
           else "INVALID")
          (String.concat "," (List.map L.reason_name info.invalid))
          (if info.attrs.dyn_alloc then " [dyn-alloc]" else ""))
      (L.types leg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Legality analysis per record type (strict / points-to / relaxed)")
    Term.(const run $ file_arg)

let profile_cmd =
  let out_arg =
    Arg.(value & opt string "out.fb" & info [ "o" ] ~docv:"OUT"
           ~doc:"Output feedback file.")
  in
  let run file args out =
    let prog = or_die (load file) in
    let fb, stats = Slo_profile.Collect.collect ~args prog in
    let oc = open_out out in
    output_string oc (Slo_profile.Feedback.to_string fb);
    close_out oc;
    Printf.printf
      "instrumented run: exit=%d, %d steps, %d PMU miss events -> %s\n"
      stats.result.exit_code stats.result.steps stats.pmu_events out
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"PBO collection: run instrumented, write a feedback file")
    Term.(const run $ file_arg $ args_arg $ out_arg)

let advise_cmd =
  let run file profile scheme pool =
    let prog = or_die (load file) in
    let feedback = feedback_of profile in
    let scheme = if feedback <> None then W.PBO else scheme in
    let leg, aff = D.analyze prog ~scheme ~feedback in
    let decisions = H.decide ~pool prog leg aff ~scheme in
    let dcache =
      Option.map
        (fun fb -> (Slo_profile.Matching.apply prog fb).instr_dcache)
        feedback
    in
    let adv = Adv.build prog leg aff ~decisions ~dcache in
    print_string (Adv.report adv)
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Print annotated type layouts (the paper's advisory tool)")
    Term.(const run $ file_arg $ profile_arg $ scheme_arg $ pool_arg)

let transform_cmd =
  let dump_arg =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Dump the transformed IR.")
  in
  let run file profile scheme pool dump verify =
    let prog = or_die (load ~verify file) in
    let feedback = feedback_of profile in
    let scheme = if feedback <> None then W.PBO else scheme in
    let leg, aff = D.analyze prog ~scheme ~feedback in
    let decisions = H.decide ~pool prog leg aff ~scheme in
    List.iter
      (fun (d : H.decision) ->
        Printf.printf "%-20s %s\n" d.d_typ
          (match d.d_plan with
          | Some p -> H.plan_summary p
          | None -> "unchanged (" ^ String.concat "; " d.d_notes ^ ")"))
      decisions;
    let transformed =
      checked (fun () ->
          D.transform_with_plans ~verify prog (H.plans decisions))
    in
    if dump then print_string (Ir.string_of_program transformed)
  in
  Cmd.v
    (Cmd.info "transform" ~doc:"Decide and apply layout transformations")
    Term.(const run $ file_arg $ profile_arg $ scheme_arg $ pool_arg
          $ dump_arg $ verify_arg)

let run_cmd =
  let run file args backend fidelity =
    let prog = or_die (load file) in
    let m = D.measure ~args ~backend ~fidelity prog in
    print_string m.m_result.output;
    Printf.printf
      "exit=%d steps=%d cycles=%d l1miss=%d l2miss=%d accesses=%d\n"
      m.m_result.exit_code m.m_result.steps m.m_cycles m.m_l1_misses
      m.m_l2_misses m.m_accesses
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute under the Itanium-like cache simulator")
    Term.(const run $ file_arg $ args_arg $ backend_arg $ fidelity_arg)

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the evaluation: with $(docv) > 1 the \
                 before/after measurement runs execute in parallel.")

let bench_cmd =
  let run file args profile scheme pool verify jobs backend fidelity =
    if jobs < 1 then begin
      prerr_endline "ERROR: --jobs must be >= 1";
      exit 2
    end;
    let prog = or_die (load ~verify file) in
    let feedback = feedback_of profile in
    let scheme = if feedback <> None then W.PBO else scheme in
    let ev =
      checked (fun () ->
          D.evaluate ~args ~pool ~verify ~jobs ~backend ~fidelity ~scheme
            ~feedback prog)
    in
    List.iter
      (fun (d : H.decision) ->
        match d.d_plan with
        | Some p -> Printf.printf "plan: %s\n" (H.plan_summary p)
        | None -> ())
      ev.e_decisions;
    Printf.printf "before: %d cycles\nafter : %d cycles\nspeedup: %+.1f%%\n"
      ev.e_before.m_cycles ev.e_after.m_cycles ev.e_speedup_pct;
    if ev.e_before.m_result.output <> ev.e_after.m_result.output then begin
      prerr_endline "ERROR: transformed program output differs!";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Measure original vs transformed program")
    Term.(const run $ file_arg $ args_arg $ profile_arg $ scheme_arg
          $ pool_arg $ verify_arg $ jobs_arg $ backend_arg $ fidelity_arg)

(* ------------------------------------------------------------------ *)
(* tune: search the plan space with the cachesim as cost oracle        *)
(* ------------------------------------------------------------------ *)

let budget_arg =
  Arg.(value & opt (some float) None
       & info [ "budget-ms" ] ~docv:"MS"
           ~doc:"Anytime search budget: on expiry the best plan scored so \
                 far is reported (the heuristic incumbent at minimum). \
                 Default: run the whole candidate space.")

let beam_arg =
  Arg.(value & opt int 4
       & info [ "beam" ] ~docv:"N"
           ~doc:"Field-permutation beam per struct: how many hot-field \
                 orders are considered per split point and rebuild.")

let seed_arg =
  Arg.(value & opt int 0
       & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for the deterministic candidate shuffle; results are \
                 reproducible for a given seed at any --jobs.")

let tune_fidelity_arg =
  Arg.(value & opt fidelity_conv Slo_cachesim.Sampled.sampled_default
       & info [ "fidelity" ] ~docv:"FIDELITY"
           ~doc:"Search-phase fidelity (default $(b,sampled)); the winner \
                 is always re-scored at $(b,exact) fidelity before it may \
                 replace the heuristic plan.")

let print_plans ~label plans cycles baseline =
  Printf.printf "%s: %d cycles (%+.1f%% vs baseline)\n" label cycles
    (if cycles > 0 then
       (float_of_int baseline /. float_of_int cycles -. 1.0) *. 100.0
     else 0.0);
  if plans = [] then print_endline "  (no transformation)"
  else
    List.iter
      (fun p ->
        Printf.printf "  plan: %-40s %s\n" (Codec.plan_to_string p)
          (H.plan_summary p))
      plans

let tune_cmd =
  let run file args profile scheme jobs backend fidelity budget beam seed =
    if jobs < 1 || beam < 1 then begin
      prerr_endline "ERROR: --jobs and --beam must be >= 1";
      exit 2
    end;
    let prog = or_die (load ~verify:true file) in
    let feedback = feedback_of profile in
    let scheme = if feedback <> None then W.PBO else scheme in
    let cfg =
      { (Tune.default_config ~scheme ~feedback) with
        Tune.args; jobs; backend; fidelity; budget_ms = budget; beam; seed }
    in
    let r = checked (fun () -> Tune.search prog cfg) in
    print_plans ~label:"heuristic" r.Tune.t_heuristic r.t_heuristic_cycles
      r.t_baseline_cycles;
    print_plans ~label:"found    " r.t_found r.t_found_cycles
      r.t_baseline_cycles;
    Printf.printf "explored %d/%d candidates (%d rejected)%s in %.0fms\n"
      r.t_explored r.t_total r.t_rejected
      (if r.t_complete then "" else " [budget expired]")
      r.t_wall_ms;
    if r.t_improved then
      Printf.printf "improvement over heuristic: %+.1f%%\n"
        ((float_of_int r.t_heuristic_cycles /. float_of_int r.t_found_cycles
          -. 1.0)
        *. 100.0)
    else print_endline "no plan beat the heuristic; keeping it"
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Search the layout-plan space (split points x field orders x \
             peel x padding) with the cache simulator as cost oracle. \
             Anytime: --budget-ms bounds \
             the search and the best plan so far wins; the result is \
             never worse than the heuristic plan, which is always scored \
             as the incumbent.")
    Term.(const run $ file_arg $ args_arg $ profile_arg $ scheme_arg
          $ jobs_arg $ backend_arg $ tune_fidelity_arg $ budget_arg
          $ beam_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* check: source-located diagnostics and SARIF export                  *)
(* ------------------------------------------------------------------ *)

let relax_arg =
  Arg.(value & flag
       & info [ "relax" ]
           ~doc:"Tolerate CSTT/CSTF/ATKN findings (the paper's relaxed \
                 counting): they are reported as warnings and no longer \
                 invalidate — unless points-to refutes the relaxation, in \
                 which case the PTS finding invalidates instead.")

let sarif_arg =
  Arg.(value & opt (some string) None
       & info [ "sarif" ] ~docv:"OUT"
           ~doc:"Also write the findings as a SARIF 2.1.0 document to \
                 $(docv) (all inputs merged into one run).")

let check_files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Mini-C source files to check.")

let check_names_arg =
  Arg.(value & opt_all string []
       & info [ "name" ] ~docv:"BENCH"
           ~doc:"Also check a benchmark-roster program (repeatable).")

let roster_arg =
  Arg.(value & flag
       & info [ "roster" ]
           ~doc:"Check every benchmark-roster program (equivalent to one \
                 --name per roster entry).")

let golden_arg =
  Arg.(value & opt (some file) None
       & info [ "golden" ] ~docv:"LIST"
           ~doc:"Compare the finding summary against the golden list in \
                 $(docv): exit non-zero only on findings absent from the \
                 list (CI mode), instead of on any invalidating finding. \
                 Lines starting with '#' and blank lines are ignored.")

let read_golden path =
  String.split_on_char '\n' (read_file path)
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))

let check_cmd =
  let run files names roster relax sarif_out golden =
    let names =
      if roster then
        names
        @ List.map
            (fun (e : Slo_suite.Suite.entry) -> e.name)
            Slo_suite.Suite.roster
      else names
    in
    if files = [] && names = [] then begin
      prerr_endline "ERROR: need at least one FILE or --name";
      exit 2
    end;
    let inputs =
      List.map (fun f -> (f, read_file f)) files
      @ List.map
          (fun n ->
            match Slo_suite.Suite.find n with
            | e -> (n, e.Slo_suite.Suite.source)
            | exception Not_found ->
              prerr_endline (Printf.sprintf "ERROR: unknown roster entry %S" n);
              exit 2)
          names
    in
    let results =
      List.map
        (fun (display, src) ->
          let prog = or_die (compile_src ~verify:true ~display src) in
          (* diagnostics must be able to point at sources *)
          (match Verify.program ~require_locs:true prog with
          | [] -> ()
          | errs ->
            prerr_endline
              (Printf.sprintf "%s: missing source locations:\n%s" display
                 (Verify.report errs));
            exit 1);
          (display, src, Advice.check ~relax prog))
        inputs
    in
    List.iter
      (fun (display, src, diags) ->
        print_string (Advice.render ~src ~file:display diags))
      results;
    (match sarif_out with
    | None -> ()
    | Some out ->
      let doc =
        Sarif.to_string (List.map (fun (d, _, ds) -> (d, ds)) results)
      in
      let oc = open_out out in
      output_string oc doc;
      close_out oc;
      Printf.eprintf "wrote %s\n" out);
    let summary_lines =
      List.concat_map
        (fun (display, _, diags) ->
          List.map
            (fun l -> Printf.sprintf "%s: %s" display l)
            (Advice.summary diags))
        results
    in
    match golden with
    | Some path ->
      let expected = read_golden path in
      let unexpected =
        List.filter (fun l -> not (List.mem l expected)) summary_lines
      in
      let resolved =
        List.filter (fun l -> not (List.mem l summary_lines)) expected
      in
      List.iter
        (fun l -> Printf.eprintf "resolved (remove from %s): %s\n" path l)
        resolved;
      if unexpected <> [] then begin
        List.iter
          (fun l -> Printf.eprintf "NEW finding (not in %s): %s\n" path l)
          unexpected;
        exit 1
      end
    | None ->
      let n =
        List.fold_left
          (fun acc (_, _, ds) -> acc + Advice.invalidating_count ds)
          0 results
      in
      if n > 0 then begin
        Printf.eprintf "%d invalidating finding(s)\n" n;
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Source-located layout diagnostics: legality witnesses, \
             points-to provenance and dead-field findings rendered as \
             compiler-style $(i,file:line:col) messages with caret \
             snippets; optional SARIF 2.1.0 export. Exits non-zero when \
             any finding invalidates transformation (or, with --golden, \
             on findings absent from the golden list).")
    Term.(const run $ check_files_arg $ check_names_arg $ roster_arg
          $ relax_arg $ sarif_arg $ golden_arg)

(* ------------------------------------------------------------------ *)
(* Serving mode: the advice daemon and its client                      *)
(* ------------------------------------------------------------------ *)

module Srv = Slo_server.Server
module Cli = Slo_server.Client
module Proto = Slo_server.Protocol

let socket_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"ENDPOINT"
           ~doc:"Daemon endpoint: a Unix-domain socket path, or \
                 $(i,HOST:PORT) (numeric port, no '/') for TCP.")

let serve_socket_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path the daemon listens on (TCP is \
                 added with --listen).")

let serve_cmd =
  let serve_jobs =
    Arg.(value & opt int 0
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains for the compute pool (0 = one per \
                   available core).")
  in
  let listen =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"HOST:PORT"
             ~doc:"Also listen on TCP at $(docv) (e.g. 127.0.0.1:7070; \
                   host $(b,*) binds all interfaces). The Unix socket \
                   stays on either way.")
  in
  let shards =
    Arg.(value & opt int 0
         & info [ "shards" ] ~docv:"N"
             ~doc:"Accept/reader domains per listener (0 = auto from the \
                   core count): connections accepted by different shards \
                   parse frames in parallel.")
  in
  let window =
    Arg.(value & opt int 32
         & info [ "window" ] ~docv:"N"
             ~doc:"Per-connection in-flight request cap; a pipelining \
                   client beyond it is back-pressured by the socket.")
  in
  let cache_mb =
    Arg.(value & opt int 64
         & info [ "cache-mb" ] ~docv:"MB"
             ~doc:"LRU budget for compiled IR and finished results, in MiB.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persistent reply cache under $(docv): results survive \
                   restarts (write-temp-then-rename records, verified on \
                   load). Off by default.")
  in
  let max_conns =
    Arg.(value & opt int 64
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Concurrent connections before new ones are refused with \
                   an $(i,overloaded) reply.")
  in
  let high_watermark =
    Arg.(value & opt int 0
         & info [ "high-watermark" ] ~docv:"N"
             ~doc:"Queued compute jobs at which $(i,bench) misses start \
                   being shed with $(i,overloaded) (0 = auto: \
                   max(8, 4*jobs)). Cached replies are always served.")
  in
  let low_watermark =
    Arg.(value & opt int 0
         & info [ "low-watermark" ] ~docv:"N"
             ~doc:"Backlog at which shedding stops again (0 = auto: half \
                   the high watermark).")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet"; "q" ] ~doc:"Suppress progress lines on stderr.")
  in
  let run socket jobs listen shards window cache_mb cache_dir max_conns
      high_watermark low_watermark quiet =
    let jobs = if jobs = 0 then Slo_exec.Pool.default_jobs () else jobs in
    if jobs < 1 || cache_mb < 1 || max_conns < 1 || window < 1 then begin
      prerr_endline
        "ERROR: --jobs, --cache-mb, --max-conns and --window must be >= 1";
      exit 2
    end;
    let listen =
      match listen with
      | None -> None
      | Some spec -> (
        match Cli.endpoint_of_string spec with
        | `Tcp (host, port) -> Some (host, port)
        | `Unix _ ->
          prerr_endline "ERROR: --listen needs HOST:PORT with a numeric port";
          exit 2)
    in
    let defaults = Srv.default_config ~socket_path:socket in
    let shards = if shards = 0 then defaults.Srv.shards else shards in
    let log s = if not quiet then Printf.eprintf "slopt-serve: %s\n%!" s in
    Srv.run
      { defaults with
        jobs; listen; shards; window; cache_mb; cache_dir; max_conns;
        high_watermark; low_watermark; log }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the layout-advice daemon (length-prefixed JSON over a Unix \
             socket and optionally TCP; pipelined advise/bench/check/stats/\
             shutdown requests with out-of-order replies; content-addressed \
             in-memory and on-disk caching; admission control; graceful \
             drain on SIGTERM)")
    Term.(const run $ serve_socket_arg $ serve_jobs $ listen $ shards
          $ window $ cache_mb $ cache_dir $ max_conns $ high_watermark
          $ low_watermark $ quiet)

let wait_arg =
  Arg.(value & opt float 5.0
       & info [ "wait" ] ~docv:"SECS"
           ~doc:"Retry the connection for up to $(docv) seconds while the \
                 daemon starts up (0 fails immediately).")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-request deadline; on expiry the daemon answers a \
                 structured $(i,timeout) error while the computation \
                 continues server-side and populates the cache.")

let src_file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Mini-C source file to send inline.")

let name_arg =
  Arg.(value & opt (some string) None
       & info [ "name" ] ~docv:"BENCH"
           ~doc:"Use a benchmark-roster program (e.g. $(b,179.art)) as the \
                 source instead of a file.")

(* resolves the source text plus the args to run it with: an explicit
   --args wins; a --name roster entry falls back to its train args *)
let resolve_src file name args =
  match (file, name) with
  | Some f, None -> Ok (read_file f, Option.value ~default:[] args)
  | None, Some n -> (
    match Slo_suite.Suite.find n with
    | e ->
      Ok
        ( e.Slo_suite.Suite.source,
          Option.value ~default:e.Slo_suite.Suite.train_args args )
    | exception Not_found -> Error (Printf.sprintf "unknown roster entry %S" n))
  | None, None -> Error "need a FILE argument or --name"
  | Some _, Some _ -> Error "FILE and --name are mutually exclusive"

let client_args_arg =
  Arg.(value & opt (some (list int)) None
       & info [ "args" ] ~docv:"INTS"
           ~doc:"Integer arguments passed to main() server-side (default: \
                 the roster entry's train args with --name, else none).")

let with_conn socket wait f =
  match
    Cli.connect ~retry_for_s:wait ~endpoint:(Cli.endpoint_of_string socket) ()
  with
  | exception Unix.Unix_error (e, _, _) ->
    prerr_endline
      (Printf.sprintf "ERROR: cannot connect to %s: %s" socket
         (Unix.error_message e));
    exit 1
  | conn ->
    Fun.protect ~finally:(fun () -> Cli.close conn) (fun () ->
        match f conn with
        | Proto.R_error { code; message } ->
          Printf.eprintf "ERROR [%s]: %s\n" (Proto.error_code_name code)
            message;
          exit 3
        | reply -> reply)

let scheme_name_arg =
  Arg.(value & opt (some string) None
       & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Weighting scheme (pbo, spbo, ispbo, ...); profile-based \
                 schemes make the daemon collect a training profile with \
                 --args. Default ispbo.")

let client_advise_cmd =
  let run socket wait file name scheme args pool deadline =
    let src, args = or_die (resolve_src file name args) in
    match
      with_conn socket wait (fun conn ->
          Cli.rpc conn
            (Proto.Advise { src; scheme; args; pool; deadline_ms = deadline }))
    with
    | Proto.R_advise { a_report; a_cached } ->
      if a_cached then prerr_endline "(served from cache)";
      print_string a_report
    | _ ->
      prerr_endline "ERROR: unexpected reply kind";
      exit 3
  in
  Cmd.v
    (Cmd.info "advise" ~doc:"Request an annotated-layout report")
    Term.(const run $ socket_arg $ wait_arg $ src_file_arg $ name_arg
          $ scheme_name_arg $ client_args_arg $ pool_arg $ deadline_arg)

let client_bench_cmd =
  let backend_name_arg =
    Arg.(value & opt (some string) None
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"VM engine for the measurement runs (walk or closure).")
  in
  let run socket wait file name scheme backend args deadline =
    let src, args = or_die (resolve_src file name args) in
    match
      with_conn socket wait (fun conn ->
          Cli.rpc conn
            (Proto.Bench { src; scheme; backend; args; deadline_ms = deadline }))
    with
    | Proto.R_bench b ->
      if b.b_cached then prerr_endline "(served from cache)";
      List.iter (fun p -> Printf.printf "plan: %s\n" p) b.b_plans;
      Printf.printf "before: %d cycles\nafter : %d cycles\nspeedup: %+.1f%%\n"
        b.b_cycles_before b.b_cycles_after b.b_speedup_pct
    | _ ->
      prerr_endline "ERROR: unexpected reply kind";
      exit 3
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Request a before/after measurement")
    Term.(const run $ socket_arg $ wait_arg $ src_file_arg $ name_arg
          $ scheme_name_arg $ backend_name_arg $ client_args_arg $ deadline_arg)

(* the daemon labels wire-shipped sources "<input>"; give the lines the
   real name when the client knows one *)
let relabel ~display s =
  let pat = "<input>" in
  let buf = Buffer.create (String.length s) in
  let n = String.length s and m = String.length pat in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub s !i m = pat then begin
      Buffer.add_string buf display;
      i := !i + m
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let client_check_cmd =
  let run socket wait file name relax sarif_out deadline =
    let src, _ = or_die (resolve_src file name None) in
    let display =
      match (file, name) with
      | Some f, _ -> f
      | _, Some n -> n
      | None, None -> assert false (* resolve_src rejected this *)
    in
    match
      with_conn socket wait (fun conn ->
          Cli.rpc conn (Proto.Check { src; relax; deadline_ms = deadline }))
    with
    | Proto.R_check { c_report; c_sarif; c_invalidating; c_cached } ->
      if c_cached then prerr_endline "(served from cache)";
      print_string (relabel ~display c_report);
      (match sarif_out with
      | None -> ()
      | Some out ->
        let oc = open_out out in
        output_string oc (relabel ~display c_sarif);
        close_out oc;
        Printf.eprintf "wrote %s\n" out);
      if c_invalidating > 0 then begin
        Printf.eprintf "%d invalidating finding(s)\n" c_invalidating;
        exit 1
      end
    | _ ->
      prerr_endline "ERROR: unexpected reply kind";
      exit 3
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Request source-located layout diagnostics (and optionally \
             SARIF) from the daemon; exits non-zero when any finding \
             invalidates transformation")
    Term.(const run $ socket_arg $ wait_arg $ src_file_arg $ name_arg
          $ relax_arg $ sarif_arg $ deadline_arg)

let client_tune_cmd =
  let backend_name_arg =
    Arg.(value & opt (some string) None
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"VM engine for the measurement runs (walk or closure).")
  in
  let client_beam_arg =
    Arg.(value & opt (some int) None
         & info [ "beam" ] ~docv:"N"
             ~doc:"Field-permutation beam (default: the server's).")
  in
  let client_budget_arg =
    Arg.(value & opt (some float) None
         & info [ "budget-ms" ] ~docv:"MS"
             ~doc:"Anytime search budget, enforced inside the server-side \
                   search: a tight budget returns the best plan found so \
                   far ($(i,complete: false)), never a $(i,timeout) error.")
  in
  let run socket wait file name scheme backend args beam budget =
    let src, args = or_die (resolve_src file name args) in
    match
      with_conn socket wait (fun conn ->
          Cli.rpc conn
            (Proto.Tune
               { src; scheme; backend; args; beam; deadline_ms = budget }))
    with
    | Proto.R_tune t ->
      if t.t_cached then prerr_endline "(served from cache)";
      let print_side label plans cycles =
        Printf.printf "%s: %d cycles\n" label cycles;
        if plans = [] then print_endline "  (no transformation)"
        else List.iter (fun p -> Printf.printf "  plan: %s\n" p) plans
      in
      Printf.printf "baseline : %d cycles\n" t.t_baseline_cycles;
      print_side "heuristic" t.t_heuristic_plans t.t_heuristic_cycles;
      print_side "found    " t.t_plans t.t_found_cycles;
      Printf.printf "explored %d/%d candidates%s\n" t.t_explored t.t_total
        (if t.t_complete then "" else " [budget expired]");
      if t.t_improved then
        Printf.printf "improvement over heuristic: %+.1f%%\n"
          ((float_of_int t.t_heuristic_cycles /. float_of_int t.t_found_cycles
            -. 1.0)
          *. 100.0)
      else print_endline "no plan beat the heuristic; keeping it"
    | _ ->
      prerr_endline "ERROR: unexpected reply kind";
      exit 3
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Request an anytime layout-plan search; the reply always \
             carries a plan at least as good as the heuristic one")
    Term.(const run $ socket_arg $ wait_arg $ src_file_arg $ name_arg
          $ scheme_name_arg $ backend_name_arg $ client_args_arg
          $ client_beam_arg $ client_budget_arg)

let client_stats_cmd =
  let run socket wait =
    match with_conn socket wait (fun conn -> Cli.rpc conn Proto.Stats) with
    | Proto.R_stats s ->
      let counts kvs =
        if kvs = [] then "-"
        else
          String.concat " "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs)
      in
      let rate h m =
        if h + m = 0 then "-"
        else Printf.sprintf "%.1f%%" (100.0 *. float h /. float (h + m))
      in
      Printf.printf
        "uptime: %.1fs  conns: %d  inflight: %d  queued: %d%s\n" s.s_uptime_s
        s.s_conns s.s_inflight s.s_queued
        (if s.s_shedding then "  SHEDDING" else "");
      Printf.printf "requests: %s\n" (counts s.s_requests);
      Printf.printf "errors: %s\n" (counts s.s_errors);
      Printf.printf
        "cache: result %d/%d hits (%s), ir %d/%d hits (%s), disk %d/%d hits \
         (%s), %d entries, %d bytes, %d evictions\n"
        s.s_result_hits
        (s.s_result_hits + s.s_result_misses)
        (rate s.s_result_hits s.s_result_misses)
        s.s_ir_hits
        (s.s_ir_hits + s.s_ir_misses)
        (rate s.s_ir_hits s.s_ir_misses)
        s.s_disk_hits
        (s.s_disk_hits + s.s_disk_misses)
        (rate s.s_disk_hits s.s_disk_misses)
        s.s_cache_entries s.s_cache_bytes s.s_cache_evictions;
      Printf.printf "latency: p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms \
                     (n=%d)\n"
        s.s_latency.l_p50_ms s.s_latency.l_p95_ms s.s_latency.l_p99_ms
        s.s_latency.l_max_ms s.s_latency.l_count
    | _ ->
      prerr_endline "ERROR: unexpected reply kind";
      exit 3
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Request per-kind counters, cache hit rates and latency \
             percentiles")
    Term.(const run $ socket_arg $ wait_arg)

let client_shutdown_cmd =
  let run socket wait =
    match with_conn socket wait (fun conn -> Cli.rpc conn Proto.Shutdown) with
    | Proto.R_shutdown -> print_endline "daemon is draining"
    | _ ->
      prerr_endline "ERROR: unexpected reply kind";
      exit 3
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Ask the daemon to drain: in-flight requests finish, new work \
             is refused, then the process exits")
    Term.(const run $ socket_arg $ wait_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running layout-advice daemon")
    [ client_advise_cmd; client_bench_cmd; client_check_cmd; client_tune_cmd;
      client_stats_cmd; client_shutdown_cmd ]

let () =
  let doc = "structure layout optimization framework (CGO'06 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "slopt" ~doc)
          [ parse_cmd; analyze_cmd; profile_cmd; advise_cmd; check_cmd;
            transform_cmd; run_cmd; bench_cmd; tune_cmd; serve_cmd;
            client_cmd ]))
