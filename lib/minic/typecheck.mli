(** Type checker for Mini-C.

    Annotates every expression's [ety] field in place and returns the global
    environment (struct table, globals, functions, externs) used by the
    lowering pass.

    Checking is deliberately permissive in the places C is permissive —
    implicit conversions between arithmetic types, [void*] to and from any
    object pointer — because the paper's legality analysis, not the type
    system, is what rejects layout-hostile programs. It is strict about
    everything that would indicate a malformed program: unknown identifiers,
    unknown struct tags or fields, calling non-functions, field access on
    non-structs. *)

exception Error of string * Loc.t

type env = {
  structs : (string, Ast.struct_decl) Hashtbl.t;
  globals : (string, Ast.ty) Hashtbl.t;
  funcs : (string, Ast.func_decl) Hashtbl.t;
  externs : (string, Ast.extern_decl) Hashtbl.t;
}

val builtin_names : string list
(** Functions the runtime provides: allocation ([malloc], [calloc],
    [realloc], [free]), memory streaming ([memset], [memcpy]), I/O
    ([printf], [putint], [putfloat]), math ([sqrt], [exp], [log], [fabs],
    [pow], [floor]), and a deterministic [rand] / [srand]. *)

val is_builtin : string -> bool

val check : Ast.program -> env
(** Check a program; raises {!Error} on the first type error. *)

val field_index : env -> string -> string -> int
(** [field_index env struct_name field_name] is the declaration index of the
    field; raises {!Error} (with a dummy location) if absent. *)

val lookup_struct : env -> string -> Ast.struct_decl
