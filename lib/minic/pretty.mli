(** Source pretty-printer for Mini-C.

    Emits compilable Mini-C. The parser/printer pair round-trips: parsing
    the printed output yields a structurally identical program (modulo
    locations); the property-based tests rely on this. *)

val string_of_expr : Ast.expr -> string
val string_of_stmt : ?indent:int -> Ast.stmt -> string
val string_of_program : Ast.program -> string
