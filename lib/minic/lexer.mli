(** Hand-written lexer for Mini-C.

    Supports line ([//]) and block ([/* */]) comments, decimal and
    hexadecimal integer literals, floating literals (with exponents),
    character literals (lexed as integer literals), and string literals with
    the common escapes. *)

exception Error of string * Loc.t
(** Raised on malformed input (unterminated comment or string, bad
    character). *)

val tokenize : string -> (Token.t * Loc.t) list
(** Lex the whole input. The result always ends with an [EOF] token. *)
