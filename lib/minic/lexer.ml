exception Error of string * Loc.t

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let loc st = Loc.make ~line:st.line ~col:(st.pos - st.bol + 1)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let keyword_table : (string * Token.t) list =
  [
    ("void", KW_VOID); ("char", KW_CHAR); ("short", KW_SHORT);
    ("int", KW_INT); ("long", KW_LONG); ("float", KW_FLOAT);
    ("double", KW_DOUBLE); ("struct", KW_STRUCT); ("typedef", KW_TYPEDEF);
    ("extern", KW_EXTERN); ("if", KW_IF); ("else", KW_ELSE);
    ("while", KW_WHILE); ("do", KW_DO); ("for", KW_FOR);
    ("return", KW_RETURN); ("break", KW_BREAK); ("continue", KW_CONTINUE);
    ("sizeof", KW_SIZEOF);
    (* accepted and ignored qualifiers are handled in the parser; [const],
       [unsigned], [static] and [register] are lexed as plain identifiers *)
  ]

let skip_ws_and_comments st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      go ()
    | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      go ()
    | Some '/' when peek2 st = Some '*' ->
      let start = loc st in
      advance st;
      advance st;
      let rec in_comment () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
          advance st;
          advance st
        | Some _, _ ->
          advance st;
          in_comment ()
        | None, _ -> raise (Error ("unterminated comment", start))
      in
      in_comment ();
      go ()
    | Some '#' ->
      (* preprocessor-style lines (e.g. #include) are skipped verbatim so
         that benchmark sources can keep familiar headers *)
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      go ()
    | Some _ | None -> ()
  in
  go ()

let lex_number st =
  let start = st.pos in
  let l = loc st in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then (
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    let s = String.sub st.src start (st.pos - start) in
    (Token.INT_LIT (Int64.of_string s), l))
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let is_float = ref false in
    (if peek st = Some '.'
        && (match peek2 st with Some c -> is_digit c | None -> false)
     then (
       is_float := true;
       advance st;
       while (match peek st with Some c -> is_digit c | None -> false) do
         advance st
       done));
    (match peek st with
    | Some ('e' | 'E') ->
      let save = st.pos in
      advance st;
      (match peek st with
      | Some ('+' | '-') -> advance st
      | Some _ | None -> ());
      if match peek st with Some c -> is_digit c | None -> false then (
        is_float := true;
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done)
      else st.pos <- save
    | Some _ | None -> ());
    let s = String.sub st.src start (st.pos - start) in
    if !is_float then (Token.FLOAT_LIT (float_of_string s), l)
    else (Token.INT_LIT (Int64.of_string s), l)
  end

let lex_escape st l =
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> raise (Error (Printf.sprintf "bad escape '\\%c'" c, l))
  | None -> raise (Error ("unterminated escape", l))

let lex_string st =
  let l = loc st in
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      Buffer.add_char buf (lex_escape st l);
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
    | None -> raise (Error ("unterminated string literal", l))
  in
  go ();
  (Token.STR_LIT (Buffer.contents buf), l)

let lex_char st =
  let l = loc st in
  advance st;
  let c =
    match peek st with
    | Some '\\' ->
      advance st;
      lex_escape st l
    | Some c ->
      advance st;
      c
    | None -> raise (Error ("unterminated character literal", l))
  in
  (match peek st with
  | Some '\'' -> advance st
  | Some _ | None -> raise (Error ("unterminated character literal", l)));
  (Token.INT_LIT (Int64.of_int (Char.code c)), l)

let lex_ident st =
  let start = st.pos in
  let l = loc st in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match List.assoc_opt s keyword_table with
  | Some kw -> (kw, l)
  | None -> (Token.IDENT s, l)

let op2 st (t : Token.t) = advance st; advance st; t

let lex_op st : Token.t * Loc.t =
  let l = loc st in
  let t : Token.t =
    match (peek st, peek2 st) with
    | Some '-', Some '>' -> op2 st ARROW
    | Some '+', Some '+' -> op2 st PLUSPLUS
    | Some '-', Some '-' -> op2 st MINUSMINUS
    | Some '+', Some '=' -> op2 st PLUSEQ
    | Some '-', Some '=' -> op2 st MINUSEQ
    | Some '*', Some '=' -> op2 st STAREQ
    | Some '/', Some '=' -> op2 st SLASHEQ
    | Some '=', Some '=' -> op2 st EQ
    | Some '!', Some '=' -> op2 st NE
    | Some '<', Some '=' -> op2 st LE
    | Some '>', Some '=' -> op2 st GE
    | Some '<', Some '<' -> op2 st SHL
    | Some '>', Some '>' -> op2 st SHR
    | Some '&', Some '&' -> op2 st AMPAMP
    | Some '|', Some '|' -> op2 st BARBAR
    | Some '.', Some '.' ->
      advance st; advance st;
      (match peek st with
      | Some '.' -> advance st; ELLIPSIS
      | Some _ | None -> raise (Error ("expected '...'", l)))
    | Some c, _ ->
      advance st;
      (match c with
      | '(' -> LPAREN | ')' -> RPAREN | '{' -> LBRACE | '}' -> RBRACE
      | '[' -> LBRACKET | ']' -> RBRACKET | ';' -> SEMI | ',' -> COMMA
      | '.' -> DOT | ':' -> COLON | '?' -> QUESTION
      | '+' -> PLUS | '-' -> MINUS | '*' -> STAR | '/' -> SLASH
      | '%' -> PERCENT | '=' -> ASSIGN | '<' -> LT | '>' -> GT
      | '!' -> BANG | '&' -> AMP | '|' -> BAR | '^' -> CARET | '~' -> TILDE
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, l)))
    | None, _ -> EOF
  in
  (t, l)

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    skip_ws_and_comments st;
    match peek st with
    | None -> List.rev ((Token.EOF, loc st) :: acc)
    | Some c when is_digit c -> go (lex_number st :: acc)
    | Some c when is_ident_start c -> go (lex_ident st :: acc)
    | Some '"' -> go (lex_string st :: acc)
    | Some '\'' -> go (lex_char st :: acc)
    | Some _ -> go (lex_op st :: acc)
  in
  go []
