(** Recursive-descent parser for Mini-C.

    The grammar follows C's expression precedence ladder. Typedef names are
    tracked in a parser-side environment so that declarations and cast
    expressions can be told apart from uses of ordinary identifiers. *)

exception Error of string * Loc.t
(** Raised on a syntax error, with the offending location. *)

val parse : string -> Ast.program
(** Parse a complete translation unit. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression; used by tests. *)
