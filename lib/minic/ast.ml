(** Abstract syntax for Mini-C.

    Mini-C is the C subset our frontend accepts. It covers everything the
    paper's analyses care about: record types (with optional bit-fields and
    nesting), pointers, arrays, dynamic allocation through [malloc] /
    [calloc] / [realloc] / [free], casts, address-of, [sizeof], direct and
    indirect calls, the memory streaming builtins [memset] / [memcpy], and
    structured control flow.

    The parser produces untyped syntax ({!expr} with [ety = Tauto]); the type
    checker fills in the [ety] field in place of [Tauto] and resolves
    typedefs, yielding the same structure fully annotated. *)

type ty =
  | Tvoid
  | Tchar
  | Tshort
  | Tint
  | Tlong
  | Tfloat
  | Tdouble
  | Tnamed of string  (** a typedef name; eliminated by the checker *)
  | Tstruct of string
  | Tptr of ty
  | Tarray of ty * int
  | Tfun of ty * ty list  (** return type, parameter types *)
  | Tauto  (** placeholder before type checking *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or          (** short-circuit logical && and || *)
  | Band | Bor | Bxor (** bitwise *)
  | Shl | Shr

type unop =
  | Neg   (** arithmetic negation *)
  | Lnot  (** logical ! *)
  | Bnot  (** bitwise ~ *)

type incr = Preinc | Predec | Postinc | Postdec

type expr = { mutable ety : ty; edesc : expr_desc; eloc : Loc.t }

and expr_desc =
  | Eint of int64
  | Efloat of float
  | Estr of string
  | Evar of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eincr of incr * expr
  | Eassign of expr * expr        (** lvalue = rvalue *)
  | Ecall of expr * expr list     (** callee expression, arguments *)
  | Efield of expr * string       (** [e.f] *)
  | Earrow of expr * string       (** [e->f] *)
  | Eindex of expr * expr         (** [e[i]] *)
  | Ederef of expr                (** [*e] *)
  | Eaddr of expr                 (** [&e] *)
  | Ecast of ty * expr
  | Esizeof of ty
  | Econd of expr * expr * expr   (** [c ? a : b] *)

type stmt = { sdesc : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type field_decl = {
  fname : string;
  fty : ty;
  fbits : int option;  (** bit-field width, when declared [ty name : n] *)
  floc : Loc.t;
}

type struct_decl = { sname : string; sfields : field_decl list; stloc : Loc.t }

type func_decl = {
  funname : string;
  funret : ty;
  funparams : (ty * string) list;
  funbody : stmt list;
  funloc : Loc.t;
}

type global_decl = {
  gname : string;
  gty : ty;
  ginit : expr option;
  gloc : Loc.t;
}

type extern_decl = {
  exname : string;
  exret : ty;
  exparams : ty list;
  exvariadic : bool;
}

type decl =
  | Dstruct of struct_decl
  | Dtypedef of string * ty
  | Dglobal of global_decl
  | Dfunc of func_decl
  | Dextern of extern_decl

type program = decl list

(** {1 Convenience constructors} *)

let mk ?(ty = Tauto) loc desc = { ety = ty; edesc = desc; eloc = loc }
let mk_stmt loc desc = { sdesc = desc; sloc = loc }

(** {1 Type utilities} *)

let rec ty_equal a b =
  match (a, b) with
  | Tvoid, Tvoid | Tchar, Tchar | Tshort, Tshort | Tint, Tint
  | Tlong, Tlong | Tfloat, Tfloat | Tdouble, Tdouble | Tauto, Tauto ->
    true
  | Tnamed x, Tnamed y | Tstruct x, Tstruct y -> String.equal x y
  | Tptr x, Tptr y -> ty_equal x y
  | Tarray (x, n), Tarray (y, m) -> n = m && ty_equal x y
  | Tfun (r1, ps1), Tfun (r2, ps2) ->
    ty_equal r1 r2
    && List.length ps1 = List.length ps2
    && List.for_all2 ty_equal ps1 ps2
  | ( ( Tvoid | Tchar | Tshort | Tint | Tlong | Tfloat | Tdouble | Tnamed _
      | Tstruct _ | Tptr _ | Tarray _ | Tfun _ | Tauto ),
      _ ) ->
    false

let is_integer = function
  | Tchar | Tshort | Tint | Tlong -> true
  | Tvoid | Tfloat | Tdouble | Tnamed _ | Tstruct _ | Tptr _ | Tarray _
  | Tfun _ | Tauto ->
    false

let is_float = function
  | Tfloat | Tdouble -> true
  | Tvoid | Tchar | Tshort | Tint | Tlong | Tnamed _ | Tstruct _ | Tptr _
  | Tarray _ | Tfun _ | Tauto ->
    false

let is_arith t = is_integer t || is_float t

let is_pointer = function
  | Tptr _ | Tarray _ -> true
  | Tvoid | Tchar | Tshort | Tint | Tlong | Tfloat | Tdouble | Tnamed _
  | Tstruct _ | Tfun _ | Tauto ->
    false

let rec string_of_ty = function
  | Tvoid -> "void"
  | Tchar -> "char"
  | Tshort -> "short"
  | Tint -> "int"
  | Tlong -> "long"
  | Tfloat -> "float"
  | Tdouble -> "double"
  | Tnamed n -> n
  | Tstruct s -> "struct " ^ s
  | Tptr t -> string_of_ty t ^ "*"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (string_of_ty t) n
  | Tfun (r, ps) ->
    Printf.sprintf "%s(*)(%s)" (string_of_ty r)
      (String.concat ", " (List.map string_of_ty ps))
  | Tauto -> "<auto>"
