open Ast

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let unop_str = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

(* every sub-expression is parenthesised; ugly but unambiguous, which is all
   round-tripping needs *)
let rec string_of_expr e =
  match e.edesc with
  | Eint n -> Int64.to_string n
  | Efloat f ->
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  | Estr s -> Printf.sprintf "%S" s
  | Evar v -> v
  | Ebin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (string_of_expr a) (binop_str op)
      (string_of_expr b)
  | Eun (op, a) -> Printf.sprintf "(%s%s)" (unop_str op) (string_of_expr a)
  | Eincr (Preinc, a) -> Printf.sprintf "(++%s)" (string_of_expr a)
  | Eincr (Predec, a) -> Printf.sprintf "(--%s)" (string_of_expr a)
  | Eincr (Postinc, a) -> Printf.sprintf "(%s++)" (string_of_expr a)
  | Eincr (Postdec, a) -> Printf.sprintf "(%s--)" (string_of_expr a)
  | Eassign (l, r) ->
    Printf.sprintf "(%s = %s)" (string_of_expr l) (string_of_expr r)
  | Ecall (f, args) ->
    Printf.sprintf "%s(%s)" (string_of_expr f)
      (String.concat ", " (List.map string_of_expr args))
  | Efield (b, f) -> Printf.sprintf "%s.%s" (string_of_expr b) f
  | Earrow (b, f) -> Printf.sprintf "%s->%s" (string_of_expr b) f
  | Eindex (b, i) ->
    Printf.sprintf "%s[%s]" (string_of_expr b) (string_of_expr i)
  | Ederef a -> Printf.sprintf "(*%s)" (string_of_expr a)
  | Eaddr a -> Printf.sprintf "(&%s)" (string_of_expr a)
  | Ecast (t, a) ->
    Printf.sprintf "((%s)%s)" (string_of_ty t) (string_of_expr a)
  | Esizeof t -> Printf.sprintf "sizeof(%s)" (string_of_ty t)
  | Econd (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (string_of_expr c) (string_of_expr a)
      (string_of_expr b)

let decl_str t name =
  (* render [t name], putting array bounds after the name *)
  let rec split = function
    | Tarray (u, n) ->
      let base, suffix = split u in
      (base, Printf.sprintf "[%d]%s" n suffix)
    | t -> (t, "")
  in
  let base, suffix = split t in
  Printf.sprintf "%s %s%s" (string_of_ty base) name suffix

(* a body that is exactly one block statement prints as a single pair of
   braces; keeps parse-print a fixpoint *)
let unwrap_block = function
  | [ { sdesc = Sblock inner; _ } ] -> inner
  | body -> body

let rec string_of_stmt ?(indent = 0) s =
  let pad = String.make indent ' ' in
  let block body = string_of_stmts ~indent:(indent + 2) (unwrap_block body) in
  match s.sdesc with
  | Sexpr e -> Printf.sprintf "%s%s;\n" pad (string_of_expr e)
  | Sdecl (t, name, init) -> (
    match init with
    | None -> Printf.sprintf "%s%s;\n" pad (decl_str t name)
    | Some e ->
      Printf.sprintf "%s%s = %s;\n" pad (decl_str t name) (string_of_expr e))
  | Sif (c, a, []) ->
    Printf.sprintf "%sif (%s) {\n%s%s}\n" pad (string_of_expr c) (block a) pad
  | Sif (c, a, b) ->
    Printf.sprintf "%sif (%s) {\n%s%s} else {\n%s%s}\n" pad
      (string_of_expr c) (block a) pad (block b) pad
  | Swhile (c, body) ->
    Printf.sprintf "%swhile (%s) {\n%s%s}\n" pad (string_of_expr c)
      (block body) pad
  | Sdo (body, c) ->
    Printf.sprintf "%sdo {\n%s%s} while (%s);\n" pad (block body) pad
      (string_of_expr c)
  | Sfor (init, cond, step, body) ->
    let init_s =
      match init with
      | None -> ""
      | Some { sdesc = Sexpr e; _ } -> string_of_expr e
      | Some { sdesc = Sdecl (t, n, ini); _ } -> (
        match ini with
        | None -> decl_str t n
        | Some e -> Printf.sprintf "%s = %s" (decl_str t n) (string_of_expr e))
      | Some _ -> "/*?*/"
    in
    let cond_s = match cond with None -> "" | Some e -> string_of_expr e in
    let step_s = match step with None -> "" | Some e -> string_of_expr e in
    Printf.sprintf "%sfor (%s; %s; %s) {\n%s%s}\n" pad init_s cond_s step_s
      (block body) pad
  | Sreturn None -> Printf.sprintf "%sreturn;\n" pad
  | Sreturn (Some e) -> Printf.sprintf "%sreturn %s;\n" pad (string_of_expr e)
  | Sbreak -> Printf.sprintf "%sbreak;\n" pad
  | Scontinue -> Printf.sprintf "%scontinue;\n" pad
  | Sblock body -> Printf.sprintf "%s{\n%s%s}\n" pad (block body) pad

and string_of_stmts ?(indent = 0) body =
  String.concat "" (List.map (string_of_stmt ~indent) body)

let string_of_field f =
  match f.fbits with
  | None -> Printf.sprintf "  %s;\n" (decl_str f.fty f.fname)
  | Some b -> Printf.sprintf "  %s : %d;\n" (decl_str f.fty f.fname) b

let string_of_decl = function
  | Dstruct sd ->
    Printf.sprintf "struct %s {\n%s};\n" sd.sname
      (String.concat "" (List.map string_of_field sd.sfields))
  | Dtypedef (name, t) ->
    Printf.sprintf "typedef %s;\n" (decl_str t name)
  | Dglobal g -> (
    match g.ginit with
    | None -> Printf.sprintf "%s;\n" (decl_str g.gty g.gname)
    | Some e -> Printf.sprintf "%s = %s;\n" (decl_str g.gty g.gname) (string_of_expr e))
  | Dfunc f ->
    let params =
      String.concat ", "
        (List.map (fun (t, n) -> decl_str t n) f.funparams)
    in
    Printf.sprintf "%s %s(%s) {\n%s}\n" (string_of_ty f.funret) f.funname
      params
      (string_of_stmts ~indent:2 f.funbody)
  | Dextern e ->
    Printf.sprintf "extern %s %s(%s%s);\n" (string_of_ty e.exret) e.exname
      (String.concat ", " (List.map string_of_ty e.exparams))
      (if e.exvariadic then ", ..." else "")

let string_of_program p = String.concat "\n" (List.map string_of_decl p)
