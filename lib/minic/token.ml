(** Tokens produced by {!Lexer} and consumed by {!Parser}. *)

type t =
  | INT_LIT of int64
  | FLOAT_LIT of float
  | STR_LIT of string
  | IDENT of string
  (* keywords *)
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE
  | KW_STRUCT | KW_TYPEDEF | KW_EXTERN
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_SIZEOF
  (* punctuation and operators *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW | COLON | QUESTION | ELLIPSIS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSPLUS | MINUSMINUS
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | EQ | NE | LT | LE | GT | GE
  | AMPAMP | BARBAR | BANG
  | AMP | BAR | CARET | TILDE | SHL | SHR
  | EOF

let to_string = function
  | INT_LIT i -> Int64.to_string i
  | FLOAT_LIT f -> string_of_float f
  | STR_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_VOID -> "void" | KW_CHAR -> "char" | KW_SHORT -> "short"
  | KW_INT -> "int" | KW_LONG -> "long" | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double" | KW_STRUCT -> "struct"
  | KW_TYPEDEF -> "typedef" | KW_EXTERN -> "extern"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while"
  | KW_DO -> "do" | KW_FOR -> "for" | KW_RETURN -> "return"
  | KW_BREAK -> "break" | KW_CONTINUE -> "continue" | KW_SIZEOF -> "sizeof"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | ARROW -> "->"
  | COLON -> ":" | QUESTION -> "?" | ELLIPSIS -> "..."
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | ASSIGN -> "=" | PLUSEQ -> "+=" | MINUSEQ -> "-=" | STAREQ -> "*="
  | SLASHEQ -> "/="
  | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | AMPAMP -> "&&" | BARBAR -> "||" | BANG -> "!"
  | AMP -> "&" | BAR -> "|" | CARET -> "^" | TILDE -> "~"
  | SHL -> "<<" | SHR -> ">>"
  | EOF -> "<eof>"
