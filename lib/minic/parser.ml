exception Error of string * Loc.t

type state = {
  toks : (Token.t * Loc.t) array;
  mutable pos : int;
  typedefs : (string, Ast.ty) Hashtbl.t;
}

let cur st = fst st.toks.(st.pos)
let cur_loc st = snd st.toks.(st.pos)

let peek_n st n =
  let i = st.pos + n in
  if i < Array.length st.toks then fst st.toks.(i) else Token.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let error st msg = raise (Error (msg, cur_loc st))

let expect st (t : Token.t) =
  if cur st = t then advance st
  else
    error st
      (Printf.sprintf "expected '%s' but found '%s'" (Token.to_string t)
         (Token.to_string (cur st)))

let accept st (t : Token.t) =
  if cur st = t then (
    advance st;
    true)
  else false

let expect_ident st =
  match cur st with
  | IDENT s ->
    advance st;
    s
  | t -> error st (Printf.sprintf "expected identifier, found '%s'" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let is_type_start st =
  match cur st with
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE
  | KW_STRUCT ->
    true
  | IDENT "const" -> true
  | IDENT s -> Hashtbl.mem st.typedefs s
  | INT_LIT _ | FLOAT_LIT _ | STR_LIT _
  | KW_TYPEDEF | KW_EXTERN | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_SIZEOF
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET | SEMI | COMMA
  | DOT | ARROW | COLON | QUESTION | ELLIPSIS | PLUS | MINUS | STAR | SLASH
  | PERCENT | PLUSPLUS | MINUSMINUS | ASSIGN | PLUSEQ | MINUSEQ | STAREQ
  | SLASHEQ | EQ | NE | LT | LE | GT | GE | AMPAMP | BARBAR | BANG | AMP
  | BAR | CARET | TILDE | SHL | SHR | EOF ->
    false

(* base type: scalar keyword, [struct tag], or typedef name; followed by
   any number of [*] *)
let rec parse_type st : Ast.ty =
  while accept st (IDENT "const") do () done;
  let base =
    match cur st with
    | KW_VOID -> advance st; Ast.Tvoid
    | KW_CHAR -> advance st; Ast.Tchar
    | KW_SHORT -> advance st; Ast.Tshort
    | KW_INT -> advance st; Ast.Tint
    | KW_LONG ->
      advance st;
      (* accept [long long] and [long int] *)
      ignore (accept st KW_LONG);
      ignore (accept st KW_INT);
      Ast.Tlong
    | KW_FLOAT -> advance st; Ast.Tfloat
    | KW_DOUBLE -> advance st; Ast.Tdouble
    | KW_STRUCT ->
      advance st;
      let tag = expect_ident st in
      Ast.Tstruct tag
    | IDENT s when Hashtbl.mem st.typedefs s ->
      advance st;
      Hashtbl.find st.typedefs s
    | t -> error st (Printf.sprintf "expected type, found '%s'" (Token.to_string t))
  in
  parse_pointers st base

and parse_pointers st base =
  if accept st STAR then parse_pointers st (Ast.Tptr base) else base

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* [ (type) ] is a cast iff the token after '(' starts a type *)
let starts_cast st =
  cur st = Token.LPAREN
  &&
  match peek_n st 1 with
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE
  | KW_STRUCT ->
    true
  | IDENT s -> Hashtbl.mem st.typedefs s
  | INT_LIT _ | FLOAT_LIT _ | STR_LIT _ | KW_TYPEDEF | KW_EXTERN | KW_IF
  | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_SIZEOF | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW | COLON | QUESTION | ELLIPSIS | PLUS | MINUS
  | STAR | SLASH | PERCENT | PLUSPLUS | MINUSMINUS | ASSIGN | PLUSEQ
  | MINUSEQ | STAREQ | SLASHEQ | EQ | NE | LT | LE | GT | GE | AMPAMP
  | BARBAR | BANG | AMP | BAR | CARET | TILDE | SHL | SHR | EOF ->
    false

let rec parse_expr st : Ast.expr = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  let l = cur_loc st in
  let mk_compound op =
    advance st;
    let rhs = parse_assign st in
    Ast.mk l (Ast.Eassign (lhs, Ast.mk l (Ast.Ebin (op, lhs, rhs))))
  in
  match cur st with
  | ASSIGN ->
    advance st;
    let rhs = parse_assign st in
    Ast.mk l (Ast.Eassign (lhs, rhs))
  | PLUSEQ -> mk_compound Ast.Add
  | MINUSEQ -> mk_compound Ast.Sub
  | STAREQ -> mk_compound Ast.Mul
  | SLASHEQ -> mk_compound Ast.Div
  | INT_LIT _ | FLOAT_LIT _ | STR_LIT _ | IDENT _ | KW_VOID | KW_CHAR
  | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE | KW_STRUCT
  | KW_TYPEDEF | KW_EXTERN | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_SIZEOF | LPAREN | RPAREN
  | LBRACE | RBRACE | LBRACKET | RBRACKET | SEMI | COMMA | DOT | ARROW
  | COLON | QUESTION | ELLIPSIS | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSPLUS | MINUSMINUS | EQ | NE | LT | LE | GT | GE | AMPAMP | BARBAR
  | BANG | AMP | BAR | CARET | TILDE | SHL | SHR | EOF ->
    lhs

and parse_cond st =
  let c = parse_logor st in
  if accept st QUESTION then begin
    let l = cur_loc st in
    let a = parse_assign st in
    expect st COLON;
    let b = parse_cond st in
    Ast.mk l (Ast.Econd (c, a, b))
  end
  else c

and parse_binary_level st ops next =
  let lhs = ref (next st) in
  let rec go () =
    match List.assoc_opt (cur st) ops with
    | Some op ->
      let l = cur_loc st in
      advance st;
      let rhs = next st in
      lhs := Ast.mk l (Ast.Ebin (op, !lhs, rhs));
      go ()
    | None -> ()
  in
  go ();
  !lhs

and parse_logor st =
  parse_binary_level st [ (Token.BARBAR, Ast.Or) ] parse_logand

and parse_logand st =
  parse_binary_level st [ (Token.AMPAMP, Ast.And) ] parse_bitor

and parse_bitor st = parse_binary_level st [ (Token.BAR, Ast.Bor) ] parse_bitxor
and parse_bitxor st = parse_binary_level st [ (Token.CARET, Ast.Bxor) ] parse_bitand
and parse_bitand st = parse_binary_level st [ (Token.AMP, Ast.Band) ] parse_equality

and parse_equality st =
  parse_binary_level st [ (Token.EQ, Ast.Eq); (Token.NE, Ast.Ne) ] parse_relational

and parse_relational st =
  parse_binary_level st
    [ (Token.LT, Ast.Lt); (Token.LE, Ast.Le); (Token.GT, Ast.Gt); (Token.GE, Ast.Ge) ]
    parse_shift

and parse_shift st =
  parse_binary_level st [ (Token.SHL, Ast.Shl); (Token.SHR, Ast.Shr) ] parse_additive

and parse_additive st =
  parse_binary_level st [ (Token.PLUS, Ast.Add); (Token.MINUS, Ast.Sub) ] parse_multiplicative

and parse_multiplicative st =
  parse_binary_level st
    [ (Token.STAR, Ast.Mul); (Token.SLASH, Ast.Div); (Token.PERCENT, Ast.Mod) ]
    parse_unary

and parse_unary st =
  let l = cur_loc st in
  match cur st with
  | MINUS ->
    advance st;
    Ast.mk l (Ast.Eun (Ast.Neg, parse_unary st))
  | BANG ->
    advance st;
    Ast.mk l (Ast.Eun (Ast.Lnot, parse_unary st))
  | TILDE ->
    advance st;
    Ast.mk l (Ast.Eun (Ast.Bnot, parse_unary st))
  | STAR ->
    advance st;
    Ast.mk l (Ast.Ederef (parse_unary st))
  | AMP ->
    advance st;
    Ast.mk l (Ast.Eaddr (parse_unary st))
  | PLUSPLUS ->
    advance st;
    Ast.mk l (Ast.Eincr (Ast.Preinc, parse_unary st))
  | MINUSMINUS ->
    advance st;
    Ast.mk l (Ast.Eincr (Ast.Predec, parse_unary st))
  | KW_SIZEOF ->
    advance st;
    expect st LPAREN;
    let t = parse_type_with_arrays st in
    expect st RPAREN;
    Ast.mk l (Ast.Esizeof t)
  | LPAREN when starts_cast st ->
    advance st;
    let t = parse_type st in
    expect st RPAREN;
    Ast.mk l (Ast.Ecast (t, parse_unary st))
  | INT_LIT _ | FLOAT_LIT _ | STR_LIT _ | IDENT _ | KW_VOID | KW_CHAR
  | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE | KW_STRUCT
  | KW_TYPEDEF | KW_EXTERN | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE | LPAREN | RPAREN | LBRACE | RBRACE
  | LBRACKET | RBRACKET | SEMI | COMMA | DOT | ARROW | COLON | QUESTION
  | ELLIPSIS | PLUS | SLASH | PERCENT | ASSIGN | PLUSEQ | MINUSEQ | STAREQ
  | SLASHEQ | EQ | NE | LT | LE | GT | GE | AMPAMP | BARBAR | BAR | CARET
  | SHL | SHR | EOF ->
    parse_postfix st

and parse_type_with_arrays st =
  let t = parse_type st in
  let rec arrays t =
    if accept st LBRACKET then begin
      match cur st with
      | INT_LIT n ->
        advance st;
        expect st RBRACKET;
        (* in C, [T a[2][3]] is an array of arrays; innermost first *)
        Ast.Tarray (arrays t, Int64.to_int n)
      | _ -> error st "expected integer array bound"
    end
    else t
  in
  arrays t

and parse_postfix st =
  let e = ref (parse_primary st) in
  let rec go () =
    let l = cur_loc st in
    match cur st with
    | LPAREN ->
      advance st;
      let args = parse_args st in
      expect st RPAREN;
      e := Ast.mk l (Ast.Ecall (!e, args));
      go ()
    | LBRACKET ->
      advance st;
      let i = parse_expr st in
      expect st RBRACKET;
      e := Ast.mk l (Ast.Eindex (!e, i));
      go ()
    | DOT ->
      advance st;
      let f = expect_ident st in
      e := Ast.mk l (Ast.Efield (!e, f));
      go ()
    | ARROW ->
      advance st;
      let f = expect_ident st in
      e := Ast.mk l (Ast.Earrow (!e, f));
      go ()
    | PLUSPLUS ->
      advance st;
      e := Ast.mk l (Ast.Eincr (Ast.Postinc, !e));
      go ()
    | MINUSMINUS ->
      advance st;
      e := Ast.mk l (Ast.Eincr (Ast.Postdec, !e));
      go ()
    | INT_LIT _ | FLOAT_LIT _ | STR_LIT _ | IDENT _ | KW_VOID | KW_CHAR
    | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE | KW_STRUCT
    | KW_TYPEDEF | KW_EXTERN | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
    | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_SIZEOF | RPAREN | LBRACE
    | RBRACE | RBRACKET | SEMI | COMMA | COLON | QUESTION | ELLIPSIS | PLUS
    | MINUS | STAR | SLASH | PERCENT | ASSIGN | PLUSEQ | MINUSEQ | STAREQ
    | SLASHEQ | EQ | NE | LT | LE | GT | GE | AMPAMP | BARBAR | BANG | AMP
    | BAR | CARET | TILDE | SHL | SHR | EOF ->
      ()
  in
  go ();
  !e

and parse_args st =
  if cur st = Token.RPAREN then []
  else begin
    let rec go acc =
      let a = parse_assign st in
      if accept st COMMA then go (a :: acc) else List.rev (a :: acc)
    in
    go []
  end

and parse_primary st =
  let l = cur_loc st in
  match cur st with
  | INT_LIT n ->
    advance st;
    Ast.mk l (Ast.Eint n)
  | FLOAT_LIT f ->
    advance st;
    Ast.mk l (Ast.Efloat f)
  | STR_LIT s ->
    advance st;
    Ast.mk l (Ast.Estr s)
  | IDENT s ->
    advance st;
    Ast.mk l (Ast.Evar s)
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | t ->
    error st (Printf.sprintf "expected expression, found '%s'" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* declarator after a base type: [*]* name ([n])* — returns (type, name) *)
let parse_declarator st base =
  let t = parse_pointers st base in
  let name = expect_ident st in
  let rec arrays t =
    if accept st LBRACKET then begin
      match cur st with
      | INT_LIT n ->
        advance st;
        expect st RBRACKET;
        Ast.Tarray (arrays t, Int64.to_int n)
      | _ -> error st "expected integer array bound"
    end
    else t
  in
  (arrays t, name)

let rec parse_stmt st : Ast.stmt list =
  let l = cur_loc st in
  match cur st with
  | SEMI ->
    advance st;
    []
  | LBRACE ->
    advance st;
    let body = parse_block st in
    [ Ast.mk_stmt l (Ast.Sblock body) ]
  | KW_IF ->
    advance st;
    expect st LPAREN;
    let c = parse_expr st in
    expect st RPAREN;
    let then_ = parse_stmt st in
    let else_ = if accept st KW_ELSE then parse_stmt st else [] in
    [ Ast.mk_stmt l (Ast.Sif (c, then_, else_)) ]
  | KW_WHILE ->
    advance st;
    expect st LPAREN;
    let c = parse_expr st in
    expect st RPAREN;
    let body = parse_stmt st in
    [ Ast.mk_stmt l (Ast.Swhile (c, body)) ]
  | KW_DO ->
    advance st;
    let body = parse_stmt st in
    expect st KW_WHILE;
    expect st LPAREN;
    let c = parse_expr st in
    expect st RPAREN;
    expect st SEMI;
    [ Ast.mk_stmt l (Ast.Sdo (body, c)) ]
  | KW_FOR ->
    advance st;
    expect st LPAREN;
    let init =
      if cur st = Token.SEMI then None
      else if is_type_start st then Some (parse_local_decl st)
      else begin
        let e = parse_expr st in
        Some (Ast.mk_stmt l (Ast.Sexpr e))
      end
    in
    (match init with
    | Some { Ast.sdesc = Ast.Sdecl _; _ } -> () (* decl consumed its ';' *)
    | Some _ | None -> expect st SEMI);
    let cond = if cur st = Token.SEMI then None else Some (parse_expr st) in
    expect st SEMI;
    let step = if cur st = Token.RPAREN then None else Some (parse_expr st) in
    expect st RPAREN;
    let body = parse_stmt st in
    [ Ast.mk_stmt l (Ast.Sfor (init, cond, step, body)) ]
  | KW_RETURN ->
    advance st;
    let e = if cur st = Token.SEMI then None else Some (parse_expr st) in
    expect st SEMI;
    [ Ast.mk_stmt l (Ast.Sreturn e) ]
  | KW_BREAK ->
    advance st;
    expect st SEMI;
    [ Ast.mk_stmt l Ast.Sbreak ]
  | KW_CONTINUE ->
    advance st;
    expect st SEMI;
    [ Ast.mk_stmt l Ast.Scontinue ]
  | INT_LIT _ | FLOAT_LIT _ | STR_LIT _ | IDENT _ | KW_VOID | KW_CHAR
  | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE | KW_STRUCT
  | KW_TYPEDEF | KW_EXTERN | KW_ELSE | KW_SIZEOF | LPAREN | RPAREN | RBRACE
  | LBRACKET | RBRACKET | COMMA | DOT | ARROW | COLON | QUESTION | ELLIPSIS
  | PLUS | MINUS | STAR | SLASH | PERCENT | PLUSPLUS | MINUSMINUS | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | EQ | NE | LT | LE | GT | GE
  | AMPAMP | BARBAR | BANG | AMP | BAR | CARET | TILDE | SHL | SHR | EOF ->
    if is_type_start st then [ parse_local_decl st ]
    else begin
      let e = parse_expr st in
      expect st SEMI;
      [ Ast.mk_stmt l (Ast.Sexpr e) ]
    end

(* one or more local declarations sharing a base type: [int a, *b, c[4];].
   Multiple declarators are packed into an [Sblock]. *)
and parse_local_decl st : Ast.stmt =
  let l = cur_loc st in
  let base_start = st.pos in
  ignore base_start;
  while accept st (IDENT "const") do () done;
  let base =
    match cur st with
    | KW_VOID -> advance st; Ast.Tvoid
    | KW_CHAR -> advance st; Ast.Tchar
    | KW_SHORT -> advance st; Ast.Tshort
    | KW_INT -> advance st; Ast.Tint
    | KW_LONG ->
      advance st;
      ignore (accept st KW_LONG);
      ignore (accept st KW_INT);
      Ast.Tlong
    | KW_FLOAT -> advance st; Ast.Tfloat
    | KW_DOUBLE -> advance st; Ast.Tdouble
    | KW_STRUCT ->
      advance st;
      let tag = expect_ident st in
      Ast.Tstruct tag
    | IDENT s when Hashtbl.mem st.typedefs s ->
      advance st;
      Hashtbl.find st.typedefs s
    | t -> error st (Printf.sprintf "expected type, found '%s'" (Token.to_string t))
  in
  let rec declarators acc =
    let t, name = parse_declarator st base in
    let init = if accept st ASSIGN then Some (parse_assign st) else None in
    let d = Ast.mk_stmt l (Ast.Sdecl (t, name, init)) in
    if accept st COMMA then declarators (d :: acc)
    else begin
      expect st SEMI;
      List.rev (d :: acc)
    end
  in
  match declarators [] with
  | [ d ] -> d
  | ds -> Ast.mk_stmt l (Ast.Sblock ds)

and parse_block st : Ast.stmt list =
  let rec go acc =
    if accept st RBRACE then List.concat (List.rev acc)
    else go (parse_stmt st :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_struct_body st tag =
  let l = cur_loc st in
  expect st LBRACE;
  let fields = ref [] in
  while not (accept st RBRACE) do
    let floc = cur_loc st in
    let base = parse_type st in
    let rec declarators base =
      let t, name = parse_declarator st base in
      let bits =
        if accept st COLON then begin
          match cur st with
          | INT_LIT n ->
            advance st;
            Some (Int64.to_int n)
          | _ -> error st "expected bit-field width"
        end
        else None
      in
      fields := { Ast.fname = name; fty = t; fbits = bits; floc } :: !fields;
      if accept st COMMA then
        (* further declarators share only the base type, not the pointers *)
        declarators
          (match t with Ast.Tptr _ -> strip_ptr t | _ -> t)
      else expect st SEMI
    and strip_ptr = function Ast.Tptr t -> strip_ptr t | t -> t in
    declarators base
  done;
  { Ast.sname = tag; sfields = List.rev !fields; stloc = l }

let parse_params st =
  expect st LPAREN;
  if accept st RPAREN then ([], false)
  else if cur st = Token.KW_VOID && peek_n st 1 = Token.RPAREN then begin
    advance st;
    advance st;
    ([], false)
  end
  else begin
    let variadic = ref false in
    let rec go acc =
      if accept st ELLIPSIS then begin
        variadic := true;
        expect st RPAREN;
        List.rev acc
      end
      else begin
        let base = parse_type st in
        let t, name =
          match cur st with
          | IDENT _ -> parse_declarator st base
          | _ -> (base, "")
          (* unnamed parameter in a prototype *)
        in
        if accept st COMMA then go ((t, name) :: acc)
        else begin
          expect st RPAREN;
          List.rev ((t, name) :: acc)
        end
      end
    in
    let ps = go [] in
    (ps, !variadic)
  end

let parse_toplevel st : Ast.decl list =
  let l = cur_loc st in
  match cur st with
  | KW_TYPEDEF ->
    advance st;
    if cur st = Token.KW_STRUCT then begin
      advance st;
      (* [typedef struct Tag { ... } name;] or [typedef struct Tag name;] *)
      let tag =
        match cur st with
        | IDENT s ->
          advance st;
          Some s
        | LBRACE -> None
        | _ -> error st "expected struct tag or '{'"
      in
      if cur st = Token.LBRACE then begin
        let tag_name =
          match tag with Some s -> s | None -> "__anon" ^ string_of_int st.pos
        in
        let sd = parse_struct_body st tag_name in
        let name = expect_ident st in
        expect st SEMI;
        Hashtbl.replace st.typedefs name (Ast.Tstruct tag_name);
        [ Ast.Dstruct sd; Ast.Dtypedef (name, Ast.Tstruct tag_name) ]
      end
      else begin
        let tag_name = match tag with Some s -> s | None -> assert false in
        let base = parse_pointers st (Ast.Tstruct tag_name) in
        let name = expect_ident st in
        expect st SEMI;
        Hashtbl.replace st.typedefs name base;
        [ Ast.Dtypedef (name, base) ]
      end
    end
    else begin
      let base = parse_type st in
      (* function-pointer typedef: [typedef ret ( * name)(params);] *)
      if cur st = Token.LPAREN then begin
        advance st;
        expect st STAR;
        let name = expect_ident st in
        expect st RPAREN;
        let params, _ = parse_params st in
        expect st SEMI;
        let t = Ast.Tptr (Ast.Tfun (base, List.map fst params)) in
        Hashtbl.replace st.typedefs name t;
        [ Ast.Dtypedef (name, t) ]
      end
      else begin
        let name = expect_ident st in
        expect st SEMI;
        Hashtbl.replace st.typedefs name base;
        [ Ast.Dtypedef (name, base) ]
      end
    end
  | KW_STRUCT when peek_n st 2 = Token.LBRACE ->
    advance st;
    let tag = expect_ident st in
    let sd = parse_struct_body st tag in
    expect st SEMI;
    [ Ast.Dstruct sd ]
  | KW_STRUCT when peek_n st 2 = Token.SEMI ->
    (* forward declaration [struct S;] — no-op *)
    advance st;
    ignore (expect_ident st);
    expect st SEMI;
    []
  | KW_EXTERN ->
    advance st;
    let ret = parse_type st in
    let name = expect_ident st in
    let params, variadic = parse_params st in
    expect st SEMI;
    [ Ast.Dextern
        { exname = name; exret = ret; exparams = List.map fst params;
          exvariadic = variadic } ]
  | INT_LIT _ | FLOAT_LIT _ | STR_LIT _ | IDENT _ | KW_VOID | KW_CHAR
  | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE | KW_IF | KW_ELSE
  | KW_WHILE | KW_DO | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_SIZEOF | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW | COLON | QUESTION | ELLIPSIS | PLUS | MINUS
  | STAR | SLASH | PERCENT | PLUSPLUS | MINUSMINUS | ASSIGN | PLUSEQ
  | MINUSEQ | STAREQ | SLASHEQ | EQ | NE | LT | LE | GT | GE | AMPAMP
  | BARBAR | BANG | AMP | BAR | CARET | TILDE | SHL | SHR | EOF | KW_STRUCT
    ->
    (* global variable or function definition *)
    let base = parse_type st in
    let t, name = parse_declarator st base in
    if cur st = Token.LPAREN then begin
      let params, _variadic = parse_params st in
      if accept st SEMI then
        (* prototype of a function defined later (or never): treat a
           prototype-without-body as extern when no definition follows;
           the checker resolves this. *)
        [ Ast.Dextern
            { exname = name; exret = t; exparams = List.map fst params;
              exvariadic = false } ]
      else begin
        expect st LBRACE;
        let body = parse_block st in
        [ Ast.Dfunc
            { funname = name; funret = t; funparams = params; funbody = body;
              funloc = l } ]
      end
    end
    else begin
      let init = if accept st ASSIGN then Some (parse_assign st) else None in
      let rec more acc =
        if accept st COMMA then begin
          let t2, name2 = parse_declarator st base in
          let init2 = if accept st ASSIGN then Some (parse_assign st) else None in
          more
            (Ast.Dglobal { gname = name2; gty = t2; ginit = init2; gloc = l }
             :: acc)
        end
        else begin
          expect st SEMI;
          List.rev acc
        end
      in
      more [ Ast.Dglobal { gname = name; gty = t; ginit = init; gloc = l } ]
    end

let parse src : Ast.program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; typedefs = Hashtbl.create 16 } in
  let rec go acc =
    if cur st = Token.EOF then List.concat (List.rev acc)
    else go (parse_toplevel st :: acc)
  in
  go []

let parse_expr_string src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; typedefs = Hashtbl.create 16 } in
  let e = parse_expr st in
  if cur st <> Token.EOF then error st "trailing tokens after expression";
  e
