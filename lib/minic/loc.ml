(** Source locations.

    Locations identify tokens, statements and expressions; they survive into
    the IR where they support PBO feedback matching (section 3.1 of the
    paper: "this matching is supported by source line information"). *)

type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }

let make ~line ~col = { line; col }

let pp ppf { line; col } = Fmt.pf ppf "%d:%d" line col

let to_string l = Fmt.str "%a" pp l

let compare (a : t) (b : t) =
  match compare a.line b.line with 0 -> compare a.col b.col | c -> c

let equal a b = compare a b = 0
