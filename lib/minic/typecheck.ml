exception Error of string * Loc.t

type env = {
  structs : (string, Ast.struct_decl) Hashtbl.t;
  globals : (string, Ast.ty) Hashtbl.t;
  funcs : (string, Ast.func_decl) Hashtbl.t;
  externs : (string, Ast.extern_decl) Hashtbl.t;
}

let builtin_names =
  [
    "malloc"; "calloc"; "realloc"; "free"; "memset"; "memcpy"; "printf";
    "putint"; "putfloat"; "sqrt"; "exp"; "log"; "fabs"; "pow"; "floor";
    "rand"; "srand";
  ]

let is_builtin n = List.mem n builtin_names

let err loc fmt = Printf.ksprintf (fun s -> raise (Error (s, loc))) fmt

let lookup_struct env name =
  match Hashtbl.find_opt env.structs name with
  | Some sd -> sd
  | None -> err Loc.dummy "unknown struct '%s'" name

let field_index env sname fname =
  let sd = lookup_struct env sname in
  let rec go i = function
    | [] -> err Loc.dummy "struct '%s' has no field '%s'" sname fname
    | f :: rest -> if String.equal f.Ast.fname fname then i else go (i + 1) rest
  in
  go 0 sd.sfields

(* array-to-pointer decay for rvalue uses *)
let decay = function Ast.Tarray (t, _) -> Ast.Tptr t | t -> t

let usual_arith a b =
  match (a, b) with
  | Ast.Tdouble, _ | _, Ast.Tdouble -> Ast.Tdouble
  | Ast.Tfloat, _ | _, Ast.Tfloat -> Ast.Tfloat
  | Ast.Tlong, _ | _, Ast.Tlong -> Ast.Tlong
  | _ -> Ast.Tint

type scope = { vars : (string, Ast.ty) Hashtbl.t; parent : scope option }

let rec scope_find sc name =
  match Hashtbl.find_opt sc.vars name with
  | Some t -> Some t
  | None -> ( match sc.parent with Some p -> scope_find p name | None -> None)

let builtin_sig name =
  (* return type, None = any args accepted *)
  match name with
  | "malloc" | "calloc" | "realloc" -> Some (Ast.Tptr Ast.Tvoid)
  | "free" | "memset" | "memcpy" | "srand" -> Some Ast.Tvoid
  | "printf" | "putint" | "rand" -> Some Ast.Tint
  | "putfloat" -> Some Ast.Tvoid
  | "sqrt" | "exp" | "log" | "fabs" | "pow" | "floor" -> Some Ast.Tdouble
  | _ -> None

let check (prog : Ast.program) : env =
  let env =
    {
      structs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      externs = Hashtbl.create 16;
    }
  in
  (* first pass: collect declarations *)
  List.iter
    (fun d ->
      match d with
      | Ast.Dstruct sd -> Hashtbl.replace env.structs sd.sname sd
      | Ast.Dtypedef _ -> ()
      | Ast.Dglobal g -> Hashtbl.replace env.globals g.gname g.gty
      | Ast.Dfunc f -> Hashtbl.replace env.funcs f.funname f
      | Ast.Dextern e ->
        if not (Hashtbl.mem env.funcs e.exname) then
          Hashtbl.replace env.externs e.exname e)
    prog;
  (* a prototype followed by a definition: drop the extern entry *)
  Hashtbl.iter (fun n _ -> Hashtbl.remove env.externs n) env.funcs;
  (* validate struct fields refer to known structs *)
  Hashtbl.iter
    (fun _ sd ->
      List.iter
        (fun f ->
          let rec base = function
            | Ast.Tstruct s ->
              if not (Hashtbl.mem env.structs s) then
                err f.Ast.floc "field '%s' has unknown struct type '%s'"
                  f.Ast.fname s
            | Ast.Tptr t | Ast.Tarray (t, _) -> base t
            | Ast.Tvoid | Ast.Tchar | Ast.Tshort | Ast.Tint | Ast.Tlong
            | Ast.Tfloat | Ast.Tdouble | Ast.Tnamed _ | Ast.Tfun _
            | Ast.Tauto ->
              ()
          in
          base f.Ast.fty)
        sd.Ast.sfields)
    env.structs;

  let rec check_expr sc (e : Ast.expr) : Ast.ty =
    let t = infer sc e in
    e.ety <- t;
    t
  and infer sc e : Ast.ty =
    match e.edesc with
    | Eint _ -> Tint
    | Efloat _ -> Tdouble
    | Estr _ -> Tptr Tchar
    | Evar name -> (
      match scope_find sc name with
      | Some t -> t
      | None -> (
        match Hashtbl.find_opt env.globals name with
        | Some t -> t
        | None -> (
          match Hashtbl.find_opt env.funcs name with
          | Some f ->
            Tfun (f.funret, List.map fst f.funparams)
          | None -> (
            match Hashtbl.find_opt env.externs name with
            | Some ex -> Tfun (ex.exret, ex.exparams)
            | None ->
              if is_builtin name then
                Tfun ((match builtin_sig name with Some t -> t | None -> Tint), [])
              else err e.eloc "unknown identifier '%s'" name))))
    | Ebin (op, a, b) -> (
      let ta = decay (check_expr sc a) and tb = decay (check_expr sc b) in
      match op with
      | Add | Sub -> (
        match (ta, tb) with
        | Tptr t, ti when Ast.is_integer ti -> Tptr t
        | ti, Tptr t when Ast.is_integer ti && op = Add -> Tptr t
        | Tptr _, Tptr _ when op = Sub -> Tlong
        | _ when Ast.is_arith ta && Ast.is_arith tb -> usual_arith ta tb
        | _ ->
          err e.eloc "invalid operands to +/-: %s, %s" (Ast.string_of_ty ta)
            (Ast.string_of_ty tb))
      | Mul | Div ->
        if Ast.is_arith ta && Ast.is_arith tb then usual_arith ta tb
        else err e.eloc "invalid operands to */ : %s, %s"
               (Ast.string_of_ty ta) (Ast.string_of_ty tb)
      | Mod | Band | Bor | Bxor | Shl | Shr ->
        if Ast.is_integer ta && Ast.is_integer tb then usual_arith ta tb
        else err e.eloc "integer operands required"
      | Lt | Le | Gt | Ge | Eq | Ne ->
        if (Ast.is_arith ta && Ast.is_arith tb)
           || (Ast.is_pointer ta && Ast.is_pointer tb)
           || (Ast.is_pointer ta && Ast.is_integer tb)
           || (Ast.is_integer ta && Ast.is_pointer tb)
        then Tint
        else err e.eloc "invalid comparison: %s vs %s" (Ast.string_of_ty ta)
               (Ast.string_of_ty tb)
      | And | Or -> Tint)
    | Eun (op, a) -> (
      let ta = decay (check_expr sc a) in
      match op with
      | Neg ->
        if Ast.is_arith ta then ta else err e.eloc "cannot negate %s" (Ast.string_of_ty ta)
      | Lnot -> Tint
      | Bnot ->
        if Ast.is_integer ta then ta else err e.eloc "~ requires integer")
    | Eincr (_, a) ->
      let ta = check_expr sc a in
      check_lvalue a;
      if Ast.is_arith ta || Ast.is_pointer ta then ta
      else err e.eloc "cannot increment %s" (Ast.string_of_ty ta)
    | Eassign (lhs, rhs) ->
      let tl = check_expr sc lhs in
      check_lvalue lhs;
      let _tr = check_expr sc rhs in
      tl
    | Ecall (callee, args) -> (
      List.iter (fun a -> ignore (check_expr sc a)) args;
      match callee.edesc with
      | Evar name when is_builtin name && not (Hashtbl.mem env.funcs name) ->
        callee.ety <- Tfun ((match builtin_sig name with Some t -> t | None -> Tint), []);
        (match builtin_sig name with Some t -> t | None -> Tint)
      | Evar name -> (
        match Hashtbl.find_opt env.funcs name with
        | Some f ->
          callee.ety <- Tfun (f.funret, List.map fst f.funparams);
          f.funret
        | None -> (
          match Hashtbl.find_opt env.externs name with
          | Some ex ->
            callee.ety <- Tfun (ex.exret, ex.exparams);
            ex.exret
          | None -> (
            (* indirect call through a variable holding a function pointer *)
            match scope_find sc name with
            | Some (Tptr (Tfun (r, ps)) | Tfun (r, ps)) ->
              callee.ety <- Tfun (r, ps);
              r
            | Some t -> err e.eloc "call of non-function '%s' : %s" name (Ast.string_of_ty t)
            | None -> (
              match Hashtbl.find_opt env.globals name with
              | Some (Tptr (Tfun (r, ps)) | Tfun (r, ps)) ->
                callee.ety <- Tfun (r, ps);
                r
              | Some t ->
                err e.eloc "call of non-function '%s' : %s" name
                  (Ast.string_of_ty t)
              | None -> err e.eloc "unknown function '%s'" name))))
      | _ -> (
        let tc = decay (check_expr sc callee) in
        match tc with
        | Tptr (Tfun (r, _)) | Tfun (r, _) -> r
        | t -> err e.eloc "call of non-function expression : %s" (Ast.string_of_ty t)))
    | Efield (b, f) -> (
      let tb = check_expr sc b in
      match tb with
      | Tstruct s ->
        let sd = find_struct e.eloc s in
        field_ty e.eloc sd f
      | t -> err e.eloc "'.%s' applied to non-struct %s" f (Ast.string_of_ty t))
    | Earrow (b, f) -> (
      let tb = decay (check_expr sc b) in
      match tb with
      | Tptr (Tstruct s) ->
        let sd = find_struct e.eloc s in
        field_ty e.eloc sd f
      | t -> err e.eloc "'->%s' applied to %s" f (Ast.string_of_ty t))
    | Eindex (b, i) -> (
      let tb = decay (check_expr sc b) in
      let ti = decay (check_expr sc i) in
      if not (Ast.is_integer ti) then err e.eloc "array index must be integer";
      match tb with
      | Tptr t -> t
      | t -> err e.eloc "subscript of non-pointer %s" (Ast.string_of_ty t))
    | Ederef b -> (
      let tb = decay (check_expr sc b) in
      match tb with
      | Tptr t -> t
      | t -> err e.eloc "dereference of non-pointer %s" (Ast.string_of_ty t))
    | Eaddr b -> (
      let tb = check_expr sc b in
      (match b.edesc with
      | Evar n when Hashtbl.mem env.funcs n || Hashtbl.mem env.externs n -> ()
      | _ -> check_lvalue b);
      match tb with
      | Tfun _ as f -> Tptr f
      | t -> Tptr t)
    | Ecast (t, b) ->
      ignore (check_expr sc b);
      resolve e.eloc t
    | Esizeof t ->
      ignore (resolve e.eloc t);
      Tlong
    | Econd (c, a, b) ->
      ignore (check_expr sc c);
      let ta = decay (check_expr sc a) in
      let tb = decay (check_expr sc b) in
      if Ast.is_arith ta && Ast.is_arith tb then usual_arith ta tb else ta
  and check_lvalue (e : Ast.expr) =
    match e.edesc with
    | Evar _ | Ederef _ | Eindex _ | Efield _ | Earrow _ -> ()
    | Eint _ | Efloat _ | Estr _ | Ebin _ | Eun _ | Eincr _ | Eassign _
    | Ecall _ | Eaddr _ | Ecast _ | Esizeof _ | Econd _ ->
      err e.eloc "expression is not an lvalue"
  and find_struct loc s =
    match Hashtbl.find_opt env.structs s with
    | Some sd -> sd
    | None -> err loc "unknown struct '%s'" s
  and field_ty loc sd f =
    match List.find_opt (fun fd -> String.equal fd.Ast.fname f) sd.Ast.sfields with
    | Some fd -> fd.fty
    | None -> err loc "struct '%s' has no field '%s'" sd.sname f
  and resolve loc t =
    match t with
    | Ast.Tstruct s ->
      ignore (find_struct loc s);
      t
    | Ast.Tptr u -> Ast.Tptr (resolve loc u)
    | Ast.Tarray (u, n) -> Ast.Tarray (resolve loc u, n)
    | Ast.Tnamed n -> err loc "unresolved typedef '%s'" n
    | Ast.Tvoid | Ast.Tchar | Ast.Tshort | Ast.Tint | Ast.Tlong | Ast.Tfloat
    | Ast.Tdouble | Ast.Tfun _ | Ast.Tauto ->
      t
  in

  let rec check_stmts sc ret_ty (stmts : Ast.stmt list) =
    match stmts with
    | [] -> ()
    | s :: rest ->
      (match s.sdesc with
      | Sexpr e -> ignore (check_expr sc e)
      | Sdecl (t, name, init) ->
        let t = resolve_decl s.sloc t in
        Hashtbl.replace sc.vars name t;
        Option.iter (fun e -> ignore (check_expr sc e)) init
      | Sif (c, a, b) ->
        ignore (check_expr sc c);
        check_stmts (child sc) ret_ty a;
        check_stmts (child sc) ret_ty b
      | Swhile (c, body) ->
        ignore (check_expr sc c);
        check_stmts (child sc) ret_ty body
      | Sdo (body, c) ->
        check_stmts (child sc) ret_ty body;
        ignore (check_expr sc c)
      | Sfor (init, cond, step, body) ->
        let sc' = child sc in
        Option.iter (fun s0 -> check_stmts sc' ret_ty [ s0 ]) init;
        Option.iter (fun e -> ignore (check_expr sc' e)) cond;
        Option.iter (fun e -> ignore (check_expr sc' e)) step;
        check_stmts (child sc') ret_ty body
      | Sreturn e -> Option.iter (fun e -> ignore (check_expr sc e)) e
      | Sbreak | Scontinue -> ()
      | Sblock body -> check_stmts (child sc) ret_ty body);
      check_stmts sc ret_ty rest
  and child sc = { vars = Hashtbl.create 8; parent = Some sc }
  and resolve_decl loc t =
    match t with
    | Ast.Tstruct s ->
      if not (Hashtbl.mem env.structs s) then err loc "unknown struct '%s'" s;
      t
    | Ast.Tptr u -> Ast.Tptr (resolve_decl loc u)
    | Ast.Tarray (u, n) -> Ast.Tarray (resolve_decl loc u, n)
    | Ast.Tnamed n -> err loc "unresolved typedef '%s'" n
    | Ast.Tvoid | Ast.Tchar | Ast.Tshort | Ast.Tint | Ast.Tlong | Ast.Tfloat
    | Ast.Tdouble | Ast.Tfun _ | Ast.Tauto ->
      t
  in

  (* check globals' initialisers, then function bodies *)
  List.iter
    (fun d ->
      match d with
      | Ast.Dglobal g ->
        let root = { vars = Hashtbl.create 1; parent = None } in
        Option.iter (fun e -> ignore (check_expr root e)) g.ginit
      | Ast.Dfunc f ->
        let root = { vars = Hashtbl.create 8; parent = None } in
        List.iter (fun (t, n) -> Hashtbl.replace root.vars n t) f.funparams;
        check_stmts root f.funret f.funbody
      | Ast.Dstruct _ | Ast.Dtypedef _ | Ast.Dextern _ -> ())
    prog;
  env
