module Legality = Slo_core.Legality
module Pointsto = Slo_pointsto.Pointsto

type severity = Error | Warning | Note

type note = {
  n_msg : string;
  n_fn : string option;
  n_loc : Ir.Loc.t option;
}

type diagnostic = {
  d_rule : string;
  d_severity : severity;
  d_typ : string;
  d_msg : string;
  d_fn : string option;
  d_loc : Ir.Loc.t option;
  d_notes : note list;
  d_invalidating : bool;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let rule_description = function
  | "CSTT" -> "a value is cast to the record type"
  | "CSTF" -> "a pointer to the record type is cast away"
  | "ATKN" -> "a field's address is taken and used beyond a load/store"
  | "LIBC" -> "the type escapes to a library function outside the scope"
  | "IND" -> "the type escapes to an indirect call"
  | "SMAL" -> "an allocation site is below the element-count threshold"
  | "MSET" -> "memset/memcpy assumes the declared layout"
  | "NEST" -> "the type nests or is nested in another record by value"
  | "SIZEOF" -> "sizeof of the type escapes into plain arithmetic"
  | "PTS" -> "points-to collapses the type: one exposed pointer reaches \
              multiple fields"
  | "POOL" -> "a self-referential record qualifies for index-linked pooling"
  | "NOPOOL" -> "a self-referential record fails a pooling precondition"
  | "DEADFIELD" -> "a field is written but never read"
  | "DEADSTORE" -> "a store is never observed on any path to exit"
  | r -> r

let field_name (prog : Ir.program) s fi =
  match Structs.find_opt prog.structs s with
  | Some d when fi >= 0 && fi < Array.length d.fields -> d.fields.(fi).name
  | Some _ | None -> Printf.sprintf "#%d" fi

let check ?(relax = false) (prog : Ir.program) : diagnostic list =
  let leg = Legality.analyze prog in
  let pts = Pointsto.analyze prog in
  let stores = Deadstore.analyze prog in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let alloc_notes s =
    match Legality.attrs_of leg s with
    | None -> []
    | Some a ->
      List.map
        (fun (al : Legality.alloc_site) ->
          {
            n_msg = Printf.sprintf "struct '%s' allocated here" s;
            n_fn = Some al.al_fn;
            n_loc = Some al.al_loc;
          })
        a.alloc_sites
  in
  List.iter
    (fun s ->
      let info = Legality.info leg s in
      (* legality witnesses: one diagnostic per witnessed construct, the
         first one carrying the type's "allocated here" notes *)
      List.iteri
        (fun k (w : Legality.witness) ->
          let tolerated = relax && Legality.relaxable w.w_reason in
          emit
            {
              d_rule = Legality.reason_name w.w_reason;
              d_severity = (if tolerated then Warning else Error);
              d_typ = s;
              d_msg =
                (if tolerated then
                   w.w_explain ^ " (tolerated under relaxed counting)"
                 else w.w_explain);
              d_fn = w.w_fn;
              d_loc = w.w_loc;
              d_notes = (if k = 0 then alloc_notes s else []);
              d_invalidating = not tolerated;
            })
        (Legality.witnesses leg s);
      (* the Relax/Points-To gap: relaxed counting would accept the type,
         but the provenance analysis cannot refute the tolerated casts *)
      if
        info.invalid <> []
        && List.for_all Legality.relaxable info.invalid
        && Pointsto.collapsed pts s
      then begin
        let chain = Pointsto.why_collapsed pts s in
        let head = match chain with e :: _ -> Some e | [] -> None in
        emit
          {
            d_rule = "PTS";
            d_severity = (if relax then Error else Warning);
            d_typ = s;
            d_msg =
              (match head with
              | Some e ->
                Printf.sprintf "points-to collapses struct '%s': %s" s
                  e.Pointsto.ev_what
              | None -> Printf.sprintf "points-to collapses struct '%s'" s);
            d_fn = Option.map (fun e -> e.Pointsto.ev_fn) head;
            d_loc = Option.map (fun e -> e.Pointsto.ev_loc) head;
            d_notes =
              (match chain with
              | [] | [ _ ] -> []
              | _ :: rest ->
                List.map
                  (fun (e : Pointsto.event) ->
                    { n_msg = e.ev_what; n_fn = Some e.ev_fn;
                      n_loc = Some e.ev_loc })
                  rest);
            d_invalidating = relax;
          }
      end)
    (Legality.types leg);
  (* recursive shape: every self-referential record gets a verdict — a
     POOL note with the uniqueness witness when the link fields are
     provably unaliased (cross-checked against points-to), a NOPOOL note
     carrying the refuting construct otherwise. Neither invalidates:
     pooling is opt-in advice, not a legality judgement. *)
  let shp = Shape.analyze prog in
  List.iter
    (fun (v : Shape.verdict) ->
      let s = v.Shape.v_typ in
      let links = String.concat ", " v.v_link_names in
      let site_fn, site_loc =
        match v.v_alloc with
        | Some a -> (Some a.Shape.sp_fn, Some a.sp_loc)
        | None -> (None, None)
      in
      if v.v_poolable && not (Pointsto.collapsed pts s) then
        emit
          {
            d_rule = "POOL";
            d_severity = Note;
            d_typ = s;
            d_msg =
              Printf.sprintf
                "poolable recursive type: struct '%s' forms a linked \
                 structure via %s; nodes come from this single allocation \
                 site and interior pointers never alias or escape"
                s links;
            d_fn = site_fn;
            d_loc = site_loc;
            d_notes =
              List.map
                (fun n ->
                  {
                    n_msg =
                      Printf.sprintf
                        "link field '%s.%s' holds only pool-descended \
                         pointers (or null)"
                        s n;
                    n_fn = site_fn;
                    n_loc = site_loc;
                  })
                v.v_link_names;
            d_invalidating = false;
          }
      else begin
        let witnesses = v.Shape.v_witnesses in
        let head = match witnesses with w :: _ -> Some w | [] -> None in
        let msg, fn, loc =
          match head with
          | Some w ->
            ( Printf.sprintf
                "struct '%s' forms a linked structure via %s but is not \
                 poolable: %s"
                s links w.Shape.sw_explain,
              w.sw_fn, w.sw_loc )
          | None ->
            (* shape-poolable, but points-to collapse contradicts the
               uniqueness proof — report the conservative verdict *)
            ( Printf.sprintf
                "struct '%s' forms a linked structure via %s but is not \
                 poolable: points-to collapses the type"
                s links,
              site_fn, site_loc )
        in
        emit
          {
            d_rule = "NOPOOL";
            d_severity = Note;
            d_typ = s;
            d_msg = msg;
            d_fn = fn;
            d_loc = loc;
            d_notes =
              (match witnesses with
              | [] | [ _ ] -> []
              | _ :: rest ->
                List.map
                  (fun (w : Shape.witness) ->
                    { n_msg =
                        Printf.sprintf "[%s] %s"
                          (Shape.reason_name w.sw_reason)
                          w.sw_explain;
                      n_fn = w.sw_fn; n_loc = w.sw_loc })
                  rest);
            d_invalidating = false;
          }
      end)
    (Shape.verdicts shp);
  (* dead fields: every store is a witness, the first one is the anchor *)
  List.iter
    (fun (s, fi) ->
      match
        List.filter
          (fun (d : Deadstore.store) ->
            String.equal d.ds_struct s && d.ds_field = fi)
          stores
      with
      | [] -> ()
      | first :: rest ->
        emit
          {
            d_rule = "DEADFIELD";
            d_severity = Warning;
            d_typ = s;
            d_msg =
              Printf.sprintf "field '%s.%s' written here is never read" s
                (field_name prog s fi);
            d_fn = Some first.ds_fn;
            d_loc = Some first.ds_loc;
            d_notes =
              List.map
                (fun (d : Deadstore.store) ->
                  {
                    n_msg = "also written here, never read";
                    n_fn = Some d.ds_fn;
                    n_loc = Some d.ds_loc;
                  })
                rest
              @ alloc_notes s;
            d_invalidating = false;
          })
    (Deadstore.never_read_fields stores);
  (* flow-sensitive dead stores to fields that are read elsewhere *)
  List.iter
    (fun (d : Deadstore.store) ->
      if not d.ds_never_read then
        emit
          {
            d_rule = "DEADSTORE";
            d_severity = Warning;
            d_typ = d.ds_struct;
            d_msg =
              Printf.sprintf
                "store to field '%s.%s' is dead: no path to exit reads it \
                 afterwards"
                d.ds_struct
                (field_name prog d.ds_struct d.ds_field);
            d_fn = Some d.ds_fn;
            d_loc = Some d.ds_loc;
            d_notes = [];
            d_invalidating = false;
          })
    stores;
  let key d =
    match d.d_loc with
    | None -> (0, 0)
    | Some l -> (l.Ir.Loc.line, l.Ir.Loc.col)
  in
  List.stable_sort (fun a b -> compare (key a) (key b)) (List.rev !diags)

let render ?src ~file diags =
  let buf = Buffer.create 1024 in
  let src_lines =
    Option.map (fun s -> Array.of_list (String.split_on_char '\n' s)) src
  in
  let pos fn loc =
    match loc with
    | Some (l : Ir.Loc.t) -> Printf.sprintf "%s:%d:%d" file l.line l.col
    | None -> (
      match fn with
      | Some fn -> Printf.sprintf "%s (in '%s')" file fn
      | None -> file)
  in
  let caret loc =
    match (src_lines, loc) with
    | Some lines, Some (l : Ir.Loc.t)
      when l.line >= 1 && l.line <= Array.length lines ->
      let text = lines.(l.line - 1) in
      let pad =
        String.init
          (max 0 (l.col - 1))
          (fun k ->
            if k < String.length text && text.[k] = '\t' then '\t' else ' ')
      in
      Printf.bprintf buf "  %s\n  %s^\n" text pad
    | _ -> ()
  in
  List.iter
    (fun d ->
      Printf.bprintf buf "%s: %s: [%s] %s\n"
        (pos d.d_fn d.d_loc)
        (severity_name d.d_severity)
        d.d_rule d.d_msg;
      caret d.d_loc;
      List.iter
        (fun n ->
          Printf.bprintf buf "  note: %s: %s\n" (pos n.n_fn n.n_loc) n.n_msg)
        d.d_notes)
    diags;
  Buffer.contents buf

let summary diags =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let key = (severity_name d.d_severity, d.d_rule, d.d_typ) in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    diags;
  Hashtbl.fold
    (fun (sev, rule, typ) n acc ->
      Printf.sprintf "%s %s %s %d" sev rule typ n :: acc)
    tbl []
  |> List.sort String.compare

let invalidating_count diags =
  List.length (List.filter (fun d -> d.d_invalidating) diags)
