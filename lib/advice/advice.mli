(** Source-located layout diagnostics.

    This module is the meeting point of the three analyses that judge a
    record type's layout: {!Slo_core.Legality} (witnessed legality
    tests), {!Slo_pointsto.Pointsto} (provenance-chained collapse) and
    {!Deadstore} (flow-sensitive never-read stores). It turns their
    findings into compiler-style diagnostics a programmer can act on —
    "this cast, here, is what blocks splitting of struct [node]" — and
    {!Sarif} serialises the same list for machine consumers.

    Severity model:
    - {e invalidating} findings (the legality reasons, and a points-to
      collapse under relaxed counting) render as [error] and make
      [slopt check] exit non-zero;
    - advice (dead fields, dead stores) renders as [warning];
    - shape verdicts on self-referential records ({!Shape}) render as
      [note]: ["POOL"] when the record qualifies for index-linked
      pooling (the uniqueness witness rides along as notes), ["NOPOOL"]
      with the refuting construct otherwise — neither affects the exit
      code;
    - context ("allocated here", provenance steps) rides along as notes
      on its parent diagnostic. *)

type severity = Error | Warning | Note

type note = {
  n_msg : string;
  n_fn : string option;
  n_loc : Ir.Loc.t option;
}

type diagnostic = {
  d_rule : string;       (** stable rule id: a legality reason name,
                             ["PTS"], ["POOL"], ["NOPOOL"], ["DEADFIELD"]
                             or ["DEADSTORE"] *)
  d_severity : severity;
  d_typ : string;        (** the record type concerned *)
  d_msg : string;
  d_fn : string option;  (** function containing the construct *)
  d_loc : Ir.Loc.t option;
  d_notes : note list;
  d_invalidating : bool; (** blocks layout transformation of [d_typ] *)
}

val rule_description : string -> string
(** One-line description of a rule id (used for SARIF rule metadata). *)

val check : ?relax:bool -> Ir.program -> diagnostic list
(** Run all three analyses and assemble the findings, ordered by source
    location (location-less declaration findings first).

    With [~relax:true] the tolerated reasons (CSTT/CSTF/ATKN) downgrade
    to non-invalidating warnings — {e unless} points-to collapses the
    type, in which case a ["PTS"] diagnostic carrying the provenance
    chain stays invalidating, mirroring the gap between the Relax and
    Points-To columns of the paper's Table 1. *)

val render : ?src:string -> file:string -> diagnostic list -> string
(** Compiler-style text: one [file:line:col: severity: [RULE] message]
    header per diagnostic, a caret snippet under it when [src] (the
    program text) is given, then indented notes. *)

val summary : diagnostic list -> string list
(** Stable, location-free one-liners ["RULE type count"], sorted — the
    golden-list format [make lint] diffs so that line-number churn does
    not break CI, but any new kind of invalidation does. *)

val invalidating_count : diagnostic list -> int
