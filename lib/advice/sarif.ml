module Json = Slo_util.Json

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"

let level_of (s : Advice.severity) =
  match s with
  | Advice.Error -> "error"
  | Advice.Warning -> "warning"
  | Advice.Note -> "note"

let region (l : Ir.Loc.t) =
  Json.Obj [ ("startLine", Json.Int l.line); ("startColumn", Json.Int l.col) ]

let physical_location uri (loc : Ir.Loc.t option) =
  Json.Obj
    (("artifactLocation", Json.Obj [ ("uri", Json.String uri) ])
    ::
    (match loc with
    | Some l -> [ ("region", region l) ]
    | None -> []))

let location uri ?fn ?msg (loc : Ir.Loc.t option) =
  Json.Obj
    (("physicalLocation", physical_location uri loc)
    :: ((match msg with
        | Some m -> [ ("message", Json.Obj [ ("text", Json.String m) ]) ]
        | None -> [])
       @
       match fn with
       | Some f ->
         [
           ( "logicalLocations",
             Json.List
               [
                 Json.Obj
                   [ ("name", Json.String f); ("kind", Json.String "function") ];
               ] );
         ]
       | None -> []))

let result uri (d : Advice.diagnostic) =
  Json.Obj
    [
      ("ruleId", Json.String d.d_rule);
      ("level", Json.String (level_of d.d_severity));
      ("message", Json.Obj [ ("text", Json.String d.d_msg) ]);
      ("locations", Json.List [ location uri ?fn:d.d_fn d.d_loc ]);
      ( "relatedLocations",
        Json.List
          (List.map
             (fun (n : Advice.note) ->
               location uri ?fn:n.n_fn ~msg:n.n_msg n.n_loc)
             d.d_notes) );
      ( "properties",
        Json.Obj
          [
            ("recordType", Json.String d.d_typ);
            ("invalidating", Json.Bool d.d_invalidating);
          ] );
    ]

let export inputs =
  let rule_ids =
    List.concat_map (fun (_, ds) -> List.map (fun d -> d.Advice.d_rule) ds)
      inputs
    |> List.sort_uniq String.compare
  in
  let rules =
    List.map
      (fun id ->
        Json.Obj
          [
            ("id", Json.String id);
            ( "shortDescription",
              Json.Obj [ ("text", Json.String (Advice.rule_description id)) ]
            );
          ])
      rule_ids
  in
  let results =
    List.concat_map (fun (uri, ds) -> List.map (result uri) ds) inputs
  in
  Json.Obj
    [
      ("$schema", Json.String schema_uri);
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "slopt");
                            ( "informationUri",
                              Json.String
                                "https://example.invalid/slopt" );
                            ("rules", Json.List rules);
                          ] );
                    ] );
                ("results", Json.List results);
              ];
          ] );
    ]

let to_string inputs = Json.to_string ~indent:true (export inputs)
