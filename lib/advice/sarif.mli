(** SARIF 2.1.0 export of {!Advice.diagnostic} lists.

    One {e run} with the [slopt] tool driver; each analysed input
    contributes its diagnostics as results whose [physicalLocation]
    points into that input's artifact URI, so a single merged file can
    cover [examples/] plus every roster program and still be consumed by
    any SARIF viewer (or the CI golden-diff). Only the rules that
    actually fired are listed in the driver's rule table. *)

val export : (string * Advice.diagnostic list) list -> Slo_util.Json.t
(** [export [(uri, diags); ...]] builds the complete SARIF document
    (["version": "2.1.0"], one run). Diagnostic notes become
    [relatedLocations]; the containing function, record type and
    invalidation verdict ride in each result's property bag. *)

val to_string : (string * Advice.diagnostic list) list -> string
(** {!export} rendered with indentation. *)
