(** A fixed-size domain pool with a work queue and futures.

    OCaml 5 gives us true shared-memory parallelism via [Domain]; this
    module wraps it in the shape the evaluation harness needs: submit
    independent jobs, await their results {e in submission order} so that
    rendered output is deterministic regardless of worker count, and turn
    a crashed job into a structured {!error} value instead of killing the
    run or hanging the queue.

    Jobs must be pure with respect to shared state: they may read data
    structures owned by the submitting domain (the bench engine shares
    compiled, read-only IR this way) but must not mutate them. *)

type error = {
  err_exn : string;       (** [Printexc.to_string] of the exception *)
  err_backtrace : string; (** raw backtrace, possibly empty *)
}
(** What is left of an exception that escaped a job. *)

exception Worker_error of error
(** Raised by {!await_exn} when the job failed. *)

type t
(** A pool of worker domains. *)

type 'a future
(** The pending result of a submitted job. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs] worker domains ([1 <= jobs <= 256];
    raises [Invalid_argument] otherwise). A pool with [jobs = 1] runs
    every job on a single worker in submission order, which makes it the
    serial reference that [--jobs n] output is compared against. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (the submitting domain keeps
    one), at least 1. *)

val jobs : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job. Raises [Invalid_argument] on a pool that has been
    {!shutdown}. Exceptions raised by the job are caught in the worker
    and surface as [Error] from {!await}; the worker itself survives and
    moves on to the next job. *)

val await : 'a future -> ('a, error) result
(** Block until the job has run. May be called from any domain, any
    number of times. *)

val await_exn : 'a future -> 'a
(** Like {!await} but re-raises the job's failure as {!Worker_error}. *)

val await_timeout : 'a future -> timeout_ms:float -> ('a, error) result option
(** [await_timeout fut ~timeout_ms] blocks until the job has run, but at
    most [timeout_ms] milliseconds; [None] means the deadline expired
    first.

    Cancellation-on-deadline semantics: the deadline cancels the
    {e wait}, never the {e job}. A job already running on a worker
    domain cannot be interrupted, so after a [None] the job keeps
    executing, its eventual result is stored in the future as usual
    (a later {!await} or {!await_timeout} on the same future can still
    retrieve it — this is how the advice server turns an abandoned
    computation into a cache entry for the next request), and the
    worker moves on afterwards. A job that crashes before the deadline
    reports [Some (Error _)], exactly like {!await}; a crash {e after}
    an expired deadline is only visible to callers still holding the
    future. [timeout_ms <= 0.0] is an immediate poll. *)

val shutdown : t -> unit
(** Drain the queue, then join all worker domains. Jobs already submitted
    are completed; further {!submit}s are rejected. Idempotent. *)

val map_ordered : jobs:int -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** [map_ordered ~jobs f xs] runs [f] over [xs] on a fresh pool and
    returns the results in the order of [xs] (not completion order). The
    pool is shut down before returning. *)
