type error = {
  err_exn : string;
  err_backtrace : string;
}

exception Worker_error of error

type 'a state = Pending | Done of 'a | Failed of error

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

type t = {
  q_mutex : Mutex.t;
  q_cond : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable joined : bool;
  mutable domains : unit Domain.t list;
  n_jobs : int;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let jobs t = t.n_jobs

(* Worker loop: take the next thunk off the queue, run it, repeat until
   the pool is closed and the queue drained. The thunk itself contains
   the try/with that feeds the future, so nothing a job raises can
   escape here. *)
let worker t () =
  let rec loop () =
    Mutex.lock t.q_mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.q_cond t.q_mutex
    done;
    match Queue.take_opt t.queue with
    | Some job ->
      Mutex.unlock t.q_mutex;
      job ();
      loop ()
    | None ->
      (* queue empty and pool closed *)
      Mutex.unlock t.q_mutex
  in
  loop ()

let create ~jobs =
  if jobs < 1 || jobs > 256 then
    invalid_arg "Pool.create: jobs must be between 1 and 256";
  let t =
    {
      q_mutex = Mutex.create ();
      q_cond = Condition.create ();
      queue = Queue.create ();
      closed = false;
      joined = false;
      domains = [];
      n_jobs = jobs;
    }
  in
  t.domains <- List.init jobs (fun _ -> Domain.spawn (worker t));
  t

let fill fut st =
  Mutex.lock fut.f_mutex;
  fut.f_state <- st;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

let submit t f =
  let fut =
    { f_mutex = Mutex.create (); f_cond = Condition.create ();
      f_state = Pending }
  in
  let job () =
    match f () with
    | v -> fill fut (Done v)
    | exception e ->
      let bt = Printexc.get_backtrace () in
      fill fut (Failed { err_exn = Printexc.to_string e; err_backtrace = bt })
  in
  Mutex.lock t.q_mutex;
  if t.closed then begin
    Mutex.unlock t.q_mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add job t.queue;
  Condition.signal t.q_cond;
  Mutex.unlock t.q_mutex;
  fut

let await fut =
  Mutex.lock fut.f_mutex;
  while fut.f_state = Pending do
    Condition.wait fut.f_cond fut.f_mutex
  done;
  let st = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match st with
  | Done v -> Ok v
  | Failed e -> Error e
  | Pending -> assert false

let await_exn fut =
  match await fut with Ok v -> v | Error e -> raise (Worker_error e)

(* Condition.wait has no timed variant in the stdlib, so the deadline
   wait polls the future state at a granularity well below any deadline
   a caller would care about (0.2 ms). Each sleep releases the runtime
   lock, so pollers do not starve the workers. *)
let poll_interval_s = 0.0002

let await_timeout fut ~timeout_ms =
  (* monotonic, not wall-clock: an NTP step must not expire (or extend)
     a deadline *)
  let t0 = Slo_util.Clock.now_ns () in
  let remaining_ms () = timeout_ms -. Slo_util.Clock.elapsed_ms ~since:t0 in
  let rec go () =
    let st =
      Mutex.lock fut.f_mutex;
      let st = fut.f_state in
      Mutex.unlock fut.f_mutex;
      st
    in
    match st with
    | Done v -> Some (Ok v)
    | Failed e -> Some (Error e)
    | Pending ->
      let left = remaining_ms () in
      if left <= 0.0 then None
      else begin
        Unix.sleepf (min poll_interval_s (left /. 1000.0));
        go ()
      end
  in
  go ()

let shutdown t =
  Mutex.lock t.q_mutex;
  t.closed <- true;
  Condition.broadcast t.q_cond;
  let must_join = not t.joined in
  t.joined <- true;
  Mutex.unlock t.q_mutex;
  if must_join then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let map_ordered ~jobs f xs =
  let t = create ~jobs in
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  let results = List.map await futs in
  shutdown t;
  results
