(** Per-function virtual-register type reconstruction.

    IR operands are untyped; the legality tests and the BE transformations
    need to know when a register holds a pointer to a given record type
    (escaping arguments, [free] of a split type, ...). Types are
    reconstructed from defining instructions in two forward passes (the
    second resolves [Imov] joins whose source is defined later in block
    order). Unknown registers report [None]. *)

val infer : Ir.program -> Ir.func -> Irty.t option array
(** Indexed by register number. *)

val struct_ptr : Irty.t option -> string option
(** [Some s] when the type is a pointer to [struct s]. *)
