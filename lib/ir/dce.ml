let removable (i : Ir.instr) =
  match i.idesc with
  | Ir.Imov _ | Ir.Ibin _ | Ir.Iun _ | Ir.Icast _ | Ir.Iaddrglob _
  | Ir.Iaddrlocal _ | Ir.Iaddrstr _ | Ir.Iaddrfunc _ | Ir.Ifieldaddr _
  | Ir.Iptradd _ | Ir.Iload _ ->
    true
  | Ir.Istore _ | Ir.Icall _ | Ir.Ialloc _ | Ir.Ifree _ | Ir.Imemset _
  | Ir.Imemcpy _ ->
    false

let cleanup (f : Ir.func) : int =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let used = Array.make f.next_reg false in
    let mark_op = function
      | Ir.Oreg r -> used.(r) <- true
      | Ir.Oimm _ | Ir.Ofimm _ -> ()
    in
    List.iter
      (fun (b : Ir.block) ->
        List.iter (fun i -> List.iter mark_op (Ir.used_operands i)) b.instrs;
        match b.btermin with
        | Ir.Tbr (o, _, _) -> mark_op o
        | Ir.Tret (Some o) -> mark_op o
        | Ir.Tret None | Ir.Tjmp _ -> ())
      f.fblocks;
    List.iter
      (fun (b : Ir.block) ->
        let keep, drop =
          List.partition
            (fun i ->
              match Ir.defined_reg i with
              | Some r when removable i -> used.(r)
              | Some _ | None -> true)
            b.instrs
        in
        if drop <> [] then begin
          b.instrs <- keep;
          removed := !removed + List.length drop;
          changed := true
        end)
      f.fblocks
  done;
  !removed
