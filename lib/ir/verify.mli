(** Static IR well-formedness checking.

    The BE transformations mutate the IR in place; this pass machine-checks
    the invariants every IR consumer relies on, so a mis-rewritten access
    chain is reported as a structured error instead of silently corrupting
    the program (or only surfacing when a fuzz seed happens to execute
    it). It verifies that:

    - every struct named by a type annotation, a [fieldaddr], a load/store
      access tag or a memset/memcpy tag exists in the struct table, and
      every field index is in range — so there are no dangling references
      to the original struct after split/peel/rebuild;
    - field names are unique per struct and bit-fields sit on integers;
    - the CFG is consistent: unique in-range block ids, every terminator
      targets an existing block, no empty functions;
    - every register is in range and, if used, defined by some instruction
      of the function;
    - globals, locals and functions referenced by name exist; direct calls
      pass the declared number of arguments; parameters have stack slots;
    - instruction ids are unique program-wide. *)

type site = {
  in_func : string option;   (** [None] for program-level errors *)
  in_block : int option;
  in_instr : string option;  (** the offending instruction, printed *)
}

type kind =
  | Unknown_struct of string
  | Field_out_of_range of string * int  (** struct, field index *)
  | Duplicate_field of string * string  (** struct, field name *)
  | Bad_bitfield of string * string  (** struct, non-integer bit-field *)
  | Unknown_global of string
  | Duplicate_global of string
  | Unknown_local of string
  | Unknown_function of string
  | Duplicate_function of string
  | Empty_function
  | Duplicate_block of int
  | Block_out_of_range of int
  | Bad_branch_target of int
  | Reg_out_of_range of int
  | Undefined_register of int
  | Arity_mismatch of string * int * int  (** callee, declared, passed *)
  | Param_without_slot of string
  | Duplicate_iid of int
  | Missing_loc
      (** an instruction carries no source location — only reported under
          [~require_locs:true], which the diagnostics pipeline uses to
          assert that location threading survived lowering and every
          transformation *)

type error = { site : site; kind : kind }

val string_of_kind : kind -> string
val string_of_error : error -> string

val report : error list -> string
(** One {!string_of_error} line per error. *)

val program : ?require_locs:bool -> Ir.program -> error list
(** All well-formedness violations, in discovery order (program-level
    first, then per function in program order). [~require_locs:true]
    (default [false]) additionally reports {!Missing_loc} for every
    instruction whose location is {!Ir.Loc.dummy}. *)

val ok : ?require_locs:bool -> Ir.program -> bool
(** [ok p] iff {!program} finds nothing. *)

exception Ill_formed of error list

val check : ?require_locs:bool -> Ir.program -> unit
(** Raise {!Ill_formed} with all errors if the program is malformed. *)
