(** Loop structure graph via Havlak's algorithm.

    The paper's affinity analysis is loop-granular: "Our granularity for
    closeness is the loop level. The FE uses the loop optimizer's loop
    recognition, which is based on [Havlak 97], to build a loop structure
    graph." This module is that component. It handles irreducible regions
    (marking them) even though CFGs lowered from structured Mini-C are
    always reducible; the property tests exercise synthetic irreducible
    graphs. *)

type loop = {
  header : int;  (** header block id *)
  mutable body : int list;
      (** blocks whose {e innermost} loop is this one, including the header *)
  mutable children : loop list;
  mutable parent : loop option;
  mutable depth : int;  (** 1 for outermost loops *)
  mutable irreducible : bool;
}

type forest

val compute : Cfg.t -> forest

val top_level : forest -> loop list
val all_loops : forest -> loop list
(** Every loop, innermost first (safe order for frequency propagation). *)

val innermost : forest -> int -> loop option
(** Innermost loop containing the block, if any. A header's innermost loop
    is its own loop. *)

val all_blocks : loop -> int list
(** Blocks of the loop including nested loops' blocks. *)

val is_back_edge : forest -> int * int -> bool
(** [(src, dst)] is a back edge of some recognised loop. *)

val loop_of_header : forest -> int -> loop option
val depth_of_block : forest -> int -> int
(** Nesting depth of the innermost loop containing the block; 0 outside
    loops. *)
