let infer (prog : Ir.program) (f : Ir.func) : Irty.t option array =
  let tys = Array.make f.next_reg None in
  let globals = Hashtbl.create 16 in
  List.iter (fun (n, t, _) -> Hashtbl.replace globals n t) prog.globals;
  let locals = Hashtbl.create 16 in
  List.iter (fun (n, t) -> Hashtbl.replace locals n t) f.flocals;
  let operand_ty = function
    | Ir.Oreg r -> tys.(r)
    | Ir.Oimm _ -> Some Irty.Long
    | Ir.Ofimm _ -> Some Irty.Double
  in
  let field_ty s fi =
    match Structs.find_opt prog.structs s with
    | Some d when fi < Array.length d.fields -> Some d.fields.(fi).ty
    | Some _ | None -> None
  in
  let pass () =
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            match i.idesc with
            | Ir.Imov (r, o) -> (
              match operand_ty o with Some t -> tys.(r) <- Some t | None -> ())
            | Ir.Ibin (r, op, ty, _, _) -> (
              match op with
              | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge | Ir.Eq | Ir.Ne ->
                tys.(r) <- Some Irty.Int
              | Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Mod | Ir.Band
              | Ir.Bor | Ir.Bxor | Ir.Shl | Ir.Shr ->
                tys.(r) <- Some ty)
            | Ir.Iun (r, u, ty, _) ->
              tys.(r) <- Some (match u with Ir.Lnot -> Irty.Int | Ir.Neg | Ir.Bnot -> ty)
            | Ir.Icast (r, _, to_, _, _) -> tys.(r) <- Some to_
            | Ir.Iload (r, _, ty, _) -> tys.(r) <- Some ty
            | Ir.Iaddrglob (r, g) -> (
              match Hashtbl.find_opt globals g with
              | Some t -> tys.(r) <- Some (Irty.Ptr t)
              | None -> ())
            | Ir.Iaddrlocal (r, l) -> (
              match Hashtbl.find_opt locals l with
              | Some t -> tys.(r) <- Some (Irty.Ptr t)
              | None -> ())
            | Ir.Iaddrstr (r, _) -> tys.(r) <- Some (Irty.Ptr Irty.Char)
            | Ir.Iaddrfunc (r, _) -> tys.(r) <- Some Irty.Funptr
            | Ir.Ifieldaddr (r, _, s, fi) -> (
              match field_ty s fi with
              | Some t -> tys.(r) <- Some (Irty.Ptr t)
              | None -> ())
            | Ir.Iptradd (r, _, _, elem) -> tys.(r) <- Some (Irty.Ptr elem)
            | Ir.Icall (Some r, callee, _) -> (
              match callee with
              | Ir.Cdirect n -> (
                match Ir.find_func prog n with
                | Some g -> tys.(r) <- Some g.fret
                | None -> tys.(r) <- Some Irty.Long)
              | Ir.Cbuiltin ("sqrt" | "exp" | "log" | "fabs" | "pow" | "floor") ->
                tys.(r) <- Some Irty.Double
              | Ir.Cbuiltin _ | Ir.Cextern _ | Ir.Cindirect _ ->
                tys.(r) <- Some Irty.Long)
            | Ir.Ialloc (r, _, _, elem) -> tys.(r) <- Some (Irty.Ptr elem)
            | Ir.Icall (None, _, _) | Ir.Istore _ | Ir.Ifree _ | Ir.Imemset _
            | Ir.Imemcpy _ ->
              ())
          b.instrs)
      f.fblocks
  in
  pass ();
  pass ();
  tys

let struct_ptr = function
  | Some (Irty.Ptr (Irty.Struct s)) -> Some s
  | Some _ | None -> None
