module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) = struct
  type result = { before : L.t array; after : L.t array }

  (* Round-robin sweeps in (reverse) rpo until no boundary fact moves.
     The roster programs have tens of blocks per function, so a priority
     worklist would buy nothing over the cache-friendly sweep. *)

  let forward (cfg : Cfg.t) ~(init : L.t) ~transfer : result =
    let n = Cfg.num_blocks cfg in
    let before = Array.make n L.bottom and after = Array.make n L.bottom in
    let entry = Cfg.entry cfg in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun bid ->
          let in_f =
            List.fold_left
              (fun acc p -> L.join acc after.(p))
              (if bid = entry then init else L.bottom)
              cfg.preds.(bid)
          in
          let out_f = transfer cfg.blocks.(bid) in_f in
          if not (L.equal in_f before.(bid) && L.equal out_f after.(bid)) then
            changed := true;
          before.(bid) <- in_f;
          after.(bid) <- out_f)
        cfg.rpo
    done;
    { before; after }

  let backward (cfg : Cfg.t) ~(init : L.t) ~transfer : result =
    let n = Cfg.num_blocks cfg in
    let before = Array.make n L.bottom and after = Array.make n L.bottom in
    let order =
      let k = Array.length cfg.rpo in
      Array.init k (fun i -> cfg.rpo.(k - 1 - i))
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun bid ->
          let out_f =
            match cfg.succs.(bid) with
            | [] -> init
            | ss ->
              List.fold_left (fun acc s -> L.join acc before.(s)) L.bottom ss
          in
          let in_f = transfer cfg.blocks.(bid) out_f in
          if not (L.equal in_f before.(bid) && L.equal out_f after.(bid)) then
            changed := true;
          before.(bid) <- in_f;
          after.(bid) <- out_f)
        order
    done;
    { before; after }
end
