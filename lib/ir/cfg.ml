type t = {
  func : Ir.func;
  blocks : Ir.block array;
  succs : int list array;
  preds : int list array;
  rpo : int array;
  rpo_index : int array;
}

let build (f : Ir.func) : t =
  let n = f.next_block in
  let dummy =
    { Ir.bid = -1; instrs = []; btermin = Ir.Tret None;
      bloc = Slo_minic.Loc.dummy }
  in
  let blocks = Array.make n dummy in
  List.iter (fun b -> blocks.(b.Ir.bid) <- b) f.fblocks;
  let succs = Array.make n [] and preds = Array.make n [] in
  List.iter
    (fun b ->
      let ss = Ir.block_succs b in
      succs.(b.Ir.bid) <- ss;
      List.iter (fun s -> preds.(s) <- b.Ir.bid :: preds.(s)) ss)
    f.fblocks;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  (* postorder DFS from entry block (block 0 by construction) *)
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      post := b :: !post
    end
  in
  let entry = match f.fblocks with b :: _ -> b.Ir.bid | [] -> 0 in
  dfs entry;
  let rpo = Array.of_list !post in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  { func = f; blocks; succs; preds; rpo; rpo_index }

let entry t = match t.func.Ir.fblocks with b :: _ -> b.Ir.bid | [] -> 0
let num_blocks t = Array.length t.blocks
let reachable t b = b >= 0 && b < Array.length t.rpo_index && t.rpo_index.(b) >= 0

let edges t =
  Array.to_list t.rpo
  |> List.concat_map (fun src -> List.map (fun dst -> (src, dst)) t.succs.(src))

let is_fp_block (b : Ir.block) =
  List.exists
    (fun (i : Ir.instr) ->
      match i.idesc with
      | Ir.Ibin (_, _, t, _, _) | Ir.Iun (_, _, t, _) | Ir.Iload (_, _, t, _)
      | Ir.Istore (_, _, t, _) ->
        Irty.is_float_ty t
      | Ir.Icast (_, from_, to_, _, _) ->
        Irty.is_float_ty from_ || Irty.is_float_ty to_
      | Ir.Imov _ | Ir.Iaddrglob _ | Ir.Iaddrlocal _ | Ir.Iaddrstr _
      | Ir.Iaddrfunc _ | Ir.Ifieldaddr _ | Ir.Iptradd _ | Ir.Icall _
      | Ir.Ialloc _ | Ir.Ifree _ | Ir.Imemset _ | Ir.Imemcpy _ ->
        false)
    b.Ir.instrs
