let copy_instr (i : Ir.instr) : Ir.instr =
  { Ir.iid = i.iid; iloc = i.iloc; idesc = i.idesc }

let copy_block (b : Ir.block) : Ir.block =
  {
    Ir.bid = b.bid;
    instrs = List.map copy_instr b.instrs;
    btermin = b.btermin;
    bloc = b.bloc;
  }

let copy_func (f : Ir.func) : Ir.func =
  {
    Ir.fname = f.fname;
    fret = f.fret;
    fparams = f.fparams;
    flocals = f.flocals;
    fblocks = List.map copy_block f.fblocks;
    floc = f.floc;
    next_reg = f.next_reg;
    next_block = f.next_block;
  }

let copy_program (p : Ir.program) : Ir.program =
  {
    Ir.structs = Structs.copy p.structs;
    globals = p.globals;
    funcs = List.map copy_func p.funcs;
    pexterns = p.pexterns;
    psizeof_uses = p.psizeof_uses;
    next_iid = p.next_iid;
  }
