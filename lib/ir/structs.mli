(** The program's record-type table.

    This is the IR analogue of the type-unified IPA symbol table from the
    paper: one mutable registry mapping struct names to their field lists.
    The BE transformations create new entries (hot/cold/peeled pieces) and
    replace existing ones; everything downstream (layout, VM) consults the
    table by name, so a layout change is a single table update. *)

type field = {
  name : string;
  ty : Irty.t;
  bits : int option;  (** bit-field width if any *)
}

type decl = { sname : string; fields : field array }

type t

val create : unit -> t

val define : t -> string -> field list -> unit
(** Define or replace a struct. *)

val remove : t -> string -> unit
(** Delete a struct definition. The BE removes a split/peeled type's
    original definition so that any access the rewrite missed fails loudly
    instead of reading through a stale layout. *)

val find : t -> string -> decl
(** Raises [Not_found] if the struct is not defined. *)

val find_opt : t -> string -> decl option
val mem : t -> string -> bool

val field : t -> string -> int -> field
(** [field t s i] is field number [i] (declaration order) of struct [s]. *)

val field_index : t -> string -> string -> int option
val names : t -> string list
(** All defined struct names, sorted. *)

val iter : (decl -> unit) -> t -> unit
val copy : t -> t
(** Deep-enough copy: the transformations mutate the copy, originals keep
    their layout (needed to run original and transformed programs side by
    side). *)
