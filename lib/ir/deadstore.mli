(** Flow-sensitive dead-store / never-read-field analysis.

    The advisor's dead-field advice ("field [f] is never read") is
    flow-insensitive: it only needs the set of tagged loads. This module
    upgrades it to per-site advice — {e this} store at {e this} source
    location writes a value no execution can observe — by running a
    backward may-read-later analysis over each function's CFG with
    {!Dataflow}, seeded interprocedurally with transitive may-read
    summaries from {!Callgraph}.

    The analysis is deliberately conservative, in the same way the
    legality tests are:

    - a field whose address escapes a plain load/store addressing
      position (ATKN-style uses, including being passed to a call) is
      treated as readable everywhere and never reported;
    - fields of types reachable by extern / builtin / indirect calls are
      treated as read by every such call;
    - [memcpy]/[memset] tagged with a struct count as reading all its
      fields;
    - only [main] gets an empty may-read set at exit — any other
      function's caller may read any field after it returns;
    - stores do not kill the may-read fact: telling two objects of the
      same type apart would need a points-to query this layer
      deliberately avoids, so a store overwritten by a later store to
      the same field is only reported when no read of the field follows
      on any path at all.

    A reported store is therefore dead along {e every} path to program
    exit, not merely unprofiled. *)

type store = {
  ds_struct : string;
  ds_field : int;
  ds_fn : string;       (** function containing the store *)
  ds_iid : int;         (** instruction id of the store *)
  ds_loc : Ir.Loc.t;
  ds_never_read : bool;
      (** no tagged load of this field exists anywhere in the program:
          the store is dead flow-insensitively, and the field itself is
          write-only *)
}

val analyze : Ir.program -> store list
(** All dead stores, ordered by (function, instruction id). *)

val never_read_fields : store list -> (string * int) list
(** The (struct, field) pairs that are written but never read anywhere
    ([ds_never_read] witnesses), sorted and deduplicated. *)
