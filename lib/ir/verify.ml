(** Static IR well-formedness checking.

    The BE transformations ({!Transform.split}, {!Transform.peel},
    {!Transform.rebuild}) mutate the IR in place: they retarget field
    accesses, rewrite allocation sites and remove the original struct from
    the table. A single mis-rewritten access chain silently corrupts the
    program, and is only caught if a fuzz seed happens to execute it. This
    pass machine-checks the invariants every consumer of the IR (the VM,
    the analyses, the transformations themselves) relies on:

    - every struct named by a type, a [fieldaddr], an access tag or a
      memset/memcpy tag exists in the struct table, and every field index
      is in range — in particular there are no dangling references to a
      struct removed by split/peel;
    - field names are unique within a struct and bit-fields sit on
      integer types;
    - the CFG is consistent: block ids are unique and in range, every
      terminator targets an existing block, functions are non-empty;
    - every register mentioned anywhere is in range and defined by some
      instruction of the function (the IR is not SSA, but a use of a
      register that {e no} instruction defines means a rewrite dropped a
      definition and kept a user);
    - names resolve: globals, locals, address-taken and directly called
      functions; direct calls pass the declared number of arguments;
      every parameter has a stack slot in [flocals];
    - instruction ids are unique program-wide (the profile matcher keys
      on them).

    Errors carry enough context to be actionable: the function, block and
    printed instruction they were found in. *)

type site = {
  in_func : string option;
  in_block : int option;
  in_instr : string option;  (** the offending instruction, printed *)
}

type kind =
  | Unknown_struct of string
      (** a type, field access or tag names a struct not in the table *)
  | Field_out_of_range of string * int  (** struct, field index *)
  | Duplicate_field of string * string  (** struct, field name *)
  | Bad_bitfield of string * string  (** struct, non-integer bit-field *)
  | Unknown_global of string
  | Duplicate_global of string
  | Unknown_local of string
  | Unknown_function of string
  | Duplicate_function of string
  | Empty_function
  | Duplicate_block of int
  | Block_out_of_range of int  (** bid outside [0, next_block) *)
  | Bad_branch_target of int  (** terminator targets a missing block *)
  | Reg_out_of_range of int  (** register outside [0, next_reg) *)
  | Undefined_register of int  (** used but defined by no instruction *)
  | Arity_mismatch of string * int * int  (** callee, declared, passed *)
  | Param_without_slot of string  (** parameter missing from [flocals] *)
  | Duplicate_iid of int  (** instruction id used twice program-wide *)
  | Missing_loc  (** instruction carries no source location (opt-in check) *)

type error = { site : site; kind : kind }

let string_of_kind = function
  | Unknown_struct s -> Printf.sprintf "reference to unknown struct '%s'" s
  | Field_out_of_range (s, i) ->
    Printf.sprintf "field index #%d out of range for struct '%s'" i s
  | Duplicate_field (s, f) ->
    Printf.sprintf "duplicate field '%s' in struct '%s'" f s
  | Bad_bitfield (s, f) ->
    Printf.sprintf "bit-field '%s.%s' on a non-integer type" s f
  | Unknown_global g -> Printf.sprintf "reference to unknown global '%s'" g
  | Duplicate_global g -> Printf.sprintf "duplicate global '%s'" g
  | Unknown_local l -> Printf.sprintf "reference to unknown local '%s'" l
  | Unknown_function f -> Printf.sprintf "reference to unknown function '%s'" f
  | Duplicate_function f -> Printf.sprintf "duplicate function '%s'" f
  | Empty_function -> "function has no blocks"
  | Duplicate_block b -> Printf.sprintf "duplicate block id B%d" b
  | Block_out_of_range b ->
    Printf.sprintf "block id B%d outside [0, next_block)" b
  | Bad_branch_target b -> Printf.sprintf "branch to missing block B%d" b
  | Reg_out_of_range r ->
    Printf.sprintf "register %%r%d outside [0, next_reg)" r
  | Undefined_register r ->
    Printf.sprintf "register %%r%d is used but never defined" r
  | Arity_mismatch (f, want, got) ->
    Printf.sprintf "call to '%s' passes %d arguments, declared with %d" f got
      want
  | Param_without_slot p ->
    Printf.sprintf "parameter '%s' has no slot in flocals" p
  | Duplicate_iid i -> Printf.sprintf "instruction id %d used twice" i
  | Missing_loc -> "instruction carries no source location"

let string_of_error e =
  let where =
    match e.site with
    | { in_func = None; _ } -> "program"
    | { in_func = Some f; in_block = None; _ } -> f
    | { in_func = Some f; in_block = Some b; in_instr = None } ->
      Printf.sprintf "%s.B%d" f b
    | { in_func = Some f; in_block = Some b; in_instr = Some i } ->
      Printf.sprintf "%s.B%d: %s" f b i
  in
  Printf.sprintf "%s: %s" where (string_of_kind e.kind)

let report errors =
  String.concat "\n" (List.map string_of_error errors)

exception Ill_formed of error list

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let program ?(require_locs = false) (p : Ir.program) : error list =
  let errors = ref [] in
  let fail site kind = errors := { site; kind } :: !errors in
  let prog_site = { in_func = None; in_block = None; in_instr = None } in

  (* struct table: field-name uniqueness, bit-field sanity, and the
     struct names mentioned by field types *)
  let struct_ok s = Structs.mem p.structs s in
  let rec check_ty site (t : Irty.t) =
    match t with
    | Irty.Struct s -> if not (struct_ok s) then fail site (Unknown_struct s)
    | Irty.Ptr u | Irty.Array (u, _) -> check_ty site u
    | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long | Irty.Float
    | Irty.Double | Irty.Funptr ->
      ()
  in
  Structs.iter
    (fun d ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun (f : Structs.field) ->
          if Hashtbl.mem seen f.name then
            fail prog_site (Duplicate_field (d.sname, f.name))
          else Hashtbl.replace seen f.name ();
          if f.bits <> None && not (Irty.is_integer_ty f.ty) then
            fail prog_site (Bad_bitfield (d.sname, f.name));
          check_ty prog_site f.ty)
        d.fields)
    p.structs;

  (* globals *)
  let global_names = Hashtbl.create 16 in
  List.iter
    (fun (n, t, _) ->
      if Hashtbl.mem global_names n then fail prog_site (Duplicate_global n)
      else Hashtbl.replace global_names n ();
      check_ty prog_site t)
    p.globals;

  (* function table *)
  let func_names = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      if Hashtbl.mem func_names f.fname then
        fail prog_site (Duplicate_function f.fname)
      else Hashtbl.replace func_names f.fname f)
    p.funcs;

  let check_access site (acc : Ir.access option) =
    match acc with
    | None -> ()
    | Some a -> (
      match Structs.find_opt p.structs a.astruct with
      | None -> fail site (Unknown_struct a.astruct)
      | Some d ->
        if a.afield < 0 || a.afield >= Array.length d.fields then
          fail site (Field_out_of_range (a.astruct, a.afield)))
  in
  let check_struct_tag site = function
    | Some s when not (struct_ok s) -> fail site (Unknown_struct s)
    | Some _ | None -> ()
  in

  let seen_iids = Hashtbl.create 256 in

  List.iter
    (fun (f : Ir.func) ->
      let fsite = { in_func = Some f.fname; in_block = None; in_instr = None } in
      check_ty fsite f.fret;
      List.iter (fun (_, t) -> check_ty fsite t) f.fparams;
      List.iter (fun (_, t) -> check_ty fsite t) f.flocals;
      let local_names = Hashtbl.create 16 in
      List.iter (fun (n, _) -> Hashtbl.replace local_names n ()) f.flocals;
      List.iter
        (fun (n, _) ->
          if not (Hashtbl.mem local_names n) then
            fail fsite (Param_without_slot n))
        f.fparams;
      if f.fblocks = [] then fail fsite Empty_function;

      (* CFG shape *)
      let block_ids = Hashtbl.create 16 in
      List.iter
        (fun (b : Ir.block) ->
          if Hashtbl.mem block_ids b.bid then
            fail fsite (Duplicate_block b.bid)
          else Hashtbl.replace block_ids b.bid ();
          if b.bid < 0 || b.bid >= f.next_block then
            fail fsite (Block_out_of_range b.bid))
        f.fblocks;
      List.iter
        (fun (b : Ir.block) ->
          let bsite =
            { in_func = Some f.fname; in_block = Some b.bid; in_instr = None }
          in
          List.iter
            (fun t ->
              if not (Hashtbl.mem block_ids t) then
                fail bsite (Bad_branch_target t))
            (Ir.block_succs b))
        f.fblocks;

      (* registers: range, and every used register has some definition *)
      let in_range r = r >= 0 && r < f.next_reg in
      let defined = Array.make (max f.next_reg 1) false in
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match Ir.defined_reg i with
              | Some r when in_range r -> defined.(r) <- true
              | Some _ | None -> ())
            b.instrs)
        f.fblocks;
      List.iter
        (fun (b : Ir.block) ->
          let site_of i =
            { in_func = Some f.fname; in_block = Some b.bid;
              in_instr = Some (Ir.string_of_instr i) }
          in
          let check_reg site r =
            if not (in_range r) then fail site (Reg_out_of_range r)
            else if not defined.(r) then fail site (Undefined_register r)
          in
          List.iter
            (fun (i : Ir.instr) ->
              let site = site_of i in
              (* instruction ids are the profile-feedback matching key *)
              if Hashtbl.mem seen_iids i.iid then
                fail site (Duplicate_iid i.iid)
              else Hashtbl.replace seen_iids i.iid ();
              (* diagnostics need every instruction to name its source
                 point; opt-in because synthetic test IR uses Loc.dummy *)
              if require_locs && i.iloc.Ir.Loc.line <= 0 then
                fail site Missing_loc;
              (match Ir.defined_reg i with
              | Some r when not (in_range r) -> fail site (Reg_out_of_range r)
              | Some _ | None -> ());
              List.iter (check_reg site) (Ir.used_regs i);
              match i.idesc with
              | Ir.Ifieldaddr (_, _, s, fi) -> (
                match Structs.find_opt p.structs s with
                | None -> fail site (Unknown_struct s)
                | Some d ->
                  if fi < 0 || fi >= Array.length d.fields then
                    fail site (Field_out_of_range (s, fi)))
              | Ir.Iload (_, _, ty, acc) | Ir.Istore (_, _, ty, acc) ->
                check_ty site ty;
                check_access site acc
              | Ir.Icast (_, from_, to_, _, _) ->
                check_ty site from_;
                check_ty site to_
              | Ir.Ibin (_, _, ty, _, _) | Ir.Iun (_, _, ty, _)
              | Ir.Iptradd (_, _, _, ty) | Ir.Ialloc (_, _, _, ty) ->
                check_ty site ty
              | Ir.Iaddrglob (_, g) ->
                if not (Hashtbl.mem global_names g) then
                  fail site (Unknown_global g)
              | Ir.Iaddrlocal (_, l) ->
                if not (Hashtbl.mem local_names l) then
                  fail site (Unknown_local l)
              | Ir.Iaddrfunc (_, fn) ->
                if not (Hashtbl.mem func_names fn) then
                  fail site (Unknown_function fn)
              | Ir.Icall (_, Ir.Cdirect n, args) -> (
                match Hashtbl.find_opt func_names n with
                | None -> fail site (Unknown_function n)
                | Some (g : Ir.func) ->
                  let want = List.length g.fparams in
                  let got = List.length args in
                  if want <> got then
                    fail site (Arity_mismatch (n, want, got)))
              | Ir.Imemset (_, _, _, tag) | Ir.Imemcpy (_, _, _, tag) ->
                check_struct_tag site tag
              | Ir.Imov _ | Ir.Iaddrstr _ | Ir.Ifree _
              | Ir.Icall (_, (Ir.Cbuiltin _ | Ir.Cextern _ | Ir.Cindirect _), _)
                ->
                ())
            b.instrs;
          (* terminator operands *)
          let tsite =
            { in_func = Some f.fname; in_block = Some b.bid;
              in_instr = Some (Ir.string_of_term b.btermin) }
          in
          match b.btermin with
          | Ir.Tbr (Ir.Oreg r, _, _) | Ir.Tret (Some (Ir.Oreg r)) ->
            if not (in_range r) then fail tsite (Reg_out_of_range r)
            else if not defined.(r) then fail tsite (Undefined_register r)
          | Ir.Tbr _ | Ir.Tret _ | Ir.Tjmp _ -> ())
        f.fblocks)
    p.funcs;
  List.rev !errors

let ok ?require_locs p = program ?require_locs p = []

let check ?require_locs p =
  match program ?require_locs p with
  | [] -> ()
  | errors -> raise (Ill_formed errors)
