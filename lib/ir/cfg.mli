(** Control-flow-graph utilities over {!Ir.func}.

    Provides the derived views every analysis needs: successor/predecessor
    maps, reverse postorder, reachability, and the list of edges with stable
    indices (edge index = position of the target in the block's successor
    list), which is how profile edge counts are keyed. *)

type t = {
  func : Ir.func;
  blocks : Ir.block array;          (** indexed by block id *)
  succs : int list array;           (** successor block ids *)
  preds : int list array;           (** predecessor block ids *)
  rpo : int array;                  (** reachable ids in reverse postorder *)
  rpo_index : int array;            (** block id -> position in [rpo]; -1 if unreachable *)
}

val build : Ir.func -> t

val entry : t -> int
val num_blocks : t -> int
val reachable : t -> int -> bool

val edges : t -> (int * int) list
(** All (src, dst) edges of reachable blocks, in rpo order of sources. *)

val is_fp_block : Ir.block -> bool
(** Whether the block contains floating-point arithmetic or float/double
    memory traffic — used to pick the FP back-edge probability (the paper
    uses 0.93 for floating point loops vs 0.88 otherwise). *)
