type reason =
  | NOALLOC
  | MULTI
  | REALLOC
  | LOOPALLOC
  | REDOALLOC
  | BYVAL
  | FREED
  | MEMOP
  | SIZEOF
  | NULLLINK
  | MIXED
  | INTERIOR
  | ESCAPE
  | RAWACC

let reason_name = function
  | NOALLOC -> "NOALLOC"
  | MULTI -> "MULTI"
  | REALLOC -> "REALLOC"
  | LOOPALLOC -> "LOOPALLOC"
  | REDOALLOC -> "REDOALLOC"
  | BYVAL -> "BYVAL"
  | FREED -> "FREED"
  | MEMOP -> "MEMOP"
  | SIZEOF -> "SIZEOF"
  | NULLLINK -> "NULLLINK"
  | MIXED -> "MIXED"
  | INTERIOR -> "INTERIOR"
  | ESCAPE -> "ESCAPE"
  | RAWACC -> "RAWACC"

type witness = {
  sw_reason : reason;
  sw_fn : string option;
  sw_iid : int option;
  sw_loc : Ir.Loc.t option;
  sw_explain : string;
}

type site = { sp_fn : string; sp_iid : int; sp_loc : Ir.Loc.t }

type verdict = {
  v_typ : string;
  v_links : int list;
  v_link_names : string list;
  v_poolable : bool;
  v_alloc : site option;
  v_witnesses : witness list;
}

type t = (string, verdict) Hashtbl.t

(* ------------------------------------------------------------------ *)
(* The uniqueness lattice                                              *)
(* ------------------------------------------------------------------ *)

(* Per-register abstract value, for one candidate type S:
   - [NotS]: provably unrelated to S (scalars, other pointers);
   - [SIdx]: a pointer to an S cell that descends from the allocation
     site through ptradd / copies / properly-typed memory — exactly the
     values the pool rewrite turns into element indices;
   - [SInt]: an interior pointer (the address of a field of some S cell),
     only legitimate as the address operand of the load/store it feeds;
   - [Top]: pool and non-pool values merged on some path. *)
type tag = Bot | NotS | SIdx | SInt | Top

let join_tag a b =
  if a = b then a
  else
    match (a, b) with
    | Bot, x | x, Bot -> x
    | _ -> Top

module TagFlow = Dataflow.Make (struct
  type t = tag array
  (* [bottom] stands for "unvisited"; real facts are arrays of the
     function's register count *)

  let bottom = [||]

  let equal a b =
    a == b
    || Array.length a = Array.length b
       &&
       let ok = ref true in
       Array.iteri (fun i x -> if x <> b.(i) then ok := false) a;
       !ok

  let join a b =
    if a == b then a
    else if Array.length a = 0 then b
    else if Array.length b = 0 then a
    else Array.init (Array.length a) (fun i -> join_tag a.(i) b.(i))
end)

let val_tag (tags : tag array) = function
  | Ir.Oreg r -> if r < Array.length tags then tags.(r) else NotS
  | Ir.Oimm _ | Ir.Ofimm _ -> NotS

(* the per-instruction def transfer; checks live in [check_instr] *)
let def_tag ~typ (prog : Ir.program) (tags : tag array) (i : Ir.instr) :
    (Ir.reg * tag) option =
  let ptr_s = Irty.Ptr (Irty.Struct typ) in
  match i.idesc with
  | Ir.Ialloc (r, _, _, Irty.Struct s) when String.equal s typ -> Some (r, SIdx)
  | Ir.Ialloc (r, _, _, _) -> Some (r, NotS)
  | Ir.Iload (r, _, ty, _) ->
    Some (r, if Irty.equal ty ptr_s then SIdx else NotS)
  | Ir.Ifieldaddr (r, _, s, _) ->
    Some (r, if String.equal s typ then SInt else NotS)
  | Ir.Iptradd (r, _, _, Irty.Struct s) when String.equal s typ ->
    Some (r, SIdx)
  | Ir.Iptradd (r, _, _, _) -> Some (r, NotS)
  | Ir.Icast (r, _, to_, _, _) ->
    Some (r, if Irty.equal to_ ptr_s then SIdx else NotS)
  | Ir.Imov (r, v) -> Some (r, val_tag tags v)
  | Ir.Icall (Some r, Ir.Cdirect n, _) ->
    let ret =
      match Ir.find_func prog n with
      | Some callee -> if Irty.equal callee.Ir.fret ptr_s then SIdx else NotS
      | None -> NotS
    in
    Some (r, ret)
  | Ir.Icall (Some r, _, _) -> Some (r, NotS)
  | Ir.Ibin (r, _, _, _, _) | Ir.Iun (r, _, _, _) | Ir.Iaddrglob (r, _)
  | Ir.Iaddrlocal (r, _) | Ir.Iaddrstr (r, _) | Ir.Iaddrfunc (r, _) ->
    Some (r, NotS)
  | Ir.Icall (None, _, _) | Ir.Istore _ | Ir.Ifree _ | Ir.Imemset _
  | Ir.Imemcpy _ ->
    None

let apply_def ~typ prog tags i =
  match def_tag ~typ prog tags i with
  | Some (r, t) -> if r < Array.length tags then tags.(r) <- t
  | None -> ()

let is_compare = function
  | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge | Ir.Eq | Ir.Ne -> true
  | Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Mod | Ir.Band | Ir.Bor | Ir.Bxor
  | Ir.Shl | Ir.Shr ->
    false

(* ------------------------------------------------------------------ *)
(* Per-instruction violation checks                                    *)
(* ------------------------------------------------------------------ *)

let check_instr ~typ (prog : Ir.program) (tags : tag array)
    (i : Ir.instr) ~(bad : reason -> string -> unit) =
  let ptr_s = Irty.Ptr (Irty.Struct typ) in
  let t = val_tag tags in
  (* the catch-all for a value position where only NotS is acceptable *)
  let scalar_only what o =
    match t o with
    | SIdx -> bad MIXED (Printf.sprintf "%s pointer used %s" typ what)
    | SInt ->
      bad INTERIOR
        (Printf.sprintf "interior pointer into %s used %s" typ what)
    | Top ->
      bad MIXED
        (Printf.sprintf "value mixing %s and non-%s pointers used %s" typ typ
           what)
    | Bot | NotS -> ()
  in
  match i.idesc with
  | Ir.Imov (_, v) -> (
    (* copies of pool and interior pointers are fine; merges are not *)
    match t v with
    | Top ->
      bad MIXED
        (Printf.sprintf "register mixes %s and non-%s pointers" typ typ)
    | Bot | NotS | SIdx | SInt -> ())
  | Ir.Ibin (_, op, _, a, b) ->
    let ta = t a and tb = t b in
    if ta = SInt || tb = SInt then
      bad INTERIOR
        (Printf.sprintf "arithmetic on an interior pointer into %s" typ)
    else if ta = Top || tb = Top then
      bad MIXED
        (Printf.sprintf "operand mixes %s and non-%s pointers" typ typ)
    else if is_compare op then begin
      if ta = SIdx && tb <> SIdx then
        bad NULLLINK
          (Printf.sprintf
             "%s pointer compared against a non-pool value (index 0 is a \
              valid cell)"
             typ)
      else if tb = SIdx && ta <> SIdx then
        bad NULLLINK
          (Printf.sprintf
             "non-pool value compared against a %s pointer (index 0 is a \
              valid cell)"
             typ)
    end
    else if ta = SIdx || tb = SIdx then
      bad MIXED
        (Printf.sprintf "%s pointer used in plain arithmetic" typ)
  | Ir.Iun (_, op, _, v) -> (
    match t v with
    | SIdx ->
      if op = Ir.Lnot then
        bad NULLLINK
          (Printf.sprintf "%s pointer null-tested (index 0 is a valid cell)"
             typ)
      else bad MIXED (Printf.sprintf "%s pointer used in unary arithmetic" typ)
    | SInt ->
      bad INTERIOR
        (Printf.sprintf "unary arithmetic on an interior pointer into %s" typ)
    | Top ->
      bad MIXED (Printf.sprintf "operand mixes %s and non-%s pointers" typ typ)
    | Bot | NotS -> ())
  | Ir.Icast (_, _, to_, v, _) -> (
    match t v with
    | SIdx ->
      if not (Irty.equal to_ ptr_s) then
        bad ESCAPE
          (Printf.sprintf "%s pointer cast to %s" typ (Irty.to_string to_))
    | SInt ->
      bad INTERIOR (Printf.sprintf "interior pointer into %s cast" typ)
    | Top ->
      bad MIXED (Printf.sprintf "cast mixes %s and non-%s pointers" typ typ)
    | Bot | NotS ->
      if Irty.equal to_ ptr_s then
        bad
          (match v with Ir.Oimm _ -> NULLLINK | _ -> MIXED)
          (Printf.sprintf
             "foreign value cast to %s* (not descended from the pool \
              allocation)"
             typ))
  | Ir.Iload (_, addr, _, _) -> (
    match t addr with
    | SIdx ->
      bad RAWACC
        (Printf.sprintf "load through a %s pointer without a field selection"
           typ)
    | Top ->
      bad MIXED
        (Printf.sprintf "load address mixes %s and non-%s pointers" typ typ)
    | Bot | NotS | SInt -> ())
  | Ir.Istore (addr, v, ty, _) -> (
    (match t addr with
    | SIdx ->
      bad RAWACC
        (Printf.sprintf "store through a %s pointer without a field selection"
           typ)
    | Top ->
      bad MIXED
        (Printf.sprintf "store address mixes %s and non-%s pointers" typ typ)
    | Bot | NotS | SInt -> ());
    match t v with
    | SInt ->
      bad INTERIOR
        (Printf.sprintf "interior pointer into %s stored to memory" typ)
    | Top ->
      bad MIXED
        (Printf.sprintf "stored value mixes %s and non-%s pointers" typ typ)
    | SIdx ->
      if not (Irty.equal ty ptr_s) then
        bad ESCAPE
          (Printf.sprintf "%s pointer stored through a %s-typed cell" typ
             (Irty.to_string ty))
    | Bot | NotS ->
      if Irty.equal ty ptr_s then
        bad
          (match v with Ir.Oimm _ -> NULLLINK | _ -> MIXED)
          (match v with
          | Ir.Oimm n ->
            Printf.sprintf
              "constant %Ld stored into a %s*-typed cell (null and index 0 \
               are indistinguishable in a pool)"
              n typ
          | _ ->
            Printf.sprintf "non-pool value stored into a %s*-typed cell" typ))
  | Ir.Ifieldaddr (_, base, s, _) -> (
    if String.equal s typ then
      match t base with
      | SIdx -> ()
      | SInt ->
        bad INTERIOR
          (Printf.sprintf "field address formed from an interior pointer of %s"
             typ)
      | Top ->
        bad MIXED
          (Printf.sprintf "field-access base mixes %s and non-%s pointers" typ
             typ)
      | Bot | NotS ->
        bad MIXED
          (Printf.sprintf
             "%s field accessed through a pointer not descended from the pool \
              allocation"
             typ)
    else
      match t base with
      | SIdx ->
        bad RAWACC
          (Printf.sprintf "%s pointer used as a pointer to struct %s" typ s)
      | SInt ->
        bad INTERIOR
          (Printf.sprintf "interior pointer into %s reinterpreted as struct %s"
             typ s)
      | Top ->
        bad MIXED
          (Printf.sprintf "field-access base mixes %s and non-%s pointers" typ
             typ)
      | Bot | NotS -> ())
  | Ir.Iptradd (_, base, idx, ty) -> (
    scalar_only "as an array index" idx;
    match ty with
    | Irty.Struct s when String.equal s typ -> (
      match t base with
      | SIdx -> ()
      | SInt ->
        bad INTERIOR
          (Printf.sprintf "pointer arithmetic on an interior pointer of %s"
             typ)
      | Top ->
        bad MIXED
          (Printf.sprintf "pointer-arithmetic base mixes %s and non-%s \
                           pointers" typ typ)
      | Bot | NotS ->
        bad MIXED
          (Printf.sprintf
             "%s pointer arithmetic on a base not descended from the pool \
              allocation"
             typ))
    | _ -> (
      match t base with
      | SIdx ->
        bad RAWACC
          (Printf.sprintf "%s pointer used as a %s array" typ
             (Irty.to_string ty))
      | SInt ->
        bad INTERIOR
          (Printf.sprintf "pointer arithmetic on an interior pointer of %s"
             typ)
      | Top ->
        bad MIXED
          (Printf.sprintf "pointer-arithmetic base mixes %s and non-%s \
                           pointers" typ typ)
      | Bot | NotS -> ()))
  | Ir.Icall (_, callee, args) -> (
    match callee with
    | Ir.Cdirect n -> (
      match Ir.find_func prog n with
      | Some target ->
        let params = Array.of_list target.Ir.fparams in
        List.iteri
          (fun k arg ->
            match t arg with
            | SIdx ->
              let pty =
                if k < Array.length params then Some (snd params.(k)) else None
              in
              if pty <> Some ptr_s then
                bad ESCAPE
                  (Printf.sprintf
                     "%s pointer passed to %s through a parameter not typed \
                      %s*"
                     typ n typ)
            | SInt ->
              bad INTERIOR
                (Printf.sprintf "interior pointer into %s passed to %s" typ n)
            | Top ->
              bad MIXED
                (Printf.sprintf "argument to %s mixes %s and non-%s pointers"
                   n typ typ)
            | Bot | NotS -> ())
          args
      | None ->
        List.iter (scalar_only ("in a call to " ^ n)) args)
    | Ir.Cbuiltin n | Ir.Cextern n ->
      List.iter
        (scalar_only (Printf.sprintf "in a call outside the pool scope (%s)" n))
        args
    | Ir.Cindirect fo ->
      scalar_only "as an indirect call target" fo;
      List.iter (scalar_only "in an indirect call") args)
  | Ir.Ialloc (_, kind, count, _) -> (
    scalar_only "as an allocation size" count;
    match kind with
    | Ir.Arealloc old -> scalar_only "as a realloc source" old
    | Ir.Amalloc | Ir.Acalloc -> ())
  | Ir.Ifree v -> (
    match t v with
    | SIdx ->
      bad FREED (Printf.sprintf "%s cell freed (pool cells are immortal)" typ)
    | SInt ->
      bad INTERIOR (Printf.sprintf "interior pointer into %s freed" typ)
    | Top ->
      bad MIXED (Printf.sprintf "freed value mixes %s and non-%s pointers" typ
                   typ)
    | Bot | NotS -> ())
  | Ir.Imemset (a, b, c, tag) | Ir.Imemcpy (a, b, c, tag) ->
    if tag = Some typ then
      bad MEMOP (Printf.sprintf "memset/memcpy touches struct %s" typ);
    List.iter (scalar_only "in a byte-level memory operation") [ a; b; c ]
  | Ir.Iaddrglob _ | Ir.Iaddrlocal _ | Ir.Iaddrstr _ | Ir.Iaddrfunc _ -> ()

let check_term ~typ (f : Ir.func) (tags : tag array) (term : Ir.term)
    ~(bad : reason -> string -> unit) =
  let ptr_s = Irty.Ptr (Irty.Struct typ) in
  match term with
  | Ir.Tbr (cond, _, _) -> (
    match val_tag tags cond with
    | SIdx ->
      bad NULLLINK
        (Printf.sprintf "%s pointer used as a branch condition (null test)"
           typ)
    | SInt ->
      bad INTERIOR
        (Printf.sprintf "interior pointer into %s used as a branch condition"
           typ)
    | Top ->
      bad MIXED
        (Printf.sprintf "branch condition mixes %s and non-%s pointers" typ
           typ)
    | Bot | NotS -> ())
  | Ir.Tret (Some v) -> (
    match val_tag tags v with
    | SIdx ->
      if not (Irty.equal f.Ir.fret ptr_s) then
        bad ESCAPE
          (Printf.sprintf "%s pointer returned from %s, whose return type is \
                           %s" typ f.Ir.fname (Irty.to_string f.Ir.fret))
    | SInt ->
      bad INTERIOR
        (Printf.sprintf "interior pointer into %s returned from %s" typ
           f.Ir.fname)
    | Top ->
      bad MIXED
        (Printf.sprintf "return value mixes %s and non-%s pointers" typ typ)
    | Bot | NotS -> ())
  | Ir.Tret None | Ir.Tjmp _ -> ()

(* ------------------------------------------------------------------ *)
(* Structural preconditions                                            *)
(* ------------------------------------------------------------------ *)

(* [struct typ] appearing outside a pointer: a by-value instance whose
   layout the pool factorization would tear apart *)
let rec by_value typ (t : Irty.t) =
  match t with
  | Irty.Struct s -> String.equal s typ
  | Irty.Array (u, _) -> by_value typ u
  | Irty.Ptr _ | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
  | Irty.Float | Irty.Double | Irty.Funptr ->
    false

type alloc_info = {
  ai_fn : Ir.func;
  ai_bid : int;
  ai_instr : Ir.instr;
  ai_realloc : bool;
}

let alloc_sites (prog : Ir.program) ~typ : alloc_info list =
  let out = ref [] in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Ialloc (_, kind, _, Irty.Struct s) when String.equal s typ
                ->
                out :=
                  { ai_fn = f; ai_bid = b.bid; ai_instr = i;
                    ai_realloc =
                      (match kind with
                      | Ir.Arealloc _ -> true
                      | Ir.Amalloc | Ir.Acalloc -> false) }
                  :: !out
              | _ -> ())
            b.instrs)
        f.fblocks)
    prog.funcs;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Analysis driver                                                     *)
(* ------------------------------------------------------------------ *)

let self_links (d : Structs.decl) : (int * string) list =
  let out = ref [] in
  Array.iteri
    (fun fi (fl : Structs.field) ->
      if Irty.equal fl.ty (Irty.Ptr (Irty.Struct d.sname)) then
        out := (fi, fl.name) :: !out)
    d.fields;
  List.rev !out

(* Can the allocating function run more than once? Walk single-caller
   chains up to main (assumed to run once, as in the paper's top-down
   propagation); loops around any call site, multiple call sites,
   recursion, or an address-taken function all answer "maybe". *)
let runs_once (prog : Ir.program) ~loops ~fn : string option =
  let cg = Callgraph.build prog in
  let addr_taken = Hashtbl.create 4 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Iaddrfunc (_, n) -> Hashtbl.replace addr_taken n ()
              | _ -> ())
            b.instrs)
        f.fblocks)
    prog.funcs;
  let in_loop caller bid =
    match loops caller with
    | None -> false
    | Some forest -> Loop.innermost forest bid <> None
  in
  let rec walk name seen =
    if String.equal name "main" then None
    else if List.mem name seen then
      Some (Printf.sprintf "%s is on a recursive call cycle" name)
    else if Hashtbl.mem addr_taken name then
      Some (Printf.sprintf "the address of %s is taken" name)
    else
      match Callgraph.callers_of cg name with
      | [] -> Some (Printf.sprintf "%s has no visible caller" name)
      | [ cs ] ->
        if in_loop cs.Callgraph.cs_caller cs.Callgraph.cs_block then
          Some
            (Printf.sprintf "%s is called from a loop in %s" name
               cs.Callgraph.cs_caller)
        else walk cs.Callgraph.cs_caller (name :: seen)
      | _ :: _ :: _ ->
        Some (Printf.sprintf "%s is called from more than one site" name)
  in
  walk fn []

let analyze_type (prog : Ir.program) (d : Structs.decl)
    (loops : string -> Loop.forest option) : verdict =
  let typ = d.sname in
  let links = self_links d in
  let witnesses = ref [] in
  let add w = witnesses := w :: !witnesses in
  let decl_bad reason explain =
    add { sw_reason = reason; sw_fn = None; sw_iid = None; sw_loc = None;
          sw_explain = explain }
  in
  (* by-value instances *)
  Structs.iter
    (fun d' ->
      Array.iter
        (fun (fl : Structs.field) ->
          if by_value typ fl.ty then
            decl_bad BYVAL
              (Printf.sprintf "struct %s embeds %s by value (field %s)"
                 d'.sname typ fl.name))
        d'.fields)
    prog.structs;
  List.iter
    (fun (n, t, _) ->
      if by_value typ t then
        decl_bad BYVAL (Printf.sprintf "global %s holds %s by value" n typ))
    prog.globals;
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (n, t) ->
          if by_value typ t then
            add
              { sw_reason = BYVAL; sw_fn = Some f.Ir.fname; sw_iid = None;
                sw_loc = Some f.Ir.floc;
                sw_explain =
                  Printf.sprintf "local %s in %s holds %s by value" n
                    f.Ir.fname typ })
        f.Ir.flocals)
    prog.funcs;
  (* sizeof escapes: the pool changes sizeof(typ) *)
  List.iter
    (fun (s, loc) ->
      if String.equal s typ then
        add
          { sw_reason = SIZEOF; sw_fn = None; sw_iid = None;
            sw_loc = Some loc;
            sw_explain =
              Printf.sprintf
                "sizeof(struct %s) escapes into plain arithmetic; the pool \
                 layout changes it"
                typ })
    prog.psizeof_uses;
  (* allocation-site discipline *)
  let sites = alloc_sites prog ~typ in
  let site_of (ai : alloc_info) =
    { sp_fn = ai.ai_fn.Ir.fname; sp_iid = ai.ai_instr.Ir.iid;
      sp_loc = ai.ai_instr.Ir.iloc }
  in
  let alloc =
    match sites with
    | [] ->
      decl_bad NOALLOC
        (Printf.sprintf "struct %s is never dynamically allocated" typ);
      None
    | [ ai ] ->
      if ai.ai_realloc then
        add
          { sw_reason = REALLOC; sw_fn = Some ai.ai_fn.Ir.fname;
            sw_iid = Some ai.ai_instr.Ir.iid;
            sw_loc = Some ai.ai_instr.Ir.iloc;
            sw_explain =
              Printf.sprintf "struct %s is reallocated; the pool base cannot \
                              move" typ };
      (match loops ai.ai_fn.Ir.fname with
      | Some forest when Loop.innermost forest ai.ai_bid <> None ->
        add
          { sw_reason = LOOPALLOC; sw_fn = Some ai.ai_fn.Ir.fname;
            sw_iid = Some ai.ai_instr.Ir.iid;
            sw_loc = Some ai.ai_instr.Ir.iloc;
            sw_explain =
              Printf.sprintf
                "the allocation of struct %s sits inside a loop; a second \
                 execution would rebind the pool base"
                typ }
      | Some _ | None -> ());
      (match runs_once prog ~loops ~fn:ai.ai_fn.Ir.fname with
      | Some why ->
        add
          { sw_reason = REDOALLOC; sw_fn = Some ai.ai_fn.Ir.fname;
            sw_iid = Some ai.ai_instr.Ir.iid;
            sw_loc = Some ai.ai_instr.Ir.iloc;
            sw_explain =
              Printf.sprintf
                "the allocating function may execute more than once (%s)" why }
      | None -> ());
      Some (site_of ai)
    | first :: extra ->
      List.iter
        (fun ai ->
          add
            { sw_reason = MULTI; sw_fn = Some ai.ai_fn.Ir.fname;
              sw_iid = Some ai.ai_instr.Ir.iid;
              sw_loc = Some ai.ai_instr.Ir.iloc;
              sw_explain =
                Printf.sprintf
                  "second allocation site of struct %s (first is in %s); \
                   cells would live in two pools"
                  typ first.ai_fn.Ir.fname })
        extra;
      None
  in
  (* the dataflow uniqueness proof, per function *)
  List.iter
    (fun (f : Ir.func) ->
      let cfg = Cfg.build f in
      let init = Array.make f.Ir.next_reg Bot in
      let sol =
        TagFlow.forward cfg ~init ~transfer:(fun b fact ->
            let tags =
              if Array.length fact = 0 then Array.make f.Ir.next_reg Bot
              else Array.copy fact
            in
            List.iter (apply_def ~typ prog tags) b.Ir.instrs;
            tags)
      in
      Array.iter
        (fun (b : Ir.block) ->
          if Cfg.reachable cfg b.Ir.bid then begin
            let fact = sol.TagFlow.before.(b.Ir.bid) in
            let tags =
              if Array.length fact = 0 then Array.make f.Ir.next_reg Bot
              else Array.copy fact
            in
            List.iter
              (fun (i : Ir.instr) ->
                check_instr ~typ prog tags i ~bad:(fun reason explain ->
                    add
                      { sw_reason = reason; sw_fn = Some f.Ir.fname;
                        sw_iid = Some i.Ir.iid; sw_loc = Some i.Ir.iloc;
                        sw_explain = explain });
                apply_def ~typ prog tags i)
              b.Ir.instrs;
            check_term ~typ f tags b.Ir.btermin ~bad:(fun reason explain ->
                add
                  { sw_reason = reason; sw_fn = Some f.Ir.fname;
                    sw_iid = None; sw_loc = Some b.Ir.bloc;
                    sw_explain = explain })
          end)
        cfg.Cfg.blocks)
    prog.funcs;
  let witnesses = List.rev !witnesses in
  {
    v_typ = typ;
    v_links = List.map fst links;
    v_link_names = List.map snd links;
    v_poolable = witnesses = [] && alloc <> None;
    v_alloc = alloc;
    v_witnesses = witnesses;
  }

let analyze (prog : Ir.program) : t =
  let out = Hashtbl.create 8 in
  let forests : (string, Loop.forest option) Hashtbl.t = Hashtbl.create 8 in
  let loops fname =
    match Hashtbl.find_opt forests fname with
    | Some f -> f
    | None ->
      let f =
        match Ir.find_func prog fname with
        | Some fn -> Some (Loop.compute (Cfg.build fn))
        | None -> None
      in
      Hashtbl.replace forests fname f;
      f
  in
  Structs.iter
    (fun d ->
      if self_links d <> [] then
        Hashtbl.replace out d.sname (analyze_type prog d loops))
    prog.structs;
  out

let verdicts (t : t) : verdict list =
  Hashtbl.fold (fun _ v acc -> v :: acc) t []
  |> List.sort (fun a b -> compare a.v_typ b.v_typ)

let verdict (t : t) (typ : string) = Hashtbl.find_opt t typ

let poolable (t : t) (typ : string) =
  match verdict t typ with Some v -> v.v_poolable | None -> false

let links (t : t) (typ : string) =
  match verdict t typ with
  | Some v when v.v_poolable -> v.v_links
  | Some _ | None -> []
