type field = { name : string; ty : Irty.t; bits : int option }
type decl = { sname : string; fields : field array }
type t = (string, decl) Hashtbl.t

let create () : t = Hashtbl.create 32

let define t name fields =
  Hashtbl.replace t name { sname = name; fields = Array.of_list fields }

let remove t name = Hashtbl.remove t name
let find t name : decl = Hashtbl.find t name
let find_opt t name = Hashtbl.find_opt t name
let mem t name = Hashtbl.mem t name
let field t s i = (find t s).fields.(i)

let field_index t s fname =
  match find_opt t s with
  | None -> None
  | Some d ->
    let res = ref None in
    Array.iteri
      (fun i f -> if !res = None && String.equal f.name fname then res := Some i)
      d.fields;
    !res

let names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t [] |> List.sort String.compare

let iter f t = List.iter (fun n -> f (find t n)) (names t)
let copy t = Hashtbl.copy t
