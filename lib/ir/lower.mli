(** Lowering from the typed Mini-C AST to the IR.

    The lowering is deliberately unoptimised ("-O0 style"): every local
    variable gets a stack slot, every use loads it and every definition
    stores it. That keeps the translation simple and uniform and — more
    importantly for the reproduction — means the cache simulator sees a
    realistic mix of (always-hot) stack traffic and (interesting) heap
    traffic, so layout changes move the needle the way they do on hardware.

    Allocation-site recognition happens here: [malloc(n * sizeof(T))],
    [malloc(sizeof(T))], [calloc(n, sizeof(T))] and
    [realloc(p, n * sizeof(T))] become typed {!Ir.Ialloc} instructions
    carrying the element type [T] and the count expression, which is what
    lets the BE rewrite allocation sites when a type is split or peeled.
    A [sizeof(struct)] that is {e not} consumed by an allocation pattern is
    recorded in [Ir.program.psizeof_uses] — the paper's section 2.2 hazard
    ("code relying on these numbers can become unsafe") — and invalidates
    the type in the legality analysis. *)

exception Unsupported of string * Slo_minic.Loc.t
(** Raised for the C corners Mini-C's lowering does not implement
    (e.g. whole-struct assignment). *)

val lower : Slo_minic.Ast.program -> Slo_minic.Typecheck.env -> Ir.program

val lower_source : string -> Ir.program
(** Convenience: parse, type check and lower a source string. *)
