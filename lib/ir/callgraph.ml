type call_site = {
  cs_caller : string;
  cs_callee : Ir.callee;
  cs_block : int;
  cs_instr : int;
}

type t = {
  sites : (string, call_site list) Hashtbl.t;   (* caller -> sites *)
  callers : (string, call_site list) Hashtbl.t; (* defined callee -> sites *)
  funcs : string list;                          (* definition order *)
  edges : (string, string list) Hashtbl.t;      (* caller -> defined callees *)
}

let build (p : Ir.program) : t =
  let sites = Hashtbl.create 16 in
  let callers = Hashtbl.create 16 in
  let edges = Hashtbl.create 16 in
  let defined_set = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace defined_set f.Ir.fname ()) p.funcs;
  let funcs = List.map (fun f -> f.Ir.fname) p.funcs in
  List.iter
    (fun (f : Ir.func) ->
      let my_sites = ref [] in
      let my_edges = ref [] in
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Icall (_, callee, _) ->
                let cs =
                  { cs_caller = f.fname; cs_callee = callee;
                    cs_block = b.bid; cs_instr = i.iid }
                in
                my_sites := cs :: !my_sites;
                (match callee with
                | Ir.Cdirect callee_name
                  when Hashtbl.mem defined_set callee_name ->
                  my_edges := callee_name :: !my_edges;
                  let prev =
                    Option.value ~default:[]
                      (Hashtbl.find_opt callers callee_name)
                  in
                  Hashtbl.replace callers callee_name (cs :: prev)
                | Ir.Cdirect _ | Ir.Cbuiltin _ | Ir.Cextern _
                | Ir.Cindirect _ ->
                  ())
              | Ir.Imov _ | Ir.Ibin _ | Ir.Iun _ | Ir.Icast _ | Ir.Iload _
              | Ir.Istore _ | Ir.Iaddrglob _ | Ir.Iaddrlocal _
              | Ir.Iaddrstr _ | Ir.Iaddrfunc _ | Ir.Ifieldaddr _
              | Ir.Iptradd _ | Ir.Ialloc _ | Ir.Ifree _ | Ir.Imemset _
              | Ir.Imemcpy _ ->
                ())
            b.instrs)
        f.fblocks;
      Hashtbl.replace sites f.fname (List.rev !my_sites);
      Hashtbl.replace edges f.fname (List.rev !my_edges))
    p.funcs;
  { sites; callers; funcs; edges }

let call_sites t f = Option.value ~default:[] (Hashtbl.find_opt t.sites f)
let callers_of t f = Option.value ~default:[] (Hashtbl.find_opt t.callers f)
let defined t = t.funcs

(* Tarjan SCC; components complete callees-first and are consed onto the
   accumulator, so the final list comes out callers-first (topological). *)
let sccs_topological t =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    let succs = Option.value ~default:[] (Hashtbl.find_opt t.edges v) in
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      succs;
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun f -> if not (Hashtbl.mem index f) then strongconnect f) t.funcs;
  (* Tarjan emits SCCs callees-first; callers-first is the reverse *)
  !sccs
