(** Memory layout of IR types: sizes, alignments, field offsets, bit-field
    packing.

    This is the component whose decisions the paper's transformations change:
    splitting, peeling, dead-field removal and reordering all act by defining
    new structs in the {!Structs.t} table; the layout engine then assigns the
    new offsets. Layout follows the usual C ABI rules for a 64-bit target:

    - char 1/1, short 2/2, int 4/4, long 8/8, float 4/4, double 8/8,
      pointers 8/8 (size/alignment);
    - a struct's alignment is the maximum alignment of its fields; its size
      is rounded up to its alignment;
    - consecutive bit-fields of the same base type pack into one storage
      unit of that type, opening a new unit when the width does not fit.

    A [t] memoizes struct layouts; create a fresh one after mutating the
    struct table. *)

type field_layout = {
  byte_off : int;       (** offset of the containing storage unit *)
  bit_off : int;        (** bit offset within the unit; 0 for plain fields *)
  bit_width : int option;  (** [Some w] for bit-fields *)
  fty : Irty.t;
}

type t

val create : Structs.t -> t

val sizeof : t -> Irty.t -> int
val alignof : t -> Irty.t -> int

val field_layout : t -> string -> int -> field_layout
(** [field_layout t s i] is the layout of field [i] of struct [s]. *)

val struct_size : t -> string -> int
val struct_align : t -> string -> int

val describe : t -> string -> string
(** Human-readable layout dump of one struct: one line per field with
    offset, size and total, used by the Figure 1 reproduction. *)
