(** The intermediate representation.

    A program is a set of functions over a shared {!Structs.t} record-type
    table. Each function is a control-flow graph of basic blocks holding
    three-address instructions over function-scoped virtual registers.

    Two properties matter for the paper's analyses and transformations:

    - {b field references stay symbolic}: every struct field access goes
      through {!constructor:Ifieldaddr} (and struct-pointer arithmetic
      through {!constructor:Iptradd} carrying the element type), so the
      legality/affinity passes see fields, and the BE transformations can
      retarget them when a type's layout changes;
    - {b loads and stores carry an access tag} naming the (struct, field)
      they touch when known, which is what the PMU sampler uses to attribute
      d-cache misses and latencies back to fields (section 3.1). *)

module Loc = Slo_minic.Loc

type reg = int

type operand =
  | Oreg of reg
  | Oimm of int64
  | Ofimm of float

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne

type unop = Neg | Lnot | Bnot

(** (struct name, field index) tag on memory operations *)
type access = { astruct : string; afield : int }

type cast_info = {
  explicit : bool;     (** written as a cast in the source *)
  from_alloc : bool;   (** source value is directly an allocation result *)
}

type callee =
  | Cdirect of string   (** a function defined in this program *)
  | Cbuiltin of string  (** runtime builtin (malloc family handled separately) *)
  | Cextern of string   (** library function outside the compilation scope *)
  | Cindirect of operand

type alloc_kind = Amalloc | Acalloc | Arealloc of operand

type idesc =
  | Imov of reg * operand
  | Ibin of reg * binop * Irty.t * operand * operand
  | Iun of reg * unop * Irty.t * operand
  | Icast of reg * Irty.t * Irty.t * operand * cast_info
      (** dst, from-type, to-type, value *)
  | Iload of reg * operand * Irty.t * access option
  | Istore of operand * operand * Irty.t * access option  (** addr, value *)
  | Iaddrglob of reg * string
  | Iaddrlocal of reg * string
  | Iaddrstr of reg * string
  | Iaddrfunc of reg * string
  | Ifieldaddr of reg * operand * string * int
      (** dst, base (pointer to struct), struct name, field index *)
  | Iptradd of reg * operand * operand * Irty.t
      (** dst, base, index, element type: dst = base + index * sizeof ty *)
  | Icall of reg option * callee * operand list
  | Ialloc of reg * alloc_kind * operand * Irty.t
      (** dst, kind, element count, element type *)
  | Ifree of operand
  | Imemset of operand * operand * operand * string option
      (** dst, byte value, byte count, struct touched (if known) *)
  | Imemcpy of operand * operand * operand * string option

type instr = { iid : int; iloc : Loc.t; mutable idesc : idesc }

type term =
  | Tjmp of int
  | Tbr of operand * int * int  (** cond, then-target, else-target *)
  | Tret of operand option

type block = {
  bid : int;
  mutable instrs : instr list;
  mutable btermin : term;
  mutable bloc : Loc.t;
}

type func = {
  fname : string;
  fret : Irty.t;
  fparams : (string * Irty.t) list;
  mutable flocals : (string * Irty.t) list;
      (** stack slots; includes parameters *)
  mutable fblocks : block list;  (** entry block first *)
  floc : Loc.t;
  mutable next_reg : int;
  mutable next_block : int;
}

type extern_info = { ename : string; evariadic : bool }

type program = {
  structs : Structs.t;
  mutable globals : (string * Irty.t * int64 option) list;
      (** name, type, constant initialiser *)
  mutable funcs : func list;
  mutable pexterns : extern_info list;
  mutable psizeof_uses : (string * Loc.t) list;
      (** struct names whose [sizeof] escaped into plain arithmetic *)
  mutable next_iid : int;
}

(** {1 Builders and accessors} *)

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let fresh_block f loc =
  let bid = f.next_block in
  f.next_block <- bid + 1;
  let b = { bid; instrs = []; btermin = Tret None; bloc = loc } in
  f.fblocks <- f.fblocks @ [ b ];
  b

let fresh_iid p =
  let i = p.next_iid in
  p.next_iid <- i + 1;
  i

let find_func p name = List.find_opt (fun f -> String.equal f.fname name) p.funcs

let find_block f bid = List.find (fun b -> b.bid = bid) f.fblocks

let block_succs b =
  match b.btermin with
  | Tjmp l -> [ l ]
  | Tbr (_, a, c) -> if a = c then [ a ] else [ a; c ]
  | Tret _ -> []

let defined_reg i =
  match i.idesc with
  | Imov (r, _) | Ibin (r, _, _, _, _) | Iun (r, _, _, _)
  | Icast (r, _, _, _, _) | Iload (r, _, _, _) | Iaddrglob (r, _)
  | Iaddrlocal (r, _) | Iaddrstr (r, _) | Iaddrfunc (r, _)
  | Ifieldaddr (r, _, _, _) | Iptradd (r, _, _, _) | Ialloc (r, _, _, _) ->
    Some r
  | Icall (r, _, _) -> r
  | Istore _ | Ifree _ | Imemset _ | Imemcpy _ -> None

let operand_reg = function Oreg r -> Some r | Oimm _ | Ofimm _ -> None

let used_operands i =
  match i.idesc with
  | Imov (_, a) | Iun (_, _, _, a) | Icast (_, _, _, a, _) | Ifree a -> [ a ]
  | Ibin (_, _, _, a, b) | Iptradd (_, a, b, _) -> [ a; b ]
  | Iload (_, a, _, _) -> [ a ]
  | Istore (a, v, _, _) -> [ a; v ]
  | Ifieldaddr (_, a, _, _) -> [ a ]
  | Icall (_, c, args) -> (
    match c with Cindirect o -> o :: args | Cdirect _ | Cbuiltin _ | Cextern _ -> args)
  | Ialloc (_, k, n, _) -> (
    match k with Arealloc old -> [ old; n ] | Amalloc | Acalloc -> [ n ])
  | Imemset (a, b, c, _) | Imemcpy (a, b, c, _) -> [ a; b; c ]
  | Iaddrglob _ | Iaddrlocal _ | Iaddrstr _ | Iaddrfunc _ -> []

let used_regs i = List.filter_map operand_reg (used_operands i)

(** {1 Printing} *)

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Band -> "and" | Bor -> "or" | Bxor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge" | Eq -> "eq" | Ne -> "ne"

let string_of_unop = function Neg -> "neg" | Lnot -> "lnot" | Bnot -> "bnot"

let string_of_operand = function
  | Oreg r -> Printf.sprintf "%%r%d" r
  | Oimm n -> Int64.to_string n
  | Ofimm f -> Printf.sprintf "%g" f

let string_of_access = function
  | None -> ""
  | Some a -> Printf.sprintf "  ; %s.#%d" a.astruct a.afield

let string_of_callee = function
  | Cdirect n -> n
  | Cbuiltin n -> "@" ^ n
  | Cextern n -> "!" ^ n
  | Cindirect o -> "*" ^ string_of_operand o

let string_of_instr i =
  let op = string_of_operand in
  match i.idesc with
  | Imov (r, a) -> Printf.sprintf "%%r%d = mov %s" r (op a)
  | Ibin (r, b, t, x, y) ->
    Printf.sprintf "%%r%d = %s.%s %s, %s" r (string_of_binop b)
      (Irty.to_string t) (op x) (op y)
  | Iun (r, u, t, x) ->
    Printf.sprintf "%%r%d = %s.%s %s" r (string_of_unop u) (Irty.to_string t)
      (op x)
  | Icast (r, from_, to_, x, info) ->
    Printf.sprintf "%%r%d = cast %s -> %s, %s%s%s" r (Irty.to_string from_)
      (Irty.to_string to_) (op x)
      (if info.explicit then " [explicit]" else "")
      (if info.from_alloc then " [from-alloc]" else "")
  | Iload (r, a, t, acc) ->
    Printf.sprintf "%%r%d = load.%s %s%s" r (Irty.to_string t) (op a)
      (string_of_access acc)
  | Istore (a, v, t, acc) ->
    Printf.sprintf "store.%s %s <- %s%s" (Irty.to_string t) (op a) (op v)
      (string_of_access acc)
  | Iaddrglob (r, g) -> Printf.sprintf "%%r%d = addr_glob %s" r g
  | Iaddrlocal (r, l) -> Printf.sprintf "%%r%d = addr_local %s" r l
  | Iaddrstr (r, s) -> Printf.sprintf "%%r%d = addr_str %S" r s
  | Iaddrfunc (r, f) -> Printf.sprintf "%%r%d = addr_func %s" r f
  | Ifieldaddr (r, b, s, fi) ->
    Printf.sprintf "%%r%d = fieldaddr %s, %s.#%d" r (op b) s fi
  | Iptradd (r, b, idx, t) ->
    Printf.sprintf "%%r%d = ptradd %s, %s x sizeof(%s)" r (op b) (op idx)
      (Irty.to_string t)
  | Icall (r, c, args) ->
    Printf.sprintf "%scall %s(%s)"
      (match r with Some r -> Printf.sprintf "%%r%d = " r | None -> "")
      (string_of_callee c)
      (String.concat ", " (List.map op args))
  | Ialloc (r, k, n, t) ->
    let ks =
      match k with
      | Amalloc -> "malloc"
      | Acalloc -> "calloc"
      | Arealloc o -> Printf.sprintf "realloc(%s)" (op o)
    in
    Printf.sprintf "%%r%d = %s %s x %s" r ks (op n) (Irty.to_string t)
  | Ifree a -> Printf.sprintf "free %s" (op a)
  | Imemset (d, v, n, s) ->
    Printf.sprintf "memset %s, %s, %s%s" (op d) (op v) (op n)
      (match s with Some s -> " ; struct " ^ s | None -> "")
  | Imemcpy (d, sr, n, s) ->
    Printf.sprintf "memcpy %s, %s, %s%s" (op d) (op sr) (op n)
      (match s with Some s -> " ; struct " ^ s | None -> "")

let string_of_term = function
  | Tjmp l -> Printf.sprintf "jmp B%d" l
  | Tbr (c, a, b) -> Printf.sprintf "br %s, B%d, B%d" (string_of_operand c) a b
  | Tret None -> "ret"
  | Tret (Some o) -> "ret " ^ string_of_operand o

let string_of_block b =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "B%d:   ; line %d\n" b.bid b.bloc.line);
  List.iter
    (fun i -> Buffer.add_string buf ("  " ^ string_of_instr i ^ "\n"))
    b.instrs;
  Buffer.add_string buf ("  " ^ string_of_term b.btermin ^ "\n");
  Buffer.contents buf

let string_of_func f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s) : %s\n" f.fname
       (String.concat ", "
          (List.map (fun (n, t) -> Irty.to_string t ^ " " ^ n) f.fparams))
       (Irty.to_string f.fret));
  List.iter
    (fun (n, t) ->
      Buffer.add_string buf (Printf.sprintf "  local %s : %s\n" n (Irty.to_string t)))
    f.flocals;
  List.iter (fun b -> Buffer.add_string buf (string_of_block b)) f.fblocks;
  Buffer.contents buf

let string_of_program p =
  let buf = Buffer.create 2048 in
  Structs.iter
    (fun d ->
      Buffer.add_string buf (Printf.sprintf "struct %s {" d.sname);
      Array.iter
        (fun (f : Structs.field) ->
          Buffer.add_string buf
            (Printf.sprintf " %s %s;" (Irty.to_string f.ty) f.name))
        d.fields;
      Buffer.add_string buf " }\n")
    p.structs;
  List.iter
    (fun (n, t, init) ->
      Buffer.add_string buf
        (Printf.sprintf "global %s : %s%s\n" n (Irty.to_string t)
           (match init with
           | Some v -> " = " ^ Int64.to_string v
           | None -> "")))
    p.globals;
  List.iter
    (fun f -> Buffer.add_string buf ("\n" ^ string_of_func f))
    p.funcs;
  Buffer.contents buf
