(** IR-level types.

    These are Mini-C types with typedefs resolved and the placeholder/auto
    forms gone. Struct types are referenced by name into the program's
    {!Structs.t} table, so the layout transformations can rewrite a struct's
    definition without touching every instruction that mentions it. *)

type t =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Float
  | Double
  | Ptr of t
  | Struct of string
  | Array of t * int
  | Funptr  (** opaque code pointer; used for indirect calls *)

let rec of_ast (t : Slo_minic.Ast.ty) : t =
  match t with
  | Tvoid -> Void
  | Tchar -> Char
  | Tshort -> Short
  | Tint -> Int
  | Tlong -> Long
  | Tfloat -> Float
  | Tdouble -> Double
  | Tstruct s -> Struct s
  | Tptr u -> Ptr (of_ast u)
  | Tarray (u, n) -> Array (of_ast u, n)
  | Tfun _ -> Funptr
  | Tnamed n -> invalid_arg ("Irty.of_ast: unresolved typedef " ^ n)
  | Tauto -> invalid_arg "Irty.of_ast: unchecked expression type"

let is_float_ty = function
  | Float | Double -> true
  | Void | Char | Short | Int | Long | Ptr _ | Struct _ | Array _ | Funptr ->
    false

let is_integer_ty = function
  | Char | Short | Int | Long -> true
  | Void | Float | Double | Ptr _ | Struct _ | Array _ | Funptr -> false

let rec to_string = function
  | Void -> "void"
  | Char -> "char"
  | Short -> "short"
  | Int -> "int"
  | Long -> "long"
  | Float -> "float"
  | Double -> "double"
  | Ptr t -> to_string t ^ "*"
  | Struct s -> "struct " ^ s
  | Array (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Funptr -> "fun*"

let equal (a : t) (b : t) = a = b
