module Ast = Slo_minic.Ast
module Typecheck = Slo_minic.Typecheck
module Loc = Slo_minic.Loc

exception Unsupported of string * Loc.t

let unsupported loc fmt =
  Printf.ksprintf (fun s -> raise (Unsupported (s, loc))) fmt

type ctx = {
  env : Typecheck.env;
  prog : Ir.program;
  layout : Layout.t;
  func : Ir.func;
  fret_ast : Ast.ty;
  mutable cur : Ir.block;
  mutable cur_rev : Ir.instr list;  (* instrs of [cur], reversed *)
  mutable terminated : bool;
  mutable scopes : (string * string) list list;  (* source name -> slot *)
  mutable slot_counter : int;
  mutable breaks : int list;
  mutable continues : int list;
  alloc_regs : (Ir.reg, unit) Hashtbl.t;  (* regs holding fresh alloc results *)
}

(* ------------------------------------------------------------------ *)
(* Block plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let flush ctx = ctx.cur.instrs <- List.rev ctx.cur_rev

let switch_to ctx (b : Ir.block) =
  flush ctx;
  ctx.cur <- b;
  ctx.cur_rev <- List.rev b.instrs;
  ctx.terminated <- false

let new_block ctx loc = Ir.fresh_block ctx.func loc

let emit ctx loc desc =
  if not ctx.terminated then begin
    let i = { Ir.iid = Ir.fresh_iid ctx.prog; iloc = loc; idesc = desc } in
    ctx.cur_rev <- i :: ctx.cur_rev
  end

let terminate ctx term =
  if not ctx.terminated then begin
    ctx.cur.btermin <- term;
    ctx.terminated <- true
  end

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

let push_scope ctx = ctx.scopes <- [] :: ctx.scopes
let pop_scope ctx =
  match ctx.scopes with
  | _ :: rest -> ctx.scopes <- rest
  | [] -> assert false

let declare_local ctx name ty =
  let slot =
    if List.exists (fun (n, _) -> String.equal n name) ctx.func.Ir.flocals then begin
      ctx.slot_counter <- ctx.slot_counter + 1;
      Printf.sprintf "%s.%d" name ctx.slot_counter
    end
    else name
  in
  ctx.func.Ir.flocals <- ctx.func.Ir.flocals @ [ (slot, ty) ];
  (match ctx.scopes with
  | top :: rest -> ctx.scopes <- ((name, slot) :: top) :: rest
  | [] -> assert false);
  slot

let find_local ctx name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some slot -> Some slot
      | None -> go rest)
  in
  go ctx.scopes

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let ir_ty (t : Ast.ty) : Irty.t = Irty.of_ast t
let decay_ast (t : Ast.ty) = match t with Ast.Tarray (u, _) -> Ast.Tptr u | t -> t

let ety e = e.Ast.ety
let decayed_ety e = decay_ast (ety e)

let arith_ty a b : Irty.t =
  match (ir_ty a, ir_ty b) with
  | Irty.Double, _ | _, Irty.Double -> Irty.Double
  | Irty.Float, _ | _, Irty.Float -> Irty.Float
  | Irty.Long, _ | _, Irty.Long -> Irty.Long
  | _ -> Irty.Int

let binop_of_ast : Ast.binop -> Ir.binop = function
  | Ast.Add -> Ir.Add | Ast.Sub -> Ir.Sub | Ast.Mul -> Ir.Mul
  | Ast.Div -> Ir.Div | Ast.Mod -> Ir.Mod
  | Ast.Lt -> Ir.Lt | Ast.Le -> Ir.Le | Ast.Gt -> Ir.Gt | Ast.Ge -> Ir.Ge
  | Ast.Eq -> Ir.Eq | Ast.Ne -> Ir.Ne
  | Ast.Band -> Ir.Band | Ast.Bor -> Ir.Bor | Ast.Bxor -> Ir.Bxor
  | Ast.Shl -> Ir.Shl | Ast.Shr -> Ir.Shr
  | Ast.And | Ast.Or -> assert false (* lowered to control flow *)

(* emit a conversion if the value types differ in representation *)
let convert ctx loc (v : Ir.operand) (from_ : Ast.ty) (to_ : Ast.ty) : Ir.operand =
  let fi = ir_ty (decay_ast from_) and ti = ir_ty (decay_ast to_) in
  let needs_cast =
    match (fi, ti) with
    | a, b when Irty.equal a b -> false
    | (Irty.Float | Irty.Double), (Irty.Float | Irty.Double) -> true
    | (Irty.Float | Irty.Double), _ | _, (Irty.Float | Irty.Double) -> true
    | Irty.Ptr _, Irty.Ptr _ -> true  (* pointer retype: legality cares *)
    | _ -> false  (* integer width changes are free in the VM *)
  in
  if not needs_cast then v
  else begin
    let r = Ir.fresh_reg ctx.func in
    let from_alloc =
      match v with Ir.Oreg vr -> Hashtbl.mem ctx.alloc_regs vr | Ir.Oimm _ | Ir.Ofimm _ -> false
    in
    emit ctx loc (Ir.Icast (r, fi, ti, v, { explicit = false; from_alloc }));
    if from_alloc then Hashtbl.replace ctx.alloc_regs r ();
    Ir.Oreg r
  end

let sizeof_ast ctx (t : Ast.ty) = Layout.sizeof ctx.layout (ir_ty t)

(* ------------------------------------------------------------------ *)
(* Allocation pattern recognition                                      *)
(* ------------------------------------------------------------------ *)

(* match an allocation-size expression against [n * sizeof(T)],
   [sizeof(T) * n] or [sizeof(T)]; returns the count expression (None = 1)
   and the element AST type *)
let match_alloc_size (arg : Ast.expr) : (Ast.expr option * Ast.ty) option =
  match arg.edesc with
  | Ast.Esizeof t -> Some (None, t)
  | Ast.Ebin (Ast.Mul, { edesc = Ast.Esizeof t; _ }, n) -> Some (Some n, t)
  | Ast.Ebin (Ast.Mul, n, { edesc = Ast.Esizeof t; _ }) -> Some (Some n, t)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec rval ctx (e : Ast.expr) : Ir.operand =
  let loc = e.eloc in
  match e.edesc with
  | Ast.Eint n -> Ir.Oimm n
  | Ast.Efloat f -> Ir.Ofimm f
  | Ast.Estr s ->
    let r = Ir.fresh_reg ctx.func in
    emit ctx loc (Ir.Iaddrstr (r, s));
    Ir.Oreg r
  | Ast.Evar name -> (
    match find_local ctx name with
    | Some slot -> load_location ctx loc (`Local slot) (ety e) None
    | None ->
      if Hashtbl.mem ctx.env.globals name then
        load_location ctx loc (`Global name) (ety e) None
      else begin
        (* function designator *)
        let r = Ir.fresh_reg ctx.func in
        emit ctx loc (Ir.Iaddrfunc (r, name));
        Ir.Oreg r
      end)
  | Ast.Ebin ((Ast.And | Ast.Or) as op, a, b) -> short_circuit ctx loc op a b
  | Ast.Ebin (op, a, b) -> lower_binop ctx loc op a b
  | Ast.Eun (op, a) ->
    let v = rval ctx a in
    let r = Ir.fresh_reg ctx.func in
    let u =
      match op with Ast.Neg -> Ir.Neg | Ast.Lnot -> Ir.Lnot | Ast.Bnot -> Ir.Bnot
    in
    emit ctx loc (Ir.Iun (r, u, ir_ty (decayed_ety a), v));
    Ir.Oreg r
  | Ast.Eincr (kind, a) -> lower_incr ctx loc kind a
  | Ast.Eassign (l, r) ->
    (match decay_ast (ety l) with
    | Ast.Tstruct s -> unsupported loc "whole-struct assignment of '%s'" s
    | _ -> ());
    let v = rval ctx r in
    let v = convert ctx loc v (ety r) (ety l) in
    let addr, lty, acc = lval ctx l in
    emit ctx loc (Ir.Istore (addr, v, ir_ty (decay_ast lty), acc));
    v
  | Ast.Ecall (callee, args) -> lower_call ctx loc e callee args
  | Ast.Efield _ | Ast.Earrow _ | Ast.Eindex _ | Ast.Ederef _ ->
    let addr, lty, acc = lval ctx e in
    (match lty with
    | Ast.Tarray _ | Ast.Tstruct _ -> addr (* decay / aggregate base *)
    | _ ->
      let r = Ir.fresh_reg ctx.func in
      emit ctx loc (Ir.Iload (r, addr, ir_ty lty, acc));
      Ir.Oreg r)
  | Ast.Eaddr a -> (
    match a.edesc with
    | Ast.Evar name
      when find_local ctx name = None
           && not (Hashtbl.mem ctx.env.globals name) ->
      let r = Ir.fresh_reg ctx.func in
      emit ctx loc (Ir.Iaddrfunc (r, name));
      Ir.Oreg r
    | _ ->
      let addr, _, _ = lval ctx a in
      addr)
  | Ast.Ecast (t, a) ->
    let v = rval ctx a in
    let from_ = decayed_ety a in
    let fi = ir_ty from_ and ti = ir_ty t in
    if Irty.equal fi ti then v
    else begin
      let r = Ir.fresh_reg ctx.func in
      let from_alloc =
        match v with
        | Ir.Oreg vr -> Hashtbl.mem ctx.alloc_regs vr
        | Ir.Oimm _ | Ir.Ofimm _ -> false
      in
      emit ctx loc (Ir.Icast (r, fi, ti, v, { explicit = true; from_alloc }));
      if from_alloc then Hashtbl.replace ctx.alloc_regs r ();
      Ir.Oreg r
    end
  | Ast.Esizeof t ->
    record_sizeof_use ctx loc t;
    Ir.Oimm (Int64.of_int (sizeof_ast ctx t))
  | Ast.Econd (c, a, b) ->
    let cv = rval ctx c in
    let then_b = new_block ctx loc in
    let else_b = new_block ctx loc in
    let join = new_block ctx loc in
    let r = Ir.fresh_reg ctx.func in
    terminate ctx (Ir.Tbr (cv, then_b.bid, else_b.bid));
    switch_to ctx then_b;
    let av = rval ctx a in
    emit ctx loc (Ir.Imov (r, av));
    terminate ctx (Ir.Tjmp join.bid);
    switch_to ctx else_b;
    let bv = rval ctx b in
    emit ctx loc (Ir.Imov (r, bv));
    terminate ctx (Ir.Tjmp join.bid);
    switch_to ctx join;
    Ir.Oreg r

and record_sizeof_use ctx loc (t : Ast.ty) =
  let rec struct_of = function
    | Ast.Tstruct s -> Some s
    | Ast.Tarray (u, _) -> struct_of u
    | _ -> None
  in
  match struct_of t with
  | Some s -> ctx.prog.psizeof_uses <- (s, loc) :: ctx.prog.psizeof_uses
  | None -> ()

and load_location ctx loc place (t : Ast.ty) acc : Ir.operand =
  let r = Ir.fresh_reg ctx.func in
  (match place with
  | `Local slot -> emit ctx loc (Ir.Iaddrlocal (r, slot))
  | `Global g -> emit ctx loc (Ir.Iaddrglob (r, g)));
  match t with
  | Ast.Tarray _ | Ast.Tstruct _ -> Ir.Oreg r (* decay to address *)
  | _ ->
    let v = Ir.fresh_reg ctx.func in
    emit ctx loc (Ir.Iload (v, Ir.Oreg r, ir_ty t, acc));
    Ir.Oreg v

and short_circuit ctx loc op a b =
  let r = Ir.fresh_reg ctx.func in
  let av = rval ctx a in
  let rhs_b = new_block ctx loc in
  let done_b = new_block ctx loc in
  (* normalise lhs to 0/1 into r, then evaluate rhs only if needed *)
  let norm = Ir.fresh_reg ctx.func in
  emit ctx loc (Ir.Ibin (norm, Ir.Ne, Irty.Long, av, Ir.Oimm 0L));
  emit ctx loc (Ir.Imov (r, Ir.Oreg norm));
  (match op with
  | Ast.And -> terminate ctx (Ir.Tbr (Ir.Oreg norm, rhs_b.bid, done_b.bid))
  | Ast.Or -> terminate ctx (Ir.Tbr (Ir.Oreg norm, done_b.bid, rhs_b.bid))
  | _ -> assert false);
  switch_to ctx rhs_b;
  let bv = rval ctx b in
  let norm2 = Ir.fresh_reg ctx.func in
  emit ctx loc (Ir.Ibin (norm2, Ir.Ne, Irty.Long, bv, Ir.Oimm 0L));
  emit ctx loc (Ir.Imov (r, Ir.Oreg norm2));
  terminate ctx (Ir.Tjmp done_b.bid);
  switch_to ctx done_b;
  Ir.Oreg r

and lower_binop ctx loc op a b =
  let ta = decayed_ety a and tb = decayed_ety b in
  match (op, ta, tb) with
  | (Ast.Add | Ast.Sub), Ast.Tptr elem, ti when Ast.is_integer ti ->
    let base = rval ctx a in
    let idx = rval ctx b in
    let idx =
      if op = Ast.Sub then begin
        let n = Ir.fresh_reg ctx.func in
        emit ctx loc (Ir.Iun (n, Ir.Neg, Irty.Long, idx));
        Ir.Oreg n
      end
      else idx
    in
    let r = Ir.fresh_reg ctx.func in
    emit ctx loc (Ir.Iptradd (r, base, idx, ir_ty elem));
    Ir.Oreg r
  | Ast.Add, ti, Ast.Tptr elem when Ast.is_integer ti ->
    let idx = rval ctx a in
    let base = rval ctx b in
    let r = Ir.fresh_reg ctx.func in
    emit ctx loc (Ir.Iptradd (r, base, idx, ir_ty elem));
    Ir.Oreg r
  | Ast.Sub, Ast.Tptr elem, Ast.Tptr _ ->
    let x = rval ctx a and y = rval ctx b in
    let d = Ir.fresh_reg ctx.func in
    emit ctx loc (Ir.Ibin (d, Ir.Sub, Irty.Long, x, y));
    let r = Ir.fresh_reg ctx.func in
    emit ctx loc
      (Ir.Ibin (r, Ir.Div, Irty.Long, Ir.Oreg d,
                Ir.Oimm (Int64.of_int (sizeof_ast ctx elem))));
    Ir.Oreg r
  | _ ->
    let x = rval ctx a and y = rval ctx b in
    let t =
      match op with
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
        if Ast.is_pointer ta || Ast.is_pointer tb then Irty.Long
        else arith_ty ta tb
      | _ -> arith_ty ta tb
    in
    (* promote integer operands when the operation is floating *)
    let x = if Irty.is_float_ty t then convert ctx loc x ta Ast.Tdouble else x in
    let y = if Irty.is_float_ty t then convert ctx loc y tb Ast.Tdouble else y in
    let r = Ir.fresh_reg ctx.func in
    emit ctx loc (Ir.Ibin (r, binop_of_ast op, t, x, y));
    Ir.Oreg r

and lower_incr ctx loc kind a =
  let addr, lty, acc = lval ctx a in
  let old = Ir.fresh_reg ctx.func in
  emit ctx loc (Ir.Iload (old, addr, ir_ty (decay_ast lty), acc));
  let one = 1L in
  let nv = Ir.fresh_reg ctx.func in
  (match decay_ast lty with
  | Ast.Tptr elem ->
    let delta =
      match kind with
      | Ast.Preinc | Ast.Postinc -> Ir.Oimm one
      | Ast.Predec | Ast.Postdec -> Ir.Oimm (-1L)
    in
    emit ctx loc (Ir.Iptradd (nv, Ir.Oreg old, delta, ir_ty elem))
  | t ->
    let op =
      match kind with
      | Ast.Preinc | Ast.Postinc -> Ir.Add
      | Ast.Predec | Ast.Postdec -> Ir.Sub
    in
    let it = ir_ty t in
    let one_op = if Irty.is_float_ty it then Ir.Ofimm 1.0 else Ir.Oimm one in
    emit ctx loc (Ir.Ibin (nv, op, it, Ir.Oreg old, one_op)));
  emit ctx loc (Ir.Istore (addr, Ir.Oreg nv, ir_ty (decay_ast lty), acc));
  match kind with
  | Ast.Preinc | Ast.Predec -> Ir.Oreg nv
  | Ast.Postinc | Ast.Postdec -> Ir.Oreg old

and lower_call ctx loc (e : Ast.expr) callee args =
  match callee.edesc with
  | Ast.Evar "malloc" -> lower_alloc ctx loc Ir.Amalloc args
  | Ast.Evar "calloc" -> lower_calloc ctx loc args
  | Ast.Evar "realloc" -> lower_realloc ctx loc args
  | Ast.Evar "free" -> (
    match args with
    | [ p ] ->
      let pv = rval ctx p in
      emit ctx loc (Ir.Ifree pv);
      Ir.Oimm 0L
    | _ -> unsupported loc "free takes one argument")
  | Ast.Evar "memset" -> (
    match args with
    | [ p; v; n ] ->
      let tag = struct_pointee (decayed_ety p) in
      let pv = rval ctx p and vv = rval ctx v and nv = rval ctx n in
      emit ctx loc (Ir.Imemset (pv, vv, nv, tag));
      Ir.Oimm 0L
    | _ -> unsupported loc "memset takes three arguments")
  | Ast.Evar "memcpy" -> (
    match args with
    | [ d; s; n ] ->
      let tag =
        match struct_pointee (decayed_ety d) with
        | Some t -> Some t
        | None -> struct_pointee (decayed_ety s)
      in
      let dv = rval ctx d and sv = rval ctx s and nv = rval ctx n in
      emit ctx loc (Ir.Imemcpy (dv, sv, nv, tag));
      Ir.Oimm 0L
    | _ -> unsupported loc "memcpy takes three arguments")
  | Ast.Evar name ->
    let argvs = List.map (fun a -> rval ctx a) args in
    let kind =
      if Hashtbl.mem ctx.env.funcs name then Ir.Cdirect name
      else if Hashtbl.mem ctx.env.externs name then Ir.Cextern name
      else if Typecheck.is_builtin name then Ir.Cbuiltin name
      else (
        (* a variable holding a function pointer *)
        match find_local ctx name with
        | Some _ -> Ir.Cindirect (rval ctx callee)
        | None ->
          if Hashtbl.mem ctx.env.globals name then
            Ir.Cindirect (rval ctx callee)
          else Ir.Cextern name)
    in
    finish_call ctx loc e kind argvs
  | _ ->
    let argvs = List.map (fun a -> rval ctx a) args in
    let f = rval ctx callee in
    finish_call ctx loc e (Ir.Cindirect f) argvs

and finish_call ctx loc e kind argvs =
  let want_result = not (Ast.ty_equal e.ety Ast.Tvoid) in
  if want_result then begin
    let r = Ir.fresh_reg ctx.func in
    emit ctx loc (Ir.Icall (Some r, kind, argvs));
    Ir.Oreg r
  end
  else begin
    emit ctx loc (Ir.Icall (None, kind, argvs));
    Ir.Oimm 0L
  end

and struct_pointee = function
  | Ast.Tptr (Ast.Tstruct s) -> Some s
  | _ -> None

and lower_alloc ctx loc kind args =
  match args with
  | [ size ] ->
    let count, elem =
      match match_alloc_size size with
      | Some (n, t) -> (n, t)
      | None -> (Some size, Ast.Tchar)
    in
    let count_v =
      match count with None -> Ir.Oimm 1L | Some n -> rval ctx n
    in
    let r = Ir.fresh_reg ctx.func in
    emit ctx loc (Ir.Ialloc (r, kind, count_v, ir_ty elem));
    Hashtbl.replace ctx.alloc_regs r ();
    Ir.Oreg r
  | _ -> unsupported loc "malloc takes one argument"

and lower_calloc ctx loc args =
  match args with
  | [ n; size ] -> (
    match match_alloc_size size with
    | Some (None, t) ->
      let count_v = rval ctx n in
      let r = Ir.fresh_reg ctx.func in
      emit ctx loc (Ir.Ialloc (r, Ir.Acalloc, count_v, ir_ty t));
      Hashtbl.replace ctx.alloc_regs r ();
      Ir.Oreg r
    | Some _ | None ->
      (* byte-typed fallback: calloc(n, k) *)
      let nv = rval ctx n and sv = rval ctx size in
      let total = Ir.fresh_reg ctx.func in
      emit ctx loc (Ir.Ibin (total, Ir.Mul, Irty.Long, nv, sv));
      let r = Ir.fresh_reg ctx.func in
      emit ctx loc (Ir.Ialloc (r, Ir.Acalloc, Ir.Oreg total, Irty.Char));
      Hashtbl.replace ctx.alloc_regs r ();
      Ir.Oreg r)
  | _ -> unsupported loc "calloc takes two arguments"

and lower_realloc ctx loc args =
  match args with
  | [ p; size ] ->
    let pv = rval ctx p in
    let count, elem =
      match match_alloc_size size with
      | Some (n, t) -> (n, t)
      | None -> (Some size, Ast.Tchar)
    in
    let count_v = match count with None -> Ir.Oimm 1L | Some n -> rval ctx n in
    let r = Ir.fresh_reg ctx.func in
    emit ctx loc (Ir.Ialloc (r, Ir.Arealloc pv, count_v, ir_ty elem));
    Hashtbl.replace ctx.alloc_regs r ();
    Ir.Oreg r
  | _ -> unsupported loc "realloc takes two arguments"

(* lvalue: address operand, AST type of the location, access tag *)
and lval ctx (e : Ast.expr) : Ir.operand * Ast.ty * Ir.access option =
  let loc = e.eloc in
  match e.edesc with
  | Ast.Evar name -> (
    match find_local ctx name with
    | Some slot ->
      let r = Ir.fresh_reg ctx.func in
      emit ctx loc (Ir.Iaddrlocal (r, slot));
      (Ir.Oreg r, ety e, None)
    | None ->
      if Hashtbl.mem ctx.env.globals name then begin
        let r = Ir.fresh_reg ctx.func in
        emit ctx loc (Ir.Iaddrglob (r, name));
        (Ir.Oreg r, ety e, None)
      end
      else unsupported loc "cannot take location of function '%s'" name)
  | Ast.Ederef p ->
    let pv = rval ctx p in
    (pv, ety e, None)
  | Ast.Eindex (b, i) -> (
    let bt = decayed_ety b in
    match bt with
    | Ast.Tptr elem ->
      let bv = rval ctx b in
      let iv = rval ctx i in
      let r = Ir.fresh_reg ctx.func in
      emit ctx loc (Ir.Iptradd (r, bv, iv, ir_ty elem));
      (Ir.Oreg r, elem, None)
    | _ -> unsupported loc "subscript of non-pointer")
  | Ast.Efield (b, fname) -> (
    let baddr, bty, _ = lval ctx b in
    match decay_ast bty with
    | Ast.Tstruct s ->
      let idx = Typecheck.field_index ctx.env s fname in
      let r = Ir.fresh_reg ctx.func in
      emit ctx loc (Ir.Ifieldaddr (r, baddr, s, idx));
      (Ir.Oreg r, ety e, Some { Ir.astruct = s; afield = idx })
    | _ -> unsupported loc "field access on non-struct")
  | Ast.Earrow (b, fname) -> (
    let bv = rval ctx b in
    match decayed_ety b with
    | Ast.Tptr (Ast.Tstruct s) ->
      let idx = Typecheck.field_index ctx.env s fname in
      let r = Ir.fresh_reg ctx.func in
      emit ctx loc (Ir.Ifieldaddr (r, bv, s, idx));
      (Ir.Oreg r, ety e, Some { Ir.astruct = s; afield = idx })
    | _ -> unsupported loc "'->' on non-struct-pointer")
  | Ast.Eint _ | Ast.Efloat _ | Ast.Estr _ | Ast.Ebin _ | Ast.Eun _
  | Ast.Eincr _ | Ast.Eassign _ | Ast.Ecall _ | Ast.Eaddr _ | Ast.Ecast _
  | Ast.Esizeof _ | Ast.Econd _ ->
    unsupported loc "expression is not an lvalue"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmts ctx (stmts : Ast.stmt list) =
  List.iter (lower_stmt ctx) stmts

and lower_stmt ctx (s : Ast.stmt) =
  let loc = s.sloc in
  if ctx.terminated then begin
    (* dead code after return/break: park it in an unreachable block *)
    let b = new_block ctx loc in
    switch_to ctx b
  end;
  match s.sdesc with
  | Ast.Sexpr e -> ignore (rval ctx e)
  | Ast.Sdecl (t, name, init) ->
    let slot = declare_local ctx name (ir_ty t) in
    (match init with
    | None -> ()
    | Some e ->
      let v = rval ctx e in
      let v = convert ctx loc v (ety e) t in
      let r = Ir.fresh_reg ctx.func in
      emit ctx loc (Ir.Iaddrlocal (r, slot));
      emit ctx loc (Ir.Istore (Ir.Oreg r, v, ir_ty (decay_ast t), None)))
  | Ast.Sif (c, then_s, else_s) ->
    let cv = rval ctx c in
    let then_b = new_block ctx loc in
    let else_b = new_block ctx loc in
    let join = new_block ctx loc in
    terminate ctx (Ir.Tbr (cv, then_b.bid, else_b.bid));
    switch_to ctx then_b;
    push_scope ctx;
    lower_stmts ctx then_s;
    pop_scope ctx;
    terminate ctx (Ir.Tjmp join.bid);
    switch_to ctx else_b;
    push_scope ctx;
    lower_stmts ctx else_s;
    pop_scope ctx;
    terminate ctx (Ir.Tjmp join.bid);
    switch_to ctx join
  | Ast.Swhile (c, body) ->
    let header = new_block ctx loc in
    let body_b = new_block ctx loc in
    let exit_b = new_block ctx loc in
    terminate ctx (Ir.Tjmp header.bid);
    switch_to ctx header;
    let cv = rval ctx c in
    terminate ctx (Ir.Tbr (cv, body_b.bid, exit_b.bid));
    switch_to ctx body_b;
    ctx.breaks <- exit_b.bid :: ctx.breaks;
    ctx.continues <- header.bid :: ctx.continues;
    push_scope ctx;
    lower_stmts ctx body;
    pop_scope ctx;
    ctx.breaks <- List.tl ctx.breaks;
    ctx.continues <- List.tl ctx.continues;
    terminate ctx (Ir.Tjmp header.bid);
    switch_to ctx exit_b
  | Ast.Sdo (body, c) ->
    let body_b = new_block ctx loc in
    let cond_b = new_block ctx loc in
    let exit_b = new_block ctx loc in
    terminate ctx (Ir.Tjmp body_b.bid);
    switch_to ctx body_b;
    ctx.breaks <- exit_b.bid :: ctx.breaks;
    ctx.continues <- cond_b.bid :: ctx.continues;
    push_scope ctx;
    lower_stmts ctx body;
    pop_scope ctx;
    ctx.breaks <- List.tl ctx.breaks;
    ctx.continues <- List.tl ctx.continues;
    terminate ctx (Ir.Tjmp cond_b.bid);
    switch_to ctx cond_b;
    let cv = rval ctx c in
    terminate ctx (Ir.Tbr (cv, body_b.bid, exit_b.bid));
    switch_to ctx exit_b
  | Ast.Sfor (init, cond, step, body) ->
    push_scope ctx;
    Option.iter (lower_stmt ctx) init;
    let header = new_block ctx loc in
    let body_b = new_block ctx loc in
    let step_b = new_block ctx loc in
    let exit_b = new_block ctx loc in
    terminate ctx (Ir.Tjmp header.bid);
    switch_to ctx header;
    (match cond with
    | None -> terminate ctx (Ir.Tjmp body_b.bid)
    | Some c ->
      let cv = rval ctx c in
      terminate ctx (Ir.Tbr (cv, body_b.bid, exit_b.bid)));
    switch_to ctx body_b;
    ctx.breaks <- exit_b.bid :: ctx.breaks;
    ctx.continues <- step_b.bid :: ctx.continues;
    push_scope ctx;
    lower_stmts ctx body;
    pop_scope ctx;
    ctx.breaks <- List.tl ctx.breaks;
    ctx.continues <- List.tl ctx.continues;
    terminate ctx (Ir.Tjmp step_b.bid);
    switch_to ctx step_b;
    Option.iter (fun e -> ignore (rval ctx e)) step;
    terminate ctx (Ir.Tjmp header.bid);
    switch_to ctx exit_b;
    pop_scope ctx
  | Ast.Sreturn eo ->
    let v =
      Option.map
        (fun e ->
          let v = rval ctx e in
          convert ctx loc v (ety e) ctx.fret_ast)
        eo
    in
    terminate ctx (Ir.Tret v)
  | Ast.Sbreak -> (
    match ctx.breaks with
    | t :: _ -> terminate ctx (Ir.Tjmp t)
    | [] -> unsupported loc "break outside loop")
  | Ast.Scontinue -> (
    match ctx.continues with
    | t :: _ -> terminate ctx (Ir.Tjmp t)
    | [] -> unsupported loc "continue outside loop")
  | Ast.Sblock body ->
    push_scope ctx;
    lower_stmts ctx body;
    pop_scope ctx

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let lower_func env prog layout (fd : Ast.func_decl) : Ir.func =
  let func =
    {
      Ir.fname = fd.funname;
      fret = ir_ty fd.funret;
      fparams = List.map (fun (t, n) -> (n, ir_ty t)) fd.funparams;
      flocals = [];
      fblocks = [];
      floc = fd.funloc;
      next_reg = 0;
      next_block = 0;
    }
  in
  let entry =
    let b =
      { Ir.bid = 0; instrs = []; btermin = Ir.Tret None; bloc = fd.funloc }
    in
    func.next_block <- 1;
    func.fblocks <- [ b ];
    b
  in
  let ctx =
    {
      env; prog; layout; func; fret_ast = fd.funret; cur = entry;
      cur_rev = []; terminated = false;
      scopes = [ [] ]; slot_counter = 0; breaks = []; continues = [];
      alloc_regs = Hashtbl.create 16;
    }
  in
  (* parameters become ordinary slots; the VM stores arguments into them *)
  List.iter
    (fun (t, n) -> ignore (declare_local ctx n (ir_ty t)))
    fd.funparams;
  lower_stmts ctx fd.funbody;
  if not ctx.terminated then
    terminate ctx
      (if String.equal fd.funname "main" then Ir.Tret (Some (Ir.Oimm 0L))
       else Ir.Tret None);
  flush ctx;
  func

let lower (prog_ast : Ast.program) (env : Typecheck.env) : Ir.program =
  let structs = Structs.create () in
  Hashtbl.iter
    (fun name (sd : Ast.struct_decl) ->
      Structs.define structs name
        (List.map
           (fun (f : Ast.field_decl) ->
             { Structs.name = f.fname; ty = ir_ty f.fty; bits = f.fbits })
           sd.sfields))
    env.structs;
  let prog =
    {
      Ir.structs; globals = []; funcs = []; pexterns = [];
      psizeof_uses = []; next_iid = 0;
    }
  in
  let layout = Layout.create structs in
  List.iter
    (fun d ->
      match d with
      | Ast.Dglobal g ->
        let init =
          match g.ginit with
          | None -> None
          | Some { edesc = Ast.Eint n; _ } -> Some n
          | Some { edesc = Ast.Efloat f; _ } ->
            Some (Int64.bits_of_float f)
          | Some { edesc = Ast.Eun (Ast.Neg, { edesc = Ast.Eint n; _ }); _ } ->
            Some (Int64.neg n)
          | Some e ->
            unsupported e.eloc "global initialiser must be a constant"
        in
        prog.globals <- prog.globals @ [ (g.gname, ir_ty g.gty, init) ]
      | Ast.Dextern e ->
        prog.pexterns <-
          prog.pexterns @ [ { Ir.ename = e.exname; evariadic = e.exvariadic } ]
      | Ast.Dstruct _ | Ast.Dtypedef _ | Ast.Dfunc _ -> ())
    prog_ast;
  List.iter
    (fun d ->
      match d with
      | Ast.Dfunc fd -> prog.funcs <- prog.funcs @ [ lower_func env prog layout fd ]
      | Ast.Dstruct _ | Ast.Dtypedef _ | Ast.Dglobal _ | Ast.Dextern _ -> ())
    prog_ast;
  prog

let lower_source src =
  let ast = Slo_minic.Parser.parse src in
  let env = Typecheck.check ast in
  lower ast env
