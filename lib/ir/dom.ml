type t = {
  idoms : int array; (* block id -> idom block id; -1 = none/unreachable *)
  cfg : Cfg.t;
}

(* Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm" *)
let compute (cfg : Cfg.t) : t =
  let n = Cfg.num_blocks cfg in
  let entry = Cfg.entry cfg in
  let idoms = Array.make n (-1) in
  idoms.(entry) <- entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while cfg.rpo_index.(!a) > cfg.rpo_index.(!b) do
        a := idoms.(!a)
      done;
      while cfg.rpo_index.(!b) > cfg.rpo_index.(!a) do
        b := idoms.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let processed_preds =
            List.filter (fun p -> idoms.(p) >= 0) cfg.preds.(b)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idoms.(b) <> new_idom then begin
              idoms.(b) <- new_idom;
              changed := true
            end
        end)
      cfg.rpo
  done;
  { idoms; cfg }

let idom t b =
  if b < 0 || b >= Array.length t.idoms then None
  else if t.idoms.(b) < 0 then None
  else if b = Cfg.entry t.cfg then None
  else Some t.idoms.(b)

let dominates t a b =
  if not (Cfg.reachable t.cfg b) then false
  else begin
    let entry = Cfg.entry t.cfg in
    let rec walk x = if x = a then true else if x = entry then a = entry else walk t.idoms.(x) in
    walk b
  end

let children t b =
  let acc = ref [] in
  Array.iteri
    (fun i d -> if d = b && i <> b && Cfg.reachable t.cfg i then acc := i :: !acc)
    t.idoms;
  List.rev !acc
