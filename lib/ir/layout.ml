type field_layout = {
  byte_off : int;
  bit_off : int;
  bit_width : int option;
  fty : Irty.t;
}

type struct_layout = {
  size : int;
  align : int;
  fields : field_layout array;
}

type t = {
  table : Structs.t;
  memo : (string, struct_layout) Hashtbl.t;
}

let create table = { table; memo = Hashtbl.create 16 }

let scalar_size = function
  | Irty.Void -> 0
  | Irty.Char -> 1
  | Irty.Short -> 2
  | Irty.Int -> 4
  | Irty.Long -> 8
  | Irty.Float -> 4
  | Irty.Double -> 8
  | Irty.Ptr _ | Irty.Funptr -> 8
  | Irty.Struct _ | Irty.Array _ -> assert false

let align_up off align = (off + align - 1) / align * align

let rec sizeof t ty =
  match ty with
  | Irty.Struct s -> (layout_of t s).size
  | Irty.Array (u, n) -> n * sizeof t u
  | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long | Irty.Float
  | Irty.Double | Irty.Ptr _ | Irty.Funptr ->
    scalar_size ty

and alignof t ty =
  match ty with
  | Irty.Struct s -> (layout_of t s).align
  | Irty.Array (u, _) -> alignof t u
  | Irty.Void -> 1
  | Irty.Char | Irty.Short | Irty.Int | Irty.Long | Irty.Float | Irty.Double
  | Irty.Ptr _ | Irty.Funptr ->
    scalar_size ty

and layout_of t sname =
  match Hashtbl.find_opt t.memo sname with
  | Some l -> l
  | None ->
    let decl = Structs.find t.table sname in
    let n = Array.length decl.fields in
    let fls = Array.make n { byte_off = 0; bit_off = 0; bit_width = None; fty = Irty.Void } in
    let off = ref 0 in
    let max_align = ref 1 in
    (* state of the currently open bit-field storage unit *)
    let unit_ty = ref None and unit_off = ref 0 and unit_bits_used = ref 0 in
    let close_unit () = unit_ty := None in
    Array.iteri
      (fun i (f : Structs.field) ->
        match f.bits with
        | None ->
          close_unit ();
          let a = alignof t f.ty in
          max_align := max !max_align a;
          off := align_up !off a;
          fls.(i) <- { byte_off = !off; bit_off = 0; bit_width = None; fty = f.ty };
          off := !off + sizeof t f.ty
        | Some w ->
          let unit_size = scalar_size f.ty in
          let capacity = unit_size * 8 in
          let reuse =
            match !unit_ty with
            | Some ut when Irty.equal ut f.ty && !unit_bits_used + w <= capacity ->
              true
            | Some _ | None -> false
          in
          if not reuse then begin
            let a = alignof t f.ty in
            max_align := max !max_align a;
            off := align_up !off a;
            unit_ty := Some f.ty;
            unit_off := !off;
            unit_bits_used := 0;
            off := !off + unit_size
          end;
          fls.(i) <-
            { byte_off = !unit_off; bit_off = !unit_bits_used;
              bit_width = Some w; fty = f.ty };
          unit_bits_used := !unit_bits_used + w)
      decl.fields;
    let size = if !off = 0 then 0 else align_up !off !max_align in
    let l = { size; align = !max_align; fields = fls } in
    Hashtbl.replace t.memo sname l;
    l

let field_layout t s i = (layout_of t s).fields.(i)
let struct_size t s = (layout_of t s).size
let struct_align t s = (layout_of t s).align

let describe t sname =
  let decl = Structs.find t.table sname in
  let l = layout_of t sname in
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "struct %s  (size %d, align %d)\n" sname l.size l.align);
  Array.iteri
    (fun i (f : Structs.field) ->
      let fl = l.fields.(i) in
      let bits =
        match fl.bit_width with
        | None -> ""
        | Some w -> Printf.sprintf " bits %d..%d" fl.bit_off (fl.bit_off + w - 1)
      in
      Buffer.add_string buf
        (Printf.sprintf "  +%-4d %-12s %s%s\n" fl.byte_off
           (Irty.to_string f.ty) f.name bits))
    decl.fields;
  Buffer.contents buf
