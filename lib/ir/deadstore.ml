module FS = Set.Make (struct
  type t = string * int

  let compare = compare
end)

type store = {
  ds_struct : string;
  ds_field : int;
  ds_fn : string;
  ds_iid : int;
  ds_loc : Ir.Loc.t;
  ds_never_read : bool;
}

module Flow = Dataflow.Make (struct
  type t = FS.t

  let bottom = FS.empty
  let equal = FS.equal
  let join = FS.union
end)

let fields_of (structs : Structs.t) s =
  match Structs.find_opt structs s with
  | None -> FS.empty
  | Some d ->
    FS.of_list (List.init (Array.length d.fields) (fun fi -> (s, fi)))

(* per-function facts gathered in one scan *)
type fscan = {
  mutable direct_reads : FS.t;     (* tagged loads *)
  mutable escaping : FS.t;         (* field addrs used outside load/store addressing *)
  mutable ext_structs : FS.t;      (* fields of struct types reaching ext calls *)
  mutable callees : string list;   (* direct calls to defined functions *)
  mutable has_ext_call : bool;
}

let scan_func (prog : Ir.program) (defined : (string, unit) Hashtbl.t)
    (f : Ir.func) : fscan =
  let sc =
    { direct_reads = FS.empty; escaping = FS.empty; ext_structs = FS.empty;
      callees = []; has_ext_call = false }
  in
  let regty = Regty.infer prog f in
  let ty_of = function
    | Ir.Oreg r -> regty.(r)
    | Ir.Oimm _ -> Some Irty.Long
    | Ir.Ofimm _ -> Some Irty.Double
  in
  let fieldaddr_of : (Ir.reg, string * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          (match i.idesc with
          | Ir.Ifieldaddr (r, _, s, fi) -> Hashtbl.replace fieldaddr_of r (s, fi)
          | Ir.Iload (_, _, _, Some a) ->
            sc.direct_reads <- FS.add (a.astruct, a.afield) sc.direct_reads
          | Ir.Imemcpy (_, _, _, Some s) | Ir.Imemset (_, _, _, Some s) ->
            sc.direct_reads <- FS.union (fields_of prog.structs s) sc.direct_reads
          | Ir.Icall (_, callee, args) -> (
            (match callee with
            | Ir.Cdirect n when Hashtbl.mem defined n ->
              if not (List.mem n sc.callees) then sc.callees <- n :: sc.callees
            | Ir.Cdirect _ | Ir.Cbuiltin _ | Ir.Cextern _ | Ir.Cindirect _ ->
              sc.has_ext_call <- true);
            match callee with
            | Ir.Cdirect n when Hashtbl.mem defined n -> ()
            | _ ->
              List.iter
                (fun arg ->
                  let rec pointee = function
                    | Irty.Ptr u | Irty.Array (u, _) -> pointee u
                    | Irty.Struct s -> Some s
                    | _ -> None
                  in
                  match pointee (Option.value ~default:Irty.Void (ty_of arg)) with
                  | Some s ->
                    sc.ext_structs <-
                      FS.union (fields_of prog.structs s) sc.ext_structs
                  | None -> ())
                args)
          | _ -> ());
          (* any use of a field address outside load/store addressing means
             the field may be read through a pointer we no longer see *)
          let escape (o : Ir.operand) =
            match o with
            | Ir.Oreg r -> (
              match Hashtbl.find_opt fieldaddr_of r with
              | Some sf -> sc.escaping <- FS.add sf sc.escaping
              | None -> ())
            | Ir.Oimm _ | Ir.Ofimm _ -> ()
          in
          match i.idesc with
          | Ir.Iload (_, _, _, _) -> ()  (* the address operand is the access *)
          | Ir.Istore (_, v, _, _) -> escape v
          | _ -> List.iter escape (Ir.used_operands i))
        b.instrs;
      match b.btermin with
      | Ir.Tbr (o, _, _) -> (
        match o with
        | Ir.Oreg r ->
          if Hashtbl.mem fieldaddr_of r then
            sc.escaping <-
              FS.add (Hashtbl.find fieldaddr_of r) sc.escaping
        | _ -> ())
      | Ir.Tret (Some (Ir.Oreg r)) ->
        if Hashtbl.mem fieldaddr_of r then
          sc.escaping <- FS.add (Hashtbl.find fieldaddr_of r) sc.escaping
      | Ir.Tret _ | Ir.Tjmp _ -> ())
    f.fblocks;
  sc

let analyze (prog : Ir.program) : store list =
  let universe =
    let acc = ref FS.empty in
    Structs.iter
      (fun d -> acc := FS.union (fields_of prog.structs d.sname) !acc)
      prog.structs;
    !acc
  in
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.fname ()) prog.funcs;
  let scans = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace scans f.fname (scan_func prog defined f))
    prog.funcs;
  (* what the world outside the analysed functions may read *)
  let ext_read =
    Hashtbl.fold
      (fun _ sc acc -> FS.union sc.ext_structs (FS.union sc.escaping acc))
      scans FS.empty
  in
  (* transitive may-read summaries over the call graph *)
  let summary = Hashtbl.create 16 in
  Hashtbl.iter
    (fun fn sc ->
      Hashtbl.replace summary fn
        (if sc.has_ext_call then FS.union sc.direct_reads ext_read
         else sc.direct_reads))
    scans;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun fn (sc : fscan) ->
        let cur = Hashtbl.find summary fn in
        let nu =
          List.fold_left
            (fun acc c ->
              FS.union acc
                (Option.value ~default:FS.empty (Hashtbl.find_opt summary c)))
            cur sc.callees
        in
        if not (FS.equal cur nu) then begin
          Hashtbl.replace summary fn nu;
          changed := true
        end)
      scans
  done;
  let always_live = ext_read in
  let global_reads =
    Hashtbl.fold (fun _ sc acc -> FS.union sc.direct_reads acc) scans always_live
  in
  let instr_transfer fact (i : Ir.instr) =
    match i.idesc with
    | Ir.Iload (_, _, _, Some a) -> FS.add (a.astruct, a.afield) fact
    | Ir.Imemcpy (_, _, _, Some s) | Ir.Imemset (_, _, _, Some s) ->
      FS.union (fields_of prog.structs s) fact
    | Ir.Icall (_, Ir.Cdirect n, _) when Hashtbl.mem defined n ->
      FS.union (Option.value ~default:FS.empty (Hashtbl.find_opt summary n)) fact
    | Ir.Icall (_, _, _) -> FS.union ext_read fact
    | _ -> fact
  in
  let out = ref [] in
  List.iter
    (fun (f : Ir.func) ->
      let cfg = Cfg.build f in
      let exit_seed =
        if String.equal f.fname "main" then FS.empty else universe
      in
      let sol =
        Flow.backward cfg ~init:exit_seed ~transfer:(fun b out_f ->
            List.fold_left instr_transfer out_f (List.rev b.instrs))
      in
      Array.iter
        (fun (b : Ir.block) ->
          let fact = ref sol.after.(b.bid) in
          List.iter
            (fun (i : Ir.instr) ->
              (match i.idesc with
              | Ir.Istore (_, _, _, Some a) ->
                let sf = (a.astruct, a.afield) in
                if (not (FS.mem sf !fact)) && not (FS.mem sf always_live) then
                  out :=
                    {
                      ds_struct = a.astruct;
                      ds_field = a.afield;
                      ds_fn = f.fname;
                      ds_iid = i.iid;
                      ds_loc = i.iloc;
                      ds_never_read = not (FS.mem sf global_reads);
                    }
                    :: !out
              | _ -> ());
              fact := instr_transfer !fact i)
            (List.rev b.instrs))
        cfg.blocks)
    prog.funcs;
  List.sort
    (fun a b ->
      match String.compare a.ds_fn b.ds_fn with
      | 0 -> compare a.ds_iid b.ds_iid
      | c -> c)
    !out

let never_read_fields stores =
  List.filter_map
    (fun d -> if d.ds_never_read then Some (d.ds_struct, d.ds_field) else None)
    stores
  |> List.sort_uniq compare
