(** Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

    Used by the loop analysis tests as an independent oracle for natural
    loops and by block-placement sanity checks; exposed publicly because a
    dominator tree is a standard service of a compiler substrate. *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry block or unreachable blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: every path from entry to [b] passes through [a].
    Reflexive. *)

val children : t -> int -> int list
(** Dominator-tree children. *)
