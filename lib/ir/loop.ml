type loop = {
  header : int;
  mutable body : int list;
  mutable children : loop list;
  mutable parent : loop option;
  mutable depth : int;
  mutable irreducible : bool;
}

type forest = {
  loops : loop list;  (* top level *)
  all : loop list;    (* innermost first *)
  inner : loop option array;  (* block id -> innermost loop *)
  back_edges : (int * int) list;
  by_header : (int, loop) Hashtbl.t;
}

module UF = struct
  type t = int array

  let create n = Array.init n (fun i -> i)

  let rec find (t : t) x = if t.(x) = x then x else begin
    let r = find t t.(x) in
    t.(x) <- r;
    r
  end

  let union t x w = t.(find t x) <- find t w
end

let compute (cfg : Cfg.t) : forest =
  let nb = Cfg.num_blocks cfg in
  (* DFS preorder *)
  let number = Array.make nb (-1) in
  let nodes = Array.make nb (-1) in
  let last = Array.make nb (-1) in
  let counter = ref 0 in
  let rec dfs b =
    if number.(b) < 0 then begin
      let pre = !counter in
      incr counter;
      number.(b) <- pre;
      nodes.(pre) <- b;
      List.iter dfs cfg.succs.(b);
      last.(pre) <- !counter - 1
    end
  in
  dfs (Cfg.entry cfg);
  let n = !counter in
  let is_ancestor w v = w <= v && v <= last.(w) in
  (* classify predecessors in preorder space *)
  let back_preds = Array.make n [] in
  let non_back_preds = Array.make n [] in
  let back_edges = ref [] in
  for w = 0 to n - 1 do
    let b = nodes.(w) in
    List.iter
      (fun pb ->
        if number.(pb) >= 0 then begin
          let v = number.(pb) in
          if is_ancestor w v then begin
            back_preds.(w) <- v :: back_preds.(w);
            back_edges := (pb, b) :: !back_edges
          end
          else non_back_preds.(w) <- v :: non_back_preds.(w)
        end)
      cfg.preds.(b)
  done;
  let uf = UF.create n in
  let header = Array.make n (-1) in
  let is_header = Array.make n false in
  let irreducible = Array.make n false in
  for w = n - 1 downto 0 do
    let p = Hashtbl.create 8 in
    let worklist = Queue.create () in
    let add_p x =
      if (not (Hashtbl.mem p x)) && x <> w then begin
        Hashtbl.replace p x ();
        Queue.add x worklist
      end
    in
    List.iter
      (fun v ->
        if v <> w then add_p (UF.find uf v) else is_header.(w) <- true
        (* self loop *))
      back_preds.(w);
    if Hashtbl.length p > 0 then is_header.(w) <- true;
    while not (Queue.is_empty worklist) do
      let x = Queue.pop worklist in
      List.iter
        (fun y ->
          let y' = UF.find uf y in
          if not (is_ancestor w y') then begin
            irreducible.(w) <- true;
            non_back_preds.(w) <- y' :: non_back_preds.(w)
          end
          else add_p y')
        non_back_preds.(x)
    done;
    Hashtbl.iter
      (fun x () ->
        header.(x) <- w;
        UF.union uf x w)
      p
  done;
  (* build loop records for headers *)
  let by_header = Hashtbl.create 8 in
  for w = 0 to n - 1 do
    if is_header.(w) then
      Hashtbl.replace by_header nodes.(w)
        { header = nodes.(w); body = [ nodes.(w) ]; children = [];
          parent = None; depth = 0; irreducible = irreducible.(w) }
  done;
  (* membership and nesting *)
  for x = 0 to n - 1 do
    let h = header.(x) in
    if h >= 0 then begin
      let outer = Hashtbl.find by_header nodes.(h) in
      if is_header.(x) then begin
        let l = Hashtbl.find by_header nodes.(x) in
        l.parent <- Some outer;
        outer.children <- l :: outer.children
      end
      else outer.body <- nodes.(x) :: outer.body
    end
  done;
  let top =
    Hashtbl.fold
      (fun _ l acc -> if l.parent = None then l :: acc else acc)
      by_header []
  in
  let rec set_depth d l =
    l.depth <- d;
    List.iter (set_depth (d + 1)) l.children
  in
  List.iter (set_depth 1) top;
  (* innermost loop per block *)
  let inner = Array.make nb None in
  Hashtbl.iter
    (fun _ l -> List.iter (fun b -> inner.(b) <- Some l) l.body)
    by_header;
  (* all loops innermost-first = descending depth, stable on header id *)
  let all =
    Hashtbl.fold (fun _ l acc -> l :: acc) by_header []
    |> List.sort (fun a b ->
           match compare b.depth a.depth with
           | 0 -> compare a.header b.header
           | c -> c)
  in
  { loops = top; all; inner; back_edges = !back_edges; by_header }

let top_level f = f.loops
let all_loops f = f.all

let innermost f b =
  if b >= 0 && b < Array.length f.inner then f.inner.(b) else None

let rec all_blocks l = l.body @ List.concat_map all_blocks l.children

let is_back_edge f e = List.mem e f.back_edges
let loop_of_header f h = Hashtbl.find_opt f.by_header h
let depth_of_block f b = match innermost f b with Some l -> l.depth | None -> 0
