(** Dead-code cleanup used by the BE after layout transformations.

    Rewriting field-access chains (splitting, peeling) and deleting dead
    stores leaves orphaned address computations and loads behind; this pass
    removes side-effect-free instructions whose destination register is
    never used, iterating to a fixpoint. Loads are treated as removable: a
    dead load has no program-visible effect, and a real compiler would not
    emit it (leaving it would also pollute the simulated cache trace). *)

val cleanup : Ir.func -> int
(** Returns the number of instructions removed. *)
