(** A reusable lattice-fixpoint dataflow framework over {!Cfg}.

    Every flow-sensitive question the advice pipeline asks ("may this
    field still be read after this store?", and whatever comes next) is
    an instance of the same shape: a join-semilattice of facts, a
    monotone per-block transfer function, and a worklist iteration to a
    fixpoint over the control-flow graph. This module provides that
    shape once, in both directions, so each client only writes its
    lattice and transfer.

    Facts live at {e block boundaries}: [before.(b)] is the fact at the
    entry of block [b] and [after.(b)] the fact at its exit, whichever
    direction the analysis runs. Clients that need per-instruction facts
    replay the transfer through the block's instruction list starting
    from the appropriate boundary (see {!Deadstore} for an example).

    Unreachable blocks keep [L.bottom] on both sides — the solver only
    visits blocks in the CFG's reverse postorder. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** Least element; initial value on every boundary and the identity of
      {!join}. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) : sig
  type result = {
    before : L.t array;  (** fact at block entry, indexed by block id *)
    after : L.t array;   (** fact at block exit, indexed by block id *)
  }

  val forward :
    Cfg.t -> init:L.t -> transfer:(Ir.block -> L.t -> L.t) -> result
  (** [forward cfg ~init ~transfer] solves a forward problem:
      [before.(entry)] starts from [init], [before.(b)] is the join of
      the predecessors' [after], and [after.(b) = transfer b before.(b)].
      [transfer] must be monotone in its fact argument. *)

  val backward :
    Cfg.t -> init:L.t -> transfer:(Ir.block -> L.t -> L.t) -> result
  (** [backward cfg ~init ~transfer] solves a backward problem:
      [after.(b)] of every exit block (no successors) starts from
      [init], [after.(b)] is the join of the successors' [before], and
      [before.(b) = transfer b after.(b)]. *)
end
