(** Call graph over a whole program, with Tarjan SCCs.

    Used by the inter-procedural scaling (ISPBO) to propagate execution
    counts top-down ("the propagation happens top-down over the call-graph
    with the assumption that the main procedure is called once"; recursion
    is handled by condensing strongly connected components) and by the
    escape analysis to decide whether a type escapes the compilation
    scope. *)

type call_site = {
  cs_caller : string;
  cs_callee : Ir.callee;
  cs_block : int;   (** block id within the caller *)
  cs_instr : int;   (** instruction id *)
}

type t

val build : Ir.program -> t

val call_sites : t -> string -> call_site list
(** Call sites appearing in the body of the named function. *)

val callers_of : t -> string -> call_site list
(** Direct call sites targeting the named (defined) function. *)

val sccs_topological : t -> string list list
(** SCCs of defined functions in topological order, callers before
    callees. Indirect and extern callees induce no edges. *)

val defined : t -> string list
