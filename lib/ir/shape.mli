(** Recursive-shape and ownership analysis for linked structures.

    The paper's transformations only reshape array-of-struct allocation
    sites; mcf's node list is the pointer-chasing shape that Marmoset and
    SoCal optimize with pool allocation + structure-of-arrays
    factorization. This module is the static side of that family: it
    classifies every {e self-referential} record type (one with at least
    one field of type [struct S *] inside [struct S] itself — a link
    field) as {e poolable} or not.

    A type is poolable when its cells can be relocated into a packed,
    index-linked pool ({!Transform.pool}): every [struct S *] value in
    the program can be reinterpreted as an element index, which requires

    - a single dominating allocation site (one [malloc]/[calloc] of an
      array of [S], executed at most once — not in a loop, not in a
      function that can run twice, never [realloc]ed or [free]d);
    - no by-value instances (globals, locals, or other records embedding
      [S] directly — only pointers);
    - {e link-field uniqueness}, proven by a forward dataflow over the
      {!Dataflow} functor: every pointer to [S] descends from the
      allocation site through [ptradd]/copies/properly-typed memory
      cells, link cells are written only with such pointers (never a
      null or integer constant — index 0 is a valid cell), pointers to
      [S] never escape into casts, raw arithmetic, or calls outside the
      compilation scope, and interior pointers (field addresses) never
      outlive the load/store that forms them.

    Each refuted condition is recorded as a witness in the PR-5 legality
    style (reason, function, instruction, location, explanation) so
    [slopt check] can render "why not" with carets; a poolable verdict
    carries the allocation site as its uniqueness witness. The
    remaining dynamic gap (e.g. an allocating function that the call
    graph cannot prove runs once) is covered by the differential oracle,
    which re-proves every pool rewrite byte-for-byte. *)

type reason =
  | NOALLOC    (** never dynamically allocated *)
  | MULTI      (** more than one allocation site *)
  | REALLOC    (** the site uses realloc *)
  | LOOPALLOC  (** the single site sits inside a loop *)
  | REDOALLOC  (** the allocating function may execute more than once *)
  | BYVAL      (** a by-value instance exists (global/local/embedded) *)
  | FREED      (** cells are freed *)
  | MEMOP      (** memset/memcpy touches the type *)
  | SIZEOF     (** sizeof escaped into plain arithmetic *)
  | NULLLINK   (** a constant (null) mixes with pool pointers — index 0
                   is a valid cell, so null tests/stores are unsound *)
  | MIXED      (** pool and non-pool values merge in one register/cell *)
  | INTERIOR   (** an interior (field-address) pointer escapes its
                   forming load/store *)
  | ESCAPE     (** a pool pointer leaves the compilation scope *)
  | RAWACC     (** raw (untyped/unselected) memory access through a pool
                   pointer *)

val reason_name : reason -> string

type witness = {
  sw_reason : reason;
  sw_fn : string option;    (** function containing the construct *)
  sw_iid : int option;      (** offending instruction id *)
  sw_loc : Ir.Loc.t option; (** source location, if known *)
  sw_explain : string;      (** human-readable justification *)
}

type site = { sp_fn : string; sp_iid : int; sp_loc : Ir.Loc.t }

type verdict = {
  v_typ : string;
  v_links : int list;          (** link-field indices, ascending *)
  v_link_names : string list;  (** their field names, same order *)
  v_poolable : bool;
  v_alloc : site option;
      (** the allocation site when the program has exactly one *)
  v_witnesses : witness list;  (** refutations; [[]] iff poolable *)
}

type t

val analyze : Ir.program -> t

val verdicts : t -> verdict list
(** One verdict per self-referential struct, sorted by type name.
    Types without a self link are not classified at all. *)

val verdict : t -> string -> verdict option
val poolable : t -> string -> bool
val links : t -> string -> int list
(** Link-field indices of a poolable type; [[]] otherwise. *)
