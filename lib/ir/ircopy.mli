(** Deep copy of an IR program.

    The BE transformations mutate instructions, blocks and the struct table
    in place; evaluation needs the original and the transformed program side
    by side, so the driver transforms a copy. *)

val copy_program : Ir.program -> Ir.program
(** Structurally identical copy sharing nothing mutable with the input
    (instruction ids and locations are preserved). *)
