module Weights = Slo_profile.Weights

type plan =
  | Split of Transform.split_spec
  | Peel of Transform.peel_spec
  | Rebuild of Transform.rebuild_spec
  | Pad of Transform.pad_spec
  | Pool of Transform.pool_spec

type decision = {
  d_typ : string;
  d_plan : plan option;
  d_notes : string list;
}

let threshold_pbo = 3.0
let threshold_ispbo = 7.5

let threshold_for (scheme : Weights.scheme) =
  match scheme with
  | Weights.PBO | Weights.PPBO -> threshold_pbo
  | Weights.SPBO | Weights.ISPBO | Weights.ISPBO_NO | Weights.ISPBO_W
  | Weights.DMISS | Weights.DLAT | Weights.DMISS_NO ->
    threshold_ispbo

(* tagged loads that exist in the program text, independent of profile
   weight: a field read only on a never-executed path has weighted
   reads = 0.0, but removing it would orphan the load (the verifier
   catches the dangling access; the oracle catches the miscompile when a
   ref input reaches the path) *)
let statically_read (prog : Ir.program) : (string * int, unit) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Iload (_, _, _, Some a) ->
                Hashtbl.replace t (a.astruct, a.afield) ()
              | _ -> ())
            b.instrs)
        f.fblocks)
    prog.funcs;
  t

let dead_fields (prog : Ir.program) (info : Legality.info)
    (g : Affinity.graph) ~static_reads : int list =
  match Structs.find_opt prog.structs g.gtyp with
  | None -> []
  | Some decl ->
    List.filter
      (fun fi ->
        let fld = decl.fields.(fi) in
        g.reads.(fi) = 0.0
        && (not (Hashtbl.mem static_reads (g.gtyp, fi)))
        && fld.bits = None
        && not (List.mem fi info.attrs.addr_passed_fields))
      (List.init (Array.length decl.fields) Fun.id)

let decide ?threshold ?(pool = false) (prog : Ir.program) (leg : Legality.t)
    (aff : Affinity.t) ~scheme : decision list =
  let threshold =
    match threshold with Some t -> t | None -> threshold_for scheme
  in
  let static_reads = statically_read prog in
  (* opt-in: pooling rides behind a flag so the default decisions (and
     the golden tests / perf baselines pinned to them) are untouched *)
  let shape = lazy (Shape.analyze prog) in
  let decide_one typ : decision =
    let notes = ref [] in
    let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
    let finish plan = { d_typ = typ; d_plan = plan; d_notes = List.rev !notes } in
    let info = Legality.info leg typ in
    if not (Legality.is_legal leg typ) then begin
      note "invalid: %s"
        (String.concat ","
           (List.map Legality.reason_name (Legality.reasons leg typ)));
      finish None
    end
    else begin
      let a = info.attrs in
      let pool_verdict =
        if not pool then None
        else
          match Shape.verdict (Lazy.force shape) typ with
          | Some v when v.Shape.v_poolable -> Some v
          | Some _ | None -> None
      in
      match pool_verdict with
      | Some v ->
        note "poolable recursive type: %d link field(s) (%s), single \
              allocation site"
          (List.length v.Shape.v_links)
          (String.concat "," v.Shape.v_link_names);
        finish
          (Some
             (Pool { Transform.po_typ = typ; po_links = v.Shape.v_links }))
      | None ->
      if not a.dyn_alloc then begin
        note "not dynamically allocated";
        finish None
      end
      else if a.has_global_var || a.has_local_var || a.has_static_array then begin
        note "has by-value instances";
        finish None
      end
      else if a.realloced then begin
        note "realloc'd (implementation limitation)";
        finish None
      end
      else begin
        match Affinity.graph aff typ with
        | None ->
          note "no affinity data";
          finish None
        | Some g ->
          let decl = Structs.find prog.structs typ in
          let nfields = Array.length decl.fields in
          let dead = dead_fields prog info g ~static_reads in
          let live =
            List.filter
              (fun fi -> not (List.mem fi dead))
              (List.init nfields Fun.id)
          in
          if live = [] then begin
            note "all fields dead";
            finish None
          end
          else begin
            let rel = Affinity.relative_hotness g in
            let by_hotness_desc fis =
              List.stable_sort (fun a b -> compare rel.(b) rel.(a)) fis
            in
            if
              Transform.peel_feasible prog ~typ ~globals:a.global_ptrs
            then begin
              note "peeled into %d pieces%s" (List.length live)
                (if dead = [] then ""
                 else Printf.sprintf ", %d dead fields removed"
                        (List.length dead));
              finish
                (Some
                   (Peel
                      { Transform.p_typ = typ; p_live = live; p_dead = dead;
                        p_globals = a.global_ptrs }))
            end
            else begin
              let cold =
                List.filter (fun fi -> rel.(fi) < threshold) live
              in
              let hot = List.filter (fun fi -> rel.(fi) >= threshold) live in
              if List.length cold >= 2 && hot <> [] then begin
                note "split: %d hot, %d cold (T_s=%.1f%%)%s" (List.length hot)
                  (List.length cold) threshold
                  (if dead = [] then ""
                   else Printf.sprintf ", %d dead" (List.length dead));
                finish
                  (Some
                     (Split
                        { Transform.s_typ = typ; s_hot = by_hotness_desc hot;
                          s_cold = cold; s_dead = dead }))
              end
              else if dead <> [] then begin
                note "dead field removal only (%d fields)" (List.length dead);
                finish
                  (Some
                     (Rebuild
                        { Transform.r_typ = typ;
                          r_order = by_hotness_desc live; r_dead = dead }))
              end
              else begin
                note
                  "no profitable split (cold=%d, need >= 2; T_s=%.1f%%)"
                  (List.length cold) threshold;
                finish None
              end
            end
          end
      end
    end
  in
  List.map decide_one (Legality.types leg)

let plans ds = List.filter_map (fun d -> d.d_plan) ds

let apply prog plans =
  List.iter
    (fun p ->
      match p with
      | Split s -> Transform.split prog s
      | Peel s -> Transform.peel prog s
      | Rebuild s -> Transform.rebuild prog s
      | Pad s -> Transform.pad prog s
      | Pool s -> Transform.pool prog s)
    plans

let plan_summary = function
  | Split s ->
    Printf.sprintf "split %s: %d hot + link, %d cold, %d dead" s.s_typ
      (List.length s.s_hot) (List.length s.s_cold) (List.length s.s_dead)
  | Peel s ->
    Printf.sprintf "peel %s: %d pieces, %d dead" s.p_typ
      (List.length s.p_live) (List.length s.p_dead)
  | Rebuild s ->
    Printf.sprintf "rebuild %s: %d fields, %d dead removed" s.r_typ
      (List.length s.r_order) (List.length s.r_dead)
  | Pad s -> Printf.sprintf "pad %s: +%d bytes" s.pd_typ s.pd_bytes
  | Pool s ->
    Printf.sprintf "pool %s: %d link field(s) factored to parallel arrays"
      s.po_typ (List.length s.po_links)
