(** Legality analysis — §2.2 of the paper.

    "During FE's legality and property analysis, several small and efficient
    tests are performed in a single pass over our compiler's intermediate
    representation to determine whether it is safe to transform a type. A
    type is called invalid if it cannot be transformed."

    The implemented tests are exactly the paper's, plus two the paper
    discusses in prose:

    - [CSTT] — a cast {e to} the type (tolerated when the source value is
      directly the matching allocation's result; casts of values returned by
      [void*] wrapper functions invalidate, as in the paper);
    - [CSTF] — a cast {e from} the type;
    - [ATKN] — a field's address is taken (tolerated when the address is
      only passed as a call argument, per the paper's stated assumption);
    - [LIBC] — the type escapes to a library function outside the
      compilation scope;
    - [IND]  — the type escapes to an indirect call;
    - [SMAL] — a dynamic allocation with a constant element count below the
      threshold A (default 1: single objects);
    - [MSET] — the type is touched by [memset]/[memcpy];
    - [NEST] — the type is nested in (or nests) another record type;
    - [SIZEOF] — [sizeof(type)] escaped into plain arithmetic (§2.2's
      "problematic constructs" discussion). A cast of an allocation the FE
      could not type (e.g. [malloc(16)] cast to a struct pointer, or a
      [void*]-returning wrapper) counts as CSTT, as in the paper.

    [~relax:true] tolerates CSTT, CSTF and ATKN — the paper's internal flag
    estimating "an upper bound of the benefits of Points-To" (Table 1's
    Relax column). *)

type reason =
  | CSTT | CSTF | ATKN | LIBC | IND | SMAL | MSET | NEST | SIZEOF

val reason_name : reason -> string

type witness = {
  w_reason : reason;
  w_fn : string option;   (** function the construct sits in, if any *)
  w_iid : int option;     (** offending instruction id, if any *)
  w_loc : Ir.Loc.t option;  (** source location, if known *)
  w_explain : string;     (** human-readable justification *)
}
(** Why a test fired: every {!reason} recorded on a type carries at least
    one witness naming the construct that triggered it. Declaration-level
    findings (NEST, the IPA escape aggregation) have no instruction or
    location; everything discovered in the FE instruction walk points at
    the exact instruction and its source position. *)

type alloc_site = { al_fn : string; al_iid : int; al_loc : Ir.Loc.t }

type attrs = {
  mutable has_global_var : bool;   (** a global of the struct type itself *)
  mutable has_local_var : bool;
  mutable has_global_ptr : bool;
  mutable has_local_ptr : bool;
  mutable has_static_array : bool;
  mutable dyn_alloc : bool;
  mutable freed : bool;
  mutable realloced : bool;
  mutable global_ptrs : string list;
      (** globals of type [t*] (peeling candidates' anchor pointers) *)
  mutable alloc_sites : alloc_site list;
      (** every allocation site of the type, in discovery order,
          deduplicated by (function, instruction id) — diagnostics render
          these as "allocated here" notes *)
  mutable escapes : string list;  (** defined functions the type escapes to *)
  mutable addr_passed_fields : int list;
      (** fields whose address was passed to a call (tolerated by ATKN but
          excluded from dead-field removal) *)
}

type info = {
  mutable invalid : reason list;
  mutable witnesses : witness list;  (** in discovery order *)
  attrs : attrs;
}

type t

val analyze : ?smal_threshold:int -> Ir.program -> t
(** Run the FE pass over every function and the IPA aggregation. The
    default SMAL threshold is 1 ("allocation sites allocating arrays of
    size 1"). *)

val info : t -> string -> info
(** Raises [Not_found] for undefined types. *)

val attrs_of : t -> string -> attrs option
(** Like [info] but total. *)

val relaxable : reason -> bool
(** Whether the reason is tolerated under the paper's relaxed counting
    (CSTT, CSTF and ATKN are). *)

val is_legal : ?relax:bool -> t -> string -> bool
(** Whether the type passed all tests; with [relax], CSTT/CSTF/ATKN are
    tolerated. *)

val reasons : t -> string -> reason list

val witnesses : t -> string -> witness list
(** All witnesses recorded on the type, in discovery order; [[]] for
    unknown types. Non-empty whenever {!reasons} is. *)

val witnesses_for : t -> string -> reason -> witness list

val types : t -> string list
(** All analysed struct names, sorted. *)

val legal_count : ?relax:bool -> t -> int
