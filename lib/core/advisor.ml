module Feedback = Slo_profile.Feedback

type field_dcache = { fd_misses : int; fd_latency_avg : float }

type type_report = {
  tr_graph : Affinity.graph;
  tr_info : Legality.info;
  tr_decision : Heuristics.decision option;
}

type t = {
  prog : Ir.program;
  layout : Layout.t;
  types : type_report list;  (* hottest first *)
  dcache : (string * int, int * int) Hashtbl.t;  (* (typ, field) -> misses, latency sum *)
  total_hotness : float;
  have_dcache : bool;
}

let build (prog : Ir.program) (leg : Legality.t) (aff : Affinity.t) ~decisions
    ~dcache : t =
  let layout = Layout.create prog.structs in
  let types =
    Affinity.graphs aff
    |> List.filter_map (fun (g : Affinity.graph) ->
           match Structs.find_opt prog.structs g.gtyp with
           | None -> None
           | Some _ ->
             let tr_info = Legality.info leg g.gtyp in
             let tr_decision =
               List.find_opt
                 (fun (d : Heuristics.decision) ->
                   String.equal d.d_typ g.gtyp)
                 decisions
             in
             Some { tr_graph = g; tr_info; tr_decision })
  in
  (* attribute matched samples to fields via the access tags *)
  let field_samples = Hashtbl.create 32 in
  let have_dcache = dcache <> None in
  (match dcache with
  | None -> ()
  | Some by_iid ->
    List.iter
      (fun (f : Ir.func) ->
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (fun (i : Ir.instr) ->
                match i.idesc with
                | Ir.Iload (_, _, _, Some a) | Ir.Istore (_, _, _, Some a) -> (
                  match Hashtbl.find_opt by_iid i.iid with
                  | Some (st : Feedback.dstats) ->
                    let key = (a.Ir.astruct, a.afield) in
                    let m0, l0 =
                      Option.value ~default:(0, 0)
                        (Hashtbl.find_opt field_samples key)
                    in
                    Hashtbl.replace field_samples key
                      (m0 + st.misses, l0 + st.latency)
                  | None -> ())
                | _ -> ())
              b.instrs)
          f.fblocks)
      prog.funcs);
  let total_hotness =
    List.fold_left
      (fun acc tr -> acc +. Affinity.type_hotness tr.tr_graph)
      0.0 types
  in
  { prog; layout; types; dcache = field_samples; total_hotness; have_dcache }

let field_dcache t typ fi =
  match Hashtbl.find_opt t.dcache (typ, fi) with
  | None -> { fd_misses = 0; fd_latency_avg = 0.0 }
  | Some (m, l) ->
    { fd_misses = m;
      fd_latency_avg = (if m = 0 then 0.0 else float_of_int l /. float_of_int m) }

let attr_codes (info : Legality.info) =
  let a = info.attrs in
  List.filter_map
    (fun (cond, code) -> if cond then Some code else None)
    [
      (a.has_global_var, "GVAR"); (a.has_local_var, "LVAR");
      (a.has_global_ptr, "GPTR"); (a.has_local_ptr, "LPTR");
      (a.has_static_array, "SARR"); (a.dyn_alloc, "ALOC");
      (a.freed, "FREE"); (a.realloced, "RALC");
    ]

let bar10 pct =
  let n = int_of_float (Float.round (pct /. 10.0)) in
  let n = max 0 (min 10 n) in
  "|" ^ String.make n '#' ^ String.make (10 - n) '-' ^ "|"

let rw_bar reads writes =
  if reads +. writes <= 0.0 then "|........|"
  else begin
    let frac_r = reads /. (reads +. writes) in
    let nr = max 0 (min 8 (int_of_float (Float.round (frac_r *. 8.0)))) in
    let rc, wc = if reads >= writes then ('R', 'w') else ('r', 'W') in
    "|" ^ String.make nr rc ^ String.make (8 - nr) wc ^ "|"
  end

let transform_name (d : Heuristics.decision option) =
  match d with
  | Some { d_plan = Some (Heuristics.Split _); _ } -> "Splitting"
  | Some { d_plan = Some (Heuristics.Peel _); _ } -> "Peeling"
  | Some { d_plan = Some (Heuristics.Rebuild _); _ } -> "Dead field removal"
  | Some { d_plan = Some (Heuristics.Pad _); _ } -> "Padding"
  | Some { d_plan = Some (Heuristics.Pool _); _ } -> "Pooling"
  | Some { d_plan = None; _ } | None -> "none"

let report_type t buf (tr : type_report) =
  let g = tr.tr_graph in
  let decl = Structs.find t.prog.structs g.gtyp in
  let nfields = Array.length decl.fields in
  let size = Layout.struct_size t.layout g.gtyp in
  let hot_abs = Affinity.type_hotness g in
  let hottest =
    match t.types with
    | first :: _ -> Affinity.type_hotness first.tr_graph
    | [] -> 0.0
  in
  let rel = if hottest > 0.0 then 100.0 *. hot_abs /. hottest else 0.0 in
  let abs_share =
    if t.total_hotness > 0.0 then 100.0 *. hot_abs /. t.total_hotness else 0.0
  in
  let status =
    if tr.tr_info.invalid = [] then "*OK*"
    else String.concat " " (List.map Legality.reason_name tr.tr_info.invalid)
  in
  Printf.bprintf buf "Type     : %s\n" g.gtyp;
  Printf.bprintf buf "Fields   : %d, %d bytes\n" nfields size;
  Printf.bprintf buf "Hotness  : %.1f%% rel, %.1f%% abs\n" rel abs_share;
  Printf.bprintf buf "Transform: %s\n" (transform_name tr.tr_decision);
  Printf.bprintf buf "Status   : %s / %s\n" status
    (String.concat " " (attr_codes tr.tr_info));
  (* one witness per invalidation reason, so the advisory report and
     `slopt check` agree on why a type was rejected *)
  List.iter
    (fun r ->
      match
        List.find_opt
          (fun (w : Legality.witness) -> w.w_reason = r)
          tr.tr_info.witnesses
      with
      | Some w ->
        let where =
          match w.w_loc with
          | Some l -> Ir.Loc.to_string l
          | None -> "declaration"
        in
        Printf.bprintf buf "  invalid: %s at %s: %s\n" (Legality.reason_name r)
          where w.w_explain
      | None -> ())
    tr.tr_info.invalid;
  Printf.bprintf buf "%s\n" (String.make 69 '-');
  let relhot = Affinity.relative_hotness g in
  let max_miss =
    let m = ref 0 in
    for fi = 0 to nfields - 1 do
      m := max !m (field_dcache t g.gtyp fi).fd_misses
    done;
    !m
  in
  for fi = 0 to nfields - 1 do
    let fld = decl.fields.(fi) in
    let fl = Layout.field_layout t.layout g.gtyp fi in
    let usage =
      if g.reads.(fi) = 0.0 && g.writes.(fi) = 0.0 then " *unused*"
      else if g.reads.(fi) = 0.0 then " *dead*"
      else ""
    in
    Printf.bprintf buf "Field[%d] off: %d:%d %s %S%s\n" fi fl.byte_off
      fl.bit_off (bar10 relhot.(fi)) fld.name usage;
    if usage = "" then begin
      Printf.bprintf buf "  hot: %.1f%%  weight: %s\n" relhot.(fi)
        (Slo_util.Table.fnum g.hotness.(fi));
      Printf.bprintf buf "  read : %s, write: %s   %s\n"
        (Slo_util.Table.fnum g.reads.(fi))
        (Slo_util.Table.fnum g.writes.(fi))
        (rw_bar g.reads.(fi) g.writes.(fi));
      if t.have_dcache then begin
        let dc = field_dcache t g.gtyp fi in
        let miss_pct =
          if max_miss = 0 then 0.0
          else 100.0 *. float_of_int dc.fd_misses /. float_of_int max_miss
        in
        Printf.bprintf buf "  miss : %d, %.1f%%, lat: %.1f [cyc]\n"
          dc.fd_misses miss_pct dc.fd_latency_avg
      end;
      (* uni-directional affinities, normalised per source field *)
      let edges =
        List.filter_map
          (fun fj ->
            let w = Affinity.edge_weight g fi fj in
            if w > 0.0 && fj >= fi then Some (fj, w) else None)
          (List.init nfields Fun.id)
      in
      let wmax = List.fold_left (fun m (_, w) -> max m w) 0.0 edges in
      List.iter
        (fun (fj, w) ->
          Printf.bprintf buf "  aff: %.1f%% --> %s\n"
            (if wmax > 0.0 then 100.0 *. w /. wmax else 0.0)
            decl.fields.(fj).name)
        edges
    end
  done;
  Printf.bprintf buf "\n"

let report ?only t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun tr ->
      let keep =
        match only with
        | None -> true
        | Some names -> List.mem tr.tr_graph.gtyp names
      in
      if keep then report_type t buf tr)
    t.types;
  Buffer.contents buf

let vcg t typ =
  List.find_opt (fun tr -> String.equal tr.tr_graph.gtyp typ) t.types
  |> Option.map (fun tr ->
         let g = tr.tr_graph in
         let decl = Structs.find t.prog.structs g.gtyp in
         let buf = Buffer.create 512 in
         Printf.bprintf buf "graph: { title: \"%s\"\n" typ;
         let relhot = Affinity.relative_hotness g in
         Array.iteri
           (fun fi (fld : Structs.field) ->
             let color = if relhot.(fi) >= 50.0 then "red"
               else if relhot.(fi) >= 10.0 then "orange" else "lightblue" in
             Printf.bprintf buf
               "  node: { title: \"%s\" label: \"%s (%.1f%%)\" color: %s }\n"
               fld.name fld.name relhot.(fi) color)
           decl.fields;
         let wmax =
           Hashtbl.fold (fun _ w m -> max m w) g.edges 0.0
         in
         Hashtbl.iter
           (fun (i, j) w ->
             if i <> j then
               Printf.bprintf buf
                 "  edge: { sourcename: \"%s\" targetname: \"%s\" \
                  thickness: %d }\n"
                 decl.fields.(i).name decl.fields.(j).name
                 (1 + int_of_float (if wmax > 0.0 then 4.0 *. w /. wmax else 0.0)))
           g.edges;
         Printf.bprintf buf "}\n";
         Buffer.contents buf)
