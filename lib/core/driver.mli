(** End-to-end pipeline: compile → (optional PBO collect) → analyze →
    decide → transform → measure.

    This is the reproduction's equivalent of the paper's FE / IPA / BE
    phases glued together by the linker plug-in. The measurement side runs
    both the original and the transformed program in the VM over the cache
    hierarchy and reports a simple in-order cycle count
    (instructions + memory latency beyond an L1 hit), from which Table 3's
    performance-effect percentages are derived as speedup
    [(cycles_before / cycles_after - 1) * 100]. *)

type measurement = {
  m_result : Slo_vm.Interp.result;
  m_cycles : int;       (** steps + cache extra cycles *)
  m_l1_misses : int;
  m_l2_misses : int;
  m_accesses : int;
}

type phase_ms = {
  ph_analyze_ms : float;    (** legality + affinity + decide *)
  ph_transform_ms : float;  (** copy + apply plans (+ verify) *)
  ph_measure_ms : float;    (** both before/after VM runs *)
}
(** Wall-clock per-phase timings of one {!evaluate} call, in
    milliseconds, for the bench harness's perf-trajectory records. *)

type evaluation = {
  e_before : measurement;
  e_after : measurement;
  e_decisions : Heuristics.decision list;
  e_transformed : Ir.program;
  e_speedup_pct : float;
  e_phases : phase_ms;
}

val compile : ?verify:bool -> string -> Ir.program
(** Parse, type-check and lower a Mini-C source. With [~verify:true]
    (default false) the lowered IR is checked with {!Verify.check}, which
    raises {!Verify.Ill_formed} on a malformed program. *)

val measure :
  ?args:int list ->
  ?config:Slo_cachesim.Hierarchy.config ->
  ?backend:Slo_vm.Backend.t ->
  ?fidelity:Slo_cachesim.Sampled.fidelity ->
  ?pipeline:bool ->
  Ir.program ->
  measurement
(** Run under the cache hierarchy and report cycles/miss counters.
    [backend] selects the VM engine (default {!Slo_vm.Backend.default},
    the closure-compiled one); all backends yield identical
    measurements, the choice only affects wall-clock speed.

    [pipeline] (default: on when the host has more than one core)
    drains exact-fidelity ring batches on a worker domain overlapped
    with VM execution via {!Slo_cachesim.Drainer}; counters are
    byte-equal to the serial drain either way. Ignored under sampled
    fidelities, whose bulk fast-forward check must observe sampler
    state synchronously with the VM.

    [fidelity] (default [Exact]) selects full-trace simulation or
    {!Slo_cachesim.Sampled} windows with fast-forward in between. Under
    [Sampled] the miss and cycle numbers are estimates (window counters
    scaled to the whole run, with accuracy bounds pinned by the roster
    accuracy harness); [m_result] — output, exit code, steps — is exact
    in every fidelity. The sampler's bulk fast path pairs best with the
    [Superblock] backend, which retires a whole fused chain's accesses
    per consultation. *)

val analyze :
  Ir.program ->
  scheme:Slo_profile.Weights.scheme ->
  feedback:Slo_profile.Feedback.t option ->
  Legality.t * Affinity.t

val transform_with_plans :
  ?verify:bool -> Ir.program -> Heuristics.plan list -> Ir.program
(** Apply plans to a fresh copy; the input program is untouched. With
    [~verify:true] (default false) the rewritten IR is checked with
    {!Verify.check}, raising {!Verify.Ill_formed} when a transformation
    left dangling references behind. *)

val evaluate :
  ?args:int list ->
  ?config:Slo_cachesim.Hierarchy.config ->
  ?threshold:float ->
  ?pool:bool ->
  ?verify:bool ->
  ?jobs:int ->
  ?backend:Slo_vm.Backend.t ->
  ?fidelity:Slo_cachesim.Sampled.fidelity ->
  scheme:Slo_profile.Weights.scheme ->
  feedback:Slo_profile.Feedback.t option ->
  Ir.program ->
  evaluation
(** Full pipeline on an already-compiled program. [~pool] (default
    false) forwards to {!Heuristics.decide}: shape-proven recursive
    types are planned as index-linked pools. With [~jobs] > 1
    (default 1) the before/after measurement runs execute on two worker
    domains in parallel; [backend] selects the VM engine used for both
    measurement runs (default the closure-compiled one) and [fidelity]
    their simulation fidelity (default exact — see {!measure}; sampled
    fidelity affects only the measurement numbers, never the analysis
    or the transformation). Raises [Invalid_argument] if a
    profile-based scheme is given no feedback, and {!Verify.Ill_formed}
    if [~verify:true] and the transformed IR is malformed. *)

val speedup_pct : before:measurement -> after:measurement -> float
(** [(cycles_before / cycles_after - 1) * 100]. Raises
    [Invalid_argument] if either cycle count is zero or negative — that
    means a broken measurement, and silently reporting 0.0 would mask
    it. *)
