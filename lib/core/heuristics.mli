(** Transformation heuristics — §2.4 of the paper.

    "Based on affinity, hotness, and type characteristics, the heuristics
    decide if and how to transform a type."

    The implemented policy follows the paper:
    - only legal (strict legality), dynamically allocated types with no
      by-value instances are candidates; single-object allocations were
      already invalidated by SMAL, realloc'd types are skipped
      (implementation limitation, documented in DESIGN.md);
    - dead and unused fields are always removed, except bit-fields
      ("removing bit-fields can result in more expensive access code
      sequences") and fields whose address escaped into a call;
    - peeling is "always performed as well" when structurally feasible;
    - otherwise splitting: fields with relative hotness below the threshold
      T_s (3% for PBO, 7.5% for ISPBO) are split out; at least two fields
      must split out (the link pointer must pay for itself) and at least
      one hot field must remain; the single most important criterion is
      hotness — hot fields stay in the hot section regardless of affinity;
    - field reordering happens only in the context of a rebuild: surviving
      hot fields are ordered by descending hotness;
    - if only dead fields were found, the type is rebuilt in place. *)

type plan =
  | Split of Transform.split_spec
  | Peel of Transform.peel_spec
  | Rebuild of Transform.rebuild_spec
  | Pad of Transform.pad_spec
      (** trailing padding — never chosen by {!decide}; part of the
          autotuner's candidate space ([Slo_tune.Tune]) *)
  | Pool of Transform.pool_spec
      (** index-linked pool for a recursive (self-referential) type —
          chosen by {!decide} only under [~pool:true], for types
          {!Shape.analyze} proves poolable *)

type decision = {
  d_typ : string;
  d_plan : plan option;
  d_notes : string list;  (** why the type was (not) transformed *)
}

val threshold_pbo : float
(** 3.0 (percent) *)

val threshold_ispbo : float
(** 7.5 (percent) *)

val threshold_for : Slo_profile.Weights.scheme -> float

val statically_read : Ir.program -> (string * int, unit) Hashtbl.t
(** The (struct, field) pairs with at least one tagged load anywhere in
    the program text, regardless of profile weight. *)

val dead_fields :
  Ir.program ->
  Legality.info ->
  Affinity.graph ->
  static_reads:(string * int, unit) Hashtbl.t ->
  int list
(** Removable fields: never read — with zero {e weighted} reads {b and}
    no static load at all (a field read only on never-profiled paths must
    survive) — not bit-fields, address never passed. *)

val decide :
  ?threshold:float ->
  ?pool:bool ->
  Ir.program ->
  Legality.t ->
  Affinity.t ->
  scheme:Slo_profile.Weights.scheme ->
  decision list
(** One decision per struct type, sorted by type name. The default
    threshold comes from {!threshold_for}. [~pool] (default [false])
    additionally runs {!Shape.analyze} and plans an index-linked pool
    for every strictly legal type it proves poolable — taking precedence
    over split/peel/rebuild for that type. It is opt-in so the paper's
    default decisions (and the golden tests pinned to them) never
    change. *)

val plans : decision list -> plan list
val apply : Ir.program -> plan list -> unit
(** Apply all plans (in place — pass a {!Ircopy.copy_program} copy). *)

val plan_summary : plan -> string
