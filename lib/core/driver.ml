module Interp = Slo_vm.Interp
module Backend = Slo_vm.Backend
module Hierarchy = Slo_cachesim.Hierarchy
module Sampled = Slo_cachesim.Sampled
module Weights = Slo_profile.Weights
module Feedback = Slo_profile.Feedback
module Pool = Slo_exec.Pool

type measurement = {
  m_result : Interp.result;
  m_cycles : int;
  m_l1_misses : int;
  m_l2_misses : int;
  m_accesses : int;
}

type phase_ms = {
  ph_analyze_ms : float;
  ph_transform_ms : float;
  ph_measure_ms : float;
}

type evaluation = {
  e_before : measurement;
  e_after : measurement;
  e_decisions : Heuristics.decision list;
  e_transformed : Ir.program;
  e_speedup_pct : float;
  e_phases : phase_ms;
}

let compile ?(verify = false) source =
  let ast = Slo_minic.Parser.parse source in
  let env = Slo_minic.Typecheck.check ast in
  let prog = Lower.lower ast env in
  if verify then Verify.check prog;
  prog

let measure ?(args = []) ?(config = Hierarchy.itanium)
    ?(backend = Backend.default) ?(fidelity = Sampled.Exact) ?pipeline
    (prog : Ir.program) : measurement =
  let module Ring = Slo_cachesim.Ring in
  let module Drainer = Slo_cachesim.Drainer in
  match Sampled.of_fidelity config fidelity with
  | None ->
    (* exact: the VM appends packed events to a ring; the sink drains
       whole batches through the hierarchy. Counters are byte-equal to
       the old per-access hook (Hierarchy.drain_quiet's contract) at a
       fraction of the per-event cost. With a second core available
       the drain runs on a worker domain, overlapped with execution
       (identical counters — the drainer preserves batch order); on a
       single core the serial sink is cheaper than the handoff. *)
    let pipeline =
      match pipeline with
      | Some b -> b
      | None -> (
        (* SLO_MEASURE_PIPELINE=1/0 overrides the core-count default —
           for perf triage and for pinning CI behaviour *)
        match Sys.getenv_opt "SLO_MEASURE_PIPELINE" with
        | Some ("0" | "no" | "off") -> false
        | Some _ -> true
        | None -> Domain.recommended_domain_count () > 1)
    in
    let hier = Hierarchy.create config in
    let ring = Ring.create () in
    let drainer =
      if pipeline then begin
        let d =
          Drainer.create
            ~drain:(fun addrs metas n ->
              Hierarchy.drain_quiet hier addrs metas 0 n)
            ()
        in
        Ring.set_sink ring (Drainer.sink d);
        Some d
      end
      else begin
        Ring.set_sink ring (fun r ->
            Hierarchy.drain_quiet hier r.Ring.addrs r.Ring.metas 0 r.Ring.len);
        None
      end
    in
    let vm = Backend.create ~ring backend prog in
    let result =
      Fun.protect
        ~finally:(fun () -> Option.iter Drainer.join drainer)
        (fun () -> Backend.run ~args vm)
    in
    {
      m_result = result;
      m_cycles = result.steps + Hierarchy.extra_cycles hier;
      m_l1_misses = Slo_cachesim.Cache.misses (Hierarchy.l1 hier);
      m_l2_misses = Slo_cachesim.Cache.misses (Hierarchy.l2 hier);
      m_accesses = Hierarchy.accesses hier;
    }
  | Some smp ->
    (* sampled: detailed windows feed the hierarchy, the rest warms or
       skips, and the miss / cycle counters are window measurements
       scaled to the full run. The bulk hook — O(1) fast-forward per
       block — is only worth wiring up when the fidelity actually has a
       skip segment; with the default full-warming layout it could never
       accept, and its mere presence forces dual-body compilation.
       Buffered ring events precede the bulk accesses in stream order,
       so the bulk hook flushes before advancing *)
    let ring = Ring.create () in
    Ring.set_sink ring (fun r ->
        Sampled.drain smp r.Ring.addrs r.Ring.metas 0 r.Ring.len);
    let vm =
      match fidelity with
      | Sampled.Sampled { skip; _ } when skip > 0 ->
        let bulk_hook n =
          if Sampled.bulk_ready smp ~pending:(Ring.length ring) n then begin
            Ring.flush ring;
            Sampled.try_advance smp n
          end
          else false
        in
        Backend.create ~ring ~bulk_hook backend prog
      | _ -> Backend.create ~ring backend prog
    in
    let result = Backend.run ~args vm in
    {
      m_result = result;
      m_cycles = result.steps + Sampled.est_extra_cycles smp;
      m_l1_misses = Sampled.est_l1_misses smp;
      m_l2_misses = Sampled.est_l2_misses smp;
      m_accesses = Sampled.total_accesses smp;
    }

let analyze (prog : Ir.program) ~scheme ~feedback =
  let leg = Legality.analyze prog in
  let bw = Weights.block_weights prog scheme ~feedback in
  let aff = Affinity.analyze prog bw in
  (leg, aff)

let transform_with_plans ?(verify = false) prog plans =
  let copy = Ircopy.copy_program prog in
  Heuristics.apply copy plans;
  if verify then Verify.check copy;
  copy

let speedup_pct ~before ~after =
  if before.m_cycles <= 0 || after.m_cycles <= 0 then
    invalid_arg
      (Printf.sprintf
         "Driver.speedup_pct: non-positive cycle count (before=%d, \
          after=%d) — broken measurement"
         before.m_cycles after.m_cycles);
  (float_of_int before.m_cycles /. float_of_int after.m_cycles -. 1.0)
  *. 100.0

let timed f =
  let t0 = Slo_util.Clock.now_ns () in
  let r = f () in
  (r, Slo_util.Clock.elapsed_ms ~since:t0)

let evaluate ?(args = []) ?(config = Hierarchy.itanium) ?threshold ?pool
    ?(verify = false) ?(jobs = 1) ?(backend = Backend.default)
    ?(fidelity = Sampled.Exact) ~scheme ~feedback (prog : Ir.program) :
    evaluation =
  let (leg, aff), t_an = timed (fun () -> analyze prog ~scheme ~feedback) in
  let decisions, t_dec =
    timed (fun () -> Heuristics.decide ?threshold ?pool prog leg aff ~scheme)
  in
  let plans = Heuristics.plans decisions in
  let transformed, t_tr =
    timed (fun () -> transform_with_plans ~verify prog plans)
  in
  let (before, after), t_me =
    timed (fun () ->
        if jobs > 1 then begin
          (* the two measurement runs are independent; overlap them *)
          let pool = Pool.create ~jobs:2 in
          let fb =
            Pool.submit pool (fun () ->
                measure ~args ~config ~backend ~fidelity prog)
          in
          let fa =
            Pool.submit pool (fun () ->
                measure ~args ~config ~backend ~fidelity transformed)
          in
          let before = Pool.await_exn fb and after = Pool.await_exn fa in
          Pool.shutdown pool;
          (before, after)
        end
        else
          ( measure ~args ~config ~backend ~fidelity prog,
            measure ~args ~config ~backend ~fidelity transformed ))
  in
  {
    e_before = before;
    e_after = after;
    e_decisions = decisions;
    e_transformed = transformed;
    e_speedup_pct = speedup_pct ~before ~after;
    e_phases =
      { ph_analyze_ms = t_an +. t_dec; ph_transform_ms = t_tr;
        ph_measure_ms = t_me };
  }
