(** Global variable layout (GVL) — the companion phase the paper mentions
    merging with the structure framework:

    "Calder et al apply a compiler directed approach using profile data to
    place global data... Our compiler has a similar phase, which we call
    global variable layout (GVL). We plan to merge GVL with the presented
    framework in the future." (§4)

    This is that merge, in miniature: scalar globals are re-ordered by
    access hotness (from the same block weights the affinity analysis
    uses), so hot globals pack into the same cache lines instead of being
    interleaved with cold ones. The VM lays globals out in declaration
    order, so the transformation is a permutation of
    [Ir.program.globals]. Struct-typed globals and arrays keep their
    relative order at the end (their internal layout is the struct
    framework's business, not GVL's). *)

val hotness : Ir.program -> Slo_profile.Weights.block_weights -> (string * float) list
(** Estimated access count per global (loads + stores through
    [Iaddrglob]), hottest first. *)

val reorder : Ir.program -> Slo_profile.Weights.block_weights -> unit
(** Permute the globals hottest-first (scalars first, aggregates after),
    in place. Semantics-preserving by construction: no code references
    global layout, only names. *)
