type split_spec = {
  s_typ : string;
  s_hot : int list;
  s_cold : int list;
  s_dead : int list;
}

type peel_spec = {
  p_typ : string;
  p_live : int list;
  p_dead : int list;
  p_globals : string list;
}

type rebuild_spec = { r_typ : string; r_order : int list; r_dead : int list }
type pad_spec = { pd_typ : string; pd_bytes : int }

type pool_spec = { po_typ : string; po_links : int list }

let link_field_name = "__link"
let pad_field_name = "__pad"
let hot_name s = s ^ "__hot"
let cold_name s = s ^ "__cold"
let piece_name s f = s ^ "__" ^ f
let piece_global g f = g ^ "__" ^ f

(* ------------------------------------------------------------------ *)
(* Type substitution                                                   *)
(* ------------------------------------------------------------------ *)

let rec subst_ty ~from_ ~to_ (t : Irty.t) : Irty.t =
  match t with
  | Irty.Struct s when String.equal s from_ -> Irty.Struct to_
  | Irty.Ptr u -> Irty.Ptr (subst_ty ~from_ ~to_ u)
  | Irty.Array (u, n) -> Irty.Array (subst_ty ~from_ ~to_ u, n)
  | Irty.Struct _ | Irty.Void | Irty.Char | Irty.Short | Irty.Int
  | Irty.Long | Irty.Float | Irty.Double | Irty.Funptr ->
    t

(* apply [s] to every type annotation of the program: globals, locals,
   params, returns, other structs' fields, and instruction type fields *)
let map_types (prog : Ir.program) (s : Irty.t -> Irty.t) =
  prog.globals <-
    List.map (fun (n, t, init) -> (n, s t, init)) prog.globals;
  Structs.iter
    (fun d ->
      let changed = ref false in
      let fields =
        Array.to_list d.fields
        |> List.map (fun (f : Structs.field) ->
               let t' = s f.ty in
               if not (Irty.equal t' f.ty) then changed := true;
               { f with Structs.ty = t' })
      in
      if !changed then Structs.define prog.structs d.sname fields)
    prog.structs;
  List.iter
    (fun (f : Ir.func) ->
      let f' = f in
      f'.flocals <- List.map (fun (n, t) -> (n, s t)) f.flocals;
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Iload (r, a, ty, acc) -> i.idesc <- Ir.Iload (r, a, s ty, acc)
              | Ir.Istore (a, v, ty, acc) -> i.idesc <- Ir.Istore (a, v, s ty, acc)
              | Ir.Icast (r, ft, tt, v, ci) ->
                i.idesc <- Ir.Icast (r, s ft, s tt, v, ci)
              | Ir.Iptradd (r, b2, idx, ty) ->
                i.idesc <- Ir.Iptradd (r, b2, idx, s ty)
              | Ir.Ialloc (r, k, n, ty) -> i.idesc <- Ir.Ialloc (r, k, n, s ty)
              | Ir.Ibin (r, op, ty, a, b2) ->
                i.idesc <- Ir.Ibin (r, op, s ty, a, b2)
              | Ir.Iun (r, op, ty, a) -> i.idesc <- Ir.Iun (r, op, s ty, a)
              | Ir.Imov _ | Ir.Iaddrglob _ | Ir.Iaddrlocal _ | Ir.Iaddrstr _
              | Ir.Iaddrfunc _ | Ir.Ifieldaddr _ | Ir.Icall _ | Ir.Ifree _
              | Ir.Imemset _ | Ir.Imemcpy _ ->
                ())
            b.instrs)
        f.fblocks)
    prog.funcs;
  (* parameters and return types are immutable record fields: rebuild *)
  prog.funcs <-
    List.map
      (fun (f : Ir.func) ->
        { f with
          Ir.fparams = List.map (fun (n, t) -> (n, s t)) f.fparams;
          fret = s f.fret })
      prog.funcs

let rename_type (prog : Ir.program) ~from_ ~to_ =
  map_types prog (subst_ty ~from_ ~to_)

(* an action-based per-block instruction rewriter *)
type action = Keep | Drop | Replace of Ir.instr list

let rewrite_instrs (f : Ir.func) (decide : Ir.instr -> action) =
  List.iter
    (fun (b : Ir.block) ->
      b.instrs <-
        List.concat_map
          (fun i ->
            match decide i with
            | Keep -> [ i ]
            | Drop -> []
            | Replace is -> is)
          b.instrs)
    f.fblocks

let mk_instr prog loc desc = { Ir.iid = Ir.fresh_iid prog; iloc = loc; idesc = desc }

(* ------------------------------------------------------------------ *)
(* Structure splitting                                                 *)
(* ------------------------------------------------------------------ *)

let split (prog : Ir.program) (spec : split_spec) =
  let s = spec.s_typ in
  let hot = hot_name s and cold = cold_name s in
  let decl = Structs.find prog.structs s in
  let field i = decl.fields.(i) in
  (* index maps: old field index -> placement *)
  let place = Array.make (Array.length decl.fields) `Dead in
  List.iteri (fun ni oi -> place.(oi) <- `Hot ni) spec.s_hot;
  List.iteri (fun ni oi -> place.(oi) <- `Cold ni) spec.s_cold;
  List.iter (fun oi -> place.(oi) <- `Dead) spec.s_dead;
  let link_idx = List.length spec.s_hot in
  (* new struct definitions (field types renamed at the end, with
     everything else) *)
  Structs.define prog.structs hot
    (List.map field spec.s_hot
    @ [ { Structs.name = link_field_name; ty = Irty.Ptr (Irty.Struct cold);
          bits = None } ]);
  Structs.define prog.structs cold (List.map field spec.s_cold);
  let retag (acc : Ir.access option) : Ir.access option =
    match acc with
    | Some a when String.equal a.astruct s -> (
      match place.(a.afield) with
      | `Hot ni -> Some { Ir.astruct = hot; afield = ni }
      | `Cold ni -> Some { Ir.astruct = cold; afield = ni }
      | `Dead -> acc (* the store is dropped anyway *))
    | Some _ | None -> acc
  in
  List.iter
    (fun (f : Ir.func) ->
      let regty = Regty.infer prog f in
      (* remember which registers are dead-field addresses *)
      let dead_addr = Hashtbl.create 8 in
      rewrite_instrs f (fun i ->
          let loc = i.iloc in
          match i.idesc with
          | Ir.Ifieldaddr (r, b, s', fi) when String.equal s' s -> (
            match place.(fi) with
            | `Hot ni ->
              i.idesc <- Ir.Ifieldaddr (r, b, hot, ni);
              Keep
            | `Cold ni ->
              let t1 = Ir.fresh_reg f and t2 = Ir.fresh_reg f in
              Replace
                [
                  mk_instr prog loc (Ir.Ifieldaddr (t1, b, hot, link_idx));
                  mk_instr prog loc
                    (Ir.Iload (t2, Ir.Oreg t1, Irty.Ptr (Irty.Struct cold),
                               Some { Ir.astruct = hot; afield = link_idx }));
                  mk_instr prog loc (Ir.Ifieldaddr (r, Ir.Oreg t2, cold, ni));
                ]
            | `Dead ->
              Hashtbl.replace dead_addr r ();
              Drop)
          | Ir.Istore (Ir.Oreg a, _, _, _) when Hashtbl.mem dead_addr a ->
            Drop (* dead store removal *)
          | Ir.Istore (a, v, ty, acc) ->
            i.idesc <- Ir.Istore (a, v, ty, retag acc);
            Keep
          | Ir.Iload (r, a, ty, acc) ->
            i.idesc <- Ir.Iload (r, a, ty, retag acc);
            Keep
          | Ir.Ifree o -> (
            match Regty.struct_ptr (match o with
                                    | Ir.Oreg r -> regty.(r)
                                    | Ir.Oimm _ | Ir.Ofimm _ -> None) with
            | Some s' when String.equal s' s ->
              (* free the cold part through the link, then the hot part *)
              let t1 = Ir.fresh_reg f and t2 = Ir.fresh_reg f in
              Replace
                [
                  mk_instr prog loc (Ir.Ifieldaddr (t1, o, hot, link_idx));
                  mk_instr prog loc
                    (Ir.Iload (t2, Ir.Oreg t1, Irty.Ptr (Irty.Struct cold),
                               Some { Ir.astruct = hot; afield = link_idx }));
                  mk_instr prog loc (Ir.Ifree (Ir.Oreg t2));
                  mk_instr prog loc (Ir.Ifree o);
                ]
            | Some _ | None -> Keep)
          | Ir.Imov _ | Ir.Ibin _ | Ir.Iun _ | Ir.Icast _ | Ir.Iaddrglob _
          | Ir.Iaddrlocal _ | Ir.Iaddrstr _ | Ir.Iaddrfunc _
          | Ir.Ifieldaddr _ | Ir.Iptradd _ | Ir.Icall _ | Ir.Ialloc _
          | Ir.Imemset _ | Ir.Imemcpy _ ->
            Keep);
      (* allocation sites: allocate the cold array and initialise links *)
      let worklist = Queue.create () in
      List.iter (fun b -> Queue.add b worklist) f.fblocks;
      while not (Queue.is_empty worklist) do
        let b : Ir.block = Queue.pop worklist in
        let rec find_alloc pre = function
          | [] -> None
          | ({ Ir.idesc = Ir.Ialloc (r, kind, count, Irty.Struct s'); _ } as ai)
            :: rest
            when String.equal s' s ->
            Some (List.rev pre, ai, r, kind, count, rest)
          | i :: rest -> find_alloc (i :: pre) rest
        in
        match find_alloc [] b.instrs with
        | None -> ()
        | Some (pre, alloc_i, r, kind, count, rest) ->
          let loc = alloc_i.iloc in
          alloc_i.idesc <- Ir.Ialloc (r, kind, count, Irty.Struct hot);
          let rc = Ir.fresh_reg f in
          let cold_kind =
            match kind with
            | Ir.Arealloc _ -> Ir.Amalloc (* realloc'd types are filtered out *)
            | Ir.Amalloc | Ir.Acalloc -> kind
          in
          let alloc_c =
            mk_instr prog loc (Ir.Ialloc (rc, cold_kind, count, Irty.Struct cold))
          in
          let iv = Ir.fresh_reg f in
          let init_iv = mk_instr prog loc (Ir.Imov (iv, Ir.Oimm 0L)) in
          let header = Ir.fresh_block f loc in
          let body = Ir.fresh_block f loc in
          let after = Ir.fresh_block f loc in
          after.instrs <- rest;
          after.btermin <- b.btermin;
          b.instrs <- pre @ [ alloc_i; alloc_c; init_iv ];
          b.btermin <- Ir.Tjmp header.bid;
          let cond = Ir.fresh_reg f in
          header.instrs <-
            [ mk_instr prog loc
                (Ir.Ibin (cond, Ir.Lt, Irty.Long, Ir.Oreg iv, count)) ];
          header.btermin <- Ir.Tbr (Ir.Oreg cond, body.bid, after.bid);
          let hp = Ir.fresh_reg f and fa = Ir.fresh_reg f in
          let cp = Ir.fresh_reg f and iv2 = Ir.fresh_reg f in
          body.instrs <-
            [
              mk_instr prog loc
                (Ir.Iptradd (hp, Ir.Oreg r, Ir.Oreg iv, Irty.Struct hot));
              mk_instr prog loc (Ir.Ifieldaddr (fa, Ir.Oreg hp, hot, link_idx));
              mk_instr prog loc
                (Ir.Iptradd (cp, Ir.Oreg rc, Ir.Oreg iv, Irty.Struct cold));
              mk_instr prog loc
                (Ir.Istore (Ir.Oreg fa, Ir.Oreg cp,
                            Irty.Ptr (Irty.Struct cold),
                            Some { Ir.astruct = hot; afield = link_idx }));
              mk_instr prog loc
                (Ir.Ibin (iv2, Ir.Add, Irty.Long, Ir.Oreg iv, Ir.Oimm 1L));
              mk_instr prog loc (Ir.Imov (iv, Ir.Oreg iv2));
            ];
          body.btermin <- Ir.Tjmp header.bid;
          Queue.add after worklist
      done;
      ignore (Dce.cleanup f))
    prog.funcs;
  Structs.remove prog.structs s;
  rename_type prog ~from_:s ~to_:hot

(* ------------------------------------------------------------------ *)
(* Rebuild (dead field removal + reordering, same type name)           *)
(* ------------------------------------------------------------------ *)

let rebuild (prog : Ir.program) (spec : rebuild_spec) =
  let s = spec.r_typ in
  let decl = Structs.find prog.structs s in
  let place = Array.make (Array.length decl.fields) `Dead in
  List.iteri (fun ni oi -> place.(oi) <- `Live ni) spec.r_order;
  List.iter (fun oi -> place.(oi) <- `Dead) spec.r_dead;
  Structs.define prog.structs s
    (List.map (fun oi -> decl.fields.(oi)) spec.r_order);
  let retag (acc : Ir.access option) =
    match acc with
    | Some a when String.equal a.astruct s -> (
      match place.(a.afield) with
      | `Live ni -> Some { Ir.astruct = s; afield = ni }
      | `Dead -> acc)
    | Some _ | None -> acc
  in
  List.iter
    (fun (f : Ir.func) ->
      let dead_addr = Hashtbl.create 8 in
      rewrite_instrs f (fun i ->
          match i.idesc with
          | Ir.Ifieldaddr (r, b, s', fi) when String.equal s' s -> (
            match place.(fi) with
            | `Live ni ->
              i.idesc <- Ir.Ifieldaddr (r, b, s, ni);
              Keep
            | `Dead ->
              Hashtbl.replace dead_addr r ();
              Drop)
          | Ir.Istore (Ir.Oreg a, _, _, _) when Hashtbl.mem dead_addr a -> Drop
          | Ir.Istore (a, v, ty, acc) ->
            i.idesc <- Ir.Istore (a, v, ty, retag acc);
            Keep
          | Ir.Iload (r, a, ty, acc) ->
            i.idesc <- Ir.Iload (r, a, ty, retag acc);
            Keep
          | Ir.Imov _ | Ir.Ibin _ | Ir.Iun _ | Ir.Icast _ | Ir.Iaddrglob _
          | Ir.Iaddrlocal _ | Ir.Iaddrstr _ | Ir.Iaddrfunc _
          | Ir.Ifieldaddr _ | Ir.Iptradd _ | Ir.Icall _ | Ir.Ialloc _
          | Ir.Ifree _ | Ir.Imemset _ | Ir.Imemcpy _ ->
            Keep);
      ignore (Dce.cleanup f))
    prog.funcs

(* Trailing padding: a pure layout change. The new field is never
   accessed, so no instruction rewriting happens; allocation sites size
   their arrays through the layout, which picks the pad up for free. *)
let pad (prog : Ir.program) (spec : pad_spec) =
  if spec.pd_bytes <= 0 then
    invalid_arg
      (Printf.sprintf "Transform.pad: %d pad bytes (need > 0)" spec.pd_bytes);
  let decl =
    match Structs.find_opt prog.structs spec.pd_typ with
    | Some d -> d
    | None ->
      invalid_arg ("Transform.pad: unknown struct " ^ spec.pd_typ)
  in
  let fields =
    List.filter
      (fun (f : Structs.field) -> not (String.equal f.name pad_field_name))
      (Array.to_list decl.fields)
  in
  Structs.define prog.structs spec.pd_typ
    (fields
    @ [ { Structs.name = pad_field_name;
          ty = Irty.Array (Irty.Char, spec.pd_bytes); bits = None } ])

(* ------------------------------------------------------------------ *)
(* Structure peeling                                                   *)
(* ------------------------------------------------------------------ *)

(* definition map: register -> defining instruction (None when multiply
   defined or a parameter of a join) *)
let def_map (f : Ir.func) : Ir.instr option array =
  let defs = Array.make f.next_reg None in
  let multi = Array.make f.next_reg false in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match Ir.defined_reg i with
          | Some r ->
            if defs.(r) <> None then multi.(r) <- true;
            defs.(r) <- Some i
          | None -> ())
        b.instrs)
    f.fblocks;
  Array.mapi (fun r d -> if multi.(r) then None else d) defs

let use_map (f : Ir.func) : Ir.instr list array =
  let uses = Array.make f.next_reg [] in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          List.iter (fun r -> uses.(r) <- i :: uses.(r)) (Ir.used_regs i))
        b.instrs)
    f.fblocks;
  uses

let rec ty_mentions s (t : Irty.t) =
  match t with
  | Irty.Struct x -> String.equal x s
  | Irty.Ptr u | Irty.Array (u, _) -> ty_mentions s u
  | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long | Irty.Float
  | Irty.Double | Irty.Funptr ->
    false

(* trace the anchor global of a field-access base register:
   b = Iptradd(p, idx, S) / p = Iload(addr g) / direct load *)
let trace_base defs (b : Ir.operand) ~typ : (string * Ir.operand option) option =
  let def = function
    | Ir.Oreg r -> defs.(r)
    | Ir.Oimm _ | Ir.Ofimm _ -> None
  in
  let global_of_load (li : Ir.instr option) =
    match li with
    | Some { Ir.idesc = Ir.Iload (_, ga, Irty.Ptr (Irty.Struct s'), _); _ }
      when String.equal s' typ -> (
      match def ga with
      | Some { Ir.idesc = Ir.Iaddrglob (_, g); _ } -> Some g
      | Some _ | None -> None)
    | Some _ | None -> None
  in
  match def b with
  | Some { Ir.idesc = Ir.Iptradd (_, p, idx, Irty.Struct s'); _ }
    when String.equal s' typ -> (
    match global_of_load (def p) with
    | Some g -> Some (g, Some idx)
    | None -> None)
  | d -> (
    match global_of_load d with
    | Some g -> Some (g, None)
    | None -> None)

(* trace an allocation chain: value stored = alloc result, possibly through
   casts *)
let rec trace_alloc defs (v : Ir.operand) ~typ : Ir.instr option =
  match v with
  | Ir.Oimm _ | Ir.Ofimm _ -> None
  | Ir.Oreg r -> (
    match defs.(r) with
    | Some ({ Ir.idesc = Ir.Ialloc (_, _, _, Irty.Struct s'); _ } as ai)
      when String.equal s' typ ->
      Some ai
    | Some { Ir.idesc = Ir.Icast (_, _, _, src, _); _ } ->
      trace_alloc defs src ~typ
    | Some _ | None -> None)

let peel_feasible (prog : Ir.program) ~typ ~globals : bool =
  let in_g g = List.mem g globals in
  let ok = ref (globals <> []) in
  (* the type may not be referenced from any other storage *)
  Structs.iter
    (fun d ->
      if not (String.equal d.sname typ) || true then
        Array.iter
          (fun (fl : Structs.field) -> if ty_mentions typ fl.ty then ok := false)
          d.fields)
    prog.structs;
  List.iter
    (fun (n, t, _) -> if (not (in_g n)) && ty_mentions typ t then ok := false)
    prog.globals;
  List.iter
    (fun (f : Ir.func) ->
      if ty_mentions typ f.fret then ok := false;
      List.iter (fun (_, t) -> if ty_mentions typ t then ok := false) f.fparams;
      List.iter (fun (_, t) -> if ty_mentions typ t then ok := false) f.flocals;
      let defs = def_map f in
      let uses = use_map f in
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Ifieldaddr (_, base, s', _) when String.equal s' typ ->
                if trace_base defs base ~typ = None then ok := false
              | Ir.Ialloc (r, _, _, Irty.Struct s') when String.equal s' typ ->
                (* result must flow, through casts only, into exactly one
                   store to an anchor global *)
                let rec check_uses reg depth =
                  if depth > 4 then ok := false
                  else
                    List.iter
                      (fun (u : Ir.instr) ->
                        match u.idesc with
                        | Ir.Icast (r2, _, _, Ir.Oreg r', _) when r' = reg ->
                          check_uses r2 (depth + 1)
                        | Ir.Istore (addr, Ir.Oreg r', _, _) when r' = reg -> (
                          match addr with
                          | Ir.Oreg ar -> (
                            match defs.(ar) with
                            | Some { Ir.idesc = Ir.Iaddrglob (_, g); _ }
                              when in_g g ->
                              ()
                            | Some _ | None -> ok := false)
                          | Ir.Oimm _ | Ir.Ofimm _ -> ok := false)
                        | _ -> ok := false)
                      uses.(reg)
                in
                check_uses r 0
              | Ir.Iload (r, ga, Irty.Ptr (Irty.Struct s'), _)
                when String.equal s' typ -> (
                match
                  match ga with
                  | Ir.Oreg gar -> defs.(gar)
                  | Ir.Oimm _ | Ir.Ofimm _ -> None
                with
                | Some { Ir.idesc = Ir.Iaddrglob (_, g); _ } when in_g g ->
                  (* uses of the loaded anchor pointer *)
                  List.iter
                    (fun (u : Ir.instr) ->
                      match u.idesc with
                      | Ir.Iptradd (pr, Ir.Oreg r', _, Irty.Struct s2)
                        when r' = r && String.equal s2 typ ->
                        (* the ptradd may feed field addresses only *)
                        List.iter
                          (fun (u2 : Ir.instr) ->
                            match u2.idesc with
                            | Ir.Ifieldaddr (_, Ir.Oreg b', s3, _)
                              when b' = pr && String.equal s3 typ ->
                              ()
                            | _ -> ok := false)
                          uses.(pr)
                      | Ir.Ifieldaddr (_, Ir.Oreg b', s2, _)
                        when b' = r && String.equal s2 typ ->
                        ()
                      | Ir.Ifree (Ir.Oreg r') when r' = r -> ()
                      | Ir.Ibin (_, (Ir.Eq | Ir.Ne), _, _, _) -> ()
                      | _ -> ok := false)
                    uses.(r)
                | Some _ | None -> ok := false)
              | _ -> ())
            b.instrs)
        f.fblocks)
    prog.funcs;
  !ok

let peel (prog : Ir.program) (spec : peel_spec) =
  let s = spec.p_typ in
  let decl = Structs.find prog.structs s in
  let field i = decl.fields.(i) in
  let live = spec.p_live in
  let piece_of = Hashtbl.create 8 in
  List.iter
    (fun fi ->
      let fname = (field fi).Structs.name in
      let pname = piece_name s fname in
      Hashtbl.replace piece_of fi pname;
      Structs.define prog.structs pname [ field fi ])
    live;
  let first_piece = Hashtbl.find piece_of (List.hd live) in
  (* companion globals *)
  let pg g fi = piece_global g (field fi).Structs.name in
  prog.globals <-
    List.concat_map
      (fun ((n, _t, init) as orig) ->
        if List.mem n spec.p_globals then
          List.map
            (fun fi ->
              (pg n fi, Irty.Ptr (Irty.Struct (Hashtbl.find piece_of fi)), init))
            live
        else [ orig ])
      prog.globals;
  let retag (acc : Ir.access option) =
    match acc with
    | Some a when String.equal a.astruct s -> (
      match Hashtbl.find_opt piece_of a.afield with
      | Some p -> Some { Ir.astruct = p; afield = 0 }
      | None -> acc)
    | Some _ | None -> acc
  in
  List.iter
    (fun (f : Ir.func) ->
      let defs = def_map f in
      let dead_addr = Hashtbl.create 8 in
      rewrite_instrs f (fun i ->
          let loc = i.iloc in
          match i.idesc with
          | Ir.Ialloc (_, _, _, Irty.Struct s') when String.equal s' s ->
            Drop (* re-emitted at the anchor store *)
          | Ir.Icast (_, _, _, v, _) when trace_alloc defs v ~typ:s <> None ->
            Drop
          | Ir.Istore (addr, v, ty, acc) -> (
            let anchor =
              match addr with
              | Ir.Oreg ar -> (
                match defs.(ar) with
                | Some { Ir.idesc = Ir.Iaddrglob (_, g); _ }
                  when List.mem g spec.p_globals ->
                  Some g
                | Some _ | None -> None)
              | Ir.Oimm _ | Ir.Ofimm _ -> None
            in
            match anchor with
            | Some g -> (
              match trace_alloc defs v ~typ:s with
              | Some { Ir.idesc = Ir.Ialloc (_, kind, count, _); _ } ->
                (* fan out: one allocation and one anchor store per piece *)
                Replace
                  (List.concat_map
                     (fun fi ->
                       let p = Hashtbl.find piece_of fi in
                       let r = Ir.fresh_reg f and ga = Ir.fresh_reg f in
                       [
                         mk_instr prog loc
                           (Ir.Ialloc (r, kind, count, Irty.Struct p));
                         mk_instr prog loc (Ir.Iaddrglob (ga, pg g fi));
                         mk_instr prog loc
                           (Ir.Istore (Ir.Oreg ga, Ir.Oreg r,
                                       Irty.Ptr (Irty.Struct p), None));
                       ])
                     live)
              | Some _ -> assert false
              | None ->
                (* e.g. a null initialisation: replicate per piece *)
                Replace
                  (List.concat_map
                     (fun fi ->
                       let p = Hashtbl.find piece_of fi in
                       let ga = Ir.fresh_reg f in
                       [
                         mk_instr prog loc (Ir.Iaddrglob (ga, pg g fi));
                         mk_instr prog loc
                           (Ir.Istore (Ir.Oreg ga, v,
                                       Irty.Ptr (Irty.Struct p), None));
                       ])
                     live))
            | None ->
              if
                match addr with
                | Ir.Oreg ar -> Hashtbl.mem dead_addr ar
                | Ir.Oimm _ | Ir.Ofimm _ -> false
              then Drop
              else begin
                i.idesc <- Ir.Istore (addr, v, ty, retag acc);
                Keep
              end)
          | Ir.Ifieldaddr (r, base, s', fi) when String.equal s' s -> (
            if not (List.mem fi live) then begin
              Hashtbl.replace dead_addr r ();
              Drop
            end
            else
              match trace_base defs base ~typ:s with
              | None -> assert false (* peel_feasible guaranteed this *)
              | Some (g, idx) ->
                let p = Hashtbl.find piece_of fi in
                let ga = Ir.fresh_reg f and pr = Ir.fresh_reg f in
                let base_instrs =
                  [
                    mk_instr prog loc (Ir.Iaddrglob (ga, pg g fi));
                    mk_instr prog loc
                      (Ir.Iload (pr, Ir.Oreg ga, Irty.Ptr (Irty.Struct p),
                                 None));
                  ]
                in
                let final_base, extra =
                  match idx with
                  | None -> (Ir.Oreg pr, [])
                  | Some idx_op ->
                    let br = Ir.fresh_reg f in
                    ( Ir.Oreg br,
                      [
                        mk_instr prog loc
                          (Ir.Iptradd (br, Ir.Oreg pr, idx_op, Irty.Struct p));
                      ] )
                in
                Replace
                  (base_instrs @ extra
                  @ [ mk_instr prog loc (Ir.Ifieldaddr (r, final_base, p, 0)) ]))
          | Ir.Ifree (Ir.Oreg fr) -> (
            match defs.(fr) with
            | Some { Ir.idesc = Ir.Iload (_, ga, Irty.Ptr (Irty.Struct s'), _); _ }
              when String.equal s' s -> (
              match
                match ga with
                | Ir.Oreg gar -> defs.(gar)
                | Ir.Oimm _ | Ir.Ofimm _ -> None
              with
              | Some { Ir.idesc = Ir.Iaddrglob (_, g); _ }
                when List.mem g spec.p_globals ->
                Replace
                  (List.concat_map
                     (fun fi ->
                       let p = Hashtbl.find piece_of fi in
                       let ga2 = Ir.fresh_reg f and pr = Ir.fresh_reg f in
                       [
                         mk_instr prog loc (Ir.Iaddrglob (ga2, pg g fi));
                         mk_instr prog loc
                           (Ir.Iload (pr, Ir.Oreg ga2,
                                      Irty.Ptr (Irty.Struct p), None));
                         mk_instr prog loc (Ir.Ifree (Ir.Oreg pr));
                       ])
                     live)
              | Some _ | None -> Keep)
            | Some _ | None -> Keep)
          | Ir.Iload (r, a, ty, acc) ->
            i.idesc <- Ir.Iload (r, a, ty, retag acc);
            Keep
          | Ir.Imov _ | Ir.Ibin _ | Ir.Iun _ | Ir.Icast _ | Ir.Iaddrglob _
          | Ir.Iaddrlocal _ | Ir.Iaddrstr _ | Ir.Iaddrfunc _
          | Ir.Ifieldaddr _ | Ir.Iptradd _ | Ir.Icall _ | Ir.Ialloc _
          | Ir.Ifree _ | Ir.Imemset _ | Ir.Imemcpy _ ->
            Keep);
      (* remaining references to the anchor globals (null compares):
         retarget to the first piece *)
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Iaddrglob (r, g) when List.mem g spec.p_globals ->
                i.idesc <-
                  Ir.Iaddrglob (r, pg g (List.hd live))
              | Ir.Iload (r, a, Irty.Ptr (Irty.Struct s'), acc)
                when String.equal s' s ->
                i.idesc <-
                  Ir.Iload (r, a, Irty.Ptr (Irty.Struct first_piece), acc)
              | _ -> ())
            b.instrs)
        f.fblocks;
      ignore (Dce.cleanup f))
    prog.funcs;
  (* stray type annotations mentioning the peeled struct (e.g. an explicit
     null-pointer cast whose value is replicated per piece) would dangle
     once the struct is removed; retarget them to the first piece, whose
     layout stands in for "a pointer to the peeled object" *)
  rename_type prog ~from_:s ~to_:first_piece;
  Structs.remove prog.structs s

(* ------------------------------------------------------------------ *)
(* Index-linked pooling (SoCal-style SoA factorization)                *)
(* ------------------------------------------------------------------ *)

let pool_struct_name s = s ^ "__pool"
let pool_anchor_name target = "__pool_" ^ target

(* [Ptr (Struct typ)] becomes a plain element index. Long and pointers
   are both 8 bytes in the VM, so retyping changes no enclosing layout
   (e.g. arc.tail/head cells keep their offsets). *)
let rec subst_ptr_ty ~typ (t : Irty.t) : Irty.t =
  match t with
  | Irty.Ptr (Irty.Struct x) when String.equal x typ -> Irty.Long
  | Irty.Ptr u -> Irty.Ptr (subst_ptr_ty ~typ u)
  | Irty.Array (u, n) -> Irty.Array (subst_ptr_ty ~typ u, n)
  | Irty.Struct _ | Irty.Void | Irty.Char | Irty.Short | Irty.Int
  | Irty.Long | Irty.Float | Irty.Double | Irty.Funptr ->
    t

(* Rewrite the (single, Shape-proven) allocation site of [po_typ] into a
   packed pool: the non-link fields stay together in [S__pool] and every
   link field gets its own parallel array ([S__next], ...), all sized by
   the original element count and anchored in fresh globals. Every
   [struct S *] value in the program then becomes the element index —
   the allocation result is index 0, [ptradd] degenerates to integer
   addition, and a field access indexes the right parallel array through
   its anchor. Field names are preserved in the factored structs, so the
   oracle's per-field access conservation (keyed by name) keeps holding.

   Preconditions (checked, but normally guaranteed by [Shape.analyze]):
   the type exists, the link fields are self links, and the program has
   exactly one allocation site of the type. Everything subtler — no
   null/index-0 confusion, no interior escape, no foreign pointers — is
   Shape's province, and the differential oracle re-proves each rewrite
   dynamically. *)
let pool (prog : Ir.program) (spec : pool_spec) =
  let s = spec.po_typ in
  let decl =
    match Structs.find_opt prog.structs s with
    | Some d -> d
    | None -> invalid_arg ("Transform.pool: unknown struct " ^ s)
  in
  let nfields = Array.length decl.fields in
  if spec.po_links = [] then
    invalid_arg ("Transform.pool: no link fields for " ^ s);
  let links = List.sort_uniq compare spec.po_links in
  List.iter
    (fun fi ->
      if fi < 0 || fi >= nfields then
        invalid_arg
          (Printf.sprintf "Transform.pool: link index %d out of range for %s"
             fi s);
      let fl = decl.fields.(fi) in
      if not (Irty.equal fl.ty (Irty.Ptr (Irty.Struct s))) then
        invalid_arg
          (Printf.sprintf "Transform.pool: field %s.%s has type %s, not a \
                           self link" s fl.name (Irty.to_string fl.ty)))
    links;
  let data =
    List.filter (fun fi -> not (List.mem fi links)) (List.init nfields Fun.id)
  in
  let ps = pool_struct_name s in
  (* old field index -> (target struct, new field index) *)
  let place = Array.make nfields ("", 0) in
  List.iteri (fun ni oi -> place.(oi) <- (ps, ni)) data;
  List.iter
    (fun oi -> place.(oi) <- (piece_name s decl.fields.(oi).Structs.name, 0))
    links;
  let targets =
    (if data = [] then [] else [ ps ])
    @ List.map (fun oi -> fst place.(oi)) links
  in
  (* exactly one allocation site (Shape's MULTI/NOALLOC conditions) *)
  let n_sites =
    List.fold_left
      (fun acc (f : Ir.func) ->
        List.fold_left
          (fun acc (b : Ir.block) ->
            List.fold_left
              (fun acc (i : Ir.instr) ->
                match i.idesc with
                | Ir.Ialloc (_, _, _, Irty.Struct s') when String.equal s' s ->
                  acc + 1
                | _ -> acc)
              acc b.instrs)
          acc f.fblocks)
      0 prog.funcs
  in
  if n_sites <> 1 then
    invalid_arg
      (Printf.sprintf "Transform.pool: %s has %d allocation sites (need \
                       exactly 1)" s n_sites);
  (* factored struct definitions and their anchor globals *)
  if data <> [] then
    Structs.define prog.structs ps (List.map (fun fi -> decl.fields.(fi)) data);
  List.iter
    (fun fi -> Structs.define prog.structs (fst place.(fi)) [ decl.fields.(fi) ])
    links;
  prog.globals <-
    prog.globals
    @ List.map
        (fun t -> (pool_anchor_name t, Irty.Ptr (Irty.Struct t), None))
        targets;
  let retag (acc : Ir.access option) : Ir.access option =
    match acc with
    | Some a when String.equal a.astruct s ->
      let target, ni = place.(a.afield) in
      Some { Ir.astruct = target; afield = ni }
    | Some _ | None -> acc
  in
  List.iter
    (fun (f : Ir.func) ->
      rewrite_instrs f (fun i ->
          let loc = i.iloc in
          match i.idesc with
          | Ir.Ialloc (r, kind, count, Irty.Struct s') when String.equal s' s
            ->
            let kind =
              match kind with
              | Ir.Arealloc _ ->
                invalid_arg "Transform.pool: realloc'd allocation site"
              | Ir.Amalloc | Ir.Acalloc -> kind
            in
            Replace
              (List.concat_map
                 (fun t ->
                   let rp = Ir.fresh_reg f and ga = Ir.fresh_reg f in
                   [
                     mk_instr prog loc (Ir.Ialloc (rp, kind, count,
                                                   Irty.Struct t));
                     mk_instr prog loc (Ir.Iaddrglob (ga, pool_anchor_name t));
                     mk_instr prog loc
                       (Ir.Istore (Ir.Oreg ga, Ir.Oreg rp,
                                   Irty.Ptr (Irty.Struct t), None));
                   ])
                 targets
              @ [ mk_instr prog loc (Ir.Imov (r, Ir.Oimm 0L)) ])
          | Ir.Ifieldaddr (r, base, s', fi) when String.equal s' s ->
            let target, ni = place.(fi) in
            let ga = Ir.fresh_reg f and bp = Ir.fresh_reg f in
            let ep = Ir.fresh_reg f in
            Replace
              [
                mk_instr prog loc (Ir.Iaddrglob (ga, pool_anchor_name target));
                mk_instr prog loc
                  (Ir.Iload (bp, Ir.Oreg ga, Irty.Ptr (Irty.Struct target),
                             None));
                mk_instr prog loc
                  (Ir.Iptradd (ep, Ir.Oreg bp, base, Irty.Struct target));
                mk_instr prog loc (Ir.Ifieldaddr (r, Ir.Oreg ep, target, ni));
              ]
          | Ir.Iptradd (r, base, idx, Irty.Struct s') when String.equal s' s ->
            (* index arithmetic: dst = base + idx (elements, not bytes) *)
            Replace [ mk_instr prog loc (Ir.Ibin (r, Ir.Add, Irty.Long, base,
                                                  idx)) ]
          | Ir.Istore (a, v, ty, acc) ->
            i.idesc <- Ir.Istore (a, v, ty, retag acc);
            Keep
          | Ir.Iload (r, a, ty, acc) ->
            i.idesc <- Ir.Iload (r, a, ty, retag acc);
            Keep
          | Ir.Imov _ | Ir.Ibin _ | Ir.Iun _ | Ir.Icast _ | Ir.Iaddrglob _
          | Ir.Iaddrlocal _ | Ir.Iaddrstr _ | Ir.Iaddrfunc _
          | Ir.Ifieldaddr _ | Ir.Iptradd _ | Ir.Icall _ | Ir.Ialloc _
          | Ir.Ifree _ | Ir.Imemset _ | Ir.Imemcpy _ ->
            Keep);
      ignore (Dce.cleanup f))
    prog.funcs;
  (* every [struct s *] annotation (globals, locals, params, returns,
     other structs' link cells, remaining instruction types) becomes a
     plain index *)
  map_types prog (subst_ptr_ty ~typ:s);
  Structs.remove prog.structs s
