module Weights = Slo_profile.Weights

let hotness (prog : Ir.program) (bw : Weights.block_weights) =
  let acc : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (n, _, _) -> Hashtbl.replace acc n 0.0) prog.globals;
  List.iter
    (fun (f : Ir.func) ->
      let weights =
        Option.value ~default:[||] (Hashtbl.find_opt bw f.fname)
      in
      let weight_of b =
        if b < Array.length weights then weights.(b) else 0.0
      in
      List.iter
        (fun (b : Ir.block) ->
          let w = weight_of b.bid in
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Iaddrglob (_, g) -> (
                match Hashtbl.find_opt acc g with
                | Some prev -> Hashtbl.replace acc g (prev +. w)
                | None -> ())
              | _ -> ())
            b.instrs)
        f.fblocks)
    prog.funcs;
  Hashtbl.fold (fun n w l -> (n, w) :: l) acc []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let is_aggregate = function
  | Irty.Struct _ | Irty.Array _ -> true
  | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long | Irty.Float
  | Irty.Double | Irty.Ptr _ | Irty.Funptr ->
    false

let reorder (prog : Ir.program) (bw : Weights.block_weights) =
  let hot = hotness prog bw in
  let rank = Hashtbl.create 16 in
  List.iteri (fun i (n, _) -> Hashtbl.replace rank n i) hot;
  let key (n, ty, _) =
    (* scalars by hotness; aggregates keep declaration order afterwards *)
    if is_aggregate ty then (1, Option.value ~default:max_int (Hashtbl.find_opt rank n))
    else (0, Option.value ~default:max_int (Hashtbl.find_opt rank n))
  in
  prog.globals <-
    List.stable_sort (fun a b -> compare (key a) (key b)) prog.globals
