type reason =
  | CSTT | CSTF | ATKN | LIBC | IND | SMAL | MSET | NEST | SIZEOF

let reason_name = function
  | CSTT -> "CSTT" | CSTF -> "CSTF" | ATKN -> "ATKN" | LIBC -> "LIBC"
  | IND -> "IND" | SMAL -> "SMAL" | MSET -> "MSET" | NEST -> "NEST"
  | SIZEOF -> "SIZEOF"

type witness = {
  w_reason : reason;
  w_fn : string option;
  w_iid : int option;
  w_loc : Ir.Loc.t option;
  w_explain : string;
}

type alloc_site = { al_fn : string; al_iid : int; al_loc : Ir.Loc.t }

type attrs = {
  mutable has_global_var : bool;
  mutable has_local_var : bool;
  mutable has_global_ptr : bool;
  mutable has_local_ptr : bool;
  mutable has_static_array : bool;
  mutable dyn_alloc : bool;
  mutable freed : bool;
  mutable realloced : bool;
  mutable global_ptrs : string list;
  mutable alloc_sites : alloc_site list;
  mutable escapes : string list;
  mutable addr_passed_fields : int list;
}

type info = {
  mutable invalid : reason list;
  mutable witnesses : witness list;
  attrs : attrs;
}

type t = { table : (string, info) Hashtbl.t }

let fresh_attrs () =
  {
    has_global_var = false; has_local_var = false; has_global_ptr = false;
    has_local_ptr = false; has_static_array = false; dyn_alloc = false;
    freed = false; realloced = false; global_ptrs = []; alloc_sites = [];
    escapes = []; addr_passed_fields = [];
  }

let info t s = Hashtbl.find t.table s

let mark ?fn ?iid ?loc ?why t s r =
  match Hashtbl.find_opt t.table s with
  | Some i ->
    if not (List.mem r i.invalid) then i.invalid <- r :: i.invalid;
    let w =
      {
        w_reason = r;
        w_fn = fn;
        w_iid = iid;
        w_loc = loc;
        w_explain =
          (match why with
          | Some e -> e
          | None -> Printf.sprintf "%s test fired on '%s'" (reason_name r) s);
      }
    in
    (* every violation keeps its own witness; identical re-discoveries of
       the same site are dropped *)
    if
      not
        (List.exists
           (fun w' ->
             w'.w_reason = w.w_reason && w'.w_fn = w.w_fn
             && w'.w_iid = w.w_iid
             && String.equal w'.w_explain w.w_explain)
           i.witnesses)
    then i.witnesses <- i.witnesses @ [ w ]
  | None -> ()

let attrs_of t s =
  match Hashtbl.find_opt t.table s with
  | Some i -> Some i.attrs
  | None -> None

(* outermost struct mentioned by a type, seen through pointers *)
let rec pointee_struct = function
  | Irty.Ptr u -> pointee_struct u
  | Irty.Struct s -> Some s
  | Irty.Array (u, _) -> pointee_struct u
  | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long | Irty.Float
  | Irty.Double | Irty.Funptr ->
    None

let relaxable = function
  | CSTT | CSTF | ATKN -> true
  | LIBC | IND | SMAL | MSET | NEST | SIZEOF -> false

let analyze ?(smal_threshold = 1) (prog : Ir.program) : t =
  let t = { table = Hashtbl.create 32 } in
  Structs.iter
    (fun d ->
      Hashtbl.replace t.table d.sname
        { invalid = []; witnesses = []; attrs = fresh_attrs () })
    prog.structs;
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.fname ()) prog.funcs;

  (* --- declaration attributes and NEST --- *)
  Structs.iter
    (fun d ->
      Array.iter
        (fun (fld : Structs.field) ->
          match fld.ty with
          | Irty.Struct inner | Irty.Array (Irty.Struct inner, _) ->
            (* by-value nesting invalidates both the nested type and the
               container (implementation limitation, as in the paper) *)
            mark t inner NEST
              ~why:
                (Printf.sprintf "nested by value inside struct '%s' (field '%s')"
                   d.sname fld.name);
            mark t d.sname NEST
              ~why:
                (Printf.sprintf "nests struct '%s' by value (field '%s')" inner
                   fld.name)
          | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
          | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _
          | Irty.Funptr ->
            ())
        d.fields)
    prog.structs;
  List.iter
    (fun (name, ty, _) ->
      match ty with
      | Irty.Struct s ->
        Option.iter (fun a -> a.has_global_var <- true) (attrs_of t s)
      | Irty.Ptr (Irty.Struct s) ->
        Option.iter
          (fun a ->
            a.has_global_ptr <- true;
            a.global_ptrs <- a.global_ptrs @ [ name ])
          (attrs_of t s)
      | Irty.Array (Irty.Struct s, _) ->
        Option.iter (fun a -> a.has_static_array <- true) (attrs_of t s)
      | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
      | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _ | Irty.Funptr ->
        ())
    prog.globals;

  (* --- sizeof escapes recorded during lowering --- *)
  List.iter
    (fun (s, loc) ->
      mark t s SIZEOF ~loc
        ~why:
          (Printf.sprintf "sizeof(struct %s) escapes into plain arithmetic" s))
    prog.psizeof_uses;

  (* --- FE pass over every function --- *)
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (name, ty) ->
          ignore name;
          match ty with
          | Irty.Struct s ->
            Option.iter (fun a -> a.has_local_var <- true) (attrs_of t s)
          | Irty.Ptr (Irty.Struct s) ->
            Option.iter (fun a -> a.has_local_ptr <- true) (attrs_of t s)
          | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
          | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _
          | Irty.Funptr ->
            ())
        f.flocals;
      let regty = Regty.infer prog f in
      let ty_of = function
        | Ir.Oreg r -> regty.(r)
        | Ir.Oimm _ -> Some Irty.Long
        | Ir.Ofimm _ -> Some Irty.Double
      in
      (* alloc results (tracked through casts by [from_alloc]) *)
      let alloc_elem : (Ir.reg, Irty.t) Hashtbl.t = Hashtbl.create 16 in
      (* uses of field addresses; the defining instruction is kept so ATKN
         witnesses point at the address-of expression, not its use site *)
      let fieldaddr_of : (Ir.reg, string * int * int * Ir.Loc.t) Hashtbl.t =
        Hashtbl.create 16
      in
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              (match i.idesc with
              | Ir.Ialloc (r, kind, count, elem) ->
                Hashtbl.replace alloc_elem r elem;
                (match elem with
                | Irty.Struct s ->
                  Option.iter
                    (fun a ->
                      a.dyn_alloc <- true;
                      if
                        not
                          (List.exists
                             (fun al ->
                               String.equal al.al_fn f.fname
                               && al.al_iid = i.iid)
                             a.alloc_sites)
                      then
                        a.alloc_sites <-
                          a.alloc_sites
                          @ [ { al_fn = f.fname; al_iid = i.iid;
                                al_loc = i.iloc } ];
                      match kind with
                      | Ir.Arealloc _ -> a.realloced <- true
                      | Ir.Amalloc | Ir.Acalloc -> ())
                    (attrs_of t s);
                  (match count with
                  | Ir.Oimm n when Int64.to_int n <= smal_threshold ->
                    mark t s SMAL ~fn:f.fname ~iid:i.iid ~loc:i.iloc
                      ~why:
                        (Printf.sprintf
                           "allocation of %Ld object(s) is at or below the \
                            site-count threshold %d"
                           n smal_threshold)
                  | Ir.Oimm _ | Ir.Oreg _ | Ir.Ofimm _ -> ())
                | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
                | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _
                | Irty.Funptr ->
                  ())
              | Ir.Icast (r, from_, to_, v, ci) -> (
                (* propagate alloc tracking through the cast *)
                (match v with
                | Ir.Oreg vr -> (
                  match Hashtbl.find_opt alloc_elem vr with
                  | Some e -> Hashtbl.replace alloc_elem r e
                  | None -> ())
                | Ir.Oimm _ | Ir.Ofimm _ -> ());
                let mark_here s r why =
                  mark t s r ~fn:f.fname ~iid:i.iid ~loc:i.iloc ~why
                in
                (match to_ with
                | Irty.Ptr (Irty.Struct s) ->
                  if v = Ir.Oimm 0L then ()
                  (* a null pointer constant is not a type-unsafe use *)
                  else if ci.from_alloc then begin
                    (* tolerate casts of matching allocation results *)
                    match v with
                    | Ir.Oreg vr -> (
                      match Hashtbl.find_opt alloc_elem vr with
                      | Some (Irty.Struct s') when String.equal s s' -> ()
                      | Some (Irty.Struct s') ->
                        mark_here s CSTT
                          (Printf.sprintf
                             "allocation of struct '%s' cast to 'struct %s *'"
                             s' s)
                      | Some _ ->
                        (* untyped allocation (e.g. malloc(16)): the FE
                           cannot retarget the site; counts as CSTT like
                           the paper's void* wrapper case *)
                        mark_here s CSTT
                          (Printf.sprintf
                             "untyped allocation cast to 'struct %s *'" s)
                      | None ->
                        mark_here s CSTT
                          (Printf.sprintf
                             "value of unknown origin cast to 'struct %s *'" s))
                    | Ir.Oimm _ | Ir.Ofimm _ ->
                      mark_here s CSTT
                        (Printf.sprintf "constant cast to 'struct %s *'" s)
                  end
                  else
                    mark_here s CSTT
                      (Printf.sprintf
                         "cast to 'struct %s *' from a value that is not an \
                          allocation result"
                         s)
                | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
                | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _
                | Irty.Struct _ | Irty.Funptr ->
                  ());
                match from_ with
                | Irty.Ptr (Irty.Struct s) ->
                  if not ci.from_alloc then
                    mark t s CSTF ~fn:f.fname ~iid:i.iid ~loc:i.iloc
                      ~why:
                        (Printf.sprintf
                           "pointer to struct '%s' cast to an unrelated type \
                            '%s'"
                           s (Irty.to_string to_))
                | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
                | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _
                | Irty.Struct _ | Irty.Funptr ->
                  ())
              | Ir.Ifieldaddr (r, _, s, fi) ->
                Hashtbl.replace fieldaddr_of r (s, fi, i.iid, i.iloc)
              | Ir.Ifree o -> (
                match Regty.struct_ptr (ty_of o) with
                | Some s -> Option.iter (fun a -> a.freed <- true) (attrs_of t s)
                | None -> ())
              | Ir.Imemset (_, _, _, tag) | Ir.Imemcpy (_, _, _, tag) ->
                let prim =
                  match i.idesc with Ir.Imemset _ -> "memset" | _ -> "memcpy"
                in
                Option.iter
                  (fun s ->
                    mark t s MSET ~fn:f.fname ~iid:i.iid ~loc:i.iloc
                      ~why:
                        (Printf.sprintf
                           "struct '%s' is bulk-accessed by %s, which assumes \
                            the declared layout"
                           s prim))
                  tag
              | Ir.Icall (_, callee, args) ->
                List.iter
                  (fun arg ->
                    match pointee_struct (Option.value ~default:Irty.Void (ty_of arg)) with
                    | None -> ()
                    | Some s -> (
                      let libc name =
                        mark t s LIBC ~fn:f.fname ~iid:i.iid ~loc:i.iloc
                          ~why:
                            (Printf.sprintf
                               "pointer into struct '%s' passed to library \
                                function '%s'"
                               s name)
                      in
                      match callee with
                      | Ir.Cdirect callee_name ->
                        if Hashtbl.mem defined callee_name then
                          Option.iter
                            (fun a ->
                              if not (List.mem callee_name a.escapes) then
                                a.escapes <- callee_name :: a.escapes)
                            (attrs_of t s)
                        else libc callee_name
                      | Ir.Cbuiltin n | Ir.Cextern n -> libc n
                      | Ir.Cindirect _ ->
                        mark t s IND ~fn:f.fname ~iid:i.iid ~loc:i.iloc
                          ~why:
                            (Printf.sprintf
                               "pointer into struct '%s' passed to an \
                                indirect call"
                               s)))
                  args
              | Ir.Imov _ | Ir.Ibin _ | Ir.Iun _ | Ir.Iload _ | Ir.Istore _
              | Ir.Iaddrglob _ | Ir.Iaddrlocal _ | Ir.Iaddrstr _
              | Ir.Iaddrfunc _ | Ir.Iptradd _ ->
                ());
              (* ATKN: a field address used for anything except being the
                 address operand of a load/store, or a call argument *)
              let check_use (o : Ir.operand) ~tolerated =
                match o with
                | Ir.Oreg r -> (
                  match Hashtbl.find_opt fieldaddr_of r with
                  | Some (s, fi, def_iid, def_loc) ->
                    if not tolerated then begin
                      let field =
                        match Structs.find_opt prog.structs s with
                        | Some d when fi >= 0 && fi < Array.length d.fields ->
                          d.fields.(fi).name
                        | Some _ | None -> Printf.sprintf "#%d" fi
                      in
                      mark t s ATKN ~fn:f.fname ~iid:def_iid ~loc:def_loc
                        ~why:
                          (Printf.sprintf
                             "address of field '%s.%s' is taken and used \
                              outside a load/store"
                             s field)
                    end
                  | None -> ())
                | Ir.Oimm _ | Ir.Ofimm _ -> ()
              in
              (match i.idesc with
              | Ir.Iload (_, addr, _, _) -> check_use addr ~tolerated:true
              | Ir.Istore (addr, v, _, _) ->
                check_use addr ~tolerated:true;
                check_use v ~tolerated:false
              | Ir.Icall (_, _, args) ->
                (* address of a field passed to a function: tolerated under
                   the paper's assumption about callee behaviour — but the
                   field can no longer be proved dead *)
                List.iter
                  (fun a ->
                    (match a with
                    | Ir.Oreg r -> (
                      match Hashtbl.find_opt fieldaddr_of r with
                      | Some (s, fi, _, _) ->
                        Option.iter
                          (fun at ->
                            if not (List.mem fi at.addr_passed_fields) then
                              at.addr_passed_fields <-
                                fi :: at.addr_passed_fields)
                          (attrs_of t s)
                      | None -> ())
                    | Ir.Oimm _ | Ir.Ofimm _ -> ());
                    check_use a ~tolerated:true)
                  args
              | Ir.Ifieldaddr (_, base, _, _) -> check_use base ~tolerated:false
              | Ir.Imov (_, o) -> check_use o ~tolerated:false
              | Ir.Ibin (_, _, _, a, b) ->
                (* comparing field addresses is harmless; arithmetic is
                   not — be conservative and flag both *)
                check_use a ~tolerated:false;
                check_use b ~tolerated:false
              | Ir.Iun (_, _, _, a) -> check_use a ~tolerated:false
              | Ir.Icast (_, _, _, v, _) -> check_use v ~tolerated:false
              | Ir.Iptradd (_, b2, idx, _) ->
                check_use b2 ~tolerated:false;
                check_use idx ~tolerated:false
              | Ir.Ifree o -> check_use o ~tolerated:false
              | Ir.Imemset (d, v, n, _) ->
                check_use d ~tolerated:false;
                check_use v ~tolerated:false;
                check_use n ~tolerated:false
              | Ir.Imemcpy (d, sr, n, _) ->
                check_use d ~tolerated:false;
                check_use sr ~tolerated:false;
                check_use n ~tolerated:false
              | Ir.Ialloc (_, k, n, _) -> (
                check_use n ~tolerated:false;
                match k with
                | Ir.Arealloc o -> check_use o ~tolerated:false
                | Ir.Amalloc | Ir.Acalloc -> ())
              | Ir.Iaddrglob _ | Ir.Iaddrlocal _ | Ir.Iaddrstr _
              | Ir.Iaddrfunc _ ->
                ()))
            b.instrs;
          (* terminator uses *)
          match b.btermin with
          | Ir.Tbr (Ir.Oreg r, _, _) | Ir.Tret (Some (Ir.Oreg r)) -> (
            match Hashtbl.find_opt fieldaddr_of r with
            | Some (s, _, def_iid, def_loc) ->
              mark t s ATKN ~fn:f.fname ~iid:def_iid ~loc:def_loc
                ~why:
                  (Printf.sprintf
                     "address of a field of struct '%s' flows into a \
                      branch or return"
                     s)
            | None -> ())
          | Ir.Tbr _ | Ir.Tret _ | Ir.Tjmp _ -> ())
        f.fblocks)
    prog.funcs;

  (* --- IPA aggregation: escapes to functions outside the scope --- *)
  Hashtbl.iter
    (fun s (i : info) ->
      List.iter
        (fun callee ->
          if not (Hashtbl.mem defined callee) then
            mark t s LIBC
              ~why:
                (Printf.sprintf
                   "struct '%s' escapes to '%s', outside the compilation \
                    scope"
                   s callee))
        i.attrs.escapes)
    t.table;
  t

let reasons t s = (info t s).invalid

let witnesses t s =
  match Hashtbl.find_opt t.table s with
  | Some i -> i.witnesses
  | None -> []

let witnesses_for t s r =
  List.filter (fun w -> w.w_reason = r) (witnesses t s)

let is_legal ?(relax = false) t s =
  match Hashtbl.find_opt t.table s with
  | None -> false
  | Some i ->
    if relax then List.for_all relaxable i.invalid else i.invalid = []

let types t =
  Hashtbl.fold (fun s _ acc -> s :: acc) t.table [] |> List.sort String.compare

let legal_count ?relax t =
  List.length (List.filter (fun s -> is_legal ?relax t s) (types t))
