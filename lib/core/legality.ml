type reason =
  | CSTT | CSTF | ATKN | LIBC | IND | SMAL | MSET | NEST | SIZEOF

let reason_name = function
  | CSTT -> "CSTT" | CSTF -> "CSTF" | ATKN -> "ATKN" | LIBC -> "LIBC"
  | IND -> "IND" | SMAL -> "SMAL" | MSET -> "MSET" | NEST -> "NEST"
  | SIZEOF -> "SIZEOF"

type attrs = {
  mutable has_global_var : bool;
  mutable has_local_var : bool;
  mutable has_global_ptr : bool;
  mutable has_local_ptr : bool;
  mutable has_static_array : bool;
  mutable dyn_alloc : bool;
  mutable freed : bool;
  mutable realloced : bool;
  mutable global_ptrs : string list;
  mutable alloc_sites : (string * int) list;
  mutable escapes : string list;
  mutable addr_passed_fields : int list;
}

type info = { mutable invalid : reason list; attrs : attrs }

type t = { table : (string, info) Hashtbl.t }

let fresh_attrs () =
  {
    has_global_var = false; has_local_var = false; has_global_ptr = false;
    has_local_ptr = false; has_static_array = false; dyn_alloc = false;
    freed = false; realloced = false; global_ptrs = []; alloc_sites = [];
    escapes = []; addr_passed_fields = [];
  }

let info t s = Hashtbl.find t.table s

let mark t s r =
  match Hashtbl.find_opt t.table s with
  | Some i -> if not (List.mem r i.invalid) then i.invalid <- r :: i.invalid
  | None -> ()

let attrs_of t s =
  match Hashtbl.find_opt t.table s with
  | Some i -> Some i.attrs
  | None -> None

(* outermost struct mentioned by a type, seen through pointers *)
let rec pointee_struct = function
  | Irty.Ptr u -> pointee_struct u
  | Irty.Struct s -> Some s
  | Irty.Array (u, _) -> pointee_struct u
  | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long | Irty.Float
  | Irty.Double | Irty.Funptr ->
    None

let relaxable = function
  | CSTT | CSTF | ATKN -> true
  | LIBC | IND | SMAL | MSET | NEST | SIZEOF -> false

let analyze ?(smal_threshold = 1) (prog : Ir.program) : t =
  let t = { table = Hashtbl.create 32 } in
  Structs.iter
    (fun d -> Hashtbl.replace t.table d.sname { invalid = []; attrs = fresh_attrs () })
    prog.structs;
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.fname ()) prog.funcs;

  (* --- declaration attributes and NEST --- *)
  Structs.iter
    (fun d ->
      Array.iter
        (fun (fld : Structs.field) ->
          match fld.ty with
          | Irty.Struct inner | Irty.Array (Irty.Struct inner, _) ->
            (* by-value nesting invalidates both the nested type and the
               container (implementation limitation, as in the paper) *)
            mark t inner NEST;
            mark t d.sname NEST
          | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
          | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _
          | Irty.Funptr ->
            ())
        d.fields)
    prog.structs;
  List.iter
    (fun (name, ty, _) ->
      match ty with
      | Irty.Struct s ->
        Option.iter (fun a -> a.has_global_var <- true) (attrs_of t s)
      | Irty.Ptr (Irty.Struct s) ->
        Option.iter
          (fun a ->
            a.has_global_ptr <- true;
            a.global_ptrs <- a.global_ptrs @ [ name ])
          (attrs_of t s)
      | Irty.Array (Irty.Struct s, _) ->
        Option.iter (fun a -> a.has_static_array <- true) (attrs_of t s)
      | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
      | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _ | Irty.Funptr ->
        ())
    prog.globals;

  (* --- sizeof escapes recorded during lowering --- *)
  List.iter (fun (s, _) -> mark t s SIZEOF) prog.psizeof_uses;

  (* --- FE pass over every function --- *)
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (name, ty) ->
          ignore name;
          match ty with
          | Irty.Struct s ->
            Option.iter (fun a -> a.has_local_var <- true) (attrs_of t s)
          | Irty.Ptr (Irty.Struct s) ->
            Option.iter (fun a -> a.has_local_ptr <- true) (attrs_of t s)
          | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
          | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _
          | Irty.Funptr ->
            ())
        f.flocals;
      let regty = Regty.infer prog f in
      let ty_of = function
        | Ir.Oreg r -> regty.(r)
        | Ir.Oimm _ -> Some Irty.Long
        | Ir.Ofimm _ -> Some Irty.Double
      in
      (* alloc results (tracked through casts by [from_alloc]) *)
      let alloc_elem : (Ir.reg, Irty.t) Hashtbl.t = Hashtbl.create 16 in
      (* uses of field addresses *)
      let fieldaddr_of : (Ir.reg, string * int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              (match i.idesc with
              | Ir.Ialloc (r, kind, count, elem) ->
                Hashtbl.replace alloc_elem r elem;
                (match elem with
                | Irty.Struct s ->
                  Option.iter
                    (fun a ->
                      a.dyn_alloc <- true;
                      a.alloc_sites <- a.alloc_sites @ [ (f.fname, i.iid) ];
                      match kind with
                      | Ir.Arealloc _ -> a.realloced <- true
                      | Ir.Amalloc | Ir.Acalloc -> ())
                    (attrs_of t s);
                  (match count with
                  | Ir.Oimm n when Int64.to_int n <= smal_threshold ->
                    mark t s SMAL
                  | Ir.Oimm _ | Ir.Oreg _ | Ir.Ofimm _ -> ())
                | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
                | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _
                | Irty.Funptr ->
                  ())
              | Ir.Icast (r, from_, to_, v, ci) -> (
                (* propagate alloc tracking through the cast *)
                (match v with
                | Ir.Oreg vr -> (
                  match Hashtbl.find_opt alloc_elem vr with
                  | Some e -> Hashtbl.replace alloc_elem r e
                  | None -> ())
                | Ir.Oimm _ | Ir.Ofimm _ -> ());
                (match to_ with
                | Irty.Ptr (Irty.Struct s) ->
                  if v = Ir.Oimm 0L then ()
                  (* a null pointer constant is not a type-unsafe use *)
                  else if ci.from_alloc then begin
                    (* tolerate casts of matching allocation results *)
                    match v with
                    | Ir.Oreg vr -> (
                      match Hashtbl.find_opt alloc_elem vr with
                      | Some (Irty.Struct s') when String.equal s s' -> ()
                      | Some (Irty.Struct _) -> mark t s CSTT
                      | Some _ ->
                        (* untyped allocation (e.g. malloc(16)): the FE
                           cannot retarget the site; counts as CSTT like
                           the paper's void* wrapper case *)
                        mark t s CSTT
                      | None -> mark t s CSTT)
                    | Ir.Oimm _ | Ir.Ofimm _ -> mark t s CSTT
                  end
                  else mark t s CSTT
                | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
                | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _
                | Irty.Struct _ | Irty.Funptr ->
                  ());
                match from_ with
                | Irty.Ptr (Irty.Struct s) ->
                  if not ci.from_alloc then mark t s CSTF
                | Irty.Void | Irty.Char | Irty.Short | Irty.Int | Irty.Long
                | Irty.Float | Irty.Double | Irty.Ptr _ | Irty.Array _
                | Irty.Struct _ | Irty.Funptr ->
                  ())
              | Ir.Ifieldaddr (r, _, s, fi) ->
                Hashtbl.replace fieldaddr_of r (s, fi)
              | Ir.Ifree o -> (
                match Regty.struct_ptr (ty_of o) with
                | Some s -> Option.iter (fun a -> a.freed <- true) (attrs_of t s)
                | None -> ())
              | Ir.Imemset (_, _, _, tag) | Ir.Imemcpy (_, _, _, tag) ->
                Option.iter (fun s -> mark t s MSET) tag
              | Ir.Icall (_, callee, args) ->
                List.iter
                  (fun arg ->
                    match pointee_struct (Option.value ~default:Irty.Void (ty_of arg)) with
                    | None -> ()
                    | Some s -> (
                      match callee with
                      | Ir.Cdirect callee_name ->
                        if Hashtbl.mem defined callee_name then
                          Option.iter
                            (fun a ->
                              if not (List.mem callee_name a.escapes) then
                                a.escapes <- callee_name :: a.escapes)
                            (attrs_of t s)
                        else mark t s LIBC
                      | Ir.Cbuiltin _ | Ir.Cextern _ -> mark t s LIBC
                      | Ir.Cindirect _ -> mark t s IND))
                  args
              | Ir.Imov _ | Ir.Ibin _ | Ir.Iun _ | Ir.Iload _ | Ir.Istore _
              | Ir.Iaddrglob _ | Ir.Iaddrlocal _ | Ir.Iaddrstr _
              | Ir.Iaddrfunc _ | Ir.Iptradd _ ->
                ());
              (* ATKN: a field address used for anything except being the
                 address operand of a load/store, or a call argument *)
              let check_use (o : Ir.operand) ~tolerated =
                match o with
                | Ir.Oreg r -> (
                  match Hashtbl.find_opt fieldaddr_of r with
                  | Some (s, _) -> if not tolerated then mark t s ATKN
                  | None -> ())
                | Ir.Oimm _ | Ir.Ofimm _ -> ()
              in
              (match i.idesc with
              | Ir.Iload (_, addr, _, _) -> check_use addr ~tolerated:true
              | Ir.Istore (addr, v, _, _) ->
                check_use addr ~tolerated:true;
                check_use v ~tolerated:false
              | Ir.Icall (_, _, args) ->
                (* address of a field passed to a function: tolerated under
                   the paper's assumption about callee behaviour — but the
                   field can no longer be proved dead *)
                List.iter
                  (fun a ->
                    (match a with
                    | Ir.Oreg r -> (
                      match Hashtbl.find_opt fieldaddr_of r with
                      | Some (s, fi) ->
                        Option.iter
                          (fun at ->
                            if not (List.mem fi at.addr_passed_fields) then
                              at.addr_passed_fields <-
                                fi :: at.addr_passed_fields)
                          (attrs_of t s)
                      | None -> ())
                    | Ir.Oimm _ | Ir.Ofimm _ -> ());
                    check_use a ~tolerated:true)
                  args
              | Ir.Ifieldaddr (_, base, _, _) -> check_use base ~tolerated:false
              | Ir.Imov (_, o) -> check_use o ~tolerated:false
              | Ir.Ibin (_, _, _, a, b) ->
                (* comparing field addresses is harmless; arithmetic is
                   not — be conservative and flag both *)
                check_use a ~tolerated:false;
                check_use b ~tolerated:false
              | Ir.Iun (_, _, _, a) -> check_use a ~tolerated:false
              | Ir.Icast (_, _, _, v, _) -> check_use v ~tolerated:false
              | Ir.Iptradd (_, b2, idx, _) ->
                check_use b2 ~tolerated:false;
                check_use idx ~tolerated:false
              | Ir.Ifree o -> check_use o ~tolerated:false
              | Ir.Imemset (d, v, n, _) ->
                check_use d ~tolerated:false;
                check_use v ~tolerated:false;
                check_use n ~tolerated:false
              | Ir.Imemcpy (d, sr, n, _) ->
                check_use d ~tolerated:false;
                check_use sr ~tolerated:false;
                check_use n ~tolerated:false
              | Ir.Ialloc (_, k, n, _) -> (
                check_use n ~tolerated:false;
                match k with
                | Ir.Arealloc o -> check_use o ~tolerated:false
                | Ir.Amalloc | Ir.Acalloc -> ())
              | Ir.Iaddrglob _ | Ir.Iaddrlocal _ | Ir.Iaddrstr _
              | Ir.Iaddrfunc _ ->
                ()))
            b.instrs;
          (* terminator uses *)
          match b.btermin with
          | Ir.Tbr (Ir.Oreg r, _, _) | Ir.Tret (Some (Ir.Oreg r)) -> (
            match Hashtbl.find_opt fieldaddr_of r with
            | Some (s, _) -> mark t s ATKN
            | None -> ())
          | Ir.Tbr _ | Ir.Tret _ | Ir.Tjmp _ -> ())
        f.fblocks)
    prog.funcs;

  (* --- IPA aggregation: escapes to functions outside the scope --- *)
  Hashtbl.iter
    (fun s (i : info) ->
      List.iter
        (fun callee -> if not (Hashtbl.mem defined callee) then mark t s LIBC)
        i.attrs.escapes)
    t.table;
  t

let reasons t s = (info t s).invalid

let is_legal ?(relax = false) t s =
  match Hashtbl.find_opt t.table s with
  | None -> false
  | Some i ->
    if relax then List.for_all relaxable i.invalid else i.invalid = []

let types t =
  Hashtbl.fold (fun s _ acc -> s :: acc) t.table [] |> List.sort String.compare

let legal_count ?relax t =
  List.length (List.filter (fun s -> is_legal ?relax t s) (types t))
