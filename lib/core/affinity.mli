(** Profitability analysis: affinity groups, the per-type affinity graph,
    field hotness, and read/write counts — §2.3 of the paper.

    "Two fields are affine to each other when they are accessed close to
    each other in the IR... Our granularity for closeness is the loop
    level." Per loop, the fields of each type referenced in blocks whose
    innermost loop is that loop form a weighted affinity group; the group's
    weight is the loop header's execution weight under the chosen weighting
    scheme. Field references in remaining straight-line code form one more
    group weighted with the routine entry weight. Groups with identical
    field sets merge by adding weights.

    In the (conceptual) IPA phase an affinity graph is built per type:
    nodes are fields, a group of two or more fields contributes its weight
    to every pairwise edge, and a singleton group contributes a self-edge —
    which is why the advisor's output shows fields affine to themselves.

    Field hotness follows the paper's primary definition — "computed from
    the aggregated total estimated accesses to a field": each group
    contributes its weight once to each member field. (Summing incident
    edge weights instead would amplify members of large groups
    quadratically in the group size; for singleton groups the two
    definitions coincide through the self-edge.) Read and write counts are
    accumulated per reference, weighted by the containing block's
    weight. *)

type graph = {
  gtyp : string;
  nfields : int;
  edges : (int * int, float) Hashtbl.t;  (** key (i, j) with i <= j *)
  hotness : float array;
  reads : float array;
  writes : float array;
}

type t

val analyze : Ir.program -> Slo_profile.Weights.block_weights -> t

val graph : t -> string -> graph option
val graphs : t -> graph list
(** All graphs sorted by type hotness, hottest first. *)

val edge_weight : graph -> int -> int -> float
(** Symmetric lookup; 0 if absent. *)

val type_hotness : graph -> float
(** Sum of field hotness — the advisor's type ranking key. *)

val relative_hotness : graph -> float array
(** Field hotness rescaled to max = 100 (the paper's "relative hotness in
    percent relative to the hottest field"). *)

val groups_of_type : t -> string -> (int list * float) list
(** The merged affinity groups (sorted field indices, weight) — exposed for
    tests and the advisor. *)
