(** The BE transformations of §2.1: structure splitting, structure peeling,
    dead field removal and field reordering.

    - {b Splitting} creates [S__hot] (surviving hot fields, reordered, plus
      a [__link] pointer) and [S__cold]; every allocation site of [S]
      allocates both arrays and runs an inserted link-initialisation loop
      (Figure 1b); cold-field accesses go through the link pointer, [free]
      frees both parts.
    - {b Peeling} creates one single-field record per live field and one
      companion global pointer per (anchor global, field); allocation sites
      fan out into per-piece allocations, and access chains
      [load P; ptradd i; fieldaddr f] are retargeted to the piece pointer
      (Figure 1c) — no link pointers.
    - {b Dead field removal} drops dead/unused fields from the rebuilt
      types and deletes stores to them.
    - {b Field reordering} is applied when a type is rebuilt: surviving hot
      fields are emitted in the order the plan specifies.

    All transformations mutate the program in place (transform a copy, see
    {!Ircopy.copy_program}) and finish with a {!Dce} cleanup. The original
    struct definition is removed from the table so that an access the
    rewrite missed fails loudly in the VM. *)

type split_spec = {
  s_typ : string;
  s_hot : int list;   (** surviving hot fields, in desired new order *)
  s_cold : int list;  (** fields split out behind the link pointer *)
  s_dead : int list;  (** fields removed entirely *)
}

type peel_spec = {
  p_typ : string;
  p_live : int list;  (** fields that become single-field pieces *)
  p_dead : int list;
  p_globals : string list;  (** the anchor global pointers *)
}

type rebuild_spec = {
  r_typ : string;
  r_order : int list;  (** surviving fields in new declaration order *)
  r_dead : int list;
}

type pad_spec = {
  pd_typ : string;
  pd_bytes : int;  (** trailing pad bytes, > 0 *)
}

type pool_spec = {
  po_typ : string;
  po_links : int list;  (** self-link field indices to factor out *)
}

val link_field_name : string
(** ["__link"] *)

val pad_field_name : string
(** ["__pad"] *)

val hot_name : string -> string
val cold_name : string -> string
val piece_name : string -> string -> string
val piece_global : string -> string -> string

val split : Ir.program -> split_spec -> unit
val peel : Ir.program -> peel_spec -> unit
val rebuild : Ir.program -> rebuild_spec -> unit

val pad : Ir.program -> pad_spec -> unit
(** Append a [pd_bytes]-byte [char] array field named {!pad_field_name}
    to the struct — the autotuner's padding classes (rounding elements up
    to a power of two or a cache line so array elements stop straddling
    line boundaries). No access rewriting is needed: existing field
    indices are unchanged and allocation sizes follow the layout. Padding
    an already-padded struct replaces the previous pad field rather than
    stacking a second one. Raises [Invalid_argument] for [pd_bytes <= 0]
    or an unknown struct. *)

val pool_struct_name : string -> string
(** [s ^ "__pool"] — the factored non-link ("data") struct. *)

val pool_anchor_name : string -> string
(** ["__pool_" ^ target] — the global anchoring a pool piece's base. *)

val pool : Ir.program -> pool_spec -> unit
(** Rewrite the type's single allocation site into a packed, index-linked
    pool (SoCal-style structure-of-arrays factorization of the link
    fields): the data fields stay together in {!pool_struct_name}, each
    link field becomes its own parallel single-field struct
    ({!piece_name}), all allocated with the original element count and
    anchored in fresh [__pool_*] globals. Every [struct S *] value in the
    program is retyped to a plain element index ([long] — same size, so
    enclosing layouts are unchanged): the allocation result becomes index
    0, struct-pointer [ptradd] becomes integer addition, and each field
    access indexes the matching parallel array through its anchor. Field
    names are preserved so the oracle's per-field access conservation
    keeps holding. Raises [Invalid_argument] unless the spec names an
    existing struct, the link indices are self links, and the program has
    exactly one allocation site of the type; the deeper uniqueness
    conditions are {!Shape.analyze}'s job, and every rewrite is expected
    to be re-proven by the differential oracle. *)

val peel_feasible : Ir.program -> typ:string -> globals:string list -> bool
(** Structural feasibility of peeling: every access to the type must be a
    block-local chain anchored at one of the given global pointers, every
    allocation must flow straight into one of them, and the type must not
    be referenced from any other storage (locals, parameters, returns,
    other structs' fields). Chains that cross basic blocks make the type
    non-peelable — the framework then falls back to splitting, mirroring
    the paper's "implementation limitations". *)
