module W = Slo_profile.Weights

(* ---------------- schemes ---------------- *)

let scheme_name s = String.lowercase_ascii (W.name s)
let scheme_assoc = List.map (fun s -> (scheme_name s, s)) W.all

let scheme_of_string name =
  let lname = String.lowercase_ascii name in
  match List.assoc_opt lname scheme_assoc with
  | Some s -> Ok s
  | None ->
    Error
      (Printf.sprintf "unknown scheme %S (expected one of %s)" name
         (String.concat ", " (List.map fst scheme_assoc)))

(* ---------------- plans ---------------- *)

(* one colon-separated record per plan: kind:TYPE:field=value:...
   Field-index lists are comma-separated; an empty list encodes as an
   empty value so every field is always present and positional. *)

let ints xs = String.concat "," (List.map string_of_int xs)

let plan_to_string (p : Heuristics.plan) =
  match p with
  | Heuristics.Split s ->
    Printf.sprintf "split:%s:hot=%s:cold=%s:dead=%s" s.Transform.s_typ
      (ints s.s_hot) (ints s.s_cold) (ints s.s_dead)
  | Heuristics.Peel s ->
    Printf.sprintf "peel:%s:live=%s:dead=%s:globals=%s" s.Transform.p_typ
      (ints s.p_live) (ints s.p_dead)
      (String.concat "," s.p_globals)
  | Heuristics.Rebuild s ->
    Printf.sprintf "rebuild:%s:order=%s:dead=%s" s.Transform.r_typ
      (ints s.r_order) (ints s.r_dead)
  | Heuristics.Pad s ->
    Printf.sprintf "pad:%s:bytes=%d" s.Transform.pd_typ s.pd_bytes
  | Heuristics.Pool s ->
    Printf.sprintf "pool:%s:links=%s" s.Transform.po_typ (ints s.po_links)

let ( let* ) = Result.bind

(* [fieldv ~plan key part] expects [part] to be "key=value" *)
let fieldv ~plan key part =
  match String.index_opt part '=' with
  | Some i when String.sub part 0 i = key ->
    Ok (String.sub part (i + 1) (String.length part - i - 1))
  | _ -> Error (Printf.sprintf "plan %S: expected field %S" plan key)

let int_list ~plan key v =
  if v = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: tl -> (
        match int_of_string_opt s with
        | Some i -> go (i :: acc) tl
        | None ->
          Error
            (Printf.sprintf "plan %S: field %S: %S is not an int" plan key s))
    in
    go [] (String.split_on_char ',' v)

let name_list v = if v = "" then [] else String.split_on_char ',' v

let plan_of_string str =
  let plan = str in
  match String.split_on_char ':' str with
  | [ "split"; typ; hot; cold; dead ] ->
    let* hot = fieldv ~plan "hot" hot in
    let* cold = fieldv ~plan "cold" cold in
    let* dead = fieldv ~plan "dead" dead in
    let* s_hot = int_list ~plan "hot" hot in
    let* s_cold = int_list ~plan "cold" cold in
    let* s_dead = int_list ~plan "dead" dead in
    Ok (Heuristics.Split { Transform.s_typ = typ; s_hot; s_cold; s_dead })
  | [ "peel"; typ; live; dead; globals ] ->
    let* live = fieldv ~plan "live" live in
    let* dead = fieldv ~plan "dead" dead in
    let* globals = fieldv ~plan "globals" globals in
    let* p_live = int_list ~plan "live" live in
    let* p_dead = int_list ~plan "dead" dead in
    Ok
      (Heuristics.Peel
         { Transform.p_typ = typ; p_live; p_dead;
           p_globals = name_list globals })
  | [ "rebuild"; typ; order; dead ] ->
    let* order = fieldv ~plan "order" order in
    let* dead = fieldv ~plan "dead" dead in
    let* r_order = int_list ~plan "order" order in
    let* r_dead = int_list ~plan "dead" dead in
    Ok (Heuristics.Rebuild { Transform.r_typ = typ; r_order; r_dead })
  | [ "pad"; typ; bytes ] -> (
    let* bytes = fieldv ~plan "bytes" bytes in
    match int_of_string_opt bytes with
    | Some pd_bytes when pd_bytes > 0 ->
      Ok (Heuristics.Pad { Transform.pd_typ = typ; pd_bytes })
    | Some _ -> Error (Printf.sprintf "plan %S: bytes must be > 0" plan)
    | None -> Error (Printf.sprintf "plan %S: bytes is not an int" plan))
  | [ "pool"; typ; links ] -> (
    let* links = fieldv ~plan "links" links in
    let* po_links = int_list ~plan "links" links in
    match po_links with
    | [] -> Error (Printf.sprintf "plan %S: links must be non-empty" plan)
    | _ -> Ok (Heuristics.Pool { Transform.po_typ = typ; po_links }))
  | kind :: _ when List.mem kind [ "split"; "peel"; "rebuild"; "pad"; "pool" ] ->
    Error (Printf.sprintf "plan %S: wrong field count for %S" plan kind)
  | kind :: _ -> Error (Printf.sprintf "plan %S: unknown kind %S" plan kind)
  | [] -> Error "empty plan string"
