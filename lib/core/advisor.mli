(** The advisory tool of §3: annotated structure definitions combining
    static compiler analysis with runtime d-cache measurements.

    "IPA prints the annotated type layouts for all structure types, sorted
    by the hotness of the type... For each type, its name, total number of
    fields, and total size is shown... It follows the list of fields and
    their attributes in field declaration order. For each field, its
    relative hotness is shown in percent and as an absolute weight... We
    distinguish between read and write references to a field and indicate
    their relation with a bar... The d-cache miss count and average latency
    in cycles attributed to the field are shown next. Finally, the
    affinities to other fields are shown... Only uni-directional edges are
    printed."

    {!report} renders that format (Figure 2); {!vcg} emits a control file
    for the VCG graph visualisation tool with line thickness scaled by
    affinity weight. *)

type field_dcache = { fd_misses : int; fd_latency_avg : float }

type t

val build :
  Ir.program ->
  Legality.t ->
  Affinity.t ->
  decisions:Heuristics.decision list ->
  dcache:(int, Slo_profile.Feedback.dstats) Hashtbl.t option ->
  t
(** [dcache] maps instruction ids to matched PMU samples (from
    {!Slo_profile.Matching}); pass [None] for compilations without d-cache
    feedback — the report then omits the miss/latency lines. *)

val report : ?only:string list -> t -> string
(** The annotated layouts, hottest type first. [only] restricts to the
    named types. *)

val field_dcache : t -> string -> int -> field_dcache
(** Aggregated d-cache statistics attributed to one field (zeros when no
    feedback was supplied). *)

val vcg : t -> string -> string option
(** VCG control file for one type's affinity graph; [None] for unknown
    types. *)
