module Weights = Slo_profile.Weights

type graph = {
  gtyp : string;
  nfields : int;
  edges : (int * int, float) Hashtbl.t;
  hotness : float array;
  reads : float array;
  writes : float array;
}

type t = {
  by_type : (string, graph) Hashtbl.t;
  groups : (string, (int list * float) list) Hashtbl.t;
}

module FieldSet = Set.Make (Int)

let analyze (prog : Ir.program) (bw : Weights.block_weights) : t =
  (* accumulated merged groups: (type, field set) -> weight *)
  let group_acc : (string * FieldSet.t, float) Hashtbl.t = Hashtbl.create 64 in
  let add_group typ set w =
    if not (FieldSet.is_empty set) && w > 0.0 then begin
      let key = (typ, set) in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt group_acc key) in
      Hashtbl.replace group_acc key (prev +. w)
    end
  in
  let nfields_of = Hashtbl.create 16 in
  Structs.iter
    (fun d -> Hashtbl.replace nfields_of d.sname (Array.length d.fields))
    prog.structs;
  let reads_acc : (string * int, float) Hashtbl.t = Hashtbl.create 64 in
  let writes_acc : (string * int, float) Hashtbl.t = Hashtbl.create 64 in
  let bump tbl key w =
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (prev +. w)
  in
  List.iter
    (fun (f : Ir.func) ->
      let weights =
        Option.value
          ~default:(Array.make f.next_block 0.0)
          (Hashtbl.find_opt bw f.fname)
      in
      let weight_of b = if b < Array.length weights then weights.(b) else 0.0 in
      let cfg = Cfg.build f in
      let forest = Loop.compute cfg in
      (* field references per collection region: per type, the set of
         referenced fields *)
      let region_refs : (string, FieldSet.t) Hashtbl.t = Hashtbl.create 8 in
      let note_ref typ fi =
        let prev =
          Option.value ~default:FieldSet.empty (Hashtbl.find_opt region_refs typ)
        in
        Hashtbl.replace region_refs typ (FieldSet.add fi prev)
      in
      let scan_block (b : Ir.block) =
        let w = weight_of b.bid in
        List.iter
          (fun (i : Ir.instr) ->
            match i.idesc with
            | Ir.Ifieldaddr (_, _, s, fi) -> note_ref s fi
            | Ir.Iload (_, _, _, Some a) ->
              bump reads_acc (a.astruct, a.afield) w
            | Ir.Istore (_, _, _, Some a) ->
              bump writes_acc (a.astruct, a.afield) w
            | Ir.Imov _ | Ir.Ibin _ | Ir.Iun _ | Ir.Icast _
            | Ir.Iload (_, _, _, None) | Ir.Istore (_, _, _, None)
            | Ir.Iaddrglob _ | Ir.Iaddrlocal _ | Ir.Iaddrstr _
            | Ir.Iaddrfunc _ | Ir.Iptradd _ | Ir.Icall _ | Ir.Ialloc _
            | Ir.Ifree _ | Ir.Imemset _ | Ir.Imemcpy _ ->
              ())
          b.instrs
      in
      let flush_region w =
        Hashtbl.iter (fun typ set -> add_group typ set w) region_refs;
        Hashtbl.reset region_refs
      in
      (* one region per loop: blocks whose innermost loop is that loop *)
      List.iter
        (fun (l : Loop.loop) ->
          List.iter
            (fun bid -> if Cfg.reachable cfg bid then scan_block cfg.blocks.(bid))
            l.body;
          flush_region (weight_of l.header))
        (Loop.all_loops forest);
      (* straight-line region: reachable blocks outside all loops, weighted
         with the routine entry weight *)
      Array.iter
        (fun bid ->
          match Loop.innermost forest bid with
          | None -> scan_block cfg.blocks.(bid)
          | Some _ -> ())
        cfg.rpo;
      let entry_w = weight_of (Cfg.entry cfg) in
      flush_region entry_w)
    prog.funcs;
  (* IPA: build the affinity graph per type *)
  let by_type = Hashtbl.create 16 in
  let groups = Hashtbl.create 16 in
  let graph_of typ =
    match Hashtbl.find_opt by_type typ with
    | Some g -> g
    | None ->
      let nfields = Option.value ~default:0 (Hashtbl.find_opt nfields_of typ) in
      let g =
        {
          gtyp = typ; nfields; edges = Hashtbl.create 16;
          hotness = Array.make nfields 0.0;
          reads = Array.make nfields 0.0;
          writes = Array.make nfields 0.0;
        }
      in
      Hashtbl.replace by_type typ g;
      g
  in
  (* make sure every known type gets a (possibly empty) graph *)
  Hashtbl.iter (fun typ _ -> ignore (graph_of typ)) nfields_of;
  Hashtbl.iter
    (fun (typ, set) w ->
      let g = graph_of typ in
      let fields = FieldSet.elements set in
      let add_edge i j =
        let key = (min i j, max i j) in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt g.edges key) in
        Hashtbl.replace g.edges key (prev +. w)
      in
      (match fields with
      | [ f ] -> add_edge f f (* singleton groups carry self-affinity *)
      | fs ->
        List.iteri
          (fun i a -> List.iteri (fun j b -> if i < j then add_edge a b) fs)
          fs);
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups typ) in
      Hashtbl.replace groups typ ((fields, w) :: prev))
    group_acc;
  (* hotness = aggregated estimated accesses: each group contributes its
     weight once to every member field (pairwise edges would otherwise
     amplify fields of large groups quadratically) *)
  Hashtbl.iter
    (fun (typ, set) w ->
      let g = graph_of typ in
      FieldSet.iter
        (fun fi -> if fi < g.nfields then g.hotness.(fi) <- g.hotness.(fi) +. w)
        set)
    group_acc;
  Hashtbl.iter
    (fun (typ, fi) w ->
      let g = graph_of typ in
      if fi < g.nfields then g.reads.(fi) <- w)
    reads_acc;
  Hashtbl.iter
    (fun (typ, fi) w ->
      let g = graph_of typ in
      if fi < g.nfields then g.writes.(fi) <- w)
    writes_acc;
  { by_type; groups }

let graph t typ = Hashtbl.find_opt t.by_type typ

let type_hotness g = Slo_util.Stats.sum g.hotness

let graphs t =
  Hashtbl.fold (fun _ g acc -> g :: acc) t.by_type []
  |> List.sort (fun a b -> compare (type_hotness b) (type_hotness a))

let edge_weight g i j =
  Option.value ~default:0.0 (Hashtbl.find_opt g.edges (min i j, max i j))

let relative_hotness g = Slo_util.Stats.relative_percent g.hotness

let groups_of_type t typ =
  Option.value ~default:[] (Hashtbl.find_opt t.groups typ)
  |> List.sort (fun (_, a) (_, b) -> compare b a)
