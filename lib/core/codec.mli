(** The one scheme / plan string codec.

    Scheme and plan spellings cross three process boundaries — the CLI
    flags ([bin/slopt.ml]), the daemon wire protocol
    ([lib/server/protocol.ml]) and the bench harnesses ([bench/]) — and
    used to be parsed independently in each. This module is the single
    source of truth; everything round-trips
    ([of_string (to_string x) = Ok x]), which the unit tests pin.

    {2 Schemes}

    A scheme is spelled as its {!Slo_profile.Weights.name} lowercased:
    [pbo], [ppbo], [spbo], [ispbo], [ispbo.no], [ispbo.w], [dmiss],
    [dlat], [dmiss.no]. Parsing is case-insensitive.

    {2 Plans}

    A plan is one colon-separated record, [kind:TYPE:field=value:...],
    with field-index lists comma-separated (empty list = empty value):

    {[ split:node:hot=2,0:cold=1,3:dead=4
       peel:node:live=0,1:dead=:globals=arr,head
       rebuild:node:order=1,0:dead=2
       pad:node__hot:bytes=8
       pool:node:links=2,3,4,5 ]}

    Struct and global names are C identifiers, so the separators are
    unambiguous. The encoding is canonical: the autotuner's determinism
    gate compares found plans across [--jobs] values by these strings. *)

val scheme_name : Slo_profile.Weights.scheme -> string
(** The canonical wire/CLI spelling (lowercase). *)

val scheme_of_string : string -> (Slo_profile.Weights.scheme, string) result
(** Case-insensitive; [Error] names the unknown spelling and lists the
    valid ones. *)

val scheme_assoc : (string * Slo_profile.Weights.scheme) list
(** [(canonical spelling, scheme)] for every scheme, in
    {!Slo_profile.Weights.all} order — the CLI builds its [Arg.enum]
    from this. *)

val plan_to_string : Heuristics.plan -> string

val plan_of_string : string -> (Heuristics.plan, string) result
(** Inverse of {!plan_to_string}. [Error] is a human-readable reason
    (unknown kind, malformed field, trailing garbage). *)
