type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity. Emitting [null] instead (the old
   behaviour) produces a document the strict parser rejects where a
   number is expected, so the round-trip fails at the *consumer* —
   far from the producer that computed the bad value. Raise at the
   producer instead. *)
let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then
    invalid_arg
      (Printf.sprintf "Json.to_string: non-finite float %h has no JSON \
                       representation" f)
  else
    let s = Printf.sprintf "%.6g" f in
    (* make sure it still reads back as a float, not an int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape_string buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          emit (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "at byte %d: %s" cur.pos msg))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> fail cur (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail cur (Printf.sprintf "expected %c, found end of input" c)

let parse_literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string_body cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
      advance cur;
      match peek cur with
      | Some 'n' -> advance cur; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance cur; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance cur; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance cur; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance cur; Buffer.add_char buf '\012'; go ()
      | Some '/' -> advance cur; Buffer.add_char buf '/'; go ()
      | Some '"' -> advance cur; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance cur; Buffer.add_char buf '\\'; go ()
      | Some 'u' ->
        advance cur;
        if cur.pos + 4 > String.length cur.src then fail cur "bad \\u escape";
        let hex = String.sub cur.src cur.pos 4 in
        cur.pos <- cur.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail cur "bad \\u escape"
        in
        (* encode the BMP code point as UTF-8 *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end;
        go ()
      | _ -> fail cur "bad escape")
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    (c >= '0' && c <= '9')
    || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec go () =
    match peek cur with
    | Some c when is_num_char c ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub cur.src start (cur.pos - start) in
  (* JSON forbids leading zeros ("042"); [int_of_string] would accept
     them, and the framing layer depends on strict parses *)
  let body =
    if String.length s > 0 && s.[0] = '-' then
      String.sub s 1 (String.length s - 1)
    else s
  in
  if
    String.length body >= 2
    && body.[0] = '0'
    && (match body.[1] with '0' .. '9' -> true | _ -> false)
  then fail cur (Printf.sprintf "leading zero in number %S" s);
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur (Printf.sprintf "bad number %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail cur (Printf.sprintf "bad number %S" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some '"' -> String (parse_string_body cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let items = ref [ parse_value cur ] in
      skip_ws cur;
      while peek cur = Some ',' do
        advance cur;
        items := parse_value cur :: !items;
        skip_ws cur
      done;
      expect cur ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let field () =
        skip_ws cur;
        let k = parse_string_body cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws cur;
      while peek cur = Some ',' do
        advance cur;
        fields := field () :: !fields;
        skip_ws cur
      done;
      expect cur '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
