(** A minimal JSON tree, emitter and parser — just enough for the bench
    harness's machine-readable [BENCH.json] artifacts, so the repo does
    not grow a dependency for them. Strings are assumed to be plain
    ASCII/UTF-8; the emitter escapes control characters, quotes and
    backslashes, and the parser understands exactly what the emitter
    produces (plus whitespace and [\uXXXX] escapes for the BMP). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Render; [~indent:true] (default) pretty-prints with 2-space
    indentation, which keeps the artifact diffable. Floats are emitted
    with ["%.6g"] and always read back as [Float] (a ".0" is appended
    when needed). Raises [Invalid_argument] on NaN or infinities: JSON
    has no spelling for them, and emitting [null] instead would only
    move the failure to the strict consumer expecting a number —
    producers must emit well-defined values. *)

exception Parse_error of string

val of_string : string -> t
(** Parse exactly one JSON document. Raises {!Parse_error} with a
    position-carrying message on malformed input, on numbers with
    leading zeros, and on {e any} non-whitespace bytes after the
    document — the advice server's length-prefixed framing depends on a
    whole frame being exactly one strict parse. Numbers with a fraction
    or exponent parse as [Float], others as [Int]. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up a key; [None] on absence or on a
    non-object. *)
