(** Monotonic time for durations.

    Latency histograms, request deadlines and throughput measurements
    must not use wall-clock time: an NTP step (or a leap smear) skews
    every percentile and can expire or extend a deadline arbitrarily.
    This module reads [CLOCK_MONOTONIC] through a C stub, so durations
    are immune to wall-clock adjustments. Wall time
    ([Unix.gettimeofday]) remains the right source for timestamps shown
    to humans (a server's [started] time, uptime display).

    The epoch of {!now_ns} is unspecified (on Linux, boot time): only
    differences between two readings are meaningful. *)

val now_ns : unit -> int64
(** Current monotonic time in nanoseconds. Never decreases within a
    process; the absolute value is meaningless. *)

val elapsed_ms : since:int64 -> float
(** [elapsed_ms ~since] is the duration in milliseconds from the
    {!now_ns} reading [since] to now. *)

val span_ms : int64 -> int64 -> float
(** [span_ms t0 t1] is [t1 - t0] in milliseconds. *)
