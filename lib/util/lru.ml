(* A byte-budgeted LRU map: a doubly-linked recency list threaded
   through a hashtable. The list head is most-recently-used, the tail
   is the eviction candidate. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable size : int;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  capacity : int;
  mutable head : ('k, 'v) node option; (* MRU *)
  mutable tail : ('k, 'v) node option; (* LRU *)
  mutable total : int;
  mutable evicted : int;
  mutable promoted : int;
}

let create ~capacity_bytes =
  if capacity_bytes <= 0 then
    invalid_arg "Lru.create: capacity_bytes must be positive";
  {
    tbl = Hashtbl.create 64;
    capacity = capacity_bytes;
    head = None;
    tail = None;
    total = 0;
    evicted = 0;
    promoted = 0;
  }

let length t = Hashtbl.length t.tbl
let bytes t = t.total
let capacity_bytes t = t.capacity
let evictions t = t.evicted
let promotions t = t.promoted

(* unlink [n] from the recency list (it must be in it) *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

(* [Some n != Some n] is always true (a fresh [Some] allocation never
   physically equals another), so the fast-path guard must match on the
   option and compare the nodes themselves *)
let promote t n =
  match t.head with
  | Some h when h == n -> () (* already MRU: leave the list untouched *)
  | _ ->
    unlink t n;
    push_front t n;
    t.promoted <- t.promoted + 1

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    promote t n;
    Some n.value

let mem t k = Hashtbl.mem t.tbl k

let drop t n =
  unlink t n;
  Hashtbl.remove t.tbl n.key;
  t.total <- t.total - n.size

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n -> drop t n

let rec evict_until_fits t need =
  if t.total + need > t.capacity then
    match t.tail with
    | None -> () (* nothing left to evict; need <= capacity guarantees fit *)
    | Some n ->
      drop t n;
      t.evicted <- t.evicted + 1;
      evict_until_fits t need

let add t k v ~bytes =
  if bytes < 0 then invalid_arg "Lru.add: negative size";
  if bytes > t.capacity then false
  else begin
    (* a replacement releases the old entry's budget first and does not
       count as an eviction *)
    (match Hashtbl.find_opt t.tbl k with
    | Some old -> drop t old
    | None -> ());
    evict_until_fits t bytes;
    let n = { key = k; value = v; size = bytes; prev = None; next = None } in
    push_front t n;
    Hashtbl.replace t.tbl k n;
    t.total <- t.total + bytes;
    true
  end

let keys_mru t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
