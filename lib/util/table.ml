type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  cols : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ?title cols = { title; cols; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.cols then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.cols in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (function
      | Sep -> ()
      | Cells cs ->
        List.iteri
          (fun i c -> widths.(i) <- max widths.(i) (String.length c))
          cs)
    rows;
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let aligns = Array.of_list (List.map snd t.cols) in
  let line cells =
    let padded =
      List.mapi (fun i c -> pad aligns.(i) widths.(i) c) cells
    in
    "| " ^ String.concat " | " padded ^ " |\n"
  in
  let sep_line () =
    let dashes =
      Array.to_list (Array.map (fun w -> String.make w '-') widths)
    in
    "|-" ^ String.concat "-|-" dashes ^ "-|\n"
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some s ->
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (line headers);
  Buffer.add_string buf (sep_line ());
  List.iter
    (function
      | Sep -> Buffer.add_string buf (sep_line ())
      | Cells cs -> Buffer.add_string buf (line cs))
    rows;
  Buffer.contents buf

let fpct v = Printf.sprintf "%.1f" v

let fnum v =
  let a = Float.abs v in
  if a >= 1e5 || (a > 0.0 && a < 1e-2) then Printf.sprintf "%.3e" v
  else if Float.is_integer v && a < 1e5 then
    Printf.sprintf "%d" (int_of_float v)
  else Printf.sprintf "%.2f" v
