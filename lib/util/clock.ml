external now_ns : unit -> (int64[@unboxed])
  = "slo_clock_now_ns_byte" "slo_clock_now_ns"
[@@noalloc]

let span_ms t0 t1 = Int64.to_float (Int64.sub t1 t0) /. 1e6
let elapsed_ms ~since = span_ms since (now_ns ())
