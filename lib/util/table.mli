(** Plain-text table rendering for the evaluation harness.

    Produces aligned, pipe-separated tables similar to the ones in the paper
    so that the bench output can be compared against Tables 1-3 visually. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** Append a data row. Raises [Invalid_argument] if the number of cells does
    not match the number of columns. *)

val add_sep : t -> unit
(** Append a horizontal separator row (used before summary rows such as the
    paper's "Average:" line). *)

val render : t -> string
(** Render the table, headers and all rows, as a string ending in a
    newline. *)

val fpct : float -> string
(** Format a percentage value with one decimal, e.g. [20.9]. *)

val fnum : float -> string
(** Format a float compactly: scientific notation with three significant
    digits for large magnitudes (matching the paper's "2.352e+08" style),
    plain otherwise. *)
