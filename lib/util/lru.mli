(** A byte-budgeted LRU map, the backing store for the advice server's
    content-addressed caches.

    Entries carry an explicit byte size supplied at insertion time (the
    cache does not try to guess how big a value is); once the running
    total would exceed the capacity, least-recently-used entries are
    evicted until the new entry fits. A {!find} hit promotes the entry
    to most-recently-used. An entry bigger than the whole capacity is
    refused outright rather than evicting everything else first.

    Not thread-safe: callers serialise access themselves (the advice
    server holds its state mutex around every cache operation). *)

type ('k, 'v) t

val create : capacity_bytes:int -> ('k, 'v) t
(** [create ~capacity_bytes] makes an empty cache holding at most
    [capacity_bytes] worth of entries. Raises [Invalid_argument] if the
    capacity is not positive. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit promotes the entry to most-recently-used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test {e without} promotion. *)

val add : ('k, 'v) t -> 'k -> 'v -> bytes:int -> bool
(** [add t k v ~bytes] inserts (or replaces) the binding, evicting from
    the LRU end until [v] fits, and returns [true]. An entry with
    [bytes > capacity_bytes] is refused: nothing is evicted, nothing is
    stored, and the result is [false]. Raises [Invalid_argument] on
    negative [bytes]. *)

val remove : ('k, 'v) t -> 'k -> unit

val length : ('k, 'v) t -> int
(** Number of live entries. *)

val bytes : ('k, 'v) t -> int
(** Current sum of entry sizes. *)

val capacity_bytes : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Entries evicted over the cache's lifetime (replacements excluded). *)

val promotions : ('k, 'v) t -> int
(** {!find} hits that actually moved the entry to the front of the
    recency list. A hit on the entry that is already most-recently-used
    leaves the list untouched and does not count (the order probe the
    unit tests use to pin the promote fast path). *)

val keys_mru : ('k, 'v) t -> 'k list
(** Keys from most- to least-recently used (tests and the server's
    [stats] reply use this order to report cache contents). *)
