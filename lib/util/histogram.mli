(** A fixed-bucket latency histogram for the advice server's [stats]
    reply.

    Bucket boundaries are a fixed geometric ladder from 1 µs to 60 s
    (about 6 buckets per decade over the 0.1 ms – 100 ms serving
    range, coarser at the extremes), so recording is a binary search plus
    an increment — no allocation, no per-sample storage — and the
    histogram stays O(1) in memory no matter how many requests it has
    seen. Percentiles are therefore estimates: {!percentile} returns
    the upper bound of the bucket containing the requested rank, i.e. a
    conservative (never under-reported) latency. Exact [min]/[max]/sum
    are tracked on the side. *)

type t

val create : unit -> t

val record : t -> float -> unit
(** [record t ms] adds one sample, in milliseconds. Negative samples
    count into the first bucket; samples beyond the last bound land in
    an overflow bucket whose "upper bound" is the exact observed
    maximum. *)

val count : t -> int
val sum_ms : t -> float
val max_ms : t -> float
(** Exact maximum; [0.0] when empty. *)

val mean_ms : t -> float
(** Exact mean; [0.0] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100]: the upper bound of the bucket
    holding the sample of rank [ceil (p/100 * count)] (the observed max
    for the overflow bucket); [0.0] when empty. Raises
    [Invalid_argument] for [p] outside [0..100]. *)

val merge : t -> t -> unit
(** [merge dst src] folds [src]'s counts into [dst] (the load generator
    merges per-client histograms this way). *)
