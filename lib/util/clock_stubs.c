/* CLOCK_MONOTONIC in nanoseconds for Slo_util.Clock. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

CAMLprim int64_t slo_clock_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value slo_clock_now_ns_byte(value unit)
{
  return caml_copy_int64(slo_clock_now_ns(unit));
}
