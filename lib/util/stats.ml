let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  if Array.length a = 0 then invalid_arg "Stats.mean: empty array";
  sum a /. float_of_int (Array.length a)

let correlation xs ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.correlation: empty series";
  if Array.length ys <> n then
    invalid_arg "Stats.correlation: length mismatch";
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and dx2 = ref 0.0 and dy2 = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    num := !num +. (dx *. dy);
    dx2 := !dx2 +. (dx *. dx);
    dy2 := !dy2 +. (dy *. dy)
  done;
  let denom = sqrt !dx2 *. sqrt !dy2 in
  if denom = 0.0 then None else Some (!num /. denom)

let remove_index i a =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let correlation_excluding i xs ys =
  if i < 0 || i >= Array.length xs then
    invalid_arg "Stats.correlation_excluding: index out of bounds";
  correlation (remove_index i xs) (remove_index i ys)

let relative_percent ws =
  let m = Array.fold_left max 0.0 ws in
  if m <= 0.0 then Array.map (fun _ -> 0.0) ws
  else Array.map (fun w -> 100.0 *. w /. m) ws

let argmax a =
  if Array.length a = 0 then invalid_arg "Stats.argmax: empty array";
  let best = ref 0 in
  Array.iteri (fun i x -> if x > a.(!best) then best := i) a;
  !best
