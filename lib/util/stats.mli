(** Small statistics toolbox used by the profitability analysis and the
    evaluation harness.

    The central export is {!correlation}, the linear correlation coefficient
    [r] the paper uses (section 2.3) to compare hotness estimates produced by
    different weighting schemes against the PBO baseline. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val correlation : float array -> float array -> float option
(** [correlation xs ys] is the linear (Pearson) correlation coefficient

    {v r = sum (xi - mx)(yi - my) / (sqrt (sum (xi - mx)^2) sqrt (sum (yi - my)^2)) v}

    Values lie in [-1.0, 1.0]; [0.0] means no linear correlation. If
    either series has zero variance the formula is undefined and the
    result is [None] — distinct from a genuine [Some 0.0], so a
    degenerate column renders as "-" instead of a fake 0.000. Raises
    [Invalid_argument] if the arrays differ in length or are empty. *)

val correlation_excluding : int -> float array -> float array -> float option
(** [correlation_excluding i xs ys] is {!correlation} with index [i] removed
    from both series. This is the paper's [r'], which "disregards field
    potential": the correlation recomputed without the dominant field. *)

val relative_percent : float array -> float array
(** [relative_percent ws] rescales raw weights so the maximum becomes 100.0
    (the paper's "relative hotness expressed in percent relative to the
    hottest field"). An all-zero input maps to all zeros. *)

val sum : float array -> float
(** Sum of the array. [0.0] on empty. *)

val argmax : float array -> int
(** Index of the (first) maximum element. Raises [Invalid_argument] on an
    empty array. *)
