(* Fixed geometric buckets, 1 µs .. 60 s (milliseconds) — ~3 per
   decade at the extremes, ~6 per decade across 0.1 ms .. 100 ms where
   serving latencies live and an SLO check needs resolution (a ladder
   that jumps 10 -> 20 cannot distinguish an 11 ms p99 from a 19 ms
   one). counts.(i) holds samples <= bounds.(i) (and > bounds.(i-1));
   counts.(n_bounds) is the overflow bucket. *)

let bounds =
  [|
    0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.15; 0.2; 0.3; 0.5; 0.7;
    1.0; 1.5; 2.0; 3.0; 5.0; 7.0; 10.0; 15.0; 20.0; 30.0; 50.0; 70.0;
    100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0; 10000.0; 20000.0; 60000.0;
  |]

type t = {
  counts : int array; (* length = Array.length bounds + 1 *)
  mutable n : int;
  mutable sum : float;
  mutable max : float;
}

let create () =
  { counts = Array.make (Array.length bounds + 1) 0; n = 0; sum = 0.0;
    max = 0.0 }

(* index of the first bound >= ms, or the overflow bucket *)
let bucket_of ms =
  let lo = ref 0 and hi = ref (Array.length bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bounds.(mid) >= ms then hi := mid else lo := mid + 1
  done;
  !lo

let record t ms =
  t.counts.(bucket_of ms) <- t.counts.(bucket_of ms) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. ms;
  if ms > t.max then t.max <- ms

let count t = t.n
let sum_ms t = t.sum
let max_ms t = t.max
let mean_ms t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let percentile t p =
  if p < 0.0 || p > 100.0 then
    invalid_arg "Histogram.percentile: p outside [0..100]";
  if t.n = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.n))) in
    let acc = ref 0 and idx = ref (Array.length t.counts - 1) in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if !acc >= rank then begin
             idx := i;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    if !idx >= Array.length bounds then t.max else bounds.(!idx)
  end

let merge dst src =
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  if src.max > dst.max then dst.max <- src.max
