(** Model of sphinx (speech recognition: HMM evaluation).

    Senone scoring streams a large table of Gaussian-mixture records whose
    hot mean/variance fields interleave with bookkeeping — a splittable
    type. Most other types are cast- or address-abused
    (relax-recoverable), tracking the Table 1 sphinx row (6.2% strict,
    81.2% relaxed). *)

let name = "sphinx"

let source = {|
/* speech recognition flavour: HMM senone scoring */

struct gauden {
  double mean;
  double var;
  double lrd;
  long cb_id;
  long update_cnt;
  long backoff;
};

struct hmmstate { long sen; long score; };

struct trellis { long frame; long best; };

struct dictword { long wid; long nphone; };

struct lmnode { long ngram; long prob; };

struct fsgarc { long from_s; long to_s; };

struct heapnode { long keyv; long val; };

struct vithist { long hid; long back; };

struct ascr { long s0; long s1; };

struct beam { long hmm_b; long word_b; };

struct gauden *gtab;
long ngau;
long total_score;

void load_models(long n) {
  long i;
  ngau = n;
  gtab = (struct gauden*)malloc(n * sizeof(struct gauden));
  for (i = 0; i < ngau; i++) {
    gtab[i].mean = (i % 64) * 0.125;
    gtab[i].var = 1.0 + (i % 8) * 0.25;
    gtab[i].lrd = 0.5;
    gtab[i].cb_id = i % 256;
    gtab[i].update_cnt = 0;
    gtab[i].backoff = 0;
  }
}

double senone_score(double x) {
  long i; double s = 0.0; double d;
  for (i = 0; i < ngau; i++) {
    d = x - gtab[i].mean;
    s = s + d * d / gtab[i].var + gtab[i].lrd;
  }
  return s;
}

long adapt(long frame) {
  long i; long n = 0;
  for (i = 0; i < ngau; i = i + 32) {
    if (gtab[i].backoff == 0) {
      gtab[i].update_cnt = gtab[i].update_cnt + 1;
      n = n + gtab[i].cb_id % 5;
    }
  }
  return n;
}

/* ATKN on hmmstate */
long hmm_eval(struct hmmstate *h, long obs) {
  long *sp;
  sp = &h->score;
  *sp = *sp + obs;
  return *sp;
}

/* CSTF on trellis */
long trellis_hash(struct trellis *t) {
  long *raw;
  raw = (long*)t;
  return raw[0] * 17 + raw[1];
}

/* ATKN on dictword */
long word_probe(struct dictword *w) {
  long *np;
  np = &w->nphone;
  return *np + w->wid;
}

/* CSTF on lmnode */
long lm_hash(struct lmnode *n) {
  long *raw;
  raw = (long*)n;
  return raw[0] + raw[1];
}

/* ATKN on fsgarc */
long arc_walk(struct fsgarc *a) {
  long *tp;
  tp = &a->to_s;
  return *tp - a->from_s;
}

/* CSTF on heapnode */
long heap_hash(struct heapnode *h) {
  long *raw;
  raw = (long*)h;
  return raw[0] ^ raw[1];
}

/* ATKN on vithist */
long hist_probe(struct vithist *v) {
  long *bp;
  bp = &v->back;
  return *bp + v->hid;
}

/* CSTF on ascr */
long ascr_hash(struct ascr *a) {
  long *raw;
  raw = (long*)a;
  return raw[0] + raw[1] * 3;
}

int main(int scale) {
  long f; long acc = 0; double sum = 0.0; long bbytes;
  struct hmmstate hs;
  struct trellis tr;
  struct dictword dw;
  struct lmnode lm;
  struct fsgarc fa;
  struct heapnode hn;
  struct vithist vh;
  struct ascr as;
  struct beam bm;
  if (scale <= 0) { scale = 20; }
  load_models(60000);
  hs.sen = 1; hs.score = 0;
  tr.frame = 0; tr.best = -1;
  dw.wid = 42; dw.nphone = 3;
  lm.ngram = 2; lm.prob = -500;
  fa.from_s = 0; fa.to_s = 1;
  hn.keyv = 9; hn.val = 10;
  vh.hid = 1; vh.back = 0;
  as.s0 = 5; as.s1 = 6;
  bm.hmm_b = -1000; bm.word_b = -2000;
  bbytes = 2 * sizeof(struct beam);
  acc = acc + bbytes;
  for (f = 0; f < scale; f++) {
    sum = sum + senone_score(f * 0.01);
    acc = acc + adapt(f) + hmm_eval(&hs, f);
    acc = acc + word_probe(&dw) + arc_walk(&fa) + hist_probe(&vh);
    if (f % 4 == 0) {
      acc = acc + trellis_hash(&tr) + lm_hash(&lm) + heap_hash(&hn)
            + ascr_hash(&as) + bm.hmm_b % 3;
    }
  }
  total_score = acc + (long)sum;
  printf("sphinx score %ld\n", total_score);
  return 0;
}
|}

let train_args = [ 10 ]
let ref_args = [ 20 ]
