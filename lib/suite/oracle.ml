(* The differential-testing oracle.

   Marmoset-style validation (PAPERS.md): never trust a candidate layout
   on the strength of the static legality argument alone — run the
   original and the transformed program in the VM and require

   - both IRs to pass the static well-formedness verifier;
   - byte-identical program output and equal exit codes;
   - conservation of field traffic: for every field that survives the
     transformation, the number of dynamically executed tagged loads and
     stores must be unchanged (splitting may add [__link] traffic and
     peeling piece-pointer loads, but never change how often a live field
     itself is touched).

   The access-conservation check catches bugs byte-identical output
   cannot: a transform that drops a store whose value is never printed,
   or duplicates an access, still miscounts. *)

module Interp = Slo_vm.Interp
module Backend = Slo_vm.Backend
module Hierarchy = Slo_cachesim.Hierarchy
module Cache = Slo_cachesim.Cache
module D = Slo_core.Driver
module H = Slo_core.Heuristics
module T = Slo_core.Transform

type failure =
  | Ill_formed_before of Verify.error list
  | Ill_formed_after of Verify.error list
  | Exit_code_differs of int * int
  | Output_differs of string * string
  | Access_count_differs of string * int * int
  | Runtime_error_after of string

type report = {
  r_before : Interp.result option;
  r_after : Interp.result option;
  r_failures : failure list;
}

let ok r = r.r_failures = []

let string_of_failure = function
  | Ill_formed_before errs ->
    Printf.sprintf "original IR is ill-formed:\n%s" (Verify.report errs)
  | Ill_formed_after errs ->
    Printf.sprintf "transformed IR is ill-formed:\n%s" (Verify.report errs)
  | Exit_code_differs (b, a) ->
    Printf.sprintf "exit code differs: %d before, %d after" b a
  | Output_differs (b, a) ->
    Printf.sprintf "output differs:\n--- before ---\n%s--- after ---\n%s" b a
  | Access_count_differs (field, b, a) ->
    Printf.sprintf "access count to live field '%s' differs: %d before, %d after"
      field b a
  | Runtime_error_after msg ->
    Printf.sprintf "transformed program faulted: %s" msg

let describe r =
  if ok r then "oracle: ok"
  else String.concat "\n" (List.map string_of_failure r.r_failures)

(* run the program and count dynamically executed tagged accesses per
   field name; names survive every transformation (split distributes the
   field records, peel gives each piece its field's name, rebuild keeps
   them), so they are the stable key to compare across the rewrite. The
   synthetic link field never existed before the transform and is
   skipped. *)
let counted_run ~args (prog : Ir.program) : Interp.result * (string, int) Hashtbl.t
    =
  let tag_of = Hashtbl.create 128 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Iload (_, _, _, Some a) | Ir.Istore (_, _, _, Some a) -> (
                match Structs.find_opt prog.structs a.astruct with
                | Some d when a.afield < Array.length d.fields ->
                  let name = d.fields.(a.afield).Structs.name in
                  if not (String.equal name T.link_field_name) then
                    Hashtbl.replace tag_of i.iid name
                | Some _ | None -> ())
              | _ -> ())
            b.instrs)
        f.fblocks)
    prog.funcs;
  let counts = Hashtbl.create 32 in
  let mem_hook _addr _size _write _is_float iid =
    match Hashtbl.find_opt tag_of iid with
    | Some name ->
      Hashtbl.replace counts name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
    | None -> ()
  in
  let vm = Interp.create ~mem_hook prog in
  (Interp.run ~args vm, counts)

(* field names defined by some struct of the program *)
let field_names (prog : Ir.program) =
  let names = Hashtbl.create 32 in
  Structs.iter
    (fun d ->
      Array.iter
        (fun (f : Structs.field) -> Hashtbl.replace names f.Structs.name ())
        d.fields)
    prog.structs;
  names

let diff ?(args = []) ?(check_accesses = true) ~original ~transformed () :
    report =
  let failures = ref [] in
  let push f = failures := f :: !failures in
  (match Verify.program original with
  | [] -> ()
  | errs -> push (Ill_formed_before errs));
  (match Verify.program transformed with
  | [] -> ()
  | errs -> push (Ill_formed_after errs));
  if !failures <> [] then
    { r_before = None; r_after = None; r_failures = List.rev !failures }
  else begin
    let before, counts_b = counted_run ~args original in
    match counted_run ~args transformed with
    | exception Interp.Runtime_error msg ->
      { r_before = Some before; r_after = None;
        r_failures = [ Runtime_error_after msg ] }
    | after, counts_a ->
      if before.exit_code <> after.exit_code then
        push (Exit_code_differs (before.exit_code, after.exit_code));
      if not (String.equal before.output after.output) then
        push (Output_differs (before.output, after.output));
      if check_accesses then begin
        (* compare every field name live on both sides; removed (dead)
           fields exist only before, synthetic fields only after *)
        let live_after = field_names transformed in
        let names =
          Hashtbl.fold (fun n _ acc -> n :: acc) (field_names original) []
          |> List.filter (Hashtbl.mem live_after)
          |> List.sort String.compare
        in
        List.iter
          (fun n ->
            let b = Option.value ~default:0 (Hashtbl.find_opt counts_b n) in
            let a = Option.value ~default:0 (Hashtbl.find_opt counts_a n) in
            if b <> a then push (Access_count_differs (n, b, a)))
          names
      end;
      { r_before = Some before; r_after = Some after;
        r_failures = List.rev !failures }
  end

let run ?args ?check_accesses (prog : Ir.program) (plans : H.plan list) :
    report =
  let transformed = Ircopy.copy_program prog in
  H.apply transformed plans;
  diff ?args ?check_accesses ~original:prog ~transformed ()

let run_source ?args ?check_accesses source plans : report =
  run ?args ?check_accesses (D.compile source) plans

(* ------------------------------------------------------------------ *)
(* Backend equivalence                                                 *)
(* ------------------------------------------------------------------ *)

(* The same differential idea turned on the VM itself: each fast engine
   (plain closure compilation, superblock fusion) is only trusted
   because every program run under it and under the tree-walking
   reference produces byte-identical output, identical step counts and
   an identical cache-event stream (same L1/L2 hit+miss counters, same
   level distribution, same extra cycles). *)

type backend_mismatch =
  | B_exit of Backend.t * int * int
  | B_output of Backend.t * string * string
  | B_counter of Backend.t * string * int * int

let string_of_backend_mismatch =
  let n = Backend.to_string in
  function
  | B_exit (b, w, c) ->
    Printf.sprintf "exit code differs: walk %d, %s %d" w (n b) c
  | B_output (b, w, c) ->
    Printf.sprintf "output differs:\n--- walk ---\n%s--- %s ---\n%s" w (n b) c
  | B_counter (b, name, w, c) ->
    Printf.sprintf "%s differs: walk %d, %s %d" name w (n b) c

(* The walker reference measures through the per-access hook; the fast
   candidates measure through the batched ring, the way the driver's
   measure phase actually runs them. The counter comparison below
   therefore pins two things at once: engine equivalence AND the
   ring-drain path's byte-equality with per-access simulation, across
   the whole roster and the fuzzer's random programs. *)
let measured_run backend ~args ~config (prog : Ir.program) =
  let hier = Hierarchy.create config in
  let vm =
    match backend with
    | Backend.Walk ->
      let mem_hook addr size write is_float _iid =
        Hierarchy.access_quiet hier ~addr ~size ~write ~is_float
      in
      Backend.create ~mem_hook backend prog
    | Backend.Closure | Backend.Superblock ->
      let module Ring = Slo_cachesim.Ring in
      let ring = Ring.create () in
      Ring.set_sink ring (fun r ->
          Hierarchy.drain_quiet hier r.Ring.addrs r.Ring.metas 0 r.Ring.len);
      Backend.create ~ring backend prog
  in
  (Backend.run ~args vm, hier)

let candidates = List.filter (fun b -> b <> Backend.Walk) Backend.all

let compare_backends ?(args = []) ?(config = Hierarchy.itanium)
    (prog : Ir.program) : backend_mismatch list =
  let rw, hw = measured_run Backend.Walk ~args ~config prog in
  let ms = ref [] in
  let push m = ms := m :: !ms in
  List.iter
    (fun b ->
      let rc, hc = measured_run b ~args ~config prog in
      if rw.Interp.exit_code <> rc.Interp.exit_code then
        push (B_exit (b, rw.Interp.exit_code, rc.Interp.exit_code));
      if not (String.equal rw.Interp.output rc.Interp.output) then
        push (B_output (b, rw.Interp.output, rc.Interp.output));
      let counter name w c = if w <> c then push (B_counter (b, name, w, c)) in
      counter "steps" rw.Interp.steps rc.Interp.steps;
      counter "accesses" (Hierarchy.accesses hw) (Hierarchy.accesses hc);
      counter "L1 hits"
        (Cache.hits (Hierarchy.l1 hw))
        (Cache.hits (Hierarchy.l1 hc));
      counter "L1 misses"
        (Cache.misses (Hierarchy.l1 hw))
        (Cache.misses (Hierarchy.l1 hc));
      counter "L2 hits"
        (Cache.hits (Hierarchy.l2 hw))
        (Cache.hits (Hierarchy.l2 hc));
      counter "L2 misses"
        (Cache.misses (Hierarchy.l2 hw))
        (Cache.misses (Hierarchy.l2 hc));
      let w1, w2, wm = Hierarchy.level_counts hw in
      let c1, c2, cm = Hierarchy.level_counts hc in
      counter "accesses served by L1" w1 c1;
      counter "accesses served by L2" w2 c2;
      counter "accesses served by memory" wm cm;
      counter "extra cycles" (Hierarchy.extra_cycles hw)
        (Hierarchy.extra_cycles hc))
    candidates;
  List.rev !ms

let backends_agree ?args ?config prog =
  compare_backends ?args ?config prog = []
