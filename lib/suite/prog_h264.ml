(** Model of h264avc (video encoder).

    Macroblock buffers are cleared and copied with [memset]/[memcpy]
    (MSET — an implementation limitation in the paper's framework, not
    relax-recoverable), motion-vector types get cast into raw words for
    cost heuristics (relax-recoverable), and the bitstream writer escapes
    to the I/O library. Matches the Table 1 h264avc shape: very low strict
    legal share, moderate relaxed share, no profitable transformation
    (paper: in-the-noise degradation). *)

let name = "h264avc"

let source = {|
/* video encoder flavour: macroblocks, motion search, bitstream */

struct macroblock {
  long mb_type;
  long qp;
  long cbp;
  long sad;
  long mode;
  long refidx;
};

struct mvec { long mx; long my; };

struct refpic { long poc; long used; };

struct slicehdr { long first_mb; long qp_delta; };

struct bitstream { long bits; long bytepos; };

struct quantmat { long q0; long q1; long q2; long q3; };

struct cabac_ctx { long state; long mps; };

struct sps { long width; long height; };

typedef long (*cost_fn)(struct mvec*);

extern long bs_write(struct bitstream*, long);
extern long nal_write(struct slicehdr*, long);

struct macroblock *mbs;
long nmb;
long bitcount;

void alloc_frame(long n) {
  long i;
  nmb = n;
  mbs = (struct macroblock*)malloc(n * sizeof(struct macroblock));
  /* whole-frame clear: MSET on macroblock */
  memset(mbs, 0, n * sizeof(struct macroblock));
  for (i = 0; i < nmb; i++) {
    mbs[i].qp = 26;
    mbs[i].refidx = i % 2;
  }
}

long motion_search(long frame) {
  long i; long cost = 0;
  for (i = 0; i < nmb; i++) {
    mbs[i].sad = (mbs[i].qp * 3 + i + frame) % 512;
    if (mbs[i].sad < 64) { mbs[i].mode = 1; } else { mbs[i].mode = 0; }
    cost = cost + mbs[i].sad;
  }
  return cost;
}

long encode_frame(long frame) {
  long i; long bits = 0;
  for (i = 0; i < nmb; i++) {
    mbs[i].cbp = (mbs[i].sad >> 4) & 15;
    mbs[i].mb_type = mbs[i].mode * 2 + (frame & 1);
    bits = bits + mbs[i].cbp + mbs[i].mb_type;
  }
  return bits;
}

/* CSTF: motion vectors hashed as raw words */
long mv_hash(struct mvec *v) {
  long *raw;
  raw = (long*)v;
  return raw[0] * 31 + raw[1];
}

/* ATKN on cabac contexts */
long cabac_update(struct cabac_ctx *c, long bin) {
  long *sp;
  sp = &c->state;
  *sp = (*sp + bin) % 64;
  return *sp;
}

/* CSTT: quant matrices from an untyped pool */
struct quantmat *default_quant() {
  struct quantmat *q;
  q = (struct quantmat*)malloc(32);
  q->q0 = 16; q->q1 = 18; q->q2 = 20; q->q3 = 22;
  return q;
}

/* ATKN on refpic */
long ref_probe(struct refpic *r) {
  long *up;
  up = &r->used;
  return *up + r->poc;
}

int main(int scale) {
  long f; long total = 0;
  struct mvec mv;
  struct refpic rp;
  struct slicehdr sh;
  struct bitstream bs;
  struct cabac_ctx cc;
  struct sps seq;
  struct quantmat *qm;
  if (scale <= 0) { scale = 40; }
  seq.width = 64; seq.height = 36;
  alloc_frame(seq.width * seq.height * 16);
  mv.mx = 1; mv.my = -1;
  rp.poc = 0; rp.used = 1;
  sh.first_mb = 0; sh.qp_delta = 2;
  bs.bits = 0; bs.bytepos = 0;
  cc.state = 31; cc.mps = 1;
  qm = default_quant();
  for (f = 0; f < scale; f++) {
    total = total + motion_search(f);
    total = total + encode_frame(f);
    total = total + mv_hash(&mv) + cabac_update(&cc, f & 1);
    if (f % 8 == 0) {
      total = total + ref_probe(&rp) + qm->q0 + nal_write(&sh, f);
      bs.bits = bs.bits + total % 97;
      bs_write(&bs, bs.bits);
    }
  }
  bitcount = total;
  printf("h264 bits %ld\n", bitcount);
  return 0;
}
|}

let train_args = [ 20 ]
let ref_args = [ 40 ]
