(** Model of SPEC2000 181.mcf — the paper's central case study.

    The record type [node] has the exact 15 fields of Table 2. The
    computation is a simplified network-simplex flavour chosen to reproduce
    the paper's hotness structure:

    - [refresh_potential] streams over every node each outer iteration,
      chasing [pred] / [orientation] / [basic_arc] and rewriting
      [potential] — this makes [potential] the hottest field under real
      profiles and gives it (and [time], scanned in [update_time]) the
      dominant d-cache miss share;
    - a small cached subtree is walked repeatedly ([pred] hot, few misses);
    - [scan_children] gives [child] / [sibling] their medium hotness;
    - [price_out] is called rarely but contains deeply nested loops over
      [flow], [depth], [sibling_prev], [firstout], [firstin] — static
      estimation (SPBO) grossly over-weights these, exactly the
      mis-classification the paper measures, and the inter-procedural
      scaling (ISPBO) repairs it;
    - [ident] is never read (a {e dead} field, stores removed); [number] is
      written at build time and read almost never.

    The roster's legality mix matches Table 1's mcf row: 5 record types,
    1 strictly legal ([node]), 3 legal under relaxed CSTT/CSTF/ATKN
    ([node]; [arc] — a field's address is taken; [basket] — cast abuse),
    and [network] / [timer] invalid via NEST.

    The node array (120 bytes x 56k nodes ≈ 6.7 MB) deliberately exceeds
    the 6 MB simulated L2, like the real mcf working set exceeded the
    rx2600's cache. *)

let name = "181.mcf"

let source = {|
/* simplified network simplex kernel, modelled on SPEC2000 181.mcf */

struct timer { long start_t; long stop_t; };

struct network {
  struct timer tm;       /* nested type: NEST, not transformable */
  long n_nodes;
  long n_arcs;
  long iterations;
};

struct node {
  long number;
  long ident;
  struct node *pred;
  struct node *child;
  struct node *sibling;
  struct node *sibling_prev;
  long depth;
  long orientation;
  struct arc *basic_arc;
  struct arc *firstout;
  struct arc *firstin;
  long potential;
  long flow;
  long mark;
  long time;
};

struct arc {
  long cost;
  struct node *tail;
  struct node *head;
  long a_ident;
  long a_flow;
};

struct basket {
  long b_cost;
  long b_abs;
  struct arc *b_arc;
};

struct network net;
struct node *nodes;
struct arc *arcs;
struct basket *baskets;
long n_nodes;
long n_arcs;
long checksum;

/* phase 1 of input reading: node identity and bookkeeping fields */
void read_nodes(long n) {
  long i;
  n_nodes = n;
  nodes = (struct node*)malloc(n_nodes * sizeof(struct node));
  baskets = (struct basket*)malloc(64 * sizeof(struct basket));
  for (i = 0; i < n_nodes; i++) {
    nodes[i].number = i;
    nodes[i].ident = i % 3;
    nodes[i].flow = 0;
    nodes[i].mark = 0;
    nodes[i].time = i % 13;
  }
}

/* phase 2: arcs, and the nodes' arc anchors */
void read_arcs() {
  long i;
  n_arcs = 2 * n_nodes;
  arcs = (struct arc*)malloc(n_arcs * sizeof(struct arc));
  for (i = 0; i < n_arcs; i++) {
    arcs[i].cost = (i * 37) % 1000 - 500;
    arcs[i].tail = nodes + (i % n_nodes);
    arcs[i].head = nodes + ((i * 7 + 1) % n_nodes);
    arcs[i].a_ident = i % 3;
    arcs[i].a_flow = i % 5;
  }
  for (i = 0; i < n_nodes; i++) {
    nodes[i].firstout = arcs + ((2 * i) % n_arcs);
    nodes[i].firstin = arcs + ((2 * i + 1) % n_arcs);
  }
}

/* phase 3: the spanning tree */
void primal_start() {
  long i;
  for (i = 0; i < n_nodes; i++) {
    nodes[i].pred = nodes + (i / 2);
    nodes[i].child = nodes + ((2 * i + 1) % n_nodes);
    nodes[i].sibling = nodes + ((i + 1) % n_nodes);
    nodes[i].sibling_prev = nodes + ((i + n_nodes - 1) % n_nodes);
    nodes[i].depth = 1;
    nodes[i].orientation = i % 2;
    nodes[i].basic_arc = arcs + (i % n_arcs);
    nodes[i].potential = i % 97;
  }
}

/* streams over the whole node array: potential/pred/orientation/basic_arc */
void refresh_potential() {
  long i;
  struct node *p;
  for (i = 1; i < n_nodes; i++) {
    p = nodes + i;
    if (p->orientation == 1) {
      p->potential = p->basic_arc->cost + p->pred->potential;
    } else {
      p->potential = p->pred->potential - p->basic_arc->cost;
    }
  }
}

/* walks a small, cache-resident subtree many times: pred gets hot with few
   misses */
long walk_subtree(long start, long rounds) {
  long r; long acc = 0;
  struct node *p;
  for (r = 0; r < rounds; r++) {
    p = nodes + ((start + r) % 512 + 1);
    while (p != nodes) {
      acc = acc + p->potential;
      p = p->pred;
    }
  }
  return acc;
}

/* medium-hot child/sibling scan over a strided subset */
long scan_children(long stride) {
  long i; long k; long acc = 0;
  struct node *q;
  for (i = 0; i < n_nodes; i = i + stride) {
    q = nodes[i].child;
    for (k = 0; k < 3; k++) {
      acc = acc + q->potential;
      q = q->sibling;
    }
  }
  return acc;
}

/* scans arcs against node potentials (arc pricing) */
long primal_bea(long block) {
  long i; long best = 0; long red_cost;
  struct arc *a;
  for (i = 0; i < n_arcs; i = i + block) {
    a = arcs + i;
    red_cost = a->cost - a->tail->potential + a->head->potential;
    if (red_cost < best) {
      best = red_cost;
      baskets[i % 64].b_cost = red_cost;
      baskets[i % 64].b_abs = -red_cost;
      baskets[i % 64].b_arc = a;
    }
  }
  return best;
}

/* conditional pass over time/mark: the training input triggers it often */
void update_time(long stamp, long rate) {
  long i;
  for (i = 0; i < n_nodes; i++) {
    if (nodes[i].time % rate == 0) {
      nodes[i].mark = nodes[i].mark + 1;
      nodes[i].time = stamp + (nodes[i].mark % 7);
    }
  }
}

/* rarely called, but nested: SPBO badly over-weights these fields because
   its local estimate cannot see how rarely the function runs */
long price_out() {
  long i; long j; long acc = 0;
  struct node *p;
  for (i = 0; i < 24; i++) {
    for (j = 0; j < 96; j++) {
      p = nodes + ((i * 131 + j * 17) % n_nodes);
      p->flow = p->flow + p->firstout->a_flow + j;
      p->depth = p->depth + 1;
      acc = acc + p->sibling_prev->depth + p->firstin->a_ident;
    }
  }
  return acc;
}

/* the basket type is abused with casts: CSTF/CSTT (relax-recoverable) */
long basket_hash() {
  long *raw;
  long h = 0; long i;
  raw = (long*)baskets;
  for (i = 0; i < 8; i++) { h = h + raw[i * 3]; }
  return h;
}

/* the address of an arc field is taken and stored: ATKN
   (relax-recoverable) */
long arc_cost_probe(long k) {
  long *cp;
  cp = &arcs[k % n_arcs].cost;
  return *cp;
}

/* the hot kernels are called from a doubly nested driver loop, so the
   inter-procedural scaling can tell them apart from price_out */
void global_opt(long iterations, long rate) {
  long iter; long m; long total = 0;
  for (iter = 0; iter < iterations; iter++) {
    if (iter % 8 == 0) { total = total + price_out(); }
    for (m = 0; m < 4; m++) {
      refresh_potential();
      total = total + walk_subtree(iter * 4 + m, 250);
      total = total + scan_children(4);
      total = total + primal_bea(4);
      if (m == 1 || m == 3) { update_time(iter, rate); }
    }
    total = total + arc_cost_probe(iter);
  }
  checksum = checksum + total;
}

int main(int scale, int rate) {
  if (scale <= 0) { scale = 16; }
  if (rate <= 0) { rate = 3; }
  net.tm.start_t = 1;
  net.n_nodes = 0;
  read_nodes(90000);
  read_arcs();
  primal_start();
  net.iterations = scale;
  global_opt(net.iterations, rate);
  checksum = checksum + basket_hash();
  /* rare read of number keeps it alive but cold */
  checksum = checksum + nodes[n_nodes / 2].number;
  net.tm.stop_t = 2;
  printf("mcf checksum %ld\n", checksum);
  return 0;
}
|}

let train_args = [ 6; 3 ]
(** training input: fewer simplex iterations, same phase mix *)

let ref_args = [ 8; 3 ]
(** the reference input (the paper's PPBO correlates with PBO at 0.986) *)
