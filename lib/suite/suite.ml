type paper_row = {
  p_types : int;
  p_legal : int;
  p_legal_pct : float;
  p_relax : int;
  p_relax_pct : float;
  p_perf : string;
}

type entry = {
  name : string;
  source : string;
  train_args : int list;
  ref_args : int list;
  paper : paper_row option;
}

let row types legal legal_pct relax relax_pct perf =
  Some
    { p_types = types; p_legal = legal; p_legal_pct = legal_pct;
      p_relax = relax; p_relax_pct = relax_pct; p_perf = perf }

let entry name source train_args ref_args paper =
  { name; source; train_args; ref_args; paper }

let roster =
  [
    entry Prog_mcf.name Prog_mcf.source Prog_mcf.train_args Prog_mcf.ref_args
      (row 5 1 20.0 3 60.0 "+16.7% .. +17.3%");
    entry Prog_art.name Prog_art.source Prog_art.train_args Prog_art.ref_args
      (row 3 2 66.7 2 66.7 "+78.2%");
    entry Prog_milc.name Prog_milc.source Prog_milc.train_args
      Prog_milc.ref_args
      (row 20 5 25.0 12 60.0 "small positive");
    entry Prog_cactus.name Prog_cactus.source Prog_cactus.train_args
      Prog_cactus.ref_args
      (row 116 13 11.0 68 58.6 "noise (>= -1.5%)");
    entry Prog_gobmk.name Prog_gobmk.source Prog_gobmk.train_args
      Prog_gobmk.ref_args
      (row 59 9 15.3 45 76.3 "~0%");
    entry Prog_povray.name Prog_povray.source Prog_povray.train_args
      Prog_povray.ref_args
      (row 275 14 5.1 207 75.3 "~0%");
    entry Prog_calculix.name Prog_calculix.source Prog_calculix.train_args
      Prog_calculix.ref_args
      (row 41 3 11.6 3 11.6 "noise (>= -1.5%)");
    entry Prog_h264.name Prog_h264.source Prog_h264.train_args
      Prog_h264.ref_args
      (row 42 3 7.1 25 59.5 "noise (>= -1.5%)");
    entry Prog_moldyn.name Prog_moldyn.source Prog_moldyn.train_args
      Prog_moldyn.ref_args
      (row 4 1 25.0 4 100.0 "+21.8% .. +30.9%");
    entry Prog_lucille.name Prog_lucille.source Prog_lucille.train_args
      Prog_lucille.ref_args
      (row 97 17 17.5 86 88.7 "small positive");
    entry Prog_sphinx.name Prog_sphinx.source Prog_sphinx.train_args
      Prog_sphinx.ref_args
      (row 64 4 6.2 52 81.2 "~0%");
    entry Prog_ssearch.name Prog_ssearch.source Prog_ssearch.train_args
      Prog_ssearch.ref_args
      (row 10 4 40.0 5 50.0 "small positive");
  ]

let case_studies =
  [
    entry Prog_spec2006a.name Prog_spec2006a.source Prog_spec2006a.train_args
      Prog_spec2006a.ref_args None;
    entry Prog_spec2006b.name Prog_spec2006b.source Prog_spec2006b.train_args
      Prog_spec2006b.ref_args None;
  ]

let find name =
  List.find
    (fun e -> String.equal e.name name)
    (roster @ case_studies)

let paper_avg_legal_pct = 20.9
let paper_avg_relax_pct = 65.7
