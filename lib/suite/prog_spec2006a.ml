(** Model of the paper's first SPEC2006 case study (§3.4):

    "One of the C++ benchmarks in SPEC2006 has a hot structure S with a
    size larger than an L2 cache line (128 byte on Itanium). Looking at the
    affinity graphs derived from PBO clearly identified 4 hot fields in S
    which were not grouped together in the class definition. ... Grouping
    those fields together resulted in a performance improvement of 2.5%."

    [bigobj] is 160 bytes with its four hot fields scattered across three
    cache lines. The type is {e not} automatically transformable (its
    address-of abuse blocks the framework, as for the paper's C++ type) —
    the advisor identifies the hot four, and the case-study bench applies
    the manual regrouping the paper describes. *)

let name = "spec2006.hotgroup"

let source = {|
/* a 160-byte object with 4 hot fields scattered across cache lines */

struct bigobj {
  long hot1;      /* offset 0 */
  long pad01;
  long pad02;
  long pad03;
  long pad04;
  long hot2;      /* offset 40 */
  long pad05;
  long pad06;
  long pad07;
  long pad08;
  long hot3;      /* offset 80 */
  long pad09;
  long pad10;
  long pad11;
  long pad12;
  long hot4;      /* offset 120 */
  long pad13;
  long pad14;
  long pad15;
  long pad16;     /* 160 bytes total */
};

struct bigobj *objs;
long nobj;
long result;

/* the address-of abuse that keeps the automatic framework away */
long probe(struct bigobj *o) {
  long *hp;
  hp = &o->hot1;
  return *hp;
}

void build(long n) {
  long i;
  nobj = n;
  objs = (struct bigobj*)malloc(n * sizeof(struct bigobj));
  for (i = 0; i < nobj; i++) {
    objs[i].hot1 = i;
    objs[i].pad01 = 0; objs[i].pad02 = 0; objs[i].pad03 = 0;
    objs[i].pad04 = 0;
    objs[i].hot2 = i * 2;
    objs[i].pad05 = 0; objs[i].pad06 = 0; objs[i].pad07 = 0;
    objs[i].pad08 = 0;
    objs[i].hot3 = i * 3;
    objs[i].pad09 = 0; objs[i].pad10 = 0; objs[i].pad11 = 0;
    objs[i].pad12 = 0;
    objs[i].hot4 = i * 4;
    objs[i].pad13 = 0; objs[i].pad14 = 0; objs[i].pad15 = 0;
    objs[i].pad16 = 0;
  }
}

long kernel() {
  long i; long acc = 0;
  for (i = 0; i < nobj; i++) {
    acc = acc + objs[i].hot1 + objs[i].hot2 + objs[i].hot3 + objs[i].hot4;
  }
  return acc;
}

/* occasional cold sweep so the pads stay live */
long audit() {
  long i; long acc = 0;
  for (i = 0; i < nobj; i = i + 128) {
    acc = acc + objs[i].pad01 + objs[i].pad09 + objs[i].pad16;
  }
  return acc;
}

int main(int scale) {
  long it; long acc = 0;
  if (scale <= 0) { scale = 24; }
  build(60000);
  for (it = 0; it < scale; it++) {
    acc = acc + kernel();
    if (it % 8 == 0) { acc = acc + audit() + probe(objs + it); }
  }
  result = acc;
  printf("spec2006a acc %ld\n", result);
  return 0;
}
|}

let train_args = [ 8 ]
let ref_args = [ 12 ]

let hot_fields = [ "hot1"; "hot2"; "hot3"; "hot4" ]
(** the four fields the advisor should surface *)
