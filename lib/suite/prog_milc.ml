(** Model of milc (lattice QCD, su3 matrix algebra).

    Dominated by complex 3x3 matrix kernels over a lattice of sites. The
    complex/matrix/site nesting chain makes the central types NEST-invalid
    — exactly why milc's transformable share is low in Table 1 — while a
    handful of auxiliary types carry relax-recoverable cast/address
    violations. [rand_state] is the one legal, dynamically allocated,
    profitably splittable type (a small gain, as in the paper). *)

let name = "milc"

let source = {|
/* lattice QCD flavour: su3 algebra over sites */

struct complex { double re; double im; };

struct su3_matrix { struct complex e00; struct complex e01; struct complex e11; };

struct site {
  struct su3_matrix link;
  long parity;
  long index;
};

struct half_wilson { double h0; double h1; double h2; double h3; };

struct path { long dir; long length; long start; };

struct msg_buf { long tag; long len; };

struct layout { long nx; long ny; long nt; };

struct rand_state {
  long seed;
  long carry;
  long hot_a;
  long hot_b;
  long cold_pad1;
  long cold_pad2;
  long cold_pad3;
  long scratch;
};

struct twist { double angle; double phase; };

struct boundary { long face; long width; };

typedef long (*gauge_cb)(struct boundary*);

extern long mpi_send(struct msg_buf*, long);

struct site *lattice;
struct rand_state *prn;
struct layout geom;
long volume;
double plaq;

void make_lattice(long v) {
  long i;
  volume = v;
  lattice = (struct site*)malloc(v * sizeof(struct site));
  prn = (struct rand_state*)malloc(v * sizeof(struct rand_state));
  for (i = 0; i < volume; i++) {
    lattice[i].link.e00.re = 1.0; lattice[i].link.e00.im = 0.0;
    lattice[i].link.e01.re = 0.1; lattice[i].link.e01.im = 0.0;
    lattice[i].link.e11.re = 1.0; lattice[i].link.e11.im = 0.0;
    lattice[i].parity = i % 2;
    lattice[i].index = i;
    prn[i].seed = i * 69069 + 1;
    prn[i].carry = 0;
    prn[i].hot_a = i;
    prn[i].hot_b = i * 3;
    prn[i].cold_pad1 = 0;
    prn[i].cold_pad2 = 0;
    prn[i].cold_pad3 = 0;
    prn[i].scratch = 0;
  }
}

double plaquette() {
  long i; double s = 0.0;
  for (i = 0; i < volume; i++) {
    s = s + lattice[i].link.e00.re * lattice[i].link.e11.re
        - lattice[i].link.e01.im * lattice[i].link.e01.im;
  }
  return s;
}

long prn_next(long i) {
  prn[i].hot_a = (prn[i].hot_a * 1103515245 + prn[i].hot_b) % 2147483647;
  prn[i].hot_b = prn[i].hot_b + 1;
  return prn[i].hot_a;
}

long prn_reseed(long k) {
  /* rare touch of the cold prn fields */
  prn[k].cold_pad1 = prn[k].seed;
  prn[k].cold_pad2 = prn[k].carry;
  prn[k].cold_pad3 = prn[k].scratch + 1;
  return prn[k].cold_pad3;
}

/* CSTF: half_wilson vectors serialised through a raw cast */
double hw_hash(struct half_wilson *h) {
  double *raw; double s = 0.0; long i;
  raw = (double*)h;
  for (i = 0; i < 4; i++) { s = s + raw[i]; }
  return s;
}

/* ATKN: path field address is stored */
long path_probe(struct path *p) {
  long *dp;
  dp = &p->length;
  return *dp + p->dir;
}

/* LIBC: msg_buf escapes to the message library */
void send_msg(struct msg_buf *m) {
  m->tag = 7;
  mpi_send(m, m->len);
}

/* IND: boundary escapes to an indirect call */
long apply_boundary(struct boundary *b, gauge_cb cb) {
  return cb(b);
}

long face_handler(struct boundary *b) { return b->face * 2 + b->width; }

/* CSTT: twist built from an untyped allocation */
struct twist *make_twist() {
  struct twist *t;
  t = (struct twist*)malloc(16);
  t->angle = 0.5;
  t->phase = 0.25;
  return t;
}

int main(int scale) {
  long sweep; long i; long acc = 0; double s = 0.0;
  struct half_wilson hw;
  struct path pth;
  struct msg_buf msg;
  struct boundary bnd;
  struct twist *tw;
  gauge_cb cb;
  if (scale <= 0) { scale = 10; }
  geom.nx = 16; geom.ny = 16; geom.nt = 8;
  make_lattice(40000);
  hw.h0 = 1.0; hw.h1 = 2.0; hw.h2 = 3.0; hw.h3 = 4.0;
  pth.dir = 1; pth.length = 4; pth.start = 0;
  bnd.face = 2; bnd.width = 3;
  msg.len = 8;
  cb = (&face_handler);
  tw = make_twist();
  for (sweep = 0; sweep < scale; sweep++) {
    s = s + plaquette();
    for (i = 0; i < volume; i = i + 2) { acc = acc + prn_next(i); }
    if (sweep % 4 == 0) { acc = acc + prn_reseed(sweep % volume); }
  }
  s = s + hw_hash(&hw) + tw->angle;
  acc = acc + path_probe(&pth) + apply_boundary(&bnd, cb);
  send_msg(&msg);
  plaq = s;
  printf("milc plaq %.4f acc %ld\n", plaq, acc);
  return 0;
}
|}

let train_args = [ 5 ]
let ref_args = [ 10 ]
