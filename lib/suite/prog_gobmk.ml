(** Model of gobmk (Go engine): board scans, pattern hashing, cast-heavy
    serialisation. Most record types are invalidated by casts or taken
    addresses (relax-recoverable), so the strict legal share is low and the
    relaxed share high, as in Table 1's gobmk row. No type is profitably
    transformable — the performance delta is zero. *)

let name = "gobmk"

let source = {|
/* Go engine flavour: board scans and pattern hashing */

struct intersection { long color; long liberties; long string_id; long dirty; };

struct go_string { long size; long libs; long origin; };

struct pattern { long bits; long mask; long value; };

struct hashnode { long key; long data; struct hashnode *next; };

struct movelist { long moves; long count; };

struct eyeinfo { long size; long shape; };

struct dragon { long id; long status; long safety; };

struct worm { long origin; long liberties2; };

struct boardstate { long komi_x2; long to_move; };

struct readresult { long depth; long result; };

extern long sgf_write(struct readresult*, long);

struct intersection *board;
struct hashnode *table;
long bsize;
long nhash;
long score;

void init_board(long n) {
  long i;
  bsize = n;
  board = (struct intersection*)malloc(n * sizeof(struct intersection));
  for (i = 0; i < bsize; i++) {
    board[i].color = i % 3;
    board[i].liberties = 4;
    board[i].string_id = -1;
    board[i].dirty = 0;
  }
  nhash = 4096;
  table = (struct hashnode*)malloc(nhash * sizeof(struct hashnode));
  for (i = 0; i < nhash; i++) {
    table[i].key = 0; table[i].data = 0; table[i].next = (struct hashnode*)0;
  }
}

/* hot scan; intersection stays strict-legal but is L2 resident and
   uniformly accessed, so no profitable split exists */
long scan_board() {
  long i; long libs = 0;
  for (i = 0; i < bsize; i++) {
    if (board[i].color != 0) {
      libs = libs + board[i].liberties - (board[i].dirty & 1);
    }
  }
  return libs;
}

/* CSTF: positions serialised to raw longs for hashing */
long board_hash() {
  long *raw; long h = 5381; long i;
  raw = (long*)board;
  for (i = 0; i < 64; i++) { h = h * 33 + raw[i * 2]; }
  return h;
}

long hash_probe(long key) {
  struct hashnode *n;
  n = table + (key % nhash);
  if (n->key == key) { return n->data; }
  n->key = key;
  n->data = key * 2 + 1;
  return 0;
}

/* ATKN: pattern matcher walks a field address */
long match_pattern(struct pattern *p, long bits) {
  long *bp;
  bp = &p->bits;
  return ((*bp) & p->mask) == (bits & p->mask);
}

/* CSTF on go_string */
long string_hash(struct go_string *s) {
  long *raw;
  raw = (long*)s;
  return raw[0] * 7 + raw[1];
}

/* ATKN on movelist */
long push_move(struct movelist *ml, long mv) {
  long *cp;
  cp = &ml->count;
  *cp = *cp + 1;
  return mv + *cp;
}

/* CSTT on eyeinfo (untyped allocation wrapper) */
struct eyeinfo *make_eye() {
  struct eyeinfo *e;
  e = (struct eyeinfo*)malloc(16);
  e->size = 1; e->shape = 2;
  return e;
}

/* ATKN on dragon */
long dragon_probe(struct dragon *d) {
  long *sp;
  sp = &d->safety;
  return *sp + d->status;
}

/* CSTF on worm */
long worm_hash(struct worm *w) {
  long *raw;
  raw = (long*)w;
  return raw[0] + raw[1];
}

int main(int scale) {
  long g; long i; long acc = 0;
  struct pattern pat;
  struct movelist ml;
  struct dragon dr;
  struct worm wm;
  struct boardstate bs;
  struct readresult rr;
  struct eyeinfo *eye;
  if (scale <= 0) { scale = 40; }
  init_board(50000);
  pat.bits = 5; pat.mask = 7; pat.value = 1;
  ml.moves = 0; ml.count = 0;
  dr.id = 1; dr.status = 2; dr.safety = 3;
  wm.origin = 4; wm.liberties2 = 5;
  bs.komi_x2 = 13; bs.to_move = 1;
  rr.depth = 0; rr.result = 0;
  eye = make_eye();
  for (g = 0; g < scale; g++) {
    acc = acc + scan_board();
    acc = acc + hash_probe(g * 2654435761);
    for (i = 0; i < 50; i++) {
      acc = acc + match_pattern(&pat, g + i) + push_move(&ml, i);
    }
    if (g % 8 == 0) {
      acc = acc + board_hash() + dragon_probe(&dr) + worm_hash(&wm);
    }
  }
  rr.depth = scale; rr.result = acc % 1000;
  acc = acc + sgf_write(&rr, rr.depth);
  score = acc + bs.komi_x2 + eye->size + rr.result
          + 2 * sizeof(struct boardstate);
  printf("gobmk score %ld\n", score);
  return 0;
}
|}

let train_args = [ 20 ]
let ref_args = [ 40 ]
