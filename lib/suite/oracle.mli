(** Differential-testing oracle for the transformation pipeline.

    Marmoset-style validation: a candidate layout transformation is only
    trusted after the original and transformed programs both pass the
    static {!Verify} pass, run to completion in the VM with byte-identical
    output and exit codes, and touch every surviving field the exact same
    number of times (dynamic tagged loads + stores, keyed by field name —
    stable across split/peel/rebuild renames). Synthetic fields such as
    the split link pointer are exempt from conservation; removed dead
    fields only exist on the original side and are skipped. *)

type failure =
  | Ill_formed_before of Verify.error list
      (** the input IR already fails {!Verify.program} *)
  | Ill_formed_after of Verify.error list
      (** the transformation produced malformed IR *)
  | Exit_code_differs of int * int  (** before, after *)
  | Output_differs of string * string  (** before, after *)
  | Access_count_differs of string * int * int
      (** field name, dynamic accesses before, after *)
  | Runtime_error_after of string
      (** the transformed program faulted at runtime *)

type report = {
  r_before : Slo_vm.Interp.result option;
  r_after : Slo_vm.Interp.result option;
  r_failures : failure list;  (** empty iff the transformation is trusted *)
}

val ok : report -> bool
val string_of_failure : failure -> string
val describe : report -> string

val diff :
  ?args:int list ->
  ?check_accesses:bool ->
  original:Ir.program ->
  transformed:Ir.program ->
  unit ->
  report
(** Compare two already-built programs. [check_accesses] (default true)
    enables the per-field conservation check; disable it for pipelines
    that may legitimately remove unused loads. *)

val run :
  ?args:int list ->
  ?check_accesses:bool ->
  Ir.program ->
  Slo_core.Heuristics.plan list ->
  report
(** Apply [plans] to a copy of the program and {!diff} the two. *)

val run_source :
  ?args:int list ->
  ?check_accesses:bool ->
  string ->
  Slo_core.Heuristics.plan list ->
  report
(** {!run} on a compiled Mini-C source. *)

(** {1 Backend equivalence}

    The same differential idea turned on the VM itself: every fast
    engine ({!Slo_vm.Compile}, plain and superblock-fused) is pinned to
    the tree-walking reference ({!Slo_vm.Interp}) — byte-identical
    output, identical step counts, and an identical cache-simulation
    outcome (L1/L2 hit and miss counters, per-level access counts,
    extra cycles) under the same hierarchy configuration. *)

type backend_mismatch =
  | B_exit of Slo_vm.Backend.t * int * int  (** candidate, walk, candidate *)
  | B_output of Slo_vm.Backend.t * string * string
  | B_counter of Slo_vm.Backend.t * string * int * int
      (** candidate, counter name, walk value, candidate value *)

val string_of_backend_mismatch : backend_mismatch -> string

val compare_backends :
  ?args:int list ->
  ?config:Slo_cachesim.Hierarchy.config ->
  Ir.program ->
  backend_mismatch list
(** Run [prog] once under the walk reference and once under each fast
    backend ({!Slo_vm.Backend.all} minus [Walk]) with the
    cache-measurement hook attached, and report every observable
    difference (empty list = all backends agree). Runtime errors
    propagate — all backends raise the same
    {!Slo_vm.Interp.Runtime_error} on the same programs. *)

val backends_agree :
  ?args:int list ->
  ?config:Slo_cachesim.Hierarchy.config ->
  Ir.program ->
  bool
(** [compare_backends] = []. *)
