(** Model of cactusADM (numerical relativity over a structured grid).

    The transformable type [gpoint] is split by the framework, but the
    grid fits comfortably in L2, so the inserted link pointers buy no
    bandwidth and only add instructions — reproducing the paper's "minor
    degradation in the noise range" for this benchmark. The other types
    carry the usual violation mix. *)

let name = "cactusADM"

let source = {|
/* structured-grid stencil kernels, modelled on cactusADM */

struct coords { double cx; double cy; double cz; };

struct metric {
  struct coords g;    /* NEST */
  double lapse;
};

struct gpoint {
  double u;
  double unew;
  double rhs;
  long boundary_tag;
  long refine_level;
  long visit_count;
};

struct bbox { long lo; long hi; };

struct param { double dt; double dx; long order; };

struct ghost { long width; long dir; };

struct io_req { long kind; long bytes; };

struct tensor { double t00; double t01; double t11; };

struct stencil { double c0; double c1; double c2; };

struct flux { double fin; double fout; };

typedef long (*bc_fn)(struct ghost*);

extern long cactus_io(struct io_req*, long);

struct gpoint *grid;
struct param par;
long npts;
double residual;

void init_grid(long n) {
  long i;
  npts = n;
  grid = (struct gpoint*)malloc(n * sizeof(struct gpoint));
  for (i = 0; i < npts; i++) {
    grid[i].u = (i % 17) * 0.1;
    grid[i].unew = 0.0;
    grid[i].rhs = 0.0;
    grid[i].boundary_tag = (i < 64) ? 1 : 0;
    grid[i].refine_level = 0;
    grid[i].visit_count = 0;
  }
}

/* stencil sweep: the dominant kernel, L2-resident */
void sweep(double c) {
  long i;
  for (i = 1; i < npts - 1; i++) {
    grid[i].rhs = grid[i-1].u - 2.0 * grid[i].u + grid[i+1].u;
    grid[i].unew = grid[i].u + c * grid[i].rhs;
  }
  for (i = 1; i < npts - 1; i++) {
    grid[i].u = grid[i].unew;
  }
}

/* the colder fields are still touched every few sweeps: after splitting,
   these reads pay for a link-pointer dereference */
long apply_boundaries(long step) {
  long i; long n = 0;
  for (i = 0; i < npts; i = i + 8) {
    if (grid[i].boundary_tag == 1) {
      grid[i].visit_count = grid[i].visit_count + 1;
      grid[i].refine_level = step % 4;
      n = n + 1;
    }
  }
  return n;
}

/* ATKN on bbox */
long clip(struct bbox *b) {
  long *lo;
  lo = &b->lo;
  return *lo + b->hi;
}

/* CSTF on metric — also NEST via coords */
double metric_hash(struct metric *m) {
  double *raw; double s = 0.0; long i;
  raw = (double*)m;
  for (i = 0; i < 4; i++) { s = s + raw[i]; }
  return s;
}

long bc_reflect(struct ghost *g) { return g->width * 2 - g->dir; }

/* CSTF on tensor */
double tensor_hash(struct tensor *t) {
  double *raw;
  raw = (double*)t;
  return raw[0] + raw[1] * 2.0 + raw[2];
}

/* ATKN on stencil */
double stencil_mid(struct stencil *st) {
  double *cp;
  cp = &st->c1;
  return *cp + st->c0 + st->c2;
}

/* ATKN on flux */
double flux_net(struct flux *fx) {
  double *ip;
  ip = &fx->fin;
  return *ip - fx->fout;
}

int main(int scale) {
  long step; long nb = 0; double s = 0.0; long pbytes;
  struct tensor tn;
  struct stencil stc;
  struct flux fx;
  struct bbox box;
  struct metric met;
  struct ghost gh;
  struct io_req req;
  bc_fn bc;
  if (scale <= 0) { scale = 60; }
  par.dt = 0.01; par.dx = 0.1; par.order = 2;
  pbytes = 2 * sizeof(struct param);
  tn.t00 = 1.0; tn.t01 = 0.5; tn.t11 = 1.0;
  stc.c0 = 1.0; stc.c1 = -2.0; stc.c2 = 1.0;
  fx.fin = 3.0; fx.fout = 1.0;
  init_grid(40000);
  box.lo = 0; box.hi = 40000;
  met.g.cx = 1.0; met.g.cy = 2.0; met.g.cz = 3.0; met.lapse = 1.0;
  gh.width = 2; gh.dir = 1;
  req.kind = 1; req.bytes = 8;
  bc = (&bc_reflect);
  for (step = 0; step < scale; step++) {
    sweep(par.dt);
    if (step % 4 == 0) { nb = nb + apply_boundaries(step); }
  }
  s = metric_hash(&met);
  nb = nb + clip(&box) + bc(&gh) + pbytes;
  s = s + tensor_hash(&tn) + stencil_mid(&stc) + flux_net(&fx);
  cactus_io(&req, req.bytes);
  residual = grid[npts / 2].u + s;
  printf("cactus residual %.6f nb %ld\n", residual, nb);
  return 0;
}
|}

let train_args = [ 30 ]
let ref_args = [ 60 ]
