(** Model of lucille (open-source global-illumination renderer).

    Almost every type is invalidated only by casts or taken addresses —
    lucille has Table 1's highest relaxed share (88.7%) — and the ray-state
    queue is legal, dynamically allocated and splittable for a small gain. *)

let name = "lucille"

let source = {|
/* renderer flavour: ray queues and shading stacks */

struct raystate {
  double ox;
  double oy;
  double oz;
  double dx2;
  double dy2;
  double dz2;
  long depth;
  long pixel;
  long bounce_tag;
  long debug_mark;
};

struct shadevec { double s0; double s1; double s2; };

struct bsdf { double kd; double ks; double n; };

struct photon { double px; double py; double pz; double power; };

struct kdnode { long axis; double splitpos; };

struct film { long w; long h; };

struct sampler { long seq; long dim; };

struct matstack { long top; long cap; };

struct rnd { long s0; long s1; };

struct raystate *queue;
long nrays;
double radiance;

void gen_rays(long n) {
  long i;
  nrays = n;
  queue = (struct raystate*)malloc(n * sizeof(struct raystate));
  for (i = 0; i < nrays; i++) {
    queue[i].ox = (i % 640) * 0.0015625;
    queue[i].oy = (i / 640) * 0.0020833;
    queue[i].oz = 0.0;
    queue[i].dx2 = 0.0;
    queue[i].dy2 = 0.0;
    queue[i].dz2 = 1.0;
    queue[i].depth = 0;
    queue[i].pixel = i;
    queue[i].bounce_tag = 0;
    queue[i].debug_mark = 0;
  }
}

double trace_all(double tmin) {
  long i; double acc = 0.0;
  for (i = 0; i < nrays; i++) {
    acc = acc + queue[i].ox * queue[i].dx2
          + queue[i].oy * queue[i].dy2
          + queue[i].oz + queue[i].dz2 * tmin;
  }
  return acc;
}

long bounce_pass(long gen) {
  long i; long n = 0;
  for (i = 0; i < nrays; i = i + 32) {
    if (queue[i].depth < 4) {
      queue[i].bounce_tag = gen;
      queue[i].debug_mark = queue[i].pixel % 3;
      n = n + 1;
    }
  }
  return n;
}

/* CSTF: shading vectors as raw doubles */
double sv_dot(struct shadevec *a, struct shadevec *b) {
  double *ra; double *rb;
  ra = (double*)a;
  rb = (double*)b;
  return ra[0] * rb[0] + ra[1] * rb[1] + ra[2] * rb[2];
}

/* ATKN on bsdf */
double bsdf_eval(struct bsdf *m, double cosv) {
  double *kp;
  kp = &m->kd;
  return *kp + m->ks * cosv;
}

/* CSTF on photon */
double photon_hash(struct photon *p) {
  double *raw;
  raw = (double*)p;
  return raw[0] + raw[1] * 3.0 + raw[2] * 9.0 + raw[3];
}

/* ATKN on kdnode */
double kd_visit(struct kdnode *k) {
  double *sp;
  sp = &k->splitpos;
  return *sp + k->axis;
}

/* ATKN on sampler */
long next_sample(struct sampler *s) {
  long *qp;
  qp = &s->seq;
  *qp = *qp + 1;
  return *qp * 2 + s->dim;
}

/* CSTF on matstack */
long stack_hash(struct matstack *m) {
  long *raw;
  raw = (long*)m;
  return raw[0] + raw[1];
}

/* CSTT: rnd states from untyped pool */
struct rnd *make_rnd() {
  struct rnd *r;
  r = (struct rnd*)malloc(16);
  r->s0 = 12345; r->s1 = 67890;
  return r;
}

int main(int scale) {
  long pass; long acc = 0; double sum = 0.0;
  struct shadevec sa; struct shadevec sb;
  struct bsdf mat;
  struct photon ph;
  struct kdnode kn;
  struct film fl;
  struct sampler sm;
  struct matstack ms;
  struct rnd *rg;
  if (scale <= 0) { scale = 16; }
  gen_rays(80000);
  sa.s0 = 1.0; sa.s1 = 0.0; sa.s2 = 0.0;
  sb.s0 = 0.5; sb.s1 = 0.5; sb.s2 = 0.0;
  mat.kd = 0.6; mat.ks = 0.3; mat.n = 32.0;
  ph.px = 1.0; ph.py = 2.0; ph.pz = 3.0; ph.power = 0.5;
  kn.axis = 0; kn.splitpos = 1.5;
  fl.w = 640; fl.h = 480;
  sm.seq = 0; sm.dim = 2;
  ms.top = 0; ms.cap = 16;
  rg = make_rnd();
  for (pass = 0; pass < scale; pass++) {
    sum = sum + trace_all(pass * 0.1);
    acc = acc + bounce_pass(pass);
    acc = acc + next_sample(&sm);
    sum = sum + sv_dot(&sa, &sb) + bsdf_eval(&mat, 0.5) + kd_visit(&kn);
    if (pass % 4 == 0) {
      sum = sum + photon_hash(&ph);
      acc = acc + stack_hash(&ms) + rg->s0 % 7;
    }
  }
  radiance = sum + fl.w * 0.0 + acc * 0.001;
  printf("lucille radiance %.4f\n", radiance);
  return 0;
}
|}

let train_args = [ 8 ]
let ref_args = [ 16 ]
