(** Model of SPEC2000 179.art (Adaptive Resonance Theory neural network) —
    the paper's structure-peeling showcase.

    "The SPEC2000 floating point benchmark 179.art has a dynamically
    allocated array of structures containing only floating point fields
    (and a non-recursive pointer). The result of the dynamic allocation is
    assigned to a global pointer variable P; no other local or global
    pointers or variables of that type exist." The transformation peels the
    type into one single-field record per field (Figure 1c) and the paper
    reports a 78.2% gain.

    The f1 neuron array here is sized well beyond the 6 MB L2, and the
    dominant loops touch one or two of the eight double fields per pass, so
    the original layout wastes 8x cache-line bandwidth — which is exactly
    what peeling recovers.

    Roster legality (Table 1's art row: 3 types, 2 legal with and without
    relaxation): [f1_neuron] (legal, peeled), [xy_coord] (legal but not
    dynamically allocated — no transformation), [io_buf] (escapes to the
    library function [fwrite]: LIBC, not relax-recoverable). *)

let name = "179.art"

let source = {|
/* ART-like two-phase neural computation, modelled on SPEC2000 179.art */

extern long fwrite(char*, long, long, long);

struct f1_neuron {
  double I;
  double W;
  double X;
  double V;
  double U;
  double P;
  double Q;
  double R;
};

struct xy_coord { long x; long y; };

struct io_buf { char tag; long len; };

struct f1_neuron *f1_layer;
struct io_buf out_buf;
long numf1s;

void init_neurons(long n) {
  long i;
  numf1s = n;
  f1_layer = (struct f1_neuron*)malloc(n * sizeof(struct f1_neuron));
  for (i = 0; i < n; i++) {
    f1_layer[i].I = (i % 256) * 0.00390625;
    f1_layer[i].W = 0.2;
    f1_layer[i].X = 0.0;
    f1_layer[i].V = 0.0;
    f1_layer[i].U = 0.0;
    f1_layer[i].P = 0.0;
    f1_layer[i].Q = 0.0;
    f1_layer[i].R = 0.0;
  }
}

/* phase 1: the dominant loops — each touches one or two fields across the
   whole (larger than L2) array */
double compute_W(double a) {
  long i; double norm = 0.0;
  for (i = 0; i < numf1s; i++) {
    f1_layer[i].W = f1_layer[i].I + a * f1_layer[i].W;
    norm = norm + f1_layer[i].W;
  }
  return norm;
}

double compute_X(double norm) {
  long i; double sum = 0.0;
  for (i = 0; i < numf1s; i++) {
    f1_layer[i].X = f1_layer[i].W / norm;
    sum = sum + f1_layer[i].X;
  }
  return sum;
}

/* phase 2: occasional resonance pass over the remaining fields */
double resonate(double rho) {
  long i; double match = 0.0;
  for (i = 0; i < numf1s; i++) {
    f1_layer[i].V = f1_layer[i].X * rho;
    f1_layer[i].U = f1_layer[i].V * 0.5;
    f1_layer[i].P = f1_layer[i].U + f1_layer[i].Q;
    f1_layer[i].Q = f1_layer[i].P * 0.25;
    f1_layer[i].R = f1_layer[i].I * f1_layer[i].P;
    match = match + f1_layer[i].R;
  }
  return match;
}

void flush_output(long v) {
  out_buf.tag = 'a';
  out_buf.len = v;
  fwrite(&out_buf, 1, 1, v);  /* io_buf escapes to a library function */
}

int main(int scale) {
  long it; double norm = 0.0; double s = 0.0; double m = 0.0;
  struct xy_coord pos;
  if (scale <= 0) { scale = 14; }
  init_neurons(150000);
  pos.x = 0; pos.y = 0;
  for (it = 0; it < scale; it++) {
    norm = compute_W(0.75);
    s = s + compute_X(norm);
    if (it % 4 == 3) { m = m + resonate(0.9); }
    pos.x = pos.x + 1;
  }
  pos.y = (long)s;
  printf("art norm %.4f sum %.4f match %.4f pos %ld %ld\n",
         norm, s, m, pos.x, pos.y);
  flush_output((long)m);
  return 0;
}
|}

let train_args = [ 5 ]
let ref_args = [ 7 ]
