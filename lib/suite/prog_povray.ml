(** Model of povray (ray tracer, C with C++-ish object tables).

    Object "classes" dispatch through function-pointer tables, so the
    central scene types escape to indirect calls (IND); vectors and colours
    are cast-serialised everywhere (CSTF/CSTT). The strict legal share is
    tiny and the relaxed share large — Table 1's povray row (5.1% vs
    75.3%). Nothing is profitably transformable. *)

let name = "povray"

let source = {|
/* ray tracer flavour with function-pointer object dispatch */

struct vec3 { double vx; double vy; double vz; };

struct colour { double r; double g; double b; double t; };

struct ray { struct vec3 origin; struct vec3 dir; };   /* NEST */

struct sphere { double cx; double cy; double cz; double rad; };

struct plane { double nx; double ny; double nz; double d; };

struct box3 { double lo0; double lo1; double hi0; double hi1; };

struct texture { long kind; double scale; };

struct finish { double ambient; double diffuse; };

struct camera { double px; double py; double pz; double zoom; };

struct light { double lx; double ly; double lz; double power; };

struct isect { double t; long obj; };

struct pigment { long pat; double freq; };

typedef double (*isect_fn)(struct sphere*, double);

extern long pov_write(struct isect*, long);

struct sphere *spheres;
long nspheres;
double image_sum;

void build_scene(long n) {
  long i;
  nspheres = n;
  spheres = (struct sphere*)malloc(n * sizeof(struct sphere));
  for (i = 0; i < nspheres; i++) {
    spheres[i].cx = (i % 13) * 1.0;
    spheres[i].cy = (i % 7) * 1.0;
    spheres[i].cz = (i % 5) * 1.0;
    spheres[i].rad = 1.0 + (i % 3);
  }
}

/* IND: sphere escapes to the dispatch table */
double sphere_isect(struct sphere *s, double t) {
  double dx;
  dx = s->cx - t;
  return dx * dx + s->rad;
}

double trace(isect_fn fn, double t0) {
  long i; double best = 1000000.0; double t;
  for (i = 0; i < nspheres; i++) {
    t = fn(spheres + i, t0);
    if (t < best) { best = t; }
  }
  return best;
}

/* CSTF on vec3: vector maths through raw doubles */
double vdot_raw(struct vec3 *a, struct vec3 *b) {
  double *ra; double *rb;
  ra = (double*)a;
  rb = (double*)b;
  return ra[0] * rb[0] + ra[1] * rb[1] + ra[2] * rb[2];
}

/* CSTF on colour */
double colour_sum(struct colour *c) {
  double *raw; double s = 0.0; long i;
  raw = (double*)c;
  for (i = 0; i < 4; i++) { s = s + raw[i]; }
  return s;
}

/* ATKN on plane */
double plane_eval(struct plane *p, double x) {
  double *np;
  np = &p->nx;
  return (*np) * x + p->d;
}

/* ATKN on box3 */
double box_span(struct box3 *b) {
  double *lo;
  lo = &b->lo0;
  return b->hi0 - (*lo) + b->hi1 - b->lo1;
}

/* CSTT: texture from an untyped pool */
struct texture *alloc_texture() {
  struct texture *t;
  t = (struct texture*)malloc(16);
  t->kind = 1; t->scale = 2.0;
  return t;
}

/* CSTT: pigment likewise */
struct pigment *alloc_pigment() {
  struct pigment *p;
  p = (struct pigment*)malloc(16);
  p->pat = 3; p->freq = 0.5;
  return p;
}

/* ATKN on finish */
double finish_eval(struct finish *f) {
  double *ap;
  ap = &f->ambient;
  return *ap + f->diffuse;
}

/* ATKN on light */
double light_at(struct light *l, double d) {
  double *pw;
  pw = &l->power;
  return *pw / (d + l->lx * 0.0 + 1.0);
}

int main(int scale) {
  long px; long i; double sum = 0.0;
  struct vec3 u; struct vec3 v;
  struct colour col;
  struct ray rr;
  struct plane pl;
  struct box3 bx;
  struct camera cam;
  struct light li;
  struct isect hit;
  struct texture *tex;
  struct pigment *pig;
  struct finish fin;
  isect_fn fn;
  if (scale <= 0) { scale = 30; }
  build_scene(3000);
  u.vx = 1.0; u.vy = 0.0; u.vz = 0.0;
  v.vx = 0.5; v.vy = 0.5; v.vz = 0.0;
  col.r = 0.1; col.g = 0.2; col.b = 0.3; col.t = 0.0;
  rr.origin.vx = 0.0; rr.origin.vy = 0.0; rr.origin.vz = 0.0;
  rr.dir.vx = 0.0; rr.dir.vy = 0.0; rr.dir.vz = 1.0;
  pl.nx = 0.0; pl.ny = 1.0; pl.nz = 0.0; pl.d = 4.0;
  bx.lo0 = 0.0; bx.lo1 = 0.0; bx.hi0 = 2.0; bx.hi1 = 2.0;
  cam.px = 0.0; cam.py = 1.0; cam.pz = -5.0; cam.zoom = 1.5;
  li.lx = 3.0; li.ly = 3.0; li.lz = -3.0; li.power = 10.0;
  fin.ambient = 0.1; fin.diffuse = 0.7;
  tex = alloc_texture();
  pig = alloc_pigment();
  fn = (&sphere_isect);
  hit.t = 0.0; hit.obj = -1;
  for (px = 0; px < scale; px++) {
    sum = sum + trace(fn, px * 0.01 + cam.zoom);
    sum = sum + vdot_raw(&u, &v) + plane_eval(&pl, px * 1.0);
    for (i = 0; i < 16; i++) {
      sum = sum + light_at(&li, i * 0.5) + finish_eval(&fin);
    }
    if (px % 8 == 0) {
      sum = sum + colour_sum(&col) + box_span(&bx)
            + rr.dir.vz + tex->scale + pig->freq;
    }
  }
  hit.t = sum;
  pov_write(&hit, 4);
  image_sum = sum + hit.t;
  printf("povray sum %.4f\n", image_sum);
  return 0;
}
|}

let train_args = [ 15 ]
let ref_args = [ 30 ]
