(** Model of ssearch (Smith–Waterman sequence alignment).

    The smallest roster entry, with Table 1's most even mix: 10 types, 4
    strictly legal (40%), 5 under relaxation (50%). The score-cell type is
    legal and splittable: the DP sweep touches the running scores while the
    traceback metadata rides along cold in the same record. *)

let name = "ssearch"

let source = {|
/* Smith-Waterman flavour: banded DP over score cells */

struct cell {
  long h;
  long e;
  long f;
  long trace_op;
  long trace_len;
};

struct seqinfo { long len; long offset; };

struct submat { long match_s; long mismatch_s; };

struct gapmodel { long open_g; long extend_g; };

struct hit { long pos; long score2; };

struct histo { long bin; long count2; };

struct stats { long best; long mean1000; };

struct workctx { long row; long col; };

struct dbentry { long id; long len2; };

struct aligncfg { long band; long mode; };

extern long output_hit(struct hit*, long);
extern long db_read(struct dbentry*, long);
extern long load_matrix(struct submat*, long);
extern long cfg_parse(struct aligncfg*, long);

struct cell *row;
long rowlen;
long best_score;

void init_row(long n) {
  long i;
  rowlen = n;
  row = (struct cell*)malloc(n * sizeof(struct cell));
  for (i = 0; i < rowlen; i++) {
    row[i].h = 0;
    row[i].e = 0;
    row[i].f = 0;
    row[i].trace_op = 0;
    row[i].trace_len = 0;
  }
}

long sweep(long q, long open_g, long ext_g) {
  long j; long best = 0; long diag = 0; long sc; long prev_h;
  for (j = 1; j < rowlen; j++) {
    sc = ((q + j) % 4 == 0) ? 2 : -1;
    prev_h = row[j].h;
    row[j].e = (row[j].e - ext_g > row[j].h - open_g)
               ? (row[j].e - ext_g) : (row[j].h - open_g);
    row[j].f = (row[j-1].f - ext_g > row[j-1].h - open_g)
               ? (row[j-1].f - ext_g) : (row[j-1].h - open_g);
    row[j].h = diag + sc;
    if (row[j].e > row[j].h) { row[j].h = row[j].e; }
    if (row[j].f > row[j].h) { row[j].h = row[j].f; }
    if (row[j].h < 0) { row[j].h = 0; }
    if (row[j].h > best) { best = row[j].h; }
    diag = prev_h;
  }
  return best;
}

/* the traceback metadata is touched only on strong hits */
long record_trace(long best) {
  long j; long n = 0;
  for (j = 0; j < rowlen; j = j + 64) {
    if (row[j].h > best / 2) {
      row[j].trace_op = 1;
      row[j].trace_len = row[j].h;
      n = n + 1;
    }
  }
  return n;
}

/* LIBC on hit */
long hit_probe(struct hit *ht) {
  return output_hit(ht, ht->pos) + ht->score2;
}

/* MSET on histo */
void histo_clear(struct histo *hg) {
  memset(hg, 0, 16);
  hg->bin = 1;
}

/* ATKN on workctx */
long ctx_step(struct workctx *w) {
  long *cp;
  cp = &w->col;
  *cp = *cp + 1;
  return *cp + w->row;
}

/* LIBC on dbentry */
long db_fetch(struct dbentry *d) {
  return db_read(d, d->id) + d->len2;
}

/* LIBC on aligncfg */
struct aligncfg *make_cfg() {
  struct aligncfg *c;
  c = (struct aligncfg*)malloc(1 * sizeof(struct aligncfg));
  c->band = 32; c->mode = 1;
  cfg_parse(c, 0);
  return c;
}

int main(int scale) {
  long q; long acc = 0; long best = 0;
  struct seqinfo si;
  struct submat sm;
  struct gapmodel gm;
  struct hit ht;
  struct histo hg;
  struct stats st;
  struct workctx wc;
  struct dbentry db;
  struct aligncfg *cfg;
  if (scale <= 0) { scale = 300; }
  init_row(20000);
  si.len = 20000; si.offset = 0;
  sm.match_s = 2; sm.mismatch_s = -1;
  acc = acc + load_matrix(&sm, 1);
  gm.open_g = 10; gm.extend_g = 1;
  ht.pos = 0; ht.score2 = 0;
  hg.bin = 0; hg.count2 = 0;
  st.best = 0; st.mean1000 = 0;
  wc.row = 0; wc.col = 0;
  db.id = 7; db.len2 = 20000;
  cfg = make_cfg();
  for (q = 0; q < scale; q++) {
    best = sweep(q, gm.open_g, gm.extend_g);
    if (best > st.best) { st.best = best; }
    if (q % 16 == 0) {
      acc = acc + record_trace(best) + hit_probe(&ht) + ctx_step(&wc);
      histo_clear(&hg);
      acc = acc + hg.bin + db_fetch(&db) + cfg->band;
    }
  }
  st.mean1000 = acc;
  best_score = st.best + si.len % 7 + sm.match_s;
  printf("ssearch best %ld acc %ld\n", best_score, acc);
  return 0;
}
|}

let train_args = [ 150 ]
let ref_args = [ 300 ]
