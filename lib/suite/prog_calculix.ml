(** Model of calculix (finite-element solver).

    Calculix is the Table 1 row where relaxation buys {e nothing}: the
    violations are LIBC escapes into BLAS/solver library routines, nesting,
    [memset] streaming and [sizeof] arithmetic — none of which a sharper
    points-to analysis would recover, so Legal% equals Relax%. The one
    legal, dynamically-allocated type ([felem]) is split, and like the
    paper we observe a small in-the-noise effect because the element table
    is cache-resident. *)

let name = "calculix"

let source = {|
/* finite-element flavour: element assembly against library solvers */

struct felem {
  double e_stress;
  double e_strain;
  double e_energy;
  long e_mat;
  long e_group;
  long e_flags;
};

struct stiff { double k00; double k01; double k11; };

struct nodal { struct stiff k; double load; };  /* NEST with stiff */

struct material { double young; double poisson; };

struct step { long num; long incr; };

struct bvec { double v0; double v1; };

struct contact { long pair; long state; };

extern double dnrm2(struct bvec*, long);
extern long spooles_factor(struct stiff*, long);
extern long dgemm_like(struct material*, long);

struct felem *elems;
struct material *mats;
long nelem;
double norm;

void mesh(long n) {
  long i;
  nelem = n;
  elems = (struct felem*)malloc(n * sizeof(struct felem));
  mats = (struct material*)malloc(8 * sizeof(struct material));
  for (i = 0; i < nelem; i++) {
    elems[i].e_stress = (i % 11) * 0.5;
    elems[i].e_strain = 0.0;
    elems[i].e_energy = 0.0;
    elems[i].e_mat = i % 8;
    elems[i].e_group = i % 4;
    elems[i].e_flags = 0;
  }
  for (i = 0; i < 8; i++) { mats[i].young = 200.0 + i; mats[i].poisson = 0.3; }
}

void assemble(double c) {
  long i;
  for (i = 0; i < nelem; i++) {
    elems[i].e_strain = elems[i].e_stress * c / mats[elems[i].e_mat].young;
    elems[i].e_energy = elems[i].e_energy
                        + elems[i].e_stress * elems[i].e_strain;
  }
}

long regroup(long stepno) {
  long i; long n = 0;
  for (i = 0; i < nelem; i = i + 16) {
    if (elems[i].e_flags == 0) {
      elems[i].e_group = (elems[i].e_group + stepno) % 4;
      n = n + 1;
    }
  }
  return n;
}

int main(int scale) {
  long s; long acc = 0; double total = 0.0; long stepbytes;
  struct stiff k;
  struct nodal nd;
  struct step st;
  struct bvec rhs;
  struct contact *pairs;
  if (scale <= 0) { scale = 60; }
  mesh(30000);
  k.k00 = 2.0; k.k01 = -1.0; k.k11 = 2.0;
  nd.k.k00 = 1.0; nd.k.k01 = 0.0; nd.k.k11 = 1.0; nd.load = 9.81;
  st.num = 0; st.incr = 1;
  rhs.v0 = 1.0; rhs.v1 = -1.0;
  /* sizeof in plain arithmetic: the FE cannot keep the constant safe */
  stepbytes = 4 * sizeof(struct step);
  pairs = (struct contact*)malloc(128 * sizeof(struct contact));
  memset(pairs, 0, 128 * sizeof(struct contact));
  for (s = 0; s < scale; s++) {
    assemble(0.5 + s * 0.001);
    if (s % 4 == 0) { acc = acc + regroup(s); }
    st.num = st.num + st.incr;
    pairs[s % 128].pair = s;
    pairs[s % 128].state = 1;
  }
  /* stiffness blocks, rhs vectors and material tables escape to library
     solvers: LIBC, not recoverable by relaxation */
  total = dnrm2(&rhs, 2) + nd.load;
  acc = acc + spooles_factor(&k, 3) + dgemm_like(mats, 8)
        + st.num + stepbytes + pairs[s % 128].state;
  norm = elems[nelem / 3].e_energy + total;
  printf("calculix norm %.6f acc %ld\n", norm, acc);
  return 0;
}
|}

let train_args = [ 30 ]
let ref_args = [ 60 ]
