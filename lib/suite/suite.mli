(** The benchmark roster: the paper's twelve programs plus the two §3.4
    case studies, with the paper's published numbers attached for the
    paper-vs-measured comparisons in EXPERIMENTS.md. *)

type paper_row = {
  p_types : int;        (** Table 1 "Types" *)
  p_legal : int;        (** Table 1 "Legal" *)
  p_legal_pct : float;
  p_relax : int;        (** Table 1 "Relax" *)
  p_relax_pct : float;
  p_perf : string;      (** Table 3 performance effect, as published *)
}

type entry = {
  name : string;
  source : string;
  train_args : int list;
  ref_args : int list;
  paper : paper_row option;  (** [None] for the case-study programs *)
}

val roster : entry list
(** The twelve Table 1 programs, in the paper's order. *)

val case_studies : entry list
(** The two §3.4 SPEC2006 sketches. *)

val find : string -> entry
(** Lookup by name in roster or case studies; raises [Not_found]. *)

val paper_avg_legal_pct : float
(** 20.9 — Table 1's average row. *)

val paper_avg_relax_pct : float
(** 65.7 *)
