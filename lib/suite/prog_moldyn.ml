(** Model of the moldyn molecular-dynamics benchmark.

    The particle record interleaves hot position/force fields with colder
    bookkeeping (id, cell, mass, charge, flags, epoch). The force pass
    gathers pseudo-neighbours through an index hash — a scattered,
    miss-heavy access pattern over a particle array sized beyond the L2 —
    so splitting the cold third out of the record raises the useful-bytes
    density per cache line; the paper reports 21.8% (no PBO) to 30.9%
    (PBO) for this program.

    Legality mix per Table 1's moldyn row (4 types, 1 strictly legal, 4
    under relaxation — 100%): [particle] legal; [cell] — field address
    stored (ATKN); [props] — cast abuse (CSTF); [simstate] — field address
    escapes into pointer arithmetic (ATKN). All violations are
    relax-recoverable. *)

let name = "moldyn"

let source = {|
/* miniature molecular dynamics, modelled on moldyn */

struct particle {
  double x;
  double y;
  double z;
  double fx;
  double fy;
  double fz;
  double vx;
  double vy;
  double vz;
  long id;
  long cell;
  double mass;
  double charge;
  long flags;
  long epoch;
};

struct cell { long count; long first; };

struct props { double sigma; double eps; double cutoff; };

struct simstate { long steps; long nparts; double box; };

struct particle *parts;
struct cell *cells;
struct props prop;
struct simstate sim;
long npart;
double energy;

void setup(long n) {
  long i;
  npart = n;
  parts = (struct particle*)malloc(n * sizeof(struct particle));
  cells = (struct cell*)malloc(256 * sizeof(struct cell));
  for (i = 0; i < npart; i++) {
    parts[i].x = (i % 97) * 0.01;
    parts[i].y = (i % 89) * 0.01;
    parts[i].z = (i % 83) * 0.01;
    parts[i].fx = 0.0;
    parts[i].fy = 0.0;
    parts[i].fz = 0.0;
    parts[i].vx = 0.0;
    parts[i].vy = 0.0;
    parts[i].vz = 0.0;
    parts[i].id = i;
    parts[i].cell = i % 256;
    parts[i].mass = 1.0;
    parts[i].charge = (i % 2) * 2.0 - 1.0;
    parts[i].flags = 0;
    parts[i].epoch = 0;
  }
  for (i = 0; i < 256; i++) { cells[i].count = 0; cells[i].first = -1; }
}

/* scattered force gather: the dominant, miss-heavy kernel */
void compute_forces() {
  long i; long k; long j;
  double dx; double dy; double dz; double r2; double f;
  for (i = 0; i < npart; i++) {
    for (k = 0; k < 3; k++) {
      j = (i * 131 + k * 24593 + 7) % npart;
      dx = parts[i].x - parts[j].x;
      dy = parts[i].y - parts[j].y;
      dz = parts[i].z - parts[j].z;
      r2 = dx * dx + dy * dy + dz * dz + 0.25;
      f = 1.0 / r2;
      parts[i].fx = parts[i].fx + dx * f;
      parts[i].fy = parts[i].fy + dy * f;
      parts[i].fz = parts[i].fz + dz * f;
    }
  }
}

/* streaming integration: positions, velocities, forces */
void advance(double dt) {
  long i;
  for (i = 0; i < npart; i++) {
    parts[i].vx = parts[i].vx + parts[i].fx * dt;
    parts[i].vy = parts[i].vy + parts[i].fy * dt;
    parts[i].vz = parts[i].vz + parts[i].fz * dt;
    parts[i].x = parts[i].x + parts[i].vx * dt;
    parts[i].y = parts[i].y + parts[i].vy * dt;
    parts[i].z = parts[i].z + parts[i].vz * dt;
    parts[i].fx = 0.0;
    parts[i].fy = 0.0;
    parts[i].fz = 0.0;
  }
}

/* rare bookkeeping pass keeps the cold fields alive */
long rebin(long step) {
  long i; long moved = 0;
  for (i = 0; i < npart; i = i + 64) {
    if (parts[i].flags == 0) {
      parts[i].cell = (parts[i].id + step) % 256;
      parts[i].epoch = step;
      moved = moved + parts[i].cell + (long)parts[i].mass
              + (long)parts[i].charge;
    }
  }
  return moved;
}

double total_energy() {
  long i; double e = 0.0;
  for (i = 0; i < npart; i = i + 16) {
    e = e + parts[i].vx * parts[i].vx + parts[i].vy * parts[i].vy
        + parts[i].vz * parts[i].vz;
  }
  return e;
}

/* ATKN: the address of a cell field is stored and used indirectly */
long cell_probe(long c) {
  long *cp;
  cp = &cells[c % 256].count;
  *cp = *cp + 1;
  return *cp;
}

/* CSTF: props is serialised through a raw cast */
double props_hash() {
  double *raw; double h = 0.0; long i;
  raw = (double*)&prop;
  for (i = 0; i < 3; i++) { h = h + raw[i]; }
  return h;
}

/* ATKN on simstate: field address escapes into arithmetic */
long sim_probe() {
  long *sp;
  sp = &sim.steps;
  return sp[0];
}

int main(int scale) {
  long s; long misc = 0;
  if (scale <= 0) { scale = 8; }
  prop.sigma = 1.0; prop.eps = 0.5; prop.cutoff = 2.5;
  sim.steps = scale; sim.nparts = 0; sim.box = 10.0;
  setup(80000);
  for (s = 0; s < sim.steps; s++) {
    compute_forces();
    advance(0.001);
    misc = misc + rebin(s) + cell_probe(s);
  }
  energy = total_energy() + props_hash();
  misc = misc + sim_probe();
  printf("moldyn energy %.6f misc %ld\n", energy, misc);
  return 0;
}
|}

let train_args = [ 3 ]
let ref_args = [ 5 ]
