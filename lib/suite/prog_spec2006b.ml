(** Model of the paper's second SPEC2006 case study (§3.4):

    "Another C benchmark in this suite is strongly dominated by three loops
    over an array of record types containing only two fields, a floating
    point field and an 8-byte integer field. ... Peeling of this type
    resulted in a performance improvement of almost 40%. After splitting,
    the three loops are iterating over an array of integers, performing
    only a few fast integer operations."

    Three loops dominate; each touches only the integer field, so after
    peeling the program streams a dense integer array while the doubles
    stay untouched in their own allocation. *)

let name = "spec2006.peel2"

let source = {|
/* two-field record; three integer-only loops dominate */

struct pairrec {
  double weight;
  long key;
};

struct pairrec *tab;
long ntab;
long result;

void build(long n) {
  long i;
  ntab = n;
  tab = (struct pairrec*)malloc(n * sizeof(struct pairrec));
  for (i = 0; i < ntab; i++) {
    tab[i].weight = i * 0.5;
    tab[i].key = i * 2654435761 % 1048576;
  }
}

long loop1() {
  long i; long acc = 0;
  for (i = 0; i < ntab; i++) { acc = acc + (tab[i].key & 1023); }
  return acc;
}

long loop2() {
  long i; long acc = 0;
  for (i = 0; i < ntab; i++) { acc = acc ^ (tab[i].key >> 3); }
  return acc;
}

long loop3() {
  long i; long acc = 0;
  for (i = 0; i < ntab; i++) {
    if (tab[i].key % 7 == 0) { acc = acc + 1; }
  }
  return acc;
}

double weigh() {
  long i; double w = 0.0;
  for (i = 0; i < ntab; i = i + 256) { w = w + tab[i].weight; }
  return w;
}

int main(int scale) {
  long it; long acc = 0; double w = 0.0;
  if (scale <= 0) { scale = 6; }
  build(450000);
  for (it = 0; it < scale; it++) {
    acc = acc + loop1() + loop2() + loop3();
    if (it % 8 == 0) { w = w + weigh(); }
  }
  result = acc;
  printf("spec2006b acc %ld w %.2f\n", result, w);
  return 0;
}
|}

let train_args = [ 4 ]
let ref_args = [ 6 ]
