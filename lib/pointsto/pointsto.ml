module Item = struct
  (* provenance of a pointer value with respect to record types *)
  type t =
    | Field_ptr of string * int  (* address of one specific field *)
    | Obj_ptr of string          (* pointer to a whole object (array elt) *)
    | Raw_ptr of string          (* cast/arithmetic-derived view into it *)

  let compare = compare
end

module ItemSet = Set.Make (Item)

(* abstract cells holding pointer values *)
type cell =
  | Creg of string * int   (* function, register *)
  | Clocal of string * string
  | Cglobal of string
  | Cmem_field of string * int  (* contents of a struct field *)
  | Cmem_any of string          (* contents reached through collapsed views *)
  | Cret of string              (* return value of a function *)

type t = {
  cells : (cell, ItemSet.t) Hashtbl.t;
  mutable collapsed_set : (string, unit) Hashtbl.t;
  mutable deref_items : ItemSet.t;  (* items appearing in address positions *)
}

let get t c = Option.value ~default:ItemSet.empty (Hashtbl.find_opt t.cells c)

let add t c items changed =
  if not (ItemSet.is_empty items) then begin
    let old = get t c in
    let nu = ItemSet.union old items in
    if not (ItemSet.equal old nu) then begin
      Hashtbl.replace t.cells c nu;
      changed := true
    end
  end

let collapse t s = Hashtbl.replace t.collapsed_set s ()

(* arithmetic / scalar indexing turns any view into a raw view *)
let degrade items =
  ItemSet.map
    (fun it ->
      match it with
      | Item.Field_ptr (s, _) -> Item.Raw_ptr s
      | Item.Obj_ptr s -> Item.Raw_ptr s
      | Item.Raw_ptr s -> Item.Raw_ptr s)
    items

(* stepping a pointer by whole objects of [s] keeps object provenance *)
let degrade_struct_step s items =
  ItemSet.map
    (fun it ->
      match it with
      | Item.Obj_ptr s' when String.equal s' s -> Item.Obj_ptr s'
      | Item.Field_ptr (s', _) | Item.Obj_ptr s' | Item.Raw_ptr s' ->
        Item.Raw_ptr s')
    items

let analyze (prog : Ir.program) : t =
  let t =
    {
      cells = Hashtbl.create 128;
      collapsed_set = Hashtbl.create 8;
      deref_items = ItemSet.empty;
    }
  in
  let changed = ref true in
  let operand_items fname (o : Ir.operand) =
    match o with
    | Ir.Oreg r -> get t (Creg (fname, r))
    | Ir.Oimm _ | Ir.Ofimm _ -> ItemSet.empty
  in
  (* memory cells addressed by a pointer with the given provenance *)
  let mem_cells_of items =
    ItemSet.fold
      (fun it acc ->
        match it with
        | Item.Field_ptr (s, fi) -> Cmem_field (s, fi) :: acc
        | Item.Obj_ptr s | Item.Raw_ptr s -> Cmem_any s :: acc)
      items []
  in
  let note_deref items = t.deref_items <- ItemSet.union t.deref_items items in
  (* address-of a struct-typed variable yields an object pointer *)
  let globals_ty = Hashtbl.create 16 in
  List.iter (fun (n, ty, _) -> Hashtbl.replace globals_ty n ty) prog.globals;
  let rec obj_item (ty : Irty.t) =
    match ty with
    | Irty.Struct s -> ItemSet.singleton (Item.Obj_ptr s)
    | Irty.Array (u, _) -> obj_item u
    | _ -> ItemSet.empty
  in
  let param_cells = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      List.iteri
        (fun i (pname, _) ->
          Hashtbl.replace param_cells (f.Ir.fname, i) (Clocal (f.fname, pname)))
        f.Ir.fparams)
    prog.funcs;
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ir.func) ->
        let fn = f.fname in
        let reg r = Creg (fn, r) in
        let ops o = operand_items fn o in
        let locals_ty = Hashtbl.create 16 in
        List.iter (fun (n, ty) -> Hashtbl.replace locals_ty n ty) f.flocals;
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (fun (i : Ir.instr) ->
                match i.idesc with
                | Ir.Imov (r, o) -> add t (reg r) (ops o) changed
                | Ir.Ibin (r, _, _, a, b2) ->
                  (* pointer arithmetic through plain ops degrades *)
                  add t (reg r)
                    (degrade (ItemSet.union (ops a) (ops b2)))
                    changed
                | Ir.Iun (r, _, _, a) -> add t (reg r) (degrade (ops a)) changed
                | Ir.Icast (r, _, to_, v, _) -> (
                  let src = ops v in
                  match to_ with
                  | Irty.Ptr (Irty.Struct s) ->
                    add t (reg r)
                      (ItemSet.add (Item.Obj_ptr s) src)
                      changed
                  | _ -> add t (reg r) src changed)
                | Ir.Iload (r, a, _, _) ->
                  let addr = ops a in
                  note_deref addr;
                  List.iter
                    (fun mc -> add t (reg r) (get t mc) changed)
                    (mem_cells_of addr)
                | Ir.Istore (a, v, _, _) ->
                  let addr = ops a in
                  note_deref addr;
                  List.iter
                    (fun mc -> add t mc (ops v) changed)
                    (mem_cells_of addr)
                | Ir.Iaddrglob (r, g) -> (
                  match Hashtbl.find_opt globals_ty g with
                  | Some ty -> add t (reg r) (obj_item ty) changed
                  | None -> ())
                | Ir.Iaddrlocal (r, l) -> (
                  match Hashtbl.find_opt locals_ty l with
                  | Some ty -> add t (reg r) (obj_item ty) changed
                  | None -> ())
                | Ir.Iaddrstr _ | Ir.Iaddrfunc _ -> ()
                | Ir.Ifieldaddr (r, _, s, fi) ->
                  add t (reg r) (ItemSet.singleton (Item.Field_ptr (s, fi))) changed
                | Ir.Iptradd (r, b2, _, elem) -> (
                  let base = ops b2 in
                  match elem with
                  | Irty.Struct s ->
                    add t (reg r)
                      (ItemSet.add (Item.Obj_ptr s) (degrade_struct_step s base))
                      changed
                  | _ -> add t (reg r) (degrade base) changed)
                | Ir.Ialloc (r, _, _, elem) -> (
                  match elem with
                  | Irty.Struct s ->
                    add t (reg r) (ItemSet.singleton (Item.Obj_ptr s)) changed
                  | _ -> ())
                | Ir.Icall (dst, callee, args) -> (
                  match callee with
                  | Ir.Cdirect callee_name
                    when Ir.find_func prog callee_name <> None ->
                    List.iteri
                      (fun ai arg ->
                        match
                          Hashtbl.find_opt param_cells (callee_name, ai)
                        with
                        | Some pc -> add t pc (ops arg) changed
                        | None -> ())
                      args;
                    (match dst with
                    | Some r -> add t (reg r) (get t (Cret callee_name)) changed
                    | None -> ())
                  | Ir.Cdirect _ | Ir.Cbuiltin _ | Ir.Cextern _
                  | Ir.Cindirect _ ->
                    (* pointers escaping the analysed world collapse their
                       types *)
                    List.iter
                      (fun arg ->
                        ItemSet.iter
                          (fun it ->
                            match it with
                            | Item.Field_ptr (s, _) | Item.Obj_ptr s
                            | Item.Raw_ptr s ->
                              collapse t s)
                          (ops arg))
                      args)
                | Ir.Ifree _ -> ()
                | Ir.Imemset (d, _, _, _) ->
                  ItemSet.iter
                    (fun it ->
                      match it with
                      | Item.Field_ptr (s, _) | Item.Obj_ptr s
                      | Item.Raw_ptr s ->
                        collapse t s)
                    (ops d)
                | Ir.Imemcpy (d, s2, _, _) ->
                  ItemSet.iter
                    (fun it ->
                      match it with
                      | Item.Field_ptr (s, _) | Item.Obj_ptr s
                      | Item.Raw_ptr s ->
                        collapse t s)
                    (ItemSet.union (ops d) (ops s2)))
              b.instrs;
            match b.btermin with
            | Ir.Tret (Some o) -> add t (Cret fn) (ops o) changed
            | Ir.Tret None | Ir.Tjmp _ | Ir.Tbr _ -> ())
          f.fblocks;
        (* locals/globals written through Iaddrlocal/Iaddrglob addressing:
           handled via a second pass matching store-to-address-of *)
        List.iter
          (fun (b : Ir.block) ->
            (* map registers defined by address-of instructions *)
            let addr_of = Hashtbl.create 8 in
            List.iter
              (fun (i : Ir.instr) ->
                match i.idesc with
                | Ir.Iaddrlocal (r, l) -> Hashtbl.replace addr_of r (Clocal (fn, l))
                | Ir.Iaddrglob (r, g) -> Hashtbl.replace addr_of r (Cglobal g)
                | Ir.Istore (Ir.Oreg ar, v, _, _) -> (
                  match Hashtbl.find_opt addr_of ar with
                  | Some c -> add t c (ops v) changed
                  | None -> ())
                | Ir.Iload (r, Ir.Oreg ar, _, _) -> (
                  match Hashtbl.find_opt addr_of ar with
                  | Some c -> add t (reg r) (get t c) changed
                  | None -> ())
                | _ -> ())
              b.instrs)
          f.fblocks)
      prog.funcs
  done;
  (* final collapse detection: a raw view that is actually dereferenced
     collapses the type's field sets *)
  ItemSet.iter
    (fun it ->
      match it with
      | Item.Raw_ptr s -> collapse t s
      | Item.Field_ptr _ | Item.Obj_ptr _ -> ())
    t.deref_items;
  t

let collapsed t s = Hashtbl.mem t.collapsed_set s

let exposed_fields t s =
  ItemSet.fold
    (fun it acc ->
      match it with
      | Item.Field_ptr (s', fi) when String.equal s' s -> fi :: acc
      | Item.Field_ptr _ | Item.Obj_ptr _ | Item.Raw_ptr _ -> acc)
    t.deref_items []
  |> List.sort_uniq compare

let refutable t s = not (collapsed t s)
