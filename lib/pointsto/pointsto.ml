module Item = struct
  (* provenance of a pointer value with respect to record types *)
  type t =
    | Field_ptr of string * int  (* address of one specific field *)
    | Obj_ptr of string          (* pointer to a whole object (array elt) *)
    | Raw_ptr of string          (* cast/arithmetic-derived view into it *)

  let compare = compare
end

module ItemSet = Set.Make (Item)

(* abstract cells holding pointer values *)
type cell =
  | Creg of string * int   (* function, register *)
  | Clocal of string * string
  | Cglobal of string
  | Cmem_field of string * int  (* contents of a struct field *)
  | Cmem_any of string          (* contents reached through collapsed views *)
  | Cret of string              (* return value of a function *)

type event = {
  ev_fn : string;
  ev_iid : int;
  ev_loc : Ir.Loc.t;
  ev_what : string;
}

type t = {
  cells : (cell, ItemSet.t) Hashtbl.t;
  mutable collapsed_set : (string, unit) Hashtbl.t;
  mutable deref_items : ItemSet.t;  (* items appearing in address positions *)
  raw_origin : (string, event) Hashtbl.t;
      (* first site where a typed view of the struct degraded to raw *)
  raw_deref : (string, event) Hashtbl.t;
      (* first site where a raw view of the struct was dereferenced *)
  collapse_why : (string, event list) Hashtbl.t;
}

let get t c = Option.value ~default:ItemSet.empty (Hashtbl.find_opt t.cells c)

let add t c items changed =
  if not (ItemSet.is_empty items) then begin
    let old = get t c in
    let nu = ItemSet.union old items in
    if not (ItemSet.equal old nu) then begin
      Hashtbl.replace t.cells c nu;
      changed := true
    end
  end

(* the first collapse of a type fixes its provenance chain; later
   re-discoveries (the fixpoint revisits every instruction) are no-ops *)
let collapse ?(why = []) t s =
  if not (Hashtbl.mem t.collapsed_set s) then
    Hashtbl.replace t.collapse_why s why;
  Hashtbl.replace t.collapsed_set s ()

(* arithmetic / scalar indexing turns any view into a raw view *)
let degrade items =
  ItemSet.map
    (fun it ->
      match it with
      | Item.Field_ptr (s, _) -> Item.Raw_ptr s
      | Item.Obj_ptr s -> Item.Raw_ptr s
      | Item.Raw_ptr s -> Item.Raw_ptr s)
    items

(* stepping a pointer by whole objects of [s] keeps object provenance *)
let degrade_struct_step s items =
  ItemSet.map
    (fun it ->
      match it with
      | Item.Obj_ptr s' when String.equal s' s -> Item.Obj_ptr s'
      | Item.Field_ptr (s', _) | Item.Obj_ptr s' | Item.Raw_ptr s' ->
        Item.Raw_ptr s')
    items

let analyze (prog : Ir.program) : t =
  let t =
    {
      cells = Hashtbl.create 128;
      collapsed_set = Hashtbl.create 8;
      deref_items = ItemSet.empty;
      raw_origin = Hashtbl.create 8;
      raw_deref = Hashtbl.create 8;
      collapse_why = Hashtbl.create 8;
    }
  in
  let event fn (i : Ir.instr) fmt =
    Printf.ksprintf
      (fun what -> { ev_fn = fn; ev_iid = i.iid; ev_loc = i.iloc; ev_what = what })
      fmt
  in
  let note_origin fn (i : Ir.instr) s how =
    if not (Hashtbl.mem t.raw_origin s) then
      Hashtbl.replace t.raw_origin s
        (event fn i "pointer into struct '%s' degraded to a raw view by %s" s
           how)
  in
  (* typed views that [degrade] would turn raw *)
  let note_degrade fn i how items =
    ItemSet.iter
      (fun it ->
        match it with
        | Item.Field_ptr (s, _) | Item.Obj_ptr s -> note_origin fn i s how
        | Item.Raw_ptr _ -> ())
      items
  in
  let changed = ref true in
  let operand_items fname (o : Ir.operand) =
    match o with
    | Ir.Oreg r -> get t (Creg (fname, r))
    | Ir.Oimm _ | Ir.Ofimm _ -> ItemSet.empty
  in
  (* memory cells addressed by a pointer with the given provenance *)
  let mem_cells_of items =
    ItemSet.fold
      (fun it acc ->
        match it with
        | Item.Field_ptr (s, fi) -> Cmem_field (s, fi) :: acc
        | Item.Obj_ptr s | Item.Raw_ptr s -> Cmem_any s :: acc)
      items []
  in
  let note_deref fn (i : Ir.instr) items =
    t.deref_items <- ItemSet.union t.deref_items items;
    ItemSet.iter
      (fun it ->
        match it with
        | Item.Raw_ptr s ->
          if not (Hashtbl.mem t.raw_deref s) then
            Hashtbl.replace t.raw_deref s
              (event fn i "raw view of struct '%s' is dereferenced here" s)
        | Item.Field_ptr _ | Item.Obj_ptr _ -> ())
      items
  in
  (* address-of a struct-typed variable yields an object pointer *)
  let globals_ty = Hashtbl.create 16 in
  List.iter (fun (n, ty, _) -> Hashtbl.replace globals_ty n ty) prog.globals;
  let rec obj_item (ty : Irty.t) =
    match ty with
    | Irty.Struct s -> ItemSet.singleton (Item.Obj_ptr s)
    | Irty.Array (u, _) -> obj_item u
    | _ -> ItemSet.empty
  in
  let param_cells = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      List.iteri
        (fun i (pname, _) ->
          Hashtbl.replace param_cells (f.Ir.fname, i) (Clocal (f.fname, pname)))
        f.Ir.fparams)
    prog.funcs;
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ir.func) ->
        let fn = f.fname in
        let reg r = Creg (fn, r) in
        let ops o = operand_items fn o in
        let locals_ty = Hashtbl.create 16 in
        List.iter (fun (n, ty) -> Hashtbl.replace locals_ty n ty) f.flocals;
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (fun (i : Ir.instr) ->
                match i.idesc with
                | Ir.Imov (r, o) -> add t (reg r) (ops o) changed
                | Ir.Ibin (r, _, _, a, b2) ->
                  (* pointer arithmetic through plain ops degrades *)
                  let src = ItemSet.union (ops a) (ops b2) in
                  note_degrade fn i "pointer arithmetic" src;
                  add t (reg r) (degrade src) changed
                | Ir.Iun (r, _, _, a) ->
                  note_degrade fn i "pointer arithmetic" (ops a);
                  add t (reg r) (degrade (ops a)) changed
                | Ir.Icast (r, _, to_, v, _) -> (
                  let src = ops v in
                  match to_ with
                  | Irty.Ptr (Irty.Struct s) ->
                    add t (reg r)
                      (ItemSet.add (Item.Obj_ptr s) src)
                      changed
                  | _ -> add t (reg r) src changed)
                | Ir.Iload (r, a, _, _) ->
                  let addr = ops a in
                  note_deref fn i addr;
                  List.iter
                    (fun mc -> add t (reg r) (get t mc) changed)
                    (mem_cells_of addr)
                | Ir.Istore (a, v, _, _) ->
                  let addr = ops a in
                  note_deref fn i addr;
                  List.iter
                    (fun mc -> add t mc (ops v) changed)
                    (mem_cells_of addr)
                | Ir.Iaddrglob (r, g) -> (
                  match Hashtbl.find_opt globals_ty g with
                  | Some ty -> add t (reg r) (obj_item ty) changed
                  | None -> ())
                | Ir.Iaddrlocal (r, l) -> (
                  match Hashtbl.find_opt locals_ty l with
                  | Some ty -> add t (reg r) (obj_item ty) changed
                  | None -> ())
                | Ir.Iaddrstr _ | Ir.Iaddrfunc _ -> ()
                | Ir.Ifieldaddr (r, _, s, fi) ->
                  add t (reg r) (ItemSet.singleton (Item.Field_ptr (s, fi))) changed
                | Ir.Iptradd (r, b2, _, elem) -> (
                  let base = ops b2 in
                  match elem with
                  | Irty.Struct s ->
                    ItemSet.iter
                      (fun it ->
                        match it with
                        | Item.Obj_ptr s' when String.equal s' s -> ()
                        | Item.Field_ptr (s', _) | Item.Obj_ptr s' ->
                          note_origin fn i s'
                            (Printf.sprintf "indexing in struct '%s' steps" s)
                        | Item.Raw_ptr _ -> ())
                      base;
                    add t (reg r)
                      (ItemSet.add (Item.Obj_ptr s) (degrade_struct_step s base))
                      changed
                  | _ ->
                    note_degrade fn i "scalar indexing" base;
                    add t (reg r) (degrade base) changed)
                | Ir.Ialloc (r, _, _, elem) -> (
                  match elem with
                  | Irty.Struct s ->
                    add t (reg r) (ItemSet.singleton (Item.Obj_ptr s)) changed
                  | _ -> ())
                | Ir.Icall (dst, callee, args) -> (
                  match callee with
                  | Ir.Cdirect callee_name
                    when Ir.find_func prog callee_name <> None ->
                    List.iteri
                      (fun ai arg ->
                        match
                          Hashtbl.find_opt param_cells (callee_name, ai)
                        with
                        | Some pc -> add t pc (ops arg) changed
                        | None -> ())
                      args;
                    (match dst with
                    | Some r -> add t (reg r) (get t (Cret callee_name)) changed
                    | None -> ())
                  | Ir.Cdirect _ | Ir.Cbuiltin _ | Ir.Cextern _
                  | Ir.Cindirect _ ->
                    (* pointers escaping the analysed world collapse their
                       types *)
                    List.iter
                      (fun arg ->
                        ItemSet.iter
                          (fun it ->
                            match it with
                            | Item.Field_ptr (s, _) | Item.Obj_ptr s
                            | Item.Raw_ptr s ->
                              collapse t s
                                ~why:
                                  [ event fn i
                                      "pointer into struct '%s' escapes to \
                                       call '%s'"
                                      s
                                      (Ir.string_of_callee callee) ])
                          (ops arg))
                      args)
                | Ir.Ifree _ -> ()
                | Ir.Imemset (d, _, _, _) ->
                  ItemSet.iter
                    (fun it ->
                      match it with
                      | Item.Field_ptr (s, _) | Item.Obj_ptr s
                      | Item.Raw_ptr s ->
                        collapse t s
                          ~why:
                            [ event fn i
                                "pointer into struct '%s' is bulk-written by \
                                 memset"
                                s ])
                    (ops d)
                | Ir.Imemcpy (d, s2, _, _) ->
                  ItemSet.iter
                    (fun it ->
                      match it with
                      | Item.Field_ptr (s, _) | Item.Obj_ptr s
                      | Item.Raw_ptr s ->
                        collapse t s
                          ~why:
                            [ event fn i
                                "pointer into struct '%s' is bulk-copied by \
                                 memcpy"
                                s ])
                    (ItemSet.union (ops d) (ops s2)))
              b.instrs;
            match b.btermin with
            | Ir.Tret (Some o) -> add t (Cret fn) (ops o) changed
            | Ir.Tret None | Ir.Tjmp _ | Ir.Tbr _ -> ())
          f.fblocks;
        (* locals/globals written through Iaddrlocal/Iaddrglob addressing:
           handled via a second pass matching store-to-address-of *)
        List.iter
          (fun (b : Ir.block) ->
            (* map registers defined by address-of instructions *)
            let addr_of = Hashtbl.create 8 in
            List.iter
              (fun (i : Ir.instr) ->
                match i.idesc with
                | Ir.Iaddrlocal (r, l) -> Hashtbl.replace addr_of r (Clocal (fn, l))
                | Ir.Iaddrglob (r, g) -> Hashtbl.replace addr_of r (Cglobal g)
                | Ir.Istore (Ir.Oreg ar, v, _, _) -> (
                  match Hashtbl.find_opt addr_of ar with
                  | Some c -> add t c (ops v) changed
                  | None -> ())
                | Ir.Iload (r, Ir.Oreg ar, _, _) -> (
                  match Hashtbl.find_opt addr_of ar with
                  | Some c -> add t (reg r) (get t c) changed
                  | None -> ())
                | _ -> ())
              b.instrs)
          f.fblocks)
      prog.funcs
  done;
  (* final collapse detection: a raw view that is actually dereferenced
     collapses the type's field sets; the chain explains where the raw
     view came from and where it was dereferenced *)
  ItemSet.iter
    (fun it ->
      match it with
      | Item.Raw_ptr s ->
        let chain =
          Option.to_list (Hashtbl.find_opt t.raw_origin s)
          @ Option.to_list (Hashtbl.find_opt t.raw_deref s)
        in
        collapse t s ~why:chain
      | Item.Field_ptr _ | Item.Obj_ptr _ -> ())
    t.deref_items;
  t

let collapsed t s = Hashtbl.mem t.collapsed_set s

let why_collapsed t s =
  Option.value ~default:[] (Hashtbl.find_opt t.collapse_why s)

let exposed_fields t s =
  ItemSet.fold
    (fun it acc ->
      match it with
      | Item.Field_ptr (s', fi) when String.equal s' s -> fi :: acc
      | Item.Field_ptr _ | Item.Obj_ptr _ | Item.Raw_ptr _ -> acc)
    t.deref_items []
  |> List.sort_uniq compare

let refutable t s = not (collapsed t s)
