(** Field-sensitive, flow-insensitive pointer provenance analysis — the
    "more precise analysis" of §2.2.

    The paper tolerates CSTT/CSTF/ATKN wholesale to get an {e upper bound}
    on what its field-sensitive Points-To could recover ("if the address of
    a field is taken, Points-To may be able to derive that no other field
    can be accessed via this exposed address... If other fields can be
    accessed, Points-To will collapse the Points-To set for all fields").
    This module implements the real test: it tracks where pointers {e into}
    each record type come from (a specific field, the whole object, or a
    cast-derived raw view), propagates provenance flow-insensitively
    through registers, locals, globals, struct-typed memory and direct
    calls, and reports a type as {e collapsed} when some dereferenced
    pointer could reach more than one of its fields.

    A type whose only legality violations are CSTT/CSTF/ATKN and which is
    not collapsed is safe to transform under points-to reasoning; a
    collapsed type stays invalid even under the paper's relaxed counting,
    which is exactly the gap between the "Points-To" and "Relax" columns in
    our extended Table 1. *)

type t

type event = {
  ev_fn : string;    (** function containing the construct *)
  ev_iid : int;      (** instruction id *)
  ev_loc : Ir.Loc.t;
  ev_what : string;  (** human-readable step description *)
}
(** One step of a provenance chain: a concrete instruction that moved a
    type towards collapse. *)

val analyze : Ir.program -> t

val collapsed : t -> string -> bool
(** Some exposed pointer into the type can reach multiple fields (or the
    provenance escaped the analysis). *)

val why_collapsed : t -> string -> event list
(** The provenance chain recorded when the type first collapsed — [[]]
    iff the type is not collapsed. An escape / [memset] / [memcpy]
    collapse is a single event naming the call; a raw-view collapse is
    the chain [origin; dereference]: where a typed pointer into the
    struct first degraded to a raw view (cast arithmetic or scalar
    indexing), then where that raw view was dereferenced. *)

val exposed_fields : t -> string -> int list
(** Fields of the type whose address is held in some dereferenced pointer
    cell (sorted). *)

val refutable : t -> string -> bool
(** [not (collapsed t s)] — the CSTT/CSTF/ATKN findings on this type are
    refuted by the points-to analysis. *)
