(** The PBO use phase: match a feedback file against a (re)compiled program.

    "The application's control flow graph is constructed and matched against
    the CFG constructed from the data found in the feedback file. This
    matching is supported by source line information and an additional
    counting mechanism to distinguish between multiple expressions in a
    statement" (§3.1).

    Matching is signature-based (line, column, ordinal); edges present in
    the feedback but absent from the current CFG are dropped and counted in
    [unmatched_edges], which tests use to verify robustness against
    perturbed CFGs. *)

type func_counts = {
  entry : float;
  block : float array;        (** execution count per block id *)
  edge : (int * int -> float);  (** count of a (src, dst) edge *)
}

type t = {
  counts : (string, func_counts) Hashtbl.t;
  instr_dcache : (int, Feedback.dstats) Hashtbl.t;
      (** d-cache samples re-attributed to current instruction ids *)
  unmatched_edges : int;
}

val apply : Ir.program -> Feedback.t -> t

val func_counts : t -> string -> func_counts option
