let default_exponent = 1.5
let recursion_factor = 2.0

type t = {
  ng : (string, float) Hashtbl.t;
  locals : (string, Staticfreq.t) Hashtbl.t;
  prog : Ir.program;
}

let address_taken (prog : Ir.program) =
  let taken = Hashtbl.create 8 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Iaddrfunc (_, name) -> Hashtbl.replace taken name ()
              | _ -> ())
            b.instrs)
        f.fblocks)
    prog.funcs;
  taken

let compute (prog : Ir.program) ~local (cg : Callgraph.t) : t =
  let locals = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) -> Hashtbl.replace locals f.Ir.fname (local f.Ir.fname))
    prog.funcs;
  let taken = address_taken prog in
  let ng = Hashtbl.create 16 in
  let get_ng f = Option.value ~default:0.0 (Hashtbl.find_opt ng f) in
  (* process SCCs callers-first; all inflow into an SCC is known when we
     reach it *)
  let sccs = Callgraph.sccs_topological cg in
  List.iter
    (fun scc ->
      let in_scc f = List.mem f scc in
      (* external inflow into each member *)
      let inflow = Hashtbl.create 4 in
      List.iter
        (fun f ->
          let base = if String.equal f "main" then 1.0 else 0.0 in
          let from_callers =
            List.fold_left
              (fun acc (cs : Callgraph.call_site) ->
                if in_scc cs.cs_caller then acc
                else
                  let caller_local : Staticfreq.t =
                    Hashtbl.find locals cs.cs_caller
                  in
                  let e_loc =
                    if cs.cs_block < Array.length caller_local.bfreq then
                      caller_local.bfreq.(cs.cs_block)
                    else 0.0
                  in
                  acc +. (e_loc *. get_ng cs.cs_caller))
              0.0 (Callgraph.callers_of cg f)
          in
          Hashtbl.replace inflow f (base +. from_callers))
        scc;
      let cyclic =
        match scc with
        | [ f ] ->
          (* self-recursion counts as a cycle *)
          List.exists
            (fun (cs : Callgraph.call_site) -> String.equal cs.cs_caller f)
            (Callgraph.callers_of cg f)
        | _ -> true
      in
      if not cyclic then
        List.iter (fun f -> Hashtbl.replace ng f (Hashtbl.find inflow f)) scc
      else begin
        (* condense: total external inflow, spread with the recursion
           factor *)
        let total =
          List.fold_left (fun acc f -> acc +. Hashtbl.find inflow f) 0.0 scc
        in
        List.iter
          (fun f -> Hashtbl.replace ng f (total *. recursion_factor))
          scc
      end)
    sccs;
  (* unreached but address-taken functions may run via indirect calls *)
  List.iter
    (fun (f : Ir.func) ->
      if get_ng f.fname = 0.0 && Hashtbl.mem taken f.fname then
        Hashtbl.replace ng f.fname 1.0)
    prog.funcs;
  { ng; locals; prog }

let global_count t f = Option.value ~default:0.0 (Hashtbl.find_opt t.ng f)

let scaled_block_counts ?(exponent = default_exponent) t fname =
  let lf : Staticfreq.t = Hashtbl.find t.locals fname in
  let s = global_count t fname in
  let factor = if s <= 0.0 then 0.0 else Float.pow s exponent in
  Array.map (fun c -> c *. factor) lf.bfreq
