module Interp = Slo_vm.Interp
module Backend = Slo_vm.Backend
module Hierarchy = Slo_cachesim.Hierarchy
module Pmu = Slo_cachesim.Pmu

type run_stats = {
  result : Interp.result;
  hierarchy : Hierarchy.t;
  pmu_events : int;
}

let collect ?(args = []) ?(instrument = true)
    ?(config = Hierarchy.itanium) ?(sample_period = 251)
    ?(backend = Backend.default) (prog : Ir.program) =
  let hier = Hierarchy.create config in
  (* instrumentation perturbs sampling alignment a little: model it as a
     phase offset (the paper measures the effect as correlation 0.996
     between DMISS and DMISS.NO) *)
  let pmu = Pmu.create ~period:sample_period ~phase:(if instrument then 17 else 0) () in
  (* dense per-function edge counters: index (src+1)*nb + dst, with src -1
     (function entry) in row 0. A one-entry memo avoids re-hashing the
     function name on every event — the hook fires hundreds of millions of
     times on the big benchmarks. *)
  let edge_counts : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  let nblocks : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace nblocks f.fname f.next_block;
      Hashtbl.replace edge_counts f.fname
        (Array.make ((f.next_block + 1) * f.next_block) 0))
    prog.funcs;
  let last_name = ref "" and last_arr = ref [||] and last_nb = ref 0 in
  let edge_hook =
    if instrument then
      Some
        (fun f src dst ->
          if not (String.equal f !last_name) then begin
            last_name := f;
            last_arr := Hashtbl.find edge_counts f;
            last_nb := Hashtbl.find nblocks f
          end;
          let idx = ((src + 1) * !last_nb) + dst in
          let arr = !last_arr in
          arr.(idx) <- arr.(idx) + 1)
    else None
  in
  (* memory events arrive batched through a ring; each drained event is
     decoded and fed to the hierarchy + PMU. Edge events stay
     per-access, so edges and memory events interleave differently than
     with a per-access hook — harmless, the edge counters are
     independent and the PMU's sampling period counts memory events
     only, whose relative order the ring preserves *)
  let module Ring = Slo_cachesim.Ring in
  let ring = Ring.create () in
  Ring.set_sink ring (fun r ->
      let addrs = r.Ring.addrs and metas = r.Ring.metas in
      for k = 0 to r.Ring.len - 1 do
        let addr = Array.unsafe_get addrs k in
        let m = Array.unsafe_get metas k in
        let is_float = m land 1 <> 0 in
        let lat, level =
          Hierarchy.access hier ~addr
            ~size:((m lsr 2) land 15)
            ~write:(m land 2 <> 0) ~is_float
        in
        Pmu.record pmu ~iid:(m asr 6) ~level ~latency:lat ~is_float
      done);
  let vm = Backend.create ~ring ?edge_hook backend prog in
  let result = Backend.run ~args vm in
  (* assemble the feedback file *)
  let fb = Feedback.create () in
  List.iter
    (fun (f : Ir.func) ->
      let bsigs = Feedback.block_sigs f in
      let arr = Hashtbl.find edge_counts f.fname in
      let nb = f.next_block in
      for src = -1 to nb - 1 do
        for dst = 0 to nb - 1 do
          let n = arr.(((src + 1) * nb) + dst) in
          if n > 0 then
            if src = -1 then Feedback.add_entry fb f.fname n
            else
              Feedback.add_edge fb f.fname (Hashtbl.find bsigs src)
                (Hashtbl.find bsigs dst) n
        done
      done;
      (* d-cache samples attributed to instructions *)
      let isigs = Feedback.instr_sigs f in
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              let st = Pmu.stats_of pmu i.iid in
              if st.miss_events > 0 then
                Feedback.add_dcache fb f.fname (Hashtbl.find isigs i.iid)
                  { misses = st.miss_events; latency = st.total_latency })
            b.instrs)
        f.fblocks)
    prog.funcs;
  (fb, { result; hierarchy = hier; pmu_events = Pmu.events_seen pmu })
