(** The PBO collection phase: run an instrumented program and produce a
    feedback file.

    Mirrors §3.1: "the application is instrumented and run with training
    input sets to produce feedback files ... the instrumented binaries
    additionally invoke the performance analysis tool to gather sampling
    data from the PMU, resulting in a feedback file that contains both edge
    counts and sampling results for data cache events."

    The VM's edge hook is the instrumentation; the cache hierarchy plus
    {!Slo_cachesim.Pmu} is the PMU. When [instrument] is false, only PMU
    samples are collected (that is the DMISS.NO configuration) and a
    different sampling phase models the skid difference. *)

type run_stats = {
  result : Slo_vm.Interp.result;
  hierarchy : Slo_cachesim.Hierarchy.t;
  pmu_events : int;
}

val collect :
  ?args:int list ->
  ?instrument:bool ->
  ?config:Slo_cachesim.Hierarchy.config ->
  ?sample_period:int ->
  ?backend:Slo_vm.Backend.t ->
  Ir.program ->
  Feedback.t * run_stats
(** Defaults: [instrument = true], Itanium-like hierarchy, period 251,
    the closure-compiled VM backend. Both backends drive identical
    edge/PMU event streams, so the collected feedback is backend
    independent (pinned by tests). *)
