(** Feedback files: the persistent result of a PBO collection run.

    A feedback file carries, per function, the entry count and taken-edge
    counts, plus the PMU d-cache samples — "a feedback file that contains
    both edge counts and sampling results for data cache events" (§3.1).

    Counts are keyed by {e source signatures}, not block ids: a signature is
    (line, column, ordinal), where the ordinal disambiguates blocks sharing
    a source position ("an additional counting mechanism to distinguish
    between multiple expressions in a statement"). This is what makes the
    use-phase CFG matching meaningful: a recompilation may renumber blocks
    but signatures survive as long as the source does. *)

type bsig = { line : int; col : int; ord : int }

type dstats = { misses : int; latency : int }
(** Sampled d-cache miss events and their summed latency, in cycles. *)

type t

val create : unit -> t

val add_entry : t -> string -> int -> unit
val add_edge : t -> string -> bsig -> bsig -> int -> unit
val add_dcache : t -> string -> bsig -> dstats -> unit
(** Accumulates if the key is already present. *)

val entry_count : t -> string -> int
val edge_count : t -> string -> bsig -> bsig -> int
val dcache_stats : t -> string -> bsig -> dstats option
val functions : t -> string list

val block_sigs : Ir.func -> (int, bsig) Hashtbl.t
(** Signature of every block of a function (keyed by block id). *)

val instr_sigs : Ir.func -> (int, bsig) Hashtbl.t
(** Signature of every instruction (keyed by instruction id). *)

val to_string : t -> string
val of_string : string -> t
(** Raises [Failure] on a malformed file. [of_string (to_string t)] is
    structurally equal to [t]. *)
