(** The weighting-scheme registry of §2.3.

    "How weights are assigned to the affinity groups is what differentiates
    the various weighting mechanisms we experimented with." A scheme turns a
    program (plus, for the profile-based schemes, a feedback file) into
    per-function, per-block execution weights; the affinity and hotness
    analysis is scheme-agnostic.

    The d-cache schemes (DMISS, DLAT, DMISS.NO) are not block-weight
    schemes — they attribute PMU samples directly to fields — and are
    handled by the advisor; {!block_weights} rejects them. *)

type scheme =
  | PBO        (** edge profile from the training input *)
  | PPBO       (** "perfect" PBO: profile from the reference input *)
  | SPBO       (** Wu–Larus static estimation, local to each routine *)
  | ISPBO      (** inter-procedurally scaled SPBO, exponent E = 1.5 *)
  | ISPBO_NO   (** ISPBO without the exponent *)
  | ISPBO_W    (** raised back-edge probabilities instead of the exponent *)
  | DMISS      (** sampled d-cache miss counts per field *)
  | DLAT       (** sampled d-cache latencies per field *)
  | DMISS_NO   (** DMISS collected without instrumentation *)

val all : scheme list
val name : scheme -> string
val is_dcache : scheme -> bool
val needs_profile : scheme -> bool

type block_weights = (string, float array) Hashtbl.t
(** Function name to per-block-id weight. *)

val block_weights :
  Ir.program -> scheme -> feedback:Feedback.t option -> block_weights
(** Raises [Invalid_argument] for d-cache schemes, or if a profile-based
    scheme is given no feedback. *)

val entry_weight : block_weights -> Ir.func -> float
(** Weight of the function's entry block (the "routine entry point" weight
    used for the straight-line affinity group). *)
