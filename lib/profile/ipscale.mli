(** Inter-procedural scaling of static frequency estimates — the ISPBO
    scheme of §2.3.

    Local (per-routine) estimates cannot be compared across procedures: a
    routine called from a deeply nested loop is hotter than its local
    estimate says. Following the paper, execution counts are propagated
    top-down over the call graph with N_g(main) = 1 and

    {v N_g(f) = Σ over call sites c of f : E_g(c) = E_loc(c) · N_g(caller) v}

    (our N_loc is always 1 since local entry frequency is normalised).
    Recursion is handled by condensing strongly connected components:
    members of a cyclic SCC receive the component's external inflow times a
    fixed recursion factor. Functions never reached get N_g = 0, except
    address-taken functions (possible indirect-call targets), which fall
    back to 1.

    The final scaled count of block [b] in [f] is
    [C_loc(b) · N_g(f) ^ E] with the paper's separability exponent
    [E = 1.5] for ISPBO (E = 1 gives ISPBO.NO / ISPBO.W). *)

val default_exponent : float
(** 1.5 *)

val recursion_factor : float
(** Multiplier applied to members of cyclic SCCs (approximation of the
    paper's recursion handling). *)

type t

val compute :
  Ir.program -> local:(string -> Staticfreq.t) -> Callgraph.t -> t
(** [local f] must give the intra-procedural estimate for function [f]. *)

val global_count : t -> string -> float
(** N_g of a function. *)

val scaled_block_counts : ?exponent:float -> t -> string -> float array
(** [C_loc(b) · N_g(f)^E] for every block of the function; default exponent
    {!default_exponent}. *)
