type bsig = { line : int; col : int; ord : int }
type dstats = { misses : int; latency : int }

type t = {
  entries : (string, int) Hashtbl.t;
  edges : (string * bsig * bsig, int) Hashtbl.t;
  dcache : (string * bsig, dstats) Hashtbl.t;
}

let create () =
  { entries = Hashtbl.create 16; edges = Hashtbl.create 64;
    dcache = Hashtbl.create 64 }

let add_entry t f n =
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.entries f) in
  Hashtbl.replace t.entries f (prev + n)

let add_edge t f s d n =
  let key = (f, s, d) in
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.edges key) in
  Hashtbl.replace t.edges key (prev + n)

let add_dcache t f s (st : dstats) =
  let key = (f, s) in
  let prev =
    Option.value ~default:{ misses = 0; latency = 0 }
      (Hashtbl.find_opt t.dcache key)
  in
  Hashtbl.replace t.dcache key
    { misses = prev.misses + st.misses; latency = prev.latency + st.latency }

let entry_count t f = Option.value ~default:0 (Hashtbl.find_opt t.entries f)

let edge_count t f s d =
  Option.value ~default:0 (Hashtbl.find_opt t.edges (f, s, d))

let dcache_stats t f s = Hashtbl.find_opt t.dcache (f, s)

let functions t =
  Hashtbl.fold (fun f _ acc -> f :: acc) t.entries []
  |> List.sort String.compare

(* signatures: (line, col, ordinal among same-position items, in emission
   order) *)
let sigs_of items loc_of =
  let seen = Hashtbl.create 16 in
  let out = Hashtbl.create 16 in
  List.iter
    (fun (key, item) ->
      let l : Slo_minic.Loc.t = loc_of item in
      let ord =
        Option.value ~default:0 (Hashtbl.find_opt seen (l.line, l.col))
      in
      Hashtbl.replace seen (l.line, l.col) (ord + 1);
      Hashtbl.replace out key { line = l.line; col = l.col; ord })
    items;
  out

let block_sigs (f : Ir.func) =
  sigs_of
    (List.map (fun (b : Ir.block) -> (b.bid, b)) f.fblocks)
    (fun (b : Ir.block) -> b.bloc)

let instr_sigs (f : Ir.func) =
  let items =
    List.concat_map
      (fun (b : Ir.block) ->
        List.map (fun (i : Ir.instr) -> (i.iid, i)) b.instrs)
      f.fblocks
  in
  sigs_of items (fun (i : Ir.instr) -> i.iloc)

let to_string t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "func %s entry %d\n" f (entry_count t f)))
    (functions t);
  let edges =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.edges []
    |> List.sort compare
  in
  List.iter
    (fun ((f, s, d), n) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %d %d %d %d %d %d %d\n" f s.line s.col s.ord
           d.line d.col d.ord n))
    edges;
  let dcs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.dcache []
    |> List.sort compare
  in
  List.iter
    (fun ((f, s), (st : dstats)) ->
      Buffer.add_string buf
        (Printf.sprintf "dcache %s %d %d %d %d %d\n" f s.line s.col s.ord
           st.misses st.latency))
    dcs;
  Buffer.contents buf

let of_string text =
  let t = create () in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno line ->
         let line = String.trim line in
         if String.length line > 0 then begin
           match String.split_on_char ' ' line with
           | [ "func"; f; "entry"; n ] -> add_entry t f (int_of_string n)
           | [ "edge"; f; l1; c1; o1; l2; c2; o2; n ] ->
             add_edge t f
               { line = int_of_string l1; col = int_of_string c1;
                 ord = int_of_string o1 }
               { line = int_of_string l2; col = int_of_string c2;
                 ord = int_of_string o2 }
               (int_of_string n)
           | [ "dcache"; f; l; c; o; m; lat ] ->
             add_dcache t f
               { line = int_of_string l; col = int_of_string c;
                 ord = int_of_string o }
               { misses = int_of_string m; latency = int_of_string lat }
           | _ ->
             failwith
               (Printf.sprintf "Feedback.of_string: bad line %d: %S"
                  (lineno + 1) line)
         end);
  t
