type scheme =
  | PBO | PPBO | SPBO | ISPBO | ISPBO_NO | ISPBO_W | DMISS | DLAT | DMISS_NO

let all = [ PBO; PPBO; SPBO; ISPBO; ISPBO_NO; ISPBO_W; DMISS; DLAT; DMISS_NO ]

let name = function
  | PBO -> "PBO"
  | PPBO -> "PPBO"
  | SPBO -> "SPBO"
  | ISPBO -> "ISPBO"
  | ISPBO_NO -> "ISPBO.NO"
  | ISPBO_W -> "ISPBO.W"
  | DMISS -> "DMISS"
  | DLAT -> "DLAT"
  | DMISS_NO -> "DMISS.NO"

let is_dcache = function
  | DMISS | DLAT | DMISS_NO -> true
  | PBO | PPBO | SPBO | ISPBO | ISPBO_NO | ISPBO_W -> false

let needs_profile = function
  | PBO | PPBO | DMISS | DLAT | DMISS_NO -> true
  | SPBO | ISPBO | ISPBO_NO | ISPBO_W -> false

type block_weights = (string, float array) Hashtbl.t

let from_profile (prog : Ir.program) fb : block_weights =
  let matched = Matching.apply prog fb in
  let out = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      match Matching.func_counts matched f.fname with
      | Some c -> Hashtbl.replace out f.fname c.block
      | None -> Hashtbl.replace out f.fname (Array.make f.next_block 0.0))
    prog.funcs;
  out

let static_locals ?probs (prog : Ir.program) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      let cfg = Cfg.build f in
      let forest = Loop.compute cfg in
      Hashtbl.replace tbl f.fname (Staticfreq.estimate ?probs cfg forest))
    prog.funcs;
  tbl

let from_static ?probs ~interprocedural ~exponent (prog : Ir.program) : block_weights =
  let locals = static_locals ?probs prog in
  let out = Hashtbl.create 16 in
  if not interprocedural then
    List.iter
      (fun (f : Ir.func) ->
        let sf : Staticfreq.t = Hashtbl.find locals f.fname in
        Hashtbl.replace out f.fname sf.bfreq)
      prog.funcs
  else begin
    let cg = Callgraph.build prog in
    let ips =
      Ipscale.compute prog ~local:(fun name -> Hashtbl.find locals name) cg
    in
    List.iter
      (fun (f : Ir.func) ->
        Hashtbl.replace out f.fname
          (Ipscale.scaled_block_counts ~exponent ips f.fname))
      prog.funcs
  end;
  out

let block_weights prog scheme ~feedback : block_weights =
  match scheme with
  | PBO | PPBO -> (
    match feedback with
    | Some fb -> from_profile prog fb
    | None ->
      invalid_arg
        (Printf.sprintf "Weights.block_weights: %s needs a feedback file"
           (name scheme)))
  | SPBO -> from_static ~interprocedural:false ~exponent:1.0 prog
  | ISPBO ->
    from_static ~interprocedural:true ~exponent:Ipscale.default_exponent prog
  | ISPBO_NO -> from_static ~interprocedural:true ~exponent:1.0 prog
  | ISPBO_W ->
    from_static ~probs:Staticfreq.modified_probs ~interprocedural:true
      ~exponent:1.0 prog
  | DMISS | DLAT | DMISS_NO ->
    invalid_arg
      (Printf.sprintf
         "Weights.block_weights: %s attributes samples to fields, not blocks"
         (name scheme))

let entry_weight (bw : block_weights) (f : Ir.func) =
  match Hashtbl.find_opt bw f.fname with
  | Some arr ->
    let entry = match f.fblocks with b :: _ -> b.Ir.bid | [] -> 0 in
    if entry < Array.length arr then arr.(entry) else 0.0
  | None -> 0.0
