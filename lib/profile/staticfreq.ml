type probs = { loop_int : float; loop_fp : float }

let default_probs = { loop_int = 0.88; loop_fp = 0.93 }
let modified_probs = { loop_int = 0.95; loop_fp = 0.98 }

type t = {
  bfreq : float array;
  efreq : int * int -> float;
  eprob : int * int -> float;
}

let loop_is_fp cfg (l : Loop.loop) =
  List.exists (fun b -> Cfg.is_fp_block cfg.Cfg.blocks.(b)) (Loop.all_blocks l)

let estimate ?(probs = default_probs) (cfg : Cfg.t) (forest : Loop.forest) : t =
  let nb = Cfg.num_blocks cfg in
  let in_loop l b = List.mem b (Loop.all_blocks l) in
  (* per-edge branch probability *)
  let prob_tbl = Hashtbl.create 32 in
  Array.iter
    (fun bid ->
      let b = cfg.blocks.(bid) in
      match b.Ir.btermin with
      | Ir.Tjmp d -> Hashtbl.replace prob_tbl (bid, d) 1.0
      | Ir.Tret _ -> ()
      | Ir.Tbr (_, x, y) ->
        if x = y then Hashtbl.replace prob_tbl (bid, x) 1.0
        else begin
          let loop_prob l =
            if loop_is_fp cfg l then probs.loop_fp else probs.loop_int
          in
          let stay_prob =
            match Loop.innermost forest bid with
            | None -> None
            | Some l -> (
              let sx = in_loop l x and sy = in_loop l y in
              match (sx, sy) with
              | true, false -> Some (x, loop_prob l)
              | false, true -> Some (y, loop_prob l)
              | true, true | false, false -> None)
          in
          match stay_prob with
          | Some (stay, p) ->
            let other = if stay = x then y else x in
            Hashtbl.replace prob_tbl (bid, stay) p;
            Hashtbl.replace prob_tbl (bid, other) (1.0 -. p)
          | None ->
            Hashtbl.replace prob_tbl (bid, x) 0.5;
            Hashtbl.replace prob_tbl (bid, y) 0.5
        end)
    cfg.rpo;
  let eprob e = Option.value ~default:0.0 (Hashtbl.find_opt prob_tbl e) in
  (* Gauss-Seidel over the flow equations *)
  let bfreq = Array.make nb 0.0 in
  let entry = Cfg.entry cfg in
  let max_iter = 300 and tol = 1e-12 in
  let iter = ref 0 and delta = ref infinity in
  while !iter < max_iter && !delta > tol do
    delta := 0.0;
    Array.iter
      (fun bid ->
        let inflow =
          List.fold_left
            (fun acc p -> acc +. (bfreq.(p) *. eprob (p, bid)))
            0.0 cfg.preds.(bid)
        in
        let v = if bid = entry then 1.0 +. inflow else inflow in
        delta := max !delta (Float.abs (v -. bfreq.(bid)));
        bfreq.(bid) <- v)
      cfg.rpo;
    incr iter
  done;
  let efreq (s, d) = bfreq.(s) *. eprob (s, d) in
  { bfreq; efreq; eprob }
