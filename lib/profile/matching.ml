type func_counts = {
  entry : float;
  block : float array;
  edge : int * int -> float;
}

type t = {
  counts : (string, func_counts) Hashtbl.t;
  instr_dcache : (int, Feedback.dstats) Hashtbl.t;
  unmatched_edges : int;
}

let apply (prog : Ir.program) (fb : Feedback.t) : t =
  let counts = Hashtbl.create 16 in
  let instr_dcache = Hashtbl.create 64 in
  let unmatched = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      let cfg = Cfg.build f in
      let bsigs = Feedback.block_sigs f in
      let entry = float_of_int (Feedback.entry_count fb f.fname) in
      let nb = Cfg.num_blocks cfg in
      let block = Array.make nb 0.0 in
      let edge_tbl = Hashtbl.create 16 in
      (* pull each current edge's count out of the feedback *)
      List.iter
        (fun (src, dst) ->
          match (Hashtbl.find_opt bsigs src, Hashtbl.find_opt bsigs dst) with
          | Some s, Some d ->
            let c = Feedback.edge_count fb f.fname s d in
            Hashtbl.replace edge_tbl (src, dst) (float_of_int c)
          | None, _ | _, None -> incr unmatched)
        (Cfg.edges cfg);
      (* block counts = entry contribution + incoming matched edges *)
      let entry_bid = Cfg.entry cfg in
      Array.iter
        (fun bid ->
          let inc =
            List.fold_left
              (fun acc p ->
                acc
                +. Option.value ~default:0.0
                     (Hashtbl.find_opt edge_tbl (p, bid)))
              0.0 cfg.preds.(bid)
          in
          block.(bid) <- (if bid = entry_bid then inc +. entry else inc))
        cfg.rpo;
      let edge (s, d) =
        Option.value ~default:0.0 (Hashtbl.find_opt edge_tbl (s, d))
      in
      Hashtbl.replace counts f.fname { entry; block; edge };
      (* re-attribute d-cache samples to current instruction ids *)
      let isigs = Feedback.instr_sigs f in
      Hashtbl.iter
        (fun iid s ->
          match Feedback.dcache_stats fb f.fname s with
          | Some st -> Hashtbl.replace instr_dcache iid st
          | None -> ())
        isigs)
    prog.funcs;
  { counts; instr_dcache; unmatched_edges = !unmatched }

let func_counts t name = Hashtbl.find_opt t.counts name
