(** Static branch probability and block frequency estimation — the SPBO
    scheme, after Wu and Larus [MICRO'94] as used by the paper §2.3:

    "If no profile information is available, edge frequencies in a routine
    are estimated with help of probabilities for source constructs. For
    example, a loop back edge is assumed to execute about 8 times on average
    and both branches of an if-then-else construct are assigned a 50%
    probability."

    Branch probabilities: a two-way branch where exactly one successor stays
    in the block's innermost loop (or is a back edge) gets the loop
    probability on the staying side — 0.88, or 0.93 when the loop contains
    floating-point work (1/(1-0.88) ≈ 8.3 iterations); all other branches
    are 50/50. The ISPBO.W experiment raises these to 0.95/0.98.

    Frequencies solve the linear flow equations freq(entry) = 1,
    freq(b) = Σ freq(u)·prob(u→b) by Gauss–Seidel iteration in reverse
    postorder; with all cyclic probabilities < 1 this converges to the same
    fixed point as Wu–Larus's structural propagation. *)

type probs = {
  loop_int : float;  (** staying probability for integer loops *)
  loop_fp : float;   (** staying probability for floating-point loops *)
}

val default_probs : probs
(** 0.88 / 0.93 — the compiler's shipped values. *)

val modified_probs : probs
(** 0.95 / 0.98 — the ISPBO.W experiment. *)

type t = {
  bfreq : float array;               (** per block id; entry = 1.0 *)
  efreq : int * int -> float;        (** frequency of a CFG edge *)
  eprob : int * int -> float;        (** branch probability of an edge *)
}

val estimate : ?probs:probs -> Cfg.t -> Loop.forest -> t
