(** The layout autotuner: plan search with the cache simulator as cost
    oracle.

    The paper's advisor commits to one heuristic plan per scheme — one
    split point, one field order, peel-when-feasible. The plan space per
    struct is small, and the sampled cache simulation is cheap enough to
    search it outright:

    - {b Enumeration} ({!enumerate}): per transformable struct — the same
      legality gauntlet the heuristics use ({!Slo_core.Legality}
      witnesses, dynamic allocation, no by-value instances, not
      realloc'd) — the candidate closure is every split point over the
      hotness order × a beam of hot-field permutations (hotness order,
      a greedy affinity chain seeded from {!Slo_core.Affinity.edge_weight},
      declaration order, adjacent transpositions) × trailing padding
      class (none / round to power of two / round to cache line), plus
      the peel when structurally feasible, rebuild-reorder variants, and
      pad-only candidates. Dead fields are always removed, never
      searched. Multi-struct programs take the cartesian product,
      truncated at [max_candidates].
    - {b Scoring}: each candidate is applied to a fresh IR copy
      ({!Slo_core.Driver.transform_with_plans} [~verify:true]) and
      measured through {!Slo_core.Driver.measure} at [fidelity]
      (sampled by default). A candidate whose transform fails to verify
      or whose output diverges from the baseline run is rejected, not
      propagated.
    - {b Search} ({!search}): candidates run on a {!Slo_exec.Pool} of
      [jobs] worker domains; workers publish into a shared atomic
      best-so-far, ordered by (cycles, candidate index) so the winner is
      independent of completion order. The candidate order itself is a
      deterministic seeded shuffle — byte-identical results at any
      [jobs] whenever the search runs to completion.
    - {b Anytime}: [budget_ms] bounds the search, not the request — on
      expiry no further candidates are dispatched and the best scored so
      far is returned ([t_complete = false]). The baseline, the
      heuristic incumbent and the promotion re-score are budget-exempt,
      so even a zero budget returns the heuristic plan rather than an
      error.
    - {b Promotion}: the sampled winner is re-scored at exact fidelity
      and promoted only if strictly cheaper than the exact-scored
      heuristic incumbent; otherwise the heuristic plan is returned.
      The tuner therefore {e never} returns a plan scoring worse than
      the heuristic one. *)

type config = {
  scheme : Slo_profile.Weights.scheme;
  feedback : Slo_profile.Feedback.t option;
  args : int list;            (** program arguments for the measure runs *)
  threshold : float option;   (** heuristic T_s override, [None] = scheme default *)
  beam : int;                 (** max field permutations per split point / rebuild *)
  max_candidates : int;       (** global candidate cap (product truncation) *)
  seed : int;                 (** seeds the deterministic candidate shuffle *)
  budget_ms : float option;   (** anytime search budget, [None] = run to completion *)
  jobs : int;                 (** worker domains; 1 = search inline, no pool *)
  backend : Slo_vm.Backend.t;
  fidelity : Slo_cachesim.Sampled.fidelity;  (** search-phase fidelity *)
  cache : Slo_cachesim.Hierarchy.config;
}

val default_config :
  scheme:Slo_profile.Weights.scheme ->
  feedback:Slo_profile.Feedback.t option ->
  config
(** beam 4, max_candidates 256, seed 0, no budget, jobs 1, default
    backend, sampled default fidelity, Itanium hierarchy, no args. *)

type result = {
  t_baseline_cycles : int;     (** untransformed program, exact fidelity *)
  t_heuristic : Slo_core.Heuristics.plan list;  (** the incumbent *)
  t_heuristic_cycles : int;    (** exact fidelity *)
  t_found : Slo_core.Heuristics.plan list;
      (** the promoted winner; equals [t_heuristic] unless strictly better *)
  t_found_cycles : int;        (** exact fidelity *)
  t_improved : bool;           (** [t_found_cycles < t_heuristic_cycles] *)
  t_explored : int;            (** candidates whose scoring completed *)
  t_rejected : int;            (** of those: verify failures / output mismatches *)
  t_total : int;               (** candidates enumerated *)
  t_complete : bool;           (** every candidate was scored within budget *)
  t_wall_ms : float;
}

val enumerate : Ir.program -> config -> Slo_core.Heuristics.plan list list
(** The candidate closure in canonical (unshuffled) order, each element
    one whole-program plan list. Deterministic; never includes the empty
    candidate. Exposed for tests and for reporting the space size. *)

val search : Ir.program -> config -> result
(** Run the search. The program itself is never mutated (candidates are
    applied to fresh copies). Raises [Invalid_argument] on a
    non-positive [beam], [max_candidates] or [jobs]; measurement
    exceptions from the {e baseline} run (e.g. bad [args]) propagate —
    candidate failures do not. *)
