module D = Slo_core.Driver
module H = Slo_core.Heuristics
module T = Slo_core.Transform
module Legality = Slo_core.Legality
module Affinity = Slo_core.Affinity
module W = Slo_profile.Weights
module Backend = Slo_vm.Backend
module Sampled = Slo_cachesim.Sampled
module Hierarchy = Slo_cachesim.Hierarchy
module Pool = Slo_exec.Pool
module Clock = Slo_util.Clock

type config = {
  scheme : W.scheme;
  feedback : Slo_profile.Feedback.t option;
  args : int list;
  threshold : float option;
  beam : int;
  max_candidates : int;
  seed : int;
  budget_ms : float option;
  jobs : int;
  backend : Backend.t;
  fidelity : Sampled.fidelity;
  cache : Hierarchy.config;
}

let default_config ~scheme ~feedback =
  {
    scheme;
    feedback;
    args = [];
    threshold = None;
    beam = 4;
    max_candidates = 256;
    seed = 0;
    budget_ms = None;
    jobs = 1;
    backend = Backend.default;
    fidelity = Sampled.sampled_default;
    cache = Hierarchy.itanium;
  }

type result = {
  t_baseline_cycles : int;
  t_heuristic : H.plan list;
  t_heuristic_cycles : int;
  t_found : H.plan list;
  t_found_cycles : int;
  t_improved : bool;
  t_explored : int;
  t_rejected : int;
  t_total : int;
  t_complete : bool;
  t_wall_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Candidate enumeration                                               *)
(* ------------------------------------------------------------------ *)

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

(* the byte size a field list would lay out to, via a scratch struct
   table — struct-typed fields cannot occur (NEST invalidates nesting)
   and pointer sizes never consult the pointee, so the single scratch
   definition is self-contained *)
let fields_size (fields : Structs.field list) =
  let scratch = Structs.create () in
  Structs.define scratch "__tune_probe" fields;
  Layout.struct_size (Layout.create scratch) "__tune_probe"

(* trailing-pad classes for a prospective element size: nothing, round
   up to the next power of two, round up to a 64-byte line — array
   elements stop straddling line boundaries once the padded size divides
   (or is a multiple of) the line. Pads past 64 bytes only dilute. *)
let pad_classes size =
  let p2 = next_pow2 size 1 - size in
  let line = if size mod 64 = 0 then 0 else 64 - (size mod 64) in
  let keep p = p > 0 && p <= 64 in
  List.sort_uniq compare
    ((if keep p2 then [ p2 ] else []) @ (if keep line then [ line ] else []))

(* a greedy affinity chain: start with the hottest field, repeatedly
   append the remaining field most affine to the last placed one (ties:
   hotter first, then lower index) — the "affinity-seeded" permutation *)
let affinity_chain (g : Affinity.graph) (rel : float array) = function
  | [] -> []
  | hottest :: rest ->
    let rec go placed last remaining =
      match remaining with
      | [] -> List.rev placed
      | _ ->
        let pick =
          List.fold_left
            (fun acc f ->
              let w = Affinity.edge_weight g last f in
              match acc with
              | None -> Some (f, w)
              | Some (bf, bw) ->
                if
                  w > bw
                  || (w = bw
                     && (rel.(f) > rel.(bf) || (rel.(f) = rel.(bf) && f < bf)))
                then Some (f, w)
                else acc)
            None remaining
        in
        let f = fst (Option.get pick) in
        go (f :: placed) f (List.filter (fun x -> x <> f) remaining)
    in
    go [ hottest ] hottest rest

(* at most [beam] distinct orders of [fields]: hotness-descending, the
   affinity chain, declaration order, then adjacent transpositions of
   the hotness order *)
let field_orders (g : Affinity.graph) (rel : float array) ~beam fields =
  match fields with
  | [] | [ _ ] -> [ fields ]
  | _ ->
    let by_hot =
      List.stable_sort (fun a b -> compare rel.(b) rel.(a)) fields
    in
    let arr = Array.of_list by_hot in
    let swaps =
      List.init
        (Array.length arr - 1)
        (fun i ->
          let a = Array.copy arr in
          let t = a.(i) in
          a.(i) <- a.(i + 1);
          a.(i + 1) <- t;
          Array.to_list a)
    in
    let all =
      [ by_hot; affinity_chain g rel by_hot; List.sort compare fields ]
      @ swaps
    in
    let seen = Hashtbl.create 8 in
    List.filteri
      (fun _ o ->
        if Hashtbl.mem seen o then false
        else begin
          Hashtbl.add seen o ();
          true
        end)
      all
    |> List.filteri (fun i _ -> i < beam)

(* the per-struct alternatives, each one a plan list for that struct
   ([] = leave it untouched). Eligibility mirrors [Heuristics.decide]:
   what the heuristics refuse to touch, the tuner refuses to touch. *)
let struct_alternatives prog leg aff ~static_reads ~beam typ : H.plan list list
    =
  let untouched = [ [] ] in
  if not (Legality.is_legal leg typ) then untouched
  else begin
    let info = Legality.info leg typ in
    let a = info.Legality.attrs in
    if
      (not a.Legality.dyn_alloc)
      || a.has_global_var || a.has_local_var || a.has_static_array
      || a.realloced
    then untouched
    else
      match Affinity.graph aff typ with
      | None -> untouched
      | Some g ->
        let decl = Structs.find prog.Ir.structs typ in
        let nfields = Array.length decl.Structs.fields in
        let dead = H.dead_fields prog info g ~static_reads in
        let live =
          List.filter
            (fun fi -> not (List.mem fi dead))
            (List.init nfields Fun.id)
        in
        if live = [] then untouched
        else begin
          let rel = Affinity.relative_hotness g in
          let by_hot =
            List.stable_sort (fun a b -> compare rel.(b) rel.(a)) live
          in
          let field fi = decl.Structs.fields.(fi) in
          let with_pads ~typ' fields plan =
            plan
            :: List.map
                 (fun pd_bytes ->
                   plan @ [ H.Pad { T.pd_typ = typ'; pd_bytes } ])
                 (pad_classes (fields_size fields))
          in
          (* peel: one candidate when structurally feasible *)
          let peels =
            if T.peel_feasible prog ~typ ~globals:a.Legality.global_ptrs then
              [
                [
                  H.Peel
                    { T.p_typ = typ; p_live = live; p_dead = dead;
                      p_globals = a.Legality.global_ptrs };
                ];
              ]
            else []
          in
          (* splits: hot = top-k of the hotness order, cold the rest in
             declaration order; k leaves at least two cold fields (the
             link must pay for itself) and one hot *)
          let splits =
            List.concat_map
              (fun k ->
                let hot_set = List.filteri (fun i _ -> i < k) by_hot in
                let cold =
                  List.filter (fun fi -> not (List.mem fi hot_set)) live
                in
                List.concat_map
                  (fun order ->
                    let split =
                      H.Split
                        { T.s_typ = typ; s_hot = order; s_cold = cold;
                          s_dead = dead }
                    in
                    let hot_fields =
                      List.map field order
                      @ [
                          { Structs.name = T.link_field_name;
                            ty = Irty.Ptr (Irty.Struct (T.cold_name typ));
                            bits = None };
                        ]
                    in
                    with_pads ~typ':(T.hot_name typ) hot_fields [ split ])
                  (field_orders g rel ~beam hot_set))
              (List.init (max 0 (List.length live - 2)) (fun i -> i + 1))
          in
          (* rebuild-reorder variants; skip the pure identity *)
          let decl_live = List.sort compare live in
          let rebuilds =
            List.concat_map
              (fun order ->
                let rebuild =
                  H.Rebuild { T.r_typ = typ; r_order = order; r_dead = dead }
                in
                with_pads ~typ':typ (List.map field order) [ rebuild ])
              (field_orders g rel ~beam live)
            |> List.filter (fun plan ->
                   plan
                   <> [ H.Rebuild
                          { T.r_typ = typ; r_order = decl_live;
                            r_dead = [] } ])
          in
          (* pad-only candidates on the unchanged declaration *)
          let pad_only =
            List.map
              (fun pd_bytes -> [ H.Pad { T.pd_typ = typ; pd_bytes } ])
              (pad_classes (fields_size (Array.to_list decl.Structs.fields)))
          in
          ([] :: peels) @ splits @ rebuilds @ pad_only
        end
  end

let enumerate prog cfg =
  if cfg.beam < 1 then invalid_arg "Tune.enumerate: beam must be >= 1";
  if cfg.max_candidates < 1 then
    invalid_arg "Tune.enumerate: max_candidates must be >= 1";
  let leg, aff = D.analyze prog ~scheme:cfg.scheme ~feedback:cfg.feedback in
  let static_reads = H.statically_read prog in
  let per_struct =
    List.map
      (fun typ ->
        struct_alternatives prog leg aff ~static_reads ~beam:cfg.beam typ)
      (Legality.types leg)
  in
  (* cartesian product in canonical order, truncated at the cap; the
     all-empty combination (= the baseline) is dropped *)
  let product =
    List.fold_left
      (fun acc alts ->
        List.concat_map
          (fun partial -> List.map (fun alt -> partial @ alt) alts)
          acc)
      [ [] ] per_struct
  in
  List.filter (fun plans -> plans <> []) product
  |> List.filteri (fun i _ -> i < cfg.max_candidates)

(* ------------------------------------------------------------------ *)
(* Scoring and search                                                  *)
(* ------------------------------------------------------------------ *)

exception Rejected

(* deterministic seeded Fisher–Yates (a plain LCG; quality is irrelevant,
   reproducibility is the point) *)
let shuffle_in_place seed arr =
  let state = ref (((seed * 2) + 1) land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  for i = Array.length arr - 1 downto 1 do
    let j = next () mod (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done

let search prog cfg =
  if cfg.jobs < 1 then invalid_arg "Tune.search: jobs must be >= 1";
  let t0 = Clock.now_ns () in
  let measure ~fidelity p =
    (* pipeline off: candidate scoring already saturates the pool's
       domains, and a drainer domain per in-flight measure would
       oversubscribe the machine *)
    D.measure ~args:cfg.args ~config:cfg.cache ~backend:cfg.backend ~fidelity
      ~pipeline:false p
  in
  let base = measure ~fidelity:Sampled.Exact prog in
  let expected_exit = base.D.m_result.Slo_vm.Interp.exit_code in
  let expected_output = base.D.m_result.Slo_vm.Interp.output in
  let score ~fidelity plans =
    let transformed =
      match D.transform_with_plans ~verify:true prog plans with
      | p -> p
      | exception _ -> raise Rejected
    in
    let m = match measure ~fidelity transformed with
      | m -> m
      | exception _ -> raise Rejected
    in
    if
      m.D.m_result.Slo_vm.Interp.exit_code <> expected_exit
      || not (String.equal m.D.m_result.Slo_vm.Interp.output expected_output)
    then raise Rejected;
    m.D.m_cycles
  in
  let exact_score plans =
    if plans = [] then base.D.m_cycles else score ~fidelity:Sampled.Exact plans
  in
  (* the incumbent: budget-exempt, scored at exact fidelity. A heuristic
     plan failing its own transform would be a framework bug — let it
     propagate rather than masking it as a rejection. *)
  let leg, aff = D.analyze prog ~scheme:cfg.scheme ~feedback:cfg.feedback in
  let heuristic =
    H.plans (H.decide ?threshold:cfg.threshold prog leg aff ~scheme:cfg.scheme)
  in
  let heuristic_cycles = exact_score heuristic in
  let candidates = Array.of_list (enumerate prog cfg) in
  shuffle_in_place cfg.seed candidates;
  let total = Array.length candidates in
  (* shared anytime state: workers publish completed scores; the winner
     is the lexicographic minimum of (cycles, index), so it does not
     depend on completion order *)
  let best = Atomic.make None in
  let explored = Atomic.make 0 in
  let rejected = Atomic.make 0 in
  let rec publish cycles idx =
    let cur = Atomic.get best in
    let better =
      match cur with
      | None -> true
      | Some (bc, bi) -> cycles < bc || (cycles = bc && idx < bi)
    in
    if better && not (Atomic.compare_and_set best cur (Some (cycles, idx)))
    then publish cycles idx
  in
  let score_candidate idx =
    (match score ~fidelity:cfg.fidelity candidates.(idx) with
    | cycles -> publish cycles idx
    | exception Rejected -> ignore (Atomic.fetch_and_add rejected 1));
    ignore (Atomic.fetch_and_add explored 1)
  in
  let remaining_ms () =
    match cfg.budget_ms with
    | None -> infinity
    | Some b -> b -. Clock.elapsed_ms ~since:t0
  in
  let complete =
    if total = 0 then true
    else if cfg.jobs = 1 then begin
      (* inline: check the budget between candidates; overrun is at most
         one candidate's scoring *)
      let i = ref 0 in
      while !i < total && remaining_ms () > 0.0 do
        score_candidate !i;
        incr i
      done;
      !i >= total
    end
    else begin
      (* pool: keep a bounded window in flight and stop submitting on
         expiry. In-flight futures are always awaited — Pool.shutdown
         drains the queue anyway, so abandoning them would not return
         any earlier, and their scores are paid for. *)
      let pool = Pool.create ~jobs:cfg.jobs in
      let window = 2 * cfg.jobs in
      let inflight = Queue.create () in
      let next = ref 0 in
      let stopped = ref false in
      let submit_window () =
        while
          (not !stopped) && !next < total && Queue.length inflight < window
        do
          let idx = !next in
          Queue.add (Pool.submit pool (fun () -> score_candidate idx)) inflight;
          incr next
        done
      in
      submit_window ();
      while not (Queue.is_empty inflight) do
        let fut = Queue.pop inflight in
        (match Pool.await fut with Ok () -> () | Error _ -> ());
        if remaining_ms () <= 0.0 then stopped := true;
        submit_window ()
      done;
      Pool.shutdown pool;
      !next >= total && not !stopped
    end
  in
  (* promotion: re-score the sampled winner at exact fidelity; the found
     plan must beat the incumbent exactly, or the incumbent stands *)
  let found, found_cycles =
    match Atomic.get best with
    | None -> (heuristic, heuristic_cycles)
    | Some (sampled_cycles, idx) -> (
      let plans = candidates.(idx) in
      if plans = heuristic then (heuristic, heuristic_cycles)
      else
        let exact_cycles =
          if cfg.fidelity = Sampled.Exact then Some sampled_cycles
          else match exact_score plans with
            | c -> Some c
            | exception Rejected -> None
        in
        match exact_cycles with
        | Some c when c < heuristic_cycles -> (plans, c)
        | Some _ | None -> (heuristic, heuristic_cycles))
  in
  {
    t_baseline_cycles = base.D.m_cycles;
    t_heuristic = heuristic;
    t_heuristic_cycles = heuristic_cycles;
    t_found = found;
    t_found_cycles = found_cycles;
    t_improved = found_cycles < heuristic_cycles;
    t_explored = Atomic.get explored;
    t_rejected = Atomic.get rejected;
    t_total = total;
    t_complete = complete;
    t_wall_ms = Clock.elapsed_ms ~since:t0;
  }
