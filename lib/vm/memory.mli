(** Byte-addressed flat memory for the VM.

    One growable byte buffer models the whole address space. The address map
    mirrors a simple process image so that the cache simulator sees
    realistic address streams:

    {v
      0x0000_0000 .. 0x0000_0fff   unmapped (null page, traps)
      0x0000_1000 .. globals_end   globals + interned string literals
      0x0020_0000 .. 0x0040_0000   stack (grows downward from the top)
      0x0040_0000 .. heap_end      heap (bump allocated)
    v}

    Loads sign-extend (char/short/int are signed in Mini-C); sub-word stores
    truncate. All accesses are little-endian. *)

exception Fault of string
(** Raised on null-page or out-of-range accesses. *)

type t

val create : unit -> t

val globals_base : int
val stack_top : int
val stack_limit : int
val heap_base : t -> int

val alloc_global : t -> size:int -> align:int -> int
(** Carve space in the globals region (only before first heap alloc). *)

val alloc_heap : t -> size:int -> zero:bool -> int
(** Bump-allocate [size] bytes, 16-byte aligned. *)

val free_heap : t -> int -> unit
(** Record the block as freed (storage is not recycled; the VM is a
    simulator, not a production allocator). Faults on addresses that were
    never allocated. *)

val alloc_size : t -> int -> int option
(** Size originally allocated at this base address, for [realloc]. *)

val load_int : t -> addr:int -> size:int -> int
val store_int : t -> addr:int -> size:int -> int -> unit
val load_f32 : t -> addr:int -> float
val store_f32 : t -> addr:int -> float -> unit
val load_f64 : t -> addr:int -> float
val store_f64 : t -> addr:int -> float -> unit

val blit : t -> dst:int -> src:int -> len:int -> unit
val fill : t -> dst:int -> byte:int -> len:int -> unit

val read_string : t -> int -> string
(** Read a NUL-terminated string. *)

val write_string : t -> int -> string -> unit
(** Write bytes plus a terminating NUL. *)
