(** IR interpreter.

    Executes an {!Ir.program} over {!Memory}, producing program output and a
    step (instruction) count, and driving two optional event hooks:

    - [mem_hook addr size is_write is_float iid] fires on every data memory
      access — this is the address trace the cache simulator consumes (and
      through which the "PMU" attributes misses to instructions);
    - [edge_hook fname src dst] fires on every taken CFG edge when set —
      this is the paper's PBO instrumentation ([src = -1] marks function
      entry). Setting it models compiling with instrumentation: the run
      collects an edge profile.

    The interpreter is deterministic, including [rand] (a fixed-seed LCG),
    so profiles, cache statistics and benchmark outputs are reproducible. *)

exception Runtime_error of string

type result = Rt.result = {
  exit_code : int;
  output : string;
  steps : int;  (** instructions executed *)
}

type t

val create :
  ?mem_hook:(int -> int -> bool -> bool -> int -> unit) ->
  ?edge_hook:(string -> int -> int -> unit) ->
  ?max_steps:int ->
  Ir.program ->
  t
(** Prepare a program for execution: lays out globals, interns strings,
    pre-compiles functions. Default [max_steps] is 2_000_000_000. *)

val run : ?args:int list -> t -> result
(** Execute [main]. [args] are passed as integer arguments (benchmarks use
    them to select the train vs. reference input scale).
    Raises {!Runtime_error} on faults (null dereference, missing [main],
    step-limit exceeded, ...). *)

val run_program : ?args:int list -> Ir.program -> result
(** [create] + [run] without hooks. *)
