(* Shared runtime vocabulary for the VM backends.

   Both execution engines — the tree-walking reference interpreter
   ({!Interp}) and the closure-compiled engine ({!Compile}) — raise the
   same exception, exchange the same argument/return values and produce
   the same [result] record, so callers can treat them interchangeably
   and the differential harness can compare them field by field. *)

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type result = { exit_code : int; output : string; steps : int }

(* calling-convention values: how operands cross a call boundary *)
type argval = AInt of int | AFloat of float

type retval = RVoid | RInt of int | RFloat of float

let func_addr_base = 0x7f00_0000

let truncate_int size v =
  match size with
  | 1 ->
    let v = v land 0xff in
    if v >= 0x80 then v - 0x100 else v
  | 2 ->
    let v = v land 0xffff in
    if v >= 0x8000 then v - 0x10000 else v
  | 4 ->
    let v = v land 0xffffffff in
    if v >= 0x80000000 then v - 0x100000000 else v
  | _ -> v

let default_max_steps = 2_000_000_000

let exit_code_of_retval = function
  | RInt v -> v
  | RFloat v -> int_of_float v
  | RVoid -> 0
