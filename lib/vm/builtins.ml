(* Builtin functions shared by the VM backends: math, printf-style
   output, and the deterministic LCG behind [rand]/[srand].

   [env] is the slice of interpreter state the builtins touch; both
   engines embed one, so a program's output bytes and random sequence
   are identical whichever backend runs it. *)

open Rt

type env = { mem : Memory.t; out : Buffer.t; mutable rng : int }

let create_env mem = { mem; out = Buffer.create 256; rng = 123456789 }

(* printf: the spec (flags/width/precision, minus C's 'l' length
   modifier) is collected in a single pass into a scratch buffer — one
   [Buffer.contents] per conversion, no per-character list building *)
let format_printf mem fmt args =
  let buf = Buffer.create 64 in
  let spec = Buffer.create 8 in
  let args = ref args in
  let next () =
    match !args with
    | [] -> error "printf: not enough arguments for format %S" fmt
    | a :: rest ->
      args := rest;
      a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c <> '%' then begin
      Buffer.add_char buf c;
      incr i
    end
    else begin
      incr i;
      (* collect flags/width/precision ('l' is parsed but dropped) *)
      Buffer.clear spec;
      Buffer.add_char spec '%';
      while
        !i < n
        && (match fmt.[!i] with
           | '0' .. '9' | '.' | '-' | '+' | ' ' | 'l' -> true
           | _ -> false)
      do
        (match fmt.[!i] with 'l' -> () | c -> Buffer.add_char spec c);
        incr i
      done;
      if !i >= n then Buffer.add_char buf '%'
      else begin
        let conv = fmt.[!i] in
        (match conv with
        | 'd' | 'i' | 'u' -> (
          match next () with
          | AInt v ->
            Buffer.add_char spec 'd';
            Buffer.add_string buf
              (Printf.sprintf
                 (Scanf.format_from_string (Buffer.contents spec) "%d")
                 v)
          | AFloat v -> Buffer.add_string buf (string_of_int (int_of_float v)))
        | 'x' -> (
          match next () with
          | AInt v ->
            Buffer.add_char spec 'x';
            Buffer.add_string buf
              (Printf.sprintf
                 (Scanf.format_from_string (Buffer.contents spec) "%x")
                 v)
          | AFloat _ -> error "printf: %%x with float")
        | 'c' -> (
          match next () with
          | AInt v -> Buffer.add_char buf (Char.chr (v land 0xff))
          | AFloat _ -> error "printf: %%c with float")
        | 'f' | 'e' | 'g' ->
          Buffer.add_char spec conv;
          let v =
            match next () with AFloat v -> v | AInt v -> float_of_int v
          in
          Buffer.add_string buf
            (Printf.sprintf
               (Scanf.format_from_string (Buffer.contents spec) "%f")
               v)
        | 's' -> (
          match next () with
          | AInt addr -> Buffer.add_string buf (Memory.read_string mem addr)
          | AFloat _ -> error "printf: %%s with float")
        | '%' -> Buffer.add_char buf '%'
        | c -> error "printf: unsupported conversion %%%c" c);
        incr i
      end
    end
  done;
  Buffer.contents buf

let exec env name (args : argval list) : retval =
  let f1 () =
    match args with
    | [ AFloat v ] -> v
    | [ AInt v ] -> float_of_int v
    | _ -> error "builtin %s: bad arguments" name
  in
  match name with
  | "sqrt" -> RFloat (sqrt (f1 ()))
  | "exp" -> RFloat (exp (f1 ()))
  | "log" -> RFloat (log (f1 ()))
  | "fabs" -> RFloat (Float.abs (f1 ()))
  | "floor" -> RFloat (floor (f1 ()))
  | "pow" -> (
    match args with
    | [ a; b ] ->
      let fa = match a with AFloat v -> v | AInt v -> float_of_int v in
      let fb = match b with AFloat v -> v | AInt v -> float_of_int v in
      RFloat (Float.pow fa fb)
    | _ -> error "pow: bad arguments")
  | "printf" -> (
    match args with
    | AInt fmt_addr :: rest ->
      let fmt = Memory.read_string env.mem fmt_addr in
      let s = format_printf env.mem fmt rest in
      Buffer.add_string env.out s;
      RInt (String.length s)
    | _ -> error "printf: bad arguments")
  | "putint" -> (
    match args with
    | [ AInt v ] ->
      Buffer.add_string env.out (string_of_int v);
      Buffer.add_char env.out '\n';
      RInt 0
    | _ -> error "putint: bad arguments")
  | "putfloat" ->
    Buffer.add_string env.out (Printf.sprintf "%.6f\n" (f1 ()));
    RVoid
  | "rand" ->
    (* deterministic LCG (numerical recipes) *)
    env.rng <- ((env.rng * 1664525) + 1013904223) land 0x3fffffff;
    RInt env.rng
  | "srand" -> (
    match args with
    | [ AInt v ] ->
      env.rng <- v land 0x3fffffff;
      RVoid
    | _ -> error "srand: bad arguments")
  | n -> error "unknown builtin '%s'" n
