(** Closure-compiled (threaded-code) execution backend.

    Same observable semantics, hooks and determinism guarantees as
    {!Interp} (see that module's documentation): each [Ir.instr] is
    pre-resolved into an OCaml closure at {!create} time — operand
    accessors specialized by register bank, names folded to constant
    addresses, layout sizes and bit-field masks baked in, and the hook
    option-branches compiled away — so the per-instruction execution
    cost is one indirect call. The differential tests pin its output,
    step counts and cache-event stream to the tree-walker's. *)

exception Runtime_error of string

type result = Rt.result = {
  exit_code : int;
  output : string;
  steps : int;  (** instructions executed *)
}

type t

val create :
  ?mem_hook:(int -> int -> bool -> bool -> int -> unit) ->
  ?edge_hook:(string -> int -> int -> unit) ->
  ?max_steps:int ->
  Ir.program ->
  t
(** Compile a program to closures: lays out globals, interns strings,
    pre-resolves every instruction. Default [max_steps] is
    2_000_000_000. *)

val run : ?args:int list -> t -> result
(** Execute [main]. Raises {!Runtime_error} exactly where {!Interp.run}
    does (same messages), with one caveat: the step limit is enforced
    per basic block rather than per instruction, which raises on exactly
    the same programs but may execute up to a block's worth of trailing
    instructions less before doing so. *)

val run_program : ?args:int list -> Ir.program -> result
(** [create] + [run] without hooks. *)
