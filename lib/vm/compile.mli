(** Closure-compiled (threaded-code) execution backend.

    Same observable semantics, hooks and determinism guarantees as
    {!Interp} (see that module's documentation): each [Ir.instr] is
    pre-resolved into an OCaml closure at {!create} time — operand
    accessors specialized by register bank, names folded to constant
    addresses, layout sizes and bit-field masks baked in, and the hook
    option-branches compiled away — so the per-instruction execution
    cost is one indirect call. The differential tests pin its output,
    step counts and cache-event stream to the tree-walker's. *)

exception Runtime_error of string

type result = Rt.result = {
  exit_code : int;
  output : string;
  steps : int;  (** instructions executed *)
}

type t

val create :
  ?mem_hook:(int -> int -> bool -> bool -> int -> unit) ->
  ?edge_hook:(string -> int -> int -> unit) ->
  ?bulk_hook:(int -> bool) ->
  ?ring:Slo_cachesim.Ring.t ->
  ?superblock:bool ->
  ?max_steps:int ->
  Ir.program ->
  t
(** Compile a program to closures: lays out globals, interns strings,
    pre-resolves every instruction. Default [max_steps] is
    2_000_000_000.

    [ring] is the batched alternative to [mem_hook] (the two are
    mutually exclusive — [Invalid_argument] if both are given): every
    load, store and memset/memcpy chunk appends one packed event to the
    ring instead of calling a closure, and the ring's sink drains whole
    batches. The event stream a drain sees is identical, event for
    event, to the [mem_hook] call sequence (the differential oracle
    pins this). {!run} flushes the tail — also on abnormal
    termination — so the sink always sees the complete stream.

    [bulk_hook n] is consulted before running a block whose event count
    [n] is statically known (no calls, no memset/memcpy): returning
    [true] means the event consumer has accounted for all [n] accesses
    itself and the block runs with no per-access events at all. The
    sampled cache simulator uses this to retire a block's accesses in
    O(1) while fast-forwarding. Only meaningful together with
    [mem_hook] or [ring]; the event values the consumer would have
    received (addresses, instruction ids) are not reconstructed — the
    consumer must not need them. With a [ring], events already buffered
    precede the [n] bulk accesses in stream order: the consumer must
    flush-then-advance (see {!Slo_cachesim.Sampled.bulk_ready}). On a
    run that terminates abnormally mid-block the bulk consumer may have
    been charged up to one block's trailing accesses that never
    executed (same granularity caveat as the step limit below).

    [superblock] additionally fuses each straight-line chain of blocks
    linked by unconditional jumps into one superblock: one array sweep,
    one step-limit check and one [bulk_hook] consultation per chain.
    Fusion is skipped when an [edge_hook] is present (interior jump
    edges would no longer be reported). Step totals and step-limit
    failures are unchanged on all programs; the limit check becomes
    chain-wise (see the caveat on {!run}). *)

val run : ?args:int list -> t -> result
(** Execute [main]. Raises {!Runtime_error} exactly where {!Interp.run}
    does (same messages), with one caveat: the step limit is enforced
    per basic block (per superblock when fused) rather than per
    instruction, which raises on exactly the same programs but may
    execute up to a block's worth of trailing instructions less before
    doing so. *)

val run_program : ?args:int list -> Ir.program -> result
(** [create] + [run] without hooks. *)
