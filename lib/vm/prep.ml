(* Shared pre-compilation for the VM backends.

   Everything both engines must agree on bit-for-bit lives here: the
   register-bank inference, the frame layout of locals, the bit-field
   classification of tagged accesses, and the memory image (global
   allocation order and string interning). Keeping these in one place is
   what makes the walk and closure backends produce identical addresses
   — and therefore identical cache-simulation counters. *)

let builtin_returns_float = function
  | "sqrt" | "exp" | "log" | "fabs" | "pow" | "floor" -> true
  | _ -> false

let entry_block (f : Ir.func) =
  match f.fblocks with b :: _ -> b.bid | [] -> 0

(* frame layout: offsets for every local (params included), and the
   16-byte-rounded frame size *)
let locals_layout layout (f : Ir.func) :
    (string, int * Irty.t) Hashtbl.t * int =
  let locals = Hashtbl.create 16 in
  let off = ref 0 in
  List.iter
    (fun (name, ty) ->
      let a = Layout.alignof layout ty in
      let a = max a 1 in
      off := (!off + a - 1) / a * a;
      Hashtbl.replace locals name (!off, ty);
      off := !off + max (Layout.sizeof layout ty) 1)
    f.flocals;
  (locals, (!off + 15) / 16 * 16)

(* register bank inference: two passes over all instructions *)
let float_banks (prog : Ir.program) (f : Ir.func) : bool array =
  let fl = Array.make f.next_reg false in
  let op_float = function
    | Ir.Oreg r -> fl.(r)
    | Ir.Ofimm _ -> true
    | Ir.Oimm _ -> false
  in
  let scan () =
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            match i.idesc with
            | Ir.Imov (r, o) -> if op_float o then fl.(r) <- true
            | Ir.Ibin (r, op, ty, _, _) ->
              if Irty.is_float_ty ty then (
                match op with
                | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge | Ir.Eq | Ir.Ne ->
                  () (* comparisons yield ints *)
                | _ -> fl.(r) <- true)
            | Ir.Iun (r, u, ty, _) ->
              if Irty.is_float_ty ty && u = Ir.Neg then fl.(r) <- true
            | Ir.Icast (r, _, to_, _, _) ->
              if Irty.is_float_ty to_ then fl.(r) <- true
            | Ir.Iload (r, _, ty, _) -> if Irty.is_float_ty ty then fl.(r) <- true
            | Ir.Icall (Some r, callee, _) -> (
              match callee with
              | Ir.Cdirect n -> (
                match Ir.find_func prog n with
                | Some g -> if Irty.is_float_ty g.fret then fl.(r) <- true
                | None -> ())
              | Ir.Cbuiltin n -> if builtin_returns_float n then fl.(r) <- true
              | Ir.Cextern _ | Ir.Cindirect _ -> ())
            | Ir.Iaddrglob _ | Ir.Iaddrlocal _ | Ir.Iaddrstr _
            | Ir.Iaddrfunc _ | Ir.Ifieldaddr _ | Ir.Iptradd _ | Ir.Ialloc _
            | Ir.Istore _ | Ir.Ifree _ | Ir.Imemset _ | Ir.Imemcpy _
            | Ir.Icall (None, _, _) ->
              ())
          b.instrs)
      f.fblocks
  in
  scan ();
  scan ();
  fl

(* classify a tagged access: [Some (unit_size, bit_off, width)] when the
   tag names a genuine bit-field (so the VM must mask), [None] when the
   tag is only analysis metadata and the access is a plain load/store *)
let bitfield_info (prog : Ir.program) layout (a : Ir.access) =
  match Structs.find_opt prog.structs a.astruct with
  | Some d
    when a.afield < Array.length d.fields
         && d.fields.(a.afield).Structs.bits <> None -> (
    let flx = Layout.field_layout layout a.astruct a.afield in
    match flx.bit_width with
    | Some w -> Some (Layout.sizeof layout flx.fty, flx.bit_off, w)
    | None -> None)
  | Some _ | None -> None

(* lay out the globals region; the allocation order (declaration order,
   then interned strings) fixes every static address *)
let alloc_globals layout mem (prog : Ir.program) :
    (string, int * Irty.t) Hashtbl.t =
  let globals_addr = Hashtbl.create 16 in
  List.iter
    (fun (name, ty, init) ->
      let size = max (Layout.sizeof layout ty) 1 in
      let align = max (Layout.alignof layout ty) 1 in
      let addr = Memory.alloc_global mem ~size ~align in
      Hashtbl.replace globals_addr name (addr, ty);
      match init with
      | None -> ()
      | Some bits -> (
        match ty with
        | Irty.Float -> Memory.store_f32 mem ~addr (Int64.float_of_bits bits)
        | Irty.Double -> Memory.store_f64 mem ~addr (Int64.float_of_bits bits)
        | _ ->
          Memory.store_int mem ~addr ~size:(min 8 size) (Int64.to_int bits)))
    prog.globals;
  globals_addr

let intern_strings mem (prog : Ir.program) : (string, int) Hashtbl.t =
  let strings = Hashtbl.create 16 in
  let intern s =
    if not (Hashtbl.mem strings s) then begin
      let addr = Memory.alloc_global mem ~size:(String.length s + 1) ~align:1 in
      Memory.write_string mem addr s;
      Hashtbl.replace strings s addr
    end
  in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with Ir.Iaddrstr (_, s) -> intern s | _ -> ())
            b.instrs)
        f.fblocks)
    prog.funcs;
  strings
