exception Fault of string

let globals_base = 0x1000
let stack_limit = 0x20_0000
let stack_top = 0x40_0000
let heap_base_addr = 0x40_0000

type t = {
  mutable buf : Bytes.t;
  mutable globals_next : int;
  mutable heap_next : int;
  allocs : (int, int) Hashtbl.t;
  freed : (int, unit) Hashtbl.t;
}

let create () =
  {
    buf = Bytes.make (8 * 1024 * 1024) '\000';
    globals_next = globals_base;
    heap_next = heap_base_addr;
    allocs = Hashtbl.create 64;
    freed = Hashtbl.create 64;
  }

let heap_base _ = heap_base_addr

let ensure t limit =
  let len = Bytes.length t.buf in
  if limit > len then begin
    let new_len = max limit (len * 2) in
    if new_len > 1 lsl 30 then raise (Fault "VM out of memory (1 GiB cap)");
    let nb = Bytes.make new_len '\000' in
    Bytes.blit t.buf 0 nb 0 len;
    t.buf <- nb
  end

let align_up x a = (x + a - 1) / a * a

let alloc_global t ~size ~align =
  let a = align_up t.globals_next (max 1 align) in
  if a + size > stack_limit then raise (Fault "globals region exhausted");
  t.globals_next <- a + size;
  ensure t (a + size);
  a

let alloc_heap t ~size ~zero =
  let a = align_up t.heap_next 16 in
  let size = max size 1 in
  t.heap_next <- a + size;
  ensure t (a + size);
  if zero then Bytes.fill t.buf a size '\000';
  Hashtbl.replace t.allocs a size;
  a

let free_heap t addr =
  if addr = 0 then ()
  else if not (Hashtbl.mem t.allocs addr) then
    raise (Fault (Printf.sprintf "free of invalid pointer 0x%x" addr))
  else if Hashtbl.mem t.freed addr then
    raise (Fault (Printf.sprintf "double free of 0x%x" addr))
  else Hashtbl.replace t.freed addr ()

let alloc_size t addr = Hashtbl.find_opt t.allocs addr

let check t addr size =
  if addr < globals_base then
    raise (Fault (Printf.sprintf "null-page access at 0x%x" addr));
  ensure t (addr + size)

let load_int t ~addr ~size =
  check t addr size;
  let b = t.buf in
  match size with
  | 1 ->
    let v = Char.code (Bytes.get b addr) in
    if v >= 0x80 then v - 0x100 else v
  | 2 ->
    let v = Char.code (Bytes.get b addr) lor (Char.code (Bytes.get b (addr + 1)) lsl 8) in
    if v >= 0x8000 then v - 0x10000 else v
  | 4 ->
    let v = Int32.to_int (Bytes.get_int32_le b addr) in
    v
  | 8 -> Int64.to_int (Bytes.get_int64_le b addr)
  | _ -> raise (Fault (Printf.sprintf "bad load size %d" size))

let store_int t ~addr ~size v =
  check t addr size;
  let b = t.buf in
  match size with
  | 1 -> Bytes.set b addr (Char.chr (v land 0xff))
  | 2 ->
    Bytes.set b addr (Char.chr (v land 0xff));
    Bytes.set b (addr + 1) (Char.chr ((v lsr 8) land 0xff))
  | 4 -> Bytes.set_int32_le b addr (Int32.of_int v)
  | 8 -> Bytes.set_int64_le b addr (Int64.of_int v)
  | _ -> raise (Fault (Printf.sprintf "bad store size %d" size))

let load_f32 t ~addr =
  check t addr 4;
  Int32.float_of_bits (Bytes.get_int32_le t.buf addr)

let store_f32 t ~addr v =
  check t addr 4;
  Bytes.set_int32_le t.buf addr (Int32.bits_of_float v)

let load_f64 t ~addr =
  check t addr 8;
  Int64.float_of_bits (Bytes.get_int64_le t.buf addr)

let store_f64 t ~addr v =
  check t addr 8;
  Bytes.set_int64_le t.buf addr (Int64.bits_of_float v)

let blit t ~dst ~src ~len =
  if len > 0 then begin
    check t src len;
    check t dst len;
    Bytes.blit t.buf src t.buf dst len
  end

let fill t ~dst ~byte ~len =
  if len > 0 then begin
    check t dst len;
    Bytes.fill t.buf dst len (Char.chr (byte land 0xff))
  end

let read_string t addr =
  check t addr 1;
  let buf = Buffer.create 16 in
  let rec go a =
    ensure t (a + 1);
    let c = Bytes.get t.buf a in
    if c <> '\000' then begin
      Buffer.add_char buf c;
      go (a + 1)
    end
  in
  go addr;
  Buffer.contents buf

let write_string t addr s =
  check t addr (String.length s + 1);
  Bytes.blit_string s 0 t.buf addr (String.length s);
  Bytes.set t.buf (addr + String.length s) '\000'
