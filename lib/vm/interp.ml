exception Runtime_error = Rt.Runtime_error

open Rt

let error = Rt.error

type result = Rt.result = { exit_code : int; output : string; steps : int }

(* pre-compiled function *)
type code = {
  cfunc : Ir.func;
  cblocks : Ir.instr array array;  (* indexed by block id *)
  cterms : Ir.term array;
  centry : int;
  clocals : (string, int * Irty.t) Hashtbl.t;  (* frame offset, type *)
  cframe_size : int;
  cfloat_reg : bool array;  (* register bank assignment *)
}

type t = {
  prog : Ir.program;
  layout : Layout.t;
  mem : Memory.t;
  codes : (string, code) Hashtbl.t;
  func_by_index : string array;
  func_addr : (string, int) Hashtbl.t;
  globals_addr : (string, int * Irty.t) Hashtbl.t;
  strings : (string, int) Hashtbl.t;
  benv : Builtins.env;
  out : Buffer.t;
  mutable sp : int;
  mutable steps : int;
  mem_hook : (int -> int -> bool -> bool -> int -> unit) option;
  edge_hook : (string -> int -> int -> unit) option;
  max_steps : int;
}

let func_addr_base = Rt.func_addr_base

(* ------------------------------------------------------------------ *)
(* Pre-compilation                                                     *)
(* ------------------------------------------------------------------ *)

let compile_func (prog : Ir.program) layout (f : Ir.func) : code =
  let nb = f.next_block in
  let cblocks = Array.make nb [||] in
  let cterms = Array.make nb (Ir.Tret None) in
  (* the VM only needs access tags for bit-field masking; strip the rest in
     its private instruction copies so the hot load/store path skips the
     per-access layout lookup (the shared IR keeps its tags for the
     analyses) *)
  let is_bitfield (a : Ir.access) =
    Prep.bitfield_info prog layout a <> None
  in
  let specialize (i : Ir.instr) =
    match i.idesc with
    | Ir.Iload (r, a, ty, Some acc) when not (is_bitfield acc) ->
      { i with Ir.idesc = Ir.Iload (r, a, ty, None) }
    | Ir.Istore (a, v, ty, Some acc) when not (is_bitfield acc) ->
      { i with Ir.idesc = Ir.Istore (a, v, ty, None) }
    | _ -> i
  in
  List.iter
    (fun (b : Ir.block) ->
      cblocks.(b.bid) <- Array.of_list (List.map specialize b.instrs);
      cterms.(b.bid) <- b.btermin)
    f.fblocks;
  let clocals, cframe_size = Prep.locals_layout layout f in
  {
    cfunc = f; cblocks; cterms;
    centry = Prep.entry_block f;
    clocals; cframe_size; cfloat_reg = Prep.float_banks prog f;
  }

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

let create ?mem_hook ?edge_hook ?(max_steps = Rt.default_max_steps)
    (prog : Ir.program) : t =
  let layout = Layout.create prog.structs in
  let mem = Memory.create () in
  let globals_addr = Prep.alloc_globals layout mem prog in
  let strings = Prep.intern_strings mem prog in
  let codes = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace codes f.Ir.fname (compile_func prog layout f))
    prog.funcs;
  let func_by_index = Array.of_list (List.map (fun f -> f.Ir.fname) prog.funcs) in
  let func_addr = Hashtbl.create 16 in
  Array.iteri
    (fun i n -> Hashtbl.replace func_addr n (func_addr_base + i))
    func_by_index;
  let benv = Builtins.create_env mem in
  {
    prog; layout; mem; codes; func_by_index; func_addr; globals_addr;
    strings; benv; out = benv.Builtins.out; sp = Memory.stack_top; steps = 0;
    mem_hook; edge_hook; max_steps;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let rec call t fname (args : argval list) : retval =
  match Hashtbl.find_opt t.codes fname with
  | None -> error "call to undefined function '%s'" fname
  | Some code ->
    let f = code.cfunc in
    let frame_base = t.sp - code.cframe_size in
    if frame_base < Memory.stack_limit then error "stack overflow in '%s'" fname;
    let saved_sp = t.sp in
    t.sp <- frame_base;
    let iregs = Array.make f.next_reg 0 in
    let fregs = Array.make f.next_reg 0.0 in
    (* write arguments into parameter slots *)
    let rec bind params args =
      match (params, args) with
      | [], _ -> ()
      | (pname, pty) :: ps, a :: rest ->
        let off =
          match Hashtbl.find_opt code.clocals pname with
          | Some (off, _) -> off
          | None ->
            error "no stack slot for parameter '%s' of function '%s'" pname
              fname
        in
        let addr = frame_base + off in
        (match (pty, a) with
        | Irty.Float, AFloat v -> Memory.store_f32 t.mem ~addr v
        | Irty.Double, AFloat v -> Memory.store_f64 t.mem ~addr v
        | Irty.Float, AInt v -> Memory.store_f32 t.mem ~addr (float_of_int v)
        | Irty.Double, AInt v -> Memory.store_f64 t.mem ~addr (float_of_int v)
        | _, AInt v ->
          Memory.store_int t.mem ~addr
            ~size:(min 8 (max 1 (Layout.sizeof t.layout pty)))
            v
        | _, AFloat v ->
          Memory.store_int t.mem ~addr
            ~size:(min 8 (max 1 (Layout.sizeof t.layout pty)))
            (int_of_float v));
        bind ps rest
      | _ :: _, [] -> error "too few arguments to '%s'" fname
    in
    bind f.fparams args;
    (match t.edge_hook with
    | Some h -> h fname (-1) code.centry
    | None -> ());
    let result = exec_blocks t code frame_base iregs fregs code.centry in
    t.sp <- saved_sp;
    result

and exec_blocks t code frame_base iregs fregs entry : retval =
  let fl = code.cfloat_reg in
  let mem = t.mem in
  let get_i (o : Ir.operand) =
    match o with
    | Ir.Oreg r -> if fl.(r) then int_of_float fregs.(r) else iregs.(r)
    | Ir.Oimm n -> Int64.to_int n
    | Ir.Ofimm f -> int_of_float f
  in
  let get_f (o : Ir.operand) =
    match o with
    | Ir.Oreg r -> if fl.(r) then fregs.(r) else float_of_int iregs.(r)
    | Ir.Oimm n -> Int64.to_float n
    | Ir.Ofimm f -> f
  in
  let get_arg (o : Ir.operand) : argval =
    match o with
    | Ir.Oreg r -> if fl.(r) then AFloat fregs.(r) else AInt iregs.(r)
    | Ir.Oimm n -> AInt (Int64.to_int n)
    | Ir.Ofimm f -> AFloat f
  in
  let set r v = if fl.(r) then fregs.(r) <- float_of_int v else iregs.(r) <- v in
  let setf r v = if fl.(r) then fregs.(r) <- v else iregs.(r) <- int_of_float v in
  let mem_event addr size write isf iid =
    match t.mem_hook with Some h -> h addr size write isf iid | None -> ()
  in
  let field_bits acc =
    (* bit-field handling: returns Some (unit_size, bit_off, width) *)
    match acc with
    | Some { Ir.astruct; afield } -> (
      let flx = Layout.field_layout t.layout astruct afield in
      match flx.bit_width with
      | Some w -> Some (Layout.sizeof t.layout flx.fty, flx.bit_off, w)
      | None -> None)
    | None -> None
  in
  let rec run_block bid : retval =
    let instrs = code.cblocks.(bid) in
    let n = Array.length instrs in
    for idx = 0 to n - 1 do
      t.steps <- t.steps + 1;
      if t.steps > t.max_steps then error "step limit exceeded";
      exec_instr instrs.(idx)
    done;
    t.steps <- t.steps + 1 (* the terminator issues too *);
    if t.steps > t.max_steps then error "step limit exceeded";
    (match code.cterms.(bid) with
    | Ir.Tret None -> RVoid
    | Ir.Tret (Some o) ->
      if Irty.is_float_ty code.cfunc.fret then RFloat (get_f o)
      else RInt (get_i o)
    | Ir.Tjmp dst ->
      edge bid dst;
      run_block dst
    | Ir.Tbr (c, a, b) ->
      let dst = if get_i c <> 0 then a else b in
      edge bid dst;
      run_block dst)
  and edge src dst =
    match t.edge_hook with
    | Some h -> h code.cfunc.fname src dst
    | None -> ()
  and exec_instr (i : Ir.instr) =
    match i.idesc with
    | Ir.Imov (r, o) -> if fl.(r) then fregs.(r) <- get_f o else iregs.(r) <- get_i o
    | Ir.Ibin (r, op, ty, a, b) ->
      if Irty.is_float_ty ty then begin
        let x = get_f a and y = get_f b in
        match op with
        | Ir.Add -> setf r (x +. y)
        | Ir.Sub -> setf r (x -. y)
        | Ir.Mul -> setf r (x *. y)
        | Ir.Div -> setf r (x /. y)
        | Ir.Lt -> set r (if x < y then 1 else 0)
        | Ir.Le -> set r (if x <= y then 1 else 0)
        | Ir.Gt -> set r (if x > y then 1 else 0)
        | Ir.Ge -> set r (if x >= y then 1 else 0)
        | Ir.Eq -> set r (if x = y then 1 else 0)
        | Ir.Ne -> set r (if x <> y then 1 else 0)
        | Ir.Mod | Ir.Band | Ir.Bor | Ir.Bxor | Ir.Shl | Ir.Shr ->
          error "float operand to integer-only operator"
      end
      else begin
        let x = get_i a and y = get_i b in
        match op with
        | Ir.Add -> set r (x + y)
        | Ir.Sub -> set r (x - y)
        | Ir.Mul -> set r (x * y)
        | Ir.Div ->
          if y = 0 then error "integer division by zero";
          set r (x / y)
        | Ir.Mod ->
          if y = 0 then error "integer modulo by zero";
          set r (x mod y)
        | Ir.Band -> set r (x land y)
        | Ir.Bor -> set r (x lor y)
        | Ir.Bxor -> set r (x lxor y)
        | Ir.Shl -> set r (x lsl (y land 63))
        | Ir.Shr -> set r (x asr (y land 63))
        | Ir.Lt -> set r (if x < y then 1 else 0)
        | Ir.Le -> set r (if x <= y then 1 else 0)
        | Ir.Gt -> set r (if x > y then 1 else 0)
        | Ir.Ge -> set r (if x >= y then 1 else 0)
        | Ir.Eq -> set r (if x = y then 1 else 0)
        | Ir.Ne -> set r (if x <> y then 1 else 0)
      end
    | Ir.Iun (r, op, ty, a) -> (
      match op with
      | Ir.Neg ->
        if Irty.is_float_ty ty then setf r (-.get_f a) else set r (-get_i a)
      | Ir.Lnot ->
        let z =
          if Irty.is_float_ty ty then get_f a = 0.0 else get_i a = 0
        in
        set r (if z then 1 else 0)
      | Ir.Bnot -> set r (lnot (get_i a)))
    | Ir.Icast (r, from_, to_, a, _) -> (
      match (Irty.is_float_ty from_, Irty.is_float_ty to_) with
      | true, true ->
        let v = get_f a in
        setf r (match to_ with Irty.Float -> Int32.float_of_bits (Int32.bits_of_float v) | _ -> v)
      | true, false -> set r (int_of_float (get_f a))
      | false, true -> setf r (float_of_int (get_i a))
      | false, false -> (
        let v = get_i a in
        match to_ with
        | Irty.Char -> set r (truncate_int 1 v)
        | Irty.Short -> set r (truncate_int 2 v)
        | Irty.Int -> set r (truncate_int 4 v)
        | _ -> set r v))
    | Ir.Iload (r, a, ty, acc) -> (
      let addr = get_i a in
      let isf = Irty.is_float_ty ty in
      match field_bits acc with
      | Some (unit_size, bit_off, width) ->
        mem_event addr unit_size false false i.iid;
        let unit_v = Memory.load_int mem ~addr ~size:unit_size in
        let v = (unit_v asr bit_off) land ((1 lsl width) - 1) in
        set r v
      | None -> (
        match ty with
        | Irty.Float ->
          mem_event addr 4 false true i.iid;
          setf r (Memory.load_f32 mem ~addr)
        | Irty.Double ->
          mem_event addr 8 false true i.iid;
          setf r (Memory.load_f64 mem ~addr)
        | _ ->
          let size = max 1 (min 8 (Layout.sizeof t.layout ty)) in
          mem_event addr size false isf i.iid;
          set r (Memory.load_int mem ~addr ~size)))
    | Ir.Istore (a, v, ty, acc) -> (
      let addr = get_i a in
      match field_bits acc with
      | Some (unit_size, bit_off, width) ->
        mem_event addr unit_size true false i.iid;
        let old = Memory.load_int mem ~addr ~size:unit_size in
        let mask = ((1 lsl width) - 1) lsl bit_off in
        let nv = (old land lnot mask) lor ((get_i v lsl bit_off) land mask) in
        Memory.store_int mem ~addr ~size:unit_size nv
      | None -> (
        match ty with
        | Irty.Float ->
          mem_event addr 4 true true i.iid;
          Memory.store_f32 mem ~addr (get_f v)
        | Irty.Double ->
          mem_event addr 8 true true i.iid;
          Memory.store_f64 mem ~addr (get_f v)
        | _ ->
          let size = max 1 (min 8 (Layout.sizeof t.layout ty)) in
          mem_event addr size true false i.iid;
          Memory.store_int mem ~addr ~size (get_i v)))
    | Ir.Iaddrglob (r, g) -> (
      match Hashtbl.find_opt t.globals_addr g with
      | Some (addr, _) -> set r addr
      | None -> error "unknown global '%s'" g)
    | Ir.Iaddrlocal (r, l) -> (
      match Hashtbl.find_opt code.clocals l with
      | Some (off, _) -> set r (frame_base + off)
      | None -> error "unknown local '%s' in '%s'" l code.cfunc.fname)
    | Ir.Iaddrstr (r, s) -> set r (Hashtbl.find t.strings s)
    | Ir.Iaddrfunc (r, f) -> (
      match Hashtbl.find_opt t.func_addr f with
      | Some a -> set r a
      | None -> error "address of undefined function '%s'" f)
    | Ir.Ifieldaddr (r, b, s, fi) ->
      let base = get_i b in
      let flx = Layout.field_layout t.layout s fi in
      set r (base + flx.byte_off)
    | Ir.Iptradd (r, b, idx, ty) ->
      set r (get_i b + (get_i idx * Layout.sizeof t.layout ty))
    | Ir.Icall (dst, callee, args) -> (
      let argvals = List.map get_arg args in
      let res =
        match callee with
        | Ir.Cdirect n -> call t n argvals
        | Ir.Cbuiltin n -> Builtins.exec t.benv n argvals
        | Ir.Cextern _ ->
          (* library functions outside the compilation scope are stubs: the
             legality analysis (LIBC) is about what the compiler may assume,
             not whether the program runs *)
          RInt 0
        | Ir.Cindirect o ->
          let a = get_i o in
          let idx = a - func_addr_base in
          if idx < 0 || idx >= Array.length t.func_by_index then
            error "indirect call through bad pointer 0x%x" a;
          call t t.func_by_index.(idx) argvals
      in
      match (dst, res) with
      | None, _ -> ()
      | Some r, RInt v -> set r v
      | Some r, RFloat v -> setf r v
      | Some r, RVoid -> set r 0)
    | Ir.Ialloc (r, kind, count, elem) -> (
      let n = get_i count in
      let elem_size = max 1 (Layout.sizeof t.layout elem) in
      let bytes = n * elem_size in
      match kind with
      | Ir.Amalloc -> set r (Memory.alloc_heap mem ~size:bytes ~zero:false)
      | Ir.Acalloc -> set r (Memory.alloc_heap mem ~size:bytes ~zero:true)
      | Ir.Arealloc old_op ->
        let old = get_i old_op in
        let na = Memory.alloc_heap mem ~size:bytes ~zero:false in
        (if old <> 0 then
           match Memory.alloc_size mem old with
           | Some osz -> Memory.blit mem ~dst:na ~src:old ~len:(min osz bytes)
           | None -> error "realloc of invalid pointer 0x%x" old);
        set r na)
    | Ir.Ifree o -> Memory.free_heap mem (get_i o)
    | Ir.Imemset (d, v, n, _) ->
      let dst = get_i d and byte = get_i v and len = get_i n in
      touch_range dst len true i.iid;
      Memory.fill mem ~dst ~byte ~len
    | Ir.Imemcpy (d, s, n, _) ->
      let dst = get_i d and src = get_i s and len = get_i n in
      touch_range src len false i.iid;
      touch_range dst len true i.iid;
      Memory.blit mem ~dst ~src ~len
  and touch_range addr len write iid =
    match t.mem_hook with
    | None -> ()
    | Some h ->
      let pos = ref addr in
      let remaining = ref len in
      while !remaining > 0 do
        let chunk = min 8 !remaining in
        h !pos chunk write false iid;
        pos := !pos + chunk;
        remaining := !remaining - chunk
      done
  in
  run_block entry

let run ?(args = []) (t : t) : result =
  Buffer.clear t.out;
  t.steps <- 0;
  t.sp <- Memory.stack_top;
  if not (Hashtbl.mem t.codes "main") then error "program has no 'main'";
  let res =
    try call t "main" (List.map (fun v -> AInt v) args)
    with Memory.Fault msg -> error "memory fault: %s" msg
  in
  { exit_code = Rt.exit_code_of_retval res;
    output = Buffer.contents t.out;
    steps = t.steps }

let run_program ?args prog = run ?args (create prog)
