(* Closure-compiled (threaded-code) VM backend.

   At [create] time each [Ir.instr] is pre-resolved into an OCaml
   closure over a [frame]; running a block is then just an array sweep
   of [frame -> unit] thunks plus one closure for the terminator. The
   compilation step bakes in everything the tree-walker re-derives per
   executed instruction:

   - operand accessors specialized by register bank — no [fl.(r)] test
     per operand read, the bank is chosen once at compile time;
   - locals, globals, interned strings and function addresses folded to
     constant offsets (no [Hashtbl] lookups on the hot path);
   - [Layout.sizeof] results and bit-field (unit size, shift, mask)
     triples computed once per instruction;
   - the [mem_hook]/[edge_hook] option branches specialized away: a
     hook-free [run] compiles to closures with no event plumbing at
     all, the profile/measure path to closures that call the hook
     directly;
   - direct calls bind arguments through per-call-site closures that
     already know the callee's parameter offsets, types and sizes.

   Semantics are identical to {!Interp} by construction: both engines
   share {!Prep} (register banks, frame layout, memory image) and
   {!Builtins} (output, printf, LCG), raise the same {!Rt.Runtime_error}
   messages, and count steps the same way (one per instruction plus one
   per terminator — this backend adds them blockwise, which yields the
   same totals and the same step-limit failures). Compile-time name
   resolution failures are not reported eagerly: an unknown global or
   local compiles to a closure that raises the interpreter's exact
   error if (and only if) the instruction is actually executed.

   Two optional accelerations on top of the closure core:

   - [superblock]: fuse straight-line Tjmp chains into single fused
     blocks (see [fuse_superblocks]), fuse address-producing
     instructions (fieldaddr/ptradd/addr-of) into the load or store
     addressing through them, and fold each block's last body thunk
     into its terminator — fewer closure dispatches per executed
     instruction at identical observable semantics (the IR-derived
     step totals included);
   - [bulk_hook]: blocks with a statically known mem-hook event count
     carry a second, hook-free compilation of their body; when the bulk
     hook accepts the block's event count the fast body runs instead,
     so a sampler fast-forwarding past a detailed window pays O(1) per
     (super)block instead of O(accesses). *)

exception Runtime_error = Rt.Runtime_error

open Rt
module Ring = Slo_cachesim.Ring

type result = Rt.result = { exit_code : int; output : string; steps : int }

let error = Rt.error

(* per-activation state: frame base plus the two register banks *)
type frame = { fb : int; ir : int array; fr : float array }

(* a compiled basic block — or, under the superblock variant, a fused
   chain of Tjmp-linked blocks *)
type bcode = {
  bc_steps : int;  (* instruction count + 1 per constituent terminator *)
  bc_body : (frame -> unit) array;
  bc_term : frame -> int;  (* successor block id, or -1 to return *)
  bc_ret : frame -> retval;  (* only consulted when bc_term yields -1 *)
  bc_events : int;
    (* statically known mem-hook events of the body, or -1 when the
       count is dynamic (calls nest events, memset/memcpy lengths are
       runtime values) or the bulk fast path is disabled *)
  bc_fast : (frame -> unit) array;
    (* the same body compiled without the mem hook; executed instead of
       [bc_body] when the bulk hook consumes all [bc_events] accesses *)
}

(* a compiled function; fields are filled in two passes (signature-level
   facts first, bodies second) so call sites can resolve forward
   references at compile time *)
type fcode = {
  fc_name : string;
  mutable fc_entry : int;
  mutable fc_ni : int;  (* integer-bank registers (max used index + 1) *)
  mutable fc_nf : int;  (* float-bank registers *)
  mutable fc_frame_size : int;
  mutable fc_blocks : bcode array;
  mutable fc_bind : argval list -> int -> unit;  (* generic binder *)
  mutable fc_entry_hook : unit -> unit;
}

(* where a compiled load/store sends its access event: nowhere, a
   per-access hook closure, or an inlined push into a batch ring.
   Chosen once at [create]; every load/store closure is compiled
   against exactly one case, so the hot path carries no dispatch. *)
type sink =
  | Snone
  | Shook of (int -> int -> bool -> bool -> int -> unit)
  | Sring of Ring.t

type t = {
  mem : Memory.t;
  (* indexed like Ir.program.funcs, but resolved through the name table
     so duplicate names dispatch to the same function as the walker *)
  dispatch : fcode array;
  fcode_tbl : (string, fcode) Hashtbl.t;
  benv : Builtins.env;
  out : Buffer.t;
  mutable sp : int;
  mutable steps : int;
  max_steps : int;
  sink : sink;
  edge_hook : (string -> int -> int -> unit) option;
  bulk : int -> bool;
    (* [bulk n]: consume [n] upcoming accesses cheaply (true) or fall
       back to per-access hook calls (false); constantly false unless a
       [bulk_hook] was supplied at [create] time *)
  bulk_on : bool;  (* a bulk hook AND a mem hook were supplied *)
  sb : bool;  (* fuse Tjmp chains into superblocks *)
}

(* ------------------------------------------------------------------ *)
(* Execution core                                                      *)
(* ------------------------------------------------------------------ *)

let exec_fcode t (fc : fcode) (frame : frame) : retval =
  let blocks = fc.fc_blocks in
  let max_steps = t.max_steps in
  let bulk = t.bulk in
  let rec go bid =
    let bc = blocks.(bid) in
    let s = t.steps + bc.bc_steps in
    t.steps <- s;
    if s > max_steps then error "step limit exceeded";
    (* retire the whole block's accesses through the bulk hook when it
       accepts them (sampled fast-forward), and run the hook-free body;
       [bc_events] is -1 whenever that would be unsound *)
    let body =
      if bc.bc_events > 0 && bulk bc.bc_events then bc.bc_fast else bc.bc_body
    in
    for k = 0 to Array.length body - 1 do
      (Array.unsafe_get body k) frame
    done;
    let nxt = bc.bc_term frame in
    if nxt >= 0 then go nxt else bc.bc_ret frame
  in
  go fc.fc_entry

(* the argval-list calling path: [main] and indirect calls *)
let call_generic t (fc : fcode) (args : argval list) : retval =
  let frame_base = t.sp - fc.fc_frame_size in
  if frame_base < Memory.stack_limit then
    error "stack overflow in '%s'" fc.fc_name;
  let saved_sp = t.sp in
  t.sp <- frame_base;
  fc.fc_bind args frame_base;
  fc.fc_entry_hook ();
  let frame =
    { fb = frame_base; ir = Array.make fc.fc_ni 0;
      fr = Array.make fc.fc_nf 0.0 }
  in
  let res = exec_fcode t fc frame in
  t.sp <- saved_sp;
  res

let touch_range h addr len write iid =
  let pos = ref addr in
  let remaining = ref len in
  while !remaining > 0 do
    let chunk = min 8 !remaining in
    h !pos chunk write false iid;
    pos := !pos + chunk;
    remaining := !remaining - chunk
  done

(* the same chunking with events pushed into the ring — memset/memcpy
   lengths are runtime values, so unlike a load/store the meta word is
   not a compile-time constant here *)
let touch_range_ring rg addr len write iid =
  let pos = ref addr in
  let remaining = ref len in
  while !remaining > 0 do
    let chunk = min 8 !remaining in
    Ring.push rg !pos (Ring.meta ~size:chunk ~write ~is_float:false ~iid);
    pos := !pos + chunk;
    remaining := !remaining - chunk
  done

(* Wrap an address accessor so that evaluating it also records the
   access event. The ring case is the measure phase's hot path: the
   meta word folds to one immediate per compiled load/store, and the
   push is two unsafe stores plus a full-check — no closure call, no
   allocation; the whole simulation cost moves into the batched drain
   at flush time. [Snone] adds nothing (the accessor is returned as
   is), which keeps the bulk fast bodies and hook-free runs free of
   event plumbing. *)
let with_event ~sink ~(ga : frame -> int) ~size ~write ~is_float ~iid :
    frame -> int =
  match sink with
  | Snone -> ga
  | Shook h ->
    fun f ->
      let addr = ga f in
      h addr size write is_float iid;
      addr
  | Sring rg ->
    let m = Ring.meta ~size ~write ~is_float ~iid in
    (* [addrs]/[metas] are re-read through [rg] on every push — a sink
       is allowed to swap the buffers out (Drainer does), so hoisting
       them into the closure environment would write into a retired
       buffer after the first flush *)
    fun f ->
      let addr = ga f in
      if rg.Ring.len = rg.Ring.cap then Ring.flush rg;
      let i = rg.Ring.len in
      Array.unsafe_set rg.Ring.addrs i addr;
      Array.unsafe_set rg.Ring.metas i m;
      rg.Ring.len <- i + 1;
      addr

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* Superblock formation: a block that is the Tjmp target of its single
   predecessor is fused into that predecessor, so straight-line chains
   execute as one array sweep with one step-limit check and one bulk
   consultation per chain instead of per block. Fused interior blocks
   stay in the array but become unreachable: their only predecessor no
   longer branches to them, it falls through the concatenated body.
   Step accounting is chain-wise (the whole chain's steps are pre-added
   before the sweep), which extends the blockwise convention this
   backend already documents — totals and step-limit failures on any
   program are unchanged because a chain, once entered, always runs to
   its end. A pure-Tjmp cycle is not fused past one lap (the visited
   check below), so an infinite empty loop still re-enters the
   execution loop and hits the step limit. *)
let fuse_superblocks (func : Ir.func) (blocks : bcode array) =
  let n = Array.length blocks in
  if n > 1 then begin
    let preds = Array.make n 0 in
    let bump d = if d >= 0 && d < n then preds.(d) <- preds.(d) + 1 in
    (* the entry gets an implicit edge so it is never fused away *)
    bump (Prep.entry_block func);
    List.iter
      (fun (b : Ir.block) ->
        match b.Ir.btermin with
        | Ir.Tjmp d -> bump d
        | Ir.Tbr (_, x, y) ->
          bump x;
          bump y
        | Ir.Tret _ -> ())
      func.fblocks;
    let jmp_tgt = Array.make n (-1) in
    List.iter
      (fun (b : Ir.block) ->
        match b.Ir.btermin with
        | Ir.Tjmp d when d >= 0 && d < n && b.bid >= 0 && b.bid < n ->
          jmp_tgt.(b.bid) <- d
        | _ -> ())
      func.fblocks;
    (* a fusable tail is the unique-jump target of its single predecessor *)
    let tail = Array.make n false in
    Array.iter
      (fun d -> if d >= 0 && preds.(d) = 1 then tail.(d) <- true)
      jmp_tgt;
    for h = 0 to n - 1 do
      if not tail.(h) then begin
        let rec chain acc cur =
          let d = jmp_tgt.(cur) in
          if d >= 0 && tail.(d) && not (List.mem d (cur :: acc)) then
            chain (cur :: acc) d
          else List.rev (cur :: acc)
        in
        match chain [] h with
        | [] | [ _ ] -> ()
        | seq ->
          (* tails are never heads, so the constituents read here are
             always the original per-block compilations *)
          let bcs = List.map (fun bid -> blocks.(bid)) seq in
          let last = List.nth bcs (List.length bcs - 1) in
          let events =
            List.fold_left
              (fun a bc ->
                if a < 0 || bc.bc_events < 0 then -1 else a + bc.bc_events)
              0 bcs
          in
          blocks.(h) <-
            {
              bc_steps = List.fold_left (fun a bc -> a + bc.bc_steps) 0 bcs;
              bc_body = Array.concat (List.map (fun bc -> bc.bc_body) bcs);
              bc_term = last.bc_term;
              bc_ret = last.bc_ret;
              bc_events = events;
              bc_fast =
                (if events > 0 then
                   Array.concat (List.map (fun bc -> bc.bc_fast) bcs)
                 else [||]);
            }
      end
    done
  end

(* per-function facts shared between the two compile passes *)
type pre = {
  p_func : Ir.func;
  p_fc : fcode;
  p_fl : bool array;
  mutable p_locals : (string, int * Irty.t) Hashtbl.t;
}

(* pass 1: everything derivable from the signature and frame layout *)
let compile_signature t layout (p : pre) =
  let func = p.p_func and fc = p.p_fc in
  let mem = t.mem in
  fc.fc_entry <- Prep.entry_block func;
  (* register-bank specialization: every accessor is bank-resolved at
     compile time ([fl]), so each bank's array only needs to cover the
     registers actually assigned to it — not [next_reg] slots in both *)
  let ni = ref 0 and nf = ref 0 in
  Array.iteri
    (fun r isf -> if isf then nf := r + 1 else ni := r + 1)
    p.p_fl;
  fc.fc_ni <- !ni;
  fc.fc_nf <- !nf;
  let locals, frame_size = Prep.locals_layout layout func in
  p.p_locals <- locals;
  fc.fc_frame_size <- frame_size;
  fc.fc_entry_hook <-
    (match t.edge_hook with
    | Some h ->
      let name = fc.fc_name and entry = fc.fc_entry in
      fun () -> h name (-1) entry
    | None -> fun () -> ());
  (* the generic binder: one pre-resolved slot writer per parameter *)
  let fname = fc.fc_name in
  let slot_writers =
    Array.of_list
      (List.map
         (fun (pname, pty) ->
           match Hashtbl.find_opt p.p_locals pname with
           | None ->
             fun (_ : argval) (_ : int) ->
               error "no stack slot for parameter '%s' of function '%s'" pname
                 fname
           | Some (off, _) -> (
             match pty with
             | Irty.Float ->
               fun a fb ->
                 Memory.store_f32 mem ~addr:(fb + off)
                   (match a with AFloat v -> v | AInt v -> float_of_int v)
             | Irty.Double ->
               fun a fb ->
                 Memory.store_f64 mem ~addr:(fb + off)
                   (match a with AFloat v -> v | AInt v -> float_of_int v)
             | _ ->
               let size = min 8 (max 1 (Layout.sizeof layout pty)) in
               fun a fb ->
                 Memory.store_int mem ~addr:(fb + off) ~size
                   (match a with AInt v -> v | AFloat v -> int_of_float v)))
         func.fparams)
  in
  fc.fc_bind <-
    (fun args fb ->
      let n = Array.length slot_writers in
      let rec go k args =
        if k < n then
          match args with
          | [] -> error "too few arguments to '%s'" fname
          | a :: rest ->
            (Array.unsafe_get slot_writers k) a fb;
            go (k + 1) rest
      in
      go 0 args)

(* pass 2: block bodies *)
let compile_body t (prog : Ir.program) layout globals_addr strings func_addr
    pre_of (p : pre) =
  let func = p.p_func and fc = p.p_fc in
  let fl = p.p_fl and clocals = p.p_locals in
  let mem = t.mem in
  (* operand accessors, bank-resolved at compile time *)
  let geti (o : Ir.operand) : frame -> int =
    match o with
    | Ir.Oreg r ->
      if fl.(r) then fun f -> int_of_float (Array.unsafe_get f.fr r)
      else fun f -> Array.unsafe_get f.ir r
    | Ir.Oimm n ->
      let v = Int64.to_int n in
      fun _ -> v
    | Ir.Ofimm x ->
      let v = int_of_float x in
      fun _ -> v
  in
  let getf (o : Ir.operand) : frame -> float =
    match o with
    | Ir.Oreg r ->
      if fl.(r) then fun f -> Array.unsafe_get f.fr r
      else fun f -> float_of_int (Array.unsafe_get f.ir r)
    | Ir.Oimm n ->
      let v = Int64.to_float n in
      fun _ -> v
    | Ir.Ofimm x -> fun _ -> x
  in
  let getarg (o : Ir.operand) : frame -> argval =
    match o with
    | Ir.Oreg r ->
      if fl.(r) then fun f -> AFloat (Array.unsafe_get f.fr r)
      else fun f -> AInt (Array.unsafe_get f.ir r)
    | Ir.Oimm n ->
      let v = AInt (Int64.to_int n) in
      fun _ -> v
    | Ir.Ofimm x ->
      let v = AFloat x in
      fun _ -> v
  in
  let seti r : frame -> int -> unit =
    if fl.(r) then fun f v -> Array.unsafe_set f.fr r (float_of_int v)
    else fun f v -> Array.unsafe_set f.ir r v
  in
  let setf r : frame -> float -> unit =
    if fl.(r) then fun f v -> Array.unsafe_set f.fr r v
    else fun f v -> Array.unsafe_set f.ir r (int_of_float v)
  in
  (* result write-back for calls *)
  let assign_of dst : frame -> retval -> unit =
    match dst with
    | None -> fun _ _ -> ()
    | Some r ->
      let sti = seti r and stf = setf r in
      fun f res ->
        (match res with
        | RInt v -> sti f v
        | RFloat v -> stf f v
        | RVoid -> sti f 0)
  in
  (* a direct call with compile-time-known callee: per-call-site binder
     closures write arguments straight into the callee frame *)
  let compile_direct_call dst (callee_p : pre) (args : Ir.operand list) :
      frame -> unit =
    let callee = callee_p.p_fc in
    let assign = assign_of dst in
    let params = callee_p.p_func.fparams in
    if List.length args < List.length params then
      (* the walker only reports missing arguments once the frame fits *)
      fun _ ->
        if t.sp - callee.fc_frame_size < Memory.stack_limit then
          error "stack overflow in '%s'" callee.fc_name;
        error "too few arguments to '%s'" callee.fc_name
    else begin
      let rec take params args =
        match (params, args) with
        | [], _ -> []
        | (pname, pty) :: ps, a :: rest ->
          let binder =
            match Hashtbl.find_opt callee_p.p_locals pname with
            | None ->
              let cname = callee.fc_name in
              fun (_ : frame) (_ : int) ->
                error "no stack slot for parameter '%s' of function '%s'" pname
                  cname
            | Some (off, _) -> (
              match pty with
              | Irty.Float ->
                let g = getf a in
                fun f fb -> Memory.store_f32 mem ~addr:(fb + off) (g f)
              | Irty.Double ->
                let g = getf a in
                fun f fb -> Memory.store_f64 mem ~addr:(fb + off) (g f)
              | _ ->
                let size = min 8 (max 1 (Layout.sizeof layout pty)) in
                let g = geti a in
                fun f fb -> Memory.store_int mem ~addr:(fb + off) ~size (g f))
          in
          binder :: take ps rest
        | _ :: _, [] -> assert false (* length-checked above *)
      in
      let binders = Array.of_list (take params args) in
      fun f ->
        let frame_base = t.sp - callee.fc_frame_size in
        if frame_base < Memory.stack_limit then
          error "stack overflow in '%s'" callee.fc_name;
        let saved_sp = t.sp in
        t.sp <- frame_base;
        for k = 0 to Array.length binders - 1 do
          (Array.unsafe_get binders k) f frame_base
        done;
        callee.fc_entry_hook ();
        let nf =
          { fb = frame_base; ir = Array.make callee.fc_ni 0;
            fr = Array.make callee.fc_nf 0.0 }
        in
        let res = exec_fcode t callee nf in
        t.sp <- saved_sp;
        assign f res
    end
  in
  (* loads and stores are compiled against an arbitrary address accessor
     [ga] so the superblock peephole below can substitute a fused
     producer (fieldaddr/ptradd/addr-of computing the address, writing
     its register and handing the value straight over) for the plain
     register read — one closure dispatch instead of two *)
  let compile_load ~sink ~(ga : frame -> int) ~iid r ty acc : frame -> unit =
    match
      match acc with
      | Some ac -> Prep.bitfield_info prog layout ac
      | None -> None
    with
    | Some (unit_size, bit_off, width) ->
      let mask = (1 lsl width) - 1 in
      let st = seti r in
      let ga =
        with_event ~sink ~ga ~size:unit_size ~write:false ~is_float:false ~iid
      in
      fun f ->
        st f
          (Memory.load_int mem ~addr:(ga f) ~size:unit_size
           asr bit_off land mask)
    | None -> (
      match ty with
      | Irty.Float ->
        let st = setf r in
        let ga = with_event ~sink ~ga ~size:4 ~write:false ~is_float:true ~iid in
        fun f -> st f (Memory.load_f32 mem ~addr:(ga f))
      | Irty.Double ->
        let st = setf r in
        let ga = with_event ~sink ~ga ~size:8 ~write:false ~is_float:true ~iid in
        fun f -> st f (Memory.load_f64 mem ~addr:(ga f))
      | _ ->
        let size = max 1 (min 8 (Layout.sizeof layout ty)) in
        let st = seti r in
        let ga =
          with_event ~sink ~ga ~size ~write:false ~is_float:false ~iid
        in
        fun f -> st f (Memory.load_int mem ~addr:(ga f) ~size))
  in
  let compile_store ~sink ~(ga : frame -> int) ~iid v ty acc : frame -> unit =
    match
      match acc with
      | Some ac -> Prep.bitfield_info prog layout ac
      | None -> None
    with
    | Some (unit_size, bit_off, width) ->
      let gv = geti v in
      let mask = ((1 lsl width) - 1) lsl bit_off in
      let ga =
        with_event ~sink ~ga ~size:unit_size ~write:true ~is_float:false ~iid
      in
      fun f ->
        let addr = ga f in
        let old = Memory.load_int mem ~addr ~size:unit_size in
        let nv = (old land lnot mask) lor ((gv f lsl bit_off) land mask) in
        Memory.store_int mem ~addr ~size:unit_size nv
    | None -> (
      match ty with
      | Irty.Float ->
        let gv = getf v in
        let ga = with_event ~sink ~ga ~size:4 ~write:true ~is_float:true ~iid in
        fun f ->
          let addr = ga f in
          Memory.store_f32 mem ~addr (gv f)
      | Irty.Double ->
        let gv = getf v in
        let ga = with_event ~sink ~ga ~size:8 ~write:true ~is_float:true ~iid in
        fun f ->
          let addr = ga f in
          Memory.store_f64 mem ~addr (gv f)
      | _ ->
        let size = max 1 (min 8 (Layout.sizeof layout ty)) in
        let gv = geti v in
        let ga =
          with_event ~sink ~ga ~size ~write:true ~is_float:false ~iid
        in
        fun f ->
          let addr = ga f in
          Memory.store_int mem ~addr ~size (gv f))
  in
  (* [sink] rather than [t.sink]: blocks whose access count is
     statically known are compiled twice, once with the event sink and
     once without, so the sampler's fast-forward can run the plain body *)
  let compile_instr ~sink (i : Ir.instr) : frame -> unit =
    let iid = i.iid in
    match i.idesc with
    | Ir.Imov (r, o) ->
      if fl.(r) then
        let g = getf o in
        fun f -> Array.unsafe_set f.fr r (g f)
      else
        let g = geti o in
        fun f -> Array.unsafe_set f.ir r (g f)
    | Ir.Ibin (r, op, ty, a, b) ->
      if Irty.is_float_ty ty then begin
        let x = getf a and y = getf b in
        let stf () = setf r and sti () = seti r in
        match op with
        | Ir.Add -> let st = stf () in fun f -> st f (x f +. y f)
        | Ir.Sub -> let st = stf () in fun f -> st f (x f -. y f)
        | Ir.Mul -> let st = stf () in fun f -> st f (x f *. y f)
        | Ir.Div -> let st = stf () in fun f -> st f (x f /. y f)
        | Ir.Lt -> let st = sti () in fun f -> st f (if x f < y f then 1 else 0)
        | Ir.Le -> let st = sti () in fun f -> st f (if x f <= y f then 1 else 0)
        | Ir.Gt -> let st = sti () in fun f -> st f (if x f > y f then 1 else 0)
        | Ir.Ge -> let st = sti () in fun f -> st f (if x f >= y f then 1 else 0)
        | Ir.Eq -> let st = sti () in fun f -> st f (if x f = y f then 1 else 0)
        | Ir.Ne -> let st = sti () in fun f -> st f (if x f <> y f then 1 else 0)
        | Ir.Mod | Ir.Band | Ir.Bor | Ir.Bxor | Ir.Shl | Ir.Shr ->
          fun _ -> error "float operand to integer-only operator"
      end
      else begin
        let x = geti a and y = geti b in
        let st = seti r in
        match op with
        | Ir.Add -> fun f -> st f (x f + y f)
        | Ir.Sub -> fun f -> st f (x f - y f)
        | Ir.Mul -> fun f -> st f (x f * y f)
        | Ir.Div ->
          fun f ->
            let d = y f in
            if d = 0 then error "integer division by zero";
            st f (x f / d)
        | Ir.Mod ->
          fun f ->
            let d = y f in
            if d = 0 then error "integer modulo by zero";
            st f (x f mod d)
        | Ir.Band -> fun f -> st f (x f land y f)
        | Ir.Bor -> fun f -> st f (x f lor y f)
        | Ir.Bxor -> fun f -> st f (x f lxor y f)
        | Ir.Shl -> fun f -> st f (x f lsl (y f land 63))
        | Ir.Shr -> fun f -> st f (x f asr (y f land 63))
        | Ir.Lt -> fun f -> st f (if x f < y f then 1 else 0)
        | Ir.Le -> fun f -> st f (if x f <= y f then 1 else 0)
        | Ir.Gt -> fun f -> st f (if x f > y f then 1 else 0)
        | Ir.Ge -> fun f -> st f (if x f >= y f then 1 else 0)
        | Ir.Eq -> fun f -> st f (if x f = y f then 1 else 0)
        | Ir.Ne -> fun f -> st f (if x f <> y f then 1 else 0)
      end
    | Ir.Iun (r, op, ty, a) -> (
      match op with
      | Ir.Neg ->
        if Irty.is_float_ty ty then
          let g = getf a and st = setf r in
          fun f -> st f (-.g f)
        else
          let g = geti a and st = seti r in
          fun f -> st f (-g f)
      | Ir.Lnot ->
        let st = seti r in
        if Irty.is_float_ty ty then
          let g = getf a in
          fun f -> st f (if g f = 0.0 then 1 else 0)
        else
          let g = geti a in
          fun f -> st f (if g f = 0 then 1 else 0)
      | Ir.Bnot ->
        let g = geti a and st = seti r in
        fun f -> st f (lnot (g f)))
    | Ir.Icast (r, from_, to_, a, _) -> (
      match (Irty.is_float_ty from_, Irty.is_float_ty to_) with
      | true, true -> (
        let g = getf a and st = setf r in
        match to_ with
        | Irty.Float ->
          fun f -> st f (Int32.float_of_bits (Int32.bits_of_float (g f)))
        | _ -> fun f -> st f (g f))
      | true, false ->
        let g = getf a and st = seti r in
        fun f -> st f (int_of_float (g f))
      | false, true ->
        let g = geti a and st = setf r in
        fun f -> st f (float_of_int (g f))
      | false, false -> (
        let g = geti a and st = seti r in
        match to_ with
        | Irty.Char -> fun f -> st f (truncate_int 1 (g f))
        | Irty.Short -> fun f -> st f (truncate_int 2 (g f))
        | Irty.Int -> fun f -> st f (truncate_int 4 (g f))
        | _ -> fun f -> st f (g f)))
    | Ir.Iload (r, a, ty, acc) -> compile_load ~sink ~ga:(geti a) ~iid r ty acc
    | Ir.Istore (a, v, ty, acc) ->
      compile_store ~sink ~ga:(geti a) ~iid v ty acc
    | Ir.Iaddrglob (r, g) -> (
      match Hashtbl.find_opt globals_addr g with
      | Some (addr, _) ->
        let st = seti r in
        fun f -> st f addr
      | None -> fun _ -> error "unknown global '%s'" g)
    | Ir.Iaddrlocal (r, l) -> (
      match Hashtbl.find_opt clocals l with
      | Some (off, _) ->
        let st = seti r in
        fun f -> st f (f.fb + off)
      | None ->
        let fname = func.fname in
        fun _ -> error "unknown local '%s' in '%s'" l fname)
    | Ir.Iaddrstr (r, s) -> (
      match Hashtbl.find_opt strings s with
      | Some addr ->
        let st = seti r in
        fun f -> st f addr
      | None -> fun _ -> raise Not_found (* interned from this program *))
    | Ir.Iaddrfunc (r, fn) -> (
      match Hashtbl.find_opt func_addr fn with
      | Some a ->
        let st = seti r in
        fun f -> st f a
      | None -> fun _ -> error "address of undefined function '%s'" fn)
    | Ir.Ifieldaddr (r, b, s, fi) ->
      let gb = geti b in
      let off = (Layout.field_layout layout s fi).Layout.byte_off in
      let st = seti r in
      fun f -> st f (gb f + off)
    | Ir.Iptradd (r, b, idx, ty) ->
      let gb = geti b and gi = geti idx in
      let sz = Layout.sizeof layout ty in
      let st = seti r in
      fun f -> st f (gb f + (gi f * sz))
    | Ir.Icall (dst, callee, args) -> (
      match callee with
      | Ir.Cdirect n -> (
        match Hashtbl.find_opt pre_of n with
        | Some callee_p -> compile_direct_call dst callee_p args
        | None -> fun _ -> error "call to undefined function '%s'" n)
      | Ir.Cbuiltin n ->
        let getters = Array.of_list (List.map getarg args) in
        let assign = assign_of dst in
        let benv = t.benv in
        fun f ->
          let vals = Array.to_list (Array.map (fun g -> g f) getters) in
          assign f (Builtins.exec benv n vals)
      | Ir.Cextern _ ->
        (* library functions outside the compilation scope are stubs: the
           legality analysis (LIBC) is about what the compiler may assume,
           not whether the program runs *)
        let assign = assign_of dst in
        fun f -> assign f (RInt 0)
      | Ir.Cindirect o ->
        let go = geti o in
        let getters = Array.of_list (List.map getarg args) in
        let assign = assign_of dst in
        let dispatch = t.dispatch in
        let nfuncs = Array.length dispatch in
        fun f ->
          let vals = Array.to_list (Array.map (fun g -> g f) getters) in
          let a = go f in
          let idx = a - func_addr_base in
          if idx < 0 || idx >= nfuncs then
            error "indirect call through bad pointer 0x%x" a;
          assign f (call_generic t (Array.unsafe_get dispatch idx) vals))
    | Ir.Ialloc (r, kind, count, elem) -> (
      let gc = geti count in
      let elem_size = max 1 (Layout.sizeof layout elem) in
      let st = seti r in
      match kind with
      | Ir.Amalloc ->
        fun f -> st f (Memory.alloc_heap mem ~size:(gc f * elem_size) ~zero:false)
      | Ir.Acalloc ->
        fun f -> st f (Memory.alloc_heap mem ~size:(gc f * elem_size) ~zero:true)
      | Ir.Arealloc old_op ->
        let go = geti old_op in
        fun f ->
          let bytes = gc f * elem_size in
          let old = go f in
          let na = Memory.alloc_heap mem ~size:bytes ~zero:false in
          (if old <> 0 then
             match Memory.alloc_size mem old with
             | Some osz -> Memory.blit mem ~dst:na ~src:old ~len:(min osz bytes)
             | None -> error "realloc of invalid pointer 0x%x" old);
          st f na)
    | Ir.Ifree o ->
      let g = geti o in
      fun f -> Memory.free_heap mem (g f)
    | Ir.Imemset (d, v, n, _) -> (
      let gd = geti d and gv = geti v and gn = geti n in
      match sink with
      | Shook h ->
        fun f ->
          let dst = gd f and byte = gv f and len = gn f in
          touch_range h dst len true iid;
          Memory.fill mem ~dst ~byte ~len
      | Sring rg ->
        fun f ->
          let dst = gd f and byte = gv f and len = gn f in
          touch_range_ring rg dst len true iid;
          Memory.fill mem ~dst ~byte ~len
      | Snone -> fun f -> Memory.fill mem ~dst:(gd f) ~byte:(gv f) ~len:(gn f))
    | Ir.Imemcpy (d, s, n, _) -> (
      let gd = geti d and gs = geti s and gn = geti n in
      match sink with
      | Shook h ->
        fun f ->
          let dst = gd f and src = gs f and len = gn f in
          touch_range h src len false iid;
          touch_range h dst len true iid;
          Memory.blit mem ~dst ~src ~len
      | Sring rg ->
        fun f ->
          let dst = gd f and src = gs f and len = gn f in
          touch_range_ring rg src len false iid;
          touch_range_ring rg dst len true iid;
          Memory.blit mem ~dst ~src ~len
      | Snone -> fun f -> Memory.blit mem ~dst:(gd f) ~src:(gs f) ~len:(gn f))
  in
  let never_ret : frame -> retval = fun _ -> RVoid in
  let compile_term (b : Ir.block) : (frame -> int) * (frame -> retval) =
    match b.btermin with
    | Ir.Tret None -> ((fun _ -> -1), fun _ -> RVoid)
    | Ir.Tret (Some o) ->
      let retc =
        if Irty.is_float_ty func.fret then
          let g = getf o in
          fun f -> RFloat (g f)
        else
          let g = geti o in
          fun f -> RInt (g f)
      in
      ((fun _ -> -1), retc)
    | Ir.Tjmp dst -> (
      match t.edge_hook with
      | Some h ->
        let name = func.fname and src = b.bid in
        ((fun _ -> h name src dst; dst), never_ret)
      | None -> ((fun _ -> dst), never_ret))
    | Ir.Tbr (c, x, y) -> (
      let g = geti c in
      match t.edge_hook with
      | Some h ->
        let name = func.fname and src = b.bid in
        ( (fun f ->
            let dst = if g f <> 0 then x else y in
            h name src dst;
            dst),
          never_ret )
      | None -> ((fun f -> if g f <> 0 then x else y), never_ret))
  in
  (* static mem-hook events of a block body, or -1 when the count is
     dynamic: calls may nest events and memset/memcpy lengths are
     runtime values *)
  let count_events (b : Ir.block) =
    List.fold_left
      (fun acc (i : Ir.instr) ->
        if acc < 0 then acc
        else
          match i.idesc with
          | Ir.Iload _ | Ir.Istore _ -> acc + 1
          | Ir.Icall _ | Ir.Imemset _ | Ir.Imemcpy _ -> -1
          | _ -> acc)
      0 b.instrs
  in
  (* superblock peephole, part 1: an address producer is an instruction
     that computes an address into an (integer-bank) register; the fused
     accessor performs the computation, writes the register — it may be
     live past the consumer — and returns the address without a
     round-trip through the register file *)
  let addr_producer (i : Ir.instr) : (int * (frame -> int)) option =
    match i.idesc with
    | Ir.Ifieldaddr (r, b, s, fi) when not fl.(r) ->
      let gb = geti b in
      let off = (Layout.field_layout layout s fi).Layout.byte_off in
      Some
        ( r,
          fun f ->
            let a = gb f + off in
            Array.unsafe_set f.ir r a;
            a )
    | Ir.Iptradd (r, b, idx, ty) when not fl.(r) ->
      let gb = geti b and gi = geti idx in
      let sz = Layout.sizeof layout ty in
      Some
        ( r,
          fun f ->
            let a = gb f + (gi f * sz) in
            Array.unsafe_set f.ir r a;
            a )
    | Ir.Iaddrglob (r, g) when not fl.(r) -> (
      match Hashtbl.find_opt globals_addr g with
      | Some (addr, _) ->
        Some
          ( r,
            fun f ->
              Array.unsafe_set f.ir r addr;
              addr )
      | None -> None)
    | Ir.Iaddrlocal (r, l) when not fl.(r) -> (
      match Hashtbl.find_opt clocals l with
      | Some (off, _) ->
        Some
          ( r,
            fun f ->
              let a = f.fb + off in
              Array.unsafe_set f.ir r a;
              a )
      | None -> None)
    | _ -> None
  in
  (* ... and a consumer is a load or store addressing through exactly
     that register. Fusing never changes observable state: the producer
     still writes its register first, the consumer's hook event, memory
     access and result write are byte-identical, and steps are counted
     from the IR ([bc_steps] below), not from the body array length. *)
  let fuse_pair ~sink (i : Ir.instr) (j : Ir.instr) : (frame -> unit) option =
    match
      match addr_producer i with
      | None -> None
      | Some (r, ga) -> (
        match j.idesc with
        | Ir.Iload (r2, Ir.Oreg a, ty, acc) when a = r ->
          Some (compile_load ~sink ~ga ~iid:j.iid r2 ty acc)
        | Ir.Istore (Ir.Oreg a, v, ty, acc) when a = r ->
          Some (compile_store ~sink ~ga ~iid:j.iid v ty acc)
        | _ -> None)
    with
    | fused -> fused
    (* a compile-time failure in either half falls back to separate
       compilation, which defers the failure to the right instruction *)
    | exception _ -> None
  in
  let compile_instrs ~sink instrs =
    let emit i =
      (* name-resolution and layout failures compile to raising
         closures so they surface only if the instruction runs,
         matching the tree-walker's lazy failure points *)
      match compile_instr ~sink i with
      | code -> code
      | exception e -> fun _ -> raise e
    in
    if not t.sb then Array.of_list (List.map emit instrs)
    else
      let rec go acc = function
        | [] -> List.rev acc
        | i :: (j :: rest as tl) -> (
          match fuse_pair ~sink i j with
          | Some code -> go (code :: acc) rest
          | None -> go (emit i :: acc) tl)
        | [ i ] -> List.rev (emit i :: acc)
      in
      Array.of_list (go [] instrs)
  in
  (* an unreferenced block id executes as an empty body + [Tret None],
     exactly like the tree-walker's defaults *)
  let empty =
    { bc_steps = 1; bc_body = [||]; bc_term = (fun _ -> -1);
      bc_ret = (fun _ -> RVoid); bc_events = -1; bc_fast = [||] }
  in
  (* superblock peephole, part 2: fold the last body thunk into the
     terminator closure — one fewer dispatch per executed block. Only
     for blocks with a single compiled body: a dual-body block
     (bc_events > 0) runs either body, so its terminator cannot absorb
     a thunk belonging to one of them. *)
  let fold_tail bc =
    let n = Array.length bc.bc_body in
    if n = 0 || bc.bc_events > 0 then bc
    else begin
      let last = bc.bc_body.(n - 1) in
      let body = Array.sub bc.bc_body 0 (n - 1) in
      let term = bc.bc_term in
      {
        bc with
        bc_body = body;
        bc_fast = body;
        bc_term =
          (fun f ->
            last f;
            term f);
      }
    end
  in
  (* dual bodies only pay off when there is both a hook to skip and a
     bulk consumer to skip it through *)
  let dual = t.bulk_on in
  let blocks = Array.make func.next_block empty in
  List.iter
    (fun (b : Ir.block) ->
      let body = compile_instrs ~sink:t.sink b.instrs in
      let term, ret =
        match compile_term b with
        | r -> r
        | exception e -> ((fun _ -> raise e), never_ret)
      in
      let events = if dual then count_events b else -1 in
      let fast =
        if events > 0 then compile_instrs ~sink:Snone b.instrs else body
      in
      (* steps are counted from the IR, not the body array: the peephole
         shortens the array without changing the executed step total *)
      blocks.(b.bid) <-
        { bc_steps = List.length b.instrs + 1; bc_body = body; bc_term = term;
          bc_ret = ret; bc_events = events; bc_fast = fast })
    func.fblocks;
  if t.sb && Option.is_none t.edge_hook then fuse_superblocks func blocks;
  if t.sb then
    Array.iteri (fun k bc -> blocks.(k) <- fold_tail bc) blocks;
  fc.fc_blocks <- blocks

(* ------------------------------------------------------------------ *)
(* Setup and entry points                                              *)
(* ------------------------------------------------------------------ *)

let create ?mem_hook ?edge_hook ?bulk_hook ?ring ?(superblock = false)
    ?(max_steps = Rt.default_max_steps) (prog : Ir.program) : t =
  let sink =
    match (mem_hook, ring) with
    | Some _, Some _ ->
      invalid_arg "Compile.create: mem_hook and ring are mutually exclusive"
    | Some h, None -> Shook h
    | None, Some r -> Sring r
    | None, None -> Snone
  in
  let layout = Layout.create prog.structs in
  let mem = Memory.create () in
  (* identical image to the tree-walker: globals first, strings second *)
  let globals_addr = Prep.alloc_globals layout mem prog in
  let strings = Prep.intern_strings mem prog in
  let fcodes =
    Array.of_list
      (List.map
         (fun (f : Ir.func) ->
           {
             fc_name = f.fname; fc_entry = 0; fc_ni = 0; fc_nf = 0;
             fc_frame_size = 0; fc_blocks = [||]; fc_bind = (fun _ _ -> ());
             fc_entry_hook = (fun () -> ());
           })
         prog.funcs)
  in
  let fcode_tbl = Hashtbl.create 16 in
  Array.iter (fun fc -> Hashtbl.replace fcode_tbl fc.fc_name fc) fcodes;
  let dispatch = Array.map (fun fc -> Hashtbl.find fcode_tbl fc.fc_name) fcodes in
  let func_addr = Hashtbl.create 16 in
  Array.iteri
    (fun i fc -> Hashtbl.replace func_addr fc.fc_name (func_addr_base + i))
    fcodes;
  let benv = Builtins.create_env mem in
  let t =
    {
      mem; dispatch; fcode_tbl; benv; out = benv.Builtins.out;
      sp = Memory.stack_top; steps = 0; max_steps; sink; edge_hook;
      bulk = (match bulk_hook with Some b -> b | None -> fun _ -> false);
      bulk_on =
        (Option.is_some bulk_hook
        && match sink with Shook _ | Sring _ -> true | Snone -> false);
      sb = superblock;
    }
  in
  let pres =
    List.mapi
      (fun i f ->
        {
          p_func = f; p_fc = fcodes.(i); p_fl = Prep.float_banks prog f;
          p_locals = Hashtbl.create 16;
        })
      prog.funcs
  in
  let pre_of = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace pre_of p.p_func.Ir.fname p) pres;
  List.iter (fun p -> compile_signature t layout p) pres;
  List.iter
    (fun p -> compile_body t prog layout globals_addr strings func_addr pre_of p)
    pres;
  t

let run ?(args = []) (t : t) : Rt.result =
  Buffer.clear t.out;
  t.steps <- 0;
  t.sp <- Memory.stack_top;
  (* drop events a previous aborted run may have left buffered *)
  (match t.sink with Sring r -> r.Ring.len <- 0 | Shook _ | Snone -> ());
  if not (Hashtbl.mem t.fcode_tbl "main") then error "program has no 'main'";
  let res =
    (* flush the tail of the ring even when the program errors out:
       consumers see every event that happened before the failure *)
    Fun.protect
      ~finally:(fun () ->
        match t.sink with Sring r -> Ring.flush r | Shook _ | Snone -> ())
      (fun () ->
        try
          call_generic t
            (Hashtbl.find t.fcode_tbl "main")
            (List.map (fun v -> AInt v) args)
        with Memory.Fault msg -> error "memory fault: %s" msg)
  in
  { exit_code = Rt.exit_code_of_retval res;
    output = Buffer.contents t.out;
    steps = t.steps }

let run_program ?args prog = run ?args (create prog)
