(* The execution-backend selector.

   [Walk] is the tree-walking reference interpreter ({!Interp});
   [Closure] is the closure-compiled engine ({!Compile}); [Superblock]
   is the same engine with straight-line jump chains fused into
   superblocks. All three are observationally identical — same output
   bytes, step counts, hook event streams and error messages — which
   the differential tests enforce, so [Closure] is the default
   everywhere speed matters, [Superblock] is the measure-phase racer,
   and [Walk] remains the semantic baseline the fast paths are checked
   against. *)

exception Runtime_error = Rt.Runtime_error

type result = Rt.result = { exit_code : int; output : string; steps : int }

type t = Walk | Closure | Superblock

let default = Closure
let all = [ Walk; Closure; Superblock ]

let to_string = function
  | Walk -> "walk"
  | Closure -> "closure"
  | Superblock -> "superblock"

let of_string = function
  | "walk" -> Some Walk
  | "closure" -> Some Closure
  | "superblock" -> Some Superblock
  | _ -> None

(* the walker carries a flush thunk: its ring support is a synthesized
   per-access hook, and the tail of the ring must still be drained when
   the run ends *)
type vm = Vwalk of Interp.t * (unit -> unit) | Vclosure of Compile.t

let create ?mem_hook ?edge_hook ?bulk_hook ?ring ?max_steps backend prog =
  match backend with
  | Walk ->
    (* the walker has no bulk fast path; ignoring the hook is sound
       because a bulk advance is defined as equivalent to the same
       accesses fed one at a time. Ring support is a synthesized hook —
       the walker is the semantic reference, not a speed path, so the
       per-access push is fine *)
    let mem_hook, flush =
      match (mem_hook, ring) with
      | Some _, Some _ ->
        invalid_arg "Backend.create: mem_hook and ring are mutually exclusive"
      | None, Some rg ->
        let module Ring = Slo_cachesim.Ring in
        ( Some
            (fun addr size write is_float iid ->
              Ring.push rg addr (Ring.meta ~size ~write ~is_float ~iid)),
          fun () -> Ring.flush rg )
      | (Some _ | None), None -> (mem_hook, fun () -> ())
    in
    Vwalk (Interp.create ?mem_hook ?edge_hook ?max_steps prog, flush)
  | Closure ->
    Vclosure
      (Compile.create ?mem_hook ?edge_hook ?bulk_hook ?ring ?max_steps prog)
  | Superblock ->
    Vclosure
      (Compile.create ?mem_hook ?edge_hook ?bulk_hook ?ring ~superblock:true
         ?max_steps prog)

let run ?args = function
  | Vwalk (vm, flush) ->
    Fun.protect ~finally:flush (fun () -> Interp.run ?args vm)
  | Vclosure vm -> Compile.run ?args vm

let run_program ?mem_hook ?edge_hook ?bulk_hook ?ring ?max_steps ?args backend
    prog =
  run ?args (create ?mem_hook ?edge_hook ?bulk_hook ?ring ?max_steps backend prog)
