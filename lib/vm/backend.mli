(** Execution-backend selector: the tree-walking reference interpreter
    ({!Interp}) versus the closure-compiled engine ({!Compile}), plain
    or with superblock fusion.

    All backends are observationally identical — byte-identical output,
    identical step counts, identical hook event streams (and therefore
    identical cache-simulation counters) — a property pinned by the
    differential tests. [Closure] is the default; [Walk] is the
    semantic baseline; [Superblock] fuses unconditional-jump chains,
    address-producing instructions into the loads/stores consuming
    them, and block tails into terminators — the fastest engine. *)

exception Runtime_error of string

type result = Rt.result = {
  exit_code : int;
  output : string;
  steps : int;
}

type t = Walk | Closure | Superblock

val default : t
(** [Closure]. *)

val all : t list

val to_string : t -> string
(** ["walk"] / ["closure"] / ["superblock"] — the CLI spelling. *)

val of_string : string -> t option

type vm

val create :
  ?mem_hook:(int -> int -> bool -> bool -> int -> unit) ->
  ?edge_hook:(string -> int -> int -> unit) ->
  ?bulk_hook:(int -> bool) ->
  ?ring:Slo_cachesim.Ring.t ->
  ?max_steps:int ->
  t ->
  Ir.program ->
  vm
(** [ring] is the batched alternative to [mem_hook] (mutually
    exclusive, see {!Compile.create}): the closure engines inline the
    event push; the [Walk] reference synthesizes a per-access push
    hook. Either way {!run} flushes the tail, so the ring sink sees the
    complete, identical event stream on every backend.

    [bulk_hook] (see {!Compile.create}) lets a sampled-measurement
    consumer retire a whole block's accesses in O(1); the [Walk]
    backend ignores it (always per-access), which is sound because a
    successful bulk advance is defined as equivalent to feeding the
    same accesses one at a time. *)

val run : ?args:int list -> vm -> result

val run_program :
  ?mem_hook:(int -> int -> bool -> bool -> int -> unit) ->
  ?edge_hook:(string -> int -> int -> unit) ->
  ?bulk_hook:(int -> bool) ->
  ?ring:Slo_cachesim.Ring.t ->
  ?max_steps:int ->
  ?args:int list ->
  t ->
  Ir.program ->
  result
