(** Execution-backend selector: the tree-walking reference interpreter
    ({!Interp}) versus the closure-compiled engine ({!Compile}).

    The two backends are observationally identical — byte-identical
    output, identical step counts, identical hook event streams (and
    therefore identical cache-simulation counters) — a property pinned
    by the differential tests. [Closure] is the default; [Walk] is the
    semantic baseline. *)

exception Runtime_error of string

type result = Rt.result = {
  exit_code : int;
  output : string;
  steps : int;
}

type t = Walk | Closure

val default : t
(** [Closure]. *)

val all : t list

val to_string : t -> string
(** ["walk"] / ["closure"] — the CLI spelling. *)

val of_string : string -> t option

type vm

val create :
  ?mem_hook:(int -> int -> bool -> bool -> int -> unit) ->
  ?edge_hook:(string -> int -> int -> unit) ->
  ?max_steps:int ->
  t ->
  Ir.program ->
  vm

val run : ?args:int list -> vm -> result

val run_program :
  ?mem_hook:(int -> int -> bool -> bool -> int -> unit) ->
  ?edge_hook:(string -> int -> int -> unit) ->
  ?max_steps:int ->
  ?args:int list ->
  t ->
  Ir.program ->
  result
