(** Blocking client for the layout-advice daemon: one connection, any
    number of in-order request/reply round-trips. Used by [slopt
    client], the load generator and the protocol tests. *)

type t

exception Protocol_error of string
(** The server closed mid-reply or sent something {!Protocol} cannot
    decode. *)

val connect : ?retry_for_s:float -> socket:string -> unit -> t
(** Connect to the daemon's Unix socket. With [retry_for_s > 0]
    (default [0.0]) a missing socket or refused connection is retried
    every 20 ms until the budget is exhausted — the way to race a
    daemon that is still starting up. Raises [Unix.Unix_error] once the
    budget is spent. *)

val close : t -> unit

val rpc : t -> Protocol.request -> Protocol.reply
(** Send one request, block for its reply. Error replies come back as
    [R_error] values, not exceptions — the connection remains usable.
    Every transport failure (connection closed, reset, undecodable
    reply) raises {!Protocol_error}, never a bare [Sys_error]; a write
    against a connection the server has already refused-and-closed
    still reads the refusal reply the server sent first. *)
