(** Blocking client for the layout-advice daemon: one connection,
    either in-order request/reply round-trips ({!rpc}) or pipelined
    send/receive halves ({!send}/{!recv}). Used by [slopt client], the
    load generator and the protocol tests. *)

type t

exception Protocol_error of string
(** The server closed mid-reply or sent something {!Protocol} cannot
    decode. *)

val endpoint_of_string : string -> [ `Unix of string | `Tcp of string * int ]
(** ["host:port"] with a numeric port and no ['/'] is a TCP endpoint;
    anything else is a Unix-socket path. [":"] in a path is fine as
    long as the path is relative-or-absolute with a slash, or the
    suffix is not a number. *)

val connect :
  ?retry_for_s:float ->
  endpoint:[ `Unix of string | `Tcp of string * int ] ->
  unit ->
  t
(** Connect to the daemon. With [retry_for_s > 0] (default [0.0]) a
    missing socket or refused connection is retried every 20 ms (on the
    monotonic clock) until the budget is exhausted — the way to race a
    daemon that is still starting up. TCP connections set TCP_NODELAY.
    Raises [Unix.Unix_error] once the budget is spent. *)

val connect_socket : ?retry_for_s:float -> socket:string -> unit -> t
(** [connect ~endpoint:(`Unix socket)]. *)

val close : t -> unit

val rpc : t -> Protocol.request -> Protocol.reply
(** Send one request, block for its reply. Error replies come back as
    [R_error] values, not exceptions — the connection remains usable.
    Every transport failure (connection closed, reset, undecodable
    reply) raises {!Protocol_error}, never a bare [Sys_error]; a write
    against a connection the server has already refused-and-closed
    still reads the refusal reply the server sent first. Do not mix
    with in-flight {!send}s on the same connection. *)

(** {2 Pipelined halves}

    [send] and [recv] may run on different threads of one connection
    (one sender, one receiver). Replies arrive in {e server completion}
    order, so tag requests with [?id] and correlate on the echoed id. *)

val send : t -> ?id:int -> Protocol.request -> unit
(** Write one request frame. Raises {!Protocol_error} on a transport
    failure (unlike {!rpc}'s write half, there is no later read on this
    call to surface a refusal — the receiver thread will). *)

val send_raw : t -> string -> unit
(** Write one already-serialized payload as a frame — the load
    generator's hot path pre-serializes each distinct request once and
    splices ids with {!Protocol.inject_id}. *)

val send_raw_noflush : t -> string -> unit
(** Like {!send_raw} but leaves the frame in the output buffer; pair
    with {!flush_out}. A pipelining sender with several frames due in
    the same burst pays one write syscall for the batch. *)

val flush_out : t -> unit
(** Flush frames buffered by {!send_raw_noflush}. Raises
    {!Protocol_error} on a transport failure. *)

val recv : t -> int option * Protocol.reply
(** Block for the next reply frame; the echoed id and the decoded
    reply. Raises {!Protocol_error} on EOF or an undecodable reply. *)

val recv_raw : t -> string
(** Block for the next reply frame, undecoded — account it with
    {!Protocol.scan_reply_header}. Raises {!Protocol_error} on EOF. *)
