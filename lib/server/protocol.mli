(** Wire protocol of the layout-advice daemon.

    {2 Framing}

    A frame is the payload's byte length in ASCII decimal, a single
    ['\n'], then exactly that many payload bytes. The payload is one
    strict JSON document ({!Slo_util.Json.of_string} rejects trailing
    garbage, so a frame is exactly one parse). Both directions use the
    same framing.

    {2 Pipelining and request ids}

    A connection carries any number of requests. A client may send
    several without waiting (pipelining); the server bounds the
    per-connection in-flight window and {e replies may complete out of
    order} — a cached [advise] sent after a slow [bench] returns first.
    To correlate, a pipelining client tags each request with an integer
    ["id"] field; the server echoes it verbatim on the matching reply.
    Requests without an id get replies without one, and such replies
    are delivered in request order only when the client never has more
    than one request outstanding (the plain {!Client.rpc} discipline).
    The id is always emitted as the {e first} object field, so hot
    paths can splice ({!inject_id}) or strip ({!strip_id}) it without a
    JSON parse.

    {2 Requests}

    {[ {"kind":"advise","src":"struct s {...};...","scheme":"ispbo",
        "args":[3],"deadline_ms":250.0}
       {"kind":"bench","src":"...","scheme":"spbo","backend":"closure"}
       {"kind":"check","src":"...","relax":true}
       {"kind":"tune","src":"...","scheme":"ispbo","beam":4,
        "deadline_ms":500.0}
       {"kind":"stats"}
       {"kind":"shutdown"} ]}

    [src] carries Mini-C source inline — the daemon is content-addressed,
    there are no file paths in the protocol. [scheme] and [backend] are
    spelled like the CLI flags; the server validates them and answers
    [bad_request] for unknown spellings.

    {2 Replies}

    Success: [{"ok":true,"kind":...,...}]. Failure:
    [{"ok":false,"code":"timeout","message":"..."}] — the connection
    stays usable after an error reply (except [bad_frame], after which
    the stream offset is unreliable and the server closes). *)

type error_code =
  | Bad_request     (** malformed JSON, unknown kind/scheme/backend *)
  | Parse_error     (** Mini-C lexing or parsing failed *)
  | Type_error      (** Mini-C type checking failed *)
  | Legality_error  (** lowering unsupported, or the IR verifier failed *)
  | Worker_crash    (** the pool job died; message carries the exception *)
  | Timeout         (** the request's [deadline_ms] expired *)
  | Overloaded      (** connection limit reached; server closes after *)
  | Shutting_down   (** daemon is draining; no new work accepted *)

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option

type request =
  | Advise of {
      src : string;
      scheme : string option;       (** default ["ispbo"] *)
      args : int list;              (** profile-collection args for PBO *)
      pool : bool;                  (** plan index-linked pools for
                                        shape-proven recursive types
                                        (default false; the field is
                                        omitted from the wire frame when
                                        unset, so old peers interoperate) *)
      deadline_ms : float option;
    }
  | Bench of {
      src : string;
      scheme : string option;
      backend : string option;      (** default the VM default *)
      args : int list;
      deadline_ms : float option;
    }
  | Check of {
      src : string;
      relax : bool;                 (** tolerate CSTT/CSTF/ATKN (default false) *)
      deadline_ms : float option;
    }
  | Tune of {
      src : string;
      scheme : string option;
      backend : string option;
      args : int list;
      beam : int option;            (** permutation beam, default the tuner's *)
      deadline_ms : float option;
          (** anytime {e search budget}, not a transport deadline: on
              expiry the reply carries the best plan found so far
              ([complete=false]) — never a [timeout] error *)
    }
  | Stats
  | Shutdown

type latency = {
  l_count : int;
  l_p50_ms : float;
  l_p95_ms : float;
  l_p99_ms : float;
  l_max_ms : float;
}

type stats_reply = {
  s_uptime_s : float;
  s_requests : (string * int) list;  (** request kind -> served count *)
  s_errors : (string * int) list;    (** error code -> reply count *)
  s_result_hits : int;               (** (digest, scheme, backend) cache *)
  s_result_misses : int;
  s_ir_hits : int;                   (** digest -> compiled IR cache *)
  s_ir_misses : int;
  s_disk_hits : int;                 (** persistent-cache loads *)
  s_disk_misses : int;               (** result misses the disk lacked too *)
  s_cache_entries : int;
  s_cache_bytes : int;
  s_cache_evictions : int;
  s_inflight : int;                  (** requests being processed now *)
  s_queued : int;                    (** compute jobs submitted, unfinished *)
  s_shedding : bool;                 (** admission control is refusing bench *)
  s_conns : int;                     (** open connections *)
  s_latency : latency;               (** service latency, all kinds *)
}

type reply =
  | R_advise of { a_report : string; a_cached : bool }
  | R_bench of {
      b_cycles_before : int;
      b_cycles_after : int;
      b_speedup_pct : float;
      b_plans : string list;         (** one summary line per applied plan *)
      b_cached : bool;
    }
  | R_check of {
      c_report : string;             (** rendered caret diagnostics *)
      c_sarif : string;              (** SARIF 2.1.0 document *)
      c_invalidating : int;          (** findings that block transformation *)
      c_cached : bool;
    }
  | R_tune of {
      t_plans : string list;
          (** the winning whole-program plan, one
              {!Slo_core.Codec.plan_to_string} record per entry — parse
              back with {!Slo_core.Codec.plan_of_string} *)
      t_heuristic_plans : string list;  (** the incumbent, same encoding *)
      t_baseline_cycles : int;
      t_heuristic_cycles : int;
      t_found_cycles : int;
      t_improved : bool;             (** found strictly beats the heuristic *)
      t_explored : int;              (** candidates scored within budget *)
      t_total : int;                 (** candidates enumerated *)
      t_complete : bool;             (** the whole space was scored *)
      t_cached : bool;
    }
  | R_stats of stats_reply
  | R_shutdown
  | R_error of { code : error_code; message : string }

(* ---------------- JSON codecs ---------------- *)

val json_of_request : ?id:int -> request -> Slo_util.Json.t
(** With [?id], an ["id"] field is prepended (see {e Pipelining}). *)

val request_of_json : Slo_util.Json.t -> (request, string) result
(** [Error] is a human-readable reason, sent back as [bad_request].
    Ignores a top-level ["id"] field (read it with {!id_of_frame}). *)

val json_of_reply : ?id:int -> reply -> Slo_util.Json.t

val reply_of_json : Slo_util.Json.t -> (reply, string) result

(* ---------------- id plumbing (pipelining hot paths) ---------------- *)

val id_of_frame : Slo_util.Json.t -> int option
(** The top-level ["id"] of a parsed frame, if any. *)

val inject_id : ?id:int -> string -> string
(** [inject_id ~id payload] prepends ["id":id] to a {e serialized} JSON
    object, producing the same bytes [json_of_... ~id] would have.
    Identity when [id] is [None]. Raises [Invalid_argument] if the
    payload is not an object. *)

val strip_id : string -> (int * string) option
(** Textual inverse of {!inject_id}: [Some (id, rest)] when the payload
    carries a canonical leading id field, [rest] being the object with
    the field removed. [None] for payloads without one (including ids
    emitted non-canonically by foreign clients — callers must treat
    [None] as "fall back to a full parse", never as "no id"). *)

val scan_reply_header : string -> int option * (unit, string) result
(** Prefix-scan of a serialized reply: its canonical id (if any) and
    [Ok ()] for a success reply or [Error code_name] for an error
    reply. No allocation proportional to the payload; the open-loop
    load generator accounts replies with this instead of a parse. *)

(* ---------------- framing ---------------- *)

exception Framing_error of string
(** Malformed length line, an over-limit frame, or EOF mid-frame. After
    this the stream offset is unreliable: close the connection. *)

val max_frame_bytes : int
(** 64 MiB — an inline source or report will not legitimately exceed
    this; anything bigger is a protocol error, not a big request. *)

val write_frame : out_channel -> string -> unit
(** Write one frame and flush. *)

val write_frame_noflush : out_channel -> string -> unit
(** Write one frame without flushing — batching several frames under
    one flush amortizes the write syscall when pipelined replies
    complete back to back. *)

val write_frame_id : out_channel -> ?id:int -> string -> unit
(** [write_frame_id oc ?id payload] writes one unflushed frame with
    [id] spliced into the leading ["id"] position on the fly —
    equivalent to [write_frame_noflush oc (inject_id ?id payload)]
    without materializing the per-request copy of the shared cached
    reply bytes. *)

val read_frame : in_channel -> string option
(** [None] on a clean EOF at a frame boundary; raises {!Framing_error}
    otherwise. *)
