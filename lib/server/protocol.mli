(** Wire protocol of the layout-advice daemon.

    {2 Framing}

    A frame is the payload's byte length in ASCII decimal, a single
    ['\n'], then exactly that many payload bytes. The payload is one
    strict JSON document ({!Slo_util.Json.of_string} rejects trailing
    garbage, so a frame is exactly one parse). Both directions use the
    same framing; a connection carries any number of request/reply
    round-trips, strictly in order.

    {2 Requests}

    {[ {"kind":"advise","src":"struct s {...};...","scheme":"ispbo",
        "args":[3],"deadline_ms":250.0}
       {"kind":"bench","src":"...","scheme":"spbo","backend":"closure"}
       {"kind":"check","src":"...","relax":true}
       {"kind":"stats"}
       {"kind":"shutdown"} ]}

    [src] carries Mini-C source inline — the daemon is content-addressed,
    there are no file paths in the protocol. [scheme] and [backend] are
    spelled like the CLI flags; the server validates them and answers
    [bad_request] for unknown spellings.

    {2 Replies}

    Success: [{"ok":true,"kind":...,...}]. Failure:
    [{"ok":false,"code":"timeout","message":"..."}] — the connection
    stays usable after an error reply (except [bad_frame], after which
    the stream offset is unreliable and the server closes). *)

type error_code =
  | Bad_request     (** malformed JSON, unknown kind/scheme/backend *)
  | Parse_error     (** Mini-C lexing or parsing failed *)
  | Type_error      (** Mini-C type checking failed *)
  | Legality_error  (** lowering unsupported, or the IR verifier failed *)
  | Worker_crash    (** the pool job died; message carries the exception *)
  | Timeout         (** the request's [deadline_ms] expired *)
  | Overloaded      (** connection limit reached; server closes after *)
  | Shutting_down   (** daemon is draining; no new work accepted *)

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option

type request =
  | Advise of {
      src : string;
      scheme : string option;       (** default ["ispbo"] *)
      args : int list;              (** profile-collection args for PBO *)
      deadline_ms : float option;
    }
  | Bench of {
      src : string;
      scheme : string option;
      backend : string option;      (** default the VM default *)
      args : int list;
      deadline_ms : float option;
    }
  | Check of {
      src : string;
      relax : bool;                 (** tolerate CSTT/CSTF/ATKN (default false) *)
      deadline_ms : float option;
    }
  | Stats
  | Shutdown

type latency = {
  l_count : int;
  l_p50_ms : float;
  l_p95_ms : float;
  l_p99_ms : float;
  l_max_ms : float;
}

type stats_reply = {
  s_uptime_s : float;
  s_requests : (string * int) list;  (** request kind -> served count *)
  s_errors : (string * int) list;    (** error code -> reply count *)
  s_result_hits : int;               (** (digest, scheme, backend) cache *)
  s_result_misses : int;
  s_ir_hits : int;                   (** digest -> compiled IR cache *)
  s_ir_misses : int;
  s_cache_entries : int;
  s_cache_bytes : int;
  s_cache_evictions : int;
  s_inflight : int;                  (** requests being processed now *)
  s_conns : int;                     (** open connections *)
  s_latency : latency;               (** service latency, all kinds *)
}

type reply =
  | R_advise of { a_report : string; a_cached : bool }
  | R_bench of {
      b_cycles_before : int;
      b_cycles_after : int;
      b_speedup_pct : float;
      b_plans : string list;         (** one summary line per applied plan *)
      b_cached : bool;
    }
  | R_check of {
      c_report : string;             (** rendered caret diagnostics *)
      c_sarif : string;              (** SARIF 2.1.0 document *)
      c_invalidating : int;          (** findings that block transformation *)
      c_cached : bool;
    }
  | R_stats of stats_reply
  | R_shutdown
  | R_error of { code : error_code; message : string }

(* ---------------- JSON codecs ---------------- *)

val json_of_request : request -> Slo_util.Json.t

val request_of_json : Slo_util.Json.t -> (request, string) result
(** [Error] is a human-readable reason, sent back as [bad_request]. *)

val json_of_reply : reply -> Slo_util.Json.t

val reply_of_json : Slo_util.Json.t -> (reply, string) result

(* ---------------- framing ---------------- *)

exception Framing_error of string
(** Malformed length line, an over-limit frame, or EOF mid-frame. After
    this the stream offset is unreliable: close the connection. *)

val max_frame_bytes : int
(** 64 MiB — an inline source or report will not legitimately exceed
    this; anything bigger is a protocol error, not a big request. *)

val write_frame : out_channel -> string -> unit
(** Write one frame and flush. *)

val read_frame : in_channel -> string option
(** [None] on a clean EOF at a frame boundary; raises {!Framing_error}
    otherwise. *)
