(** Persistent content-addressed reply cache.

    A directory of records mapping the server's result-cache key
    ([digest(src) x kind x scheme x backend x args]) to a serialized
    reply, layered {e under} the in-memory LRU: a daemon restarted on
    the same [--cache-dir] — or a fleet of daemons sharing one — starts
    warm instead of recompiling its whole working set.

    Crash safety and integrity:

    - {b writes} go to a temporary file in the cache directory and are
      [rename(2)]d into place, so a reader never observes a partial
      record and a crash mid-write leaves at most a stray temp file;
    - {b loads} verify a magic/version header, the full key (digests
      only pick the file name) and an MD5 of the payload; any mismatch
      — truncation, corruption, a record from a future format — reads
      as a miss, never as wrong data.

    Records are keyed by [md5(key)] and fanned out over 256 two-hex-char
    subdirectories. The store is append-only from the daemon's point of
    view (no eviction); an operator reclaims space by deleting files,
    which the verify-on-load discipline makes safe at any moment.

    Thread-safe: [find]/[store] may race freely across threads and
    domains; last writer wins, byte-for-byte identically. *)

type t

val create : dir:string -> t
(** Create (mkdir -p, permissions 0o755) or open the cache directory.
    Raises [Sys_error]/[Unix.Unix_error] if it cannot be created. *)

val dir : t -> string

val find : t -> key:string -> string option
(** The stored payload, or [None] on absence {e or} any verification
    failure (a corrupt record is also unlinked so it is not re-verified
    on every miss). *)

val store : t -> key:string -> string -> unit
(** Persist [key -> payload] atomically (write-temp-then-rename).
    I/O errors are swallowed: the disk layer is an optimization, and a
    full disk must not fail the request whose reply it was persisting. *)
