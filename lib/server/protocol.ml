module Json = Slo_util.Json

type error_code =
  | Bad_request
  | Parse_error
  | Type_error
  | Legality_error
  | Worker_crash
  | Timeout
  | Overloaded
  | Shutting_down

let error_codes =
  [
    (Bad_request, "bad_request");
    (Parse_error, "parse_error");
    (Type_error, "type_error");
    (Legality_error, "legality_error");
    (Worker_crash, "worker_crash");
    (Timeout, "timeout");
    (Overloaded, "overloaded");
    (Shutting_down, "shutting_down");
  ]

let error_code_name c = List.assoc c error_codes

let error_code_of_name s =
  List.find_map (fun (c, n) -> if n = s then Some c else None) error_codes

type request =
  | Advise of {
      src : string;
      scheme : string option;
      args : int list;
      pool : bool;
      deadline_ms : float option;
    }
  | Bench of {
      src : string;
      scheme : string option;
      backend : string option;
      args : int list;
      deadline_ms : float option;
    }
  | Check of { src : string; relax : bool; deadline_ms : float option }
  | Tune of {
      src : string;
      scheme : string option;
      backend : string option;
      args : int list;
      beam : int option;
      deadline_ms : float option;
    }
  | Stats
  | Shutdown

type latency = {
  l_count : int;
  l_p50_ms : float;
  l_p95_ms : float;
  l_p99_ms : float;
  l_max_ms : float;
}

type stats_reply = {
  s_uptime_s : float;
  s_requests : (string * int) list;
  s_errors : (string * int) list;
  s_result_hits : int;
  s_result_misses : int;
  s_ir_hits : int;
  s_ir_misses : int;
  s_disk_hits : int;
  s_disk_misses : int;
  s_cache_entries : int;
  s_cache_bytes : int;
  s_cache_evictions : int;
  s_inflight : int;
  s_queued : int;
  s_shedding : bool;
  s_conns : int;
  s_latency : latency;
}

type reply =
  | R_advise of { a_report : string; a_cached : bool }
  | R_bench of {
      b_cycles_before : int;
      b_cycles_after : int;
      b_speedup_pct : float;
      b_plans : string list;
      b_cached : bool;
    }
  | R_check of {
      c_report : string;       (** rendered caret diagnostics *)
      c_sarif : string;        (** SARIF 2.1.0 document *)
      c_invalidating : int;    (** findings that block transformation *)
      c_cached : bool;
    }
  | R_tune of {
      t_plans : string list;           (** the winner, codec plan strings *)
      t_heuristic_plans : string list; (** the incumbent it was judged against *)
      t_baseline_cycles : int;
      t_heuristic_cycles : int;
      t_found_cycles : int;
      t_improved : bool;
      t_explored : int;
      t_total : int;
      t_complete : bool;
      t_cached : bool;
    }
  | R_stats of stats_reply
  | R_shutdown
  | R_error of { code : error_code; message : string }

(* ---------------- request ids (pipelining) ---------------- *)

(* A client that pipelines tags each request with an integer [id]; the
   server echoes it on the matching reply, which may complete out of
   order. The id is a top-level "id" field in both directions, always
   emitted *first* so that hot paths can splice or scan it without a
   full JSON parse. *)

let id_of_frame j =
  match Json.member "id" j with Some (Json.Int n) -> Some n | _ -> None

(* [inject_id ~id payload] prepends an "id" field to a serialized JSON
   object. The warm serving path caches serialized replies and the load
   generator caches serialized requests; both splice the per-call id
   into the cached bytes instead of re-emitting the document. *)
let inject_id ?id payload =
  match id with
  | None -> payload
  | Some n ->
    let len = String.length payload in
    if len < 2 || payload.[0] <> '{' then
      invalid_arg "Protocol.inject_id: payload is not a JSON object";
    (* exact-size blit, not Printf — this runs per call on serving and
       load-generation hot paths *)
    let ns = string_of_int n in
    let nlen = String.length ns in
    let empty = len = 2 && payload.[1] = '}' in
    let out =
      Bytes.create (6 + nlen + (if empty then 1 else 1 + (len - 1)))
    in
    Bytes.blit_string "{\"id\":" 0 out 0 6;
    Bytes.blit_string ns 0 out 6 nlen;
    if empty then Bytes.set out (6 + nlen) '}'
    else begin
      Bytes.set out (6 + nlen) ',';
      Bytes.blit_string payload 1 out (7 + nlen) (len - 1)
    end;
    Bytes.unsafe_to_string out

(* [strip_id payload] undoes [inject_id] textually: [Some (id, rest)]
   when the payload starts with a canonical {"id":N...} prefix (where
   [rest] is the object with the id field removed), [None] otherwise.
   Purely syntactic — used to key the frame cache on the id-independent
   request bytes without parsing the document. *)
let strip_id payload =
  let prefix = "{\"id\":" in
  let plen = String.length prefix and len = String.length payload in
  if len < String.length prefix + 1 || String.sub payload 0 plen <> prefix
  then None
  else begin
    let i = ref plen in
    let neg = !i < len && payload.[!i] = '-' in
    if neg then incr i;
    let digits0 = !i in
    while !i < len && payload.[!i] >= '0' && payload.[!i] <= '9' do incr i done;
    if !i = digits0 || !i >= len then None
    else
      match int_of_string_opt (String.sub payload plen (!i - plen)) with
      | None -> None
      | Some id -> (
        match payload.[!i] with
        | ',' ->
          Some (id, "{" ^ String.sub payload (!i + 1) (len - !i - 1))
        | '}' when !i = len - 1 -> Some (id, "{}")
        | _ -> None)
  end

(* ---------------- request codec ---------------- *)

(* omit empty/None fields so frames stay small *)
let opt_field k f = function None -> [] | Some v -> [ (k, f v) ]
let list_field k f = function [] -> [] | xs -> [ (k, Json.List (List.map f xs)) ]

let with_id ?id j =
  match (id, j) with
  | Some n, Json.Obj fields -> Json.Obj (("id", Json.Int n) :: fields)
  | _ -> j

let json_of_request_body = function
  | Advise { src; scheme; args; pool; deadline_ms } ->
    (* [pool] is emitted only when set, so pre-pool clients and daemons
       exchange byte-identical frames *)
    Json.Obj
      ([ ("kind", Json.String "advise"); ("src", Json.String src) ]
      @ opt_field "scheme" (fun s -> Json.String s) scheme
      @ list_field "args" (fun i -> Json.Int i) args
      @ (if pool then [ ("pool", Json.Bool true) ] else [])
      @ opt_field "deadline_ms" (fun f -> Json.Float f) deadline_ms)
  | Bench { src; scheme; backend; args; deadline_ms } ->
    Json.Obj
      ([ ("kind", Json.String "bench"); ("src", Json.String src) ]
      @ opt_field "scheme" (fun s -> Json.String s) scheme
      @ opt_field "backend" (fun s -> Json.String s) backend
      @ list_field "args" (fun i -> Json.Int i) args
      @ opt_field "deadline_ms" (fun f -> Json.Float f) deadline_ms)
  | Check { src; relax; deadline_ms } ->
    Json.Obj
      ([ ("kind", Json.String "check"); ("src", Json.String src) ]
      @ (if relax then [ ("relax", Json.Bool true) ] else [])
      @ opt_field "deadline_ms" (fun f -> Json.Float f) deadline_ms)
  | Tune { src; scheme; backend; args; beam; deadline_ms } ->
    Json.Obj
      ([ ("kind", Json.String "tune"); ("src", Json.String src) ]
      @ opt_field "scheme" (fun s -> Json.String s) scheme
      @ opt_field "backend" (fun s -> Json.String s) backend
      @ list_field "args" (fun i -> Json.Int i) args
      @ opt_field "beam" (fun b -> Json.Int b) beam
      @ opt_field "deadline_ms" (fun f -> Json.Float f) deadline_ms)
  | Stats -> Json.Obj [ ("kind", Json.String "stats") ]
  | Shutdown -> Json.Obj [ ("kind", Json.String "shutdown") ]

let json_of_request ?id r = with_id ?id (json_of_request_body r)

let get_string j k =
  match Json.member k j with
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None -> Ok None

let get_number j k =
  match Json.member k j with
  | Some (Json.Float f) -> Ok (Some f)
  | Some (Json.Int i) -> Ok (Some (float_of_int i))
  | Some _ -> Error (Printf.sprintf "field %S must be a number" k)
  | None -> Ok None

let get_int_list j k =
  match Json.member k j with
  | Some (Json.List xs) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Int i :: tl -> go (i :: acc) tl
      | _ -> Error (Printf.sprintf "field %S must be a list of ints" k)
    in
    go [] xs
  | Some _ -> Error (Printf.sprintf "field %S must be a list of ints" k)
  | None -> Ok []

let ( let* ) = Result.bind

let request_of_json j =
  match j with
  | Json.Obj _ -> (
    let* kind = get_string j "kind" in
    match kind with
    | None -> Error "missing \"kind\""
    | Some ("advise" | "bench") as k -> (
      let* src = get_string j "src" in
      match src with
      | None -> Error "missing \"src\""
      | Some src ->
        let* scheme = get_string j "scheme" in
        let* args = get_int_list j "args" in
        let* deadline_ms = get_number j "deadline_ms" in
        if k = Some "advise" then
          let* pool =
            match Json.member "pool" j with
            | Some (Json.Bool b) -> Ok b
            | Some _ -> Error "field \"pool\" must be a bool"
            | None -> Ok false
          in
          Ok (Advise { src; scheme; args; pool; deadline_ms })
        else
          let* backend = get_string j "backend" in
          Ok (Bench { src; scheme; backend; args; deadline_ms }))
    | Some "check" -> (
      let* src = get_string j "src" in
      match src with
      | None -> Error "missing \"src\""
      | Some src ->
        let* relax =
          match Json.member "relax" j with
          | Some (Json.Bool b) -> Ok b
          | Some _ -> Error "field \"relax\" must be a bool"
          | None -> Ok false
        in
        let* deadline_ms = get_number j "deadline_ms" in
        Ok (Check { src; relax; deadline_ms }))
    | Some "tune" -> (
      let* src = get_string j "src" in
      match src with
      | None -> Error "missing \"src\""
      | Some src ->
        let* scheme = get_string j "scheme" in
        let* backend = get_string j "backend" in
        let* args = get_int_list j "args" in
        let* beam =
          match Json.member "beam" j with
          | Some (Json.Int b) -> Ok (Some b)
          | Some _ -> Error "field \"beam\" must be an int"
          | None -> Ok None
        in
        let* deadline_ms = get_number j "deadline_ms" in
        Ok (Tune { src; scheme; backend; args; beam; deadline_ms }))
    | Some "stats" -> Ok Stats
    | Some "shutdown" -> Ok Shutdown
    | Some k -> Error (Printf.sprintf "unknown kind %S" k))
  | _ -> Error "request must be a JSON object"

(* ---------------- reply codec ---------------- *)

let json_of_latency l =
  Json.Obj
    [
      ("count", Json.Int l.l_count);
      ("p50_ms", Json.Float l.l_p50_ms);
      ("p95_ms", Json.Float l.l_p95_ms);
      ("p99_ms", Json.Float l.l_p99_ms);
      ("max_ms", Json.Float l.l_max_ms);
    ]

let json_of_counts kvs =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs)

let json_of_reply_body = function
  | R_advise { a_report; a_cached } ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("kind", Json.String "advise");
        ("report", Json.String a_report);
        ("cached", Json.Bool a_cached);
      ]
  | R_bench b ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("kind", Json.String "bench");
        ("cycles_before", Json.Int b.b_cycles_before);
        ("cycles_after", Json.Int b.b_cycles_after);
        ("speedup_pct", Json.Float b.b_speedup_pct);
        ("plans", Json.List (List.map (fun p -> Json.String p) b.b_plans));
        ("cached", Json.Bool b.b_cached);
      ]
  | R_check c ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("kind", Json.String "check");
        ("report", Json.String c.c_report);
        ("sarif", Json.String c.c_sarif);
        ("invalidating", Json.Int c.c_invalidating);
        ("cached", Json.Bool c.c_cached);
      ]
  | R_tune t ->
    let strings xs = Json.List (List.map (fun p -> Json.String p) xs) in
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("kind", Json.String "tune");
        ("plans", strings t.t_plans);
        ("heuristic_plans", strings t.t_heuristic_plans);
        ("baseline_cycles", Json.Int t.t_baseline_cycles);
        ("heuristic_cycles", Json.Int t.t_heuristic_cycles);
        ("found_cycles", Json.Int t.t_found_cycles);
        ("improved", Json.Bool t.t_improved);
        ("explored", Json.Int t.t_explored);
        ("total", Json.Int t.t_total);
        ("complete", Json.Bool t.t_complete);
        ("cached", Json.Bool t.t_cached);
      ]
  | R_stats s ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("kind", Json.String "stats");
        ("uptime_s", Json.Float s.s_uptime_s);
        ("requests", json_of_counts s.s_requests);
        ("errors", json_of_counts s.s_errors);
        ( "cache",
          Json.Obj
            [
              ("result_hits", Json.Int s.s_result_hits);
              ("result_misses", Json.Int s.s_result_misses);
              ("ir_hits", Json.Int s.s_ir_hits);
              ("ir_misses", Json.Int s.s_ir_misses);
              ("disk_hits", Json.Int s.s_disk_hits);
              ("disk_misses", Json.Int s.s_disk_misses);
              ("entries", Json.Int s.s_cache_entries);
              ("bytes", Json.Int s.s_cache_bytes);
              ("evictions", Json.Int s.s_cache_evictions);
            ] );
        ("inflight", Json.Int s.s_inflight);
        ("queued", Json.Int s.s_queued);
        ("shedding", Json.Bool s.s_shedding);
        ("conns", Json.Int s.s_conns);
        ("latency_ms", json_of_latency s.s_latency);
      ]
  | R_shutdown ->
    Json.Obj [ ("ok", Json.Bool true); ("kind", Json.String "shutdown") ]
  | R_error { code; message } ->
    Json.Obj
      [
        ("ok", Json.Bool false);
        ("code", Json.String (error_code_name code));
        ("message", Json.String message);
      ]

let json_of_reply ?id r = with_id ?id (json_of_reply_body r)

(* prefix scan of a serialized reply: its id (when emitted canonically)
   and its ok/error classification, without a JSON parse. The emitter
   puts "ok" first and, for errors, "code" immediately after, so the
   open-loop load generator can account replies at line rate. *)
let scan_reply_header payload =
  let id, rest =
    match strip_id payload with
    | Some (id, rest) -> (Some id, rest)
    | None -> (None, payload)
  in
  let starts p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  if starts "{\"ok\":true" rest then (id, Ok ())
  else if starts "{\"ok\":false,\"code\":\"" rest then begin
    let from = String.length "{\"ok\":false,\"code\":\"" in
    let stop = try String.index_from rest from '"' with Not_found -> from in
    (id, Error (String.sub rest from (stop - from)))
  end
  else (id, Error "undecodable")

let counts_of_json j k =
  match Json.member k j with
  | Some (Json.Obj fields) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, Json.Int n) :: tl -> go ((name, n) :: acc) tl
      | _ -> Error (Printf.sprintf "field %S must map names to ints" k)
    in
    go [] fields
  | _ -> Error (Printf.sprintf "missing counts object %S" k)

let req_int j k =
  match Json.member k j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" k)

let req_float j k =
  match get_number j k with
  | Ok (Some f) -> Ok f
  | Ok None -> Error (Printf.sprintf "missing number field %S" k)
  | Error e -> Error e

let latency_of_json j =
  let* l_count = req_int j "count" in
  let* l_p50_ms = req_float j "p50_ms" in
  let* l_p95_ms = req_float j "p95_ms" in
  let* l_p99_ms = req_float j "p99_ms" in
  let* l_max_ms = req_float j "max_ms" in
  Ok { l_count; l_p50_ms; l_p95_ms; l_p99_ms; l_max_ms }

let stats_of_json j =
  let* s_uptime_s = req_float j "uptime_s" in
  let* s_requests = counts_of_json j "requests" in
  let* s_errors = counts_of_json j "errors" in
  match Json.member "cache" j with
  | None -> Error "missing \"cache\""
  | Some c ->
    let* s_result_hits = req_int c "result_hits" in
    let* s_result_misses = req_int c "result_misses" in
    let* s_ir_hits = req_int c "ir_hits" in
    let* s_ir_misses = req_int c "ir_misses" in
    let* s_disk_hits = req_int c "disk_hits" in
    let* s_disk_misses = req_int c "disk_misses" in
    let* s_cache_entries = req_int c "entries" in
    let* s_cache_bytes = req_int c "bytes" in
    let* s_cache_evictions = req_int c "evictions" in
    let* s_inflight = req_int j "inflight" in
    let* s_queued = req_int j "queued" in
    let* s_shedding =
      match Json.member "shedding" j with
      | Some (Json.Bool b) -> Ok b
      | _ -> Error "missing bool field \"shedding\""
    in
    let* s_conns = req_int j "conns" in
    (match Json.member "latency_ms" j with
    | None -> Error "missing \"latency_ms\""
    | Some l ->
      let* s_latency = latency_of_json l in
      Ok
        {
          s_uptime_s;
          s_requests;
          s_errors;
          s_result_hits;
          s_result_misses;
          s_ir_hits;
          s_ir_misses;
          s_disk_hits;
          s_disk_misses;
          s_cache_entries;
          s_cache_bytes;
          s_cache_evictions;
          s_inflight;
          s_queued;
          s_shedding;
          s_conns;
          s_latency;
        })

let reply_of_json j =
  match Json.member "ok" j with
  | Some (Json.Bool false) -> (
    let* code = get_string j "code" in
    let* message = get_string j "message" in
    match code with
    | None -> Error "error reply missing \"code\""
    | Some code -> (
      match error_code_of_name code with
      | None -> Error (Printf.sprintf "unknown error code %S" code)
      | Some code ->
        Ok (R_error { code; message = Option.value ~default:"" message })))
  | Some (Json.Bool true) -> (
    let* kind = get_string j "kind" in
    match kind with
    | Some "advise" -> (
      let* report = get_string j "report" in
      match (report, Json.member "cached" j) with
      | Some a_report, Some (Json.Bool a_cached) ->
        Ok (R_advise { a_report; a_cached })
      | _ -> Error "advise reply missing report/cached")
    | Some "bench" -> (
      let* b_cycles_before = req_int j "cycles_before" in
      let* b_cycles_after = req_int j "cycles_after" in
      let* b_speedup_pct = req_float j "speedup_pct" in
      let* b_plans =
        match Json.member "plans" j with
        | Some (Json.List xs) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | Json.String s :: tl -> go (s :: acc) tl
            | _ -> Error "plans must be strings"
          in
          go [] xs
        | _ -> Error "bench reply missing plans"
      in
      match Json.member "cached" j with
      | Some (Json.Bool b_cached) ->
        Ok
          (R_bench
             {
               b_cycles_before;
               b_cycles_after;
               b_speedup_pct;
               b_plans;
               b_cached;
             })
      | _ -> Error "bench reply missing cached")
    | Some "check" -> (
      let* report = get_string j "report" in
      let* sarif = get_string j "sarif" in
      let* c_invalidating = req_int j "invalidating" in
      match (report, sarif, Json.member "cached" j) with
      | Some c_report, Some c_sarif, Some (Json.Bool c_cached) ->
        Ok (R_check { c_report; c_sarif; c_invalidating; c_cached })
      | _ -> Error "check reply missing report/sarif/cached")
    | Some "tune" -> (
      let str_list k =
        match Json.member k j with
        | Some (Json.List xs) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | Json.String s :: tl -> go (s :: acc) tl
            | _ -> Error (Printf.sprintf "%s must be strings" k)
          in
          go [] xs
        | _ -> Error (Printf.sprintf "tune reply missing %s" k)
      in
      let bool_field k =
        match Json.member k j with
        | Some (Json.Bool b) -> Ok b
        | _ -> Error (Printf.sprintf "tune reply missing bool %s" k)
      in
      let* t_plans = str_list "plans" in
      let* t_heuristic_plans = str_list "heuristic_plans" in
      let* t_baseline_cycles = req_int j "baseline_cycles" in
      let* t_heuristic_cycles = req_int j "heuristic_cycles" in
      let* t_found_cycles = req_int j "found_cycles" in
      let* t_improved = bool_field "improved" in
      let* t_explored = req_int j "explored" in
      let* t_total = req_int j "total" in
      let* t_complete = bool_field "complete" in
      let* t_cached = bool_field "cached" in
      Ok
        (R_tune
           {
             t_plans;
             t_heuristic_plans;
             t_baseline_cycles;
             t_heuristic_cycles;
             t_found_cycles;
             t_improved;
             t_explored;
             t_total;
             t_complete;
             t_cached;
           }))
    | Some "stats" ->
      let* s = stats_of_json j in
      Ok (R_stats s)
    | Some "shutdown" -> Ok R_shutdown
    | _ -> Error "reply missing kind")
  | _ -> Error "reply missing \"ok\""

(* ---------------- framing ---------------- *)

exception Framing_error of string

let max_frame_bytes = 64 * 1024 * 1024

let write_frame_noflush oc payload =
  let n = String.length payload in
  if n > max_frame_bytes then
    raise (Framing_error (Printf.sprintf "frame of %d bytes over limit" n));
  output_string oc (string_of_int n);
  output_char oc '\n';
  output_string oc payload

let write_frame oc payload =
  write_frame_noflush oc payload;
  flush oc

(* write a frame with the id spliced in on the fly: the reply bytes are
   shared cached strings, so the splice must not build an intermediate
   per-request copy *)
let write_frame_id oc ?id payload =
  match id with
  | None -> write_frame_noflush oc payload
  | Some n ->
    let len = String.length payload in
    if len < 2 || payload.[0] <> '{' then
      invalid_arg "Protocol.write_frame_id: payload is not a JSON object";
    let ns = string_of_int n in
    let empty = len = 2 && payload.[1] = '}' in
    let total = 6 + String.length ns + (if empty then 1 else len) in
    if total > max_frame_bytes then
      raise (Framing_error (Printf.sprintf "frame of %d bytes over limit" total));
    output_string oc (string_of_int total);
    output_char oc '\n';
    output_string oc "{\"id\":";
    output_string oc ns;
    if empty then output_char oc '}'
    else begin
      output_char oc ',';
      output_substring oc payload 1 (len - 1)
    end

let read_frame ic =
  (* length line: ASCII digits then '\n'; EOF before the first byte is a
     clean end of stream *)
  let rec read_len acc first =
    match input_char ic with
    | exception End_of_file ->
      if first then None else raise (Framing_error "EOF inside frame length")
    | '\n' ->
      if first then raise (Framing_error "empty frame length") else Some acc
    | '0' .. '9' as c ->
      let acc = (acc * 10) + (Char.code c - Char.code '0') in
      if acc > max_frame_bytes then
        raise (Framing_error "frame length over limit");
      read_len acc false
    | c ->
      raise
        (Framing_error (Printf.sprintf "bad byte %C in frame length" c))
  in
  match read_len 0 true with
  | None -> None
  | Some n -> (
    match really_input_string ic n with
    | s -> Some s
    | exception End_of_file ->
      raise
        (Framing_error
           (Printf.sprintf "EOF inside frame payload (wanted %d bytes)" n)))
