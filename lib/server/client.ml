module Json = Slo_util.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

exception Protocol_error of string

let connect ?(retry_for_s = 0.0) ~socket () =
  let deadline = Unix.gettimeofday () +. retry_for_s in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () ->
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.02;
      go ()
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t req =
  (match
     Protocol.write_frame t.oc
       (Json.to_string ~indent:false (Protocol.json_of_request req))
   with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) ->
    (* e.g. EPIPE from a server that refused and closed; any refusal
       reply it sent first is still readable below *)
    ());
  match Protocol.read_frame t.ic with
  | None -> raise (Protocol_error "server closed the connection")
  | exception Protocol.Framing_error msg -> raise (Protocol_error msg)
  | exception (Sys_error _ | Unix.Unix_error _) ->
    raise (Protocol_error "connection reset by server")
  | Some payload -> (
    match Json.of_string payload with
    | exception Json.Parse_error msg ->
      raise (Protocol_error ("reply is not JSON: " ^ msg))
    | j -> (
      match Protocol.reply_of_json j with
      | Ok r -> r
      | Error msg -> raise (Protocol_error ("bad reply: " ^ msg))))
