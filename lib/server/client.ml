module Json = Slo_util.Json
module Clock = Slo_util.Clock

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

exception Protocol_error of string

let endpoint_of_string s =
  match String.rindex_opt s ':' with
  | Some i when not (String.contains s '/') -> (
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port when port >= 0 -> `Tcp (String.sub s 0 i, port)
    | _ -> `Unix s)
  | _ -> `Unix s

let resolve_host host =
  let host = if host = "" || host = "*" then "127.0.0.1" else host in
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      raise
        (Unix.Unix_error
           (Unix.EINVAL, "resolve", Printf.sprintf "unknown host %S" host))
    | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let connect ?(retry_for_s = 0.0) ~endpoint () =
  let domain, addr, tcp =
    match endpoint with
    | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path, false)
    | `Tcp (host, port) ->
      (Unix.PF_INET, Unix.ADDR_INET (resolve_host host, port), true)
  in
  let t0 = Clock.now_ns () in
  let rec go () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
      if tcp then (
        try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ());
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when Clock.elapsed_ms ~since:t0 < retry_for_s *. 1000.0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.02;
      go ()
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go ()

let connect_socket ?retry_for_s ~socket () =
  connect ?retry_for_s ~endpoint:(`Unix socket) ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_payload t payload =
  match Protocol.write_frame t.oc payload with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) ->
    raise (Protocol_error "connection reset by server")

let send_raw t payload = write_payload t payload

let send_raw_noflush t payload =
  match Protocol.write_frame_noflush t.oc payload with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) ->
    raise (Protocol_error "connection reset by server")

let flush_out t =
  match flush t.oc with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) ->
    raise (Protocol_error "connection reset by server")

let send t ?id req =
  write_payload t (Json.to_string ~indent:false (Protocol.json_of_request ?id req))

let recv_raw t =
  match Protocol.read_frame t.ic with
  | None -> raise (Protocol_error "server closed the connection")
  | exception Protocol.Framing_error msg -> raise (Protocol_error msg)
  | exception (Sys_error _ | Unix.Unix_error _) ->
    raise (Protocol_error "connection reset by server")
  | Some payload -> payload

let decode payload =
  match Json.of_string payload with
  | exception Json.Parse_error msg ->
    raise (Protocol_error ("reply is not JSON: " ^ msg))
  | j -> (
    match Protocol.reply_of_json j with
    | Ok r -> r
    | Error msg -> raise (Protocol_error ("bad reply: " ^ msg)))

let recv t =
  let payload = recv_raw t in
  let j =
    match Json.of_string payload with
    | exception Json.Parse_error msg ->
      raise (Protocol_error ("reply is not JSON: " ^ msg))
    | j -> j
  in
  match Protocol.reply_of_json j with
  | Ok r -> (Protocol.id_of_frame j, r)
  | Error msg -> raise (Protocol_error ("bad reply: " ^ msg))

let rpc t req =
  (match
     Protocol.write_frame t.oc
       (Json.to_string ~indent:false (Protocol.json_of_request req))
   with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) ->
    (* e.g. EPIPE from a server that refused and closed; any refusal
       reply it sent first is still readable below *)
    ());
  decode (recv_raw t)
