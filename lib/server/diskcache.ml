(* Record format (all lengths in ASCII decimal, '\n'-terminated):

     slo-diskcache 1\n
     <key length>\n
     <key bytes>\n
     <md5 hex of payload>\n
     <payload length>\n
     <payload bytes>

   The file name is md5(key) under a 2-hex-char fanout directory; the
   embedded key guards against digest collisions and mis-filed records,
   the embedded payload digest against truncation and bit rot. *)

type t = {
  cache_dir : string;
  lock : Mutex.t; (* temp-name sequence only *)
  mutable seq : int;
}

let magic = "slo-diskcache 1"

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let create ~dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  { cache_dir = dir; lock = Mutex.create (); seq = 0 }

let dir t = t.cache_dir

let path_of_key t key =
  let h = Digest.to_hex (Digest.string key) in
  Filename.concat (Filename.concat t.cache_dir (String.sub h 0 2)) (h ^ ".rec")

let read_line_opt ic = try Some (input_line ic) with End_of_file -> None

let read_exact ic n =
  try Some (really_input_string ic n) with End_of_file -> None

let load_verified ic ~key =
  let ( let* ) = Option.bind in
  let* m = read_line_opt ic in
  if m <> magic then None
  else
    let* klen = Option.bind (read_line_opt ic) int_of_string_opt in
    if klen < 0 || klen > 1_000_000 then None
    else
      let* stored_key = read_exact ic klen in
      let* _nl = read_exact ic 1 in
      if stored_key <> key then None
      else
        let* digest = read_line_opt ic in
        let* plen = Option.bind (read_line_opt ic) int_of_string_opt in
        if plen < 0 || plen > Protocol.max_frame_bytes then None
        else
          let* payload = read_exact ic plen in
          if Digest.to_hex (Digest.string payload) <> digest then None
          else Some payload

let find t ~key =
  let path = path_of_key t key in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
    let r =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          try load_verified ic ~key with Sys_error _ -> None)
    in
    match r with
    | Some _ as hit -> hit
    | None ->
      (* corrupt or foreign record: drop it so it is not re-verified on
         every subsequent miss *)
      (try Sys.remove path with Sys_error _ -> ());
      None)

let store t ~key payload =
  let path = path_of_key t key in
  let tmp =
    Mutex.lock t.lock;
    let n = t.seq in
    t.seq <- n + 1;
    Mutex.unlock t.lock;
    Filename.concat t.cache_dir
      (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) n)
  in
  try
    mkdir_p (Filename.dirname path);
    let oc = open_out_bin tmp in
    (try
       output_string oc magic;
       output_char oc '\n';
       output_string oc (string_of_int (String.length key));
       output_char oc '\n';
       output_string oc key;
       output_char oc '\n';
       output_string oc (Digest.to_hex (Digest.string payload));
       output_char oc '\n';
       output_string oc (string_of_int (String.length payload));
       output_char oc '\n';
       output_string oc payload;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ())
