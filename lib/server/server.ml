module Json = Slo_util.Json
module Lru = Slo_util.Lru
module Histogram = Slo_util.Histogram
module Pool = Slo_exec.Pool
module P = Protocol
module D = Slo_core.Driver
module H = Slo_core.Heuristics
module Adv = Slo_core.Advisor
module W = Slo_profile.Weights

type config = {
  socket_path : string;
  jobs : int;
  cache_mb : int;
  max_conns : int;
  handle_sigterm : bool;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = Pool.default_jobs ();
    cache_mb = 64;
    max_conns = 64;
    handle_sigterm = true;
    log = ignore;
  }

(* one cache holds both key spaces; the "ir:"/"res:" key prefixes keep
   them disjoint *)
type cached = Cir of Ir.program | Creply of P.reply

type t = {
  cfg : config;
  pool : Pool.t;
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  lock : Mutex.t; (* guards every mutable field below *)
  drained : Condition.t; (* broadcast when inflight drops to 0 *)
  cache : (string, cached) Lru.t;
  pending : (string, P.reply Pool.future) Hashtbl.t;
  req_counts : (string, int) Hashtbl.t;
  err_counts : (string, int) Hashtbl.t;
  hist : Histogram.t;
  mutable result_hits : int;
  mutable result_misses : int;
  mutable ir_hits : int;
  mutable ir_misses : int;
  mutable inflight : int;
  mutable conns : (int * Unix.file_descr) list;
  mutable threads : Thread.t list;
  mutable next_conn : int;
  started : float;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let count_error t code = locked t (fun () -> bump t.err_counts (P.error_code_name code))

let err code fmt =
  Printf.ksprintf (fun message -> P.R_error { code; message }) fmt

(* ------------------------------------------------------------------ *)
(* Compute jobs (run on pool worker domains)                           *)
(* ------------------------------------------------------------------ *)

let heap_bytes v = Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)

let get_ir t ~digest ~src =
  let key = "ir:" ^ digest in
  let hit =
    locked t (fun () ->
        match Lru.find t.cache key with
        | Some (Cir p) ->
          t.ir_hits <- t.ir_hits + 1;
          Some p
        | Some (Creply _) -> assert false (* key spaces are disjoint *)
        | None ->
          t.ir_misses <- t.ir_misses + 1;
          None)
  in
  match hit with
  | Some p -> p
  | None ->
    let prog = D.compile ~verify:true src in
    locked t (fun () ->
        ignore (Lru.add t.cache key (Cir prog) ~bytes:(heap_bytes prog)));
    prog

let scheme_of_name name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun s -> String.lowercase_ascii (W.name s) = name) W.all

(* display label for sources shipped over the wire; the client re-labels
   lines with the real path when it has one *)
let wire_uri = "<input>"

let compute t ~kind ~digest ~src ~scheme ~backend ~args =
  let prog = get_ir t ~digest ~src in
  match kind with
  | `Check relax ->
    (* purely static: no profile collection, no execution *)
    let diags = Slo_advice.Advice.check ~relax prog in
    P.R_check
      {
        c_report = Slo_advice.Advice.render ~src ~file:wire_uri diags;
        c_sarif = Slo_advice.Sarif.to_string [ (wire_uri, diags) ];
        c_invalidating = Slo_advice.Advice.invalidating_count diags;
        c_cached = false;
      }
  | (`Advise | `Bench) as kind -> (
  let feedback =
    if W.needs_profile scheme then
      Some (fst (Slo_profile.Collect.collect ~args prog))
    else None
  in
  match kind with
  | `Advise ->
    let leg, aff = D.analyze prog ~scheme ~feedback in
    let decisions = H.decide prog leg aff ~scheme in
    let dcache =
      Option.map
        (fun fb ->
          (Slo_profile.Matching.apply prog fb).Slo_profile.Matching.instr_dcache)
        feedback
    in
    let adv = Adv.build prog leg aff ~decisions ~dcache in
    P.R_advise { a_report = Adv.report adv; a_cached = false }
  | `Bench ->
    let ev = D.evaluate ~args ~verify:true ~jobs:1 ~backend ~scheme ~feedback prog in
    P.R_bench
      {
        b_cycles_before = ev.D.e_before.D.m_cycles;
        b_cycles_after = ev.D.e_after.D.m_cycles;
        b_speedup_pct = ev.D.e_speedup_pct;
        b_plans =
          List.filter_map
            (fun (d : H.decision) -> Option.map H.plan_summary d.d_plan)
            ev.D.e_decisions;
        b_cached = false;
      })

(* Everything a request can legitimately fail with becomes a structured
   error reply; only true surprises surface as [worker_crash]. The job
   always cleans its [pending] slot and caches successful replies. *)
let job t ~key ~kind ~digest ~src ~scheme ~backend ~args () =
  let reply =
    match compute t ~kind ~digest ~src ~scheme ~backend ~args with
    | r -> r
    | exception Slo_minic.Lexer.Error (msg, loc) ->
      err P.Parse_error "%s: lexical error: %s" (Slo_minic.Loc.to_string loc) msg
    | exception Slo_minic.Parser.Error (msg, loc) ->
      err P.Parse_error "%s: syntax error: %s" (Slo_minic.Loc.to_string loc) msg
    | exception Slo_minic.Typecheck.Error (msg, loc) ->
      err P.Type_error "%s: type error: %s" (Slo_minic.Loc.to_string loc) msg
    | exception Lower.Unsupported (msg, loc) ->
      err P.Legality_error "%s: unsupported: %s" (Slo_minic.Loc.to_string loc) msg
    | exception Verify.Ill_formed errs ->
      err P.Legality_error "ill-formed IR:\n%s" (Verify.report errs)
    | exception e -> err P.Worker_crash "%s" (Printexc.to_string e)
  in
  locked t (fun () ->
      Hashtbl.remove t.pending key;
      match reply with
      | P.R_advise _ | P.R_bench _ | P.R_check _ ->
        ignore (Lru.add t.cache key (Creply reply) ~bytes:(heap_bytes reply))
      | _ -> ());
  reply

(* ------------------------------------------------------------------ *)
(* Request handling (runs on connection threads)                       *)
(* ------------------------------------------------------------------ *)

let mark_cached = function
  | P.R_advise a -> P.R_advise { a with a_cached = true }
  | P.R_bench b -> P.R_bench { b with b_cached = true }
  | P.R_check c -> P.R_check { c with c_cached = true }
  | r -> r

let serve_compute t ~kind ~src ~scheme ~backend ~args ~deadline_ms =
  let scheme_name = Option.value ~default:"ispbo" scheme in
  match scheme_of_name scheme_name with
  | None -> err P.Bad_request "unknown scheme %S" scheme_name
  | Some scheme when W.is_dcache scheme ->
    err P.Bad_request
      "d-cache scheme %S attributes PMU samples, not block weights; it is \
       not servable over the wire"
      scheme_name
  | Some scheme -> (
    let backend_name =
      Option.value ~default:(Slo_vm.Backend.to_string Slo_vm.Backend.default)
        backend
    in
    match Slo_vm.Backend.of_string backend_name with
    | None -> err P.Bad_request "unknown backend %S" backend_name
    | Some backend -> (
      let digest = Digest.to_hex (Digest.string src) in
      let key =
        Printf.sprintf "res:%s:%s:%s:%s:%s" digest
          (match kind with
          | `Advise -> "advise"
          | `Bench -> "bench"
          | `Check false -> "check"
          | `Check true -> "check-relax")
          (W.name scheme) (Slo_vm.Backend.to_string backend)
          (String.concat "," (List.map string_of_int args))
      in
      let outcome =
        locked t (fun () ->
            match Lru.find t.cache key with
            | Some (Creply r) ->
              t.result_hits <- t.result_hits + 1;
              `Hit r
            | Some (Cir _) -> assert false
            | None ->
              t.result_misses <- t.result_misses + 1;
              let fut =
                match Hashtbl.find_opt t.pending key with
                | Some f -> f (* coalesce with the in-flight computation *)
                | None ->
                  let f =
                    Pool.submit t.pool
                      (job t ~key ~kind ~digest ~src ~scheme ~backend ~args)
                  in
                  Hashtbl.add t.pending key f;
                  f
              in
              `Await fut)
      in
      match outcome with
      | `Hit r -> mark_cached r
      | `Await fut -> (
        let res =
          match deadline_ms with
          | None -> Some (Pool.await fut)
          | Some ms -> Pool.await_timeout fut ~timeout_ms:ms
        in
        match res with
        | None ->
          err P.Timeout
            "deadline of %gms expired; the computation continues and will \
             be cached"
            (Option.get deadline_ms)
        | Some (Ok reply) -> reply
        | Some (Error (e : Pool.error)) ->
          err P.Worker_crash "%s" e.Pool.err_exn)))

let build_stats t =
  locked t (fun () ->
      let sorted tbl =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
      in
      let p q = Histogram.percentile t.hist q in
      P.R_stats
        {
          s_uptime_s = Unix.gettimeofday () -. t.started;
          s_requests = sorted t.req_counts;
          s_errors = sorted t.err_counts;
          s_result_hits = t.result_hits;
          s_result_misses = t.result_misses;
          s_ir_hits = t.ir_hits;
          s_ir_misses = t.ir_misses;
          s_cache_entries = Lru.length t.cache;
          s_cache_bytes = Lru.bytes t.cache;
          s_cache_evictions = Lru.evictions t.cache;
          s_inflight = t.inflight;
          s_conns = List.length t.conns;
          s_latency =
            {
              P.l_count = Histogram.count t.hist;
              l_p50_ms = p 50.0;
              l_p95_ms = p 95.0;
              l_p99_ms = p 99.0;
              l_max_ms = Histogram.max_ms t.hist;
            };
        })

(* returns the reply plus what to do with the connection afterwards *)
let handle_payload t payload =
  match Json.of_string payload with
  | exception Json.Parse_error msg ->
    (err P.Bad_request "request is not JSON: %s" msg, `Continue)
  | j -> (
    match P.request_of_json j with
    | Error msg -> (err P.Bad_request "%s" msg, `Continue)
    | Ok req -> (
      let kind_name =
        match req with
        | P.Advise _ -> "advise"
        | P.Bench _ -> "bench"
        | P.Check _ -> "check"
        | P.Stats -> "stats"
        | P.Shutdown -> "shutdown"
      in
      locked t (fun () -> bump t.req_counts kind_name);
      match req with
      | P.Stats -> (build_stats t, `Continue)
      | P.Shutdown -> (P.R_shutdown, `Stop)
      | P.Advise { src; scheme; args; deadline_ms } ->
        ( serve_compute t ~kind:`Advise ~src ~scheme ~backend:None ~args
            ~deadline_ms,
          `Continue )
      | P.Bench { src; scheme; backend; args; deadline_ms } ->
        ( serve_compute t ~kind:`Bench ~src ~scheme ~backend ~args ~deadline_ms,
          `Continue )
      | P.Check { src; relax; deadline_ms } ->
        ( serve_compute t ~kind:(`Check relax) ~src ~scheme:None ~backend:None
            ~args:[] ~deadline_ms,
          `Continue )))

let request_stop t =
  if not (Atomic.exchange t.stopping true) then begin
    t.cfg.log "drain requested";
    (* Waking a thread blocked in accept(2) is the hard part: close(2)
       from another thread does NOT unblock it on Linux (the in-flight
       syscall pins the descriptor), so shut the listener down and poke
       it with a throwaway connection; the accept loop re-checks the
       stopping flag on every wake-up. The fd itself is closed by
       [drain] after the loop has exited. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
       with Unix.Unix_error _ -> ());
      Unix.close fd
    with Unix.Unix_error _ -> ()
  end

let send oc reply =
  match P.write_frame oc (Json.to_string ~indent:false (P.json_of_reply reply)) with
  | () -> true
  | exception (Sys_error _ | Unix.Unix_error _) -> false

let conn_loop t id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match P.read_frame ic with
    | None -> ()
    | exception P.Framing_error msg ->
      (* the stream offset is unreliable now: reply and close *)
      count_error t P.Bad_request;
      ignore (send oc (err P.Bad_request "framing: %s" msg))
    | exception (Sys_error _ | Unix.Unix_error _) -> ()
    | Some payload ->
      let accepted =
        locked t (fun () ->
            if Atomic.get t.stopping then false
            else begin
              t.inflight <- t.inflight + 1;
              true
            end)
      in
      if not accepted then begin
        count_error t P.Shutting_down;
        ignore (send oc (err P.Shutting_down "daemon is draining"))
      end
      else begin
        let t0 = Unix.gettimeofday () in
        let reply, action = handle_payload t payload in
        (match reply with
        | P.R_error { code; _ } -> count_error t code
        | _ -> ());
        let written = send oc reply in
        locked t (fun () ->
            Histogram.record t.hist ((Unix.gettimeofday () -. t0) *. 1000.0);
            t.inflight <- t.inflight - 1;
            if t.inflight = 0 then Condition.broadcast t.drained);
        match action with
        | `Stop -> request_stop t
        | `Continue -> if written && not (Atomic.get t.stopping) then loop ()
      end
  in
  (try loop () with _ -> ());
  locked t (fun () -> t.conns <- List.filter (fun (i, _) -> i <> id) t.conns);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Accept loop and drain                                               *)
(* ------------------------------------------------------------------ *)

let refuse t code message cfd =
  count_error t code;
  let oc = Unix.out_channel_of_descr cfd in
  ignore (send oc (P.R_error { code; message }));
  try Unix.close cfd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec go () =
    if Atomic.get t.stopping then ()
    else
      match Unix.accept t.listen_fd with
      | exception
          Unix.Unix_error ((EBADF | EINVAL | EINTR | ECONNABORTED), _, _) ->
        go ()
      | exception Unix.Unix_error _ ->
        (* e.g. EMFILE: back off instead of spinning hot *)
        Unix.sleepf 0.01;
        go ()
      | cfd, _ ->
        (if Atomic.get t.stopping then
           refuse t P.Shutting_down "daemon is draining" cfd
         else
           let decision =
             locked t (fun () ->
                 if List.length t.conns >= t.cfg.max_conns then `Refuse
                 else begin
                   let id = t.next_conn in
                   t.next_conn <- id + 1;
                   t.conns <- (id, cfd) :: t.conns;
                   `Accept id
                 end)
           in
           match decision with
           | `Refuse ->
             refuse t P.Overloaded
               (Printf.sprintf "connection limit (%d) reached"
                  t.cfg.max_conns)
               cfd
           | `Accept id ->
             let th = Thread.create (fun () -> conn_loop t id cfd) () in
             locked t (fun () -> t.threads <- th :: t.threads));
        go ()
  in
  go ()

let drain t =
  locked t (fun () ->
      while t.inflight > 0 do
        Condition.wait t.drained t.lock
      done);
  (* every in-flight reply has been written; idle connections now read
     EOF and their threads exit *)
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun (_, fd) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  let threads = locked t (fun () -> t.threads) in
  List.iter (fun th -> try Thread.join th with _ -> ()) threads;
  Pool.shutdown t.pool;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  t.cfg.log "drained"

let run cfg =
  if cfg.jobs < 1 then invalid_arg "Server.run: jobs must be >= 1";
  if cfg.cache_mb < 1 then invalid_arg "Server.run: cache_mb must be >= 1";
  if cfg.max_conns < 1 then invalid_arg "Server.run: max_conns must be >= 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      pool = Pool.create ~jobs:cfg.jobs;
      listen_fd;
      stopping = Atomic.make false;
      lock = Mutex.create ();
      drained = Condition.create ();
      cache = Lru.create ~capacity_bytes:(cfg.cache_mb * 1024 * 1024);
      pending = Hashtbl.create 16;
      req_counts = Hashtbl.create 8;
      err_counts = Hashtbl.create 8;
      hist = Histogram.create ();
      result_hits = 0;
      result_misses = 0;
      ir_hits = 0;
      ir_misses = 0;
      inflight = 0;
      conns = [];
      threads = [];
      next_conn = 0;
      started = Unix.gettimeofday ();
    }
  in
  if cfg.handle_sigterm then
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop t));
  cfg.log
    (Printf.sprintf "listening on %s (jobs=%d, cache=%dMiB, max-conns=%d)"
       cfg.socket_path cfg.jobs cfg.cache_mb cfg.max_conns);
  accept_loop t;
  drain t
