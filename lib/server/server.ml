module Json = Slo_util.Json
module Lru = Slo_util.Lru
module Clock = Slo_util.Clock
module Histogram = Slo_util.Histogram
module Pool = Slo_exec.Pool
module P = Protocol
module D = Slo_core.Driver
module H = Slo_core.Heuristics
module Adv = Slo_core.Advisor
module Codec = Slo_core.Codec
module Tune = Slo_tune.Tune
module W = Slo_profile.Weights

type config = {
  socket_path : string;
  listen : (string * int) option;
  jobs : int;
  shards : int;
  window : int;
  cache_mb : int;
  cache_dir : string option;
  max_conns : int;
  high_watermark : int;
  low_watermark : int;
  handle_sigterm : bool;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    listen = None;
    jobs = Pool.default_jobs ();
    shards = max 1 (min 4 (Domain.recommended_domain_count () - 1));
    window = 32;
    cache_mb = 64;
    cache_dir = None;
    max_conns = 64;
    high_watermark = 0;
    low_watermark = 0;
    handle_sigterm = true;
    log = ignore;
  }

(* one LRU holds all three in-memory key spaces; the "ir:"/"res:"/"frm:"
   key prefixes keep them disjoint *)
type cached =
  | Cir of Ir.program
  | Creply of P.reply
  | Craw of { rk : string; body : string }
      (* [rk] is the request kind for the stats counters; [body] the
         serialized success reply with [cached:true] and no id *)

type listener = {
  l_fd : Unix.file_descr;
  l_poke : Unix.sockaddr; (* where a throwaway connect wakes accept *)
  l_tcp : bool;
}

type t = {
  cfg : config;
  pool : Pool.t;
  listeners : listener list;
  hi_mark : int;
  lo_mark : int;
  stopping : bool Atomic.t;
  (* self-pipe: [request_stop] (possibly inside a signal handler, where
     taking a mutex could self-deadlock) writes one byte; [run]'s main
     thread blocks reading it *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  lock : Mutex.t; (* guards every mutable field below *)
  drained : Condition.t; (* broadcast when inflight drops to 0 *)
  cache : (string, cached) Lru.t;
  disk : Diskcache.t option;
  pending : (string, P.reply Pool.future) Hashtbl.t;
  req_counts : (string, int) Hashtbl.t;
  err_counts : (string, int) Hashtbl.t;
  hist : Histogram.t;
  mutable result_hits : int;
  mutable result_misses : int;
  mutable ir_hits : int;
  mutable ir_misses : int;
  mutable disk_hits : int;
  mutable disk_misses : int;
  mutable queued : int; (* compute jobs submitted, not yet finished *)
  mutable shedding : bool;
  mutable inflight : int;
  mutable conns : (int * Unix.file_descr) list;
  mutable threads : Thread.t list;
  mutable next_conn : int;
  started : float; (* wall clock, display only *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let count_error t code = locked t (fun () -> bump t.err_counts (P.error_code_name code))

let err code fmt =
  Printf.ksprintf (fun message -> P.R_error { code; message }) fmt

(* ------------------------------------------------------------------ *)
(* Compute jobs (run on pool worker domains)                           *)
(* ------------------------------------------------------------------ *)

let heap_bytes v = Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)

let get_ir t ~digest ~src =
  let key = "ir:" ^ digest in
  let hit =
    locked t (fun () ->
        match Lru.find t.cache key with
        | Some (Cir p) ->
          t.ir_hits <- t.ir_hits + 1;
          Some p
        | Some (Creply _ | Craw _) -> assert false (* key spaces are disjoint *)
        | None ->
          t.ir_misses <- t.ir_misses + 1;
          None)
  in
  match hit with
  | Some p -> p
  | None ->
    let prog = D.compile ~verify:true src in
    locked t (fun () ->
        ignore (Lru.add t.cache key (Cir prog) ~bytes:(heap_bytes prog)));
    prog

let scheme_of_name name = Result.to_option (Codec.scheme_of_string name)

(* display label for sources shipped over the wire; the client re-labels
   lines with the real path when it has one *)
let wire_uri = "<input>"

let compute t ~kind ~digest ~src ~scheme ~backend ~args =
  let prog = get_ir t ~digest ~src in
  match kind with
  | `Check relax ->
    (* purely static: no profile collection, no execution *)
    let diags = Slo_advice.Advice.check ~relax prog in
    P.R_check
      {
        c_report = Slo_advice.Advice.render ~src ~file:wire_uri diags;
        c_sarif = Slo_advice.Sarif.to_string [ (wire_uri, diags) ];
        c_invalidating = Slo_advice.Advice.invalidating_count diags;
        c_cached = false;
      }
  | (`Advise _ | `Bench | `Tune _) as kind -> (
  let feedback =
    if W.needs_profile scheme then
      Some (fst (Slo_profile.Collect.collect ~args prog))
    else None
  in
  match kind with
  | `Tune (beam, budget_ms) ->
    (* jobs=1: a busy daemon gets its parallelism from concurrent tune
       requests occupying pool workers, not from one request
       oversubscribing the domains — and the search is deterministic at
       any jobs anyway *)
    let cfg = Tune.default_config ~scheme ~feedback in
    let cfg =
      { cfg with
        Tune.args; backend; budget_ms;
        beam = Option.value ~default:cfg.Tune.beam beam }
    in
    let r = Tune.search prog cfg in
    P.R_tune
      {
        t_plans = List.map Codec.plan_to_string r.Tune.t_found;
        t_heuristic_plans = List.map Codec.plan_to_string r.t_heuristic;
        t_baseline_cycles = r.t_baseline_cycles;
        t_heuristic_cycles = r.t_heuristic_cycles;
        t_found_cycles = r.t_found_cycles;
        t_improved = r.t_improved;
        t_explored = r.t_explored;
        t_total = r.t_total;
        t_complete = r.t_complete;
        t_cached = false;
      }
  | `Advise pool ->
    let leg, aff = D.analyze prog ~scheme ~feedback in
    let decisions = H.decide ~pool prog leg aff ~scheme in
    let dcache =
      Option.map
        (fun fb ->
          (Slo_profile.Matching.apply prog fb).Slo_profile.Matching.instr_dcache)
        feedback
    in
    let adv = Adv.build prog leg aff ~decisions ~dcache in
    P.R_advise { a_report = Adv.report adv; a_cached = false }
  | `Bench ->
    let ev = D.evaluate ~args ~verify:true ~jobs:1 ~backend ~scheme ~feedback prog in
    P.R_bench
      {
        b_cycles_before = ev.D.e_before.D.m_cycles;
        b_cycles_after = ev.D.e_after.D.m_cycles;
        b_speedup_pct = ev.D.e_speedup_pct;
        b_plans =
          List.filter_map
            (fun (d : H.decision) -> Option.map H.plan_summary d.d_plan)
            ev.D.e_decisions;
        b_cached = false;
      })

(* queued-job bookkeeping: the watermark pair is a hysteresis band so
   the shedding decision does not flap once per job around one
   threshold *)
let note_submitted t =
  (* caller holds t.lock *)
  t.queued <- t.queued + 1;
  if (not t.shedding) && t.queued >= t.hi_mark then begin
    t.shedding <- true;
    t.cfg.log
      (Printf.sprintf "overload: %d jobs queued (high watermark %d), \
                       shedding bench" t.queued t.hi_mark)
  end

let note_finished t =
  (* caller holds t.lock *)
  t.queued <- t.queued - 1;
  if t.shedding && t.queued <= t.lo_mark then begin
    t.shedding <- false;
    t.cfg.log
      (Printf.sprintf "overload: backlog at %d (low watermark %d), \
                       admitting bench again" t.queued t.lo_mark)
  end

(* Everything a request can legitimately fail with becomes a structured
   error reply; only true surprises surface as [worker_crash]. The job
   always cleans its [pending] slot and caches successful replies (in
   memory, and persistently when a disk cache is configured). *)
let job t ~key ~kind ~digest ~src ~scheme ~backend ~args () =
  let reply =
    match compute t ~kind ~digest ~src ~scheme ~backend ~args with
    | r -> r
    | exception Slo_minic.Lexer.Error (msg, loc) ->
      err P.Parse_error "%s: lexical error: %s" (Slo_minic.Loc.to_string loc) msg
    | exception Slo_minic.Parser.Error (msg, loc) ->
      err P.Parse_error "%s: syntax error: %s" (Slo_minic.Loc.to_string loc) msg
    | exception Slo_minic.Typecheck.Error (msg, loc) ->
      err P.Type_error "%s: type error: %s" (Slo_minic.Loc.to_string loc) msg
    | exception Lower.Unsupported (msg, loc) ->
      err P.Legality_error "%s: unsupported: %s" (Slo_minic.Loc.to_string loc) msg
    | exception Verify.Ill_formed errs ->
      err P.Legality_error "ill-formed IR:\n%s" (Verify.report errs)
    | exception Slo_vm.Rt.Runtime_error msg ->
      (* bad [args] for the program's [main] (wrong arity, divide by
         zero, OOB access) — the request is at fault, not the worker *)
      err P.Bad_request "runtime error: %s" msg
    | exception e -> err P.Worker_crash "%s" (Printexc.to_string e)
  in
  let success =
    match reply with
    | P.R_advise _ | P.R_bench _ | P.R_check _ | P.R_tune _ -> true
    | _ -> false
  in
  locked t (fun () ->
      Hashtbl.remove t.pending key;
      note_finished t;
      if success then
        ignore (Lru.add t.cache key (Creply reply) ~bytes:(heap_bytes reply)));
  (match (t.disk, success) with
  | Some d, true ->
    Diskcache.store d ~key (Json.to_string ~indent:false (P.json_of_reply reply))
  | _ -> ());
  reply

(* ------------------------------------------------------------------ *)
(* Request handling (runs on connection reader + waiter threads)       *)
(* ------------------------------------------------------------------ *)

let mark_cached = function
  | P.R_advise a -> P.R_advise { a with a_cached = true }
  | P.R_bench b -> P.R_bench { b with b_cached = true }
  | P.R_check c -> P.R_check { c with c_cached = true }
  | P.R_tune x -> P.R_tune { x with t_cached = true }
  | r -> r

let cached_flag = function
  | P.R_advise a -> a.a_cached
  | P.R_bench b -> b.b_cached
  | P.R_check c -> c.c_cached
  | P.R_tune x -> x.t_cached
  | _ -> true

(* a request is either answerable now or pending on the pool *)
type outcome =
  | Now of P.reply
  | Wait of P.reply Pool.future * float option (* deadline *)

let probe_disk t ~key =
  match t.disk with
  | None -> None
  | Some d -> (
    match Diskcache.find d ~key with
    | None ->
      locked t (fun () -> t.disk_misses <- t.disk_misses + 1);
      None
    | Some payload -> (
      match P.reply_of_json (Json.of_string payload) with
      | Ok reply ->
        locked t (fun () ->
            t.disk_hits <- t.disk_hits + 1;
            ignore (Lru.add t.cache key (Creply reply) ~bytes:(heap_bytes reply)));
        Some reply
      | Error _ | (exception Json.Parse_error _) ->
        (* a stale-format record: treat as a miss *)
        locked t (fun () -> t.disk_misses <- t.disk_misses + 1);
        None))

let serve_compute t ~kind ~src ~scheme ~backend ~args ~deadline_ms =
  let scheme_name = Option.value ~default:"ispbo" scheme in
  match scheme_of_name scheme_name with
  | None -> Now (err P.Bad_request "unknown scheme %S" scheme_name)
  | Some scheme when W.is_dcache scheme ->
    Now
      (err P.Bad_request
         "d-cache scheme %S attributes PMU samples, not block weights; it is \
          not servable over the wire"
         scheme_name)
  | Some scheme -> (
    let backend_name =
      Option.value ~default:(Slo_vm.Backend.to_string Slo_vm.Backend.default)
        backend
    in
    match Slo_vm.Backend.of_string backend_name with
    | None -> Now (err P.Bad_request "unknown backend %S" backend_name)
    | Some backend -> (
      let digest = Digest.to_hex (Digest.string src) in
      let key =
        Printf.sprintf "res:%s:%s:%s:%s:%s" digest
          (match kind with
          | `Advise false -> "advise"
          | `Advise true -> "advise-pool"
          | `Bench -> "bench"
          | `Check false -> "check"
          | `Check true -> "check-relax"
          | `Tune (beam, budget_ms) ->
            (* budget and beam shape the (deterministic) answer, so they
               are part of the result identity *)
            Printf.sprintf "tune[beam=%s,budget=%s]"
              (match beam with None -> "-" | Some b -> string_of_int b)
              (match budget_ms with
              | None -> "-"
              | Some f -> Printf.sprintf "%g" f))
          (W.name scheme) (Slo_vm.Backend.to_string backend)
          (String.concat "," (List.map string_of_int args))
      in
      let mem =
        locked t (fun () ->
            match Lru.find t.cache key with
            | Some (Creply r) ->
              t.result_hits <- t.result_hits + 1;
              Some r
            | Some (Cir _ | Craw _) -> assert false
            | None ->
              t.result_misses <- t.result_misses + 1;
              None)
      in
      match mem with
      | Some r -> Now (mark_cached r)
      | None -> (
        match probe_disk t ~key with
        | Some r -> Now (mark_cached r)
        | None -> (
          let decision =
            locked t (fun () ->
                (* recheck: a coalesced job or another connection's disk
                   load may have filled the slot during the disk probe *)
                match Lru.find t.cache key with
                | Some (Creply r) -> `Hit r
                | Some (Cir _ | Craw _) -> assert false
                | None -> (
                  match Hashtbl.find_opt t.pending key with
                  | Some f -> `Coalesce f
                  | None ->
                    let sheddable =
                      match kind with `Bench | `Tune _ -> true | _ -> false
                    in
                    if t.shedding && sheddable then `Shed t.queued
                    else begin
                      note_submitted t;
                      `Submit
                    end))
          in
          match decision with
          | `Hit r -> Now (mark_cached r)
          | `Coalesce f -> Wait (f, deadline_ms)
          | `Shed depth ->
            Now
              (err P.Overloaded
                 "overloaded: %d compute jobs queued; bench and tune \
                  requests are shed until the backlog clears (cached \
                  replies are still served)"
                 depth)
          | `Submit ->
            let f =
              Pool.submit t.pool
                (job t ~key ~kind ~digest ~src ~scheme ~backend ~args)
            in
            locked t (fun () -> Hashtbl.add t.pending key f);
            Wait (f, deadline_ms)))))

let build_stats t =
  locked t (fun () ->
      let sorted tbl =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
      in
      let p q = Histogram.percentile t.hist q in
      P.R_stats
        {
          s_uptime_s = Unix.gettimeofday () -. t.started;
          s_requests = sorted t.req_counts;
          s_errors = sorted t.err_counts;
          s_result_hits = t.result_hits;
          s_result_misses = t.result_misses;
          s_ir_hits = t.ir_hits;
          s_ir_misses = t.ir_misses;
          s_disk_hits = t.disk_hits;
          s_disk_misses = t.disk_misses;
          s_cache_entries = Lru.length t.cache;
          s_cache_bytes = Lru.bytes t.cache;
          s_cache_evictions = Lru.evictions t.cache;
          s_inflight = t.inflight;
          s_queued = t.queued;
          s_shedding = t.shedding;
          s_conns = List.length t.conns;
          s_latency =
            {
              P.l_count = Histogram.count t.hist;
              l_p50_ms = p 50.0;
              l_p95_ms = p 95.0;
              l_p99_ms = p 99.0;
              l_max_ms = Histogram.max_ms t.hist;
            };
        })

(* [request_stop] may run inside the SIGTERM handler, which OCaml
   executes at a poll point on an arbitrary thread — possibly one that
   already holds [t.lock]. It must therefore never take a mutex: it
   only flips the atomic flag and wakes the acceptors, and [run]'s main
   thread notices via [Domain.join] returning. *)
let request_stop t =
  if not (Atomic.exchange t.stopping true) then begin
    t.cfg.log "drain requested";
    (* Waking threads blocked in accept(2) is the hard part: close(2)
       from another thread does NOT unblock them on Linux (the in-flight
       syscall pins the descriptor), so shut each listener down and poke
       it with throwaway connections — one per accept shard, since each
       poke wakes at most one acceptor; the accept loops re-check the
       stopping flag on every wake-up. The fds are closed by [drain]
       after the loops have exited. *)
    List.iter
      (fun l ->
        (try Unix.shutdown l.l_fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        for _ = 1 to t.cfg.shards do
          try
            let dom = if l.l_tcp then Unix.PF_INET else Unix.PF_UNIX in
            let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
            (try Unix.connect fd l.l_poke with Unix.Unix_error _ -> ());
            Unix.close fd
          with Unix.Unix_error _ -> ()
        done)
      t.listeners;
    (try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ())
  end

(* ------------------------------------------------------------------ *)
(* Connections: pipelined reader + out-of-order completers             *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_fd : Unix.file_descr;
  c_ic : in_channel;
  c_oc : out_channel;
  c_wlock : Mutex.t; (* guards the outbound queue below *)
  c_wcond : Condition.t;
  (* (id, body) replies awaiting the writer thread, which splices the
     id while writing instead of copying the shared body *)
  c_outq : (int option * string) Queue.t;
  mutable c_wclosed : bool; (* no further writes: reader gone or pipe broke *)
  c_window : Semaphore.Counting.t; (* free in-flight slots *)
}

(* Enqueue one reply frame for the connection's writer thread. Replies
   from concurrent completers interleave at frame granularity, and the
   writer batches whatever has accumulated under a single flush, so
   back-to-back completions of pipelined requests cost one write
   syscall, not one each. *)
let send_raw conn ?id payload =
  Mutex.lock conn.c_wlock;
  let ok = not conn.c_wclosed in
  if ok then begin
    Queue.add (id, payload) conn.c_outq;
    Condition.signal conn.c_wcond
  end;
  Mutex.unlock conn.c_wlock;
  ok

(* drain the queue in batches; one flush per batch. Exits once the
   reader has marked the connection closed and the queue is empty. *)
let writer_loop conn =
  let batch = Queue.create () in
  let rec go () =
    Mutex.lock conn.c_wlock;
    while Queue.is_empty conn.c_outq && not conn.c_wclosed do
      Condition.wait conn.c_wcond conn.c_wlock
    done;
    Queue.transfer conn.c_outq batch;
    let closing = conn.c_wclosed in
    Mutex.unlock conn.c_wlock;
    match
      if not (Queue.is_empty batch) then begin
        Queue.iter
          (fun (id, body) -> P.write_frame_id conn.c_oc ?id body)
          batch;
        flush conn.c_oc
      end
    with
    | () ->
      Queue.clear batch;
      if not closing then go ()
    | exception (Sys_error _ | Unix.Unix_error _ | P.Framing_error _) ->
      (* peer is gone: stop accepting frames so completers drop their
         replies instead of growing a queue nobody drains *)
      Mutex.lock conn.c_wlock;
      conn.c_wclosed <- true;
      Queue.clear conn.c_outq;
      Mutex.unlock conn.c_wlock
  in
  go ()

let serialize reply = Json.to_string ~indent:false (P.json_of_reply reply)

(* finish one admitted request: error accounting, frame-cache insert,
   reply write, latency record, slot release. Runs on the reader thread
   (fast paths) or on a waiter thread (pool-scheduled requests). *)
let finish t conn ~t0 ~id ~frame_key ~rk reply =
  (match reply with
  | P.R_error { code; _ } -> count_error t code
  | _ -> ());
  let body = serialize reply in
  (match (frame_key, reply) with
  | Some fk, (P.R_advise _ | P.R_bench _ | P.R_check _) ->
    (* memoize the id-independent request bytes -> marked-cached reply
       bytes, so a byte-identical repeat skips the JSON parse *)
    let cached_body =
      if cached_flag reply then body else serialize (mark_cached reply)
    in
    locked t (fun () ->
        ignore
          (Lru.add t.cache ("frm:" ^ fk)
             (Craw { rk; body = cached_body })
             ~bytes:(String.length cached_body + String.length fk + 64)))
  | _ -> ());
  ignore (send_raw conn ?id body);
  locked t (fun () ->
      Histogram.record t.hist (Clock.elapsed_ms ~since:t0);
      t.inflight <- t.inflight - 1;
      if t.inflight = 0 then Condition.broadcast t.drained);
  Semaphore.Counting.release conn.c_window

(* decode and dispatch one already-admitted frame. [fast] carries the
   canonical id and id-stripped request bytes when the prefix scan
   succeeded. *)
let handle_frame t conn ~t0 ~fast payload =
  match Json.of_string payload with
  | exception Json.Parse_error msg ->
    let id = Option.map fst fast in
    finish t conn ~t0 ~id ~frame_key:None ~rk:""
      (err P.Bad_request "request is not JSON: %s" msg)
  | j -> (
    let id =
      match fast with Some (id, _) -> Some id | None -> P.id_of_frame j
    in
    (* frame-cache key: the id-independent request bytes. Without a
       canonical prefix the bytes are only id-independent when there is
       no id at all. *)
    let frame_key =
      match fast with
      | Some (_, rest) -> Some rest
      | None -> if id = None then Some payload else None
    in
    match P.request_of_json j with
    | Error msg ->
      finish t conn ~t0 ~id ~frame_key:None ~rk:""
        (err P.Bad_request "%s" msg)
    | Ok req -> (
      let rk =
        match req with
        | P.Advise _ -> "advise"
        | P.Bench _ -> "bench"
        | P.Check _ -> "check"
        | P.Tune _ -> "tune"
        | P.Stats -> "stats"
        | P.Shutdown -> "shutdown"
      in
      locked t (fun () -> bump t.req_counts rk);
      let finish_now = finish t conn ~t0 ~id ~frame_key ~rk in
      match req with
      | P.Stats -> finish t conn ~t0 ~id ~frame_key:None ~rk (build_stats t)
      | P.Shutdown ->
        finish t conn ~t0 ~id ~frame_key:None ~rk P.R_shutdown;
        request_stop t
      | P.Advise _ | P.Bench _ | P.Check _ | P.Tune _ -> (
        let kind, src, scheme, backend, args, deadline_ms =
          match req with
          | P.Advise { src; scheme; args; pool; deadline_ms } ->
            (`Advise pool, src, scheme, None, args, deadline_ms)
          | P.Bench { src; scheme; backend; args; deadline_ms } ->
            (`Bench, src, scheme, backend, args, deadline_ms)
          | P.Check { src; relax; deadline_ms } ->
            (`Check relax, src, None, None, [], deadline_ms)
          | P.Tune { src; scheme; backend; args; beam; deadline_ms } ->
            (* [deadline_ms] is the anytime search budget, enforced
               inside the search itself — the waiter below must await
               unboundedly, or a tight budget would race the transport
               timeout instead of returning the best-so-far plan *)
            (`Tune (beam, deadline_ms), src, scheme, backend, args, None)
          | P.Stats | P.Shutdown -> assert false
        in
        match serve_compute t ~kind ~src ~scheme ~backend ~args ~deadline_ms with
        | Now reply -> finish_now reply
        | Wait (fut, deadline) ->
          (* complete out of order on a waiter thread; the reader goes
             back to the socket immediately *)
          ignore
            (Thread.create
               (fun () ->
                 let res =
                   match deadline with
                   | None -> Some (Pool.await fut)
                   | Some ms -> Pool.await_timeout fut ~timeout_ms:ms
                 in
                 let reply =
                   match res with
                   | None ->
                     err P.Timeout
                       "deadline of %gms expired; the computation continues \
                        and will be cached"
                       (Option.get deadline)
                   | Some (Ok reply) -> reply
                   | Some (Error (e : Pool.error)) ->
                     err P.Worker_crash "%s" e.Pool.err_exn
                 in
                 finish_now reply)
               ()))))

let conn_loop t id conn =
  let writer = Thread.create writer_loop conn in
  let rec loop () =
    match P.read_frame conn.c_ic with
    | None -> ()
    | exception P.Framing_error msg ->
      (* the stream offset is unreliable now: reply and close *)
      count_error t P.Bad_request;
      ignore (send_raw conn (serialize (err P.Bad_request "framing: %s" msg)))
    | exception (Sys_error _ | Unix.Unix_error _) -> ()
    | Some payload ->
      (* backpressure: a full window parks the reader here until a
         completer releases a slot *)
      Semaphore.Counting.acquire conn.c_window;
      if Atomic.get t.stopping then begin
        count_error t P.Shutting_down;
        ignore
          (send_raw conn
             ?id:(Option.map fst (P.strip_id payload))
             (serialize (err P.Shutting_down "daemon is draining")));
        Semaphore.Counting.release conn.c_window
      end
      else begin
        let t0 = Clock.now_ns () in
        let fast = P.strip_id payload in
        (* Warm fast path: byte-identical request bytes -> cached reply
           bytes, no JSON parse, one global-lock section. It skips the
           inflight count on purpose: drain only needs inflight for
           completions that outlive their reader thread, and this one
           runs on the reader itself — drain joins the reader, which
           joins the writer, which flushes the reply first. *)
        let frame_hit =
          (* keyed by the raw id-independent request bytes (no hashing
             beyond the table's own): entries are only ever inserted for
             id-less or canonical-id frames, so a hit is byte-identical
             request semantics *)
          let rest = match fast with Some (_, r) -> r | None -> payload in
          let fk = "frm:" ^ rest in
          locked t (fun () ->
              match Lru.find t.cache fk with
              | Some (Craw { rk; body }) ->
                bump t.req_counts rk;
                t.result_hits <- t.result_hits + 1;
                Histogram.record t.hist (Clock.elapsed_ms ~since:t0);
                Some body
              | Some (Cir _ | Creply _) -> assert false
              | None -> None)
        in
        (match frame_hit with
        | Some body ->
          ignore (send_raw conn ?id:(Option.map fst fast) body);
          Semaphore.Counting.release conn.c_window
        | None ->
          locked t (fun () -> t.inflight <- t.inflight + 1);
          handle_frame t conn ~t0 ~fast payload);
        if not (Atomic.get t.stopping) then loop ()
      end
  in
  (try loop () with _ -> ());
  locked t (fun () -> t.conns <- List.filter (fun (i, _) -> i <> id) t.conns);
  (* let the writer flush everything already queued, then close *)
  Mutex.lock conn.c_wlock;
  conn.c_wclosed <- true;
  Condition.signal conn.c_wcond;
  Mutex.unlock conn.c_wlock;
  (try Thread.join writer with _ -> ());
  try Unix.close conn.c_fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Accept loops and drain                                              *)
(* ------------------------------------------------------------------ *)

let refuse t code message cfd =
  count_error t code;
  let oc = Unix.out_channel_of_descr cfd in
  (match
     P.write_frame oc (Json.to_string ~indent:false (P.json_of_reply (P.R_error { code; message })))
   with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) -> ());
  try Unix.close cfd with Unix.Unix_error _ -> ()

(* one accept loop; [shards] of these run concurrently per listener,
   each in its own domain. A connection's reader thread is created in
   the accepting domain, so frame parsing of different connections can
   proceed in parallel. *)
let accept_loop t l =
  let rec go () =
    if Atomic.get t.stopping then ()
    else
      match Unix.accept l.l_fd with
      | exception
          Unix.Unix_error ((EBADF | EINVAL | EINTR | ECONNABORTED), _, _) ->
        go ()
      | exception Unix.Unix_error _ ->
        (* e.g. EMFILE: back off instead of spinning hot *)
        Unix.sleepf 0.01;
        go ()
      | cfd, _ ->
        (if Atomic.get t.stopping then
           refuse t P.Shutting_down "daemon is draining" cfd
         else
           let decision =
             locked t (fun () ->
                 if List.length t.conns >= t.cfg.max_conns then `Refuse
                 else begin
                   let id = t.next_conn in
                   t.next_conn <- id + 1;
                   t.conns <- (id, cfd) :: t.conns;
                   `Accept id
                 end)
           in
           match decision with
           | `Refuse ->
             refuse t P.Overloaded
               (Printf.sprintf "connection limit (%d) reached"
                  t.cfg.max_conns)
               cfd
           | `Accept id ->
             if l.l_tcp then
               (try Unix.setsockopt cfd Unix.TCP_NODELAY true
                with Unix.Unix_error _ -> ());
             let conn =
               {
                 c_fd = cfd;
                 c_ic = Unix.in_channel_of_descr cfd;
                 c_oc = Unix.out_channel_of_descr cfd;
                 c_wlock = Mutex.create ();
                 c_wcond = Condition.create ();
                 c_outq = Queue.create ();
                 c_wclosed = false;
                 c_window = Semaphore.Counting.make t.cfg.window;
               }
             in
             let th = Thread.create (fun () -> conn_loop t id conn) () in
             locked t (fun () -> t.threads <- th :: t.threads));
        go ()
  in
  go ()

let drain t shard_domains =
  locked t (fun () ->
      while t.inflight > 0 do
        Condition.wait t.drained t.lock
      done);
  (* Every in-flight reply has been written. Shut down the read half of
     every connection so idle reader threads wake with EOF and exit —
     this must happen BEFORE joining the shard domains: reader threads
     live on those domains, and a domain does not terminate until all
     its threads do, so joining first would deadlock on any connection
     a client is still holding open. *)
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun (_, fd) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter Domain.join shard_domains;
  let threads = locked t (fun () -> t.threads) in
  List.iter (fun th -> try Thread.join th with _ -> ()) threads;
  Pool.shutdown t.pool;
  List.iter
    (fun l -> try Unix.close l.l_fd with Unix.Unix_error _ -> ())
    t.listeners;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  t.cfg.log "drained"

let resolve_host host =
  if host = "" || host = "*" then Unix.inet_addr_any
  else
    match Unix.inet_addr_of_string host with
    | addr -> addr
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        raise
          (Unix.Unix_error
             (Unix.EINVAL, "resolve", Printf.sprintf "unknown host %S" host))
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let bind_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 256
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { l_fd = fd; l_poke = Unix.ADDR_UNIX path; l_tcp = false }

let bind_tcp (host, port) =
  let addr = resolve_host host in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 256
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (* poke a wildcard listener via loopback; the bound port survives a
     [port = 0] ephemeral bind *)
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let poke_addr =
    if addr = Unix.inet_addr_any then Unix.inet_addr_loopback else addr
  in
  { l_fd = fd; l_poke = Unix.ADDR_INET (poke_addr, bound_port); l_tcp = true }

let run cfg =
  if cfg.jobs < 1 then invalid_arg "Server.run: jobs must be >= 1";
  if cfg.shards < 1 then invalid_arg "Server.run: shards must be >= 1";
  if cfg.window < 1 then invalid_arg "Server.run: window must be >= 1";
  if cfg.cache_mb < 1 then invalid_arg "Server.run: cache_mb must be >= 1";
  if cfg.max_conns < 1 then invalid_arg "Server.run: max_conns must be >= 1";
  if cfg.high_watermark < 0 || cfg.low_watermark < 0 then
    invalid_arg "Server.run: watermarks must be >= 0";
  let hi_mark =
    if cfg.high_watermark > 0 then cfg.high_watermark else max 8 (4 * cfg.jobs)
  in
  let lo_mark =
    if cfg.low_watermark > 0 || (cfg.high_watermark > 0 && cfg.low_watermark = 0)
    then cfg.low_watermark
    else hi_mark / 2
  in
  if lo_mark >= hi_mark then
    invalid_arg "Server.run: low watermark must be below the high watermark";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* Serving allocates heavily (frames, reply bodies) and OCaml 5's
     minor collection stops the world across every domain. The default
     256 KiB minor heap forces hundreds of collections per second at
     saturation, which dominates tail latency on small machines. Grow
     it once, before the pool and shard domains are spawned, so they
     all inherit the setting. Never shrink a user-tuned heap. *)
  let gc = Gc.get () in
  Gc.set
    {
      gc with
      Gc.minor_heap_size = max gc.Gc.minor_heap_size (4 * 1024 * 1024);
      (* Lazier major collection trades heap size for fewer marking
         slices on the serving path; measured p99 at saturation drops
         ~2x over the default 120. Values past ~200 let the heap balloon
         until compaction stalls dominate — do not chase this knob. *)
      Gc.space_overhead = max gc.Gc.space_overhead 200;
    };
  let listeners =
    let u = bind_unix cfg.socket_path in
    match cfg.listen with
    | None -> [ u ]
    | Some hp -> (
      match bind_tcp hp with
      | l -> [ u; l ]
      | exception e ->
        (try Unix.close u.l_fd with Unix.Unix_error _ -> ());
        (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
        raise e)
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      cfg;
      pool = Pool.create ~jobs:cfg.jobs;
      listeners;
      hi_mark;
      lo_mark;
      stopping = Atomic.make false;
      stop_r;
      stop_w;
      lock = Mutex.create ();
      drained = Condition.create ();
      cache = Lru.create ~capacity_bytes:(cfg.cache_mb * 1024 * 1024);
      disk = Option.map (fun dir -> Diskcache.create ~dir) cfg.cache_dir;
      pending = Hashtbl.create 16;
      req_counts = Hashtbl.create 8;
      err_counts = Hashtbl.create 8;
      hist = Histogram.create ();
      result_hits = 0;
      result_misses = 0;
      ir_hits = 0;
      ir_misses = 0;
      disk_hits = 0;
      disk_misses = 0;
      queued = 0;
      shedding = false;
      inflight = 0;
      conns = [];
      threads = [];
      next_conn = 0;
      started = Unix.gettimeofday ();
    }
  in
  if cfg.handle_sigterm then
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop t));
  cfg.log
    (Printf.sprintf
       "listening on %s%s (jobs=%d, shards=%d, window=%d, cache=%dMiB%s, \
        max-conns=%d, watermarks=%d/%d)"
       cfg.socket_path
       (match cfg.listen with
       | None -> ""
       | Some (h, p) -> Printf.sprintf " and %s:%d" h p)
       cfg.jobs cfg.shards cfg.window cfg.cache_mb
       (match cfg.cache_dir with
       | None -> ""
       | Some d -> Printf.sprintf " + disk %s" d)
       cfg.max_conns hi_mark lo_mark);
  (* accept loops run on their own domains so different connections'
     frame parsing does not serialize on one runtime lock *)
  let shard_domains =
    List.concat_map
      (fun l ->
        List.init cfg.shards (fun _ -> Domain.spawn (fun () -> accept_loop t l)))
      t.listeners
  in
  (* block until [request_stop] (signal handler or shutdown request)
     writes the stop byte, then tear down *)
  let buf = Bytes.create 1 in
  let rec wait_stop () =
    match Unix.read t.stop_r buf 0 1 with
    | _ -> ()
    | exception Unix.Unix_error (EINTR, _, _) ->
      if not (Atomic.get t.stopping) then wait_stop ()
  in
  wait_stop ();
  drain t shard_domains
