(** The layout-advice daemon.

    A long-running server speaking {!Protocol} over a Unix-domain
    socket and, optionally, TCP ([listen]): clients send Mini-C source
    inline, the server answers with advisory reports ([advise]),
    before/after measurements ([bench]) or diagnostics ([check]), keyed
    by a content-addressed cache hierarchy:

    - [digest(request bytes)] → serialized reply (the {e frame cache} —
      a warm repeat of byte-identical request bytes is served without
      parsing the request at all; the per-request ["id"] field is
      spliced around it),
    - [(digest(src), kind, scheme, backend, args)] → finished reply
      (the in-memory result LRU),
    - the same key → serialized reply on disk under [cache_dir] (the
      persistent layer, see {!Diskcache} — restarts and fleets sharing
      a directory start warm), and
    - [digest(src)] → compiled and verified IR.

    Misses are scheduled onto a {!Slo_exec.Pool} of worker domains, and
    identical concurrent requests coalesce onto one in-flight
    computation.

    Concurrency model: each listener's accept loop is replicated across
    [shards] domains; a connection is owned by the domain that accepted
    it, so frame reading and JSON parsing of different connections run
    in parallel. Per connection, one reader thread reads frames and
    serves fast-path replies inline; requests that go to the compute
    pool are completed by a per-request waiter thread, so {e replies
    may complete out of order} (correlated by request id) and a slow
    [bench] never blocks a cached [advise] behind it. The reader admits
    at most [window] requests in flight per connection — beyond that it
    stops reading, which is the protocol's backpressure.

    Robustness semantics:

    - {b deadlines}: a request's [deadline_ms] bounds the wait, not the
      computation — on expiry the client gets a [timeout] error while
      the job runs on and its result still enters the cache. Deadlines
      and latency histograms use the monotonic clock
      ({!Slo_util.Clock}); wall time is kept only for [started]/uptime.
    - {b structured errors}: Mini-C parse, typecheck, lowering/verifier
      and worker-crash failures each map to a distinct error code; a
      failed request never tears down the connection.
    - {b admission control}: when the compute backlog reaches the high
      watermark the server sheds [bench] misses with an [overloaded]
      reply (cached [bench] and all [advise]/[check] are still served)
      until the backlog falls to the low watermark.
    - {b connection limit}: accepts beyond [max_conns] get an
      [overloaded] reply and an immediate close.
    - {b graceful drain}: on SIGTERM or a [shutdown] request the
      listeners close first, in-flight requests run to completion and
      their replies are delivered, idle connections are then closed,
      the pool is joined and the socket path unlinked before {!run}
      returns. *)

type config = {
  socket_path : string;  (** Unix-domain listener (always on) *)
  listen : (string * int) option;
      (** additional TCP listener, [(host, port)]; [host] may be an
          IPv4 literal, ["localhost"] or a resolvable name *)
  jobs : int;            (** worker domains for the compute pool *)
  shards : int;          (** accept/reader domains per listener *)
  window : int;          (** per-connection in-flight request cap *)
  cache_mb : int;        (** LRU budget for IR + results, in MiB *)
  cache_dir : string option;
      (** persistent reply cache directory; [None] disables the layer *)
  max_conns : int;       (** concurrent connections before [overloaded] *)
  high_watermark : int;  (** queued jobs that start shedding; 0 = auto *)
  low_watermark : int;   (** queued jobs that stop shedding; 0 = auto *)
  handle_sigterm : bool; (** install the SIGTERM drain handler *)
  log : string -> unit;  (** progress lines; [ignore] to silence *)
}

val default_config : socket_path:string -> config
(** [listen = None], [jobs = Slo_exec.Pool.default_jobs ()],
    [shards = max 1 (min 4 (recommended_domain_count - 1))],
    [window = 32], [cache_mb = 64], [cache_dir = None],
    [max_conns = 64], watermarks auto ([high = max 8 (4*jobs)],
    [low = high/2]), [handle_sigterm = true], [log = ignore]. *)

val run : config -> unit
(** Bind, serve until drained, clean up, return. Raises
    [Invalid_argument] on a non-positive [jobs]/[shards]/[window]/
    [cache_mb]/[max_conns] or [low_watermark > high_watermark];
    [Unix.Unix_error] if a listener cannot be bound. SIGPIPE is set to
    ignore (a server cannot survive otherwise). Safe to call from a
    background thread (set [handle_sigterm = false] to leave process
    signal dispositions alone — the in-process tests and the load
    generator's self-spawn mode do this). *)
