(** The layout-advice daemon.

    A long-running server over a Unix-domain socket speaking
    {!Protocol}: clients send Mini-C source inline, the server answers
    with advisory reports ([advise]) or before/after measurements
    ([bench]), keyed by a content-addressed LRU cache

    - [digest(src)] → compiled and verified IR, and
    - [(digest(src), scheme, backend, args)] → finished reply,

    so repeated traffic over the same sources (the common case as code
    evolves under an editor or CI) costs one cache probe. Misses are
    scheduled onto a {!Slo_exec.Pool} of worker domains, and identical
    concurrent requests coalesce onto one in-flight computation, so
    clients batch across domains instead of stampeding.

    Robustness semantics:

    - {b deadlines}: a request's [deadline_ms] bounds the wait, not the
      computation — on expiry the client gets a [timeout] error while
      the job runs on and its result still enters the cache (see
      {!Slo_exec.Pool.await_timeout}).
    - {b structured errors}: Mini-C parse, typecheck, lowering/verifier
      and worker-crash failures each map to a distinct error code; a
      failed request never tears down the connection.
    - {b connection limit}: accepts beyond [max_conns] get an
      [overloaded] reply and an immediate close.
    - {b graceful drain}: on SIGTERM or a [shutdown] request, the
      listener closes first (new connections refused), in-flight
      requests run to completion and their replies are delivered, idle
      connections are then closed, the pool is joined and the socket
      path unlinked before {!run} returns. *)

type config = {
  socket_path : string;
  jobs : int;            (** worker domains for the compute pool *)
  cache_mb : int;        (** LRU budget for IR + results, in MiB *)
  max_conns : int;       (** concurrent connections before [overloaded] *)
  handle_sigterm : bool; (** install the SIGTERM drain handler *)
  log : string -> unit;  (** progress lines; [ignore] to silence *)
}

val default_config : socket_path:string -> config
(** [jobs = Slo_exec.Pool.default_jobs ()], [cache_mb = 64],
    [max_conns = 64], [handle_sigterm = true], [log = ignore]. *)

val run : config -> unit
(** Bind, serve until drained, clean up, return. Raises
    [Invalid_argument] on a non-positive [jobs]/[cache_mb]/[max_conns];
    [Unix.Unix_error] if the socket cannot be bound. SIGPIPE is set to
    ignore (a server cannot survive otherwise). Safe to call from a
    background thread (set [handle_sigterm = false] to leave process
    signal dispositions alone — the in-process tests and the load
    generator's self-spawn mode do this). *)
