type t = {
  cname : string;
  line : int;
  assoc : int;
  nsets : int;
  tags : int array;    (* nsets * assoc; -1 = invalid *)
  stamps : int array;  (* LRU timestamps *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let create ~name ~size ~line ~assoc =
  if line <= 0 || assoc <= 0 || size <= 0 then
    invalid_arg "Cache.create: non-positive parameter";
  if not (is_pow2 line) then invalid_arg "Cache.create: line not a power of 2";
  if size mod (line * assoc) <> 0 then
    invalid_arg "Cache.create: size not divisible by line*assoc";
  let nsets = size / (line * assoc) in
  {
    cname = name; line; assoc; nsets;
    tags = Array.make (nsets * assoc) (-1);
    stamps = Array.make (nsets * assoc) 0;
    tick = 0; hits = 0; misses = 0;
  }

let access t ~addr ~write:_ =
  let line_no = addr / t.line in
  let set = line_no mod t.nsets in
  let tag = line_no / t.nsets in
  let base = set * t.assoc in
  t.tick <- t.tick + 1;
  let found = ref (-1) in
  for w = 0 to t.assoc - 1 do
    if !found < 0 && t.tags.(base + w) = tag then found := w
  done;
  if !found >= 0 then begin
    t.stamps.(base + !found) <- t.tick;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* evict LRU way *)
    let victim = ref 0 in
    for w = 1 to t.assoc - 1 do
      if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- tag;
    t.stamps.(base + !victim) <- t.tick;
    false
  end

let line_size t = t.line
let name t = t.cname
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.tick <- 0;
  reset_stats t
