type t = {
  cname : string;
  line : int;
  assoc : int;
  nsets : int;
  line_shift : int;    (* log2 line; line is validated as a power of 2 *)
  set_mask : int;      (* nsets - 1 when nsets is a power of 2, else 0 *)
  set_shift : int;     (* log2 nsets when a power of 2, else -1 *)
  tags : int array;    (* nsets * assoc; -1 = invalid *)
  stamps : int array;  (* LRU timestamps *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  let rec go n x = if x <= 1 then n else go (n + 1) (x lsr 1) in
  go 0 x

let create ~name ~size ~line ~assoc =
  if line <= 0 || assoc <= 0 || size <= 0 then
    invalid_arg "Cache.create: non-positive parameter";
  if not (is_pow2 line) then invalid_arg "Cache.create: line not a power of 2";
  if size mod (line * assoc) <> 0 then
    invalid_arg "Cache.create: size not divisible by line*assoc";
  let nsets = size / (line * assoc) in
  {
    cname = name; line; assoc; nsets;
    line_shift = log2 line;
    set_mask = (if is_pow2 nsets then nsets - 1 else 0);
    set_shift = (if is_pow2 nsets then log2 nsets else -1);
    tags = Array.make (nsets * assoc) (-1);
    stamps = Array.make (nsets * assoc) 0;
    tick = 0; hits = 0; misses = 0;
  }

let access t ~addr ~write:_ =
  let line_no = addr lsr t.line_shift in
  (* set/tag split by shift/mask on the (usual) power-of-two set count;
     division only in the odd-set-count fallback *)
  let set, tag =
    if t.set_shift >= 0 then (line_no land t.set_mask, line_no lsr t.set_shift)
    else (line_no mod t.nsets, line_no / t.nsets)
  in
  let base = set * t.assoc in
  let tick = t.tick + 1 in
  t.tick <- tick;
  (* probe the set inline (a helper function call per way costs ~4x the
     probe itself without cross-function inlining); early-exits on the
     first match — indices are in bounds by construction:
     base + assoc <= nsets * assoc *)
  let tags = t.tags in
  let lim = base + t.assoc in
  let i = ref base in
  while !i < lim && Array.unsafe_get tags !i <> tag do incr i done;
  if !i < lim then begin
    Array.unsafe_set t.stamps !i tick;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* evict LRU way *)
    let victim = ref base in
    for w = base + 1 to lim - 1 do
      if t.stamps.(w) < t.stamps.(!victim) then victim := w
    done;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- tick;
    false
  end

(* [access] without statistics: tags, stamps and tick move exactly as
   they would under [access], but hit/miss counters stay put. This is
   the sampled simulator's fast-forward warming — state stays current
   while the window counters are not diluted by unrecorded traffic. *)
let touch t ~addr ~write:_ =
  let line_no = addr lsr t.line_shift in
  let set, tag =
    if t.set_shift >= 0 then (line_no land t.set_mask, line_no lsr t.set_shift)
    else (line_no mod t.nsets, line_no / t.nsets)
  in
  let base = set * t.assoc in
  let tick = t.tick + 1 in
  t.tick <- tick;
  let tags = t.tags in
  let lim = base + t.assoc in
  let i = ref base in
  while !i < lim && Array.unsafe_get tags !i <> tag do incr i done;
  if !i < lim then begin
    Array.unsafe_set t.stamps !i tick;
    true
  end
  else begin
    let victim = ref base in
    for w = base + 1 to lim - 1 do
      if t.stamps.(w) < t.stamps.(!victim) then victim := w
    done;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- tick;
    false
  end

let line_size t = t.line
let line_shift t = t.line_shift
let name t = t.cname
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.tick <- 0;
  reset_stats t
