type t = {
  cname : string;
  line : int;
  assoc : int;
  nsets : int;
  line_shift : int;    (* log2 line; line is validated as a power of 2 *)
  set_mask : int;      (* nsets - 1 when nsets is a power of 2, else 0 *)
  set_shift : int;     (* log2 nsets when a power of 2, else -1 *)
  tags : int array;    (* nsets * assoc; -1 = invalid, < -1 = synthetic *)
  stamps : int array;  (* LRU timestamps *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  (* footprint sketch for sampled skip correction: per-set line
     insertions (= fills, i.e. misses — recorded or warming) since the
     last [correct_skip], plus the fractional remainder it carries
     between corrections *)
  ins : int array;
  carry : int array;
  mutable synth_tag : int;  (* next synthetic fill tag; real tags are >= 0 *)
  (* probe kernels, selected once at creation: [k addr] probes the set,
     updates tick/stamps/tags (hit/miss counters too for [k_access],
     never for [k_touch]) and returns [(way_index lsl 1) lor hit] *)
  mutable k_access : int -> int;
  mutable k_touch : int -> int;
}

type kernel = [ `Auto | `Generic ]

let is_pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  let rec go n x = if x <= 1 then n else go (n + 1) (x lsr 1) in
  go 0 x

(* The generic probe: any associativity, shift/mask set indexing on
   power-of-two set counts with a divide fallback (the odd 6144-set
   Itanium L2). This is the reference kernel the specialized ones are
   property-tested against; the inline while-probe and first-minimal
   victim scan define the simulator's semantics. *)
let generic_kernel ~count c : int -> int =
  let tags = c.tags and stamps = c.stamps and ins = c.ins in
  let assoc = c.assoc and nsets = c.nsets in
  let lshift = c.line_shift and smask = c.set_mask and sshift = c.set_shift in
  fun addr ->
    let line_no = addr lsr lshift in
    let set, tag =
      if sshift >= 0 then (line_no land smask, line_no lsr sshift)
      else (line_no mod nsets, line_no / nsets)
    in
    let base = set * assoc in
    let tick = c.tick + 1 in
    c.tick <- tick;
    let lim = base + assoc in
    let i = ref base in
    while !i < lim && Array.unsafe_get tags !i <> tag do incr i done;
    if !i < lim then begin
      Array.unsafe_set stamps !i tick;
      if count then c.hits <- c.hits + 1;
      (!i lsl 1) lor 1
    end
    else begin
      if count then c.misses <- c.misses + 1;
      Array.unsafe_set ins set (Array.unsafe_get ins set + 1);
      (* evict the first way holding the minimal stamp *)
      let victim = ref base in
      for w = base + 1 to lim - 1 do
        if stamps.(w) < stamps.(!victim) then victim := w
      done;
      tags.(!victim) <- tag;
      stamps.(!victim) <- tick;
      !victim lsl 1
    end

(* Specialized kernels for power-of-two set counts at associativity 1,
   2, 4 or 8: the way probe is fully unrolled and the victim selection
   is a comparison tree instead of a scan. The tree preserves the
   generic kernel's first-minimal-stamp tie-break: every merge keeps
   the left (lower-index) candidate on equal stamps, and the left
   candidate always has the lower index. *)
(* Each arm resolves the probe to a way index [w] (-1 = miss) through
   unrolled compares, then performs the hit or fill update inline: the
   native compiler does not inline local closures, so shared [hit]/
   [fill] helpers would cost an indirect call per probe on the hottest
   path of the whole simulator. *)
let specialized_kernel ~count c : (int -> int) option =
  if c.set_shift < 0 then None
  else begin
    let tags = c.tags and stamps = c.stamps and ins = c.ins in
    let lshift = c.line_shift and smask = c.set_mask and sshift = c.set_shift in
    match c.assoc with
    | 1 ->
      Some
        (fun addr ->
          let line_no = addr lsr lshift in
          let set = line_no land smask in
          let tag = line_no lsr sshift in
          let tk = c.tick + 1 in
          c.tick <- tk;
          if Array.unsafe_get tags set = tag then begin
            Array.unsafe_set stamps set tk;
            if count then c.hits <- c.hits + 1;
            (set lsl 1) lor 1
          end
          else begin
            if count then c.misses <- c.misses + 1;
            Array.unsafe_set ins set (Array.unsafe_get ins set + 1);
            Array.unsafe_set tags set tag;
            Array.unsafe_set stamps set tk;
            set lsl 1
          end)
    | 2 ->
      Some
        (fun addr ->
          let line_no = addr lsr lshift in
          let set = line_no land smask in
          let tag = line_no lsr sshift in
          let base = set lsl 1 in
          let tk = c.tick + 1 in
          c.tick <- tk;
          let w =
            if Array.unsafe_get tags base = tag then base
            else if Array.unsafe_get tags (base + 1) = tag then base + 1
            else -1
          in
          if w >= 0 then begin
            Array.unsafe_set stamps w tk;
            if count then c.hits <- c.hits + 1;
            (w lsl 1) lor 1
          end
          else begin
            let v =
              if Array.unsafe_get stamps (base + 1) < Array.unsafe_get stamps base
              then base + 1
              else base
            in
            if count then c.misses <- c.misses + 1;
            Array.unsafe_set ins set (Array.unsafe_get ins set + 1);
            Array.unsafe_set tags v tag;
            Array.unsafe_set stamps v tk;
            v lsl 1
          end)
    | 4 ->
      Some
        (fun addr ->
          let line_no = addr lsr lshift in
          let set = line_no land smask in
          let tag = line_no lsr sshift in
          let base = set lsl 2 in
          let tk = c.tick + 1 in
          c.tick <- tk;
          let w =
            if Array.unsafe_get tags base = tag then base
            else if Array.unsafe_get tags (base + 1) = tag then base + 1
            else if Array.unsafe_get tags (base + 2) = tag then base + 2
            else if Array.unsafe_get tags (base + 3) = tag then base + 3
            else -1
          in
          if w >= 0 then begin
            Array.unsafe_set stamps w tk;
            if count then c.hits <- c.hits + 1;
            (w lsl 1) lor 1
          end
          else begin
            let i01 =
              if Array.unsafe_get stamps (base + 1) < Array.unsafe_get stamps base
              then base + 1
              else base
            in
            let i23 =
              if
                Array.unsafe_get stamps (base + 3)
                < Array.unsafe_get stamps (base + 2)
              then base + 3
              else base + 2
            in
            let v =
              if Array.unsafe_get stamps i23 < Array.unsafe_get stamps i01 then
                i23
              else i01
            in
            if count then c.misses <- c.misses + 1;
            Array.unsafe_set ins set (Array.unsafe_get ins set + 1);
            Array.unsafe_set tags v tag;
            Array.unsafe_set stamps v tk;
            v lsl 1
          end)
    | 8 ->
      Some
        (fun addr ->
          let line_no = addr lsr lshift in
          let set = line_no land smask in
          let tag = line_no lsr sshift in
          let base = set lsl 3 in
          let tk = c.tick + 1 in
          c.tick <- tk;
          let w =
            if Array.unsafe_get tags base = tag then base
            else if Array.unsafe_get tags (base + 1) = tag then base + 1
            else if Array.unsafe_get tags (base + 2) = tag then base + 2
            else if Array.unsafe_get tags (base + 3) = tag then base + 3
            else if Array.unsafe_get tags (base + 4) = tag then base + 4
            else if Array.unsafe_get tags (base + 5) = tag then base + 5
            else if Array.unsafe_get tags (base + 6) = tag then base + 6
            else if Array.unsafe_get tags (base + 7) = tag then base + 7
            else -1
          in
          if w >= 0 then begin
            Array.unsafe_set stamps w tk;
            if count then c.hits <- c.hits + 1;
            (w lsl 1) lor 1
          end
          else begin
            let i01 =
              if Array.unsafe_get stamps (base + 1) < Array.unsafe_get stamps base
              then base + 1
              else base
            in
            let i23 =
              if
                Array.unsafe_get stamps (base + 3)
                < Array.unsafe_get stamps (base + 2)
              then base + 3
              else base + 2
            in
            let i45 =
              if
                Array.unsafe_get stamps (base + 5)
                < Array.unsafe_get stamps (base + 4)
              then base + 5
              else base + 4
            in
            let i67 =
              if
                Array.unsafe_get stamps (base + 7)
                < Array.unsafe_get stamps (base + 6)
              then base + 7
              else base + 6
            in
            let a =
              if Array.unsafe_get stamps i23 < Array.unsafe_get stamps i01 then
                i23
              else i01
            in
            let b =
              if Array.unsafe_get stamps i67 < Array.unsafe_get stamps i45 then
                i67
              else i45
            in
            let v =
              if Array.unsafe_get stamps b < Array.unsafe_get stamps a then b
              else a
            in
            if count then c.misses <- c.misses + 1;
            Array.unsafe_set ins set (Array.unsafe_get ins set + 1);
            Array.unsafe_set tags v tag;
            Array.unsafe_set stamps v tk;
            v lsl 1
          end)
    | _ -> None
  end

let select_kernels kernel c =
  let pick ~count =
    match kernel with
    | `Generic -> generic_kernel ~count c
    | `Auto -> (
      match specialized_kernel ~count c with
      | Some k -> k
      | None -> generic_kernel ~count c)
  in
  c.k_access <- pick ~count:true;
  c.k_touch <- pick ~count:false

let create ~name ~size ~line ~assoc =
  if line <= 0 || assoc <= 0 || size <= 0 then
    invalid_arg "Cache.create: non-positive parameter";
  if not (is_pow2 line) then invalid_arg "Cache.create: line not a power of 2";
  if size mod (line * assoc) <> 0 then
    invalid_arg "Cache.create: size not divisible by line*assoc";
  let nsets = size / (line * assoc) in
  let c =
    {
      cname = name; line; assoc; nsets;
      line_shift = log2 line;
      set_mask = (if is_pow2 nsets then nsets - 1 else 0);
      set_shift = (if is_pow2 nsets then log2 nsets else -1);
      tags = Array.make (nsets * assoc) (-1);
      stamps = Array.make (nsets * assoc) 0;
      tick = 0; hits = 0; misses = 0;
      ins = Array.make nsets 0;
      carry = Array.make nsets 0;
      synth_tag = -2;
      k_access = (fun _ -> 0);
      k_touch = (fun _ -> 0);
    }
  in
  select_kernels `Auto c;
  c

let set_kernel c kernel = select_kernels kernel c

let access t ~addr ~write:_ = t.k_access addr land 1 <> 0
let touch t ~addr ~write:_ = t.k_touch addr land 1 <> 0

(* Sampled skip correction: the sketch says this cache filled
   [ins.(set)] lines into [set] over the [observed] accesses since the
   last correction; extrapolate that fill rate over the [skipped]
   accesses the sampler never replayed by evicting
   [skipped * ins.(set) / observed] LRU ways (capped at the
   associativity — a set cannot lose more than it holds) and filling
   them with unique synthetic tags at MRU. Synthetic tags are negative
   and never probed for (real tags are non-negative), so they model
   exactly what a skipped insertion does to the resident lines: age
   them one step and occupy a way until evicted. Division remainders
   carry to the next correction so slow fill rates still accumulate. *)
let correct_skip t ~skipped ~observed =
  if skipped > 0 && observed > 0 then begin
    let assoc = t.assoc in
    for set = 0 to t.nsets - 1 do
      let i = t.ins.(set) in
      if i > 0 then begin
        t.ins.(set) <- 0;
        let c = t.carry.(set) + (skipped * i) in
        let n = c / observed in
        t.carry.(set) <- c - (n * observed);
        let n = if n > assoc then assoc else n in
        if n > 0 then begin
          let base = set * assoc in
          let lim = base + assoc in
          for _ = 1 to n do
            let tick = t.tick + 1 in
            t.tick <- tick;
            let victim = ref base in
            for w = base + 1 to lim - 1 do
              if t.stamps.(w) < t.stamps.(!victim) then victim := w
            done;
            t.tags.(!victim) <- t.synth_tag;
            t.synth_tag <- t.synth_tag - 1;
            t.stamps.(!victim) <- tick
          done
        end
      end
    done
  end

let line_size t = t.line
let line_shift t = t.line_shift
let name t = t.cname
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  Array.fill t.ins 0 t.nsets 0;
  Array.fill t.carry 0 t.nsets 0;
  t.synth_tag <- -2;
  t.tick <- 0;
  reset_stats t
