type t = {
  line : int;
  nlines : int;
  coherence_lat : int;
  present : bool array array;  (* core -> line slot (direct mapped) *)
  tags : int array array;
  mutable invals : int;
  mutable latency : int;
}

let create ?(line = 64) ?(lines_per_core = 256) ?(coherence_lat = 60) () =
  {
    line; nlines = lines_per_core; coherence_lat;
    present = [| Array.make lines_per_core false;
                 Array.make lines_per_core false |];
    tags = [| Array.make lines_per_core (-1);
              Array.make lines_per_core (-1) |];
    invals = 0;
    latency = 0;
  }

let access t ~core ~addr ~write =
  if core < 0 || core > 1 then invalid_arg "Coherent.access: core must be 0/1";
  let line_no = addr / t.line in
  let slot = line_no mod t.nlines in
  let other = 1 - core in
  let mine_hit = t.present.(core).(slot) && t.tags.(core).(slot) = line_no in
  let theirs = t.present.(other).(slot) && t.tags.(other).(slot) = line_no in
  let lat =
    if mine_hit && not (write && theirs) then 1
    else begin
      (* refill, possibly stealing the line from the other core *)
      if theirs && write then begin
        t.present.(other).(slot) <- false;
        t.invals <- t.invals + 1
      end;
      t.present.(core).(slot) <- true;
      t.tags.(core).(slot) <- line_no;
      if theirs then t.coherence_lat else t.coherence_lat
    end
  in
  (* a write to a line the other core still reads also invalidates *)
  if write && theirs && mine_hit then begin
    t.present.(other).(slot) <- false;
    t.invals <- t.invals + 1
  end;
  t.latency <- t.latency + lat;
  lat

let invalidations t = t.invals
let total_latency t = t.latency
