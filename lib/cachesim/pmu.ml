type stats = { miss_events : int; total_latency : int }

type t = {
  period : int;
  mutable counter : int;
  mutable events : int;
  table : (int, stats) Hashtbl.t;
}

let create ?(period = 251) ?(phase = 0) () =
  if period <= 0 then invalid_arg "Pmu.create: period must be positive";
  (* OCaml's [mod] keeps the dividend's sign, so a negative phase would
     leave a negative counter and silently stretch the first sampling
     period; normalize into [0, period) for any phase *)
  let counter = ((phase mod period) + period) mod period in
  { period; counter; events = 0; table = Hashtbl.create 64 }

let record t ~iid ~level ~latency ~is_float =
  let is_miss =
    match (level, is_float) with
    | Hierarchy.L1, _ -> false
    | Hierarchy.L2, false -> true   (* integer access that missed L1 *)
    | Hierarchy.L2, true -> false   (* FP access served by its first level *)
    | Hierarchy.Mem, _ -> true
  in
  if is_miss then begin
    t.events <- t.events + 1;
    t.counter <- t.counter + 1;
    if t.counter >= t.period then begin
      t.counter <- 0;
      let prev =
        Option.value
          (Hashtbl.find_opt t.table iid)
          ~default:{ miss_events = 0; total_latency = 0 }
      in
      Hashtbl.replace t.table iid
        {
          miss_events = prev.miss_events + 1;
          total_latency = prev.total_latency + latency;
        }
    end
  end

let events_seen t = t.events

let by_instr t =
  Hashtbl.fold (fun iid s acc -> (iid, s) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stats_of t iid =
  Option.value
    (Hashtbl.find_opt t.table iid)
    ~default:{ miss_events = 0; total_latency = 0 }
