(* Sampled cache simulation: detailed windows plus functional warming,
   mirroring the paper's PMU-based collection — the hardware never
   observes every access either, it samples events and extrapolates.

   Each period of [stride] accesses is laid out as

     [0, window)             detailed: full recorded simulation
     [window, window+skip)   skip: counted but otherwise untouched
     [window+skip, stride)   warm: cache state updated, not recorded

   [skip] defaults to 0: every access outside the detailed window still
   moves tag/LRU state ({!Hierarchy.warm}), only the counter work is
   sampled. That is the configuration the accuracy gate licenses —
   measurements on the roster showed that a frozen skip segment leaves
   the (large, slow-converging) L2 systematically stale: with 75% of
   accesses skipped, mcf's L2 miss rate came out 2.5pp low and sphinx's
   near-zero speedup flipped sign, while full functional warming agrees
   with exact simulation to ~0.01%. A non-zero [skip] is the
   fast-forward mode for quick, bias-tolerant runs; it is what the
   superblock VM's bulk hook accelerates to O(1) per block chain.

   Warming has a fast path the recorded window cannot take: a warm
   access falling entirely within the line touched by the immediately
   preceding access is a no-op for eviction order (the line is already
   resident and most-recent in its set), so it skips the probe.

   Recorded counters cover only the detailed windows; the estimators
   scale them by total/recorded accesses. *)

type t = {
  h : Hierarchy.t;
  window : int;
  stride : int;
  skip_end : int;  (* window + skip; [window, skip_end) is the skip segment *)
  line_mask : int;      (* of the integer first-level (L1) line *)
  fp_line_mask : int;   (* of the FP first-level line (L2 under bypass) *)
  mutable last_line : int;  (* line tag of the previous access; -1 = none *)
  mutable pos : int;    (* position within the current period *)
  mutable total : int;  (* every access, recorded or not *)
}

let default_window = 4096
let default_stride = 32768

let create ?(window = default_window) ?(stride = default_stride) ?(skip = 0)
    config =
  if window <= 0 then invalid_arg "Sampled.create: window must be positive";
  if skip < 0 then invalid_arg "Sampled.create: skip must be >= 0";
  if stride < window + skip then
    invalid_arg "Sampled.create: stride must be >= window + skip";
  {
    h = Hierarchy.create config;
    window; stride;
    skip_end = window + skip;
    line_mask = lnot (config.Hierarchy.l1_line - 1);
    fp_line_mask =
      lnot
        ((if config.Hierarchy.fp_bypass_l1 then config.Hierarchy.l2_line
          else config.Hierarchy.l1_line)
        - 1);
    last_line = -1;
    pos = 0; total = 0;
  }

let hierarchy t = t.h

let access t ~addr ~size ~write ~is_float =
  let p = t.pos in
  t.pos <- (let p' = p + 1 in if p' = t.stride then 0 else p');
  t.total <- t.total + 1;
  (* the line tag of a single-line access, disambiguated by bank (an FP
     access under L1 bypass lives on L2's coarser lines); multi-line
     accesses get tag -1 and never hit the memo *)
  let mask = if is_float then t.fp_line_mask else t.line_mask in
  let base = addr land mask in
  let line =
    if (addr + size - 1) land mask = base then
      (base lsl 1) lor (if is_float then 1 else 0)
    else -1
  in
  if p < t.window then begin
    t.last_line <- line;
    Hierarchy.access_quiet t.h ~addr ~size ~write ~is_float
  end
  else if p >= t.skip_end then
    (* warm: a repeat of the just-touched line cannot change eviction
       order — it is already resident and most-recent in its set *)
    if line >= 0 && line = t.last_line then ()
    else begin
      t.last_line <- line;
      Hierarchy.warm t.h ~addr ~size ~write ~is_float
    end

let try_advance t n =
  let p = t.pos in
  if n > 0 && p >= t.window && t.skip_end - p >= n then begin
    (* all [n] accesses fall inside the skip segment: consuming them in
       one step is indistinguishable from [n] calls to [access] (the
       memo survives — skipped accesses change no cache state) *)
    let p' = p + n in
    t.pos <- (if p' = t.stride then 0 else p');
    t.total <- t.total + n;
    true
  end
  else false

let total_accesses t = t.total
let recorded_accesses t = Hierarchy.accesses t.h

let scale t =
  let r = Hierarchy.accesses t.h in
  if r = 0 then 1.0 else float_of_int t.total /. float_of_int r

let est t n = int_of_float (Float.round (float_of_int n *. scale t))
let est_l1_misses t = est t (Cache.misses (Hierarchy.l1 t.h))
let est_l2_misses t = est t (Cache.misses (Hierarchy.l2 t.h))
let est_extra_cycles t = est t (Hierarchy.extra_cycles t.h)

(* ------------------------------------------------------------------ *)
(* The fidelity knob                                                   *)
(* ------------------------------------------------------------------ *)

type fidelity = Exact | Sampled of { window : int; stride : int; skip : int }

let sampled_default =
  Sampled { window = default_window; stride = default_stride; skip = 0 }

let fidelity_name = function
  | Exact -> "exact"
  | Sampled { window; stride; skip = 0 } ->
    Printf.sprintf "sampled:%d,%d" window stride
  | Sampled { window; stride; skip } ->
    Printf.sprintf "sampled:%d,%d,%d" window stride skip

let fidelity_of_string s =
  let bad () =
    Error
      (Printf.sprintf
         "bad fidelity %S (expected exact | sampled | sampled:WINDOW,STRIDE \
          | sampled:WINDOW,STRIDE,SKIP)"
         s)
  in
  match s with
  | "exact" -> Ok Exact
  | "sampled" -> Ok sampled_default
  | _ when String.length s > 8 && String.sub s 0 8 = "sampled:" -> (
    let spec = String.sub s 8 (String.length s - 8) in
    let parts = String.split_on_char ',' spec in
    match List.map int_of_string_opt parts with
    | [ Some window; Some stride ]
      when window > 0 && stride >= window ->
      Ok (Sampled { window; stride; skip = 0 })
    | [ Some window; Some stride; Some skip ]
      when window > 0 && skip >= 0 && stride >= window + skip ->
      Ok (Sampled { window; stride; skip })
    | _ -> bad ())
  | _ -> bad ()

let of_fidelity config = function
  | Exact -> None
  | Sampled { window; stride; skip } ->
    Some (create ~window ~stride ~skip config)
