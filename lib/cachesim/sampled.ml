(* Sampled cache simulation: detailed windows plus functional warming,
   mirroring the paper's PMU-based collection — the hardware never
   observes every access either, it samples events and extrapolates.

   Each period of [stride] accesses is laid out as

     [0, window)             detailed: full recorded simulation
     [window, window+skip)   skip: counted but otherwise untouched
     [window+skip, stride)   warm: cache state updated, not recorded

   [skip] defaults to 0: every access outside the detailed window still
   moves tag/LRU state ({!Hierarchy.warm}), only the counter work is
   sampled. A non-zero [skip] is the fast-forward mode the superblock
   VM's bulk hook accelerates to O(1) per block chain; its cold-start
   bias — a frozen skip segment leaves the large, slow-converging L2
   systematically stale (with 75% of accesses skipped, mcf's L2 miss
   rate came out 2.5pp low and sphinx's near-zero speedup flipped
   sign) — is corrected before measurement resumes: while simulating,
   each cache keeps a per-set count of line insertions (its footprint
   sketch), and at the first simulated access after a skip segment the
   hierarchy extrapolates that per-set fill rate over the skipped
   accesses, evicting the corresponding number of LRU lines per set in
   favour of synthetic never-hit tags ({!Hierarchy.correct_skip}). The
   detailed window that follows then starts from a state that has aged
   as if the skipped traffic had been replayed, which is what lets a
   skipping configuration pass the roster accuracy gate.

   Warming has a fast path the recorded window cannot take: a warm
   access falling entirely within the line touched by the immediately
   preceding access is a no-op for eviction order (the line is already
   resident and most-recent in its set), so it skips the probe.

   Recorded counters cover only the detailed windows; the estimators
   scale them by total/recorded accesses. *)

type t = {
  h : Hierarchy.t;
  window : int;
  stride : int;
  skip_end : int;  (* window + skip; [window, skip_end) is the skip segment *)
  line_mask : int;      (* of the integer first-level (L1) line *)
  fp_line_mask : int;   (* of the FP first-level line (L2 under bypass) *)
  mutable last_line : int;  (* line tag of the previous access; -1 = none *)
  mutable pos : int;    (* position within the current period *)
  mutable total : int;  (* every access, recorded or not *)
  mutable skipped_pending : int;
      (* skip-segment accesses not yet charged by a correction *)
  mutable observed : int;
      (* simulated (detailed or warm) accesses feeding the footprint
         sketch since the last correction — the denominator of the
         extrapolated fill rate *)
}

let default_window = 4096
let default_stride = 32768

let create ?(window = default_window) ?(stride = default_stride) ?(skip = 0)
    config =
  if window <= 0 then invalid_arg "Sampled.create: window must be positive";
  if skip < 0 then invalid_arg "Sampled.create: skip must be >= 0";
  if stride < window + skip then
    invalid_arg "Sampled.create: stride must be >= window + skip";
  {
    h = Hierarchy.create config;
    window; stride;
    skip_end = window + skip;
    line_mask = lnot (config.Hierarchy.l1_line - 1);
    fp_line_mask =
      lnot
        ((if config.Hierarchy.fp_bypass_l1 then config.Hierarchy.l2_line
          else config.Hierarchy.l1_line)
        - 1);
    last_line = -1;
    pos = 0; total = 0;
    skipped_pending = 0;
    observed = 0;
  }

let hierarchy t = t.h

(* Charge pending skipped accesses to the cache state. Called at the
   first simulated access after a skip segment, before that access is
   processed — the same point in the stream regardless of whether
   accesses arrive one at a time or in ring batches, which is what
   keeps the two paths byte-equal. The correction invalidates both
   memos: a synthetic insertion can evict the memoized line. *)
let apply_correction t =
  if t.skipped_pending > 0 && t.observed > 0 then begin
    Hierarchy.correct_skip t.h ~skipped:t.skipped_pending ~observed:t.observed;
    t.skipped_pending <- 0;
    t.observed <- 0;
    t.last_line <- -1
  end

let access t ~addr ~size ~write ~is_float =
  let p = t.pos in
  t.pos <- (let p' = p + 1 in if p' = t.stride then 0 else p');
  t.total <- t.total + 1;
  if p >= t.window && p < t.skip_end then
    t.skipped_pending <- t.skipped_pending + 1
  else begin
    apply_correction t;
    t.observed <- t.observed + 1;
    (* the line tag of a single-line access, disambiguated by bank (an
       FP access under L1 bypass lives on L2's coarser lines);
       multi-line accesses get tag -1 and never hit the memo *)
    let mask = if is_float then t.fp_line_mask else t.line_mask in
    let base = addr land mask in
    let line =
      if (addr + size - 1) land mask = base then
        (base lsl 1) lor (if is_float then 1 else 0)
      else -1
    in
    if p < t.window then begin
      t.last_line <- line;
      Hierarchy.access_quiet t.h ~addr ~size ~write ~is_float
    end
    else if (* warm: a repeat of the just-touched line cannot change
               eviction order — it is already resident and most-recent
               in its set *)
            line >= 0 && line = t.last_line then ()
    else begin
      t.last_line <- line;
      Hierarchy.warm t.h ~addr ~size ~write ~is_float
    end
  end

let try_advance t n =
  let p = t.pos in
  if n > 0 && p >= t.window && t.skip_end - p >= n then begin
    (* all [n] accesses fall inside the skip segment: consuming them in
       one step is indistinguishable from [n] calls to [access] (the
       memo survives — skipped accesses change no cache state until the
       correction at the next simulated access charges them) *)
    let p' = p + n in
    t.pos <- (if p' = t.stride then 0 else p');
    t.total <- t.total + n;
    t.skipped_pending <- t.skipped_pending + n;
    true
  end
  else false

let bulk_ready t ~pending n =
  n > 0
  &&
  let p = (t.pos + pending) mod t.stride in
  p >= t.window && t.skip_end - p >= n

(* Drain ring events [lo, hi) by slicing the batch into period
   segments: each slice falls entirely inside the detailed, skip or
   warm segment of the current period and is handled wholesale —
   {!Hierarchy.drain_quiet}, a pending-skip bump, or
   {!Hierarchy.drain_warm}. The per-access warm memo lives in the
   hierarchy's drain memo here (same tag discipline, see
   [Hierarchy.drain_quiet]), and corrections fire at the same stream
   positions as in {!access}, so counters and cache state are
   byte-equal to feeding every event through {!access} — pinned by a
   QCheck property. *)
let drain t (addrs : int array) (metas : int array) lo hi =
  let i = ref lo in
  while !i < hi do
    let p = t.pos in
    let n =
      if p < t.window then begin
        let n = min (hi - !i) (t.window - p) in
        apply_correction t;
        Hierarchy.drain_quiet t.h addrs metas !i (!i + n);
        t.observed <- t.observed + n;
        n
      end
      else if p < t.skip_end then begin
        let n = min (hi - !i) (t.skip_end - p) in
        t.skipped_pending <- t.skipped_pending + n;
        n
      end
      else begin
        let n = min (hi - !i) (t.stride - p) in
        apply_correction t;
        Hierarchy.drain_warm t.h addrs metas !i (!i + n);
        t.observed <- t.observed + n;
        n
      end
    in
    let p' = p + n in
    t.pos <- (if p' = t.stride then 0 else p');
    t.total <- t.total + n;
    i := !i + n
  done

let total_accesses t = t.total
let recorded_accesses t = Hierarchy.accesses t.h

let scale t =
  let r = Hierarchy.accesses t.h in
  if r = 0 then 1.0 else float_of_int t.total /. float_of_int r

let est t n = int_of_float (Float.round (float_of_int n *. scale t))
let est_l1_misses t = est t (Cache.misses (Hierarchy.l1 t.h))
let est_l2_misses t = est t (Cache.misses (Hierarchy.l2 t.h))
let est_extra_cycles t = est t (Hierarchy.extra_cycles t.h)

(* ------------------------------------------------------------------ *)
(* The fidelity knob                                                   *)
(* ------------------------------------------------------------------ *)

type fidelity = Exact | Sampled of { window : int; stride : int; skip : int }

let sampled_default =
  Sampled { window = default_window; stride = default_stride; skip = 0 }

let fidelity_name = function
  | Exact -> "exact"
  | Sampled { window; stride; skip = 0 } ->
    Printf.sprintf "sampled:%d,%d" window stride
  | Sampled { window; stride; skip } ->
    Printf.sprintf "sampled:%d,%d,%d" window stride skip

(* The CLI-facing parser is stricter than [create]: it also rejects a
   skip that swallows the whole non-window remainder (K >= S - W with
   K > 0), because such a configuration never warms the cache between
   skip and the next detailed window and its bias is exactly what the
   correction cannot license without at least some observed warm
   traffic. [create] stays permissive (stride >= window + skip) so the
   degenerate full-skip setup remains constructible programmatically —
   the bias experiments in test_sampled.ml depend on it. *)
let fidelity_of_string s =
  let bad msg = Error (Printf.sprintf "bad fidelity %S: %s" s msg) in
  let validate window stride skip =
    if window <= 0 then bad "window must be positive"
    else if stride <= 0 then bad "stride must be positive"
    else if window > stride then bad "window must not exceed stride"
    else if skip < 0 then bad "skip must be >= 0"
    else if skip > 0 && skip >= stride - window then
      bad "skip must leave a non-empty warm segment (skip < stride - window)"
    else Ok (Sampled { window; stride; skip })
  in
  match s with
  | "exact" -> Ok Exact
  | "sampled" -> Ok sampled_default
  | _ when String.length s > 8 && String.sub s 0 8 = "sampled:" -> (
    let spec = String.sub s 8 (String.length s - 8) in
    match List.map int_of_string_opt (String.split_on_char ',' spec) with
    | [ Some window; Some stride ] -> validate window stride 0
    | [ Some window; Some stride; Some skip ] -> validate window stride skip
    | _ -> bad "expected sampled:WINDOW,STRIDE[,SKIP] with integer fields")
  | _ -> bad "expected exact | sampled | sampled:WINDOW,STRIDE[,SKIP]"

let of_fidelity config = function
  | Exact -> None
  | Sampled { window; stride; skip } ->
    Some (create ~window ~stride ~skip config)
