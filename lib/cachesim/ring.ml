(* A preallocated ring of packed memory-access events.

   The VM backends append one event per executed load/store (and per
   memset/memcpy chunk) into two flat int arrays — no allocation, no
   closure call on the push path — and a consumer drains the whole
   batch in a single call when the ring fills (or at end of run). This
   replaces the per-access hook closure that dominated the measure
   phase's "hook floor" (EXPERIMENTS.md): the push is two unsafe
   stores plus a bounds check, and the event metadata of a compiled
   load/store is a compile-time constant.

   Event format: [addrs.(i)] is the byte address; [metas.(i)] packs

     bit 0      is_float
     bit 1      write
     bits 2-5   size in bytes (1..8 — chunked accesses never exceed 8)
     bits 6-..  iid (instruction id; may be negative, [asr] recovers it)

   The fields are laid out so that a compiled instruction's whole meta
   word folds to one immediate. Consumers decode with the [meta_*]
   accessors below.

   The record is deliberately transparent: [Compile] inlines the push
   sequence into its load/store closures (without flambda a
   cross-module [Ring.push] call would cost as much as the hook it
   replaces), and drain loops read [addrs]/[metas]/[len] directly.
   Everyone else should treat the fields as private. *)

type t = {
  mutable addrs : int array;
  mutable metas : int array;
  cap : int;
  mutable len : int;
  mutable sink : t -> unit;
      (* consumes events [0, len); [flush] resets [len] afterwards. A
         sink may swap [addrs]/[metas] for fresh arrays of the same
         length and keep the originals (the pipelined drainer does) —
         which is why the buffers are mutable fields and push sequences
         must re-read them on every event *)
}

let default_cap = 8192

let create ?(cap = default_cap) () =
  if cap <= 0 then invalid_arg "Ring.create: cap must be positive";
  {
    addrs = Array.make cap 0;
    metas = Array.make cap 0;
    cap;
    len = 0;
    sink = (fun _ -> ());
  }

let set_sink t sink = t.sink <- sink
let length t = t.len

let flush t =
  if t.len > 0 then begin
    t.sink t;
    t.len <- 0
  end

(* the out-of-line push, for callers outside the compiled hot path
   (e.g. the tree-walker's synthesized hook) *)
let push t addr meta =
  if t.len = t.cap then flush t;
  let i = t.len in
  Array.unsafe_set t.addrs i addr;
  Array.unsafe_set t.metas i meta;
  t.len <- i + 1

let meta ~size ~write ~is_float ~iid =
  (iid lsl 6)
  lor (size lsl 2)
  lor (if write then 2 else 0)
  lor (if is_float then 1 else 0)

let meta_size m = (m lsr 2) land 15
let meta_write m = m land 2 <> 0
let meta_float m = m land 1 <> 0
let meta_iid m = m asr 6
