(** Sampled cache simulation: detailed windows plus functional warming.

    The paper's measurement never observes every access — PMU sampling
    records every [period]-th miss event and extrapolates. This module
    is the simulation-side analogue: each period of [stride] accesses
    simulates the first [window] accesses in full detail (recorded in
    the wrapped {!Hierarchy}'s counters), optionally skips the next
    [skip] accesses entirely, and spends the remainder {e warming} the
    hierarchy ({!Hierarchy.warm}: tag/LRU state moves, counters don't).

    [skip] defaults to [0] — full functional warming. Roster
    measurements showed that a frozen skip segment leaves the large,
    slow-converging L2 systematically stale (miss-rate biases of
    multiple percentage points, enough to flip near-zero speedup
    signs), while warming every non-window access tracks exact
    simulation to ~0.01%. Non-zero [skip] is the fast-forward mode,
    accelerated to O(1) per block chain by the superblock VM's bulk
    hook ({!try_advance}) — and its cold-start bias is corrected: each
    cache keeps a per-set footprint sketch (line insertions per
    simulated access), and at the first simulated access after a skip
    segment the skipped traffic is charged to the cache state by
    extrapolating that per-set fill rate into synthetic LRU evictions
    ({!Hierarchy.correct_skip}). This is what licenses a skipping
    configuration against the roster accuracy gate.

    With [stride = window] every access is detailed and the results are
    exactly those of {!Hierarchy.access_quiet} — a property the unit
    tests pin. The estimators scale window-recorded counters by
    total/recorded accesses; the roster accuracy gate
    ([test_sampled.ml], [bench/accuracy.exe]) bounds the resulting
    per-level miss-rate error and requires speedup-sign agreement with
    exact simulation. *)

type t

val default_window : int
val default_stride : int

val create : ?window:int -> ?stride:int -> ?skip:int -> Hierarchy.config -> t
(** Raises [Invalid_argument] unless [0 < window], [0 <= skip] and
    [window + skip <= stride]. [skip] defaults to [0]. *)

val access : t -> addr:int -> size:int -> write:bool -> is_float:bool -> unit
(** Feed one access: detailed, skipped or warming depending on the
    position within the current period. *)

val try_advance : t -> int -> bool
(** [try_advance t n] consumes [n] upcoming accesses in O(1) iff all of
    them fall inside the current period's skip segment (returns false —
    and consumes nothing — otherwise, including for [n <= 0]; with the
    default [skip = 0] it therefore never succeeds). Equivalent to [n]
    calls to {!access} when it succeeds; the superblock VM backend uses
    this to retire a whole block's worth of accesses per branch during
    fast-forward. *)

val bulk_ready : t -> pending:int -> int -> bool
(** [bulk_ready t ~pending n] — would {!try_advance}[ t n] succeed
    after first feeding the [pending] buffered (not yet drained) ring
    events? Pure prediction, consumes nothing. The driver's bulk hook
    uses it to decide whether to flush the ring and fast-forward a
    whole superblock chain: events buffered in the ring have already
    happened in stream order, so the advance test must be made at
    [pos + pending], not [pos]. *)

val drain : t -> int array -> int array -> int -> int -> unit
(** [drain t addrs metas lo hi] feeds ring events [lo, hi) (packed as
    in {!Ring}) through the sampler by slicing the batch into period
    segments. Counters, cache state and pending-skip accounting are
    byte-equal to calling {!access} once per event in order (QCheck
    property); this is the sink a sampled-fidelity measure phase
    installs on its {!Ring}. Do not mix with per-access {!access} on
    the same sampler — each path keeps its warm memo in its own home
    (the [t] record here, the hierarchy drain memo there). *)

val hierarchy : t -> Hierarchy.t
(** The wrapped hierarchy; its counters cover only detailed windows. *)

val total_accesses : t -> int
(** Every access seen, recorded or not (exact, not estimated). *)

val recorded_accesses : t -> int
(** Accesses simulated in detail, i.e. {!Hierarchy.accesses}. *)

val scale : t -> float
(** total / recorded (1.0 when nothing was skipped yet). *)

val est_l1_misses : t -> int
val est_l2_misses : t -> int
val est_extra_cycles : t -> int
(** Window-recorded counters scaled by {!scale}, rounded to nearest. *)

(** {1 The fidelity knob}

    The CLI/driver-facing selector: [exact] is full-trace simulation,
    [sampled\[:window,stride\[,skip\]\]] is this module. *)

type fidelity = Exact | Sampled of { window : int; stride : int; skip : int }

val sampled_default : fidelity
(** [Sampled] with {!default_window} / {!default_stride} and no skip. *)

val fidelity_name : fidelity -> string
(** ["exact"], ["sampled:W,S"] or ["sampled:W,S,K"] — round-trips with
    {!fidelity_of_string}. *)

val fidelity_of_string : string -> (fidelity, string) result
(** Accepts ["exact"], ["sampled"] (defaults), ["sampled:W,S"] and
    ["sampled:W,S,K"]. Rejects misconfigurations with a specific
    message: non-positive window or stride, [W > S], negative skip,
    and a skip that swallows the whole warm segment ([K >= S - W] with
    [K > 0] — such a setup never warms between skip and the next
    window, so its bias cannot be corrected). [K = 0] with [W = S]
    (every access detailed) stays accepted. *)

val of_fidelity : Hierarchy.config -> fidelity -> t option
(** [None] for [Exact]. *)
