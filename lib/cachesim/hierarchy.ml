type level = L1 | L2 | Mem

type config = {
  l1_size : int;
  l1_line : int;
  l1_assoc : int;
  l2_size : int;
  l2_line : int;
  l2_assoc : int;
  l1_lat : int;
  l2_lat : int;
  mem_lat : int;
  fp_bypass_l1 : bool;
}

let itanium =
  {
    l1_size = 16 * 1024; l1_line = 64; l1_assoc = 4;
    l2_size = 6 * 1024 * 1024; l2_line = 128; l2_assoc = 8;
    l1_lat = 1; l2_lat = 11; mem_lat = 200; fp_bypass_l1 = true;
  }

let small =
  {
    l1_size = 4 * 1024; l1_line = 64; l1_assoc = 2;
    l2_size = 64 * 1024; l2_line = 128; l2_assoc = 4;
    l1_lat = 1; l2_lat = 11; mem_lat = 200; fp_bypass_l1 = true;
  }

type t = {
  cfg : config;
  c1 : Cache.t;
  c2 : Cache.t;
  (* hot-path constants, hoisted out of [cfg]/[c1]/[c2] once *)
  shift1 : int;         (* log2 of the L1 line size *)
  shift2 : int;         (* log2 of the L2 line size *)
  line1 : int;          (* L1 line size in bytes *)
  l2_covers_l1 : bool;  (* l2_line >= l1_line: an L1 line is one L2 probe *)
  fpb : bool;           (* cfg.fp_bypass_l1 *)
  l2_extra : int;       (* max 0 (l2_lat - l1_lat) *)
  mem_extra : int;      (* max 0 (mem_lat - l1_lat) *)
  mutable extra : int;
  mutable n_access : int;
  mutable by_l1 : int;
  mutable by_l2 : int;
  mutable by_mem : int;
  (* drain-loop memo: the previous event's line, as
     [(line_no lsl 1) lor bank] (bank 1 = the event was floating
     point), and the way index where that line now resides in its
     first-level cache. -1 = no memo. Only the batch drains consult it;
     every per-access entry point invalidates it so mixed callers can
     never act on a stale way. *)
  mutable memo_line : int;
  mutable memo_way : int;
}

let create ?kernel cfg =
  let c1 =
    Cache.create ~name:"L1D" ~size:cfg.l1_size ~line:cfg.l1_line
      ~assoc:cfg.l1_assoc
  in
  let c2 =
    Cache.create ~name:"L2" ~size:cfg.l2_size ~line:cfg.l2_line
      ~assoc:cfg.l2_assoc
  in
  (match kernel with
  | Some k ->
    Cache.set_kernel c1 k;
    Cache.set_kernel c2 k
  | None -> ());
  {
    cfg; c1; c2;
    shift1 = Cache.line_shift c1;
    shift2 = Cache.line_shift c2;
    line1 = Cache.line_size c1;
    l2_covers_l1 = Cache.line_size c2 >= Cache.line_size c1;
    fpb = cfg.fp_bypass_l1;
    l2_extra = max 0 (cfg.l2_lat - cfg.l1_lat);
    mem_extra = max 0 (cfg.mem_lat - cfg.l1_lat);
    extra = 0; n_access = 0; by_l1 = 0; by_l2 = 0; by_mem = 0;
    memo_line = -1; memo_way = 0;
  }

(* The L1->L2 descent of one missing L1 line: one L2 request for the
   L2 line containing it (a single probe whenever the L2 line is at
   least as large as the L1 line — always, on real geometries — with a
   range loop for the degenerate smaller-L2-line case). [k2] selects
   recorded or warming probes. *)
let descend_with t (k2 : int -> int) l1_base : bool =
  if t.l2_covers_l1 then k2 l1_base land 1 <> 0
  else begin
    let sh = t.shift2 in
    let first = l1_base lsr sh and last = (l1_base + t.line1 - 1) lsr sh in
    let all = ref true in
    for l = first to last do
      if k2 (l lsl sh) land 1 = 0 then all := false
    done;
    !all
  end

(* The one and only implementation of the service/descent rule, shared
   by the recorded paths ([access]/[access_quiet], probing through
   [Cache.k_access]) and the warming path ([warm], probing through
   [Cache.k_touch]) so the two can never drift:

   - a floating-point access under the Itanium bypass is served by L2
     (its first level); L2-missing lines go to memory;
   - anything else touches every L1 line it covers, and only the lines
     that miss in L1 descend — each missing L1 line is a separate L2
     request for the L2 line containing it; L1-hitting lines never
     reach L2, so partial hits neither inflate L2 traffic nor perturb
     its LRU state.

   Returns the deepest level any covered line had to go to. *)
let serve_with t (k1 : int -> int) (k2 : int -> int) ~addr ~size ~is_float :
    level =
  if is_float && t.fpb then begin
    let sh = t.shift2 in
    let first = addr lsr sh and last = (addr + max size 1 - 1) lsr sh in
    let all = ref true in
    for l = first to last do
      if k2 (l lsl sh) land 1 = 0 then all := false
    done;
    if !all then L2 else Mem
  end
  else begin
    let sh = t.shift1 in
    let first = addr lsr sh and last = (addr + max size 1 - 1) lsr sh in
    if first = last then begin
      (* the common single-line access: no range bookkeeping *)
      if k1 addr land 1 = 1 then L1
      else if descend_with t k2 (first lsl sh) then L2
      else Mem
    end
    else begin
      let any_l1_miss = ref false and all_l2_hit = ref true in
      for l = first to last do
        if k1 (l lsl sh) land 1 = 0 then begin
          any_l1_miss := true;
          if not (descend_with t k2 (l lsl sh)) then all_l2_hit := false
        end
      done;
      if not !any_l1_miss then L1
      else if !all_l2_hit then L2
      else Mem
    end
  end

let access t ~addr ~size ~write:_ ~is_float =
  t.memo_line <- -1;
  t.n_access <- t.n_access + 1;
  match
    serve_with t t.c1.Cache.k_access t.c2.Cache.k_access ~addr ~size ~is_float
  with
  | L1 ->
    t.by_l1 <- t.by_l1 + 1;
    (t.cfg.l1_lat, L1)
  | L2 ->
    t.by_l2 <- t.by_l2 + 1;
    t.extra <- t.extra + t.l2_extra;
    (t.cfg.l2_lat, L2)
  | Mem ->
    t.by_mem <- t.by_mem + 1;
    t.extra <- t.extra + t.mem_extra;
    (t.cfg.mem_lat, Mem)

(* the per-access measurement path: no result tuple (an L1 hit adds no
   extra cycles, so only the counter bump remains) *)
let access_quiet t ~addr ~size ~write:_ ~is_float =
  t.memo_line <- -1;
  t.n_access <- t.n_access + 1;
  match
    serve_with t t.c1.Cache.k_access t.c2.Cache.k_access ~addr ~size ~is_float
  with
  | L1 -> t.by_l1 <- t.by_l1 + 1
  | L2 ->
    t.by_l2 <- t.by_l2 + 1;
    t.extra <- t.extra + t.l2_extra
  | Mem ->
    t.by_mem <- t.by_mem + 1;
    t.extra <- t.extra + t.mem_extra

let warm t ~addr ~size ~write:_ ~is_float =
  t.memo_line <- -1;
  ignore
    (serve_with t t.c1.Cache.k_touch t.c2.Cache.k_touch ~addr ~size ~is_float)

let correct_skip t ~skipped ~observed =
  t.memo_line <- -1;
  Cache.correct_skip t.c1 ~skipped ~observed;
  Cache.correct_skip t.c2 ~skipped ~observed

(* ------------------------------------------------------------------ *)
(* Batch drains                                                        *)
(* ------------------------------------------------------------------ *)

(* Drain ring events [lo, hi) with [access_quiet] semantics. One call
   replaces [hi - lo] hook invocations: the config constants, kernel
   closures and counters live in locals for the whole batch, and an
   event landing on the same line as the previous one skips the probe —
   the line is resident and most-recent in its set, so a full probe
   would hit at [memo_way]; the memo path replicates that probe's exact
   counter, tick and stamp effects. Counters after the drain are
   byte-equal to feeding every event through [access_quiet] (a QCheck
   property pins this). *)
(* The single-line probes below are the generic kernel's state machine
   (cache.ml) transcribed inline: same tick-first ordering, same
   while-scan, same first-minimal victim, same ins-sketch bump, so the
   drained cache state is bit-identical to what [Cache.k_access] would
   have produced — the native compiler cannot inline the kernel
   closures into this loop, and the indirect call per probe is the
   dominant per-event cost the ring was built to shed. Multi-line
   events (rare) still go through the kernel closures; the cached
   tick/hit/miss locals are written back around those calls. *)
let drain_quiet t (addrs : int array) (metas : int array) lo hi =
  let c1 = t.c1 and c2 = t.c2 in
  let k1 = c1.Cache.k_access and k2 = c2.Cache.k_access in
  let tags1 = c1.Cache.tags and stamps1 = c1.Cache.stamps
  and ins1 = c1.Cache.ins in
  let assoc1 = c1.Cache.assoc and nsets1 = c1.Cache.nsets
  and smask1 = c1.Cache.set_mask and sshift1 = c1.Cache.set_shift in
  let tags2 = c2.Cache.tags and stamps2 = c2.Cache.stamps
  and ins2 = c2.Cache.ins in
  let assoc2 = c2.Cache.assoc and nsets2 = c2.Cache.nsets
  and smask2 = c2.Cache.set_mask and sshift2 = c2.Cache.set_shift in
  let sh1 = t.shift1 and sh2 = t.shift2 in
  let fpb = t.fpb and l2c = t.l2_covers_l1 in
  let l2_extra = t.l2_extra and mem_extra = t.mem_extra in
  let by_l1 = ref t.by_l1 and by_l2 = ref t.by_l2 and by_mem = ref t.by_mem in
  let extra = ref t.extra in
  let memo_line = ref t.memo_line and memo_way = ref t.memo_way in
  let tick1 = ref c1.Cache.tick and hits1 = ref c1.Cache.hits
  and miss1 = ref c1.Cache.misses in
  let tick2 = ref c2.Cache.tick and hits2 = ref c2.Cache.hits
  and miss2 = ref c2.Cache.misses in
  (* write the cached counters back before any kernel-closure call and
     reload after: the closures update the records directly *)
  let sync () =
    c1.Cache.tick <- !tick1; c1.Cache.hits <- !hits1;
    c1.Cache.misses <- !miss1;
    c2.Cache.tick <- !tick2; c2.Cache.hits <- !hits2;
    c2.Cache.misses <- !miss2
  in
  let reload () =
    tick1 := c1.Cache.tick; hits1 := c1.Cache.hits;
    miss1 := c1.Cache.misses;
    tick2 := c2.Cache.tick; hits2 := c2.Cache.hits;
    miss2 := c2.Cache.misses
  in
  for k = lo to hi - 1 do
    let addr = Array.unsafe_get addrs k in
    let m = Array.unsafe_get metas k in
    let sz = (m lsr 2) land 15 in
    let sz = if sz = 0 then 1 else sz in
    if m land 1 = 1 && fpb then begin
      (* FP under the bypass: L2 is the first level *)
      let first = addr lsr sh2 and last = (addr + sz - 1) lsr sh2 in
      if first = last then begin
        let ltag = (first lsl 1) lor 1 in
        if ltag = !memo_line then begin
          let tk = !tick2 + 1 in
          tick2 := tk;
          Array.unsafe_set stamps2 !memo_way tk;
          incr hits2;
          incr by_l2;
          extra := !extra + l2_extra
        end
        else begin
          (* inline L2 probe of line [first] *)
          let set, tag =
            if sshift2 >= 0 then (first land smask2, first lsr sshift2)
            else (first mod nsets2, first / nsets2)
          in
          let base = set * assoc2 in
          let lim = base + assoc2 in
          let tk = !tick2 + 1 in
          tick2 := tk;
          let i = ref base in
          while !i < lim && Array.unsafe_get tags2 !i <> tag do incr i done;
          memo_line := ltag;
          if !i < lim then begin
            Array.unsafe_set stamps2 !i tk;
            incr hits2;
            memo_way := !i;
            incr by_l2;
            extra := !extra + l2_extra
          end
          else begin
            incr miss2;
            Array.unsafe_set ins2 set (Array.unsafe_get ins2 set + 1);
            let victim = ref base in
            for w = base + 1 to lim - 1 do
              if Array.unsafe_get stamps2 w < Array.unsafe_get stamps2 !victim
              then victim := w
            done;
            Array.unsafe_set tags2 !victim tag;
            Array.unsafe_set stamps2 !victim tk;
            memo_way := !victim;
            incr by_mem;
            extra := !extra + mem_extra
          end
        end
      end
      else begin
        memo_line := -1;
        sync ();
        let all = ref true in
        for l = first to last do
          if k2 (l lsl sh2) land 1 = 0 then all := false
        done;
        reload ();
        if !all then begin
          incr by_l2;
          extra := !extra + l2_extra
        end
        else begin
          incr by_mem;
          extra := !extra + mem_extra
        end
      end
    end
    else begin
      let first = addr lsr sh1 and last = (addr + sz - 1) lsr sh1 in
      if first = last then begin
        (* the bank bit mirrors [Sampled]'s memo tags: a float access
           keeps bit 0 set even without the bypass, so the warm memo
           decisions of the batched and per-access sampled paths agree
           event for event *)
        let ltag = (first lsl 1) lor (m land 1) in
        if ltag = !memo_line then begin
          let tk = !tick1 + 1 in
          tick1 := tk;
          Array.unsafe_set stamps1 !memo_way tk;
          incr hits1;
          incr by_l1
        end
        else begin
          (* inline L1 probe of line [first] *)
          let set, tag =
            if sshift1 >= 0 then (first land smask1, first lsr sshift1)
            else (first mod nsets1, first / nsets1)
          in
          let base = set * assoc1 in
          let lim = base + assoc1 in
          let tk = !tick1 + 1 in
          tick1 := tk;
          let i = ref base in
          while !i < lim && Array.unsafe_get tags1 !i <> tag do incr i done;
          memo_line := ltag;
          if !i < lim then begin
            Array.unsafe_set stamps1 !i tk;
            incr hits1;
            memo_way := !i;
            incr by_l1
          end
          else begin
            incr miss1;
            Array.unsafe_set ins1 set (Array.unsafe_get ins1 set + 1);
            let victim = ref base in
            for w = base + 1 to lim - 1 do
              if Array.unsafe_get stamps1 w < Array.unsafe_get stamps1 !victim
              then victim := w
            done;
            Array.unsafe_set tags1 !victim tag;
            Array.unsafe_set stamps1 !victim tk;
            memo_way := !victim;
            (* the missing L1 line descends to L2 *)
            if l2c then begin
              (* inline L2 probe of the covering L2 line *)
              let l2line = (first lsl sh1) lsr sh2 in
              let set, tag =
                if sshift2 >= 0 then (l2line land smask2, l2line lsr sshift2)
                else (l2line mod nsets2, l2line / nsets2)
              in
              let base = set * assoc2 in
              let lim = base + assoc2 in
              let tk = !tick2 + 1 in
              tick2 := tk;
              let j = ref base in
              while !j < lim && Array.unsafe_get tags2 !j <> tag do incr j done;
              if !j < lim then begin
                Array.unsafe_set stamps2 !j tk;
                incr hits2;
                incr by_l2;
                extra := !extra + l2_extra
              end
              else begin
                incr miss2;
                Array.unsafe_set ins2 set (Array.unsafe_get ins2 set + 1);
                let victim = ref base in
                for w = base + 1 to lim - 1 do
                  if
                    Array.unsafe_get stamps2 w
                    < Array.unsafe_get stamps2 !victim
                  then victim := w
                done;
                Array.unsafe_set tags2 !victim tag;
                Array.unsafe_set stamps2 !victim tk;
                incr by_mem;
                extra := !extra + mem_extra
              end
            end
            else begin
              sync ();
              let served = descend_with t k2 (first lsl sh1) in
              reload ();
              if served then begin
                incr by_l2;
                extra := !extra + l2_extra
              end
              else begin
                incr by_mem;
                extra := !extra + mem_extra
              end
            end
          end
        end
      end
      else begin
        memo_line := -1;
        sync ();
        let any_miss = ref false and all2 = ref true in
        for l = first to last do
          if k1 (l lsl sh1) land 1 = 0 then begin
            any_miss := true;
            if not (descend_with t k2 (l lsl sh1)) then all2 := false
          end
        done;
        reload ();
        if not !any_miss then incr by_l1
        else if !all2 then begin
          incr by_l2;
          extra := !extra + l2_extra
        end
        else begin
          incr by_mem;
          extra := !extra + mem_extra
        end
      end
    end
  done;
  t.n_access <- t.n_access + (hi - lo);
  t.by_l1 <- !by_l1;
  t.by_l2 <- !by_l2;
  t.by_mem <- !by_mem;
  t.extra <- !extra;
  t.memo_line <- !memo_line;
  t.memo_way <- !memo_way;
  c1.Cache.tick <- !tick1;
  c1.Cache.hits <- !hits1;
  c1.Cache.misses <- !miss1;
  c2.Cache.tick <- !tick2;
  c2.Cache.hits <- !hits2;
  c2.Cache.misses <- !miss2

(* Drain ring events [lo, hi) with warming semantics, replicating the
   per-access sampled warm path exactly: an event whose single line
   equals the previous event's is a complete no-op (the line is
   resident and most-recent — not even the tick moves, matching
   [Sampled.access]'s memo), everything else moves tag/LRU state
   through [Cache.k_touch] with no counter recorded. *)
let drain_warm t (addrs : int array) (metas : int array) lo hi =
  let c1 = t.c1 and c2 = t.c2 in
  let k1 = c1.Cache.k_touch and k2 = c2.Cache.k_touch in
  let sh1 = t.shift1 and sh2 = t.shift2 in
  let fpb = t.fpb in
  let memo_line = ref t.memo_line and memo_way = ref t.memo_way in
  for k = lo to hi - 1 do
    let addr = Array.unsafe_get addrs k in
    let m = Array.unsafe_get metas k in
    let sz = (m lsr 2) land 15 in
    let sz = if sz = 0 then 1 else sz in
    if m land 1 = 1 && fpb then begin
      let first = addr lsr sh2 and last = (addr + sz - 1) lsr sh2 in
      if first = last then begin
        let ltag = (first lsl 1) lor 1 in
        if ltag <> !memo_line then begin
          let r = k2 addr in
          memo_line := ltag;
          memo_way := r lsr 1
        end
      end
      else begin
        memo_line := -1;
        for l = first to last do
          ignore (k2 (l lsl sh2))
        done
      end
    end
    else begin
      let first = addr lsr sh1 and last = (addr + sz - 1) lsr sh1 in
      if first = last then begin
        let ltag = (first lsl 1) lor (m land 1) in
        if ltag <> !memo_line then begin
          let r = k1 addr in
          memo_line := ltag;
          memo_way := r lsr 1;
          if r land 1 = 0 then
            ignore (descend_with t k2 (first lsl sh1))
        end
      end
      else begin
        memo_line := -1;
        for l = first to last do
          if k1 (l lsl sh1) land 1 = 0 then
            ignore (descend_with t k2 (l lsl sh1))
        done
      end
    end
  done;
  t.memo_line <- !memo_line;
  t.memo_way <- !memo_way

let extra_cycles t = t.extra
let l1 t = t.c1
let l2 t = t.c2
let accesses t = t.n_access
let level_counts t = (t.by_l1, t.by_l2, t.by_mem)
