type level = L1 | L2 | Mem

type config = {
  l1_size : int;
  l1_line : int;
  l1_assoc : int;
  l2_size : int;
  l2_line : int;
  l2_assoc : int;
  l1_lat : int;
  l2_lat : int;
  mem_lat : int;
  fp_bypass_l1 : bool;
}

let itanium =
  {
    l1_size = 16 * 1024; l1_line = 64; l1_assoc = 4;
    l2_size = 6 * 1024 * 1024; l2_line = 128; l2_assoc = 8;
    l1_lat = 1; l2_lat = 11; mem_lat = 200; fp_bypass_l1 = true;
  }

let small =
  {
    l1_size = 4 * 1024; l1_line = 64; l1_assoc = 2;
    l2_size = 64 * 1024; l2_line = 128; l2_assoc = 4;
    l1_lat = 1; l2_lat = 11; mem_lat = 200; fp_bypass_l1 = true;
  }

type t = {
  cfg : config;
  c1 : Cache.t;
  c2 : Cache.t;
  (* hot-path constants, hoisted out of [cfg]/[c1] for [access_quiet] *)
  shift1 : int;      (* log2 of the L1 line size *)
  fpb : bool;        (* cfg.fp_bypass_l1 *)
  l2_extra : int;    (* max 0 (l2_lat - l1_lat) *)
  mem_extra : int;   (* max 0 (mem_lat - l1_lat) *)
  mutable extra : int;
  mutable n_access : int;
  mutable by_l1 : int;
  mutable by_l2 : int;
  mutable by_mem : int;
}

let create cfg =
  let c1 =
    Cache.create ~name:"L1D" ~size:cfg.l1_size ~line:cfg.l1_line
      ~assoc:cfg.l1_assoc
  in
  {
    cfg; c1;
    c2 = Cache.create ~name:"L2" ~size:cfg.l2_size ~line:cfg.l2_line ~assoc:cfg.l2_assoc;
    shift1 = Cache.line_shift c1;
    fpb = cfg.fp_bypass_l1;
    l2_extra = max 0 (cfg.l2_lat - cfg.l1_lat);
    mem_extra = max 0 (cfg.mem_lat - cfg.l1_lat);
    extra = 0; n_access = 0; by_l1 = 0; by_l2 = 0; by_mem = 0;
  }

(* touch every line the [addr,size) range covers in cache [c]; hit only if
   all lines hit *)
let touch c ~addr ~size ~write =
  let line = Cache.line_size c in
  let first = addr / line and last = (addr + max size 1 - 1) / line in
  let all_hit = ref true in
  for l = first to last do
    if not (Cache.access c ~addr:(l * line) ~write) then all_hit := false
  done;
  !all_hit

(* an L1 miss fetches one whole L1 line from L2, so each missing L1 line
   is a separate L2 access for the L2 line(s) containing it; L1-hitting
   lines of a multi-line access never reach L2 *)
let descend_line t ~l1_base ~write =
  touch t.c2 ~addr:l1_base ~size:(Cache.line_size t.c1) ~write

(* which level served the access; counters and LRU state are updated as
   a side effect, the latency/extra-cycle accounting is the caller's *)
let serve_level t ~addr ~size ~write ~is_float : level =
  if is_float && t.cfg.fp_bypass_l1 then begin
    (* FP bypasses L1: L2 is its first level; L2-missing lines go to
       memory, which holds no state to touch *)
    if touch t.c2 ~addr ~size ~write then L2 else Mem
  end
  else begin
    let sh = Cache.line_shift t.c1 in
    let first = addr lsr sh and last = (addr + max size 1 - 1) lsr sh in
    if first = last then begin
      (* the common single-line access: no list bookkeeping *)
      if Cache.access t.c1 ~addr ~write then L1
      else if descend_line t ~l1_base:(first lsl sh) ~write then L2
      else Mem
    end
    else begin
      (* line-straddling access: only the L1-missing lines descend to
         L2 (the lines that hit in L1 are served there and must not
         inflate L2 traffic or perturb its LRU state) *)
      let any_l1_miss = ref false and all_l2_hit = ref true in
      for l = first to last do
        if not (Cache.access t.c1 ~addr:(l lsl sh) ~write) then begin
          any_l1_miss := true;
          if not (descend_line t ~l1_base:(l lsl sh) ~write) then
            all_l2_hit := false
        end
      done;
      if not !any_l1_miss then L1
      else if !all_l2_hit then L2
      else Mem
    end
  end

let access t ~addr ~size ~write ~is_float =
  t.n_access <- t.n_access + 1;
  let lvl = serve_level t ~addr ~size ~write ~is_float in
  let lat =
    match lvl with
    | L1 ->
      t.by_l1 <- t.by_l1 + 1;
      t.cfg.l1_lat
    | L2 ->
      t.by_l2 <- t.by_l2 + 1;
      t.cfg.l2_lat
    | Mem ->
      t.by_mem <- t.by_mem + 1;
      t.cfg.mem_lat
  in
  (* the instruction's own base cycle covers an L1-hit-equivalent *)
  t.extra <- t.extra + max 0 (lat - t.cfg.l1_lat);
  (lat, lvl)

(* the measurement hot path: no result tuple, and the overwhelmingly
   common case — a single-line integer access that hits L1 — is one
   line-split, one tag probe and one counter bump (an L1 hit adds no
   extra cycles, so the latency arithmetic is skipped entirely) *)
let access_quiet t ~addr ~size ~write ~is_float =
  t.n_access <- t.n_access + 1;
  if is_float && t.fpb then begin
    if touch t.c2 ~addr ~size ~write then begin
      t.by_l2 <- t.by_l2 + 1;
      t.extra <- t.extra + t.l2_extra
    end
    else begin
      t.by_mem <- t.by_mem + 1;
      t.extra <- t.extra + t.mem_extra
    end
  end
  else begin
    let sh = t.shift1 in
    let first = addr lsr sh and last = (addr + max size 1 - 1) lsr sh in
    if first = last then begin
      if Cache.access t.c1 ~addr ~write then
        (* L1 hit: no extra cycles, nothing else to account *)
        t.by_l1 <- t.by_l1 + 1
      else if descend_line t ~l1_base:(first lsl sh) ~write then begin
        t.by_l2 <- t.by_l2 + 1;
        t.extra <- t.extra + t.l2_extra
      end
      else begin
        t.by_mem <- t.by_mem + 1;
        t.extra <- t.extra + t.mem_extra
      end
    end
    else begin
      let any_l1_miss = ref false and all_l2_hit = ref true in
      for l = first to last do
        if not (Cache.access t.c1 ~addr:(l lsl sh) ~write) then begin
          any_l1_miss := true;
          if not (descend_line t ~l1_base:(l lsl sh) ~write) then
            all_l2_hit := false
        end
      done;
      if not !any_l1_miss then t.by_l1 <- t.by_l1 + 1
      else if !all_l2_hit then begin
        t.by_l2 <- t.by_l2 + 1;
        t.extra <- t.extra + t.l2_extra
      end
      else begin
        t.by_mem <- t.by_mem + 1;
        t.extra <- t.extra + t.mem_extra
      end
    end
  end

(* warm every line of [addr, addr+size) in cache [c] without recording
   statistics; hit only if all lines hit (mirrors [touch]) *)
let warm_range c ~addr ~size ~write =
  let line = Cache.line_size c in
  let first = addr / line and last = (addr + max size 1 - 1) / line in
  let all_hit = ref true in
  for l = first to last do
    if not (Cache.touch c ~addr:(l * line) ~write) then all_hit := false
  done;
  !all_hit

let warm t ~addr ~size ~write ~is_float =
  if is_float && t.fpb then ignore (warm_range t.c2 ~addr ~size ~write)
  else begin
    let sh = t.shift1 in
    let first = addr lsr sh and last = (addr + max size 1 - 1) lsr sh in
    (* same descent rule as [access_quiet]: only L1-missing lines reach
       L2, so fast-forward traffic perturbs L2 LRU state exactly as the
       recorded simulation would *)
    for l = first to last do
      if not (Cache.touch t.c1 ~addr:(l lsl sh) ~write) then
        ignore
          (warm_range t.c2 ~addr:(l lsl sh) ~size:(Cache.line_size t.c1) ~write)
    done
  end

let extra_cycles t = t.extra
let l1 t = t.c1
let l2 t = t.c2
let accesses t = t.n_access
let level_counts t = (t.by_l1, t.by_l2, t.by_mem)
