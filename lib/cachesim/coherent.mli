(** A minimal two-core coherence model (MESI-lite) for the paper's
    multithreaded observation (§2.4):

    "there is a performance penalty if two threads access (write) disjoint
    hot structure fields on the same cache line due to costs associated
    with cache coherency. These fields should be separated to different
    cache lines instead of being moved together."

    Each core has a private L1 tag array; a write invalidates the line in
    the other core, and a subsequent access there pays the coherence
    latency. Only what the false-sharing experiment needs is modelled. *)

type t

val create : ?line:int -> ?lines_per_core:int -> ?coherence_lat:int -> unit -> t
(** Defaults: 64-byte lines, 256 lines per core, 60-cycle
    invalidation-refill latency. *)

val access : t -> core:int -> addr:int -> write:bool -> int
(** Returns the latency of the access (1 on a private hit). [core] is 0
    or 1. *)

val invalidations : t -> int
(** Cross-core invalidations observed (the false-sharing signal). *)

val total_latency : t -> int
