(** A pipelined ring consumer: batches drain on a dedicated domain
    while the VM keeps executing.

    {!sink} hands the ring's filled buffer pair to a worker domain and
    swaps fresh (or recycled) arrays into the ring; the worker drains
    batches strictly in FIFO order through the [drain] callback, so
    final cache state and counters are byte-equal to draining the same
    events serially — only the wall-clock overlap changes. A bounded
    pool of [depth] extra buffer pairs applies back-pressure when
    simulation falls behind execution.

    Only for consumers that never inspect simulation state while the
    VM runs (the exact-fidelity measure phase). Sampled bulk-advance
    checks and the PMU collector need synchronous sinks. *)

type t

val create :
  ?depth:int -> drain:(int array -> int array -> int -> unit) -> unit -> t
(** Spawn the worker domain. [drain addrs metas n] consumes events
    [0, n); it runs on the worker, never concurrently with itself.
    [depth] (default 2) bounds the buffer pairs in flight beyond the
    ring's own. Raises [Invalid_argument] if [depth <= 0]. *)

val sink : t -> Ring.t -> unit
(** The function to install with {!Ring.set_sink}: enqueues the ring's
    current buffers for the worker and gives the ring a fresh pair.
    Blocks when [depth] batches are already in flight. *)

val join : t -> unit
(** Wait for every handed-off batch to finish draining and stop the
    worker domain. Call after the final {!Ring.flush}; the simulated
    state is only safe to read after [join] returns. Re-raises the
    first exception the [drain] callback threw, if any. *)
