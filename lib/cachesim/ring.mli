(** A preallocated batch ring of packed memory-access events.

    The VM backends append events (address + packed metadata) into two
    flat int arrays; the consumer — {!Hierarchy.drain_quiet},
    {!Sampled.drain} or the profile collector — drains the whole batch
    in one call whenever the ring fills or the run finishes. Batching
    kills the per-access closure indirection that the measure phase
    was bound by: the push path is two array stores and a bounds
    check, with the metadata word a compile-time constant for each
    load/store instruction.

    The record is exposed so the closure-compiled VM can inline the
    push sequence (cross-module calls are not inlined without
    flambda) and so drain loops can walk [addrs]/[metas] directly.
    Treat the fields as read-only outside [Slo_vm.Compile] and the
    drain implementations. *)

type t = {
  mutable addrs : int array;
      (** byte address per event. Mutable so a sink may swap the
          buffer for a fresh one and keep the filled array (the
          pipelined {!Drainer} does); push sequences therefore re-read
          the field on every event. *)
  mutable metas : int array;  (** packed metadata per event, see {!meta} *)
  cap : int;
  mutable len : int;  (** events currently buffered: [0, len) *)
  mutable sink : t -> unit;
}

val default_cap : int
(** 8192 events (two 64 KB arrays). *)

val create : ?cap:int -> unit -> t
(** A ring with no consumer: events are dropped on flush until
    {!set_sink} installs one. Raises [Invalid_argument] if [cap <= 0]. *)

val set_sink : t -> (t -> unit) -> unit
(** Install the drain callback. It is invoked with the ring holding
    [len > 0] events in [addrs]/[metas] slots [0, len); after it
    returns, {!flush} resets [len] to 0 (the callback must not push). *)

val length : t -> int
(** Events currently buffered (the VM-side pending count a sampled
    bulk-advance check needs, see {!Sampled.bulk_ready}). *)

val flush : t -> unit
(** Drain buffered events through the sink (no-op when empty). *)

val push : t -> int -> int -> unit
(** [push t addr meta] appends one event, flushing first if the ring
    is full. The compiled VM inlines this sequence instead of calling
    it; interpreter-side hooks use it as is. *)

(** {1 Metadata packing}

    [meta] packs [(iid lsl 6) lor (size lsl 2) lor write lor is_float];
    sizes are 1..8 bytes (larger accesses are chunked by the VM), iids
    round-trip through an arithmetic shift so negative ids survive. *)

val meta : size:int -> write:bool -> is_float:bool -> iid:int -> int
val meta_size : int -> int
val meta_write : int -> bool
val meta_float : int -> bool
val meta_iid : int -> int
