(** Two-level data-cache hierarchy with an Itanium-flavoured quirk: floating
    point accesses bypass L1 and are served from L2 — the paper notes "the
    counts refer to the first level of cache for a given operation — L2 for
    floating point values and L1 for everything else on Itanium".

    The default configuration models the paper's evaluation machine (HP
    rx2600, Itanium 2): 16 KB / 64 B L1D, 6 MB / 128 B unified L2 (the paper
    quotes both "6 MB of L2 cache" and the 128-byte L2 line), main memory at
    200 cycles.

    The hierarchy also accumulates a simple in-order cycle model: each
    executed instruction costs one cycle, and each memory access adds its
    access latency beyond the 1-cycle L1 hit that is already covered by the
    instruction's base cycle. *)

type level = L1 | L2 | Mem

type config = {
  l1_size : int;
  l1_line : int;
  l1_assoc : int;
  l2_size : int;
  l2_line : int;
  l2_assoc : int;
  l1_lat : int;   (** cycles for an L1 hit *)
  l2_lat : int;   (** cycles for an L2 hit *)
  mem_lat : int;  (** cycles for a memory access *)
  fp_bypass_l1 : bool;
}

val itanium : config
(** The default, Itanium-2-like configuration described above. *)

val small : config
(** A small configuration (4 KB L1, 64 KB L2) for unit tests that want
    misses without megabyte working sets. *)

type t

val create : config -> t

val access : t -> addr:int -> size:int -> write:bool -> is_float:bool -> int * level
(** Simulate one access; returns (latency in cycles, level that served it
    — the deepest level any covered line had to go to).

    A line-straddling access touches every L1 line it covers, but only
    the lines that {e miss} in L1 descend to L2: each missing L1 line is
    one L2 access for the L2 line containing it (two missing L1 lines
    falling into the same 128-byte L2 line are two L2 accesses, the
    second of which normally hits — each L1 fill is its own L2 request).
    Lines that hit in L1 never reach L2, so partial hits neither inflate
    L2 traffic nor perturb L2's LRU state. The same rule applies at the
    L2→memory boundary: only L2-missing lines count as memory traffic. *)

val access_quiet : t -> addr:int -> size:int -> write:bool -> is_float:bool -> unit
(** {!access} for callers that only want the counters updated (the plain
    measurement hook) — avoids building the result on the hot path. *)

val warm : t -> addr:int -> size:int -> write:bool -> is_float:bool -> unit
(** Update cache state — tags and LRU, in both levels, following the
    exact same line-descent rules as {!access} — without recording
    anything: no hit/miss counters, no access counts, no extra cycles.
    This is what the sampled simulator ({!Sampled}) does to accesses in
    the warm-up segment before each detailed window. *)

val extra_cycles : t -> int
(** Accumulated latency beyond the base cycle of each access. *)

val l1 : t -> Cache.t
val l2 : t -> Cache.t
val accesses : t -> int
val level_counts : t -> int * int * int
(** (served by L1, by L2, by memory). *)
