(** Two-level data-cache hierarchy with an Itanium-flavoured quirk: floating
    point accesses bypass L1 and are served from L2 — the paper notes "the
    counts refer to the first level of cache for a given operation — L2 for
    floating point values and L1 for everything else on Itanium".

    The default configuration models the paper's evaluation machine (HP
    rx2600, Itanium 2): 16 KB / 64 B L1D, 6 MB / 128 B unified L2 (the paper
    quotes both "6 MB of L2 cache" and the 128-byte L2 line), main memory at
    200 cycles.

    The hierarchy also accumulates a simple in-order cycle model: each
    executed instruction costs one cycle, and each memory access adds its
    access latency beyond the 1-cycle L1 hit that is already covered by the
    instruction's base cycle. *)

type level = L1 | L2 | Mem

type config = {
  l1_size : int;
  l1_line : int;
  l1_assoc : int;
  l2_size : int;
  l2_line : int;
  l2_assoc : int;
  l1_lat : int;   (** cycles for an L1 hit *)
  l2_lat : int;   (** cycles for an L2 hit *)
  mem_lat : int;  (** cycles for a memory access *)
  fp_bypass_l1 : bool;
}

val itanium : config
(** The default, Itanium-2-like configuration described above. *)

val small : config
(** A small configuration (4 KB L1, 64 KB L2) for unit tests that want
    misses without megabyte working sets. *)

type t

val create : ?kernel:Cache.kernel -> config -> t
(** [kernel] selects the probe kernels of both levels (see
    {!Cache.kernel}); defaults to [`Auto]. *)

val access : t -> addr:int -> size:int -> write:bool -> is_float:bool -> int * level
(** Simulate one access; returns (latency in cycles, level that served it
    — the deepest level any covered line had to go to).

    A line-straddling access touches every L1 line it covers, but only
    the lines that {e miss} in L1 descend to L2: each missing L1 line is
    one L2 access for the L2 line containing it (two missing L1 lines
    falling into the same 128-byte L2 line are two L2 accesses, the
    second of which normally hits — each L1 fill is its own L2 request).
    Lines that hit in L1 never reach L2, so partial hits neither inflate
    L2 traffic nor perturb L2's LRU state. The same rule applies at the
    L2→memory boundary: only L2-missing lines count as memory traffic. *)

val access_quiet : t -> addr:int -> size:int -> write:bool -> is_float:bool -> unit
(** {!access} for callers that only want the counters updated (the plain
    measurement hook) — avoids building the result on the hot path. *)

val warm : t -> addr:int -> size:int -> write:bool -> is_float:bool -> unit
(** Update cache state — tags and LRU, in both levels, following the
    exact same line-descent rules as {!access} — without recording
    anything: no hit/miss counters, no access counts, no extra cycles.
    This is what the sampled simulator ({!Sampled}) does to accesses in
    the warm-up segment before each detailed window. *)

val drain_quiet : t -> int array -> int array -> int -> int -> unit
(** [drain_quiet t addrs metas lo hi] feeds ring events [lo, hi) (see
    {!Ring} for the packing) through the measurement path. Counters and
    cache state afterwards are byte-equal to calling {!access_quiet}
    once per event in order — pinned by a QCheck property — but the
    batch loop hoists the config constants and kernels once and skips
    the probe entirely when an event lands on the same line as its
    predecessor (the line is resident and most-recent; the memo
    replicates the probe's exact counter and LRU effects). This is the
    sink the exact-fidelity measure phase installs on its {!Ring}. *)

val drain_warm : t -> int array -> int array -> int -> int -> unit
(** Batch counterpart of {!warm} with the sampled warm path's memo
    semantics: an event on the same single line as its predecessor is a
    complete no-op (matching {!Sampled}'s per-access warm memo — not
    even the LRU tick advances); all other events move tags and LRU
    through the touch kernels without recording anything. *)

val correct_skip : t -> skipped:int -> observed:int -> unit
(** Apply {!Cache.correct_skip} to both levels and invalidate the drain
    memo (a synthetic insertion can evict the memoized line). Called by
    {!Sampled} when a skip segment's unreplayed accesses must be
    charged to the cache state before detailed measurement resumes. *)

val extra_cycles : t -> int
(** Accumulated latency beyond the base cycle of each access. *)

val l1 : t -> Cache.t
val l2 : t -> Cache.t
val accesses : t -> int
val level_counts : t -> int * int * int
(** (served by L1, by L2, by memory). *)
