(** Performance-monitoring-unit sampling, standing in for HP Caliper.

    The paper's PBO collection phase lets the instrumented binary "gather
    sampling data from the hardware performance monitoring unit", recording
    data-cache events that the use phase later attributes to loads and
    stores. We model a PMU that counts {e first-level d-cache miss events}
    (L1 misses for integer accesses, L2 misses for floating point accesses,
    matching the Itanium convention) and records every [period]-th event as
    a sample carrying the instruction id and the access latency.

    Sampling is deterministic — a fixed period, not randomised — so
    experiments are reproducible. A non-zero [phase] offsets the first
    sample, which is how we model the (tiny) perturbation instrumentation
    causes: the paper's DMISS vs DMISS.NO comparison (correlation 0.996). *)

type stats = {
  miss_events : int;    (** sampled d-cache miss events *)
  total_latency : int;  (** summed latency of sampled events, cycles *)
}

type t

val create : ?period:int -> ?phase:int -> unit -> t
(** Default [period] is 251 (prime, avoids resonance with loop trip
    counts), default [phase] 0. Any [phase] — negative or larger than
    the period — is normalized into [0, period), so [~phase:(-3)] and
    [~phase:(period - 3)] sample the same events. Raises
    [Invalid_argument] on a non-positive period. *)

val record :
  t -> iid:int -> level:Hierarchy.level -> latency:int -> is_float:bool -> unit
(** Feed one memory access. Non-miss accesses only advance internal
    counters. *)

val events_seen : t -> int
(** Total (unsampled) first-level miss events. *)

val by_instr : t -> (int * stats) list
(** Sampled statistics per instruction id, sorted by id. *)

val stats_of : t -> int -> stats
(** Stats for one instruction id ({!field:stats.miss_events} 0 if never
    sampled). *)
