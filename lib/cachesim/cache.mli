(** A single set-associative cache level with LRU replacement.

    Pure tag simulation: the cache tracks which lines are resident, not
    their contents. Writes allocate like reads (write-allocate); write-back
    traffic is not modelled (documented simplification — it affects both the
    original and the transformed program equally). *)

type t

val create : name:string -> size:int -> line:int -> assoc:int -> t
(** [size] and [line] in bytes; [size] must be a multiple of
    [line * assoc]. Raises [Invalid_argument] otherwise. *)

val access : t -> addr:int -> write:bool -> bool
(** Touch the line containing [addr]; returns [true] on hit. Updates LRU
    state and hit/miss counters. [addr] must be non-negative (the VM's
    address space); set indexing is shift/mask on power-of-two
    geometries, with a divide fallback for odd set counts. *)

val touch : t -> addr:int -> write:bool -> bool
(** {!access} minus the statistics: updates tags, LRU stamps and the
    internal tick exactly like {!access} and returns the same hit bool,
    but leaves the hit/miss counters untouched. The sampled simulator
    warms cache state with this during fast-forward so that detailed
    windows start warm without unrecorded traffic diluting the
    counters. *)

val line_size : t -> int

val line_shift : t -> int
(** [log2 (line_size t)] — for callers that split addresses into lines
    without dividing. *)

val name : t -> string
val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
val clear : t -> unit
(** Invalidate all lines and reset statistics. *)
