(** A single set-associative cache level with LRU replacement.

    Pure tag simulation: the cache tracks which lines are resident, not
    their contents. Writes allocate like reads (write-allocate); write-back
    traffic is not modelled (documented simplification — it affects both the
    original and the transformed program equally).

    The record is exposed so the {!Hierarchy} drain loops can hoist its
    fields into registers and update the memoized hit path without a
    cross-module call (which would not be inlined without flambda).
    Outside [lib/cachesim] the fields must be treated as read-only;
    all mutation goes through {!access}/{!touch}, the kernels, and
    {!correct_skip}. *)

type t = {
  cname : string;
  line : int;
  assoc : int;
  nsets : int;
  line_shift : int;    (** log2 of the (power-of-two) line size *)
  set_mask : int;      (** [nsets - 1] when [nsets] is a power of 2, else 0 *)
  set_shift : int;     (** log2 [nsets] when a power of 2, else -1 *)
  tags : int array;    (** [nsets * assoc]; -1 = invalid, < -1 = synthetic *)
  stamps : int array;  (** LRU timestamps, parallel to [tags] *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  ins : int array;
      (** per-set line insertions since the last {!correct_skip} — the
          footprint sketch the sampled skip correction extrapolates from *)
  carry : int array;   (** per-set division remainders of {!correct_skip} *)
  mutable synth_tag : int;
  mutable k_access : int -> int;
      (** the probe kernel, selected (and written) once at {!create}:
          [k_access addr] performs exactly one {!access} and returns
          [(way_index lsl 1) lor hit] where [way_index] indexes
          [tags]/[stamps] — the drain loops use it to remember where the
          just-touched line lives *)
  mutable k_touch : int -> int;
      (** same kernel without the hit/miss counters ({!touch}) *)
}

type kernel = [ `Auto | `Generic ]
(** [`Auto] selects an unrolled, branch-reduced probe when the set
    count is a power of two and the associativity is 1, 2, 4 or 8,
    falling back to the generic while-loop probe otherwise. [`Generic]
    forces the fallback — the property tests drive identical streams
    through both selections and require byte-identical state. *)

val create : name:string -> size:int -> line:int -> assoc:int -> t
(** [size] and [line] in bytes; [size] must be a multiple of
    [line * assoc]. Raises [Invalid_argument] otherwise. Kernels start
    as [`Auto]; {!set_kernel} re-selects. *)

val set_kernel : t -> kernel -> unit
(** Re-select the probe kernels. Safe at any time (kernels are
    stateless between probes — all state lives in the record), but
    meant for right after {!create}. *)

val access : t -> addr:int -> write:bool -> bool
(** Touch the line containing [addr]; returns [true] on hit. Updates LRU
    state and hit/miss counters. [addr] must be non-negative (the VM's
    address space); set indexing is shift/mask on power-of-two
    geometries, with a divide fallback for odd set counts. *)

val touch : t -> addr:int -> write:bool -> bool
(** {!access} minus the statistics: updates tags, LRU stamps and the
    internal tick exactly like {!access} and returns the same hit bool,
    but leaves the hit/miss counters untouched. The sampled simulator
    warms cache state with this during fast-forward so that detailed
    windows start warm without unrecorded traffic diluting the
    counters. *)

val correct_skip : t -> skipped:int -> observed:int -> unit
(** Extrapolate the per-set insertion rate recorded in the [ins] sketch
    over the [observed] accesses since the last correction onto
    [skipped] unreplayed accesses: each set evicts
    [skipped * ins / observed] LRU ways (capped at the associativity)
    and fills them with unique synthetic tags at MRU. Synthetic tags
    are negative and can never hit, so they age and displace resident
    lines exactly as the skipped insertions would have, without
    touching any counter. Resets the sketch; division remainders carry
    to the next call. No-op when [skipped] or [observed] is zero. *)

val line_size : t -> int

val line_shift : t -> int
(** [log2 (line_size t)] — for callers that split addresses into lines
    without dividing. *)

val name : t -> string
val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
val clear : t -> unit
(** Invalidate all lines, reset statistics and the skip-correction
    sketch. *)
