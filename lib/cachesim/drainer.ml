(* A pipelined ring consumer: batches drain on a dedicated domain
   while the VM keeps executing.

   The serial measure path interleaves execution and simulation on one
   core; with a second core available the drain can ride shotgun — the
   ring's sink hands the filled buffer pair to a worker domain, swaps
   fresh (or recycled) arrays into the ring, and returns immediately.
   The worker drains handed-off batches strictly in FIFO order through
   the same [drain] callback the serial sink would use, so the
   simulated cache state and every counter are byte-equal to the
   serial path — only the wall-clock overlap changes.

   Flow control is a bounded buffer pool: at most [depth] buffer pairs
   circulate beyond the one living in the ring. When the pool is dry
   the producer blocks until the worker returns one, which keeps
   memory bounded and applies back-pressure when simulation is slower
   than execution.

   Not suitable for consumers that must observe sampler or hierarchy
   state synchronously with the VM (the K>0 bulk-advance check, the
   PMU collector): those stay on serial sinks. The driver uses this
   only for the exact-fidelity measure phase, and only when the host
   has more than one core. *)

type t = {
  drain : int array -> int array -> int -> unit;
  mu : Mutex.t;
  nonempty : Condition.t;  (* worker waits: a batch arrived / stopping *)
  nonfull : Condition.t;   (* producer waits: a buffer pair came back *)
  q : (int array * int array * int) Queue.t;
  mutable spares : (int array * int array) list;
  mutable spares_made : int;
  depth : int;
  mutable stopping : bool;
  mutable failed : exn option;  (* first drain exception, re-raised by join *)
  mutable dom : unit Domain.t option;
}

let rec worker t =
  Mutex.lock t.mu;
  while Queue.is_empty t.q && not t.stopping do
    Condition.wait t.nonempty t.mu
  done;
  if Queue.is_empty t.q then Mutex.unlock t.mu (* stopping and drained *)
  else begin
    let a, m, n = Queue.pop t.q in
    Mutex.unlock t.mu;
    (* after a failure keep recycling buffers (so the producer never
       deadlocks) but stop simulating: the run's counters are already
       lost *)
    (match t.failed with
    | None -> ( try t.drain a m n with e -> t.failed <- Some e)
    | Some _ -> ());
    Mutex.lock t.mu;
    t.spares <- (a, m) :: t.spares;
    Condition.signal t.nonfull;
    Mutex.unlock t.mu;
    worker t
  end

let create ?(depth = 2) ~drain () =
  if depth <= 0 then invalid_arg "Drainer.create: depth must be positive";
  let t =
    {
      drain;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      q = Queue.create ();
      spares = [];
      spares_made = 0;
      depth;
      stopping = false;
      failed = None;
      dom = None;
    }
  in
  t.dom <- Some (Domain.spawn (fun () -> worker t));
  t

let sink t (rg : Ring.t) =
  let n = rg.Ring.len in
  if n > 0 then begin
    Mutex.lock t.mu;
    let sa, sm =
      match t.spares with
      | p :: rest ->
        t.spares <- rest;
        p
      | [] ->
        if t.spares_made < t.depth then begin
          t.spares_made <- t.spares_made + 1;
          (Array.make (Array.length rg.Ring.addrs) 0,
           Array.make (Array.length rg.Ring.metas) 0)
        end
        else begin
          while t.spares = [] do
            Condition.wait t.nonfull t.mu
          done;
          match t.spares with
          | p :: rest ->
            t.spares <- rest;
            p
          | [] -> assert false
        end
    in
    Queue.push (rg.Ring.addrs, rg.Ring.metas, n) t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.mu;
    rg.Ring.addrs <- sa;
    rg.Ring.metas <- sm
    (* Ring.flush resets len after the sink returns *)
  end

let join t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.signal t.nonempty;
  Mutex.unlock t.mu;
  (match t.dom with
  | Some d ->
    Domain.join d;
    t.dom <- None
  | None -> ());
  match t.failed with
  | Some e ->
    t.failed <- None;
    raise e
  | None -> ()
