(* Statistics and table rendering. *)

module Stats = Slo_util.Stats
module Table = Slo_util.Table
module Json = Slo_util.Json

let feq = Alcotest.float 1e-9

let mean_and_sum () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.check feq "sum" 6.0 (Stats.sum [| 1.0; 2.0; 3.0 |]);
  Alcotest.check feq "sum empty" 0.0 (Stats.sum [||]);
  Alcotest.check_raises "mean empty"
    (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Stats.mean [||]))

let corr_exn xs ys =
  match Stats.correlation xs ys with
  | Some r -> r
  | None -> Alcotest.fail "expected Some correlation"

let corr_exn' i xs ys =
  match Stats.correlation_excluding i xs ys with
  | Some r -> r
  | None -> Alcotest.fail "expected Some correlation"

let correlation_basics () =
  Alcotest.check feq "perfect" 1.0
    (corr_exn [| 1.0; 2.0; 3.0 |] [| 10.0; 20.0; 30.0 |]);
  Alcotest.check feq "negative" (-1.0)
    (corr_exn [| 1.0; 2.0; 3.0 |] [| 3.0; 2.0; 1.0 |]);
  (* a zero-variance series has no defined correlation: None, not a fake
     0.0 that reads as "genuinely uncorrelated" *)
  Alcotest.(check bool) "constant series undefined" true
    (Stats.correlation [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |] = None);
  Alcotest.(check bool) "both constant undefined" true
    (Stats.correlation [| 2.0; 2.0 |] [| 5.0; 5.0 |] = None);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.correlation: length mismatch") (fun () ->
      ignore (Stats.correlation [| 1.0 |] [| 1.0; 2.0 |]))

(* the paper's formula on Table 2's published PBO/PPBO columns should give
   (nearly) the published correlation 0.986 *)
let correlation_paper_table2 () =
  let pbo =
    [| 0.2; 0.0; 73.7; 20.8; 20.7; 0.1; 3.1; 23.2; 39.9; 0.8; 0.7; 100.0;
       2.8; 53.3; 33.7 |]
  in
  let ppbo =
    [| 0.0; 0.0; 74.7; 21.7; 21.7; 0.0; 1.3; 22.6; 42.5; 0.2; 0.2; 100.0;
       0.9; 69.6; 48.4 |]
  in
  let r = corr_exn pbo ppbo in
  Alcotest.check (Alcotest.float 0.01) "paper r(PBO,PPBO)" 0.986 r

let correlation_excluding () =
  (* removing a dominant outlier changes the coefficient *)
  let xs = [| 100.0; 1.0; 2.0; 3.0 |] and ys = [| 100.0; 3.0; 2.0; 1.0 |] in
  let r = corr_exn xs ys in
  let r' = corr_exn' 0 xs ys in
  Alcotest.check Alcotest.bool "r dominated" true (r > 0.9);
  Alcotest.check feq "r' negative" (-1.0) r';
  Alcotest.check_raises "bad index"
    (Invalid_argument "Stats.correlation_excluding: index out of bounds")
    (fun () -> ignore (Stats.correlation_excluding 9 xs ys))

let relative_percent () =
  Alcotest.check (Alcotest.array feq) "scaled" [| 50.0; 100.0; 0.0 |]
    (Stats.relative_percent [| 2.0; 4.0; 0.0 |]);
  Alcotest.check (Alcotest.array feq) "all zero" [| 0.0; 0.0 |]
    (Stats.relative_percent [| 0.0; 0.0 |])

let argmax () =
  Alcotest.check Alcotest.int "argmax" 1 (Stats.argmax [| 1.0; 5.0; 5.0 |])

let prop_correlation_bounded =
  QCheck.Test.make ~count:300 ~name:"correlation in [-1,1]"
    QCheck.(pair (list_of_size (Gen.int_range 2 20) (float_range (-100.) 100.))
              (list_of_size (Gen.int_range 2 20) (float_range (-100.) 100.)))
    (fun (a, b) ->
      let n = min (List.length a) (List.length b) in
      QCheck.assume (n >= 2);
      let xs = Array.of_list (List.filteri (fun i _ -> i < n) a) in
      let ys = Array.of_list (List.filteri (fun i _ -> i < n) b) in
      match Stats.correlation xs ys with
      | None -> true (* degenerate variance: correlation undefined *)
      | Some r -> r >= -1.0000001 && r <= 1.0000001)

let prop_correlation_symmetric =
  QCheck.Test.make ~count:300 ~name:"correlation symmetric"
    QCheck.(list_of_size (Gen.int_range 2 10)
              (pair (float_range (-50.) 50.) (float_range (-50.) 50.)))
    (fun ps ->
      QCheck.assume (List.length ps >= 2);
      let xs = Array.of_list (List.map fst ps) in
      let ys = Array.of_list (List.map snd ps) in
      match (Stats.correlation xs ys, Stats.correlation ys xs) with
      | Some r1, Some r2 -> Float.abs (r1 -. r2) < 1e-9
      | None, None -> true
      | _ -> false)

let table_render () =
  let t = Table.create ~title:"demo" [ ("a", Table.Left); ("bb", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "long"; "22" ];
  let s = Table.render t in
  Alcotest.check Alcotest.bool "has title" true
    (String.length s > 4 && String.sub s 0 4 = "demo");
  (* all data lines share a width *)
  let lines =
    List.filter (fun l -> String.length l > 0) (String.split_on_char '\n' s)
  in
  let widths = List.map String.length (List.tl lines) in
  Alcotest.check Alcotest.bool "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.check_raises "cell mismatch"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "only one" ])

let formatting () =
  Alcotest.check Alcotest.string "pct" "20.9" (Table.fpct 20.94);
  Alcotest.check Alcotest.string "big" "2.352e+08" (Table.fnum 2.352e8);
  Alcotest.check Alcotest.string "int" "42" (Table.fnum 42.0)

let json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "mcf \"train\"\n");
        ("n", Json.Int (-42));
        ("pct", Json.Float 3.25);
        ("ok", Json.Bool true);
        ("missing", Json.Null);
        ("xs", Json.List [ Json.Int 1; Json.Float 0.5; Json.String "" ]);
        ("nested", Json.Obj [ ("empty", Json.List []) ]);
      ]
  in
  let s = Json.to_string ~indent:true v in
  Alcotest.(check bool) "roundtrip" true (Json.of_string s = v);
  let s' = Json.to_string v in
  Alcotest.(check bool) "compact roundtrip" true (Json.of_string s' = v)

let json_edge_cases () =
  (* non-finite floats are not representable in JSON: raising beats
     emitting a null that silently decodes as a different value *)
  let rejects v =
    match Json.to_string v with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "nan rejected" true (rejects (Json.Float Float.nan));
  Alcotest.(check bool) "inf rejected" true
    (rejects (Json.Float Float.infinity));
  Alcotest.(check bool) "-inf rejected" true
    (rejects (Json.Float Float.neg_infinity));
  Alcotest.(check bool) "nested nan rejected" true
    (rejects (Json.Obj [ ("a", Json.List [ Json.Float Float.nan ]) ]));
  Alcotest.(check bool) "member hit" true
    (Json.member "a" (Json.Obj [ ("a", Json.Int 1) ]) = Some (Json.Int 1));
  Alcotest.(check bool) "member miss" true
    (Json.member "b" (Json.Obj [ ("a", Json.Int 1) ]) = None);
  Alcotest.(check bool) "escape roundtrip" true
    (Json.of_string (Json.to_string (Json.String "a\\b\"c\tz\x01"))
     = Json.String "a\\b\"c\tz\x01");
  let raises s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "trailing garbage rejected" true (raises "1 2");
  Alcotest.(check bool) "unterminated string rejected" true (raises "\"ab");
  Alcotest.(check bool) "bare word rejected" true (raises "nope")

let json_strict_single_document () =
  let raises s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  (* exactly one document: anything after the value is an error, not
     ignored — the server frames one JSON document per request *)
  Alcotest.(check bool) "two objects rejected" true (raises "{} {}");
  Alcotest.(check bool) "value then bracket rejected" true (raises "[1] ]");
  Alcotest.(check bool) "null then comment rejected" true (raises "null x");
  Alcotest.(check bool) "number then letter rejected" true (raises "1e3x");
  (* surrounding whitespace is fine *)
  Alcotest.(check bool) "padded document accepted" true
    (Json.of_string " \n\t {\"a\": 1} \r\n " = Json.Obj [ ("a", Json.Int 1) ]);
  (* strict numbers *)
  Alcotest.(check bool) "leading zero rejected" true (raises "01");
  Alcotest.(check bool) "negative leading zero rejected" true (raises "-07");
  Alcotest.(check bool) "zero accepted" true (Json.of_string "0" = Json.Int 0);
  Alcotest.(check bool) "negative zero accepted" true
    (Json.of_string "-0" = Json.Int 0);
  Alcotest.(check bool) "zero point accepted" true
    (Json.of_string "0.5" = Json.Float 0.5);
  Alcotest.(check bool) "empty input rejected" true (raises "");
  Alcotest.(check bool) "whitespace only rejected" true (raises "  \n ")

let prop_json_float_roundtrip =
  QCheck.Test.make ~count:500 ~name:"finite float round-trips"
    QCheck.(float_range (-1e12) 1e12)
    (fun f ->
      (* %.6g keeps 6 significant digits, so the round-trip is close,
         not bit-exact — and always reads back as a Float, never an Int *)
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Json.Float g ->
        Float.abs (g -. f) <= 1e-5 *. Float.max 1e-30 (Float.abs f)
      | _ -> false)

(* ---------------- lru ---------------- *)

module Lru = Slo_util.Lru

let lru_eviction_order () =
  (* capacity for three 1-byte entries *)
  let t = Lru.create ~capacity_bytes:3 in
  Alcotest.(check bool) "add a" true (Lru.add t "a" 1 ~bytes:1);
  Alcotest.(check bool) "add b" true (Lru.add t "b" 2 ~bytes:1);
  Alcotest.(check bool) "add c" true (Lru.add t "c" 3 ~bytes:1);
  Alcotest.(check (list string)) "mru order" [ "c"; "b"; "a" ] (Lru.keys_mru t);
  (* the fourth entry evicts the least recently used, "a" *)
  Alcotest.(check bool) "add d" true (Lru.add t "d" 4 ~bytes:1);
  Alcotest.(check bool) "a evicted" true (Lru.find t "a" = None);
  Alcotest.(check (list string)) "after eviction" [ "d"; "c"; "b" ]
    (Lru.keys_mru t);
  Alcotest.(check int) "one eviction" 1 (Lru.evictions t);
  Alcotest.(check int) "length" 3 (Lru.length t);
  Alcotest.(check int) "bytes" 3 (Lru.bytes t)

let lru_hit_promotion () =
  let t = Lru.create ~capacity_bytes:3 in
  ignore (Lru.add t "a" 1 ~bytes:1);
  ignore (Lru.add t "b" 2 ~bytes:1);
  ignore (Lru.add t "c" 3 ~bytes:1);
  (* touching "a" makes it most-recently-used ... *)
  Alcotest.(check bool) "hit" true (Lru.find t "a" = Some 1);
  Alcotest.(check (list string)) "promoted" [ "a"; "c"; "b" ] (Lru.keys_mru t);
  (* ... so the next eviction takes "b" instead *)
  ignore (Lru.add t "d" 4 ~bytes:1);
  Alcotest.(check bool) "b evicted" true (Lru.find t "b" = None);
  Alcotest.(check bool) "a survived" true (Lru.find t "a" = Some 1);
  (* mem does not promote *)
  ignore (Lru.add t "e" 5 ~bytes:1);
  (* now [e; a; d] — mem on d, then evict: d must still go last-used-first *)
  Alcotest.(check bool) "mem sees d" true (Lru.mem t "d");
  ignore (Lru.add t "f" 6 ~bytes:1);
  Alcotest.(check bool) "mem did not promote d" true (Lru.find t "d" = None)

let lru_byte_accounting () =
  let t = Lru.create ~capacity_bytes:10 in
  Alcotest.(check bool) "big entry fits" true (Lru.add t "big" 0 ~bytes:8);
  Alcotest.(check bool) "small entry fits" true (Lru.add t "s1" 1 ~bytes:2);
  Alcotest.(check int) "bytes full" 10 (Lru.bytes t);
  (* a 3-byte entry forces out "big" (LRU), freeing 8 *)
  Alcotest.(check bool) "third entry" true (Lru.add t "s2" 2 ~bytes:3);
  Alcotest.(check bool) "big evicted" true (not (Lru.mem t "big"));
  Alcotest.(check int) "bytes after eviction" 5 (Lru.bytes t);
  (* replacing a key releases its old budget, and is not an eviction *)
  let ev0 = Lru.evictions t in
  Alcotest.(check bool) "replace s1" true (Lru.add t "s1" 10 ~bytes:5);
  Alcotest.(check int) "bytes after replace" 8 (Lru.bytes t);
  Alcotest.(check bool) "replaced value" true (Lru.find t "s1" = Some 10);
  Alcotest.(check int) "replace is not an eviction" ev0 (Lru.evictions t);
  (* an entry larger than the whole cache is refused without side effects *)
  let len0 = Lru.length t in
  Alcotest.(check bool) "oversized refused" false (Lru.add t "huge" 9 ~bytes:11);
  Alcotest.(check int) "nothing evicted for oversized" len0 (Lru.length t);
  Alcotest.(check bool) "oversized not stored" false (Lru.mem t "huge");
  (* remove releases budget *)
  Lru.remove t "s1";
  Alcotest.(check int) "bytes after remove" 3 (Lru.bytes t);
  Alcotest.check_raises "negative bytes rejected"
    (Invalid_argument "Lru.add: negative size") (fun () ->
      ignore (Lru.add t "neg" 0 ~bytes:(-1)));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Lru.create: capacity_bytes must be positive") (fun () ->
      ignore (Lru.create ~capacity_bytes:0))

let lru_head_hit_is_not_a_promotion () =
  let t = Lru.create ~capacity_bytes:4 in
  ignore (Lru.add t "a" 1 ~bytes:1);
  ignore (Lru.add t "b" 2 ~bytes:1);
  (* "b" is already MRU: a hit must leave the list untouched *)
  let p0 = Lru.promotions t in
  Alcotest.(check bool) "head hit" true (Lru.find t "b" = Some 2);
  Alcotest.(check int) "head hit does not relink" p0 (Lru.promotions t);
  Alcotest.(check (list string)) "order unchanged" [ "b"; "a" ]
    (Lru.keys_mru t);
  (* a non-head hit does promote *)
  Alcotest.(check bool) "tail hit" true (Lru.find t "a" = Some 1);
  Alcotest.(check int) "tail hit promotes" (p0 + 1) (Lru.promotions t);
  Alcotest.(check (list string)) "tail now MRU" [ "a"; "b" ] (Lru.keys_mru t);
  (* a single-entry cache survives repeated self-hits intact *)
  let s = Lru.create ~capacity_bytes:1 in
  ignore (Lru.add s "x" 1 ~bytes:1);
  Alcotest.(check bool) "hit" true (Lru.find s "x" = Some 1);
  Alcotest.(check bool) "hit again" true (Lru.find s "x" = Some 1);
  Alcotest.(check int) "no self-promotions" 0 (Lru.promotions s);
  ignore (Lru.add s "y" 2 ~bytes:1);
  Alcotest.(check (list string)) "list intact after evicting the only entry"
    [ "y" ] (Lru.keys_mru s)

(* ---------------- clock ---------------- *)

module Clock = Slo_util.Clock

let clock_monotonic () =
  let t0 = Clock.now_ns () in
  let last = ref t0 in
  let ok = ref true in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if Int64.compare t !last < 0 then ok := false;
    last := t
  done;
  Alcotest.(check bool) "never steps backwards" true !ok;
  Unix.sleepf 0.01;
  Alcotest.(check bool) "sleep advances it" true
    (Clock.elapsed_ms ~since:t0 >= 9.0);
  let t1 = Clock.now_ns () in
  Alcotest.(check (float 1e-9)) "span agrees with the raw difference"
    (Int64.to_float (Int64.sub t1 t0) /. 1e6)
    (Clock.span_ms t0 t1)

(* ---------------- histogram ---------------- *)

module Histogram = Slo_util.Histogram

let histogram_basics () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.check feq "empty percentile" 0.0 (Histogram.percentile h 50.0);
  List.iter (Histogram.record h) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.check feq "sum" 10.0 (Histogram.sum_ms h);
  Alcotest.check feq "mean" 2.5 (Histogram.mean_ms h);
  Alcotest.check feq "max" 4.0 (Histogram.max_ms h);
  (* percentiles are bucket upper bounds: conservative, never under *)
  Alcotest.(check bool) "p50 covers median" true
    (Histogram.percentile h 50.0 >= 2.0);
  Alcotest.(check bool) "p100 covers max" true
    (Histogram.percentile h 100.0 >= 4.0);
  Alcotest.(check bool) "monotone in p" true
    (Histogram.percentile h 99.0 >= Histogram.percentile h 50.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Histogram.percentile: p outside [0..100]") (fun () ->
      ignore (Histogram.percentile h 101.0));
  (* overflow bucket reports the exact observed maximum *)
  Histogram.record h 1e9;
  Alcotest.check feq "overflow p100 is exact max" 1e9
    (Histogram.percentile h 100.0)

let histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.record a) [ 1.0; 2.0 ];
  List.iter (Histogram.record b) [ 100.0; 200.0 ];
  Histogram.merge a b;
  Alcotest.(check int) "merged count" 4 (Histogram.count a);
  Alcotest.check feq "merged sum" 303.0 (Histogram.sum_ms a);
  Alcotest.check feq "merged max" 200.0 (Histogram.max_ms a);
  Alcotest.(check bool) "merged p75 in upper half" true
    (Histogram.percentile a 75.0 >= 100.0);
  (* src is untouched *)
  Alcotest.(check int) "src count intact" 2 (Histogram.count b)

let () =
  Alcotest.run "util"
    [
      ( "stats",
        [
          Alcotest.test_case "mean/sum" `Quick mean_and_sum;
          Alcotest.test_case "correlation" `Quick correlation_basics;
          Alcotest.test_case "paper table2 r" `Quick correlation_paper_table2;
          Alcotest.test_case "correlation excluding" `Quick
            correlation_excluding;
          Alcotest.test_case "relative percent" `Quick relative_percent;
          Alcotest.test_case "argmax" `Quick argmax;
          QCheck_alcotest.to_alcotest prop_correlation_bounded;
          QCheck_alcotest.to_alcotest prop_correlation_symmetric;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "formatting" `Quick formatting;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "edge cases" `Quick json_edge_cases;
          Alcotest.test_case "strict single document" `Quick
            json_strict_single_document;
          QCheck_alcotest.to_alcotest prop_json_float_roundtrip;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick lru_eviction_order;
          Alcotest.test_case "hit promotion" `Quick lru_hit_promotion;
          Alcotest.test_case "byte accounting" `Quick lru_byte_accounting;
          Alcotest.test_case "head hit is not a promotion" `Quick
            lru_head_hit_is_not_a_promotion;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick clock_monotonic ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick histogram_basics;
          Alcotest.test_case "merge" `Quick histogram_merge;
        ] );
    ]
