(* Statistics and table rendering. *)

module Stats = Slo_util.Stats
module Table = Slo_util.Table
module Json = Slo_util.Json

let feq = Alcotest.float 1e-9

let mean_and_sum () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.check feq "sum" 6.0 (Stats.sum [| 1.0; 2.0; 3.0 |]);
  Alcotest.check feq "sum empty" 0.0 (Stats.sum [||]);
  Alcotest.check_raises "mean empty"
    (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Stats.mean [||]))

let corr_exn xs ys =
  match Stats.correlation xs ys with
  | Some r -> r
  | None -> Alcotest.fail "expected Some correlation"

let corr_exn' i xs ys =
  match Stats.correlation_excluding i xs ys with
  | Some r -> r
  | None -> Alcotest.fail "expected Some correlation"

let correlation_basics () =
  Alcotest.check feq "perfect" 1.0
    (corr_exn [| 1.0; 2.0; 3.0 |] [| 10.0; 20.0; 30.0 |]);
  Alcotest.check feq "negative" (-1.0)
    (corr_exn [| 1.0; 2.0; 3.0 |] [| 3.0; 2.0; 1.0 |]);
  (* a zero-variance series has no defined correlation: None, not a fake
     0.0 that reads as "genuinely uncorrelated" *)
  Alcotest.(check bool) "constant series undefined" true
    (Stats.correlation [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |] = None);
  Alcotest.(check bool) "both constant undefined" true
    (Stats.correlation [| 2.0; 2.0 |] [| 5.0; 5.0 |] = None);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.correlation: length mismatch") (fun () ->
      ignore (Stats.correlation [| 1.0 |] [| 1.0; 2.0 |]))

(* the paper's formula on Table 2's published PBO/PPBO columns should give
   (nearly) the published correlation 0.986 *)
let correlation_paper_table2 () =
  let pbo =
    [| 0.2; 0.0; 73.7; 20.8; 20.7; 0.1; 3.1; 23.2; 39.9; 0.8; 0.7; 100.0;
       2.8; 53.3; 33.7 |]
  in
  let ppbo =
    [| 0.0; 0.0; 74.7; 21.7; 21.7; 0.0; 1.3; 22.6; 42.5; 0.2; 0.2; 100.0;
       0.9; 69.6; 48.4 |]
  in
  let r = corr_exn pbo ppbo in
  Alcotest.check (Alcotest.float 0.01) "paper r(PBO,PPBO)" 0.986 r

let correlation_excluding () =
  (* removing a dominant outlier changes the coefficient *)
  let xs = [| 100.0; 1.0; 2.0; 3.0 |] and ys = [| 100.0; 3.0; 2.0; 1.0 |] in
  let r = corr_exn xs ys in
  let r' = corr_exn' 0 xs ys in
  Alcotest.check Alcotest.bool "r dominated" true (r > 0.9);
  Alcotest.check feq "r' negative" (-1.0) r';
  Alcotest.check_raises "bad index"
    (Invalid_argument "Stats.correlation_excluding: index out of bounds")
    (fun () -> ignore (Stats.correlation_excluding 9 xs ys))

let relative_percent () =
  Alcotest.check (Alcotest.array feq) "scaled" [| 50.0; 100.0; 0.0 |]
    (Stats.relative_percent [| 2.0; 4.0; 0.0 |]);
  Alcotest.check (Alcotest.array feq) "all zero" [| 0.0; 0.0 |]
    (Stats.relative_percent [| 0.0; 0.0 |])

let argmax () =
  Alcotest.check Alcotest.int "argmax" 1 (Stats.argmax [| 1.0; 5.0; 5.0 |])

let prop_correlation_bounded =
  QCheck.Test.make ~count:300 ~name:"correlation in [-1,1]"
    QCheck.(pair (list_of_size (Gen.int_range 2 20) (float_range (-100.) 100.))
              (list_of_size (Gen.int_range 2 20) (float_range (-100.) 100.)))
    (fun (a, b) ->
      let n = min (List.length a) (List.length b) in
      QCheck.assume (n >= 2);
      let xs = Array.of_list (List.filteri (fun i _ -> i < n) a) in
      let ys = Array.of_list (List.filteri (fun i _ -> i < n) b) in
      match Stats.correlation xs ys with
      | None -> true (* degenerate variance: correlation undefined *)
      | Some r -> r >= -1.0000001 && r <= 1.0000001)

let prop_correlation_symmetric =
  QCheck.Test.make ~count:300 ~name:"correlation symmetric"
    QCheck.(list_of_size (Gen.int_range 2 10)
              (pair (float_range (-50.) 50.) (float_range (-50.) 50.)))
    (fun ps ->
      QCheck.assume (List.length ps >= 2);
      let xs = Array.of_list (List.map fst ps) in
      let ys = Array.of_list (List.map snd ps) in
      match (Stats.correlation xs ys, Stats.correlation ys xs) with
      | Some r1, Some r2 -> Float.abs (r1 -. r2) < 1e-9
      | None, None -> true
      | _ -> false)

let table_render () =
  let t = Table.create ~title:"demo" [ ("a", Table.Left); ("bb", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "long"; "22" ];
  let s = Table.render t in
  Alcotest.check Alcotest.bool "has title" true
    (String.length s > 4 && String.sub s 0 4 = "demo");
  (* all data lines share a width *)
  let lines =
    List.filter (fun l -> String.length l > 0) (String.split_on_char '\n' s)
  in
  let widths = List.map String.length (List.tl lines) in
  Alcotest.check Alcotest.bool "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.check_raises "cell mismatch"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "only one" ])

let formatting () =
  Alcotest.check Alcotest.string "pct" "20.9" (Table.fpct 20.94);
  Alcotest.check Alcotest.string "big" "2.352e+08" (Table.fnum 2.352e8);
  Alcotest.check Alcotest.string "int" "42" (Table.fnum 42.0)

let json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "mcf \"train\"\n");
        ("n", Json.Int (-42));
        ("pct", Json.Float 3.25);
        ("ok", Json.Bool true);
        ("missing", Json.Null);
        ("xs", Json.List [ Json.Int 1; Json.Float 0.5; Json.String "" ]);
        ("nested", Json.Obj [ ("empty", Json.List []) ]);
      ]
  in
  let s = Json.to_string ~indent:true v in
  Alcotest.(check bool) "roundtrip" true (Json.of_string s = v);
  let s' = Json.to_string v in
  Alcotest.(check bool) "compact roundtrip" true (Json.of_string s' = v)

let json_edge_cases () =
  (* non-finite floats are not representable in JSON: emitted as null *)
  Alcotest.(check string) "nan is null" "null"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check bool) "member hit" true
    (Json.member "a" (Json.Obj [ ("a", Json.Int 1) ]) = Some (Json.Int 1));
  Alcotest.(check bool) "member miss" true
    (Json.member "b" (Json.Obj [ ("a", Json.Int 1) ]) = None);
  Alcotest.(check bool) "escape roundtrip" true
    (Json.of_string (Json.to_string (Json.String "a\\b\"c\tz\x01"))
     = Json.String "a\\b\"c\tz\x01");
  let raises s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "trailing garbage rejected" true (raises "1 2");
  Alcotest.(check bool) "unterminated string rejected" true (raises "\"ab");
  Alcotest.(check bool) "bare word rejected" true (raises "nope")

let () =
  Alcotest.run "util"
    [
      ( "stats",
        [
          Alcotest.test_case "mean/sum" `Quick mean_and_sum;
          Alcotest.test_case "correlation" `Quick correlation_basics;
          Alcotest.test_case "paper table2 r" `Quick correlation_paper_table2;
          Alcotest.test_case "correlation excluding" `Quick
            correlation_excluding;
          Alcotest.test_case "relative percent" `Quick relative_percent;
          Alcotest.test_case "argmax" `Quick argmax;
          QCheck_alcotest.to_alcotest prop_correlation_bounded;
          QCheck_alcotest.to_alcotest prop_correlation_symmetric;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "formatting" `Quick formatting;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "edge cases" `Quick json_edge_cases;
        ] );
    ]
