(* The domain pool and the parallel evaluation engine.

   The load-bearing properties: results come back in submission order
   (so bench tables are byte-identical for any --jobs), a crashed job
   becomes a structured error instead of hanging the queue or killing
   the run, and the engine produces the same tables and JSON rows
   (modulo timings) at --jobs 1 and --jobs 4. *)

module Pool = Slo_exec.Pool
module Engine = Slo_bench.Engine
module Json = Slo_util.Json

(* ---------------- pool ---------------- *)

let pool_ordered () =
  let xs = List.init 20 (fun i -> i) in
  let rs = Pool.map_ordered ~jobs:4 (fun x -> x * x) xs in
  let expect = List.map (fun x -> Ok (x * x)) xs in
  Alcotest.(check bool) "squares in submission order" true (rs = expect)

let pool_error_isolated () =
  let p = Pool.create ~jobs:2 in
  let f1 = Pool.submit p (fun () -> 1) in
  let f2 = Pool.submit p (fun () -> failwith "boom") in
  (* submitted after the failing job: the worker must survive it *)
  let f3 = Pool.submit p (fun () -> 3) in
  Alcotest.(check bool) "ok before" true (Pool.await f1 = Ok 1);
  (match Pool.await f2 with
  | Error e ->
    Alcotest.(check bool) "error names the exception" true
      (Astring.String.is_infix ~affix:"boom" e.Pool.err_exn)
  | Ok _ -> Alcotest.fail "failing job returned Ok");
  Alcotest.(check bool) "ok after crash" true (Pool.await f3 = Ok 3);
  (match Pool.await_exn f2 with
  | exception Pool.Worker_error e ->
    Alcotest.(check bool) "await_exn re-raises" true
      (Astring.String.is_infix ~affix:"boom" e.Pool.err_exn)
  | _ -> Alcotest.fail "await_exn did not raise");
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

let pool_lifecycle () =
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Pool.create: jobs must be between 1 and 256") (fun () ->
      ignore (Pool.create ~jobs:0));
  let p = Pool.create ~jobs:1 in
  Alcotest.(check int) "jobs accessor" 1 (Pool.jobs p);
  let f = Pool.submit p (fun () -> "x") in
  Alcotest.(check bool) "await twice" true
    (Pool.await f = Ok "x" && Pool.await f = Ok "x");
  Pool.shutdown p;
  (match Pool.submit p (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "submit after shutdown accepted");
  Alcotest.(check bool) "default_jobs positive" true (Pool.default_jobs () >= 1)

let pool_await_timeout () =
  let p = Pool.create ~jobs:1 in
  (* expired: the job outlives the deadline, so the wait is cancelled *)
  let slow = Pool.submit p (fun () -> Unix.sleepf 0.25; "slow") in
  Alcotest.(check bool) "deadline expires" true
    (Pool.await_timeout slow ~timeout_ms:20.0 = None);
  (* cancellation-on-deadline cancels only the wait, never the job: the
     result still lands in the future and a later await retrieves it *)
  Alcotest.(check bool) "result survives the timeout" true
    (Pool.await slow = Ok "slow");
  Alcotest.(check bool) "await_timeout after completion" true
    (Pool.await_timeout slow ~timeout_ms:1.0 = Some (Ok "slow"));
  (* just in time: a fast job beats a generous deadline *)
  let fast = Pool.submit p (fun () -> 42) in
  Alcotest.(check bool) "fast job inside deadline" true
    (Pool.await_timeout fast ~timeout_ms:5000.0 = Some (Ok 42));
  (* a crashed job reports Error through the timed wait too *)
  let bad = Pool.submit p (fun () -> failwith "bang") in
  (match Pool.await_timeout bad ~timeout_ms:5000.0 with
  | Some (Error e) ->
    Alcotest.(check bool) "crash surfaces through timed wait" true
      (Astring.String.is_infix ~affix:"bang" e.Pool.err_exn)
  | Some (Ok _) -> Alcotest.fail "crashed job returned Ok"
  | None -> Alcotest.fail "crashed job timed out instead of failing");
  Pool.shutdown p

(* ---------------- engine ---------------- *)

(* A tiny hot/cold benchmark in the shape of Figure 1, small enough that
   a full evaluate (profile + before/after measurement) is fast. *)
let mini_src name =
  Printf.sprintf
    "struct %s { long hot1; double cold1; long hot2; double cold2; };\n\
     struct %s *arr;\n\
     long n;\n\
     long use_hot() { long i; long s = 0;\n\
     for (i = 0; i < n; i++) { s = s + arr[i].hot1 + arr[i].hot2; }\n\
     return s; }\n\
     double use_cold() { long i; double s = 0.0;\n\
     for (i = 0; i < n; i = i + 64) { s = s + arr[i].cold1 + arr[i].cold2; }\n\
     return s; }\n\
     int main() { long it; long s = 0; double c = 0.0; n = 512;\n\
     arr = (struct %s*)malloc(n * sizeof(struct %s));\n\
     for (it = 0; it < n; it++) { arr[it].hot1 = it; arr[it].hot2 = 2*it;\n\
     arr[it].cold1 = it * 0.5; arr[it].cold2 = it * 0.25; }\n\
     for (it = 0; it < 20; it++) { s = s + use_hot();\n\
     if (it %% 5 == 0) { c = c + use_cold(); } }\n\
     printf(\"%%ld %%g\\n\", s, c); return 0; }\n"
    name name name name

let mk_entry name : Slo_suite.Suite.entry =
  {
    name;
    source = mini_src (String.map (fun c -> if c = '-' then '_' else c) name);
    train_args = [];
    ref_args = [];
    paper = None;
  }

let mini_roster = List.map mk_entry [ "mini-a"; "mini-b"; "mini-c" ]

let run_tables ?backend ~jobs roster =
  Engine.reset_caches ();
  let run = Engine.create_run ?backend ~jobs () in
  let t1 = Engine.table1 run ~roster in
  let t3 = Engine.table3 run ~roster in
  let recs = Engine.records run in
  Engine.finish run;
  (t1, t3, recs)

let strip_timings recs =
  List.map
    (fun r -> Json.to_string (Engine.json_of_record ~with_timings:false r))
    recs

(* the table3 throughput summary is wall-clock-derived; drop it before
   comparing renders for determinism *)
let strip_throughput t3 =
  String.concat "\n"
    (List.filter
       (fun l -> not (Astring.String.is_prefix ~affix:"measure:" l))
       (String.split_on_char '\n' t3))

let engine_jobs_equivalence () =
  let t1a, t3a, ra = run_tables ~jobs:1 mini_roster in
  let t1b, t3b, rb = run_tables ~jobs:4 mini_roster in
  Alcotest.(check string) "table1 identical across --jobs" t1a t1b;
  Alcotest.(check string) "table3 identical across --jobs"
    (strip_throughput t3a) (strip_throughput t3b);
  Alcotest.(check (list string)) "JSON rows identical modulo timings"
    (strip_timings ra) (strip_timings rb);
  Alcotest.(check bool) "rows for every unit" true
    (List.length ra = 2 * List.length mini_roster)

(* the bench-smoke CI check in executable form: the walk and closure
   backends must produce identical tables and identical JSON rows once
   the wall-clock-dependent fields (timings, throughput) are stripped *)
let engine_backend_equivalence () =
  let _, t3w, rw =
    run_tables ~backend:Slo_vm.Backend.Walk ~jobs:1 mini_roster
  in
  let _, t3c, rc =
    run_tables ~backend:Slo_vm.Backend.Closure ~jobs:1 mini_roster
  in
  Alcotest.(check string) "table3 identical across backends"
    (strip_throughput t3w) (strip_throughput t3c);
  Alcotest.(check (list string)) "JSON rows identical modulo timings"
    (strip_timings rw) (strip_timings rc)

let engine_crash_is_error_row () =
  let broken =
    { (mk_entry "mini-broken") with source = "int main() { return 0 }" }
  in
  let roster = [ List.hd mini_roster; broken ] in
  Engine.reset_caches ();
  let run = Engine.create_run ~jobs:2 () in
  let t3 = Engine.table3 run ~roster in
  let recs = Engine.records run in
  Engine.finish run;
  Alcotest.(check bool) "run completed with an error row" true
    (Astring.String.is_infix ~affix:"ERROR" t3);
  let errs = List.filter (fun r -> r.Engine.r_error <> None) recs in
  Alcotest.(check int) "exactly the broken entry errored" 1 (List.length errs);
  Alcotest.(check bool) "error row names the benchmark" true
    (List.for_all (fun r -> r.Engine.r_benchmark = "mini-broken") errs);
  Alcotest.(check bool) "good entry still measured" true
    (List.exists
       (fun r -> r.Engine.r_benchmark = "mini-a" && r.Engine.r_cycles <> None)
       recs)

let engine_json_artifact () =
  Engine.reset_caches ();
  let run = Engine.create_run ~jobs:2 () in
  let (_ : string) = Engine.table3 run ~roster:[ List.hd mini_roster ] in
  let path = Filename.temp_file "slo_bench" ".json" in
  Engine.write_json run ~path;
  Engine.finish run;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let j = Json.of_string s in
  Alcotest.(check bool) "schema_version = 3" true
    (Json.member "schema_version" j = Some (Json.Int 3));
  Alcotest.(check bool) "fidelity recorded" true
    (Json.member "fidelity" j = Some (Json.String "exact"));
  Alcotest.(check bool) "backend recorded" true
    (Json.member "backend" j = Some (Json.String "closure"));
  Alcotest.(check bool) "jobs recorded" true
    (Json.member "jobs" j = Some (Json.Int 2));
  (match Json.member "results" j with
  | Some (Json.List [ row ]) ->
    Alcotest.(check bool) "row names the benchmark" true
      (Json.member "benchmark" row = Some (Json.String "mini-a"))
  | _ -> Alcotest.fail "expected a one-row results list")

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "ordered results" `Quick pool_ordered;
          Alcotest.test_case "crash isolated" `Quick pool_error_isolated;
          Alcotest.test_case "lifecycle" `Quick pool_lifecycle;
          Alcotest.test_case "await timeout" `Quick pool_await_timeout;
        ] );
      ( "engine",
        [
          Alcotest.test_case "jobs equivalence" `Quick engine_jobs_equivalence;
          Alcotest.test_case "backend equivalence" `Quick
            engine_backend_equivalence;
          Alcotest.test_case "crash is error row" `Quick
            engine_crash_is_error_row;
          Alcotest.test_case "json artifact" `Quick engine_json_artifact;
        ] );
    ]
