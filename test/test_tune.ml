(* The layout autotuner.

   The load-bearing properties: the candidate closure is deterministic
   and never contains the empty plan, the pad transform preserves
   program semantics while growing the struct, the search never
   returns a plan scoring worse than the heuristic incumbent, results
   are byte-identical at --jobs 1 and --jobs N, and a zero budget
   still yields the heuristic plan (anytime semantics) rather than an
   error. *)

module D = Slo_core.Driver
module H = Slo_core.Heuristics
module T = Slo_core.Transform
module Tune = Slo_tune.Tune
module W = Slo_profile.Weights

(* hot1/hot2 are read every iteration of the hot loop; cold1/cold2 are
   read once at the end, so they are live (not dead) but cold — the
   shape that makes split candidates legal and enumerable. *)
let hot_cold_src tag =
  Printf.sprintf
    "struct s%s { long hot1; long cold1; long hot2; long cold2; };\n\
     struct s%s *arr;\n\
     long n;\n\
     int main() { long it; long i; long s = 0; long c = 0; n = 64;\n\
     arr = (struct s%s*)malloc(n * sizeof(struct s%s));\n\
     for (it = 0; it < n; it++) { arr[it].hot1 = it; arr[it].hot2 = 2*it;\n\
     arr[it].cold1 = 3*it; arr[it].cold2 = 5*it; }\n\
     for (it = 0; it < 10; it++) {\n\
     for (i = 0; i < n; i++) { s = s + arr[i].hot1 + arr[i].hot2; } }\n\
     for (i = 0; i < n; i++) { c = c + arr[i].cold1 + arr[i].cold2; }\n\
     printf(\"%%ld %%ld\\n\", s, c); return 0; }\n"
    tag tag tag tag

let cfg () = Tune.default_config ~scheme:W.ISPBO ~feedback:None

(* ---------------- enumeration ---------------- *)

let enum_closure () =
  let prog = D.compile (hot_cold_src "en") in
  let cands = Tune.enumerate prog (cfg ()) in
  Alcotest.(check bool) "non-empty closure" true (cands <> []);
  Alcotest.(check bool) "no empty candidate" true
    (List.for_all (fun c -> c <> []) cands);
  let again = Tune.enumerate prog (cfg ()) in
  Alcotest.(check bool) "deterministic" true (cands = again);
  let has_split =
    List.exists
      (List.exists (function H.Split _ -> true | _ -> false))
      cands
  and has_pad =
    List.exists
      (List.exists (function H.Pad _ -> true | _ -> false))
      cands
  in
  Alcotest.(check bool) "contains split candidates" true has_split;
  Alcotest.(check bool) "contains pad candidates" true has_pad

let enum_truncates () =
  let prog = D.compile (hot_cold_src "tr") in
  let c = { (cfg ()) with Tune.max_candidates = 3 } in
  let cands = Tune.enumerate prog c in
  Alcotest.(check int) "capped" 3 (List.length cands);
  let full = Tune.enumerate prog (cfg ()) in
  (* the cap takes a prefix of the canonical order *)
  Alcotest.(check bool) "prefix of the full closure" true
    (cands = List.filteri (fun i _ -> i < 3) full)

(* ---------------- pad transform ---------------- *)

let pad_semantics () =
  let prog = D.compile (hot_cold_src "pd") in
  let before = D.measure ~pipeline:false prog in
  let prog' =
    D.transform_with_plans ~verify:true prog
      [ H.Pad { T.pd_typ = "spd"; pd_bytes = 24 } ]
  in
  let after = D.measure ~pipeline:false prog' in
  Alcotest.(check string) "output preserved"
    before.D.m_result.Slo_vm.Interp.output
    after.D.m_result.Slo_vm.Interp.output;
  let size p =
    Layout.struct_size (Layout.create p.Ir.structs) "spd"
  in
  Alcotest.(check int) "struct grew by the pad" (size prog + 24) (size prog');
  (* padding again replaces the pad field instead of stacking *)
  let prog'' =
    D.transform_with_plans ~verify:true prog'
      [ H.Pad { T.pd_typ = "spd"; pd_bytes = 8 } ]
  in
  Alcotest.(check int) "re-pad replaces" (size prog + 8) (size prog'')

let pad_rejects () =
  let prog = D.compile (hot_cold_src "pr") in
  Alcotest.check_raises "non-positive bytes"
    (Invalid_argument "Transform.pad: 0 pad bytes (need > 0)") (fun () ->
      T.pad prog { T.pd_typ = "spr"; pd_bytes = 0 });
  Alcotest.check_raises "unknown struct"
    (Invalid_argument "Transform.pad: unknown struct nosuch") (fun () ->
      T.pad prog { T.pd_typ = "nosuch"; pd_bytes = 8 })

(* ---------------- search ---------------- *)

let search_never_worse () =
  let prog = D.compile (hot_cold_src "nw") in
  let r = Tune.search prog (cfg ()) in
  Alcotest.(check bool) "found <= heuristic" true
    (r.Tune.t_found_cycles <= r.t_heuristic_cycles);
  Alcotest.(check bool) "improved iff strict" true
    (r.t_improved = (r.t_found_cycles < r.t_heuristic_cycles));
  Alcotest.(check bool) "complete without budget" true r.t_complete;
  Alcotest.(check bool) "explored everything" true
    (r.t_explored = r.t_total)

let search_deterministic_jobs () =
  let prog = D.compile (hot_cold_src "dj") in
  let r1 = Tune.search prog { (cfg ()) with Tune.jobs = 1 } in
  let r2 = Tune.search prog { (cfg ()) with Tune.jobs = 2 } in
  Alcotest.(check bool) "same winner" true (r1.Tune.t_found = r2.Tune.t_found);
  Alcotest.(check int) "same cycles" r1.t_found_cycles r2.t_found_cycles;
  Alcotest.(check int) "same heuristic cycles" r1.t_heuristic_cycles
    r2.t_heuristic_cycles

let search_anytime_zero_budget () =
  let prog = D.compile (hot_cold_src "zb") in
  let r = Tune.search prog { (cfg ()) with Tune.budget_ms = Some 0.0 } in
  Alcotest.(check bool) "falls back to the heuristic" true
    (r.Tune.t_found = r.t_heuristic);
  Alcotest.(check bool) "incomplete" false r.t_complete;
  Alcotest.(check bool) "still never worse" true
    (r.t_found_cycles <= r.t_heuristic_cycles)

let search_validates () =
  let prog = D.compile (hot_cold_src "va") in
  let bad f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> ignore (Tune.search prog { (cfg ()) with Tune.jobs = 0 }));
  bad (fun () -> ignore (Tune.search prog { (cfg ()) with Tune.beam = 0 }));
  bad (fun () ->
      ignore (Tune.search prog { (cfg ()) with Tune.max_candidates = 0 }))

let () =
  Alcotest.run "tune"
    [
      ( "enumerate",
        [
          Alcotest.test_case "closure" `Quick enum_closure;
          Alcotest.test_case "truncates" `Quick enum_truncates;
        ] );
      ( "pad",
        [
          Alcotest.test_case "semantics" `Quick pad_semantics;
          Alcotest.test_case "rejects" `Quick pad_rejects;
        ] );
      ( "search",
        [
          Alcotest.test_case "never worse" `Quick search_never_worse;
          Alcotest.test_case "jobs determinism" `Quick
            search_deterministic_jobs;
          Alcotest.test_case "zero budget anytime" `Quick
            search_anytime_zero_budget;
          Alcotest.test_case "validates config" `Quick search_validates;
        ] );
    ]
