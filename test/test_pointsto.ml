(* The sharper legality test: pointer provenance and field collapse. *)

module P = Slo_pointsto.Pointsto
module L = Slo_core.Legality

let lower = Lower.lower_source

let single_field_exposure_refuted () =
  (* &p->a stored and dereferenced: only field 0 is reachable *)
  let prog =
    lower
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       int main() { long *ap;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       ap = &p->a; *ap = 5; return (int)p->a; }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "not collapsed" false (P.collapsed pts "s");
  Alcotest.(check (list int)) "field 0 exposed" [ 0 ] (P.exposed_fields pts "s");
  (* legality flags ATKN, but points-to refutes it *)
  let leg = L.analyze prog in
  Alcotest.(check bool) "ATKN found" true (List.mem L.ATKN (L.reasons leg "s"));
  Alcotest.(check bool) "refutable" true (P.refutable pts "s")

let raw_cast_walk_collapses () =
  let prog =
    lower
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       int main() { long *raw; long h = 0; long i;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       raw = (long*)p;\n\
       for (i = 0; i < 8; i++) { h = h + raw[i]; }\n\
       return (int)h; }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "collapsed" true (P.collapsed pts "s")

let local_struct_cast_collapses () =
  let prog =
    lower
      "struct v { double x; double y; double z; };\n\
       double dot(struct v *a) { double *r; r = (double*)a;\n\
       return r[0] + r[1] + r[2]; }\n\
       int main() { struct v u; u.x = 1.0; u.y = 2.0; u.z = 3.0;\n\
       return (int)dot(&u); }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "stack object collapsed through raw walk" true
    (P.collapsed pts "v")

let two_distinct_fields_exposed_ok () =
  (* two separate single-field pointers do not collapse each other *)
  let prog =
    lower
      "struct s { long a; long b; long c; };\n\
       struct s *p;\n\
       int main() { long *ap; long *bp;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       ap = &p->a; bp = &p->b; *ap = 1; *bp = 2;\n\
       return (int)(p->a + p->b); }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "still precise" false (P.collapsed pts "s");
  Alcotest.(check (list int)) "both fields exposed" [ 0; 1 ]
    (P.exposed_fields pts "s")

let escape_to_extern_collapses () =
  let prog =
    lower
      "struct s { long a; long b; };\n\
       extern long lib(struct s*, long);\n\
       struct s *p;\n\
       int main() { p = (struct s*)malloc(2 * sizeof(struct s));\n\
       lib(p, 1); return (int)p->a; }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "escapes collapse" true (P.collapsed pts "s")

let provenance_through_calls () =
  (* a field pointer passed through a defined function keeps its precision *)
  let prog =
    lower
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       long deref(long *x) { return *x; }\n\
       int main() { p = (struct s*)malloc(2 * sizeof(struct s));\n\
       p->a = 9; return (int)deref(&p->a); }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "precise through call" false (P.collapsed pts "s")

let roster_gap_between_columns () =
  (* on the mcf model: strict < points-to <= relax *)
  let prog = lower Slo_suite.Prog_mcf.source in
  let leg = L.analyze prog in
  let pts = P.analyze prog in
  let types = L.types leg in
  let count pred = List.length (List.filter pred types) in
  let strict = count (L.is_legal leg) in
  let ptsto =
    count (fun s ->
        L.is_legal leg s
        || (L.is_legal ~relax:true leg s && P.refutable pts s))
  in
  let relax = count (L.is_legal ~relax:true leg) in
  Alcotest.(check bool) "strict <= ptsto" true (strict <= ptsto);
  Alcotest.(check bool) "ptsto <= relax" true (ptsto <= relax);
  (* arc's ATKN is refutable; basket's raw cast walk is not *)
  Alcotest.(check bool) "arc refuted" true (P.refutable pts "arc");
  Alcotest.(check bool) "basket collapsed" true (P.collapsed pts "basket")

let () =
  Alcotest.run "pointsto"
    [
      ( "collapse",
        [
          Alcotest.test_case "single field refuted" `Quick
            single_field_exposure_refuted;
          Alcotest.test_case "raw walk collapses" `Quick
            raw_cast_walk_collapses;
          Alcotest.test_case "stack object" `Quick local_struct_cast_collapses;
          Alcotest.test_case "two fields ok" `Quick
            two_distinct_fields_exposed_ok;
          Alcotest.test_case "extern escape" `Quick escape_to_extern_collapses;
          Alcotest.test_case "through calls" `Quick provenance_through_calls;
          Alcotest.test_case "mcf columns" `Quick roster_gap_between_columns;
        ] );
    ]
