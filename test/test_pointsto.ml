(* The sharper legality test: pointer provenance and field collapse. *)

module P = Slo_pointsto.Pointsto
module L = Slo_core.Legality

let lower = Lower.lower_source

let single_field_exposure_refuted () =
  (* &p->a stored and dereferenced: only field 0 is reachable *)
  let prog =
    lower
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       int main() { long *ap;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       ap = &p->a; *ap = 5; return (int)p->a; }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "not collapsed" false (P.collapsed pts "s");
  Alcotest.(check (list int)) "field 0 exposed" [ 0 ] (P.exposed_fields pts "s");
  (* legality flags ATKN, but points-to refutes it *)
  let leg = L.analyze prog in
  Alcotest.(check bool) "ATKN found" true (List.mem L.ATKN (L.reasons leg "s"));
  Alcotest.(check bool) "refutable" true (P.refutable pts "s")

let raw_cast_walk_collapses () =
  let prog =
    lower
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       int main() { long *raw; long h = 0; long i;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       raw = (long*)p;\n\
       for (i = 0; i < 8; i++) { h = h + raw[i]; }\n\
       return (int)h; }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "collapsed" true (P.collapsed pts "s")

let local_struct_cast_collapses () =
  let prog =
    lower
      "struct v { double x; double y; double z; };\n\
       double dot(struct v *a) { double *r; r = (double*)a;\n\
       return r[0] + r[1] + r[2]; }\n\
       int main() { struct v u; u.x = 1.0; u.y = 2.0; u.z = 3.0;\n\
       return (int)dot(&u); }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "stack object collapsed through raw walk" true
    (P.collapsed pts "v")

let two_distinct_fields_exposed_ok () =
  (* two separate single-field pointers do not collapse each other *)
  let prog =
    lower
      "struct s { long a; long b; long c; };\n\
       struct s *p;\n\
       int main() { long *ap; long *bp;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       ap = &p->a; bp = &p->b; *ap = 1; *bp = 2;\n\
       return (int)(p->a + p->b); }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "still precise" false (P.collapsed pts "s");
  Alcotest.(check (list int)) "both fields exposed" [ 0; 1 ]
    (P.exposed_fields pts "s")

let escape_to_extern_collapses () =
  let prog =
    lower
      "struct s { long a; long b; };\n\
       extern long lib(struct s*, long);\n\
       struct s *p;\n\
       int main() { p = (struct s*)malloc(2 * sizeof(struct s));\n\
       lib(p, 1); return (int)p->a; }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "escapes collapse" true (P.collapsed pts "s")

let provenance_through_calls () =
  (* a field pointer passed through a defined function keeps its precision *)
  let prog =
    lower
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       long deref(long *x) { return *x; }\n\
       int main() { p = (struct s*)malloc(2 * sizeof(struct s));\n\
       p->a = 9; return (int)deref(&p->a); }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "precise through call" false (P.collapsed pts "s")

let roster_gap_between_columns () =
  (* on the mcf model: strict < points-to <= relax *)
  let prog = lower Slo_suite.Prog_mcf.source in
  let leg = L.analyze prog in
  let pts = P.analyze prog in
  let types = L.types leg in
  let count pred = List.length (List.filter pred types) in
  let strict = count (L.is_legal leg) in
  let ptsto =
    count (fun s ->
        L.is_legal leg s
        || (L.is_legal ~relax:true leg s && P.refutable pts s))
  in
  let relax = count (L.is_legal ~relax:true leg) in
  Alcotest.(check bool) "strict <= ptsto" true (strict <= ptsto);
  Alcotest.(check bool) "ptsto <= relax" true (ptsto <= relax);
  (* arc's ATKN is refutable; basket's raw cast walk is not *)
  Alcotest.(check bool) "arc refuted" true (P.refutable pts "arc");
  Alcotest.(check bool) "basket collapsed" true (P.collapsed pts "basket")

(* ---------------- provenance chains ---------------- *)

let chain_on_raw_walk () =
  let prog =
    lower
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       int main() { long *raw; long h; long i; h = 0;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       raw = (long*)p;\n\
       for (i = 0; i < 8; i++) { h = h + raw[i]; }\n\
       return (int)h; }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "collapsed" true (P.collapsed pts "s");
  let chain = P.why_collapsed pts "s" in
  Alcotest.(check bool) "chain recorded" true (chain <> []);
  List.iter
    (fun (e : P.event) ->
      Alcotest.(check string) "events in main" "main" e.ev_fn;
      Alcotest.(check bool) "located" true (e.ev_loc.Ir.Loc.line >= 1);
      Alcotest.(check bool) "explained" true (String.length e.ev_what > 0))
    chain;
  (* the chain opens with how the raw view arose, not where it was used *)
  match chain with
  | origin :: _ ->
    Alcotest.(check bool) "origin precedes the walk" true
      (origin.P.ev_loc.Ir.Loc.line <= 6)
  | [] -> ()

let chain_on_struct_typed_global () =
  (* the anchor is a struct-typed global, not a pointer *)
  let prog =
    lower
      "struct s { long a; long b; };\n\
       struct s g;\n\
       int main() { long *r;\n\
       r = (long*)&g;\n\
       return (int)(r[0] + r[1]); }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "global object collapsed" true (P.collapsed pts "s");
  Alcotest.(check bool) "chain recorded" true (P.why_collapsed pts "s" <> [])

let chain_through_other_structs_field () =
  (* the raw pointer is stored through another struct's field and
     dereferenced after a reload: the provenance must survive the hop *)
  let prog =
    lower
      "struct box { long *slot; long pad; };\n\
       struct s { long a; long b; };\n\
       struct s *p; struct box *bx;\n\
       int main() { long *r;\n\
       p = (struct s*)malloc(2 * sizeof(struct s));\n\
       bx = (struct box*)malloc(1 * sizeof(struct box));\n\
       p->a = 7;\n\
       bx->slot = (long*)p;\n\
       r = bx->slot;\n\
       return (int)(r[0] + r[1]); }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "s collapsed through the stored raw view" true
    (P.collapsed pts "s");
  Alcotest.(check bool) "chain recorded" true (P.why_collapsed pts "s" <> [])

let relax_accepts_but_pointsto_collapses () =
  (* CSTF only — relaxed counting tolerates it, points-to cannot *)
  let prog =
    lower
      "struct s { long a; long b; };\n\
       struct s *p; long sink;\n\
       int main() { long *raw;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       p->a = 1; p->b = 2;\n\
       raw = (long*)p;\n\
       sink = raw[1];\n\
       return (int)(p->a + sink); }"
  in
  let leg = L.analyze prog in
  let pts = P.analyze prog in
  Alcotest.(check bool) "strict rejects" false (L.is_legal leg "s");
  Alcotest.(check bool) "relax accepts" true (L.is_legal ~relax:true leg "s");
  Alcotest.(check bool) "points-to still collapses" true (P.collapsed pts "s");
  Alcotest.(check bool) "not refutable" false (P.refutable pts "s");
  Alcotest.(check bool) "with a recorded reason" true
    (P.why_collapsed pts "s" <> [])

let no_chain_when_precise () =
  let prog =
    lower
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       int main() { long *ap;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       ap = &p->a; *ap = 5; return (int)p->a; }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "no collapse" false (P.collapsed pts "s");
  Alcotest.(check (list int)) "single field exposed" [ 0 ]
    (P.exposed_fields pts "s");
  Alcotest.(check bool) "no chain" true (P.why_collapsed pts "s" = [])

let exposed_fields_through_aliased_anchor () =
  (* field pointers reached via a pointer stored in another struct *)
  let prog =
    lower
      "struct box { long *slot; long pad; };\n\
       struct s { long a; long b; long c; };\n\
       struct s *p; struct box *bx;\n\
       int main() {\n\
       p = (struct s*)malloc(2 * sizeof(struct s));\n\
       bx = (struct box*)malloc(1 * sizeof(struct box));\n\
       bx->slot = &p->b;\n\
       *(bx->slot) = 9;\n\
       return (int)(p->a + p->b); }"
  in
  let pts = P.analyze prog in
  Alcotest.(check bool) "s stays precise" false (P.collapsed pts "s");
  Alcotest.(check bool) "field b exposed" true
    (List.mem 1 (P.exposed_fields pts "s"))

let () =
  Alcotest.run "pointsto"
    [
      ( "collapse",
        [
          Alcotest.test_case "single field refuted" `Quick
            single_field_exposure_refuted;
          Alcotest.test_case "raw walk collapses" `Quick
            raw_cast_walk_collapses;
          Alcotest.test_case "stack object" `Quick local_struct_cast_collapses;
          Alcotest.test_case "two fields ok" `Quick
            two_distinct_fields_exposed_ok;
          Alcotest.test_case "extern escape" `Quick escape_to_extern_collapses;
          Alcotest.test_case "through calls" `Quick provenance_through_calls;
          Alcotest.test_case "mcf columns" `Quick roster_gap_between_columns;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "raw walk chain" `Quick chain_on_raw_walk;
          Alcotest.test_case "struct-typed global" `Quick
            chain_on_struct_typed_global;
          Alcotest.test_case "through another field" `Quick
            chain_through_other_structs_field;
          Alcotest.test_case "relax vs points-to" `Quick
            relax_accepts_but_pointsto_collapses;
          Alcotest.test_case "precise means no chain" `Quick
            no_chain_when_precise;
          Alcotest.test_case "aliased anchor exposure" `Quick
            exposed_fields_through_aliased_anchor;
        ] );
    ]
