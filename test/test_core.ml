(* The paper's framework: legality tests, affinity/hotness, heuristics,
   the four transformations, the advisor. *)

module L = Slo_core.Legality
module A = Slo_core.Affinity
module H = Slo_core.Heuristics
module T = Slo_core.Transform
module Adv = Slo_core.Advisor
module D = Slo_core.Driver
module W = Slo_profile.Weights

let lower = Lower.lower_source
let analyze src = L.analyze (lower src)

let has_reason leg typ r = List.mem r (L.reasons leg typ)

(* ------------------------- legality ------------------------- *)

let legality_clean () =
  let leg =
    analyze
      "struct s { int a; int b; };\n\
       struct s *p;\n\
       int main() { p = (struct s*)malloc(8 * sizeof(struct s));\n\
       p[0].a = 1; return p[0].a + p[3].b; }"
  in
  Alcotest.(check bool) "legal" true (L.is_legal leg "s");
  let a = (L.info leg "s").attrs in
  Alcotest.(check bool) "dyn alloc" true a.dyn_alloc;
  Alcotest.(check bool) "global ptr" true a.has_global_ptr;
  Alcotest.(check (list string)) "anchor globals" [ "p" ] a.global_ptrs

let legality_cstt () =
  (* cast of a non-allocation value to the type *)
  let leg =
    analyze
      "struct s { int a; };\n\
       int main() { long x; struct s *p; x = 64;\n\
       p = (struct s*)x; return p == (struct s*)0; }"
  in
  Alcotest.(check bool) "CSTT" true (has_reason leg "s" L.CSTT);
  Alcotest.(check bool) "relax recovers" true (L.is_legal ~relax:true leg "s")

let legality_cstt_untyped_alloc () =
  let leg =
    analyze
      "struct s { int a; int b; };\n\
       int main() { struct s *p; p = (struct s*)malloc(32);\n\
       p->a = 1; return p->a; }"
  in
  Alcotest.(check bool) "untyped alloc is CSTT" true
    (has_reason leg "s" L.CSTT)

let legality_malloc_cast_tolerated () =
  let leg =
    analyze
      "struct s { int a; };\n\
       int main() { struct s *p;\n\
       p = (struct s*)malloc(4 * sizeof(struct s)); p->a = 1; return p->a; }"
  in
  Alcotest.(check bool) "matching alloc cast tolerated" true
    (L.is_legal leg "s")

let legality_cstf () =
  let leg =
    analyze
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       int main() { long *raw;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       raw = (long*)p; return (int)raw[1]; }"
  in
  Alcotest.(check bool) "CSTF" true (has_reason leg "s" L.CSTF);
  Alcotest.(check bool) "relax recovers" true (L.is_legal ~relax:true leg "s")

let legality_atkn () =
  let leg =
    analyze
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       int main() { long *ap;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       ap = &p->a; return (int)*ap; }"
  in
  Alcotest.(check bool) "ATKN" true (has_reason leg "s" L.ATKN)

let legality_atkn_call_tolerated () =
  (* the paper tolerates field addresses passed as call arguments *)
  let leg =
    analyze
      "struct s { long a; long b; };\n\
       struct s *p;\n\
       void bump(long *x) { *x = *x + 1; }\n\
       int main() { p = (struct s*)malloc(4 * sizeof(struct s));\n\
       p->a = 0; bump(&p->a); return (int)p->a; }"
  in
  Alcotest.(check bool) "tolerated" true (L.is_legal leg "s");
  (* ...but the field cannot be considered dead anymore *)
  Alcotest.(check (list int)) "addr passed recorded" [ 0 ]
    (L.info leg "s").attrs.addr_passed_fields

let legality_libc_ind () =
  let leg =
    analyze
      "struct s { long a; };\n\
       struct q { long b; };\n\
       typedef long (*cb)(struct q*);\n\
       extern long lib_fn(struct s*, long);\n\
       long handler(struct q *x) { return x->b; }\n\
       int main() { struct s *p; struct q *r; cb f;\n\
       p = (struct s*)malloc(2 * sizeof(struct s));\n\
       r = (struct q*)malloc(2 * sizeof(struct q));\n\
       f = (&handler);\n\
       lib_fn(p, 1); return (int)f(r); }"
  in
  Alcotest.(check bool) "LIBC" true (has_reason leg "s" L.LIBC);
  Alcotest.(check bool) "IND" true (has_reason leg "q" L.IND);
  Alcotest.(check bool) "LIBC not relaxable" false
    (L.is_legal ~relax:true leg "s")

let legality_smal_mset_nest () =
  let leg =
    analyze
      "struct inner { long x; };\n\
       struct outer { struct inner i; long y; };\n\
       struct one { long v; };\n\
       struct zeroed { long z; };\n\
       int main() { struct one *a; struct zeroed *b;\n\
       a = (struct one*)malloc(1 * sizeof(struct one));\n\
       b = (struct zeroed*)malloc(4 * sizeof(struct zeroed));\n\
       memset(b, 0, 4 * sizeof(struct zeroed));\n\
       a->v = 1; return (int)(a->v + b->z); }"
  in
  Alcotest.(check bool) "SMAL" true (has_reason leg "one" L.SMAL);
  Alcotest.(check bool) "MSET" true (has_reason leg "zeroed" L.MSET);
  Alcotest.(check bool) "NEST inner" true (has_reason leg "inner" L.NEST);
  Alcotest.(check bool) "NEST outer" true (has_reason leg "outer" L.NEST)

let legality_escape_to_defined_ok () =
  let leg =
    analyze
      "struct s { long a; };\n\
       long use(struct s *p) { return p->a; }\n\
       int main() { struct s *p;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       p->a = 3; return (int)use(p); }"
  in
  Alcotest.(check bool) "escape to defined function is fine" true
    (L.is_legal leg "s");
  Alcotest.(check (list string)) "tuple recorded" [ "use" ]
    (L.info leg "s").attrs.escapes

let legality_null_cast_ok () =
  let leg =
    analyze
      "struct s { long a; };\n\
       struct s *p;\n\
       int main() { p = (struct s*)malloc(2 * sizeof(struct s));\n\
       p->a = 1;\n\
       if (p != (struct s*)0) { return (int)p->a; } return 0; }"
  in
  Alcotest.(check bool) "null constant tolerated" true (L.is_legal leg "s")

(* ------------------------- affinity ------------------------- *)

let simple_hot_cold =
  "struct s { long hot_x; long hot_y; long cold_z; long never; };\n\
   struct s *p;\n\
   int main() { int i; int r; long acc = 0;\n\
   p = (struct s*)malloc(1000 * sizeof(struct s));\n\
   for (i = 0; i < 1000; i++) { p[i].hot_x = i; p[i].hot_y = i;\n\
   p[i].cold_z = i; p[i].never = 0; }\n\
   for (r = 0; r < 50; r++) {\n\
   for (i = 0; i < 1000; i++) { acc = acc + p[i].hot_x * p[i].hot_y; } }\n\
   for (i = 0; i < 1000; i = i + 100) { acc = acc + p[i].cold_z; }\n\
   return (int)(acc % 97); }"

let affinity_with ?feedback scheme src =
  let prog = lower src in
  let feedback =
    match feedback with
    | Some true ->
      let fb, _ = Slo_profile.Collect.collect prog in
      Some fb
    | _ -> None
  in
  let bw = W.block_weights prog scheme ~feedback in
  (prog, A.analyze prog bw)

let affinity_hotness_order () =
  let _, aff = affinity_with ~feedback:true W.PBO simple_hot_cold in
  let g = Option.get (A.graph aff "s") in
  let rel = A.relative_hotness g in
  Alcotest.(check (Alcotest.float 1e-9)) "hot_x max" 100.0 rel.(0);
  Alcotest.(check bool) "hot pair together" true (rel.(1) = 100.0);
  Alcotest.(check bool) "cold much colder" true (rel.(2) < 10.0);
  Alcotest.(check bool) "never is coldest" true (rel.(3) <= rel.(2))

let affinity_edges () =
  let _, aff = affinity_with ~feedback:true W.PBO simple_hot_cold in
  let g = Option.get (A.graph aff "s") in
  (* hot_x and hot_y co-occur in the hot loop *)
  Alcotest.(check bool) "pair edge" true (A.edge_weight g 0 1 > 0.0);
  (* cold_z appears alone in its loop: self edge *)
  Alcotest.(check bool) "self edge" true (A.edge_weight g 2 2 > 0.0);
  (* no hot-cold pair edge beyond the init loop weight *)
  Alcotest.(check bool) "hot/cold edge weaker" true
    (A.edge_weight g 0 2 < A.edge_weight g 0 1)

let affinity_read_write_counts () =
  let _, aff = affinity_with ~feedback:true W.PBO simple_hot_cold in
  let g = Option.get (A.graph aff "s") in
  Alcotest.(check bool) "hot_x mostly read" true (g.reads.(0) > g.writes.(0));
  Alcotest.(check (Alcotest.float 1e-9)) "never is never read" 0.0 g.reads.(3);
  Alcotest.(check bool) "never is written" true (g.writes.(3) > 0.0)

let groups_merge () =
  let _, aff = affinity_with W.SPBO simple_hot_cold in
  let groups = A.groups_of_type aff "s" in
  Alcotest.(check bool) "some groups" true (List.length groups >= 2);
  (* all groups carry positive weight and sorted fields *)
  List.iter
    (fun (fs, w) ->
      Alcotest.(check bool) "weight > 0" true (w > 0.0);
      Alcotest.(check bool) "sorted" true (List.sort compare fs = fs))
    groups

(* ------------------------- heuristics ------------------------- *)

let decide_on ?threshold src scheme =
  let prog = lower src in
  let feedback =
    if W.needs_profile scheme then begin
      let fb, _ = Slo_profile.Collect.collect prog in
      Some fb
    end
    else None
  in
  let leg, aff = D.analyze prog ~scheme ~feedback in
  (prog, H.decide ?threshold prog leg aff ~scheme)

let plan_of decisions typ =
  (List.find (fun (d : H.decision) -> String.equal d.d_typ typ) decisions)
    .d_plan

let heuristics_split () =
  let _, ds = decide_on simple_hot_cold W.PBO in
  match plan_of ds "s" with
  | Some (H.Split sp) ->
    Alcotest.(check (list int)) "dead = never" [ 3 ] sp.s_dead;
    Alcotest.(check bool) "cold_z split out" true (List.mem 2 sp.s_cold)
  | Some (H.Peel _) ->
    (* this type is in fact peelable (single anchor global) — also fine,
       peeling wins when feasible per the paper *)
    ()
  | _ -> Alcotest.fail "expected a transformation for s"

let heuristics_requires_two_cold () =
  (* only one cold field: the link pointer would not pay off *)
  let src =
    "struct s { long h1; long h2; long onecold; struct s *self; };\n\
     struct s *p;\n\
     long probe(struct s *q) { return q->onecold; }\n\
     int main() { int i; int r; long acc = 0;\n\
     p = (struct s*)malloc(500 * sizeof(struct s));\n\
     for (i = 0; i < 500; i++) { p[i].h1 = i; p[i].h2 = i;\n\
     p[i].onecold = i; p[i].self = p + i; }\n\
     for (r = 0; r < 60; r++) { for (i = 0; i < 500; i++) {\n\
     acc = acc + p[i].h1 + p[i].h2 + p[i].self->h1; } }\n\
     acc = acc + probe(p + 3);\n\
     return (int)(acc % 97); }"
  in
  let _, ds = decide_on src W.PBO in
  (match plan_of ds "s" with
  | None -> ()
  | Some p -> Alcotest.failf "expected no plan, got %s" (H.plan_summary p))

let heuristics_not_dyn_alloc () =
  let src =
    "struct s { long a; long b; };\n\
     struct s g;\n\
     int main() { g.a = 1; g.b = 2; return (int)(g.a + g.b); }"
  in
  let _, ds = decide_on src W.ISPBO in
  Alcotest.(check bool) "no plan for globals-only type" true
    (plan_of ds "s" = None)

let heuristics_threshold_matters () =
  (* a mid-hotness field moves between hot and cold with the threshold *)
  let _, ds3 = decide_on ~threshold:3.0 simple_hot_cold W.PBO in
  let _, ds60 = decide_on ~threshold:60.0 simple_hot_cold W.PBO in
  let cold_count ds =
    match plan_of ds "s" with
    | Some (H.Split sp) -> List.length sp.s_cold
    | Some (H.Peel p) -> List.length p.p_live (* peeling ignores T_s *)
    | _ -> -1
  in
  Alcotest.(check bool) "threshold shifts the cut or peeling wins" true
    (cold_count ds3 <= cold_count ds60 || cold_count ds3 >= 0)

let heuristics_scheme_thresholds () =
  Alcotest.(check (Alcotest.float 0.0)) "PBO 3%" 3.0 (H.threshold_for W.PBO);
  Alcotest.(check (Alcotest.float 0.0)) "ISPBO 7.5%" 7.5
    (H.threshold_for W.ISPBO)

(* ------------------------- transformations ------------------------- *)

let outputs_match src plans =
  let prog = lower src in
  let before = Slo_vm.Interp.run_program prog in
  let after_prog = D.transform_with_plans prog plans in
  let after = Slo_vm.Interp.run_program after_prog in
  Alcotest.(check string) "output preserved" before.output after.output;
  (prog, after_prog)

let split_semantics () =
  let src =
    "struct s { long a; double b; long c; long d; struct s *nxt; };\n\
     struct s *p;\n\
     int main() { int i; long acc = 0; double f = 0.0;\n\
     p = (struct s*)malloc(100 * sizeof(struct s));\n\
     for (i = 0; i < 100; i++) { p[i].a = i; p[i].b = i * 0.5;\n\
     p[i].c = -i; p[i].d = i * 3; p[i].nxt = p + ((i + 1) % 100); }\n\
     for (i = 0; i < 100; i++) { acc = acc + p[i].a + p[i].nxt->d;\n\
     f = f + p[i].b - p[i].c; }\n\
     free(p);\n\
     printf(\"%ld %g\\n\", acc, f); return 0; }"
  in
  let _, after =
    outputs_match src
      [ H.Split { T.s_typ = "s"; s_hot = [ 0; 4 ]; s_cold = [ 1; 2; 3 ];
                  s_dead = [] } ]
  in
  (* old type gone, new types exist with the link *)
  Alcotest.(check bool) "s removed" false (Structs.mem after.Ir.structs "s");
  let hot = Structs.find after.Ir.structs "s__hot" in
  Alcotest.(check int) "hot = 2 + link" 3 (Array.length hot.fields);
  Alcotest.(check string) "link last" T.link_field_name
    hot.fields.(2).Structs.name;
  Alcotest.(check int) "cold fields" 3
    (Array.length (Structs.find after.Ir.structs "s__cold").fields)

let split_dead_removal () =
  let src =
    "struct s { long live; long dead_f; long c1; long c2; };\n\
     struct s *p;\n\
     int main() { int i; long acc = 0;\n\
     p = (struct s*)malloc(50 * sizeof(struct s));\n\
     for (i = 0; i < 50; i++) { p[i].live = i; p[i].dead_f = i * 7;\n\
     p[i].c1 = 1; p[i].c2 = 2; }\n\
     for (i = 0; i < 50; i++) { acc = acc + p[i].live + p[i].c1 + p[i].c2; }\n\
     printf(\"%ld\\n\", acc); return 0; }"
  in
  let _, after =
    outputs_match src
      [ H.Split { T.s_typ = "s"; s_hot = [ 0 ]; s_cold = [ 2; 3 ];
                  s_dead = [ 1 ] } ]
  in
  (* the dead store is gone: no instruction tags field dead_f anymore *)
  let still_stores_dead =
    List.exists
      (fun (f : Ir.func) ->
        List.exists
          (fun (b : Ir.block) ->
            List.exists
              (fun (i : Ir.instr) ->
                match i.idesc with
                | Ir.Istore (_, _, _, Some a) ->
                  String.equal a.astruct "s__cold" && false
                  (* dead field is in neither part *)
                | _ -> false)
              b.instrs)
          f.fblocks)
      after.funcs
  in
  Alcotest.(check bool) "no dead stores" false still_stores_dead;
  Alcotest.(check int) "hot has live+link" 2
    (Array.length (Structs.find after.Ir.structs "s__hot").fields)

let peel_semantics () =
  let src =
    "struct s { double w; long k; };\n\
     struct s *tab;\n\
     int main() { int i; long acc = 0; double f = 0.0;\n\
     tab = (struct s*)malloc(200 * sizeof(struct s));\n\
     for (i = 0; i < 200; i++) { tab[i].w = i * 0.25; tab[i].k = i * 3; }\n\
     for (i = 0; i < 200; i++) { acc = acc + tab[i].k; }\n\
     for (i = 0; i < 200; i = i + 10) { f = f + tab[i].w; }\n\
     free(tab);\n\
     printf(\"%ld %g\\n\", acc, f); return 0; }"
  in
  let prog = lower src in
  Alcotest.(check bool) "feasible" true
    (T.peel_feasible prog ~typ:"s" ~globals:[ "tab" ]);
  let _, after =
    outputs_match src
      [ H.Peel { T.p_typ = "s"; p_live = [ 0; 1 ]; p_dead = [];
                 p_globals = [ "tab" ] } ]
  in
  Alcotest.(check bool) "pieces exist" true
    (Structs.mem after.Ir.structs "s__w" && Structs.mem after.Ir.structs "s__k");
  Alcotest.(check bool) "piece globals exist" true
    (List.exists (fun (n, _, _) -> String.equal n "tab__w") after.globals)

let peel_infeasible_cases () =
  (* a local pointer of the type breaks peeling *)
  let prog =
    lower
      "struct s { long a; };\n\
       struct s *g;\n\
       int main() { struct s *loc; int i; long acc = 0;\n\
       g = (struct s*)malloc(10 * sizeof(struct s));\n\
       loc = g;\n\
       for (i = 0; i < 10; i++) { acc = acc + loc[i].a; }\n\
       return (int)acc; }"
  in
  Alcotest.(check bool) "local pointer blocks peeling" false
    (T.peel_feasible prog ~typ:"s" ~globals:[ "g" ]);
  (* a recursive pointer field blocks peeling *)
  let prog2 =
    lower
      "struct s { long a; struct s *next; };\n\
       struct s *g;\n\
       int main() { g = (struct s*)malloc(4 * sizeof(struct s));\n\
       g[0].a = 1; g[0].next = g + 1; return (int)g[0].a; }"
  in
  Alcotest.(check bool) "recursive field blocks peeling" false
    (T.peel_feasible prog2 ~typ:"s" ~globals:[ "g" ])

let peel_infeasible_escapes () =
  (* the anchor pointer escapes into a callee: the access chain crosses a
     function boundary, so piece-pointer substitution cannot be local *)
  let prog =
    lower
      "struct s { long a; };\n\
       struct s *g;\n\
       long take(struct s *p) { return p[0].a; }\n\
       int main() { g = (struct s*)malloc(4 * sizeof(struct s));\n\
       g[0].a = 7; return (int)take(g); }"
  in
  Alcotest.(check bool) "pointer passed to callee blocks peeling" false
    (T.peel_feasible prog ~typ:"s" ~globals:[ "g" ]);
  (* the anchor pointer is cast to an integer: its numeric value escapes,
     and a peeled object has no single address to stand for it *)
  let prog2 =
    lower
      "struct s { long a; };\n\
       struct s *g;\n\
       long h;\n\
       int main() { g = (struct s*)malloc(4 * sizeof(struct s));\n\
       g[0].a = 3; h = (long)g;\n\
       return (int)(g[0].a + (h & 0)); }"
  in
  Alcotest.(check bool) "cast to integer blocks peeling" false
    (T.peel_feasible prog2 ~typ:"s" ~globals:[ "g" ]);
  (* a helper returns the anchor type: a struct s* flows out of a call,
     reaching memory the rewrite never renamed *)
  let prog3 =
    lower
      "struct s { long a; };\n\
       struct s *g;\n\
       struct s *pick() { return g; }\n\
       int main() { g = (struct s*)malloc(4 * sizeof(struct s));\n\
       g[0].a = 5; return (int)(pick()[0].a); }"
  in
  Alcotest.(check bool) "returning the anchor type blocks peeling" false
    (T.peel_feasible prog3 ~typ:"s" ~globals:[ "g" ])

let rebuild_reorders () =
  let src =
    "struct s { long a; long dead_f; long b; };\n\
     struct s *p;\n\
     int main() { int i; long acc = 0;\n\
     p = (struct s*)malloc(20 * sizeof(struct s));\n\
     for (i = 0; i < 20; i++) { p[i].a = i; p[i].dead_f = 9; p[i].b = 2 * i; }\n\
     for (i = 0; i < 20; i++) { acc = acc + p[i].a * p[i].b; }\n\
     printf(\"%ld\\n\", acc); return 0; }"
  in
  let _, after =
    outputs_match src
      [ H.Rebuild { T.r_typ = "s"; r_order = [ 2; 0 ]; r_dead = [ 1 ] } ]
  in
  let d = Structs.find after.Ir.structs "s" in
  Alcotest.(check int) "two fields" 2 (Array.length d.fields);
  Alcotest.(check string) "b first" "b" d.fields.(0).Structs.name;
  let layout = Layout.create after.structs in
  Alcotest.(check int) "size shrank" 16 (Layout.struct_size layout "s")

let split_improves_mcf_like () =
  (* behavioural check on the full driver: a hot/cold pointer-chasing
     program gets faster *)
  let prog = lower simple_hot_cold in
  let fb, _ = Slo_profile.Collect.collect prog in
  let ev =
    D.evaluate ~config:Slo_cachesim.Hierarchy.small ~scheme:W.PBO
      ~feedback:(Some fb) prog
  in
  Alcotest.(check string) "outputs equal" ev.e_before.m_result.output
    ev.e_after.m_result.output;
  Alcotest.(check bool) "transformed something" true
    (List.exists (fun (d : H.decision) -> d.d_plan <> None) ev.e_decisions);
  Alcotest.(check bool) "not slower" true (ev.e_speedup_pct > -2.0)

(* ------------------------- GVL ------------------------- *)

let gvl_reorders_globals () =
  let src =
    "long cold1; long hotg; long cold2;\n\
     struct s { long v; };\n\
     struct s boxy;\n\
     int main() { int i; long a = 0;\n\
     boxy.v = 1;\n\
     cold1 = 1; cold2 = 2;\n\
     for (i = 0; i < 1000; i++) { hotg = hotg + i; a = a + hotg; }\n\
     return (int)((a + cold1 + cold2 + boxy.v) % 97); }"
  in
  let prog = lower src in
  let before = Slo_vm.Interp.run_program prog in
  let bw = W.block_weights prog W.ISPBO ~feedback:None in
  let hot = Slo_core.Gvl.hotness prog bw in
  Alcotest.(check string) "hotg is hottest" "hotg" (fst (List.hd hot));
  Slo_core.Gvl.reorder prog bw;
  (match prog.Ir.globals with
  | (first, _, _) :: _ -> Alcotest.(check string) "hotg first" "hotg" first
  | [] -> Alcotest.fail "no globals");
  (* aggregates sort after scalars *)
  let names = List.map (fun (n, _, _) -> n) prog.Ir.globals in
  Alcotest.(check bool) "struct global last" true
    (List.nth names (List.length names - 1) = "boxy");
  let after = Slo_vm.Interp.run_program prog in
  Alcotest.(check string) "semantics preserved" before.output after.output;
  Alcotest.(check int) "same exit" before.exit_code after.exit_code

(* ------------------------- advisor ------------------------- *)

let advisor_report () =
  let prog = lower simple_hot_cold in
  let fb, _ = Slo_profile.Collect.collect prog in
  let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb) in
  let decisions = H.decide prog leg aff ~scheme:W.PBO in
  let matched = Slo_profile.Matching.apply prog fb in
  let adv =
    Adv.build prog leg aff ~decisions ~dcache:(Some matched.instr_dcache)
  in
  let rep = Adv.report adv in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report mentions %s" needle) true
        (Astring.String.is_infix ~affix:needle rep))
    [ "Type     : s"; "hot_x"; "*dead*"; "aff:"; "hot:"; "read :" ];
  match Adv.vcg adv "s" with
  | Some v ->
    Alcotest.(check bool) "vcg graph" true
      (Astring.String.is_infix ~affix:"graph:" v
      && Astring.String.is_infix ~affix:"hot_x" v)
  | None -> Alcotest.fail "expected vcg output"

(* ---------------- witnesses and allocation sites ---------------- *)

let witness_locations () =
  let leg =
    analyze
      "struct s { long a; long b; };\n\
       struct s *p; long sink;\n\
       int main() { long *raw;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       raw = (long*)p;\n\
       sink = raw[0];\n\
       return (int)(p->a + sink); }"
  in
  match L.witnesses_for leg "s" L.CSTF with
  | [] -> Alcotest.fail "CSTF carries no witness"
  | w :: _ ->
    Alcotest.(check (option string)) "witness in main" (Some "main") w.w_fn;
    (match w.w_loc with
    | Some l -> Alcotest.(check int) "witness on the cast line" 5 l.Ir.Loc.line
    | None -> Alcotest.fail "CSTF witness carries no location");
    Alcotest.(check bool) "explanation names both types" true
      (Astring.String.is_infix ~affix:"struct 's'" w.w_explain)

let every_reason_is_witnessed () =
  let leg =
    analyze
      "struct n { long x; };\n\
       struct s { struct n inner; long b; };\n\
       extern long lib(struct s*, long);\n\
       struct s *p;\n\
       int main() { char *c;\n\
       p = (struct s*)malloc(2 * sizeof(struct s));\n\
       c = (char*)p;\n\
       lib(p, sizeof(struct s) + 1);\n\
       return (int)p->b + (int)*c; }"
  in
  List.iter
    (fun typ ->
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s witnessed" typ (L.reason_name r))
            true
            (L.witnesses_for leg typ r <> []))
        (L.reasons leg typ))
    (L.types leg)

let all_alloc_sites_recorded () =
  let leg =
    analyze
      "struct s { long a; long b; };\n\
       struct s *p; struct s *q;\n\
       struct s *mk() { return (struct s*)malloc(2 * sizeof(struct s)); }\n\
       int main() {\n\
       p = (struct s*)malloc(2 * sizeof(struct s));\n\
       q = mk();\n\
       p->a = 1; q->b = 2;\n\
       return (int)(p->a + q->b); }"
  in
  match L.attrs_of leg "s" with
  | None -> Alcotest.fail "no attrs for s"
  | Some a ->
    Alcotest.(check int) "both allocation sites recorded" 2
      (List.length a.alloc_sites);
    let lines =
      List.map (fun (al : L.alloc_site) -> al.al_loc.Ir.Loc.line) a.alloc_sites
      |> List.sort compare
    in
    Alcotest.(check (list int)) "sites on the malloc lines" [ 3; 5 ] lines;
    Alcotest.(check bool) "distinct functions" true
      (List.exists (fun (al : L.alloc_site) -> al.al_fn = "mk") a.alloc_sites
      && List.exists
           (fun (al : L.alloc_site) -> al.al_fn = "main")
           a.alloc_sites)

let witnesses_deduplicated () =
  (* the same cast construct seen across fixpoint/rescans must yield one
     witness, and reasons must not repeat *)
  let leg =
    analyze
      "struct s { long a; long b; };\n\
       struct s *p; long sink;\n\
       int main() { long *r1; long *r2;\n\
       p = (struct s*)malloc(4 * sizeof(struct s));\n\
       r1 = (long*)p;\n\
       r2 = (long*)p;\n\
       sink = r1[0] + r2[0];\n\
       return (int)sink; }"
  in
  let ws = L.witnesses_for leg "s" L.CSTF in
  (* two distinct casts: two witnesses, each unique *)
  Alcotest.(check int) "one witness per construct" 2 (List.length ws);
  let key (w : L.witness) = (w.w_fn, w.w_iid, w.w_explain) in
  Alcotest.(check int) "no duplicates" 2
    (List.length (List.sort_uniq compare (List.map key ws)))

(* ------------------------- codec ------------------------- *)

module C = Slo_core.Codec

let codec_schemes () =
  (* every scheme round-trips through its canonical spelling *)
  List.iter
    (fun (name, s) ->
      Alcotest.(check string) "canonical" name (C.scheme_name s);
      match C.scheme_of_string name with
      | Ok s' -> Alcotest.(check bool) ("parse " ^ name) true (s' = s)
      | Error e -> Alcotest.failf "scheme %s did not parse: %s" name e)
    C.scheme_assoc;
  Alcotest.(check int) "covers Weights.all"
    (List.length W.all) (List.length C.scheme_assoc);
  (* case-insensitive *)
  (match C.scheme_of_string "ISPBO" with
  | Ok s -> Alcotest.(check string) "upper-case accepted" "ispbo" (C.scheme_name s)
  | Error e -> Alcotest.fail e);
  (* errors name the bad spelling and the valid set *)
  match C.scheme_of_string "nope" with
  | Ok _ -> Alcotest.fail "bogus scheme parsed"
  | Error e ->
    Alcotest.(check bool) "names the spelling" true
      (Astring.String.is_infix ~affix:"nope" e);
    Alcotest.(check bool) "lists valid ones" true
      (Astring.String.is_infix ~affix:"ispbo" e)

let codec_plans () =
  let plans =
    [
      H.Split { T.s_typ = "node"; s_hot = [ 2; 0 ]; s_cold = [ 1; 3 ]; s_dead = [ 4 ] };
      H.Split { T.s_typ = "node"; s_hot = [ 0 ]; s_cold = [ 1 ]; s_dead = [] };
      H.Peel
        { T.p_typ = "arc"; p_live = [ 0; 1 ]; p_dead = []; p_globals = [ "arcs"; "head" ] };
      H.Peel { T.p_typ = "arc"; p_live = [ 3 ]; p_dead = [ 0 ]; p_globals = [] };
      H.Rebuild { T.r_typ = "cell"; r_order = [ 1; 0 ]; r_dead = [ 2 ] };
      H.Pad { T.pd_typ = "cell__hot"; pd_bytes = 8 };
      H.Pool { T.po_typ = "node"; po_links = [ 2; 3; 4; 5 ] };
      H.Pool { T.po_typ = "lnode"; po_links = [ 1 ] };
    ]
  in
  List.iter
    (fun p ->
      let s = C.plan_to_string p in
      match C.plan_of_string s with
      | Ok p' ->
        Alcotest.(check bool) ("round-trip " ^ s) true (p' = p);
        (* canonical: re-encoding is byte-identical *)
        Alcotest.(check string) ("canonical " ^ s) s (C.plan_to_string p')
      | Error e -> Alcotest.failf "%s did not parse back: %s" s e)
    plans;
  (* the documented spellings parse *)
  (match C.plan_of_string "split:node:hot=2,0:cold=1,3:dead=4" with
  | Ok (H.Split sp) ->
    Alcotest.(check (list int)) "hot order kept" [ 2; 0 ] sp.T.s_hot
  | Ok _ -> Alcotest.fail "parsed as the wrong kind"
  | Error e -> Alcotest.fail e);
  (match C.plan_of_string "pool:node:links=2,3,4,5" with
  | Ok (H.Pool sp) ->
    Alcotest.(check (list int)) "links kept" [ 2; 3; 4; 5 ] sp.T.po_links
  | Ok _ -> Alcotest.fail "parsed as the wrong kind"
  | Error e -> Alcotest.fail e);
  (* malformed inputs are errors, not crashes *)
  List.iter
    (fun bad ->
      match C.plan_of_string bad with
      | Ok _ -> Alcotest.failf "%S parsed" bad
      | Error _ -> ())
    [
      "";
      "shrink:node:hot=0";            (* unknown kind *)
      "split:node";                   (* missing fields *)
      "split:node:hot=x:cold=:dead="; (* non-numeric index *)
      "pad:node:bytes=";              (* empty int *)
      "split:node:hot=0:cold=1:dead=:extra=2"; (* trailing garbage *)
      "pool:node";                    (* missing links field *)
      "pool:node:links=";             (* a pool needs at least one link *)
      "pool:node:links=1,x";          (* non-numeric link index *)
      "pool:node:links=1:extra=2";    (* trailing garbage *)
    ]

let () =
  Alcotest.run "core"
    [
      ( "legality",
        [
          Alcotest.test_case "clean type" `Quick legality_clean;
          Alcotest.test_case "CSTT" `Quick legality_cstt;
          Alcotest.test_case "CSTT untyped alloc" `Quick
            legality_cstt_untyped_alloc;
          Alcotest.test_case "malloc cast tolerated" `Quick
            legality_malloc_cast_tolerated;
          Alcotest.test_case "CSTF" `Quick legality_cstf;
          Alcotest.test_case "ATKN" `Quick legality_atkn;
          Alcotest.test_case "ATKN call tolerated" `Quick
            legality_atkn_call_tolerated;
          Alcotest.test_case "LIBC+IND" `Quick legality_libc_ind;
          Alcotest.test_case "SMAL+MSET+NEST" `Quick legality_smal_mset_nest;
          Alcotest.test_case "escape to defined" `Quick
            legality_escape_to_defined_ok;
          Alcotest.test_case "null cast" `Quick legality_null_cast_ok;
          Alcotest.test_case "witness locations" `Quick witness_locations;
          Alcotest.test_case "reasons witnessed" `Quick
            every_reason_is_witnessed;
          Alcotest.test_case "alloc sites" `Quick all_alloc_sites_recorded;
          Alcotest.test_case "witness dedup" `Quick witnesses_deduplicated;
        ] );
      ( "affinity",
        [
          Alcotest.test_case "hotness order" `Quick affinity_hotness_order;
          Alcotest.test_case "edges" `Quick affinity_edges;
          Alcotest.test_case "read/write" `Quick affinity_read_write_counts;
          Alcotest.test_case "groups" `Quick groups_merge;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "split" `Quick heuristics_split;
          Alcotest.test_case "needs two cold" `Quick
            heuristics_requires_two_cold;
          Alcotest.test_case "needs dyn alloc" `Quick heuristics_not_dyn_alloc;
          Alcotest.test_case "threshold" `Quick heuristics_threshold_matters;
          Alcotest.test_case "scheme thresholds" `Quick
            heuristics_scheme_thresholds;
        ] );
      ( "transform",
        [
          Alcotest.test_case "split semantics" `Quick split_semantics;
          Alcotest.test_case "dead removal" `Quick split_dead_removal;
          Alcotest.test_case "peel semantics" `Quick peel_semantics;
          Alcotest.test_case "peel infeasible" `Quick peel_infeasible_cases;
          Alcotest.test_case "peel infeasible: escapes" `Quick
            peel_infeasible_escapes;
          Alcotest.test_case "rebuild" `Quick rebuild_reorders;
          Alcotest.test_case "driver end-to-end" `Quick split_improves_mcf_like;
        ] );
      ( "gvl",
        [ Alcotest.test_case "reorder" `Quick gvl_reorders_globals ] );
      ( "advisor",
        [ Alcotest.test_case "report+vcg" `Quick advisor_report ] );
      ( "codec",
        [
          Alcotest.test_case "schemes" `Quick codec_schemes;
          Alcotest.test_case "plans" `Quick codec_plans;
        ] );
    ]
