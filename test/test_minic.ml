(* Frontend tests: lexer, parser, type checker, pretty-printer round-trip. *)

module Ast = Slo_minic.Ast
module Lexer = Slo_minic.Lexer
module Parser = Slo_minic.Parser
module Pretty = Slo_minic.Pretty
module Typecheck = Slo_minic.Typecheck
module Token = Slo_minic.Token

let check = Alcotest.check
let string = Alcotest.string
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------- lexer ---------------- *)

let tokens src = List.map fst (Lexer.tokenize src)

let lex_kinds () =
  check int "count" 6 (List.length (tokens "int x = 42;"));
  (match tokens "0x1F" with
  | [ INT_LIT n; EOF ] -> check string "hex" "31" (Int64.to_string n)
  | _ -> Alcotest.fail "hex literal");
  (match tokens "3.5e2" with
  | [ FLOAT_LIT f; EOF ] -> check (Alcotest.float 1e-9) "float" 350.0 f
  | _ -> Alcotest.fail "float literal");
  (match tokens "'a'" with
  | [ INT_LIT n; EOF ] -> check string "char" "97" (Int64.to_string n)
  | _ -> Alcotest.fail "char literal");
  match tokens "\"a\\nb\"" with
  | [ STR_LIT s; EOF ] -> check string "escape" "a\nb" s
  | _ -> Alcotest.fail "string literal"

let lex_comments () =
  check int "line comment" 1 (List.length (tokens "// hello\n"));
  check int "block comment" 1 (List.length (tokens "/* a /* b */"));
  check int "hash line" 1 (List.length (tokens "#include <stdio.h>\n"));
  match tokens "a /* x */ b" with
  | [ IDENT "a"; IDENT "b"; EOF ] -> ()
  | _ -> Alcotest.fail "comment between identifiers"

let lex_operators () =
  match tokens "a->b ++ -- <= >= == != && || << >> ..." with
  | [ IDENT "a"; ARROW; IDENT "b"; PLUSPLUS; MINUSMINUS; LE; GE; EQ; NE;
      AMPAMP; BARBAR; SHL; SHR; ELLIPSIS; EOF ] ->
    ()
  | ts ->
    Alcotest.failf "got: %s"
      (String.concat " " (List.map Token.to_string ts))

let lex_positions () =
  let toks = Lexer.tokenize "int\n  x;" in
  match toks with
  | [ (_, l1); (_, l2); (_, _); (_, _) ] ->
    check int "line1" 1 l1.Slo_minic.Loc.line;
    check int "line2" 2 l2.Slo_minic.Loc.line;
    check int "col2" 3 l2.Slo_minic.Loc.col
  | _ -> Alcotest.fail "token count"

let lex_errors () =
  Alcotest.check_raises "unterminated comment"
    (Lexer.Error ("unterminated comment", Slo_minic.Loc.make ~line:1 ~col:1))
    (fun () -> ignore (Lexer.tokenize "/* never closed"));
  match Lexer.tokenize "\"open" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected error on unterminated string"

(* ---------------- parser ---------------- *)

let parse_ok src = Parser.parse src

let simple_prog = {|
struct point { int x; int y; };
int g;
int add(int a, int b) { return a + b; }
int main() {
  struct point p;
  p.x = 1;
  p.y = 2;
  g = add(p.x, p.y);
  return g;
}
|}

let parse_simple () =
  let p = parse_ok simple_prog in
  check int "decls" 4 (List.length p);
  match p with
  | [ Ast.Dstruct sd; Ast.Dglobal g; Ast.Dfunc f1; Ast.Dfunc f2 ] ->
    check string "struct name" "point" sd.sname;
    check int "fields" 2 (List.length sd.sfields);
    check string "global" "g" g.gname;
    check string "f1" "add" f1.funname;
    check string "f2" "main" f2.funname
  | _ -> Alcotest.fail "unexpected decl shapes"

let parse_typedef () =
  let p =
    parse_ok
      "typedef struct node_s { int v; struct node_s *next; } node_t;\n\
       node_t *head;\n"
  in
  match p with
  | [ Ast.Dstruct sd; Ast.Dtypedef ("node_t", Ast.Tstruct "node_s");
      Ast.Dglobal g ] ->
    check string "tag" "node_s" sd.sname;
    check bool "ptr type" true
      (Ast.ty_equal g.gty (Ast.Tptr (Ast.Tstruct "node_s")))
  | _ -> Alcotest.fail "typedef struct shape"

let parse_precedence () =
  let e = Parser.parse_expr_string "1 + 2 * 3" in
  (match e.edesc with
  | Ast.Ebin (Ast.Add, _, { edesc = Ast.Ebin (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "precedence of * over +");
  let e = Parser.parse_expr_string "a = b = c" in
  (match e.edesc with
  | Ast.Eassign (_, { edesc = Ast.Eassign _; _ }) -> ()
  | _ -> Alcotest.fail "right-assoc =");
  let e = Parser.parse_expr_string "a < b && c < d || e" in
  match e.edesc with
  | Ast.Ebin (Ast.Or, { edesc = Ast.Ebin (Ast.And, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "&& binds tighter than ||"

let parse_postfix_chain () =
  let e = Parser.parse_expr_string "p->next->data[3].f" in
  match e.edesc with
  | Ast.Efield ({ edesc = Ast.Eindex ({ edesc = Ast.Earrow _; _ }, _); _ }, "f")
    ->
    ()
  | _ -> Alcotest.fail "postfix chain shape"

let parse_cast_vs_paren () =
  (* without typedef knowledge, (x) is a parenthesised expression *)
  let e = Parser.parse_expr_string "(x) + 1" in
  (match e.edesc with
  | Ast.Ebin (Ast.Add, { edesc = Ast.Evar "x"; _ }, _) -> ()
  | _ -> Alcotest.fail "paren expr");
  let p = parse_ok "int main() { double d; d = (double)1; return 0; }" in
  match p with
  | [ Ast.Dfunc f ] -> (
    match List.nth f.funbody 1 with
    | { sdesc = Ast.Sexpr { edesc = Ast.Eassign (_, { edesc = Ast.Ecast (Ast.Tdouble, _); _ }); _ }; _ } ->
      ()
    | _ -> Alcotest.fail "cast shape")
  | _ -> Alcotest.fail "prog shape"

let parse_for_desugar () =
  let p =
    parse_ok "int main() { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }"
  in
  match p with
  | [ Ast.Dfunc f ] -> (
    match f.funbody with
    | [ _; { sdesc = Ast.Sfor (Some _, Some _, Some _, [ _ ]); _ }; _ ] -> ()
    | _ -> Alcotest.fail "for shape")
  | _ -> Alcotest.fail "prog shape"

let parse_bitfields () =
  let p = parse_ok "struct flags { int a : 3; int b : 5; long c; };" in
  match p with
  | [ Ast.Dstruct sd ] -> (
    match sd.sfields with
    | [ { fbits = Some 3; _ }; { fbits = Some 5; _ }; { fbits = None; _ } ] ->
      ()
    | _ -> Alcotest.fail "bitfield widths")
  | _ -> Alcotest.fail "prog shape"

let parse_extern_variadic () =
  let p = parse_ok "extern int fprintf(int, char*, ...);" in
  match p with
  | [ Ast.Dextern e ] ->
    check bool "variadic" true e.exvariadic;
    check int "params" 2 (List.length e.exparams)
  | _ -> Alcotest.fail "extern shape"

let parse_multi_declarator () =
  let p = parse_ok "int main() { int a, b = 2, c[4]; a = b; return c[0]; }" in
  match p with
  | [ Ast.Dfunc f ] ->
    (* int a, b, c[4] packs into a block of three decls *)
    (match List.hd f.funbody with
    | { sdesc = Ast.Sblock decls; _ } -> check int "decls" 3 (List.length decls)
    | _ -> Alcotest.fail "multi declarator shape")
  | _ -> Alcotest.fail "prog shape"

let parse_errors () =
  let bad srcs =
    List.iter
      (fun src ->
        match Parser.parse src with
        | exception Parser.Error _ -> ()
        | _ -> Alcotest.failf "expected syntax error on %S" src)
      srcs
  in
  bad
    [ "int main( { return 0; }"; "struct S { int x };"; "int f() { return 1 }";
      "int f() { if x { } }" ]

(* ---------------- typecheck ---------------- *)

let typed src =
  let p = Parser.parse src in
  (p, Typecheck.check p)

let tc_simple () =
  let _, env = typed simple_prog in
  check int "field_index y" 1 (Typecheck.field_index env "point" "y");
  check bool "struct known" true (Hashtbl.mem env.structs "point")

let tc_annotates () =
  let p, _ = typed "double half(int x) { return x / 2.0; }" in
  match p with
  | [ Ast.Dfunc f ] -> (
    match f.funbody with
    | [ { sdesc = Ast.Sreturn (Some e); _ } ] ->
      check bool "div is double" true (Ast.ty_equal e.ety Ast.Tdouble)
    | _ -> Alcotest.fail "body shape")
  | _ -> Alcotest.fail "prog shape"

let tc_pointer_arith () =
  let p, _ =
    typed
      "struct s { int v; };\n\
       int main() { struct s *p; p = (struct s*)malloc(4 * sizeof(struct s));\n\
       return (p + 1)->v; }"
  in
  match p with
  | [ _; Ast.Dfunc f ] -> (
    match List.rev f.funbody with
    | { sdesc = Ast.Sreturn (Some e); _ } :: _ ->
      check bool "arrow yields int" true (Ast.ty_equal e.ety Ast.Tint)
    | _ -> Alcotest.fail "body shape")
  | _ -> Alcotest.fail "prog shape"

let tc_errors () =
  let bad srcs =
    List.iter
      (fun src ->
        match typed src with
        | exception Typecheck.Error _ -> ()
        | _ -> Alcotest.failf "expected type error on %S" src)
      srcs
  in
  bad
    [
      "int main() { return undefined_var; }";
      "int main() { struct nope *p; return 0; }";
      "struct s { int v; }; int main() { struct s x; return x.w; }";
      "int main() { int x; return x.f; }";
      "int main() { int x; return *x; }";
      "int main() { 1 = 2; return 0; }";
      "int g; int main() { return g(); }";
    ]

(* ---------------- pretty round-trip ---------------- *)

let strip_locs_prog p = Pretty.string_of_program p

let roundtrip src =
  let p1 = Parser.parse src in
  let s1 = strip_locs_prog p1 in
  let p2 = Parser.parse s1 in
  let s2 = strip_locs_prog p2 in
  check string "roundtrip fixpoint" s1 s2

let pretty_roundtrip () =
  roundtrip simple_prog;
  roundtrip
    "struct n { int v; struct n *next; };\n\
     struct n *mk(int k) {\n\
     struct n *h; int i;\n\
     h = (struct n*)0;\n\
     for (i = 0; i < k; i++) {\n\
     struct n *c; c = (struct n*)malloc(sizeof(struct n));\n\
     c->v = i; c->next = h; h = c;\n\
     }\n\
     return h; }\n";
  roundtrip "int main() { int x; x = 1 ? 2 : 3; return x << 2 | 1; }"

(* ---------------- qcheck: expression printer/parser round trip ------- *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let loc = Slo_minic.Loc.dummy in
  let leaf =
    oneof
      [
        map (fun n -> Ast.mk loc (Ast.Eint (Int64.of_int (abs n)))) small_int;
        map (fun v -> Ast.mk loc (Ast.Evar ("v" ^ string_of_int (abs v mod 5)))) small_int;
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map3
              (fun op a b -> Ast.mk loc (Ast.Ebin (op, a, b)))
              (oneofl
                 [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Lt; Ast.Eq;
                   Ast.And; Ast.Or; Ast.Shl; Ast.Band ])
              (go (depth - 1)) (go (depth - 1)) );
          (1, map (fun a -> Ast.mk loc (Ast.Eun (Ast.Neg, a))) (go (depth - 1)));
          ( 1,
            map2
              (fun a b -> Ast.mk loc (Ast.Eindex (a, b)))
              (map (fun v -> Ast.mk loc (Ast.Evar ("a" ^ string_of_int (abs v mod 3)))) small_int)
              (go (depth - 1)) );
        ]
  in
  go 4

let rec expr_equal (a : Ast.expr) (b : Ast.expr) =
  match (a.edesc, b.edesc) with
  | Ast.Eint x, Ast.Eint y -> Int64.equal x y
  | Ast.Evar x, Ast.Evar y -> String.equal x y
  | Ast.Ebin (o1, a1, b1), Ast.Ebin (o2, a2, b2) ->
    o1 = o2 && expr_equal a1 a2 && expr_equal b1 b2
  | Ast.Eun (o1, a1), Ast.Eun (o2, a2) -> o1 = o2 && expr_equal a1 a2
  | Ast.Eindex (a1, b1), Ast.Eindex (a2, b2) ->
    expr_equal a1 a2 && expr_equal b1 b2
  | _ -> false

let prop_expr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"parse(print(e)) = e"
    (QCheck.make gen_expr ~print:Pretty.string_of_expr)
    (fun e ->
      let s = Pretty.string_of_expr e in
      expr_equal e (Parser.parse_expr_string s))

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "kinds" `Quick lex_kinds;
          Alcotest.test_case "comments" `Quick lex_comments;
          Alcotest.test_case "operators" `Quick lex_operators;
          Alcotest.test_case "positions" `Quick lex_positions;
          Alcotest.test_case "errors" `Quick lex_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick parse_simple;
          Alcotest.test_case "typedef struct" `Quick parse_typedef;
          Alcotest.test_case "precedence" `Quick parse_precedence;
          Alcotest.test_case "postfix chain" `Quick parse_postfix_chain;
          Alcotest.test_case "cast vs paren" `Quick parse_cast_vs_paren;
          Alcotest.test_case "for" `Quick parse_for_desugar;
          Alcotest.test_case "bitfields" `Quick parse_bitfields;
          Alcotest.test_case "extern variadic" `Quick parse_extern_variadic;
          Alcotest.test_case "multi declarator" `Quick parse_multi_declarator;
          Alcotest.test_case "errors" `Quick parse_errors;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "simple" `Quick tc_simple;
          Alcotest.test_case "annotates" `Quick tc_annotates;
          Alcotest.test_case "pointer arith" `Quick tc_pointer_arith;
          Alcotest.test_case "errors" `Quick tc_errors;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "roundtrip" `Quick pretty_roundtrip;
          QCheck_alcotest.to_alcotest prop_expr_roundtrip;
        ] );
    ]
